(** Controller synthesis from a schedule (§3.2.2's type-3 request).

    Derives a one-hot ring state machine — one state per control step,
    asynchronous RESET into step 0 — with start strobes for every
    functional unit, per-function control codes from the §4.1
    connection information, and a DONE strobe; emits it as IIF and
    generates it through ICDB like any other component. *)

open Icdb

exception Controller_error of string

type t = {
  c_iif : string;           (** the generated IIF source *)
  c_instance : Instance.t;  (** generated (and verified) through ICDB *)
  c_outputs : string list;  (** control signal names, DONE last *)
}

val sanitize : string -> string

(** State encoding: a one-hot ring (one flip-flop per step, trivial
    next-state logic) or a log2-encoded register with decoders (fewer
    flip-flops, more combinational logic). *)
type encoding = One_hot | Binary

val iif_of : ?encoding:encoding -> Schedule.result -> string * string list
(** The IIF text and its output signal names.
    @raise Controller_error on empty schedules. *)

val generate : ?encoding:encoding -> Server.t -> Schedule.result -> t
