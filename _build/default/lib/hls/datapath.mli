(** Datapath construction from a schedule.

    Wires the bound functional units into RTL — one-hot operand
    multiplexers where a unit serves several operations, registers for
    results crossing control steps or leaving the datapath — and hands
    the structure back to ICDB as a VHDL netlist cluster (§6.3) for
    flattening and area/delay/shape estimation.

    Cluster interface: CLK; [LD_<op>] register strobes;
    [SEL_<unit>_<k>] mux guards; [<op>_<port>[i]] external operands;
    [<unit>_<port>] shared scalar/control pins; outputs
    [out_<op>[i]] for sink results. The controller of {!Controller}
    drives the strobes. *)

open Icdb

exception Datapath_error of string

type t = {
  d_vhdl : string;            (** the cluster netlist source *)
  d_instance : Instance.t;    (** the flattened, estimated cluster *)
  d_registers : string list;  (** op ids whose results are registered *)
  d_muxes : int;              (** operand multiplexers inserted *)
}

val generate : Server.t -> Schedule.result -> t
