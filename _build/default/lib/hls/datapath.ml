(* Datapath construction from a schedule.

   Completes the Figure 1 flow: the bound functional units are wired
   into an RTL datapath — operand multiplexers where a unit serves
   several operations, registers for values crossing control steps —
   and the whole structure is handed back to ICDB as a VHDL netlist
   cluster (§6.3), which flattens it against the generated component
   netlists and estimates area, delay and shape for the partitioner. *)

open Icdb
open Icdb_genus

exception Datapath_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Datapath_error s)) fmt

type t = {
  d_vhdl : string;            (* the cluster netlist source *)
  d_instance : Instance.t;    (* the flattened, estimated cluster *)
  d_registers : string list;  (* op ids whose results are registered *)
  d_muxes : int;              (* operand multiplexers inserted *)
}

let bus name width = List.init width (fun i -> Printf.sprintf "%s[%d]" name i)

(* Data ports of the component serving [func], split by shape. *)
let unit_ports func =
  let component, _ = Schedule.component_for func in
  match Component.find component with
  | None -> fail "unknown component %s" component
  | Some c ->
      let ins r =
        List.filter (fun p -> p.Component.role = r) c.Component.ports
      in
      (component,
       List.filter (fun p -> p.Component.bus) (ins Component.Data_in),
       List.filter (fun p -> not p.Component.bus) (ins Component.Data_in),
       ins Component.Control_in,
       ins Component.Clock_in,
       List.filter (fun p -> p.Component.bus) (ins Component.Data_out),
       List.filter (fun p -> not p.Component.bus) (ins Component.Data_out))

(* Result net base for an op executing on its unit. *)
let result_base func unit =
  match func with
  | Func.EQ -> `Scalar (unit ^ "$OEQ")
  | Func.NEQ -> `Scalar (unit ^ "$ONEQ")
  | Func.GT | Func.GE -> `Scalar (unit ^ "$OGT")
  | Func.LT | Func.LE -> `Scalar (unit ^ "$OLT")
  | _ -> `Bus (unit ^ "$out")

let scalar_out_port = function
  | Func.EQ -> "OEQ"
  | Func.NEQ -> "ONEQ"
  | Func.GT | Func.GE -> "OGT"
  | Func.LT | Func.LE -> "OLT"
  | _ -> "O"

let sanitize = Controller.sanitize

(* [generate server r] builds and estimates the datapath. *)
let generate server (r : Schedule.result) =
  let ops = r.Schedule.r_ops in
  let op_by_id id =
    List.find (fun s -> s.Schedule.so_op.Dfg.op_id = id) ops
  in
  let ops_of_unit u =
    List.filter (fun s -> s.Schedule.so_unit = u) ops
    |> List.sort (fun a b -> compare a.Schedule.so_start_step b.Schedule.so_start_step)
  in
  let consumers id =
    List.filter (fun s -> List.mem id s.Schedule.so_op.Dfg.op_deps) ops
  in
  (* an op's result is registered when read in a later step or never
     read at all (it is a datapath output) *)
  let registered s =
    let cs = consumers s.Schedule.so_op.Dfg.op_id in
    cs = []
    || List.exists (fun c -> c.Schedule.so_start_step > s.Schedule.so_end_step) cs
  in
  (* --- gather the sub-component instances -------------------------- *)
  let instances = ref [] in  (* Vhdl.parsed_instance list, reversed *)
  let inputs = ref [] in
  let outputs = ref [] in
  let muxes = ref 0 in
  let add_input n = if not (List.mem n !inputs) then inputs := n :: !inputs in
  let add_instance label comp ports =
    instances :=
      { Icdb_netlist.Vhdl.pi_label = label; pi_component = comp;
        pi_ports = ports }
      :: !instances
  in
  let resolve_tbl = Hashtbl.create 16 in  (* component id -> netlist *)
  let remember (inst : Instance.t) =
    Hashtbl.replace resolve_tbl inst.Instance.id inst.Instance.netlist;
    inst.Instance.id
  in
  let nc = ref 0 in
  let dangling () = incr nc; Printf.sprintf "nc%d" !nc in
  add_input "CLK";
  (* source net for op [id]'s result as seen by a consumer in
     [reader_step] *)
  let source_bits id reader_step width =
    let s = op_by_id id in
    let unit = sanitize s.Schedule.so_unit in
    let direct =
      match result_base s.Schedule.so_op.Dfg.op_func unit with
      | `Bus base -> bus base width
      | `Scalar n -> [ n ]
    in
    if registered s && reader_step > s.Schedule.so_end_step then
      bus (unit ^ "$" ^ id ^ "$q") (List.length direct)
    else direct
  in
  (* --- functional units (+ operand muxes) -------------------------- *)
  List.iter
    (fun (u : Schedule.unit_info) ->
      let unit = sanitize u.Schedule.u_name in
      let uops = ops_of_unit u.Schedule.u_name in
      let func = (List.hd uops).Schedule.so_op.Dfg.op_func in
      let comp, bus_ins, scalar_ins, ctl_ins, clk_ins, bus_outs, scalar_outs =
        unit_ports func
      in
      ignore comp;
      let w = u.Schedule.u_width in
      let ways = List.length uops in
      let port_map = ref [] in
      let map_bit formal actual = port_map := (formal, actual) :: !port_map in
      (* operand buses: per-op sources, muxed when shared *)
      List.iteri
        (fun bus_idx p ->
          let port = p.Component.port_name in
          let source_for (s : Schedule.scheduled_op) =
            match List.nth_opt s.Schedule.so_op.Dfg.op_deps bus_idx with
            | Some dep -> source_bits dep s.Schedule.so_start_step w
            | None ->
                (* external operand *)
                let base =
                  Printf.sprintf "%s_%s" s.Schedule.so_op.Dfg.op_id port
                in
                let bits = bus base w in
                List.iter add_input bits;
                bits
          in
          let feed =
            if ways = 1 then source_for (List.hd uops)
            else begin
              (* k-way one-hot mux in front of this bus *)
              incr muxes;
              let mux_inst =
                Server.request_component server
                  (Spec.make
                     (Spec.From_component
                        { component = "mux_scg";
                          attributes = [ ("size", w); ("ways", ways) ];
                          functions = [] }))
              in
              let mux_comp = remember mux_inst in
              let out_base = Printf.sprintf "%s$%s$m" unit port in
              let mmap = ref [] in
              List.iteri
                (fun k s ->
                  let bits = source_for s in
                  List.iteri
                    (fun b actual ->
                      mmap := (Printf.sprintf "I[%d]" ((k * w) + b), actual) :: !mmap)
                    bits;
                  let sel = Printf.sprintf "SEL_%s_%d" unit k in
                  add_input sel;
                  mmap := (Printf.sprintf "G[%d]" k, sel) :: !mmap)
                uops;
              List.iteri
                (fun b formal_bit ->
                  mmap := (Printf.sprintf "O[%d]" b, formal_bit) :: !mmap)
                (bus out_base w);
              add_instance (Printf.sprintf "%s_%s_mux" unit port) mux_comp
                (List.rev !mmap);
              bus out_base w
            end
          in
          List.iteri
            (fun b actual -> map_bit (Printf.sprintf "%s[%d]" port b) actual)
            feed)
        bus_ins;
      (* scalar data / control inputs become shared cluster inputs *)
      List.iter
        (fun p ->
          let n = Printf.sprintf "%s_%s" unit p.Component.port_name in
          add_input n;
          map_bit p.Component.port_name n)
        (scalar_ins @ ctl_ins);
      List.iter (fun p -> map_bit p.Component.port_name "CLK") clk_ins;
      (* outputs: the result bus plus dangling nets for the rest;
         bit counts come from the generated netlist itself (a
         multiplier's product is twice the operand width) *)
      let netlist_bits port =
        List.filter
          (fun n ->
            n = port
            || (String.length n > String.length port
                && String.sub n 0 (String.length port + 1) = port ^ "["))
          (u.Schedule.u_instance.Instance.netlist.Icdb_netlist.Netlist.inputs
          @ u.Schedule.u_instance.Instance.netlist.Icdb_netlist.Netlist.outputs)
      in
      List.iter
        (fun p ->
          let port = p.Component.port_name in
          List.iteri
            (fun b formal_bit ->
              let actual =
                if port = "O" || port = "P" || port = "Q" then
                  Printf.sprintf "%s$out[%d]" unit b
                else dangling ()
              in
              map_bit formal_bit actual)
            (netlist_bits port))
        bus_outs;
      List.iter
        (fun p ->
          let port = p.Component.port_name in
          let actual =
            if port = scalar_out_port func then unit ^ "$" ^ port
            else dangling ()
          in
          map_bit port actual)
        scalar_outs;
      add_instance unit (remember u.Schedule.u_instance) (List.rev !port_map))
    r.Schedule.r_units;
  (* comparator-style scalar results need the unit$OXX alias used by
     source_bits *)
  (* --- result registers --------------------------------------------- *)
  let registered_ids = ref [] in
  List.iter
    (fun s ->
      if registered s then begin
        let id = s.Schedule.so_op.Dfg.op_id in
        let unit = sanitize s.Schedule.so_unit in
        let direct =
          match result_base s.Schedule.so_op.Dfg.op_func unit with
          | `Bus base -> bus base s.Schedule.so_op.Dfg.op_width
          | `Scalar n -> [ n ]
        in
        let w = List.length direct in
        let reg_inst =
          Server.request_component server
            (Spec.make
               (Spec.From_component
                  { component = "register";
                    attributes = [ ("size", w); ("load", 1) ];
                    functions = [] }))
        in
        let reg_comp = remember reg_inst in
        let q_base = unit ^ "$" ^ id ^ "$q" in
        let ld = "LD_" ^ id in
        add_input ld;
        let pmap =
          List.mapi (fun b a -> (Printf.sprintf "I[%d]" b, a)) direct
          @ [ ("LOAD", ld); ("CLK", "CLK") ]
          @ List.mapi
              (fun b a -> (Printf.sprintf "Q[%d]" b, a))
              (if consumers id = [] then begin
                 (* datapath output *)
                 let out_bits = bus ("out_" ^ id) w in
                 List.iter
                   (fun o -> if not (List.mem o !outputs) then outputs := o :: !outputs)
                   out_bits;
                 out_bits
               end
               else bus q_base w)
        in
        registered_ids := id :: !registered_ids;
        add_instance ("reg_" ^ id) reg_comp pmap
      end)
    ops;
  (* --- assemble, emit, and request the cluster ---------------------- *)
  let parsed =
    { Icdb_netlist.Vhdl.p_name = "dp_" ^ sanitize r.Schedule.r_dfg;
      p_inputs = List.rev !inputs;
      p_outputs = List.rev !outputs;
      p_instances = List.rev !instances }
  in
  (* textual VHDL for the record (and to exercise the parser path) *)
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "entity %s is port (\n" parsed.Icdb_netlist.Vhdl.p_name);
  let ports =
    List.map (fun n -> (n, "in")) parsed.Icdb_netlist.Vhdl.p_inputs
    @ List.map (fun n -> (n, "out")) parsed.Icdb_netlist.Vhdl.p_outputs
  in
  List.iteri
    (fun i (n, dir) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s : %s bit%s\n" n dir
           (if i = List.length ports - 1 then "" else ";")))
    ports;
  Buffer.add_string buf
    (Printf.sprintf ");\nend %s;\narchitecture s of %s is\nbegin\n"
       parsed.Icdb_netlist.Vhdl.p_name parsed.Icdb_netlist.Vhdl.p_name);
  List.iter
    (fun (pi : Icdb_netlist.Vhdl.parsed_instance) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s port map (%s);\n" pi.Icdb_netlist.Vhdl.pi_label
           pi.Icdb_netlist.Vhdl.pi_component
           (String.concat ", "
              (List.map
                 (fun (f, a) -> Printf.sprintf "%s => %s" f a)
                 pi.Icdb_netlist.Vhdl.pi_ports))))
    parsed.Icdb_netlist.Vhdl.p_instances;
  Buffer.add_string buf "end s;\n";
  let vhdl = Buffer.contents buf in
  let instance =
    Server.request_component server (Spec.make (Spec.From_vhdl_netlist vhdl))
  in
  { d_vhdl = vhdl;
    d_instance = instance;
    d_registers = List.rev !registered_ids;
    d_muxes = !muxes }
