(** Operation scheduling and resource binding against ICDB (§2.1).

    ASAP list scheduling with chaining under a clock-period budget,
    multi-cycle operations when one period is not enough, and greedy
    functional-unit binding that reuses components across steps.
    Component delays come from ICDB; a pessimism factor models tools
    working against a generic library instead (§1). *)

open Icdb

exception Schedule_error of string

type scheduled_op = {
  so_op : Dfg.op;
  so_unit : string;         (** bound functional unit *)
  so_start_step : int;
  so_end_step : int;        (** > start for multi-cycle operations *)
  so_start_offset : float;  (** ns into the start step (chaining) *)
  so_delay : float;
}

type unit_info = {
  u_name : string;          (** e.g. "multiplier8_0" *)
  u_component : string;
  u_width : int;
  u_instance : Instance.t;
}

type result = {
  r_dfg : string;
  r_clock : float;
  r_steps : int;
  r_ops : scheduled_op list;
  r_units : unit_info list;
  r_unit_area : float;       (** µm², functional units only *)
  r_register_bits : int;     (** values alive across a step boundary *)
  r_latency : float;         (** steps × clock, ns *)
}

val component_for : Icdb_genus.Func.t -> string * string
(** Catalog component serving a function (and its primary output).
    @raise Schedule_error for functions with no functional unit. *)

val unit_instance : Server.t -> Icdb_genus.Func.t -> int -> Instance.t
(** The (cached) component instance for a function at a width. *)

val run : Server.t -> Dfg.t -> clock:float -> pessimism:float -> result
(** Schedule a dataflow graph against a clock period; [pessimism]
    scales every believed delay (1.0 = ICDB's numbers).
    @raise Schedule_error on non-positive clocks or impossible fits.
    @raise Dfg.Dfg_error on malformed graphs. *)

val to_string : result -> string
