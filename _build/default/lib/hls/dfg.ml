(* Dataflow graphs: the input of the behavioral-synthesis client.

   Figure 1 puts ICDB underneath behavioral synthesis tools; this
   module and {!Schedule} are a small such tool — enough of a scheduler
   and allocator to demonstrate (and benchmark) how component delay,
   area and function information drives scheduling, chaining and
   binding decisions. *)

type op = {
  op_id : string;
  op_func : Icdb_genus.Func.t;
  op_width : int;
  op_deps : string list;  (* ids of operations producing our operands *)
}

type t = {
  dfg_name : string;
  ops : op list;
}

exception Dfg_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Dfg_error s)) fmt

let find t id =
  match List.find_opt (fun o -> o.op_id = id) t.ops with
  | Some o -> o
  | None -> fail "unknown operation %s" id

(* Validate: unique ids, known dependencies, no cycles. Returns the
   operations in a topological order. *)
let validate t =
  let ids = List.map (fun o -> o.op_id) t.ops in
  if List.length ids <> List.length (List.sort_uniq compare ids) then
    fail "duplicate operation ids in %s" t.dfg_name;
  List.iter
    (fun o ->
      List.iter
        (fun d ->
          if not (List.mem d ids) then
            fail "operation %s depends on unknown %s" o.op_id d)
        o.op_deps)
    t.ops;
  (* Kahn topological sort *)
  let remaining = ref t.ops in
  let placed = ref [] in
  let placed_ids = ref [] in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let ready, blocked =
      List.partition
        (fun o -> List.for_all (fun d -> List.mem d !placed_ids) o.op_deps)
        !remaining
    in
    if ready <> [] then begin
      progress := true;
      placed := !placed @ ready;
      placed_ids := !placed_ids @ List.map (fun o -> o.op_id) ready;
      remaining := blocked
    end
  done;
  if !remaining <> [] then fail "dependency cycle in %s" t.dfg_name;
  !placed

(* The classic differential-equation benchmark of the HLS literature
   (HAL: y'' + 3xy' + 3y = 0 integration step), expressed over 8-bit
   operators. *)
let diffeq =
  { dfg_name = "diffeq";
    ops =
      [ { op_id = "m1"; op_func = Icdb_genus.Func.MUL; op_width = 8; op_deps = [] };
        { op_id = "m2"; op_func = Icdb_genus.Func.MUL; op_width = 8; op_deps = [] };
        { op_id = "m3"; op_func = Icdb_genus.Func.MUL; op_width = 8;
          op_deps = [ "m1" ] };
        { op_id = "m4"; op_func = Icdb_genus.Func.MUL; op_width = 8;
          op_deps = [ "m2" ] };
        { op_id = "s1"; op_func = Icdb_genus.Func.SUB; op_width = 8;
          op_deps = [ "m3" ] };
        { op_id = "s2"; op_func = Icdb_genus.Func.SUB; op_width = 8;
          op_deps = [ "s1"; "m4" ] };
        { op_id = "a1"; op_func = Icdb_genus.Func.ADD; op_width = 8;
          op_deps = [] };
        { op_id = "c1"; op_func = Icdb_genus.Func.LT; op_width = 8;
          op_deps = [ "a1" ] } ] }

(* A small FIR-like pipeline: four multiplies into an adder tree. *)
let fir4 =
  { dfg_name = "fir4";
    ops =
      [ { op_id = "m0"; op_func = Icdb_genus.Func.MUL; op_width = 6; op_deps = [] };
        { op_id = "m1"; op_func = Icdb_genus.Func.MUL; op_width = 6; op_deps = [] };
        { op_id = "m2"; op_func = Icdb_genus.Func.MUL; op_width = 6; op_deps = [] };
        { op_id = "m3"; op_func = Icdb_genus.Func.MUL; op_width = 6; op_deps = [] };
        { op_id = "a0"; op_func = Icdb_genus.Func.ADD; op_width = 6;
          op_deps = [ "m0"; "m1" ] };
        { op_id = "a1"; op_func = Icdb_genus.Func.ADD; op_width = 6;
          op_deps = [ "m2"; "m3" ] };
        { op_id = "a2"; op_func = Icdb_genus.Func.ADD; op_width = 6;
          op_deps = [ "a0"; "a1" ] } ] }
