(** Dataflow graphs: the behavioral input of the synthesis client
    (Figure 1). *)

type op = {
  op_id : string;
  op_func : Icdb_genus.Func.t;
  op_width : int;
  op_deps : string list;  (** ids of operations producing our operands *)
}

type t = {
  dfg_name : string;
  ops : op list;
}

exception Dfg_error of string

val find : t -> string -> op
(** @raise Dfg_error on unknown ids. *)

val validate : t -> op list
(** Check ids, dependencies and acyclicity; returns the operations in
    topological order. @raise Dfg_error otherwise. *)

val diffeq : t
(** The classic HAL differential-equation benchmark (four multiplies,
    two subtracts, an add and a compare over 8-bit operators). *)

val fir4 : t
(** Four multiplies into an adder tree, 6-bit. *)
