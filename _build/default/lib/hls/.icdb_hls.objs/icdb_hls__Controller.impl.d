lib/hls/controller.ml: Buffer Component Connect Dfg Func Hashtbl Icdb Icdb_genus Instance List Printf Schedule Server Spec String
