lib/hls/schedule.mli: Dfg Icdb Icdb_genus Instance Server
