lib/hls/datapath.ml: Buffer Component Controller Dfg Func Hashtbl Icdb Icdb_genus Icdb_netlist Instance List Printf Schedule Server Spec String
