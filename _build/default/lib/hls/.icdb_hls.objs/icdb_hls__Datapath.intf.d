lib/hls/datapath.mli: Icdb Instance Schedule Server
