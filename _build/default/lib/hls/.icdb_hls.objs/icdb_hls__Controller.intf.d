lib/hls/controller.mli: Icdb Instance Schedule Server
