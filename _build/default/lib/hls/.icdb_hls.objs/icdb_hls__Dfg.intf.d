lib/hls/dfg.mli: Icdb_genus
