lib/hls/schedule.ml: Buffer Dfg Float Func Hashtbl Icdb Icdb_genus Icdb_timing Instance List Printf Server Spec
