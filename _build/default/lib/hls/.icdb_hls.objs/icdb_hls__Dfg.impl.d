lib/hls/dfg.ml: Icdb_genus List Printf
