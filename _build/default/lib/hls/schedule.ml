(* Operation scheduling and resource binding against ICDB (§2.1).

   The paper: "During operator scheduling, a synthesis tool can use the
   component delay time to determine the proper clock width. A
   behavioral synthesis tool can also use the information to decide
   whether to chain two operations together in a single clock, or
   whether to place an operation in a multiple clock step."

   This is that tool, in miniature: ASAP list scheduling with chaining
   under a clock-period budget, multi-cycle operations when one period
   is not enough, and greedy functional-unit binding that reuses
   components across steps. The component delays come from ICDB; a
   pessimism factor models tools working against a generic library
   instead (delay margins instead of numbers, §1). *)

open Icdb
open Icdb_genus

exception Schedule_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Schedule_error s)) fmt

type scheduled_op = {
  so_op : Dfg.op;
  so_unit : string;        (* bound functional unit *)
  so_start_step : int;     (* control step the op starts in *)
  so_end_step : int;       (* step it finishes in (multi-cycle ops) *)
  so_start_offset : float; (* ns into the start step (chaining) *)
  so_delay : float;        (* ns through the component *)
}

type unit_info = {
  u_name : string;          (* e.g. "mul8_0" *)
  u_component : string;
  u_width : int;
  u_instance : Instance.t;
}

type result = {
  r_dfg : string;
  r_clock : float;             (* the clock period scheduled against *)
  r_steps : int;               (* schedule length in control steps *)
  r_ops : scheduled_op list;
  r_units : unit_info list;
  r_unit_area : float;         (* µm², functional units only *)
  r_register_bits : int;       (* values alive across a step boundary *)
  r_latency : float;           (* steps * clock, ns *)
}

(* Which catalog component serves a function, and its relevant output
   for delay purposes. *)
let component_for func =
  match func with
  | Func.ADD -> ("adder", "O")
  | Func.SUB -> ("adder_subtractor", "O")
  | Func.MUL -> ("multiplier", "P")
  | Func.DIV -> ("divider", "Q")
  | Func.EQ | Func.NEQ | Func.GT | Func.GE | Func.LT | Func.LE ->
      ("comparator", "OGT")
  | Func.AND | Func.OR | Func.XOR | Func.NOT -> ("logic_unit", "O")
  | Func.SHL -> ("barrel_shifter", "O")
  | Func.MUX_SCL -> ("mux_scl", "O")
  | f -> fail "no functional unit for %s" (Func.to_string f)

(* Worst output delay of an instance: what the scheduler budgets per
   operation. *)
let worst_delay (i : Instance.t) =
  List.fold_left
    (fun acc (_, wd) -> Float.max acc wd)
    0.0 i.Instance.report.Icdb_timing.Sta.output_delays

(* Fetch (cached) the component instance for a function at a width. *)
let unit_instance server func width =
  let component, _ = component_for func in
  Server.request_component server
    (Spec.make
       (Spec.From_component
          { component; attributes = [ ("size", width) ]; functions = [] }))

(* [run server dfg ~clock ~pessimism] schedules [dfg] against a clock
   period. [pessimism] scales every component delay the tool believes
   (1.0 = ICDB's real numbers; >1 models a generic library's margins).
   Operations chain within a step while budget remains; an operation
   longer than one period becomes multi-cycle. Binding greedily reuses
   the unit of the same (component, width) whose previous operation
   finished earliest. *)
let run server (dfg : Dfg.t) ~clock ~pessimism =
  if clock <= 0.0 then fail "clock period must be positive";
  let ops = Dfg.validate dfg in
  (* operation delays as the tool believes them *)
  let delays = Hashtbl.create 16 in
  let instances = Hashtbl.create 16 in
  List.iter
    (fun (o : Dfg.op) ->
      let key = (o.Dfg.op_func, o.Dfg.op_width) in
      if not (Hashtbl.mem delays key) then begin
        let inst = unit_instance server o.Dfg.op_func o.Dfg.op_width in
        Hashtbl.replace instances key inst;
        Hashtbl.replace delays key (worst_delay inst *. pessimism)
      end)
    ops;
  (* All times in absolute ns on the control-step grid. *)
  let eps = 1e-9 in
  let step_of t = int_of_float (Float.floor ((t +. eps) /. clock)) in
  let boundary_after t = Float.ceil ((t -. eps) /. clock) *. clock in
  let offset_in_step t =
    Float.max 0.0 (t -. (Float.floor ((t +. eps) /. clock) *. clock))
  in
  (* availability time of each scheduled op's result *)
  let avail = Hashtbl.create 16 in
  let scheduled = ref [] in
  (* greedy binding state: per (component,width), (unit name, busy-until) *)
  let units = Hashtbl.create 8 in
  let unit_count = Hashtbl.create 8 in
  List.iter
    (fun (o : Dfg.op) ->
      let key = (o.Dfg.op_func, o.Dfg.op_width) in
      let d = Hashtbl.find delays key in
      if d > clock *. 64.0 then
        fail "operation %s (%.1f ns) cannot fit any reasonable schedule at %.1f ns"
          o.Dfg.op_id d clock;
      let t_ready =
        List.fold_left
          (fun acc dep -> Float.max acc (Hashtbl.find avail dep))
          0.0 o.Dfg.op_deps
      in
      (* chain into the partial step if the op fits before the edge;
         a longer op starts at the next boundary (multi-cycle) *)
      let fits_chained = offset_in_step t_ready +. d <= clock +. eps in
      let start =
        if fits_chained then t_ready else boundary_after t_ready
      in
      let finish = start +. d in
      (* chained results are usable immediately; multi-cycle results
         are registered and usable from the following boundary *)
      let t_avail =
        if fits_chained && step_of start = step_of (finish -. eps) then finish
        else boundary_after finish
      in
      (* bind to a unit of this kind free at our start time *)
      let pool =
        match Hashtbl.find_opt units key with Some l -> l | None -> []
      in
      let free = List.filter (fun (_, busy) -> busy <= start +. eps) pool in
      let u_name, pool =
        match free with
        | (name, _) :: _ -> (name, List.filter (fun (n, _) -> n <> name) pool)
        | [] ->
            let n =
              match Hashtbl.find_opt unit_count key with Some c -> c | None -> 0
            in
            Hashtbl.replace unit_count key (n + 1);
            let component, _ = component_for o.Dfg.op_func in
            (Printf.sprintf "%s%d_%d" component o.Dfg.op_width n, pool)
      in
      Hashtbl.replace units key ((u_name, t_avail) :: pool);
      Hashtbl.replace avail o.Dfg.op_id t_avail;
      scheduled :=
        { so_op = o;
          so_unit = u_name;
          so_start_step = step_of start;
          so_end_step = step_of (finish -. eps);
          so_start_offset = offset_in_step start;
          so_delay = d }
        :: !scheduled)
    ops;
  let scheduled = List.rev !scheduled in
  let steps =
    1 + List.fold_left (fun acc s -> max acc s.so_end_step) 0 scheduled
  in
  (* distinct units with their areas *)
  let unit_infos =
    Hashtbl.fold
      (fun (func, width) pool acc ->
        let inst = Hashtbl.find instances (func, width) in
        let component, _ = component_for func in
        List.map
          (fun (name, _) ->
            { u_name = name; u_component = component; u_width = width;
              u_instance = inst })
          pool
        @ acc)
      units []
    |> List.sort (fun a b -> compare a.u_name b.u_name)
  in
  let unit_area =
    List.fold_left (fun acc u -> acc +. Instance.best_area u.u_instance) 0.0
      unit_infos
  in
  (* registers: a value produced in step s and consumed by an op
     starting in a later step must be stored *)
  let register_bits =
    List.fold_left
      (fun acc s ->
        let consumed_later =
          List.exists
            (fun s2 ->
              List.mem s.so_op.Dfg.op_id s2.so_op.Dfg.op_deps
              && s2.so_start_step > s.so_end_step)
            scheduled
        in
        if consumed_later then acc + s.so_op.Dfg.op_width else acc)
      0 scheduled
  in
  { r_dfg = dfg.Dfg.dfg_name;
    r_clock = clock;
    r_steps = steps;
    r_ops = scheduled;
    r_units = unit_infos;
    r_unit_area = unit_area;
    r_register_bits = register_bits;
    r_latency = float_of_int steps *. clock }

let to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s @ %.1f ns clock: %d steps (latency %.1f ns), %d units, %.0f um2, %d reg bits\n"
       r.r_dfg r.r_clock r.r_steps r.r_latency (List.length r.r_units)
       r.r_unit_area r.r_register_bits);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-4s %-4s step %d%s on %-8s (%.1f ns, chained at %.1f)\n"
           s.so_op.Dfg.op_id
           (Func.to_string s.so_op.Dfg.op_func)
           s.so_start_step
           (if s.so_end_step > s.so_start_step then
              Printf.sprintf "-%d" s.so_end_step
            else "")
           s.so_unit s.so_delay s.so_start_offset))
    r.r_ops;
  Buffer.contents buf
