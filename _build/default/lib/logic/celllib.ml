(* The technology cell library.

   ICDB stores, for each basic cell, the three delay figures of §4.4.1 —
   X (delay per unit of transistor load), Y (input-to-output intrinsic
   delay) and Z (delay per fanout) — plus the geometry the area
   estimator needs (§4.4.2): transistor count, cell width and the fixed
   strip height. The numbers model a late-1980s 2µm CMOS standard-cell
   family; they are the single calibration point for every experiment.

   Sizing: a drive multiplier [s >= 1] divides the load-dependent delay
   term and scales the cell's width and the load it presents to its own
   drivers (TILOS-style). *)

open Icdb_iif

type pattern =
  | Pleaf
  | Pinv of pattern
  | Pnand of pattern * pattern

type kind =
  | Comb
  | Ff of { has_set : bool; has_reset : bool }
  | Latch_cell of { transparent_high : bool }
  | Tri_cell

type t = {
  cname : string;
  inputs : string list;
  output : string;
  logic : Flat.fexpr option;  (* combinational function over pin names *)
  kind : kind;
  transistors : int;
  width : float;              (* µm at size 1.0 *)
  x_delay : float;            (* ns per unit-transistor load *)
  y_delay : float;            (* intrinsic ns *)
  z_delay : float;            (* ns per fanout *)
  input_load : float;         (* unit transistors per input at size 1.0 *)
  setup : float;              (* ns, sequential cells only *)
  patterns : pattern list;    (* for tree covering; [] = direct map only *)
}

(* Every cell occupies one strip row. *)
let cell_height = 44.0

let net n = Flat.Fnet n
let fand es = Flat.Fand es
let for_ es = Flat.For_ es
let fnot e = Flat.Fnot e

let comb ?(patterns = []) cname inputs logic ~t ~x ~y ~z ?(load = 2.0) () =
  { cname;
    inputs;
    output = "Y";
    logic = Some logic;
    kind = Comb;
    transistors = t;
    width = float_of_int t *. 2.2;
    x_delay = x;
    y_delay = y;
    z_delay = z;
    input_load = load;
    setup = 0.0;
    patterns }

let inv = comb "INV" [ "A" ] (fnot (net "A")) ~t:2 ~x:0.20 ~y:0.40 ~z:0.10
    ~patterns:[ Pinv Pleaf ] ()

let buf = comb "BUF" [ "A" ] (Flat.Fbuf (net "A")) ~t:4 ~x:0.12 ~y:0.80 ~z:0.06
    ~patterns:[ Pinv (Pinv Pleaf) ] ()

let nand2 =
  comb "NAND2" [ "A"; "B" ] (fnot (fand [ net "A"; net "B" ]))
    ~t:4 ~x:0.25 ~y:0.55 ~z:0.10
    ~patterns:[ Pnand (Pleaf, Pleaf) ] ()

let nand3 =
  comb "NAND3" [ "A"; "B"; "C" ] (fnot (fand [ net "A"; net "B"; net "C" ]))
    ~t:6 ~x:0.30 ~y:0.70 ~z:0.12
    ~patterns:[ Pnand (Pinv (Pnand (Pleaf, Pleaf)), Pleaf) ] ()

let nand4 =
  comb "NAND4" [ "A"; "B"; "C"; "D" ]
    (fnot (fand [ net "A"; net "B"; net "C"; net "D" ]))
    ~t:8 ~x:0.35 ~y:0.90 ~z:0.14
    ~patterns:
      [ Pnand (Pinv (Pnand (Pinv (Pnand (Pleaf, Pleaf)), Pleaf)), Pleaf);
        Pnand (Pinv (Pnand (Pleaf, Pleaf)), Pinv (Pnand (Pleaf, Pleaf))) ]
    ()

let nor2 =
  comb "NOR2" [ "A"; "B" ] (fnot (for_ [ net "A"; net "B" ]))
    ~t:4 ~x:0.30 ~y:0.65 ~z:0.12
    ~patterns:[ Pinv (Pnand (Pinv Pleaf, Pinv Pleaf)) ] ()

let nor3 =
  comb "NOR3" [ "A"; "B"; "C" ] (fnot (for_ [ net "A"; net "B"; net "C" ]))
    ~t:6 ~x:0.38 ~y:0.85 ~z:0.14
    ~patterns:
      [ Pinv (Pnand (Pinv (Pinv (Pnand (Pinv Pleaf, Pinv Pleaf))), Pinv Pleaf)) ]
    ()

let and2 =
  comb "AND2" [ "A"; "B" ] (fand [ net "A"; net "B" ])
    ~t:6 ~x:0.25 ~y:0.75 ~z:0.10
    ~patterns:[ Pinv (Pnand (Pleaf, Pleaf)) ] ()

let or2 =
  comb "OR2" [ "A"; "B" ] (for_ [ net "A"; net "B" ])
    ~t:6 ~x:0.28 ~y:0.80 ~z:0.11
    ~patterns:[ Pnand (Pinv Pleaf, Pinv Pleaf) ] ()

let aoi21 =
  comb "AOI21" [ "A"; "B"; "C" ]
    (fnot (for_ [ fand [ net "A"; net "B" ]; net "C" ]))
    ~t:6 ~x:0.32 ~y:0.75 ~z:0.12
    ~patterns:[ Pinv (Pnand (Pnand (Pleaf, Pleaf), Pinv Pleaf)) ] ()

let oai21 =
  comb "OAI21" [ "A"; "B"; "C" ]
    (fnot (fand [ for_ [ net "A"; net "B" ]; net "C" ]))
    ~t:6 ~x:0.32 ~y:0.75 ~z:0.12
    ~patterns:[ Pnand (Pnand (Pinv Pleaf, Pinv Pleaf), Pleaf) ] ()

let aoi22 =
  comb "AOI22" [ "A"; "B"; "C"; "D" ]
    (fnot (for_ [ fand [ net "A"; net "B" ]; fand [ net "C"; net "D" ] ]))
    ~t:8 ~x:0.36 ~y:0.85 ~z:0.13
    ~patterns:[ Pinv (Pnand (Pnand (Pleaf, Pleaf), Pnand (Pleaf, Pleaf))) ] ()

let oai22 =
  comb "OAI22" [ "A"; "B"; "C"; "D" ]
    (fnot (fand [ for_ [ net "A"; net "B" ]; for_ [ net "C"; net "D" ] ]))
    ~t:8 ~x:0.36 ~y:0.85 ~z:0.13
    ~patterns:
      [ Pnand (Pnand (Pinv Pleaf, Pinv Pleaf), Pnand (Pinv Pleaf, Pinv Pleaf)) ]
    ()

let xor2 =
  comb "XOR2" [ "A"; "B" ] (Flat.Fxor (net "A", net "B"))
    ~t:10 ~x:0.38 ~y:1.10 ~z:0.14 ~load:3.0 ()

let xnor2 =
  comb "XNOR2" [ "A"; "B" ] (Flat.Fxnor (net "A", net "B"))
    ~t:10 ~x:0.38 ~y:1.10 ~z:0.14 ~load:3.0 ()

let schmitt =
  comb "SCHMITT" [ "A" ] (Flat.Fschmitt (net "A"))
    ~t:6 ~x:0.30 ~y:1.20 ~z:0.10 ()

let tbuf =
  { cname = "TBUF";
    inputs = [ "A"; "EN" ];
    output = "Y";
    logic = None;
    kind = Tri_cell;
    transistors = 6;
    width = 13.2;
    x_delay = 0.25;
    y_delay = 0.90;
    z_delay = 0.10;
    input_load = 2.0;
    setup = 0.0;
    patterns = [] }

let ff ~cname ~has_set ~has_reset ~t ~y ~setup =
  let inputs =
    [ "D"; "CK" ]
    @ (if has_set then [ "S" ] else [])
    @ if has_reset then [ "R" ] else []
  in
  { cname;
    inputs;
    output = "Q";
    logic = None;
    kind = Ff { has_set; has_reset };
    transistors = t;
    width = float_of_int t *. 2.2;
    x_delay = 0.25;
    y_delay = y;
    z_delay = 0.12;
    input_load = 2.0;
    setup;
    patterns = [] }

let dff = ff ~cname:"DFF" ~has_set:false ~has_reset:false ~t:20 ~y:3.5 ~setup:2.5
let dff_r = ff ~cname:"DFF_R" ~has_set:false ~has_reset:true ~t:24 ~y:3.8 ~setup:2.8
let dff_s = ff ~cname:"DFF_S" ~has_set:true ~has_reset:false ~t:24 ~y:3.8 ~setup:2.8
let dff_sr = ff ~cname:"DFF_SR" ~has_set:true ~has_reset:true ~t:28 ~y:4.2 ~setup:3.0

let latch ~cname ~transparent_high =
  { cname;
    inputs = [ "D"; "G" ];
    output = "Q";
    logic = None;
    kind = Latch_cell { transparent_high };
    transistors = 12;
    width = 26.4;
    x_delay = 0.25;
    y_delay = 1.5;
    z_delay = 0.12;
    input_load = 2.0;
    setup = 1.5;
    patterns = [] }

let latch_h = latch ~cname:"LATCH_H" ~transparent_high:true
let latch_l = latch ~cname:"LATCH_L" ~transparent_high:false

(* Supply ties for constant nets. *)
let tie value =
  { cname = (if value then "TIE1" else "TIE0");
    inputs = [];
    output = "Y";
    logic = Some (Flat.Fconst value);
    kind = Comb;
    transistors = 2;
    width = 4.4;
    x_delay = 0.0;
    y_delay = 0.0;
    z_delay = 0.0;
    input_load = 0.0;
    setup = 0.0;
    patterns = [] }

let tie0 = tie false
let tie1 = tie true

let all =
  [ inv; buf; nand2; nand3; nand4; nor2; nor3; and2; or2; aoi21; oai21;
    aoi22; oai22; xor2; xnor2; schmitt; tbuf; dff; dff_r; dff_s; dff_sr;
    latch_h; latch_l; tie0; tie1 ]

let by_name = Hashtbl.create 32

let () = List.iter (fun c -> Hashtbl.replace by_name c.cname c) all

let find name = Hashtbl.find_opt by_name name

let find_exn name =
  match find name with
  | Some c -> c
  | None -> invalid_arg ("Celllib.find_exn: unknown cell " ^ name)

let ff_cell ~has_set ~has_reset =
  match has_set, has_reset with
  | false, false -> dff
  | false, true -> dff_r
  | true, false -> dff_s
  | true, true -> dff_sr

let latch_cell ~transparent_high = if transparent_high then latch_h else latch_l

let is_output_pin cell pin =
  match find cell with
  | Some c -> c.output = pin
  | None -> false

(* Matchable cells, cheapest-first so ties in covering are stable. *)
let matchable =
  List.filter (fun c -> c.patterns <> []) all
  |> List.sort (fun a b -> compare a.transistors b.transistors)

(* Width of an instance after sizing: transistor widths scale with the
   drive multiplier but diffusion sharing keeps growth sub-linear. *)
let sized_width cell size = cell.width *. (0.5 +. (0.5 *. size))

(* Load one input pin presents to its driver. *)
let sized_input_load cell size = cell.input_load *. size

(* Gate delay through a cell: paper formula delay = load*X + Y + fanout*Z,
   with the load term divided by the drive multiplier. *)
let delay cell ~size ~load ~fanout =
  (cell.x_delay *. load /. size)
  +. cell.y_delay
  +. (cell.z_delay *. float_of_int fanout)
