(** Boolean network: the logic optimizer's working representation.

    Built from a flat IIF design by separating combinational cones from
    registers, latches and interface elements. Gate nodes carry
    combinational expressions over net names; optimization passes
    rewrite them in place and the technology mapper lowers them to
    cells. *)

open Icdb_iif

type element =
  | Gate of { out : string; expr : Flat.fexpr }
  | Reg of {
      out : string;
      data : string;
      clock : string;
      rising : bool;
      set : string option;    (** async set condition net, active high *)
      reset : string option;  (** async reset condition net, active high *)
    }
  | Lat of { out : string; data : string; gate : string;
             transparent_high : bool }
  | Tri of { out : string; data : string; enable : string }
      (** several [Tri]s may share an output net (a wired bus);
          enable "$const1" is an always-on driver *)
  | Delay_el of { out : string; input : string; ns : float }

type t = {
  name : string;
  inputs : string list;
  outputs : string list;
  mutable elements : element list;  (** in creation order *)
}

exception Network_error of string

val element_out : element -> string
val element_reads : element -> string list

val of_flat : Flat.t -> t
(** Lower a flat design: FF/latch data, clock and async conditions get
    their own cone nets; tri-states and wired-ors become [Tri]
    elements; [~d] becomes a delay element.
    @raise Network_error on interface operators nested inside logic. *)

val gates : t -> (string * Flat.fexpr) list

val driver_table : t -> (string, element) Hashtbl.t
(** @raise Network_error on non-bus multiple drivers. *)

val visible_nets : t -> (string, unit) Hashtbl.t
(** Nets that must survive optimization: outputs plus everything read
    or driven by sequential/interface elements. *)

val literal_count : t -> int
(** Logic literals over all gate nodes (the optimizer's cost). *)
