(** Two-level (sum-of-products) representation and exact minimization.

    Used node-locally by the optimizer: node functions are small, so
    Quine–McCluskey prime generation with an essential-then-greedy
    cover is affordable and deterministic. *)

type implicant = { bits : int; mask : int }
(** An implicant over [n] variables: [bits] holds the values of the
    cared-about positions, [mask] has a 1 wherever the variable is
    absent from the cube. *)

type t

val nvars : t -> int
val cubes : t -> implicant list

val zero : int -> t
(** The constant-false function over [n] variables. *)

val one : int -> t
(** The constant-true function over [n] variables. *)

val is_zero : t -> bool
val is_one : t -> bool

val covers : implicant -> int -> bool
(** [covers i m]: does implicant [i] contain minterm [m]? *)

val eval : t -> int -> bool
(** Evaluate at a minterm (bit [i] of the integer = variable [i]). *)

val of_minterms : int -> int list -> t
(** Build from an explicit minterm list.
    @raise Invalid_argument beyond 20 variables. *)

val minterms : t -> int list

val popcount : int -> int

val literal_count : t -> int
(** Total literals over all cubes (the optimizer's cost measure). *)

val minimize : t -> t
(** Quine–McCluskey prime implicants plus an essential-then-greedy
    cover. Preserves the function; never increases the literal count
    of a minterm-canonical input. Deterministic. *)

exception Too_wide

val max_truth_table_vars : int

val of_fexpr : string array -> Icdb_iif.Flat.fexpr -> t
(** Truth-table conversion of a combinational expression, treating the
    array entries as variables 0..n-1.
    @raise Too_wide beyond {!max_truth_table_vars} variables.
    @raise Invalid_argument on interface operators or unknown nets. *)

val to_fexpr : string array -> t -> Icdb_iif.Flat.fexpr
(** Rebuild a two-level expression over the given fanin names. *)
