(* Algebraic factoring of two-level functions (the optimizer's
   level-reduction step, §4.3.1 phase 2).

   Recursive best-literal division: pull out the literal shared by the
   most cubes, factor the quotient and remainder, recurse. Produces a
   multi-level expression with fewer literals than the flat SOP. *)

open Icdb_iif

let literal_of fanins v pos =
  if pos then Flat.Fnet fanins.(v) else Flat.Fnot (Flat.Fnet fanins.(v))

let cube_expr fanins nvars (c : Sop.implicant) =
  let lits = ref [] in
  for v = nvars - 1 downto 0 do
    if c.Sop.mask land (1 lsl v) = 0 then
      lits := literal_of fanins v (c.Sop.bits land (1 lsl v) <> 0) :: !lits
  done;
  match !lits with
  | [] -> Flat.Fconst true
  | [ l ] -> l
  | ls -> Flat.Fand ls

let mk_or = function
  | [] -> Flat.Fconst false
  | [ e ] -> e
  | es -> Flat.For_ es

let mk_and a b =
  match a, b with
  | Flat.Fconst true, x | x, Flat.Fconst true -> x
  | Flat.Fconst false, _ | _, Flat.Fconst false -> Flat.Fconst false
  | Flat.Fand xs, Flat.Fand ys -> Flat.Fand (xs @ ys)
  | Flat.Fand xs, y -> Flat.Fand (xs @ [ y ])
  | x, Flat.Fand ys -> Flat.Fand (x :: ys)
  | x, y -> Flat.Fand [ x; y ]

(* Count occurrences of each literal; returns the best (var, polarity)
   shared by at least two cubes, or None. *)
let best_literal nvars cubes =
  let pos = Array.make nvars 0 and neg = Array.make nvars 0 in
  List.iter
    (fun (c : Sop.implicant) ->
      for v = 0 to nvars - 1 do
        if c.Sop.mask land (1 lsl v) = 0 then
          if c.Sop.bits land (1 lsl v) <> 0 then pos.(v) <- pos.(v) + 1
          else neg.(v) <- neg.(v) + 1
      done)
    cubes;
  let best = ref None in
  for v = 0 to nvars - 1 do
    let consider count polarity =
      if count >= 2 then
        match !best with
        | None -> best := Some (v, polarity, count)
        | Some (_, _, c) -> if count > c then best := Some (v, polarity, count)
    in
    consider pos.(v) true;
    consider neg.(v) false
  done;
  match !best with Some (v, p, _) -> Some (v, p) | None -> None

let has_literal v pos (c : Sop.implicant) =
  c.Sop.mask land (1 lsl v) = 0
  && (c.Sop.bits land (1 lsl v) <> 0) = pos

let drop_literal v (c : Sop.implicant) =
  { Sop.bits = c.Sop.bits land lnot (1 lsl v);
    Sop.mask = c.Sop.mask lor (1 lsl v) }

(* [factor fanins sop] rebuilds [sop] as a factored expression over the
   fanin names. *)
let factor fanins sop =
  let nvars = Sop.nvars sop in
  let rec go cubes =
    match cubes with
    | [] -> Flat.Fconst false
    | _ when List.exists (fun (c : Sop.implicant) ->
                 c.Sop.mask land ((1 lsl nvars) - 1) = (1 lsl nvars) - 1) cubes ->
        Flat.Fconst true
    | [ c ] -> cube_expr fanins nvars c
    | cubes -> (
        match best_literal nvars cubes with
        | None -> mk_or (List.map (cube_expr fanins nvars) cubes)
        | Some (v, pos) ->
            let inside, outside = List.partition (has_literal v pos) cubes in
            let quotient = List.map (drop_literal v) inside in
            let lead = mk_and (literal_of fanins v pos) (go quotient) in
            if outside = [] then lead else mk_or [ lead; go outside ])
  in
  if nvars = 0 then
    (if Sop.is_zero sop then Flat.Fconst false else Flat.Fconst true)
  else go (Sop.cubes sop)
