(** Algebraic factoring of two-level functions (the optimizer's
    level-reduction step, §4.3.1).

    Recursive best-literal division: pull out the literal shared by the
    most cubes, factor quotient and remainder, recurse. *)

val factor : string array -> Sop.t -> Icdb_iif.Flat.fexpr
(** [factor fanins sop] rebuilds [sop] as a multi-level expression over
    the fanin names, preserving the function while reducing literal
    count. Minimize the SOP first for best results. *)
