(* Two-level (sum-of-products) representation and minimization.

   Used node-locally by the logic optimizer: node functions are small
   (a handful of fanins), so exact Quine–McCluskey prime generation with
   an essential-then-greedy cover is affordable and deterministic. *)

(* An implicant over [nvars] variables: [bits] gives the value of the
   cared-about variables, [mask] has a 1 for every don't-care position. *)
type implicant = { bits : int; mask : int }

type t = {
  nvars : int;
  implicants : implicant list;
}

let nvars t = t.nvars

let cubes t = t.implicants

let zero nvars = { nvars; implicants = [] }

let one nvars = { nvars; implicants = [ { bits = 0; mask = (1 lsl nvars) - 1 } ] }

let is_zero t = t.implicants = []

let is_one t =
  let full = (1 lsl t.nvars) - 1 in
  List.exists (fun i -> i.mask land full = full) t.implicants

(* Does implicant [i] cover minterm [m]? *)
let covers i m = i.bits land lnot i.mask = m land lnot i.mask

let eval t assignment =
  (* [assignment] bit i = value of variable i *)
  List.exists (fun i -> covers i assignment) t.implicants

let of_minterms nvars minterms =
  if nvars > 20 then invalid_arg "Sop.of_minterms: too many variables";
  { nvars;
    implicants = List.map (fun m -> { bits = m; mask = 0 }) minterms }

let minterms t =
  let n = 1 lsl t.nvars in
  let out = ref [] in
  for m = n - 1 downto 0 do
    if eval t m then out := m :: !out
  done;
  !out

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

(* Literal count of an implicant: variables not masked out. *)
let implicant_literals t i = t.nvars - popcount i.mask

let literal_count t =
  List.fold_left (fun acc i -> acc + implicant_literals t i) 0 t.implicants

(* ------------------------------------------------------------------ *)
(* Quine–McCluskey prime implicant generation                          *)
(* ------------------------------------------------------------------ *)

(* Combine two implicants differing in exactly one cared bit. *)
let try_combine a b =
  if a.mask <> b.mask then None
  else
    let diff = (a.bits lxor b.bits) land lnot a.mask in
    if diff <> 0 && diff land (diff - 1) = 0 then
      Some { bits = a.bits land lnot diff; mask = a.mask lor diff }
    else None

let prime_implicants _nvars minterms =
  if minterms = [] then []
  else begin
    let current = ref (List.map (fun m -> { bits = m; mask = 0 }) minterms) in
    let primes = ref [] in
    let continue_ = ref true in
    while !continue_ do
      let arr = Array.of_list !current in
      let n = Array.length arr in
      let used = Array.make n false in
      let next = Hashtbl.create 64 in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          match try_combine arr.(i) arr.(j) with
          | Some c ->
              used.(i) <- true;
              used.(j) <- true;
              Hashtbl.replace next (c.bits, c.mask) c
          | None -> ()
        done
      done;
      for i = 0 to n - 1 do
        if not used.(i) then primes := arr.(i) :: !primes
      done;
      let merged = Hashtbl.fold (fun _ c acc -> c :: acc) next [] in
      if merged = [] then continue_ := false else current := merged
    done;
    (* dedupe primes *)
    let seen = Hashtbl.create 64 in
    List.filter
      (fun p ->
        if Hashtbl.mem seen (p.bits, p.mask) then false
        else begin
          Hashtbl.add seen (p.bits, p.mask) ();
          true
        end)
      !primes
    |> List.sort compare
  end

(* Cover selection: essential primes first, then greedily pick the prime
   covering the most remaining minterms (ties broken by fewer literals,
   then lexicographically, for determinism). *)
let select_cover nvars primes minterms =
  ignore nvars;
  let remaining = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace remaining m ()) minterms;
  let chosen = ref [] in
  let choose p =
    chosen := p :: !chosen;
    List.iter
      (fun m -> if covers p m then Hashtbl.remove remaining m)
      minterms
  in
  (* essential primes *)
  List.iter
    (fun m ->
      if Hashtbl.mem remaining m then begin
        match List.filter (fun p -> covers p m) primes with
        | [ p ] when not (List.mem p !chosen) -> choose p
        | _ -> ()
      end)
    minterms;
  (* greedy for the rest *)
  while Hashtbl.length remaining > 0 do
    let best = ref None in
    List.iter
      (fun p ->
        if not (List.mem p !chosen) then begin
          let gain =
            Hashtbl.fold
              (fun m () acc -> if covers p m then acc + 1 else acc)
              remaining 0
          in
          if gain > 0 then
            match !best with
            | None -> best := Some (p, gain)
            | Some (bp, bg) ->
                if gain > bg
                   || (gain = bg && popcount p.mask > popcount bp.mask)
                   || (gain = bg && popcount p.mask = popcount bp.mask
                       && compare p bp < 0)
                then best := Some (p, gain)
        end)
      primes;
    match !best with
    | Some (p, _) -> choose p
    | None -> Hashtbl.reset remaining (* unreachable: primes cover all *)
  done;
  List.rev !chosen

let minimize t =
  let ms = minterms t in
  if ms = [] then zero t.nvars
  else
    let primes = prime_implicants t.nvars ms in
    { t with implicants = select_cover t.nvars primes ms }

(* ------------------------------------------------------------------ *)
(* Conversion to/from flat expressions over a fanin list               *)
(* ------------------------------------------------------------------ *)

open Icdb_iif

exception Too_wide

let max_truth_table_vars = 12

(* Build the SOP of [expr] treating [fanins] as its variables (index i
   of the array = variable i). @raise Too_wide beyond
   [max_truth_table_vars]; @raise Invalid_argument on sequential or
   interface operators. *)
let of_fexpr fanins expr =
  let n = Array.length fanins in
  if n > max_truth_table_vars then raise Too_wide;
  let index = Hashtbl.create 8 in
  Array.iteri (fun i v -> Hashtbl.replace index v i) fanins;
  let rec ev assignment e =
    match e with
    | Flat.Fconst b -> b
    | Flat.Fnet v -> (
        match Hashtbl.find_opt index v with
        | Some i -> (assignment lsr i) land 1 = 1
        | None -> invalid_arg ("Sop.of_fexpr: unknown fanin " ^ v))
    | Flat.Fnot e -> not (ev assignment e)
    | Flat.Fand es -> List.for_all (ev assignment) es
    | Flat.For_ es -> List.exists (ev assignment) es
    | Flat.Fxor (a, b) -> ev assignment a <> ev assignment b
    | Flat.Fxnor (a, b) -> ev assignment a = ev assignment b
    | Flat.Fbuf e | Flat.Fschmitt e -> ev assignment e
    | Flat.Fdelay _ | Flat.Ftri _ | Flat.Fwor _ ->
        invalid_arg "Sop.of_fexpr: interface operator in logic cone"
  in
  let ms = ref [] in
  for m = (1 lsl n) - 1 downto 0 do
    if ev m expr then ms := m :: !ms
  done;
  of_minterms n !ms

(* Rebuild a (two-level) expression over fanin names. *)
let to_fexpr fanins t =
  let lit i v =
    if i.mask land (1 lsl v) <> 0 then None
    else if i.bits land (1 lsl v) <> 0 then Some (Flat.Fnet fanins.(v))
    else Some (Flat.Fnot (Flat.Fnet fanins.(v)))
  in
  let cube_expr i =
    let lits = List.filter_map (lit i) (List.init t.nvars Fun.id) in
    match lits with
    | [] -> Flat.Fconst true
    | [ l ] -> l
    | ls -> Flat.Fand ls
  in
  match t.implicants with
  | [] -> Flat.Fconst false
  | [ c ] -> cube_expr c
  | cs -> Flat.For_ (List.map cube_expr cs)
