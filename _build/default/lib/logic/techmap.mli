(** Technology mapping: boolean network to cell netlist.

    Gate expressions are decomposed into a hash-consed NAND2/INV
    subject DAG (XOR/XNOR/BUF/SCHMITT remain primitive and map
    one-to-one); the DAG is split into trees at multi-fanout and
    boundary points, and dynamic programming picks the
    minimum-transistor cover from the cell library's pattern set.
    Sequential and interface elements map directly to their cells,
    with falling-edge clocks realized by an inserted inverter. *)

exception Map_error of string

val map :
  ?cells:Celllib.t list -> Network.t -> Icdb_netlist.Netlist.t
(** [map network] lowers a (swept) boolean network to a cell netlist.
    [cells] restricts the pattern library available to the covering
    (default: all matchable cells); INV and NAND2 must be included so
    every subject graph stays coverable.
    @raise Map_error on combinational cycles or unlowered interface
    operators. *)
