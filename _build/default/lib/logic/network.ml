(* Boolean network: the logic optimizer's working representation.

   Built from a flat IIF design by separating combinational cones from
   registers, latches and interface elements. Gate nodes carry arbitrary
   combinational expressions over net names; optimization passes rewrite
   them, and the technology mapper finally lowers them to cells. *)

open Icdb_iif

type element =
  | Gate of { out : string; expr : Flat.fexpr }
  | Reg of {
      out : string;
      data : string;
      clock : string;
      rising : bool;
      set : string option;    (* net: async set condition, active high *)
      reset : string option;  (* net: async reset condition, active high *)
    }
  | Lat of { out : string; data : string; gate : string; transparent_high : bool }
  | Tri of { out : string; data : string; enable : string }
  | Delay_el of { out : string; input : string; ns : float }

type t = {
  name : string;
  inputs : string list;
  outputs : string list;
  mutable elements : element list;  (* in creation order *)
}

exception Network_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Network_error s)) fmt

let element_out = function
  | Gate { out; _ } | Reg { out; _ } | Lat { out; _ } | Tri { out; _ }
  | Delay_el { out; _ } -> out

let element_reads = function
  | Gate { expr; _ } -> Flat.fexpr_nets expr
  | Reg { data; clock; set; reset; _ } ->
      [ data; clock ] @ Option.to_list set @ Option.to_list reset
  | Lat { data; gate; _ } -> [ data; gate ]
  | Tri { data; enable; _ } -> [ data; enable ]
  | Delay_el { input; _ } -> [ input ]

(* ------------------------------------------------------------------ *)
(* Construction from flat IIF                                          *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable acc : element list;
  mutable counter : int;
}

let fresh b base =
  b.counter <- b.counter + 1;
  Printf.sprintf "%s$%d" base b.counter

let add b el = b.acc <- el :: b.acc

(* Ensure an expression is available on a net; trivial nets pass
   through, anything else gets a gate on a fresh (or given) net. *)
let as_net b ~hint expr =
  match expr with
  | Flat.Fnet n -> n
  | expr ->
      let n = fresh b hint in
      add b (Gate { out = n; expr });
      n

(* Interface operators are only meaningful at the top of an equation;
   check the rest of a cone is pure logic. *)
let rec check_pure target = function
  | Flat.Fconst _ | Flat.Fnet _ -> ()
  | Flat.Fnot e | Flat.Fbuf e | Flat.Fschmitt e -> check_pure target e
  | Flat.Fand es | Flat.For_ es -> List.iter (check_pure target) es
  | Flat.Fxor (a, b) | Flat.Fxnor (a, b) ->
      check_pure target a;
      check_pure target b
  | Flat.Fdelay _ -> fail "net %s: ~d nested inside logic" target
  | Flat.Ftri _ -> fail "net %s: ~t nested inside logic" target
  | Flat.Fwor _ -> fail "net %s: ~w nested inside logic" target

let lower_comb b target rhs =
  match rhs with
  | Flat.Ftri { data; enable } ->
      check_pure target data;
      check_pure target enable;
      let d = as_net b ~hint:(target ^ "$d") data in
      let e = as_net b ~hint:(target ^ "$en") enable in
      add b (Tri { out = target; data = d; enable = e })
  | Flat.Fwor es ->
      (* Each driver becomes a tri-state contribution on the shared net;
         plain expressions drive through an always-enabled buffer. *)
      List.iter
        (fun e ->
          match e with
          | Flat.Ftri { data; enable } ->
              check_pure target data;
              check_pure target enable;
              let d = as_net b ~hint:(target ^ "$d") data in
              let en = as_net b ~hint:(target ^ "$en") enable in
              add b (Tri { out = target; data = d; enable = en })
          | e ->
              check_pure target e;
              let d = as_net b ~hint:(target ^ "$d") e in
              add b (Tri { out = target; data = d; enable = "$const1" }))
        es
  | Flat.Fdelay (e, ns) ->
      check_pure target e;
      let d = as_net b ~hint:(target ^ "$d") e in
      add b (Delay_el { out = target; input = d; ns })
  | rhs ->
      check_pure target rhs;
      add b (Gate { out = target; expr = rhs })

(* Merge same-polarity async conditions into one OR'd condition net. *)
let async_cond b target suffix conds =
  match conds with
  | [] -> None
  | [ c ] -> Some (as_net b ~hint:(target ^ suffix) c)
  | cs ->
      let n = fresh b (target ^ suffix) in
      add b (Gate { out = n; expr = Flat.For_ cs });
      Some n

let of_flat (flat : Flat.t) =
  let b = { acc = []; counter = 0 } in
  List.iter
    (fun eq ->
      match eq with
      | Flat.Comb { target; rhs } -> lower_comb b target rhs
      | Flat.Ff { target; data; rising; clock; asyncs } ->
          check_pure target data;
          check_pure target clock;
          let d = as_net b ~hint:(target ^ "$D") data in
          let ck = as_net b ~hint:(target ^ "$CK") clock in
          let sets =
            List.filter_map
              (fun (a : Flat.async) -> if a.value then Some a.cond else None)
              asyncs
          in
          let resets =
            List.filter_map
              (fun (a : Flat.async) -> if a.value then None else Some a.cond)
              asyncs
          in
          List.iter (check_pure target) (sets @ resets);
          let set = async_cond b target "$S" sets in
          let reset = async_cond b target "$R" resets in
          add b (Reg { out = target; data = d; clock = ck; rising; set; reset })
      | Flat.Latch { target; data; transparent_high; gate } ->
          check_pure target data;
          check_pure target gate;
          let d = as_net b ~hint:(target ^ "$D") data in
          let g = as_net b ~hint:(target ^ "$G") gate in
          add b (Lat { out = target; data = d; gate = g; transparent_high }))
    flat.Flat.fequations;
  { name = flat.Flat.fname;
    inputs = flat.Flat.finputs;
    outputs = flat.Flat.foutputs;
    elements = List.rev b.acc }

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

let gates t =
  List.filter_map
    (fun el -> match el with Gate { out; expr } -> Some (out, expr)
                           | Reg _ | Lat _ | Tri _ | Delay_el _ -> None)
    t.elements

let driver_table t =
  let h = Hashtbl.create 64 in
  List.iter
    (fun el ->
      let out = element_out el in
      (* multiple Tri drivers on one net are legal *)
      match el, Hashtbl.find_opt h out with
      | Tri _, _ -> ()
      | _, Some _ -> fail "net %s has multiple drivers" out
      | _, None -> Hashtbl.replace h out el)
    t.elements;
  h

(* Nets that must survive optimization: outputs and every net read by a
   sequential or interface element. *)
let visible_nets t =
  let keep = Hashtbl.create 32 in
  List.iter (fun o -> Hashtbl.replace keep o ()) t.outputs;
  List.iter
    (fun el ->
      match el with
      | Gate _ -> ()
      | Reg _ | Lat _ | Tri _ | Delay_el _ ->
          Hashtbl.replace keep (element_out el) ();
          List.iter (fun n -> Hashtbl.replace keep n ()) (element_reads el))
    t.elements;
  keep

(* Count of logic literals over all gate nodes (the optimizer's cost). *)
let literal_count t =
  let rec lits = function
    | Flat.Fconst _ -> 0
    | Flat.Fnet _ -> 1
    | Flat.Fnot e | Flat.Fbuf e | Flat.Fschmitt e -> lits e
    | Flat.Fand es | Flat.For_ es ->
        List.fold_left (fun a e -> a + lits e) 0 es
    | Flat.Fxor (a, b) | Flat.Fxnor (a, b) -> lits a + lits b
    | Flat.Fdelay (e, _) -> lits e
    | Flat.Ftri { data; enable } -> lits data + lits enable
    | Flat.Fwor es -> List.fold_left (fun a e -> a + lits e) 0 es
  in
  List.fold_left
    (fun acc el ->
      match el with Gate { expr; _ } -> acc + lits expr | _ -> acc)
    0 t.elements
