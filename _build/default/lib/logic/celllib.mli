(** The technology cell library.

    ICDB stores, for each basic cell, the three §4.4.1 delay figures —
    X (delay per unit of transistor load), Y (intrinsic) and Z (per
    fanout) — plus the geometry the §4.4.2 area estimator needs. The
    numbers model a late-1980s 2µm CMOS standard-cell family and are
    the single calibration point for every experiment.

    Sizing: a drive multiplier [s >= 1] divides the load-dependent
    delay term and scales the cell's width and the load it presents to
    its drivers (TILOS-style). *)

open Icdb_iif

(** Matching pattern over the NAND2/INV subject graph. *)
type pattern =
  | Pleaf
  | Pinv of pattern
  | Pnand of pattern * pattern

type kind =
  | Comb
  | Ff of { has_set : bool; has_reset : bool }
  | Latch_cell of { transparent_high : bool }
  | Tri_cell

type t = {
  cname : string;
  inputs : string list;
  output : string;
  logic : Flat.fexpr option;  (** combinational function over pin names *)
  kind : kind;
  transistors : int;
  width : float;              (** µm at size 1.0 *)
  x_delay : float;            (** ns per unit-transistor load *)
  y_delay : float;            (** intrinsic ns *)
  z_delay : float;            (** ns per fanout *)
  input_load : float;         (** unit transistors per input at size 1 *)
  setup : float;              (** ns, sequential cells only *)
  patterns : pattern list;    (** tree-covering patterns; [] = direct map *)
}

val cell_height : float
(** Every cell occupies one strip row of this height (µm). *)

(** {1 The cells} *)

val inv : t
val buf : t
val nand2 : t
val nand3 : t
val nand4 : t
val nor2 : t
val nor3 : t
val and2 : t
val or2 : t
val aoi21 : t
val oai21 : t
val aoi22 : t
val oai22 : t
val xor2 : t
val xnor2 : t
val schmitt : t
val tbuf : t
val dff : t
val dff_r : t
val dff_s : t
val dff_sr : t
val latch_h : t
val latch_l : t
val tie0 : t
val tie1 : t

val all : t list

val find : string -> t option
val find_exn : string -> t

val ff_cell : has_set:bool -> has_reset:bool -> t
val latch_cell : transparent_high:bool -> t

val is_output_pin : string -> string -> bool
(** [is_output_pin cell pin] for {!Icdb_netlist.Netlist.fanouts}. *)

val matchable : t list
(** Cells with covering patterns, cheapest first. *)

(** {1 Sizing model} *)

val sized_width : t -> float -> float
val sized_input_load : t -> float -> float

val delay : t -> size:float -> load:float -> fanout:int -> float
(** The §4.4.1 formula: [load*X/size + Y + fanout*Z]. *)
