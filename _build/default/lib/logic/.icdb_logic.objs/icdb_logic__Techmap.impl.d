lib/logic/techmap.ml: Array Celllib Flat Float Hashtbl Icdb_iif Icdb_netlist List Network Printf
