lib/logic/network.ml: Flat Hashtbl Icdb_iif List Option Printf
