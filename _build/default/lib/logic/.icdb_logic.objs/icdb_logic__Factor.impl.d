lib/logic/factor.ml: Array Flat Icdb_iif List Sop
