lib/logic/celllib.ml: Flat Hashtbl Icdb_iif List
