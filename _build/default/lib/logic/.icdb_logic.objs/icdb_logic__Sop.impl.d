lib/logic/sop.ml: Array Flat Fun Hashtbl Icdb_iif List
