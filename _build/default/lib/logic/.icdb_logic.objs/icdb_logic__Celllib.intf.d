lib/logic/celllib.mli: Flat Icdb_iif
