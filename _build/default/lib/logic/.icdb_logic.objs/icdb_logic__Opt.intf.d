lib/logic/opt.mli: Hashtbl Icdb_iif Network
