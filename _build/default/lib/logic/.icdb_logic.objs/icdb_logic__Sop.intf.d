lib/logic/sop.mli: Icdb_iif
