lib/logic/network.mli: Flat Hashtbl Icdb_iif
