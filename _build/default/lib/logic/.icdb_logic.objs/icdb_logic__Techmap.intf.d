lib/logic/techmap.mli: Celllib Icdb_netlist Network
