lib/logic/factor.mli: Icdb_iif Sop
