lib/logic/opt.ml: Array Factor Flat Hashtbl Icdb_iif List Network Printf Sop
