(** Multi-level logic optimization (the MILO substitute, §4.3.1).

    Passes rewrite the {!Network.t}'s combinational gate nodes in
    place; sequential and interface elements are never touched, so any
    pass sequence preserves the design's function (checked by the fuzz
    suite against the reference interpreter). *)

val subst_nets :
  (string, Icdb_iif.Flat.fexpr) Hashtbl.t ->
  Icdb_iif.Flat.fexpr ->
  Icdb_iif.Flat.fexpr
(** Replace net reads by expressions. *)

val fold : Icdb_iif.Flat.fexpr -> Icdb_iif.Flat.fexpr
(** Constant folding and local identities (x*1, x+0, !!x, ...). *)

val is_sop_friendly : Icdb_iif.Flat.fexpr -> bool
(** Pure AND/OR/NOT cone, minimizable through {!Sop}. *)

val sweep : Network.t -> unit
(** Constant propagation, alias inlining and dead-node removal, to a
    fixpoint. Also the minimal preparation the technology mapper
    needs (resolves constants feeding sequential elements). *)

val extract_special : Network.t -> unit
(** Hoist XOR/XNOR/BUF/SCHMITT subtrees out of mixed gates into their
    own nodes so the remaining logic is SOP-friendly. *)

val minimize_expr : Icdb_iif.Flat.fexpr -> Icdb_iif.Flat.fexpr
(** Minimize one SOP-friendly expression (truth table -> QM -> factor);
    returns the input unchanged if it is too wide or not SOP-friendly. *)

val minimize_nodes : Network.t -> unit
(** Apply {!minimize_expr} to every gate node. *)

val eliminate : Network.t -> unit
(** Collapse single-fanout invisible nodes into their reader and
    re-minimize, bounded by a support-size limit (level reduction). *)

val optimize : Network.t -> unit
(** The full script: sweep, extract, minimize, eliminate, minimize,
    sweep. *)
