(* Design-quality comparison: the same allocation served by ICDB, by a
   fixed component library, and by a generic library (the paper's §1
   argument, quantified). *)

open Icdb

type need = {
  n_component : string;
  n_size : int;
  n_active_low_inputs : int;  (* polarity mismatches vs the catalog *)
  n_max_delay : float option; (* per-component delay budget, ns *)
}

type verdict = {
  v_approach : string;
  v_total_area : float;
  v_worst_delay : float;     (* slowest component: sets the clock *)
  v_violations : int;        (* components whose budget was missed *)
  v_relaxed_ns : float;      (* total ns of constraint relaxation *)
  v_shape_alternatives : int; (* floorplanning freedom: total shapes *)
}

let icdb_verdict server needs =
  let results =
    List.map
      (fun n ->
        let constraints =
          match n.n_max_delay with
          | Some d ->
              { Icdb_timing.Sizing.default_constraints with
                comb_delays = [ ("*", d) ];
                clock_width = Some d }
          | None -> Icdb_timing.Sizing.default_constraints
        in
        (* polarity mismatches cost ICDB nothing: it generates the part
           with the right attribute (inverted ports are free) *)
        Server.request_component server
          (Spec.make ~constraints
             (Spec.From_component
                { component = n.n_component;
                  attributes = [ ("size", n.n_size) ];
                  functions = [] })))
      needs
  in
  let total_area =
    List.fold_left (fun acc i -> acc +. Instance.best_area i) 0.0 results
  in
  let worst_delay =
    List.fold_left
      (fun acc i ->
        List.fold_left
          (fun acc (_, wd) -> Float.max acc wd)
          (Float.max acc i.Instance.report.Icdb_timing.Sta.clock_width)
          i.Instance.report.Icdb_timing.Sta.output_delays)
      0.0 results
  in
  let violations =
    List.length (List.filter (fun i -> not i.Instance.constraints_met) results)
  in
  let shapes =
    List.fold_left (fun acc i -> acc + List.length i.Instance.shape) 0 results
  in
  { v_approach = "icdb";
    v_total_area = total_area;
    v_worst_delay = worst_delay;
    v_violations = violations;
    v_relaxed_ns = 0.0;
    v_shape_alternatives = shapes }

let fixed_verdict fixed needs =
  let results =
    List.map
      (fun n ->
        Fixed_lib.request fixed ~component:n.n_component ~size:n.n_size
          ~active_low_inputs:n.n_active_low_inputs ?max_delay:n.n_max_delay ())
      needs
  in
  { v_approach = "fixed";
    v_total_area =
      List.fold_left (fun acc r -> acc +. r.Fixed_lib.area) 0.0 results;
    v_worst_delay =
      List.fold_left (fun acc r -> Float.max acc r.Fixed_lib.worst_delay) 0.0
        results;
    v_violations =
      List.length (List.filter (fun r -> r.Fixed_lib.violation > 0.0) results);
    v_relaxed_ns =
      List.fold_left (fun acc r -> acc +. r.Fixed_lib.violation) 0.0 results;
    (* fixed parts come in the one shape they were laid out in *)
    v_shape_alternatives = List.length results }

let generic_verdict server needs =
  let results =
    List.map
      (fun n ->
        Generic_lib.request server ~component:n.n_component ~size:n.n_size)
      needs
  in
  { v_approach = "generic";
    v_total_area =
      List.fold_left (fun acc r -> acc +. r.Generic_lib.assumed_area) 0.0 results;
    v_worst_delay =
      List.fold_left
        (fun acc r -> Float.max acc r.Generic_lib.assumed_delay)
        0.0 results;
    v_violations = 0;  (* nothing to violate: there were no numbers *)
    v_relaxed_ns = 0.0;
    v_shape_alternatives = 0 }

let verdict_to_string v =
  Printf.sprintf
    "%-8s area=%9.0f um2  worst-delay=%6.1f ns  violations=%d  relaxed=%.1f ns  shapes=%d"
    v.v_approach v.v_total_area v.v_worst_delay v.v_violations v.v_relaxed_ns
    v.v_shape_alternatives
