(* The fixed component library baseline (§1).

   The traditional approach ICDB replaces: a catalog of pre-generated
   parts at a few discrete sizes and speed grades. Requests must settle
   for the nearest larger part (wasting bits), pad mismatched attributes
   with inverters, and relax timing constraints the catalog cannot
   meet — exactly the failure modes the paper's introduction lists. *)

open Icdb
open Icdb_timing

type entry = {
  e_component : string;
  e_size : int;
  e_grade : Sizing.strategy;
  e_instance : Instance.t;
}

type t = {
  entries : entry list;
}

type response = {
  chosen : entry;
  oversize_bits : int;        (* requested < catalog size: wasted width *)
  padding_gates : int;        (* inverters added for attribute mismatch *)
  area : float;               (* catalog part + padding *)
  worst_delay : float;        (* including padding *)
  clock_width : float;
  violation : float;          (* ns the request's bound is exceeded by *)
}

exception No_part of string

let catalog_sizes = [ 4; 8; 16 ]
let grades = [ Sizing.Cheapest; Sizing.Fastest ]

(* Pre-generate every catalog part once, through the same generation
   pipeline ICDB uses, so the comparison is apples-to-apples. *)
let build server components =
  let entries =
    List.concat_map
      (fun comp ->
        List.concat_map
          (fun size ->
            List.map
              (fun grade ->
                let spec =
                  Spec.make
                    ~constraints:
                      { Sizing.default_constraints with strategy = grade }
                    (Spec.From_component
                       { component = comp;
                         attributes = [ ("size", size) ];
                         functions = [] })
                in
                { e_component = comp;
                  e_size = size;
                  e_grade = grade;
                  e_instance = Server.request_component server spec })
              grades)
          catalog_sizes)
      components
  in
  { entries }

let inverter_area =
  let c = Icdb_logic.Celllib.inv in
  Icdb_logic.Celllib.sized_width c 1.0 *. Icdb_logic.Celllib.cell_height

let inverter_delay = Icdb_logic.Celllib.inv.Icdb_logic.Celllib.y_delay

let worst_output_delay (i : Instance.t) =
  List.fold_left
    (fun acc (_, wd) -> Float.max acc wd)
    0.0 i.Instance.report.Sta.output_delays

(* [request] picks the cheapest catalog part that can serve the need.
   [active_low_inputs] counts data inputs whose polarity mismatches and
   must be padded with inverters (the §1 example). *)
let request t ~component ~size ?(active_low_inputs = 0) ?max_delay () =
  let candidates =
    List.filter
      (fun e -> e.e_component = component && e.e_size >= size)
      t.entries
  in
  if candidates = [] then
    raise
      (No_part (Printf.sprintf "no %s of size >= %d in the fixed library"
                  component size));
  let evaluate e =
    let padding_gates = active_low_inputs in
    let wd =
      worst_output_delay e.e_instance
      +. (float_of_int padding_gates *. inverter_delay)
    in
    let area =
      Instance.best_area e.e_instance
      +. (float_of_int padding_gates *. inverter_area)
    in
    let violation =
      match max_delay with
      | Some bound -> Float.max 0.0 (wd -. bound)
      | None -> 0.0
    in
    { chosen = e;
      oversize_bits = e.e_size - size;
      padding_gates;
      area;
      worst_delay = wd;
      clock_width =
        e.e_instance.Instance.report.Sta.clock_width
        +. (float_of_int padding_gates *. inverter_delay);
      violation }
  in
  let responses = List.map evaluate candidates in
  (* prefer meeting the bound; among those, smallest area *)
  let meets, misses = List.partition (fun r -> r.violation = 0.0) responses in
  let best rs =
    List.fold_left
      (fun acc r ->
        match acc with
        | None -> Some r
        | Some b -> if r.area < b.area then Some r else acc)
      None rs
  in
  match best meets with
  | Some r -> r
  | None -> (
      (* constraint unreachable with the catalog: the tool must relax,
         taking the least-violating part *)
      match
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some b -> if r.violation < b.violation then Some r else acc)
          None misses
      with
      | Some r -> r
      | None -> assert false)
