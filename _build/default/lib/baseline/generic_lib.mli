(** The generic component library baseline (§1): abstract component
    kinds with no delay or area figures. A tool scheduling against it
    budgets worst-case margins, and no shape function exists for
    floorplanning. *)

open Icdb

val delay_margin : float
(** Pessimism a careful tool applies with no numbers (1.6). *)

val area_margin : float
(** Area budget factor (1.5). *)

type response = {
  assumed_delay : float;        (** what the tool must budget, ns *)
  assumed_area : float;         (** budgeted floor area, µm² *)
  actual_instance : Instance.t; (** ground truth, known only after layout *)
  delay_overbudget : float;     (** budgeted minus actual *)
  area_overbudget : float;
  has_shape_function : bool;    (** always false *)
}

val request : Server.t -> component:string -> size:int -> response
