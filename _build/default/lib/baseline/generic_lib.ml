(* The generic component library baseline (§1).

   The other traditional approach: a library of abstract component
   kinds with no delay or area figures ("when using a generic library,
   a synthesis tool does not have information on the component's delay
   or area"). A tool scheduling against it must budget worst-case
   margins; the resulting designs are correct but over-provisioned, and
   no shape function exists for floorplanning. *)

open Icdb

(* Pessimism factors a careful tool applies when it has no numbers:
   clock periods padded by 60%, area budgeted at 50% over typical. *)
let delay_margin = 1.6
let area_margin = 1.5

type response = {
  assumed_delay : float;     (* what the tool must budget, ns *)
  assumed_area : float;      (* budgeted floor area, µm² *)
  actual_instance : Instance.t;  (* ground truth, known only after layout *)
  delay_overbudget : float;  (* budgeted - actual *)
  area_overbudget : float;
  has_shape_function : bool; (* always false: generic parts have none *)
}

(* The tool requests a kind + size; the generic library gives no
   numbers, so the budget is the margin times the eventually-realized
   figures (the tool would use table margins; using actuals x margin
   keeps the comparison conservative toward the baseline). *)
let request server ~component ~size =
  let spec =
    Spec.make
      (Spec.From_component
         { component; attributes = [ ("size", size) ]; functions = [] })
  in
  let inst = Server.request_component server spec in
  let actual_delay =
    List.fold_left
      (fun acc (_, wd) -> Float.max acc wd)
      inst.Instance.report.Icdb_timing.Sta.clock_width
      inst.Instance.report.Icdb_timing.Sta.output_delays
  in
  let actual_area = Instance.best_area inst in
  { assumed_delay = actual_delay *. delay_margin;
    assumed_area = actual_area *. area_margin;
    actual_instance = inst;
    delay_overbudget = actual_delay *. (delay_margin -. 1.0);
    area_overbudget = actual_area *. (area_margin -. 1.0);
    has_shape_function = false }
