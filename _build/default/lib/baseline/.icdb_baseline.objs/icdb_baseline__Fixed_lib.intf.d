lib/baseline/fixed_lib.mli: Icdb Icdb_timing Instance Server Sizing
