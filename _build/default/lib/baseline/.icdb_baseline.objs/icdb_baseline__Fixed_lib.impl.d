lib/baseline/fixed_lib.ml: Float Icdb Icdb_logic Icdb_timing Instance List Printf Server Sizing Spec Sta
