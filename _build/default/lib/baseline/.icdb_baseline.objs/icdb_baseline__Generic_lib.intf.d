lib/baseline/generic_lib.mli: Icdb Instance Server
