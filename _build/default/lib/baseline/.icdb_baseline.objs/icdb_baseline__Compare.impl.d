lib/baseline/compare.ml: Fixed_lib Float Generic_lib Icdb Icdb_timing Instance List Printf Server Spec
