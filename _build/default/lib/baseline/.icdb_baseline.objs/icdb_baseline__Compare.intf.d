lib/baseline/compare.mli: Fixed_lib Icdb Server
