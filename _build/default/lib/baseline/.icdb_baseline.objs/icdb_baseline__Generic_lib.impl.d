lib/baseline/generic_lib.ml: Float Icdb Icdb_timing Instance List Server Spec
