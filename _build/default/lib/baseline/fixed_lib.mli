(** The fixed component library baseline (§1): a catalog of
    pre-generated parts at discrete sizes and speed grades. Requests
    settle for the nearest larger part (wasting bits), pad mismatched
    polarities with inverters, and relax timing the catalog cannot
    meet — the failure modes the paper's introduction lists. *)

open Icdb
open Icdb_timing

type entry = {
  e_component : string;
  e_size : int;
  e_grade : Sizing.strategy;
  e_instance : Instance.t;
}

type t = { entries : entry list }

type response = {
  chosen : entry;
  oversize_bits : int;   (** catalog width minus requested width *)
  padding_gates : int;   (** inverters added for polarity mismatch *)
  area : float;          (** part plus padding, µm² *)
  worst_delay : float;   (** including padding, ns *)
  clock_width : float;
  violation : float;     (** ns over the request's bound; 0 if met *)
}

exception No_part of string

val catalog_sizes : int list
(** Widths pre-generated per component (4, 8, 16). *)

val build : Server.t -> string list -> t
(** Pre-generate the catalog for the named components through the same
    pipeline ICDB uses (both cheapest and fastest grades). *)

val request :
  t ->
  component:string ->
  size:int ->
  ?active_low_inputs:int ->
  ?max_delay:float ->
  unit ->
  response
(** Cheapest catalog part serving the need; prefers parts meeting
    [max_delay], otherwise returns the least-violating one (the tool
    must relax). @raise No_part when nothing is wide enough. *)
