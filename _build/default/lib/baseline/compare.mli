(** Design-quality comparison: the same allocation served by ICDB, the
    fixed library and the generic library — the §1 argument,
    quantified (bench experiment E13). *)

open Icdb

type need = {
  n_component : string;
  n_size : int;
  n_active_low_inputs : int;  (** polarity mismatches vs the catalog *)
  n_max_delay : float option; (** per-component delay budget, ns *)
}

type verdict = {
  v_approach : string;
  v_total_area : float;
  v_worst_delay : float;       (** slowest component: sets the clock *)
  v_violations : int;          (** components whose budget was missed *)
  v_relaxed_ns : float;        (** total constraint relaxation *)
  v_shape_alternatives : int;  (** floorplanning freedom *)
}

val icdb_verdict : Server.t -> need list -> verdict
val fixed_verdict : Fixed_lib.t -> need list -> verdict
val generic_verdict : Server.t -> need list -> verdict

val verdict_to_string : verdict -> string
