lib/core/attributes.ml: Flat Icdb_iif List String
