lib/core/spec.mli: Icdb_genus Icdb_timing Sizing
