lib/core/server.mli: Generator Icdb_genus Icdb_iif Icdb_layout Icdb_reldb Instance Spec
