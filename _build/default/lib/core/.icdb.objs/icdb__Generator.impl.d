lib/core/generator.ml: Celllib Flat Icdb_iif Icdb_logic Icdb_netlist Network Opt Techmap
