lib/core/spec.ml: Buffer Hashtbl Icdb_genus Icdb_timing List Printf Sizing
