lib/core/instance.mli: Icdb_genus Icdb_iif Icdb_layout Icdb_netlist Icdb_timing Lazy Netlist Power Shape Spec Sta
