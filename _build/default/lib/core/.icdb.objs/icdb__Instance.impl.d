lib/core/instance.ml: Icdb_genus Icdb_iif Icdb_layout Icdb_netlist Icdb_timing Lazy List Netlist Power Printf Shape Spec Sta String Vhdl
