lib/core/generator.mli: Icdb_iif Icdb_netlist
