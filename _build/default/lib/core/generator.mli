(** Component generators (§4.2 tool management).

    Each generator turns a flat IIF description into a cell netlist;
    the shared estimators then produce delay/shape figures. New
    generators arrive through the knowledge server
    ({!Server.insert_generator}); a request may name the generator to
    use. *)

type t = {
  gen_name : string;
  gen_description : string;
  synthesize : Icdb_iif.Flat.t -> Icdb_netlist.Netlist.t;
}

val milo : t
(** The full flow: multi-level optimization plus tree-covering mapping
    over the whole cell library. The default. *)

val direct : t
(** Quick-turnaround flow: sweep only, NAND2/INV covering. Faster and
    larger; useful for estimation passes and as an ablation baseline. *)

val builtins : t list
