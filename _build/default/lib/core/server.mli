(** The ICDB component server (§2): serves components to synthesis
    tools given attributes and constraints, running the full generation
    path of Figure 8 (IIF expansion, logic optimization, technology
    mapping, verification by simulation, transistor sizing, delay and
    shape estimation) and answering queries about implementations and
    generated instances.

    Metadata lives in the relational engine (the INGRES role); bulk
    design data — IIF sources, VHDL netlists, CIF layouts — lives in
    plain files under a workspace directory (the UNIX-file-system
    role), exactly as §2.3 describes. *)

type t

exception Icdb_error of string

val create : ?verify:bool -> ?workspace:string -> unit -> t
(** A server preloaded with the generic component library and the
    builtin generators. [verify] (default true) simulates every
    generated netlist against its IIF specification and fails loudly
    on mismatch. [workspace] defaults to a fresh temp directory. *)

val workspace : t -> string

val db : t -> Icdb_reldb.Db.t
(** The metadata database (the INGRES role): components,
    component_functions, implementations and instances tables, queryable
    through [Icdb_reldb.Sql]. *)

(** {1 Knowledge acquisition (§2.2, §4.2)} *)

val insert_implementation : t -> string -> string -> Icdb_iif.Ast.design
(** Register an IIF implementation source under a name; it becomes
    available to requests and as a SUBFUNCTION.
    @raise Icdb_error on parse errors. *)

val insert_generator : t -> Generator.t -> unit
(** Register an additional component generator. *)

val generator_names : t -> string list

(** {1 Catalog queries (§3.2.1)} *)

val function_query : t -> Icdb_genus.Func.t list -> string list
(** Components performing {e all} the given functions (an empty list
    returns the whole catalog). Answered through the SQL layer. *)

val implementation_query : t -> Icdb_genus.Func.t list -> string list

val component_query : t -> string -> Icdb_genus.Func.t list
(** Functions a component (or implementation) performs.
    @raise Icdb_error on unknown names. *)

(** {1 Generation (§3.2.2)} *)

val request_component : t -> Spec.t -> Instance.t
(** Generate (or fetch from the cache — identical specifications are
    never regenerated, §2.2) a component instance. Constraints are
    best-effort, as in the paper: check
    [Instance.constraints_met].
    @raise Icdb_error on unknown components/implementations, function
    mismatches, expansion or mapping failures, or verification
    mismatches. *)

val find_instance : t -> string -> Instance.t
(** @raise Icdb_error on unknown ids. *)

val instance_ids : t -> string list

val request_layout :
  t ->
  string ->
  ?alternative:int ->
  ?port_specs:Icdb_layout.Ports.spec list ->
  unit ->
  Icdb_layout.Cif.layout * string * string
(** [request_layout t id ~alternative ~port_specs ()] lays the instance
    out at the chosen shape alternative (0 = best area) with the given
    port positions (§3.3), returning the layout, the CIF text, and the
    workspace file it was stored in. *)

(** {1 Component list management (Appendix B §7)} *)

val start_design : t -> string -> unit
val start_transaction : t -> string -> unit
val put_in_component_list : t -> string -> string -> unit

val end_transaction : t -> string -> unit
(** Deletes every instance generated during the transaction that was
    not put in the component list. *)

val end_design : t -> string -> unit
(** Deletes the design's kept instances and forgets the design. *)

val component_list : t -> string -> string list
