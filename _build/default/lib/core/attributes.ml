(* The predefined component attributes of Appendix B §3:

     size, input_latch, output_latch, input_type, output_type,
     output_tri_state

   [size] (and other structural attributes) parameterize the IIF
   implementation; the remaining five are *universal*: they transform
   any catalog component's interface, which is exactly the flexibility
   the paper's abstract claims ("describe a component with different
   attributes (such as active low/high input, tri-state output)").
   Rather than demanding every IIF description anticipate them, ICDB
   applies them as rewrites of the flattened design:

   - input_type = 0:  data inputs are active low (pads inverted);
   - output_type = 0: data outputs are active low;
   - input_latch = 1: data inputs pass through a transparent-high
     latch gated by CLK;
   - output_latch = 1: data outputs are registered on rising CLK;
   - output_tri_state = 1: data outputs drive through tri-states
     enabled by a new OE input. *)

open Icdb_iif

type t = {
  input_active_low : bool;
  output_active_low : bool;
  input_latch : bool;
  output_latch : bool;
  output_tri_state : bool;
}

let universal_names =
  [ "input_type"; "output_type"; "input_latch"; "output_latch";
    "output_tri_state" ]

let default =
  { input_active_low = false;
    output_active_low = false;
    input_latch = false;
    output_latch = false;
    output_tri_state = false }

let is_trivial t = t = default

(* Separate the universal attributes from the component-specific ones.
   Conventions follow the paper: input_type/output_type are 1 for
   active high (the default) and 0 for active low; the others are
   0/1 flags. *)
let split attrs =
  let get name d =
    match List.assoc_opt name attrs with Some v -> v | None -> d
  in
  let t =
    { input_active_low = get "input_type" 1 = 0;
      output_active_low = get "output_type" 1 = 0;
      input_latch = get "input_latch" 0 = 1;
      output_latch = get "output_latch" 0 = 1;
      output_tri_state = get "output_tri_state" 0 = 1 }
  in
  let rest = List.filter (fun (n, _) -> not (List.mem n universal_names)) attrs in
  (t, rest)

(* ------------------------------------------------------------------ *)
(* Flat-design rewriting                                               *)
(* ------------------------------------------------------------------ *)

let rec subst_net old_ new_ e =
  match e with
  | Flat.Fconst _ -> e
  | Flat.Fnet n -> if n = old_ then Flat.Fnet new_ else e
  | Flat.Fnot e -> Flat.Fnot (subst_net old_ new_ e)
  | Flat.Fand es -> Flat.Fand (List.map (subst_net old_ new_) es)
  | Flat.For_ es -> Flat.For_ (List.map (subst_net old_ new_) es)
  | Flat.Fxor (a, b) -> Flat.Fxor (subst_net old_ new_ a, subst_net old_ new_ b)
  | Flat.Fxnor (a, b) -> Flat.Fxnor (subst_net old_ new_ a, subst_net old_ new_ b)
  | Flat.Fbuf e -> Flat.Fbuf (subst_net old_ new_ e)
  | Flat.Fschmitt e -> Flat.Fschmitt (subst_net old_ new_ e)
  | Flat.Fdelay (e, d) -> Flat.Fdelay (subst_net old_ new_ e, d)
  | Flat.Ftri { data; enable } ->
      Flat.Ftri { data = subst_net old_ new_ data;
                  enable = subst_net old_ new_ enable }
  | Flat.Fwor es -> Flat.Fwor (List.map (subst_net old_ new_) es)

let subst_equation old_ new_ eq =
  match eq with
  | Flat.Comb { target; rhs } ->
      Flat.Comb { target; rhs = subst_net old_ new_ rhs }
  | Flat.Ff { target; data; rising; clock; asyncs } ->
      Flat.Ff
        { target;
          data = subst_net old_ new_ data;
          rising;
          clock = subst_net old_ new_ clock;
          asyncs =
            List.map
              (fun (a : Flat.async) ->
                { a with cond = subst_net old_ new_ a.cond })
              asyncs }
  | Flat.Latch { target; data; transparent_high; gate } ->
      Flat.Latch
        { target;
          data = subst_net old_ new_ data;
          transparent_high;
          gate = subst_net old_ new_ gate }

(* Expanded net names of a declared port base: "D" covers "D" and
   every "D[i]". *)
let bits_of_port nets base =
  List.filter
    (fun n ->
      n = base
      || (String.length n > String.length base
          && String.sub n 0 (String.length base + 1) = base ^ "["))
    nets

let clock_net = "CLK"
let oe_net = "OE"

(* [apply flat t ~data_inputs ~data_outputs] rewrites the flattened
   design per the universal attributes. [data_inputs]/[data_outputs]
   are port base names (buses expand automatically); clock and control
   ports are untouched. *)
let apply (flat : Flat.t) (t : t) ~data_inputs ~data_outputs =
  if is_trivial t then flat
  else begin
    let equations = ref flat.fequations in
    let inputs = ref flat.finputs in
    let internals = ref flat.finternals in
    let in_bits =
      List.concat_map (bits_of_port flat.finputs) data_inputs
    in
    let out_bits =
      List.concat_map (bits_of_port flat.foutputs) data_outputs
    in
    let need_clock = t.input_latch || t.output_latch in
    if need_clock && not (List.mem clock_net !inputs) then
      inputs := !inputs @ [ clock_net ];
    (* inputs: core reads p$i, which is some function of pad p *)
    if t.input_active_low || t.input_latch then
      List.iter
        (fun p ->
          let core = p ^ "$i" in
          equations := List.map (subst_equation p core) !equations;
          let padded =
            if t.input_active_low then Flat.Fnot (Flat.Fnet p)
            else Flat.Fnet p
          in
          let eq =
            if t.input_latch then
              Flat.Latch
                { target = core;
                  data = padded;
                  transparent_high = true;
                  gate = Flat.Fnet clock_net }
            else Flat.Comb { target = core; rhs = padded }
          in
          equations := eq :: !equations;
          internals := core :: !internals)
        in_bits;
    (* outputs: pad o is derived from core o$c *)
    if t.output_active_low || t.output_latch || t.output_tri_state then begin
      if t.output_tri_state && not (List.mem oe_net !inputs) then
        inputs := !inputs @ [ oe_net ];
      List.iter
        (fun o ->
          let core = o ^ "$c" in
          (* the driving equation now targets the core net; internal
             feedback keeps reading the core value *)
          equations :=
            List.map
              (fun eq ->
                let eq = subst_equation o core eq in
                match eq with
                | Flat.Comb r when r.target = o ->
                    Flat.Comb { r with target = core }
                | Flat.Ff r when r.target = o -> Flat.Ff { r with target = core }
                | Flat.Latch r when r.target = o ->
                    Flat.Latch { r with target = core }
                | eq -> eq)
              !equations;
          internals := core :: !internals;
          let staged = ref (Flat.Fnet core) in
          if t.output_active_low then staged := Flat.Fnot !staged;
          let eq =
            if t.output_latch then begin
              let reg = o ^ "$r" in
              internals := reg :: !internals;
              equations :=
                Flat.Ff
                  { target = reg; data = !staged; rising = true;
                    clock = Flat.Fnet clock_net; asyncs = [] }
                :: !equations;
              staged := Flat.Fnet reg;
              if t.output_tri_state then
                Flat.Comb
                  { target = o;
                    rhs = Flat.Ftri { data = !staged; enable = Flat.Fnet oe_net } }
              else Flat.Comb { target = o; rhs = !staged }
            end
            else if t.output_tri_state then
              Flat.Comb
                { target = o;
                  rhs = Flat.Ftri { data = !staged; enable = Flat.Fnet oe_net } }
            else Flat.Comb { target = o; rhs = !staged }
          in
          equations := !equations @ [ eq ])
        out_bits
    end;
    { flat with
      finputs = !inputs;
      finternals = Flat.uniq !internals;
      fequations = !equations }
  end
