(** Component specifications: what a synthesis tool hands to
    request_component (§3.2.2). *)

open Icdb_timing

(** The three specification sources of §3.2.2, plus explicit
    implementation selection. *)
type source =
  | From_component of {
      component : string;                 (** catalog name, e.g. "counter" *)
      attributes : (string * int) list;   (** missing ones take defaults *)
      functions : Icdb_genus.Func.t list; (** required functions (may be []) *)
    }
  | From_implementation of {
      implementation : string;            (** IIF design name *)
      params : (string * int) list;       (** all IIF parameters *)
    }
  | From_iif of string        (** raw IIF source (control logic) *)
  | From_vhdl_netlist of string
      (** structural VHDL clustering generated instances (§6.3) *)

type target = Logic | Layout

type t = {
  source : source;
  constraints : Sizing.constraints;
  target : target;
  name_hint : string option;  (** user-chosen instance name *)
  generator : string option;  (** component generator to use (§4.2) *)
}

val make :
  ?constraints:Sizing.constraints ->
  ?target:target ->
  ?name_hint:string ->
  ?generator:string ->
  source ->
  t

val cache_key : t -> string
(** Canonical key: identical specifications reuse the stored instance
    instead of regenerating (§2.2). Covers source, constraints and
    generator (not the name hint). *)
