(* The ICDB component server (§2).

   Serves components to synthesis tools: given attributes and
   constraints it dynamically generates component instances through the
   full generation path of Figure 8 (IIF expansion, logic optimization,
   technology mapping, transistor sizing, delay and shape estimation)
   and answers queries about implementations and generated instances.

   Metadata lives in the relational engine (the INGRES role); bulk
   design data (IIF sources, VHDL netlists, CIF layouts) lives in plain
   files under a workspace directory (the UNIX-file-system role), and
   tools fetch file names from the database, exactly as §2.3 describes. *)

open Icdb_iif
open Icdb_logic
open Icdb_netlist
open Icdb_timing
open Icdb_layout
open Icdb_reldb
open Icdb_genus

exception Icdb_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Icdb_error s)) fmt

type design_book = {
  mutable kept : string list;          (* instances in the component list *)
  mutable tx_created : string list option;  (* instances made in the open tx *)
}

type t = {
  db : Db.t;
  workspace : string;
  registry : (string, Ast.design) Hashtbl.t;   (* IIF implementations *)
  generators : (string, Generator.t) Hashtbl.t;(* tool management (§4.2) *)
  instances : (string, Instance.t) Hashtbl.t;  (* id -> instance *)
  cache : (string, string) Hashtbl.t;          (* spec key -> instance id *)
  designs : (string, design_book) Hashtbl.t;   (* component lists (App B §7) *)
  mutable seq : int;
  verify : bool;  (* simulate generated netlists against their IIF spec *)
}

(* ------------------------------------------------------------------ *)
(* Creation and knowledge acquisition                                  *)
(* ------------------------------------------------------------------ *)

let fresh_workspace () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "icdb_ws_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let write_file t name contents =
  let path = Filename.concat t.workspace name in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents);
  path

let setup_tables db =
  ignore
    (Db.create_table db "components"
       [ ("name", Value.Tstr); ("implementation", Value.Tstr) ]);
  ignore
    (Db.create_table db "component_functions"
       [ ("component", Value.Tstr); ("func", Value.Tstr) ]);
  ignore
    (Db.create_table db "implementations"
       [ ("name", Value.Tstr); ("format", Value.Tstr); ("file", Value.Tstr) ]);
  ignore
    (Db.create_table db "instances"
       [ ("id", Value.Tstr); ("component", Value.Tstr); ("gates", Value.Tint);
         ("area", Value.Tfloat); ("clock_width", Value.Tfloat);
         ("constraints_met", Value.Tbool); ("file", Value.Tstr) ])

let workspace t = t.workspace

let db t = t.db

(* Register an IIF implementation: parse, remember, record in the
   database and keep the source in the workspace (knowledge acquisition
   of §2.2). *)
let insert_implementation t name source =
  let design =
    try Parser.parse source with
    | Parser.Parse_error (msg, line) ->
        fail "implementation %s: parse error at line %d: %s" name line msg
    | Lexer.Lex_error (msg, line) ->
        fail "implementation %s: lex error at line %d: %s" name line msg
  in
  Hashtbl.replace t.registry name design;
  let file = write_file t (name ^ ".iif") source in
  Table.insert (Db.table t.db "implementations")
    [ Value.Str name; Value.Str "IIF"; Value.Str file ];
  design

let create ?(verify = true) ?workspace () =
  let workspace =
    match workspace with Some w -> w | None -> fresh_workspace ()
  in
  let db = Db.create () in
  setup_tables db;
  let t =
    { db; workspace;
      registry = Hashtbl.create 32;
      generators = Hashtbl.create 4;
      instances = Hashtbl.create 64;
      cache = Hashtbl.create 64;
      designs = Hashtbl.create 8;
      seq = 0;
      verify }
  in
  List.iter
    (fun g -> Hashtbl.replace t.generators g.Generator.gen_name g)
    Generator.builtins;
  (* load the generic component library *)
  List.iter
    (fun (name, source) -> ignore (insert_implementation t name source))
    Builtin.sources;
  List.iter
    (fun (c : Component.t) ->
      Table.insert (Db.table db "components")
        [ Value.Str c.Component.comp_name; Value.Str c.Component.implementation ];
      List.iter
        (fun f ->
          Table.insert (Db.table db "component_functions")
            [ Value.Str c.Component.comp_name; Value.Str (Func.to_string f) ])
        (c.Component.functions_of []))
    Component.all;
  t

(* ------------------------------------------------------------------ *)
(* Catalog queries (§3.2.1)                                            *)
(* ------------------------------------------------------------------ *)

(* Components performing all of [funcs], via the SQL layer. *)
let function_query t funcs =
  match funcs with
  | [] -> List.map (fun c -> c.Component.comp_name) Component.all
  | funcs ->
      let matching f =
        let rel =
          Sql.select t.db
            (Printf.sprintf
               "SELECT component FROM component_functions WHERE func = '%s'"
               (Func.to_string f))
        in
        Query.column_values rel "component"
        |> List.map Value.to_string
      in
      let sets = List.map matching funcs in
      (match sets with
       | [] -> []
       | first :: rest ->
           List.filter
             (fun c -> List.for_all (List.mem c) rest)
             (List.sort_uniq String.compare first))

(* Implementations able to perform the functions (via their catalog
   components). *)
let implementation_query t funcs =
  function_query t funcs
  |> List.filter_map (fun name ->
         Option.map
           (fun c -> c.Component.implementation)
           (Component.find name))
  |> List.sort_uniq String.compare

(* Functions a component (or one of its implementations) performs. *)
let component_query t name =
  ignore t;
  match Component.find name with
  | Some c -> c.Component.functions_of []
  | None -> (
      (* maybe an implementation name *)
      match
        List.find_opt
          (fun c -> c.Component.implementation = name)
          Component.all
      with
      | Some c -> c.Component.functions_of []
      | None -> fail "unknown component %s" name)

(* ------------------------------------------------------------------ *)
(* Generation (§3.2.2, Figure 8)                                       *)
(* ------------------------------------------------------------------ *)

let lookup_design t name =
  match Hashtbl.find_opt t.registry name with
  | Some d -> Some d
  | None -> None

let expand_design t design params =
  let flat =
    try Expander.expand ~registry:(lookup_design t) design params with
    | Expander.Expand_error msg -> fail "expansion failed: %s" msg
  in
  match Flat.validate flat with
  | [] -> flat
  | problems ->
      fail "%s: %s" flat.Flat.fname
        (String.concat "; " (List.map Flat.problem_to_string problems))

(* Knowledge-server side: register an additional component generator. *)
let insert_generator t g =
  Hashtbl.replace t.generators g.Generator.gen_name g

let generator_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.generators []
  |> List.sort String.compare

let generator_of t spec =
  match spec.Spec.generator with
  | None -> Generator.milo
  | Some name -> (
      match Hashtbl.find_opt t.generators name with
      | Some g -> g
      | None -> fail "unknown component generator %s" name)

let synthesize_flat t spec flat =
  let g = generator_of t spec in
  try g.Generator.synthesize flat with
  | Techmap.Map_error msg -> fail "technology mapping failed: %s" msg
  | Network.Network_error msg -> fail "network construction failed: %s" msg

let verify_instance flat netlist =
  let n_inputs = List.length flat.Flat.finputs in
  let sequential =
    List.exists Flat.is_sequential flat.Flat.fequations
  in
  if (not sequential) && n_inputs > 14 then ()  (* too wide to enumerate *)
  else
    match Icdb_sim.Equiv.check ~steps:120 flat netlist with
    | Icdb_sim.Equiv.Equivalent -> ()
    | m ->
        fail "generated netlist does not match its IIF specification: %s"
          (Icdb_sim.Equiv.result_to_string m)

let next_id t base =
  t.seq <- t.seq + 1;
  Printf.sprintf "%s_%d" (String.lowercase_ascii base) t.seq

let functions_of_design design =
  List.map Func.of_string design.Ast.dfunctions

(* The paper relaxes unreachable constraints instead of failing
   (App B §5): we size best-effort and report whether the result meets
   the request. *)
let resolve_source t spec =
  match spec.Spec.source with
  | Spec.From_component { component; attributes; functions } -> (
      match Component.find component with
      | None -> fail "unknown component %s" component
      | Some c ->
          (* the five universal attributes (input/output polarity,
             latches, tri-state) apply to every component; the rest
             must belong to this one (App B §3) *)
          let universal, specific = Attributes.split attributes in
          Component.check_attributes c specific;
          let have = c.Component.functions_of specific in
          List.iter
            (fun f ->
              if not (List.exists (Func.equal f) have) then
                fail "component %s with these attributes cannot perform %s"
                  component (Func.to_string f))
            functions;
          let params = c.Component.params_of specific in
          let design =
            match lookup_design t c.Component.implementation with
            | Some d -> d
            | None -> fail "missing implementation %s" c.Component.implementation
          in
          let flat = expand_design t design params in
          let data_ports role =
            List.filter_map
              (fun (p : Component.port) ->
                if p.Component.role = role then Some p.Component.port_name
                else None)
              c.Component.ports
          in
          let flat =
            Attributes.apply flat universal
              ~data_inputs:(data_ports Component.Data_in)
              ~data_outputs:(data_ports Component.Data_out)
          in
          (Some flat, Some c, specific, c.Component.comp_name)
      )
  | Spec.From_implementation { implementation; params } -> (
      match lookup_design t implementation with
      | None -> fail "unknown implementation %s" implementation
      | Some design ->
          let flat = expand_design t design params in
          let comp =
            List.find_opt
              (fun c -> c.Component.implementation = implementation)
              Component.all
          in
          (Some flat, comp, params, implementation))
  | Spec.From_iif source ->
      let design =
        try Parser.parse source with
        | Parser.Parse_error (msg, line) ->
            fail "IIF parse error at line %d: %s" line msg
        | Lexer.Lex_error (msg, line) ->
            fail "IIF lex error at line %d: %s" line msg
      in
      if design.Ast.dparams <> [] then
        fail "IIF specification %s still has parameters %s" design.Ast.dname
          (String.concat ", " design.Ast.dparams);
      let flat = expand_design t design [] in
      (Some flat, None, [], design.Ast.dname)
  | Spec.From_vhdl_netlist _ -> (None, None, [], "cluster")

let generate_netlist t spec =
  match spec.Spec.source with
  | Spec.From_vhdl_netlist src ->
      let parsed =
        try Vhdl.parse src with Vhdl.Vhdl_error msg -> fail "VHDL: %s" msg
      in
      let resolve name =
        match Hashtbl.find_opt t.instances name with
        | Some inst -> Some inst.Instance.netlist
        | None -> None
      in
      (try Vhdl.flatten parsed ~resolve with
       | Vhdl.Vhdl_error msg -> fail "VHDL: %s" msg)
  | _ -> assert false

let request_component t (spec : Spec.t) =
  let key = Spec.cache_key spec in
  match Hashtbl.find_opt t.cache key with
  | Some id -> Hashtbl.find t.instances id
  | None ->
      let flat, comp, attributes, base = resolve_source t spec in
      let netlist =
        match flat with
        | Some flat -> synthesize_flat t spec flat
        | None -> generate_netlist t spec
      in
      (match flat with
       | Some flat when t.verify -> verify_instance flat netlist
       | _ -> ());
      let sized = Sizing.size_to_constraints netlist spec.Spec.constraints in
      let report =
        Sta.analyze ~port_loads:spec.Spec.constraints.Sizing.port_loads sized
      in
      let shape = Shape.of_netlist sized in
      let functions, connections =
        match comp with
        | Some c ->
            (c.Component.functions_of attributes,
             c.Component.connections_of attributes)
        | None -> (
            match flat, spec.Spec.source with
            | Some _, Spec.From_iif src ->
                (functions_of_design (Parser.parse src), [])
            | _ -> ([], []))
      in
      let id =
        match spec.Spec.name_hint with
        | Some n ->
            if Hashtbl.mem t.instances n then
              fail "instance name %s already in use" n
            else n
        | None -> next_id t base
      in
      let constraints_met =
        Sizing.meets_constraints sized spec.Spec.constraints
      in
      let inst =
        { Instance.id;
          spec;
          flat;
          netlist = sized;
          report;
          shape;
          functions;
          connections;
          component = Option.map (fun c -> c.Component.comp_name) comp;
          equivalent_ports =
            (match comp with
             | Some c -> c.Component.equivalent_ports
             | None -> []);
          inverted_ports =
            (match comp with
             | Some c -> c.Component.inverted_ports
             | None -> []);
          constraints_met;
          power = lazy (Power.estimate sized) }
      in
      Hashtbl.replace t.instances id inst;
      Hashtbl.replace t.cache key id;
      (* persist: netlist file + database row *)
      let file = write_file t (id ^ ".vhdl") (Instance.vhdl_netlist inst) in
      Table.insert (Db.table t.db "instances")
        [ Value.Str id;
          Value.Str (match inst.Instance.component with Some c -> c | None -> "-");
          Value.Int (Instance.gate_count inst);
          Value.Float (Instance.best_area inst);
          Value.Float report.Sta.clock_width;
          Value.Bool constraints_met;
          Value.Str file ];
      (* a layout-target request (§6.1) goes all the way to CIF now,
         at the best-area shape alternative *)
      (match spec.Spec.target with
       | Spec.Logic -> ()
       | Spec.Layout ->
           let alt = Shape.best_area shape in
           let port_specs =
             Ports.default ~inputs:sized.Netlist.inputs
               ~outputs:sized.Netlist.outputs
           in
           let _, cif =
             Cif.generate sized ~strips:alt.Shape.alt_strips ~port_specs
           in
           ignore
             (write_file t
                (Printf.sprintf "%s_s%d.cif" id alt.Shape.alt_strips)
                cif));
      (* record in the open transaction, if any *)
      Hashtbl.iter
        (fun _ book ->
          match book.tx_created with
          | Some created -> book.tx_created <- Some (id :: created)
          | None -> ())
        t.designs;
      inst

(* ------------------------------------------------------------------ *)
(* Instance queries (§3.3)                                             *)
(* ------------------------------------------------------------------ *)

let find_instance t id =
  match Hashtbl.find_opt t.instances id with
  | Some i -> i
  | None -> fail "unknown component instance %s" id

(* Layout generation for a chosen shape alternative (§3.3): returns the
   CIF text and the file it was stored in. *)
let request_layout t id ?(alternative = 0) ?port_specs () =
  let inst = find_instance t id in
  let shape = inst.Instance.shape in
  let alt =
    if alternative = 0 then Shape.best_area shape
    else
      match
        List.find_opt (fun a -> a.Shape.alt_index = alternative) shape
      with
      | Some a -> a
      | None -> fail "instance %s has no shape alternative %d" id alternative
  in
  let specs =
    match port_specs with
    | Some s -> s
    | None ->
        Ports.default ~inputs:inst.Instance.netlist.Netlist.inputs
          ~outputs:inst.Instance.netlist.Netlist.outputs
  in
  let layout, cif =
    Cif.generate inst.Instance.netlist ~strips:alt.Shape.alt_strips
      ~port_specs:specs
  in
  let file = write_file t (Printf.sprintf "%s_s%d.cif" id alt.Shape.alt_strips) cif in
  (layout, cif, file)

(* ------------------------------------------------------------------ *)
(* Component list management (Appendix B §7)                           *)
(* ------------------------------------------------------------------ *)

let start_design t name =
  if Hashtbl.mem t.designs name then fail "design %s already started" name;
  Hashtbl.replace t.designs name { kept = []; tx_created = None }

let get_design t name =
  match Hashtbl.find_opt t.designs name with
  | Some d -> d
  | None -> fail "design %s not started" name

let start_transaction t name =
  let d = get_design t name in
  if d.tx_created <> None then fail "design %s already has an open transaction" name;
  d.tx_created <- Some []

let put_in_component_list t name inst_id =
  let d = get_design t name in
  ignore (find_instance t inst_id);
  if not (List.mem inst_id d.kept) then d.kept <- inst_id :: d.kept

let delete_instance t id =
  (match Hashtbl.find_opt t.instances id with
   | Some inst ->
       Hashtbl.remove t.instances id;
       Hashtbl.remove t.cache (Spec.cache_key inst.Instance.spec)
   | None -> ());
  let tbl = Db.table t.db "instances" in
  ignore (Table.delete tbl (fun row -> Table.get row tbl "id" = Value.Str id))

let end_transaction t name =
  let d = get_design t name in
  match d.tx_created with
  | None -> fail "design %s has no open transaction" name
  | Some created ->
      (* instances generated during the transaction and not put in the
         component list are deleted (App B §7) *)
      List.iter
        (fun id -> if not (List.mem id d.kept) then delete_instance t id)
        created;
      d.tx_created <- None

let end_design t name =
  let d = get_design t name in
  List.iter (fun id -> delete_instance t id) d.kept;
  Hashtbl.remove t.designs name

let component_list t name = List.rev (get_design t name).kept

let instance_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.instances []
  |> List.sort String.compare
