(* Component specifications: what a synthesis tool hands to
   request_component (§3.2.2). Three source kinds, as in the paper:
   a catalog component (or implementation) with attribute values, an
   IIF description (control logic), or a VHDL netlist clustering
   previously generated instances. *)

open Icdb_timing

type source =
  | From_component of {
      component : string;                (* catalog name, e.g. "counter" *)
      attributes : (string * int) list;
      functions : Icdb_genus.Func.t list; (* required functions, may be [] *)
    }
  | From_implementation of {
      implementation : string;           (* IIF design name *)
      params : (string * int) list;
    }
  | From_iif of string                   (* raw IIF source text *)
  | From_vhdl_netlist of string          (* structural VHDL cluster *)

type target = Logic | Layout

type t = {
  source : source;
  constraints : Sizing.constraints;
  target : target;
  name_hint : string option;  (* user-chosen instance name *)
  generator : string option;  (* component generator to use (§4.2) *)
}

let make ?(constraints = Sizing.default_constraints) ?(target = Logic)
    ?name_hint ?generator source =
  { source; constraints; target; name_hint; generator }

(* Canonical cache key: identical specifications must reuse the stored
   instance instead of regenerating (§2.2). *)
let cache_key t =
  let b = Buffer.create 128 in
  (match t.source with
   | From_component { component; attributes; functions } ->
       Buffer.add_string b ("C:" ^ component);
       List.iter
         (fun (k, v) -> Buffer.add_string b (Printf.sprintf ";%s=%d" k v))
         (List.sort compare attributes);
       List.iter
         (fun f -> Buffer.add_string b (";f" ^ Icdb_genus.Func.to_string f))
         functions
   | From_implementation { implementation; params } ->
       Buffer.add_string b ("I:" ^ implementation);
       List.iter
         (fun (k, v) -> Buffer.add_string b (Printf.sprintf ";%s=%d" k v))
         (List.sort compare params)
   | From_iif src ->
       Buffer.add_string b ("F:" ^ string_of_int (Hashtbl.hash src))
   | From_vhdl_netlist src ->
       Buffer.add_string b ("V:" ^ string_of_int (Hashtbl.hash src)));
  let c = t.constraints in
  Buffer.add_string b
    (Printf.sprintf "|cw=%s"
       (match c.Sizing.clock_width with Some f -> string_of_float f | None -> "-"));
  List.iter
    (fun (p, d) -> Buffer.add_string b (Printf.sprintf ";cd%s=%g" p d))
    (List.sort compare c.Sizing.comb_delays);
  (match c.Sizing.setup_bound with
   | Some f -> Buffer.add_string b (Printf.sprintf ";su=%g" f)
   | None -> ());
  List.iter
    (fun (p, l) -> Buffer.add_string b (Printf.sprintf ";ol%s=%g" p l))
    (List.sort compare c.Sizing.port_loads);
  Buffer.add_string b
    (match c.Sizing.strategy with
     | Sizing.Fastest -> ";fast"
     | Sizing.Cheapest -> ";cheap"
     | Sizing.Balanced -> "");
  (match t.generator with
   | Some g -> Buffer.add_string b (";gen=" ^ g)
   | None -> ());
  (match t.target with
   | Logic -> ()
   | Layout -> Buffer.add_string b ";layout");
  Buffer.contents b
