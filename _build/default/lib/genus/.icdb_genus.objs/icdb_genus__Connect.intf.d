lib/genus/connect.mli: Func
