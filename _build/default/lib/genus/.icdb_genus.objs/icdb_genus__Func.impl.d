lib/genus/func.ml: List String
