lib/genus/component.mli: Connect Func
