lib/genus/func.mli:
