lib/genus/connect.ml: Func List Printf String
