lib/genus/component.ml: Connect Func List Printf String
