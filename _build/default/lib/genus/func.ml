(* The GENUS-style function taxonomy (Appendix B §2): the operations a
   microarchitecture component may perform. Synthesis tools query the
   database by these names. *)

type t =
  (* logic *)
  | AND | OR | NOT | NAND | NOR | XOR | XNOR
  (* arithmetic *)
  | ADD | SUB | MUL | DIV | INC | DEC
  (* relations *)
  | EQ | NEQ | GT | GE | LT | LE
  (* select *)
  | MUX_SCL | MUX_SCG
  (* shifts *)
  | SHL1 | SHR1 | ROTL1 | ROTR1 | ASHL1 | ASHR1
  | SHL | SHR | ROTL | ROTR | ASHL | ASHR
  (* coding *)
  | ENCODE | DECODE
  (* interface *)
  | BUF | CLK_DR | SCHM_TGR | TRI_STATE
  (* wire *)
  | PORT | BUS | WIRE_OR
  (* switch box *)
  | CONCAT | EXTRACT
  (* clocking *)
  | CLK_GEN | DELAY
  (* memory *)
  | LOAD | STORE | MEMORY | READ | WRITE | PUSH | POP
  (* composite roles used by allocation (§4.1) *)
  | STORAGE | COUNTER
  (* escape hatch for user-defined functions *)
  | Custom of string

let to_string = function
  | AND -> "AND" | OR -> "OR" | NOT -> "NOT" | NAND -> "NAND" | NOR -> "NOR"
  | XOR -> "XOR" | XNOR -> "XNOR"
  | ADD -> "ADD" | SUB -> "SUB" | MUL -> "MUL" | DIV -> "DIV"
  | INC -> "INC" | DEC -> "DEC"
  | EQ -> "EQ" | NEQ -> "NEQ" | GT -> "GT" | GE -> "GE" | LT -> "LT" | LE -> "LE"
  | MUX_SCL -> "MUX_SCL" | MUX_SCG -> "MUX_SCG"
  | SHL1 -> "SHL1" | SHR1 -> "SHR1" | ROTL1 -> "ROTL1" | ROTR1 -> "ROTR1"
  | ASHL1 -> "ASHL1" | ASHR1 -> "ASHR1"
  | SHL -> "SHL" | SHR -> "SHR" | ROTL -> "ROTL" | ROTR -> "ROTR"
  | ASHL -> "ASHL" | ASHR -> "ASHR"
  | ENCODE -> "ENCODE" | DECODE -> "DECODE"
  | BUF -> "BUF" | CLK_DR -> "CLK_DR" | SCHM_TGR -> "SCHM_TGR"
  | TRI_STATE -> "TRI_STATE"
  | PORT -> "PORT" | BUS -> "BUS" | WIRE_OR -> "WIRE_OR"
  | CONCAT -> "CONCAT" | EXTRACT -> "EXTRACT"
  | CLK_GEN -> "CLK_GEN" | DELAY -> "DELAY"
  | LOAD -> "LOAD" | STORE -> "STORE" | MEMORY -> "MEMORY"
  | READ -> "READ" | WRITE -> "WRITE" | PUSH -> "PUSH" | POP -> "POP"
  | STORAGE -> "STORAGE" | COUNTER -> "COUNTER"
  | Custom s -> s

let known =
  [ AND; OR; NOT; NAND; NOR; XOR; XNOR; ADD; SUB; MUL; DIV; INC; DEC;
    EQ; NEQ; GT; GE; LT; LE; MUX_SCL; MUX_SCG;
    SHL1; SHR1; ROTL1; ROTR1; ASHL1; ASHR1; SHL; SHR; ROTL; ROTR; ASHL; ASHR;
    ENCODE; DECODE; BUF; CLK_DR; SCHM_TGR; TRI_STATE; PORT; BUS; WIRE_OR;
    CONCAT; EXTRACT; CLK_GEN; DELAY; LOAD; STORE; MEMORY; READ; WRITE; PUSH;
    POP; STORAGE; COUNTER ]

let of_string s =
  let u = String.uppercase_ascii s in
  match List.find_opt (fun f -> to_string f = u) known with
  | Some f -> f
  | None -> Custom u

let equal a b = to_string a = to_string b
