(** Connection information (§4.1, Appendix B §5.4): how to wire a
    component so it executes one of its functions — which component
    port realizes each function operand, and the control codes that
    invoke the function. *)

type line =
  | Port_map of {
      func_port : string;   (** operand of the function: I0, I1, OO, ... *)
      comp_port : string;   (** component port realising it *)
      active_high : bool;
    }
  | Control of {
      port : string;
      value : int;
      note : string option;  (** e.g. "edge_trigger" *)
    }

type t = {
  cfunc : Func.t;
  lines : line list;
}

val to_string : t -> string
(** The paper's format:
    {v
## function INC
OO is Q high
** DWUP 0
** CLK 1 edge_trigger
    v} *)

val all_to_string : t list -> string
