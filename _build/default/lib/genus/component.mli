(** Predefined components (Appendix B §2-§3): the catalog of standard
    microarchitecture parts, each linked to a parameterized IIF
    implementation, with attribute defaults, functions performed
    (derived from attribute values), connection information,
    equivalent ports and inverted ports. *)

type port_role = Data_in | Data_out | Control_in | Clock_in

type port = {
  port_name : string;
  role : port_role;
  bus : bool;  (** indexed by the size attribute *)
}

type t = {
  comp_name : string;                (** e.g. "counter" *)
  implementation : string;           (** builtin IIF design name *)
  attributes : (string * int) list;  (** attribute -> default value *)
  ports : port list;
  params_of : (string * int) list -> (string * int) list;
      (** attribute values -> IIF parameter values (defaults filled in) *)
  functions_of : (string * int) list -> Func.t list;
      (** functions this configuration performs *)
  connections_of : (string * int) list -> Connect.t list;
  equivalent_ports : string list list;  (** interchangeable port groups *)
  inverted_ports : (string * string) list;  (** port -> active-low twin *)
}

val all : t list
(** The full catalog (counter, register, adder, adder_subtractor, alu,
    comparator, muxes, decoder, encoder, shifters, multiplier, divider,
    register file, memory, concat/extract, clock driver, schmitt
    trigger, bus, ...). *)

val find : string -> t option
(** Case-insensitive lookup by component name. *)

val performing : Func.t list -> t list
(** Components performing all the given functions (at their default
    attributes). *)

val check_attributes : t -> (string * int) list -> unit
(** @raise Invalid_argument when a name is not one of the component's
    attributes. *)
