(* Connection information (§4.1, Appendix B §5.4): how to wire a
   component so it executes one of its functions — which component port
   realises each function operand, and the control values that invoke
   the function. *)

type line =
  | Port_map of {
      func_port : string;   (* operand name of the function: I0, I1, OO... *)
      comp_port : string;   (* component port realising it *)
      active_high : bool;
    }
  | Control of {
      port : string;        (* control port of the component *)
      value : int;          (* 0 / 1 code *)
      note : string option; (* e.g. "edge_trigger" *)
    }

type t = {
  cfunc : Func.t;
  lines : line list;
}

(* The paper's textual format:
     ## function INC
     OO is OO high
     ** DWUP 0
     ** CLK 1 edge_trigger *)
let to_string { cfunc; lines } =
  let line = function
    | Port_map { func_port; comp_port; active_high } ->
        Printf.sprintf "%s is %s %s" func_port comp_port
          (if active_high then "high" else "low")
    | Control { port; value; note } -> (
        match note with
        | Some n -> Printf.sprintf "** %s %d %s" port value n
        | None -> Printf.sprintf "** %s %d" port value)
  in
  String.concat "\n"
    (Printf.sprintf "## function %s" (Func.to_string cfunc)
     :: List.map line lines)

let all_to_string ts = String.concat "\n" (List.map to_string ts)
