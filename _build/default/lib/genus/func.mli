(** The GENUS-style function taxonomy (Appendix B §2): the operations a
    microarchitecture component may perform. Synthesis tools query the
    database by these names. *)

type t =
  | AND | OR | NOT | NAND | NOR | XOR | XNOR
  | ADD | SUB | MUL | DIV | INC | DEC
  | EQ | NEQ | GT | GE | LT | LE
  | MUX_SCL | MUX_SCG
  | SHL1 | SHR1 | ROTL1 | ROTR1 | ASHL1 | ASHR1
  | SHL | SHR | ROTL | ROTR | ASHL | ASHR
  | ENCODE | DECODE
  | BUF | CLK_DR | SCHM_TGR | TRI_STATE
  | PORT | BUS | WIRE_OR
  | CONCAT | EXTRACT
  | CLK_GEN | DELAY
  | LOAD | STORE | MEMORY | READ | WRITE | PUSH | POP
  | STORAGE | COUNTER
  | Custom of string  (** user-defined functions *)

val to_string : t -> string

val known : t list
(** Every predefined function, in taxonomy order. *)

val of_string : string -> t
(** Case-insensitive; unknown names become [Custom]. *)

val equal : t -> t -> bool
