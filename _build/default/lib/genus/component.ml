(* Predefined components (Appendix B §2-§3): the catalog of standard
   microarchitecture parts ICDB knows, each linked to a parameterized
   IIF implementation, with attribute defaults, the functions performed
   (derived from attribute values), connection information, equivalent
   ports and inverted ports. *)

type port_role = Data_in | Data_out | Control_in | Clock_in

type port = {
  port_name : string;
  role : port_role;
  bus : bool;  (* indexed by the size attribute *)
}

type t = {
  comp_name : string;                (* e.g. "counter" *)
  implementation : string;           (* builtin IIF design name *)
  attributes : (string * int) list;  (* attribute -> default value *)
  ports : port list;
  (* attribute values -> IIF parameter values *)
  params_of : (string * int) list -> (string * int) list;
  (* attribute values -> functions this configuration performs *)
  functions_of : (string * int) list -> Func.t list;
  (* attribute values -> connection info per function *)
  connections_of : (string * int) list -> Connect.t list;
  equivalent_ports : string list list;  (* interchangeable port groups *)
  inverted_ports : (string * string) list;  (* port -> active-low twin *)
}

let attr attrs defaults name =
  match List.assoc_opt name attrs with
  | Some v -> v
  | None -> (
      match List.assoc_opt name defaults with
      | Some v -> v
      | None -> invalid_arg ("unknown attribute " ^ name))

let in_ name = { port_name = name; role = Data_in; bus = false }
let in_bus name = { port_name = name; role = Data_in; bus = true }
let out name = { port_name = name; role = Data_out; bus = false }
let out_bus name = { port_name = name; role = Data_out; bus = true }
let ctl name = { port_name = name; role = Control_in; bus = false }
let clk name = { port_name = name; role = Clock_in; bus = false }

let pm f c = Connect.Port_map { func_port = f; comp_port = c; active_high = true }
let cv ?note p v = Connect.Control { port = p; value = v; note }

(* ------------------------------------------------------------------ *)
(* counter                                                             *)
(* ------------------------------------------------------------------ *)

let counter =
  let defaults =
    [ ("size", 4); ("type", 2); ("load", 1); ("enable", 1); ("up_or_down", 3) ]
  in
  let functions_of attrs =
    let a n = attr attrs defaults n in
    [ Func.INC; Func.COUNTER ]
    @ (if a "up_or_down" >= 2 then [ Func.DEC ] else [])
    @ if a "load" = 1 then [ Func.LOAD; Func.STORAGE ] else []
  in
  let connections_of attrs =
    let a n = attr attrs defaults n in
    let updown = a "up_or_down" = 3 in
    let has_enable = a "enable" = 1 in
    let has_load = a "load" = 1 in
    let common =
      (if has_enable then [ cv "ENA" 1 ] else [])
      @ (if has_load then [ cv "LOAD" 1 ] else [])
      @ [ cv ~note:"edge_trigger" "CLK" 1 ]
    in
    [ { Connect.cfunc = Func.INC;
        lines =
          [ pm "OO" "Q" ] @ (if updown then [ cv "DWUP" 0 ] else []) @ common } ]
    @ (if a "up_or_down" >= 2 then
         [ { Connect.cfunc = Func.DEC;
             lines = [ pm "OO" "Q" ]
                     @ (if updown then [ cv "DWUP" 1 ] else [])
                     @ common } ]
       else [])
    @
    if has_load then
      [ { Connect.cfunc = Func.LOAD;
          lines = [ pm "I0" "D"; pm "OO" "Q"; cv "LOAD" 0 ] } ]
    else []
  in
  { comp_name = "counter";
    implementation = "COUNTER";
    attributes = defaults;
    ports =
      [ in_bus "D"; clk "CLK"; ctl "LOAD"; ctl "ENA"; ctl "DWUP";
        out_bus "Q"; out "MINMAX"; out "RCLK" ];
    params_of = (fun attrs -> List.map (fun (n, _) -> (n, attr attrs defaults n)) defaults);
    functions_of;
    connections_of;
    equivalent_ports = [];
    inverted_ports = [] }

(* ------------------------------------------------------------------ *)
(* register                                                            *)
(* ------------------------------------------------------------------ *)

let register =
  let defaults = [ ("size", 4); ("load", 1) ] in
  { comp_name = "register";
    implementation = "REGISTER";
    attributes = defaults;
    ports = [ in_bus "I"; ctl "LOAD"; clk "CLK"; out_bus "Q" ];
    params_of = (fun attrs -> List.map (fun (n, _) -> (n, attr attrs defaults n)) defaults);
    functions_of = (fun _ -> [ Func.STORAGE; Func.STORE; Func.LOAD ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.STORE;
            lines = [ pm "I0" "I"; pm "OO" "Q"; cv "LOAD" 1;
                      cv ~note:"edge_trigger" "CLK" 1 ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

(* ------------------------------------------------------------------ *)
(* adder                                                               *)
(* ------------------------------------------------------------------ *)

let adder =
  let defaults = [ ("size", 4) ] in
  { comp_name = "adder";
    implementation = "ADDER";
    attributes = defaults;
    ports = [ in_bus "I0"; in_bus "I1"; in_ "Cin"; out_bus "O"; out "Cout" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.ADD ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.ADD;
            lines = [ pm "I0" "I0"; pm "I1" "I1"; pm "Cin" "Cin";
                      pm "OO" "O"; pm "Cout" "Cout" ] } ]);
    equivalent_ports = [ [ "I0"; "I1" ] ];
    inverted_ports = [] }

(* ------------------------------------------------------------------ *)
(* adder_subtractor                                                    *)
(* ------------------------------------------------------------------ *)

let adder_subtractor =
  let defaults = [ ("size", 4) ] in
  { comp_name = "adder_subtractor";
    implementation = "ADDSUB";
    attributes = defaults;
    ports = [ in_bus "A"; in_bus "B"; ctl "ADDSUB"; out_bus "O"; out "Cout" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.ADD; Func.SUB ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.ADD;
            lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "O"; cv "ADDSUB" 0 ] };
          { Connect.cfunc = Func.SUB;
            lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "O"; cv "ADDSUB" 1 ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

(* ------------------------------------------------------------------ *)
(* alu                                                                 *)
(* ------------------------------------------------------------------ *)

let alu =
  let defaults = [ ("size", 4) ] in
  let op f c2 c1 c0 =
    { Connect.cfunc = f;
      lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "O";
                cv "C2" c2; cv "C1" c1; cv "C0" c0 ] }
  in
  { comp_name = "alu";
    implementation = "ALU";
    attributes = defaults;
    ports =
      [ in_bus "A"; in_bus "B"; ctl "C0"; ctl "C1"; ctl "C2";
        out_bus "O"; out "Cout" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of =
      (fun _ -> [ Func.ADD; Func.SUB; Func.AND; Func.OR; Func.XOR; Func.NOT ]);
    connections_of =
      (fun _ ->
        [ op Func.AND 0 0 0; op Func.OR 0 0 1; op Func.XOR 0 1 0;
          op Func.NOT 0 1 1; op Func.ADD 1 0 0; op Func.SUB 1 0 1 ]);
    equivalent_ports = [];
    inverted_ports = [] }

(* ------------------------------------------------------------------ *)
(* comparator                                                          *)
(* ------------------------------------------------------------------ *)

let comparator =
  let defaults = [ ("size", 4) ] in
  { comp_name = "comparator";
    implementation = "COMPARATOR";
    attributes = defaults;
    ports = [ in_bus "A"; in_bus "B"; out "OEQ"; out "ONEQ"; out "OGT"; out "OLT" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.EQ; Func.NEQ; Func.GT; Func.LT ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.EQ; lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "OEQ" ] };
          { Connect.cfunc = Func.NEQ; lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "ONEQ" ] };
          { Connect.cfunc = Func.GT; lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "OGT" ] };
          { Connect.cfunc = Func.LT; lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "OLT" ] } ]);
    equivalent_ports = [];
    inverted_ports = [ ("OEQ", "ONEQ") ] }

(* ------------------------------------------------------------------ *)
(* mux / decoder / shifter / logic unit / tri-state                    *)
(* ------------------------------------------------------------------ *)

let mux_scl =
  let defaults = [ ("size", 4) ] in
  { comp_name = "mux_scl";
    implementation = "MUX2";
    attributes = defaults;
    ports = [ in_bus "I0"; in_bus "I1"; ctl "SEL"; out_bus "O" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.MUX_SCL ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.MUX_SCL;
            lines = [ pm "I0" "I0"; pm "I1" "I1"; pm "OO" "O" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let decoder =
  let defaults = [ ("size", 2) ] in
  { comp_name = "decode";
    implementation = "DECODER";
    attributes = defaults;
    ports = [ in_bus "I"; ctl "EN"; out_bus "O" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.DECODE ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.DECODE;
            lines = [ pm "I0" "I"; pm "OO" "O"; cv "EN" 1 ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let shifter =
  let defaults = [ ("size", 4); ("shift_distance", 1) ] in
  { comp_name = "shifter";
    implementation = "SHL0";
    attributes = defaults;
    ports = [ in_bus "I"; out_bus "O" ];
    params_of =
      (fun attrs ->
        [ ("size", attr attrs defaults "size");
          ("shift_distance", attr attrs defaults "shift_distance") ]);
    functions_of =
      (fun attrs ->
        if attr attrs defaults "shift_distance" = 1 then [ Func.SHL1; Func.SHL ]
        else [ Func.SHL ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.SHL; lines = [ pm "I0" "I"; pm "OO" "O" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let logic_unit =
  let defaults = [ ("size", 4) ] in
  let op f s1 s0 =
    { Connect.cfunc = f;
      lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "O"; cv "S1" s1; cv "S0" s0 ] }
  in
  { comp_name = "logic_unit";
    implementation = "LOGIC_UNIT";
    attributes = defaults;
    ports = [ in_bus "A"; in_bus "B"; ctl "S0"; ctl "S1"; out_bus "O" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.AND; Func.OR; Func.XOR; Func.NOT ]);
    connections_of =
      (fun _ ->
        [ op Func.AND 0 0; op Func.OR 0 1; op Func.XOR 1 0; op Func.NOT 1 1 ]);
    equivalent_ports = [ [ "A"; "B" ] ];
    inverted_ports = [] }

let and_gate =
  let defaults = [ ("size", 4) ] in
  { comp_name = "and_gate";
    implementation = "ANDN";
    attributes = defaults;
    ports = [ in_bus "I0"; out "O" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.AND ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.AND; lines = [ pm "I0" "I0"; pm "OO" "O" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let multiplier =
  let defaults = [ ("size", 4) ] in
  { comp_name = "multiplier";
    implementation = "MULTIPLIER";
    attributes = defaults;
    ports = [ in_bus "A"; in_bus "B"; out_bus "P" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.MUL ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.MUL;
            lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "P" ] } ]);
    equivalent_ports = [ [ "A"; "B" ] ];
    inverted_ports = [] }

let divider =
  let defaults = [ ("size", 4) ] in
  { comp_name = "divider";
    implementation = "DIVIDER";
    attributes = defaults;
    ports = [ in_bus "A"; in_bus "B"; out_bus "Q"; out_bus "REM" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.DIV ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.DIV;
            lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "Q"; pm "O1" "REM" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let barrel_shifter =
  let defaults = [ ("size", 8); ("stages", 3) ] in
  { comp_name = "barrel_shifter";
    implementation = "BARREL_SHIFTER";
    attributes = defaults;
    ports = [ in_bus "I"; in_bus "S"; out_bus "O" ];
    params_of =
      (fun attrs ->
        [ ("size", attr attrs defaults "size");
          ("stages", attr attrs defaults "stages") ]);
    functions_of = (fun _ -> [ Func.SHL ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.SHL;
            lines = [ pm "I0" "I"; pm "I1" "S"; pm "OO" "O" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let shift_register =
  let defaults = [ ("size", 4) ] in
  { comp_name = "shift_register";
    implementation = "SHIFT_REGISTER";
    attributes = defaults;
    ports =
      [ in_bus "I"; in_ "SIN"; ctl "LOAD"; ctl "SHIFT"; clk "CLK";
        out_bus "Q"; out "SOUT" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.SHL1; Func.STORAGE; Func.STORE ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.SHL1;
            lines = [ pm "OO" "Q"; cv "SHIFT" 1; cv "LOAD" 0;
                      cv ~note:"edge_trigger" "CLK" 1 ] };
          { Connect.cfunc = Func.STORE;
            lines = [ pm "I0" "I"; pm "OO" "Q"; cv "LOAD" 1;
                      cv ~note:"edge_trigger" "CLK" 1 ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let register_file =
  let defaults = [ ("size", 4); ("abits", 2) ] in
  { comp_name = "register_file";
    implementation = "REGISTER_FILE";
    attributes = defaults;
    ports =
      [ in_bus "D"; in_bus "WA"; in_bus "RA"; ctl "WE"; clk "CLK"; out_bus "Q" ];
    params_of =
      (fun attrs ->
        [ ("size", attr attrs defaults "size");
          ("abits", attr attrs defaults "abits") ]);
    functions_of = (fun _ -> [ Func.MEMORY; Func.READ; Func.WRITE; Func.STORAGE ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.WRITE;
            lines = [ pm "I0" "D"; pm "I1" "WA"; cv "WE" 1;
                      cv ~note:"edge_trigger" "CLK" 1 ] };
          { Connect.cfunc = Func.READ;
            lines = [ pm "I0" "RA"; pm "OO" "Q"; cv "WE" 0 ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let memory =
  { register_file with
    comp_name = "memory";
    attributes = [ ("size", 8); ("abits", 3) ] }

let mux_scg =
  let defaults = [ ("size", 4); ("ways", 2) ] in
  { comp_name = "mux_scg";
    implementation = "MUXG";
    attributes = defaults;
    ports = [ in_bus "I"; in_bus "G"; out_bus "O" ];
    params_of =
      (fun attrs ->
        [ ("size", attr attrs defaults "size");
          ("ways", attr attrs defaults "ways") ]);
    functions_of = (fun _ -> [ Func.MUX_SCG ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.MUX_SCG;
            lines = [ pm "I0" "I"; pm "I1" "G"; pm "OO" "O" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let encoder =
  let defaults = [ ("size", 3) ] in
  { comp_name = "encode";
    implementation = "ENCODER";
    attributes = defaults;
    ports = [ in_bus "I"; out_bus "O"; out "VALID" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.ENCODE ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.ENCODE; lines = [ pm "I0" "I"; pm "OO" "O" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let concat =
  let defaults = [ ("asize", 4); ("bsize", 4) ] in
  { comp_name = "concat";
    implementation = "CONCAT";
    attributes = defaults;
    ports = [ in_bus "A"; in_bus "B"; out_bus "O" ];
    params_of =
      (fun attrs ->
        [ ("asize", attr attrs defaults "asize");
          ("bsize", attr attrs defaults "bsize") ]);
    functions_of = (fun _ -> [ Func.CONCAT ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.CONCAT;
            lines = [ pm "I0" "A"; pm "I1" "B"; pm "OO" "O" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let extract =
  let defaults = [ ("size", 8); ("low", 0); ("width", 4) ] in
  { comp_name = "extract";
    implementation = "EXTRACT";
    attributes = defaults;
    ports = [ in_bus "I"; out_bus "O" ];
    params_of =
      (fun attrs ->
        [ ("size", attr attrs defaults "size");
          ("low", attr attrs defaults "low");
          ("width", attr attrs defaults "width") ]);
    functions_of = (fun _ -> [ Func.EXTRACT ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.EXTRACT; lines = [ pm "I0" "I"; pm "OO" "O" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let clock_driver =
  let defaults = [ ("size", 4) ] in
  { comp_name = "clock_driver";
    implementation = "CLK_DRIVER";
    attributes = defaults;
    ports = [ in_ "I"; out_bus "O" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.CLK_DR; Func.BUF ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.CLK_DR; lines = [ pm "I0" "I"; pm "OO" "O" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let schmitt_trigger =
  let defaults = [ ("size", 1) ] in
  { comp_name = "schmitt_trigger";
    implementation = "SCHMITT_TRIG";
    attributes = defaults;
    ports = [ in_bus "I"; out_bus "O" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.SCHM_TGR ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.SCHM_TGR; lines = [ pm "I0" "I"; pm "OO" "O" ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let bus =
  let defaults = [ ("size", 4) ] in
  { comp_name = "bus";
    implementation = "WOR_BUS2";
    attributes = defaults;
    ports = [ in_bus "I0"; in_bus "I1"; ctl "EN0"; ctl "EN1"; out_bus "O" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.BUS; Func.WIRE_OR ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.BUS;
            lines = [ pm "I0" "I0"; pm "I1" "I1"; pm "OO" "O";
                      cv "EN0" 1; cv "EN1" 1 ] } ]);
    equivalent_ports = [ [ "I0"; "I1" ] ];
    inverted_ports = [] }

let tri_state =
  let defaults = [ ("size", 4) ] in
  { comp_name = "tri_state";
    implementation = "TRIBUF";
    attributes = defaults;
    ports = [ in_bus "I"; ctl "EN"; out_bus "O" ];
    params_of = (fun attrs -> [ ("size", attr attrs defaults "size") ]);
    functions_of = (fun _ -> [ Func.TRI_STATE ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.TRI_STATE;
            lines = [ pm "I0" "I"; pm "OO" "O"; cv "EN" 1 ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

let stack =
  let defaults = [ ("size", 4); ("abits", 2) ] in
  { comp_name = "stack";
    implementation = "STACK";
    attributes = defaults;
    ports =
      [ in_bus "D"; ctl "PUSH"; ctl "POP"; clk "CLK"; ctl "RESET";
        out_bus "Q"; out "EMPTY"; out "FULL" ];
    params_of =
      (fun attrs ->
        [ ("size", attr attrs defaults "size");
          ("abits", attr attrs defaults "abits") ]);
    functions_of = (fun _ -> [ Func.PUSH; Func.POP; Func.STORAGE ]);
    connections_of =
      (fun _ ->
        [ { Connect.cfunc = Func.PUSH;
            lines = [ pm "I0" "D"; cv "PUSH" 1; cv "POP" 0;
                      cv ~note:"edge_trigger" "CLK" 1 ] };
          { Connect.cfunc = Func.POP;
            lines = [ pm "OO" "Q"; cv "PUSH" 0; cv "POP" 1;
                      cv ~note:"edge_trigger" "CLK" 1 ] } ]);
    equivalent_ports = [];
    inverted_ports = [] }

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)
(* ------------------------------------------------------------------ *)

let all =
  [ counter; register; adder; adder_subtractor; alu; comparator; mux_scl;
    mux_scg; decoder; encoder; shifter; barrel_shifter; shift_register;
    logic_unit; and_gate; tri_state; multiplier; divider; register_file;
    memory; stack; concat; extract; clock_driver; schmitt_trigger; bus ]

let find name =
  let n = String.lowercase_ascii name in
  List.find_opt (fun c -> c.comp_name = n) all

(* Components (by name) performing every function in [funcs]. *)
let performing funcs =
  List.filter
    (fun c ->
      let fs = c.functions_of [] in
      List.for_all (fun f -> List.exists (Func.equal f) fs) funcs)
    all

(* Validate attribute names against the component's attribute list. *)
let check_attributes c attrs =
  List.iter
    (fun (n, _) ->
      if not (List.mem_assoc n c.attributes) then
        invalid_arg
          (Printf.sprintf "component %s has no attribute %s" c.comp_name n))
    attrs
