(* Hand-written lexer for IIF. Produces a token array with line numbers
   for error reporting. *)

type token =
  | IDENT of string
  | INT of int
  | HASH_IF
  | HASH_ELSE
  | HASH_FOR
  | HASH_CLINE
  | HASH_CALL of string
  | LBRACE | RBRACE
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COLON | SEMI | COMMA
  | PLUS | STAR | BANG | MINUS
  | XOR | XNOR                       (* (+) (.) *)
  | EQ | PLUSEQ | STAREQ | XOREQ | XNOREQ
  | AT
  | TILDE_A | TILDE_B | TILDE_S | TILDE_D | TILDE_T | TILDE_W
  | TILDE_R | TILDE_F | TILDE_H | TILDE_L
  | SLASH | PERCENT | DSTAR
  | LT | LE | GT | GE | EQEQ | NEQ | ANDAND | OROR
  | PLUSPLUS | MINUSMINUS
  | EOF

exception Lex_error of string * int  (* message, line *)

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | HASH_IF -> "#if" | HASH_ELSE -> "#else" | HASH_FOR -> "#for"
  | HASH_CLINE -> "#c_line"
  | HASH_CALL s -> "#" ^ s
  | LBRACE -> "{" | RBRACE -> "}"
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COLON -> ":" | SEMI -> ";" | COMMA -> ","
  | PLUS -> "+" | STAR -> "*" | BANG -> "!" | MINUS -> "-"
  | XOR -> "(+)" | XNOR -> "(.)"
  | EQ -> "=" | PLUSEQ -> "+=" | STAREQ -> "*=" | XOREQ -> "(+)="
  | XNOREQ -> "(.)="
  | AT -> "@"
  | TILDE_A -> "~a" | TILDE_B -> "~b" | TILDE_S -> "~s" | TILDE_D -> "~d"
  | TILDE_T -> "~t" | TILDE_W -> "~w"
  | TILDE_R -> "~r" | TILDE_F -> "~f" | TILDE_H -> "~h" | TILDE_L -> "~l"
  | SLASH -> "/" | PERCENT -> "%" | DSTAR -> "**"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "=="
  | NEQ -> "!=" | ANDAND -> "&&" | OROR -> "||"
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push t = toks := (t, !line) :: !toks in
  let err msg = raise (Lex_error (msg, !line)) in
  let peek i = if i < n then Some src.[i] else None in
  let rec loop i =
    if i >= n then ()
    else
      match src.[i] with
      | '\n' -> incr line; loop (i + 1)
      | ' ' | '\t' | '\r' -> loop (i + 1)
      | '/' when peek (i + 1) = Some '*' ->
          (* comment: skip to *\/ *)
          let rec skip j =
            if j + 1 >= n then err "unterminated comment"
            else if src.[j] = '\n' then begin incr line; skip (j + 1) end
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else skip (j + 1)
          in
          loop (skip (i + 2))
      | '{' -> push LBRACE; loop (i + 1)
      | '}' -> push RBRACE; loop (i + 1)
      | '[' -> push LBRACKET; loop (i + 1)
      | ']' -> push RBRACKET; loop (i + 1)
      | ')' -> push RPAREN; loop (i + 1)
      | ':' -> push COLON; loop (i + 1)
      | ';' -> push SEMI; loop (i + 1)
      | ',' -> push COMMA; loop (i + 1)
      | '@' -> push AT; loop (i + 1)
      | '%' -> push PERCENT; loop (i + 1)
      | '(' -> (
          (* disambiguate (+), (.), (+)=, (.)= from plain parenthesis *)
          match peek (i + 1), peek (i + 2) with
          | Some '+', Some ')' ->
              if peek (i + 3) = Some '=' then begin push XOREQ; loop (i + 4) end
              else begin push XOR; loop (i + 3) end
          | Some '.', Some ')' ->
              if peek (i + 3) = Some '=' then begin push XNOREQ; loop (i + 4) end
              else begin push XNOR; loop (i + 3) end
          | _ -> push LPAREN; loop (i + 1))
      | '+' -> (
          match peek (i + 1) with
          | Some '+' -> push PLUSPLUS; loop (i + 2)
          | Some '=' -> push PLUSEQ; loop (i + 2)
          | _ -> push PLUS; loop (i + 1))
      | '-' -> (
          match peek (i + 1) with
          | Some '-' -> push MINUSMINUS; loop (i + 2)
          | _ -> push MINUS; loop (i + 1))
      | '*' -> (
          match peek (i + 1) with
          | Some '*' -> push DSTAR; loop (i + 2)
          | Some '=' -> push STAREQ; loop (i + 2)
          | _ -> push STAR; loop (i + 1))
      | '!' -> (
          match peek (i + 1) with
          | Some '=' -> push NEQ; loop (i + 2)
          | _ -> push BANG; loop (i + 1))
      | '=' -> (
          match peek (i + 1) with
          | Some '=' -> push EQEQ; loop (i + 2)
          | _ -> push EQ; loop (i + 1))
      | '<' -> (
          match peek (i + 1) with
          | Some '=' -> push LE; loop (i + 2)
          | _ -> push LT; loop (i + 1))
      | '>' -> (
          match peek (i + 1) with
          | Some '=' -> push GE; loop (i + 2)
          | _ -> push GT; loop (i + 1))
      | '&' when peek (i + 1) = Some '&' -> push ANDAND; loop (i + 2)
      | '|' when peek (i + 1) = Some '|' -> push OROR; loop (i + 2)
      | '/' -> push SLASH; loop (i + 1)
      | '~' -> (
          let t =
            match peek (i + 1) with
            | Some 'a' -> TILDE_A | Some 'b' -> TILDE_B | Some 's' -> TILDE_S
            | Some 'd' -> TILDE_D | Some 't' -> TILDE_T | Some 'w' -> TILDE_W
            | Some 'r' -> TILDE_R | Some 'f' -> TILDE_F | Some 'h' -> TILDE_H
            | Some 'l' -> TILDE_L
            | _ -> err "expected operator letter after ~"
          in
          push t;
          loop (i + 2))
      | '#' -> (
          let j = ref (i + 1) in
          while !j < n && is_ident_char src.[!j] do incr j done;
          let word = String.sub src (i + 1) (!j - i - 1) in
          (match String.lowercase_ascii word with
           | "if" -> push HASH_IF
           | "else" -> push HASH_ELSE
           | "for" -> push HASH_FOR
           | "c_line" | "cline" -> push HASH_CLINE
           | "" -> err "expected name after #"
           | _ -> push (HASH_CALL word));
          loop !j)
      | c when is_digit c ->
          let j = ref i in
          while !j < n && is_digit src.[!j] do incr j done;
          push (INT (int_of_string (String.sub src i (!j - i))));
          loop !j
      | c when is_ident_start c ->
          let j = ref i in
          while !j < n && is_ident_char src.[!j] do incr j done;
          push (IDENT (String.sub src i (!j - i)));
          loop !j
      | c -> err (Printf.sprintf "unexpected character %C" c)
  in
  loop 0;
  push EOF;
  Array.of_list (List.rev !toks)
