(* Reference interpreter for flat IIF designs.

   Two-valued, cycle-oriented semantics used as the specification
   against which synthesized gate netlists are checked:

   - combinational equations settle to a fixpoint;
   - latches are transparent at their active gate level and hold
     otherwise;
   - flip-flops sample their data input when their clock expression
     produces the configured edge, with asynchronous set/reset
     conditions taking priority;
   - rippled clocks (one register clocking another) are handled by
     iterating register evaluation until quiescent. *)

open Flat

exception Unstable of string
(* Raised when combinational feedback fails to reach a fixpoint. *)

type t = {
  flat : Flat.t;
  values : (string, bool) Hashtbl.t;       (* current net values *)
  prev_clock : (string, bool) Hashtbl.t;   (* FF target -> clock seen last *)
  latch_store : (string, bool) Hashtbl.t;  (* latch target -> held value *)
}

let value st net =
  match Hashtbl.find_opt st.values net with
  | Some v -> v
  | None -> false

(* Evaluate a combinational expression. [prev] is the present value of
   the equation's target, used by disabled tri-states (bus keeper
   behaviour) and wired-or resolution. *)
let rec eval st ~prev e =
  match e with
  | Fconst b -> b
  | Fnet n -> value st n
  | Fnot e -> not (eval st ~prev e)
  | Fand es -> List.for_all (eval st ~prev) es
  | For_ es -> List.exists (eval st ~prev) es
  | Fxor (a, b) -> eval st ~prev a <> eval st ~prev b
  | Fxnor (a, b) -> eval st ~prev a = eval st ~prev b
  | Fbuf e | Fschmitt e | Fdelay (e, _) -> eval st ~prev e
  | Ftri { data; enable } ->
      if eval st ~prev enable then eval st ~prev data else prev
  | Fwor es -> (
      (* Drivers that are enabled tri-states or plain signals OR
         together; if every driver is a disabled tri-state the bus
         keeps its previous value. *)
      let contribs = List.map (tri_contribution st ~prev) es in
      let active = List.filter_map Fun.id contribs in
      match active with
      | [] -> prev
      | vs -> List.exists Fun.id vs)

and tri_contribution st ~prev = function
  | Ftri { data; enable } ->
      if eval st ~prev enable then Some (eval st ~prev data) else None
  | e -> Some (eval st ~prev e)

(* One pass over combinational and latch equations; returns true if any
   net changed. *)
let comb_pass st =
  let changed = ref false in
  List.iter
    (fun eq ->
      match eq with
      | Comb { target; rhs } ->
          let prev = value st target in
          let v = eval st ~prev rhs in
          if v <> prev then begin
            Hashtbl.replace st.values target v;
            changed := true
          end
      | Latch { target; data; transparent_high; gate } ->
          let prev = value st target in
          let g = eval st ~prev gate in
          let transparent = if transparent_high then g else not g in
          let v =
            if transparent then begin
              let d = eval st ~prev data in
              Hashtbl.replace st.latch_store target d;
              d
            end
            else
              match Hashtbl.find_opt st.latch_store target with
              | Some held -> held
              | None -> prev
          in
          if v <> prev then begin
            Hashtbl.replace st.values target v;
            changed := true
          end
      | Ff _ -> ())
    st.flat.fequations;
  !changed

let settle st =
  let limit = List.length st.flat.fequations + 8 in
  let rec loop n =
    if comb_pass st then
      if n >= limit then raise (Unstable st.flat.fname) else loop (n + 1)
  in
  loop 0

type reg = {
  rtarget : string;
  rdata : fexpr;
  rrising : bool;
  rclock : fexpr;
  rasyncs : async list;
}

let ffs st =
  List.filter_map
    (fun eq ->
      match eq with
      | Ff { target; data; rising; clock; asyncs } ->
          Some { rtarget = target; rdata = data; rrising = rising;
                 rclock = clock; rasyncs = asyncs }
      | Comb _ | Latch _ -> None)
    st.flat.fequations

(* Apply asynchronous conditions; returns the forced value if any
   condition holds (first match wins, as the spec order implies). *)
let async_force st asyncs =
  List.find_map
    (fun a -> if eval st ~prev:false a.cond then Some a.value else None)
    asyncs

(* Evaluate registers until no register output changes. Each round:
   detect edges against the remembered clock values, sample data,
   apply async overrides, commit simultaneously, re-settle. *)
let update_registers st =
  let regs = ffs st in
  let rounds = List.length regs + 2 in
  let rec loop n =
    settle st;
    let updates =
      List.map
        (fun f ->
          let clk = eval st ~prev:false f.rclock in
          let prev_clk =
            match Hashtbl.find_opt st.prev_clock f.rtarget with
            | Some v -> v
            | None -> clk  (* first observation: no edge *)
          in
          let fired =
            if f.rrising then (not prev_clk) && clk else prev_clk && not clk
          in
          let forced = async_force st f.rasyncs in
          let current = value st f.rtarget in
          let next =
            match forced with
            | Some v -> v
            | None ->
                if fired then eval st ~prev:current f.rdata else current
          in
          (f.rtarget, clk, next, next <> current))
        regs
    in
    let any_change = List.exists (fun (_, _, _, c) -> c) updates in
    List.iter
      (fun (target, clk, next, _) ->
        Hashtbl.replace st.prev_clock target clk;
        Hashtbl.replace st.values target next)
      updates;
    if any_change && n < rounds then loop (n + 1) else settle st
  in
  loop 0

let create flat =
  let st =
    { flat;
      values = Hashtbl.create 64;
      prev_clock = Hashtbl.create 16;
      latch_store = Hashtbl.create 16 }
  in
  st

(* Set primary inputs without clocking consequences being lost: the
   caller is expected to drive the clock like a testbench, e.g.
   [step st [("CLK", false); ...]; step st [("CLK", true); ...]]. *)
let step st inputs =
  List.iter
    (fun (n, v) ->
      if not (List.mem n st.flat.finputs) then
        invalid_arg (Printf.sprintf "Interp.step: %s is not an input" n);
      Hashtbl.replace st.values n v)
    inputs;
  update_registers st

(* Force a register output (e.g. to establish a known initial state). *)
let poke st net v = Hashtbl.replace st.values net v

let outputs st = List.map (fun o -> (o, value st o)) st.flat.foutputs
