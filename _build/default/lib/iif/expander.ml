(* The IIF expander: parameterized IIF -> flat IIF.

   Evaluates C expressions, unrolls #for loops, resolves #if choices and
   inlines subfunction calls by macro substitution (call-by-name, as
   Appendix A specifies). The result is a {!Flat.t} suitable for logic
   synthesis. *)

open Ast

exception Expand_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Expand_error s)) fmt

(* ------------------------------------------------------------------ *)
(* C expression evaluation                                             *)
(* ------------------------------------------------------------------ *)

let rec ipow base e =
  if e < 0 then fail "negative exponent in C expression"
  else if e = 0 then 1
  else base * ipow base (e - 1)

let rec eval_cexpr vars = function
  | Cint i -> i
  | Cvar v -> (
      match Hashtbl.find_opt vars v with
      | Some i -> i
      | None -> fail "unbound variable %s in C expression" v)
  | Cneg e -> -eval_cexpr vars e
  | Cnot e -> if eval_cexpr vars e = 0 then 1 else 0
  | Cbin (op, a, b) -> (
      let x = eval_cexpr vars a and y = eval_cexpr vars b in
      let bool_ c = if c then 1 else 0 in
      match op with
      | Cadd -> x + y
      | Csub -> x - y
      | Cmul -> x * y
      | Cdiv -> if y = 0 then fail "division by zero" else x / y
      | Cmod -> if y = 0 then fail "modulo by zero" else x mod y
      | Cexp -> ipow x y
      | Clt -> bool_ (x < y)
      | Cle -> bool_ (x <= y)
      | Cgt -> bool_ (x > y)
      | Cge -> bool_ (x >= y)
      | Ceq -> bool_ (x = y)
      | Cneq -> bool_ (x <> y)
      | Cand -> bool_ (x <> 0 && y <> 0)
      | Cor -> bool_ (x <> 0 || y <> 0))

(* ------------------------------------------------------------------ *)
(* Expansion context                                                   *)
(* ------------------------------------------------------------------ *)

(* What a signal base name stands for in the current scope. *)
type binding =
  | Base of string    (* renamed base; indices still apply *)
  | Const of bool     (* tied to logic 0 or 1 *)

type ctx = {
  registry : string -> design option;  (* subfunction lookup *)
  vars : (string, int) Hashtbl.t;
  subst : (string, binding) Hashtbl.t;
  equations : (string, Flat.equation) Hashtbl.t;  (* target -> equation *)
  order : string list ref;             (* targets in first-assign order *)
  fresh : int ref;                     (* shared across nested calls *)
  depth : int;
}

let max_depth = 32

let resolve_base ctx base =
  match Hashtbl.find_opt ctx.subst base with
  | Some b -> b
  | None -> Base base

let net_name base indices =
  base ^ String.concat "" (List.map (fun i -> "[" ^ string_of_int i ^ "]") indices)

let resolve_sigref ctx { base; indices } =
  let idx = List.map (eval_cexpr ctx.vars) indices in
  match resolve_base ctx base with
  | Base b -> `Net (net_name b idx)
  | Const c ->
      if idx <> [] then fail "indexed reference to constant-tied signal %s" base;
      `Const c

(* ------------------------------------------------------------------ *)
(* Expression conversion                                               *)
(* ------------------------------------------------------------------ *)

let rec to_fexpr ctx e : Flat.fexpr =
  match e with
  | Lit 0 -> Fconst false
  | Lit 1 -> Fconst true
  | Lit n -> fail "logic literal must be 0 or 1, got %d" n
  | Sig s -> (
      match resolve_sigref ctx s with
      | `Net n -> Fnet n
      | `Const c -> Fconst c)
  | Not e -> Fnot (to_fexpr ctx e)
  | And (a, b) -> (
      match to_fexpr ctx a, to_fexpr ctx b with
      | Fand xs, Fand ys -> Fand (xs @ ys)
      | Fand xs, y -> Fand (xs @ [ y ])
      | x, Fand ys -> Fand (x :: ys)
      | x, y -> Fand [ x; y ])
  | Or (a, b) -> (
      match to_fexpr ctx a, to_fexpr ctx b with
      | For_ xs, For_ ys -> For_ (xs @ ys)
      | For_ xs, y -> For_ (xs @ [ y ])
      | x, For_ ys -> For_ (x :: ys)
      | x, y -> For_ [ x; y ])
  | Xor (a, b) -> Fxor (to_fexpr ctx a, to_fexpr ctx b)
  | Xnor (a, b) -> Fxnor (to_fexpr ctx a, to_fexpr ctx b)
  | Buf e -> Fbuf (to_fexpr ctx e)
  | Schmitt e -> Fschmitt (to_fexpr ctx e)
  | Delay (e, d) -> Fdelay (to_fexpr ctx e, float_of_int (eval_cexpr ctx.vars d))
  | Tristate (d, c) -> Ftri { data = to_fexpr ctx d; enable = to_fexpr ctx c }
  | Wire_or (a, b) -> (
      match to_fexpr ctx a, to_fexpr ctx b with
      | Fwor xs, Fwor ys -> Fwor (xs @ ys)
      | Fwor xs, y -> Fwor (xs @ [ y ])
      | x, Fwor ys -> Fwor (x :: ys)
      | x, y -> Fwor [ x; y ])
  | Edge _ -> fail "edge operator (~r/~f/~h/~l) outside a clock specification"
  | At _ -> fail "@ clocking is only allowed at the top of an equation"
  | Async _ -> fail "~a is only allowed at the top of a clocked equation"

(* Peel the sequential structure off an assignment's right-hand side:
   [data @(edge clk) ~a(v/c, ...)]. *)
let to_equation ctx target rhs : Flat.equation =
  let asyncs, rhs =
    match rhs with
    | Async (inner, specs) ->
        let conv (v, c) =
          let value =
            match to_fexpr ctx v with
            | Fconst b -> b
            | _ -> fail "asynchronous value must be the constant 0 or 1"
          in
          { Flat.value; cond = to_fexpr ctx c }
        in
        (List.map conv specs, inner)
    | rhs -> ([], rhs)
  in
  match rhs with
  | At (data, clockspec) -> (
      let data = to_fexpr ctx data in
      match clockspec with
      | Edge (Rising, c) ->
          Ff { target; data; rising = true; clock = to_fexpr ctx c; asyncs }
      | Edge (Falling, c) ->
          Ff { target; data; rising = false; clock = to_fexpr ctx c; asyncs }
      | Edge (High, c) ->
          if asyncs <> [] then fail "~a is not supported on latches (net %s)" target;
          Latch { target; data; transparent_high = true; gate = to_fexpr ctx c }
      | Edge (Low, c) ->
          if asyncs <> [] then fail "~a is not supported on latches (net %s)" target;
          Latch { target; data; transparent_high = false; gate = to_fexpr ctx c }
      | _ -> fail "clock specification for %s lacks an edge operator" target)
  | rhs ->
      if asyncs <> [] then fail "~a without @ clocking on net %s" target;
      Comb { target; rhs = to_fexpr ctx rhs }

let record ctx target eq =
  if Hashtbl.mem ctx.equations target then
    fail "net %s assigned more than once" target
  else begin
    Hashtbl.add ctx.equations target eq;
    ctx.order := target :: !(ctx.order)
  end

let record_aggregate ctx target combine rhs =
  match Hashtbl.find_opt ctx.equations target with
  | None ->
      Hashtbl.add ctx.equations target (Flat.Comb { target; rhs });
      ctx.order := target :: !(ctx.order)
  | Some (Flat.Comb { rhs = old; _ }) ->
      Hashtbl.replace ctx.equations target
        (Flat.Comb { target; rhs = combine old rhs })
  | Some (Flat.Ff _ | Flat.Latch _) ->
      fail "aggregate assignment to clocked net %s" target

(* ------------------------------------------------------------------ *)
(* Statement expansion                                                 *)
(* ------------------------------------------------------------------ *)

let max_loop_iterations = 65536

let rec exec_stmt ctx = function
  | Block stmts -> List.iter (exec_stmt ctx) stmts
  | Cline assigns ->
      List.iter
        (fun (v, e) -> Hashtbl.replace ctx.vars v (eval_cexpr ctx.vars e))
        assigns
  | If (cond, then_, else_) ->
      if eval_cexpr ctx.vars cond <> 0 then exec_stmt ctx then_
      else Option.iter (exec_stmt ctx) else_
  | For { var; init; cond; step; body } ->
      Hashtbl.replace ctx.vars var (eval_cexpr ctx.vars init);
      let guard = ref 0 in
      while eval_cexpr ctx.vars cond <> 0 do
        incr guard;
        if !guard > max_loop_iterations then
          fail "for-loop over %s exceeded %d iterations" var max_loop_iterations;
        exec_stmt ctx body;
        Hashtbl.replace ctx.vars var (Hashtbl.find ctx.vars var + step)
      done
  | Assign (target, op, rhs) -> (
      let tname =
        match resolve_sigref ctx target with
        | `Net n -> n
        | `Const _ -> fail "cannot assign to constant-tied signal %s" target.base
      in
      match op with
      | Set -> record ctx tname (to_equation ctx tname rhs)
      | Agg_or ->
          let combine a b =
            match a with
            | Flat.For_ xs -> Flat.For_ (xs @ [ b ])
            | a -> Flat.For_ [ a; b ]
          in
          record_aggregate ctx tname combine (to_fexpr ctx rhs)
      | Agg_and ->
          let combine a b =
            match a with
            | Flat.Fand xs -> Flat.Fand (xs @ [ b ])
            | a -> Flat.Fand [ a; b ]
          in
          record_aggregate ctx tname combine (to_fexpr ctx rhs)
      | Agg_xor ->
          record_aggregate ctx tname (fun a b -> Flat.Fxor (a, b))
            (to_fexpr ctx rhs)
      | Agg_xnor ->
          record_aggregate ctx tname (fun a b -> Flat.Fxnor (a, b))
            (to_fexpr ctx rhs))
  | Call (name, actuals) -> expand_call ctx name actuals

and expand_call ctx name actuals =
  if ctx.depth >= max_depth then
    fail "subfunction nesting exceeds %d (recursive IIF?)" max_depth;
  let callee =
    match ctx.registry name with
    | Some d -> d
    | None -> fail "unknown subfunction %s" name
  in
  let formals = formals callee in
  let n_params = List.length callee.dparams in
  if List.length actuals > List.length formals then
    fail "too many arguments in call to %s" name;
  let vars = Hashtbl.create 16 in
  let subst = Hashtbl.create 16 in
  incr ctx.fresh;
  let instance = Printf.sprintf "%s_%d" name !(ctx.fresh) in
  let bind_signal formal = function
    | Some (Cvar base) -> Hashtbl.replace subst formal (resolve_base ctx base)
    | Some (Cint 0) -> Hashtbl.replace subst formal (Const false)
    | Some (Cint 1) -> Hashtbl.replace subst formal (Const true)
    | Some e ->
        (* An index-free computed actual is meaningless for a signal. *)
        fail "call to %s: signal formal %s bound to C expression %s" name
          formal (cexpr_to_string e)
    | None ->
        (* Unsupplied I/O connects by name in the caller's scope;
           unsupplied internals get fresh names. *)
        let is_internal =
          List.exists (fun s -> s.sname = formal) callee.dinternal
        in
        if is_internal then
          Hashtbl.replace subst formal (Base (instance ^ "_" ^ formal))
        else Hashtbl.replace subst formal (resolve_base ctx formal)
  in
  List.iteri
    (fun i formal ->
      let actual = List.nth_opt actuals i in
      if i < n_params then
        match actual with
        | Some e -> Hashtbl.replace vars formal (eval_cexpr ctx.vars e)
        | None -> fail "call to %s: parameter %s not supplied" name formal
      else bind_signal formal actual)
    formals;
  let ctx' = { ctx with vars; subst; depth = ctx.depth + 1 } in
  List.iter (exec_stmt ctx') callee.dbody

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let expand_ports vars decls =
  List.concat_map
    (fun { sname; ssize } ->
      match ssize with
      | None -> [ sname ]
      | Some e ->
          let size = eval_cexpr vars e in
          if size < 0 then fail "negative bus size for %s" sname;
          List.init size (fun i -> Printf.sprintf "%s[%d]" sname i))
    decls

(* [expand ~registry design params] flattens [design] with the given
   parameter values. [registry] resolves SUBFUNCTION names. *)
let expand ?(registry = fun _ -> None) design params =
  let vars = Hashtbl.create 16 in
  List.iter
    (fun p ->
      match List.assoc_opt p params with
      | Some v -> Hashtbl.replace vars p v
      | None -> fail "parameter %s of %s not supplied" p design.dname)
    design.dparams;
  List.iter
    (fun (p, _) ->
      if not (List.mem p design.dparams) then
        fail "%s is not a parameter of %s" p design.dname)
    params;
  let ctx =
    { registry;
      vars;
      subst = Hashtbl.create 16;
      equations = Hashtbl.create 64;
      order = ref [];
      fresh = ref 0;
      depth = 0 }
  in
  List.iter (exec_stmt ctx) design.dbody;
  let finputs = expand_ports vars design.dinputs in
  let foutputs = expand_ports vars design.doutputs in
  let declared_internals = expand_ports vars design.dinternal in
  let targets = List.rev !(ctx.order) in
  (* Internals: declared ones plus any fresh nets introduced by calls. *)
  let io = finputs @ foutputs in
  let extra =
    List.filter (fun t -> not (List.mem t io) && not (List.mem t declared_internals)) targets
  in
  let fequations = List.map (Hashtbl.find ctx.equations) targets in
  { Flat.fname = design.dname;
    finputs;
    foutputs;
    finternals = Flat.uniq (declared_internals @ extra);
    fequations }
