(* The generic component library's parameterized IIF descriptions.

   These are the component implementations ICDB ships with (§2.2): each
   is IIF source text, parsed on demand. The COUNTER description follows
   the paper's §3.1 example (74191-style counter with architecture type,
   parallel load, enable and count-direction options). *)

let counter =
  {|
NAME:COUNTER;
FUNCTIONS: INC;
PARAMETER: size, type, load, enable, up_or_down;
INORDER: D[size], CLK, LOAD, ENA, DWUP;
OUTORDER: Q[size], MINMAX, RCLK;
PIIFVARIABLE: C[size+1], OVFUNF, CLKO;
VARIABLE: i;
SUBFUNCTION: RIPPLE_COUNTER;
{
  #if (type == 1)
  {
    /* Asynchronous (ripple) architecture: small but slow to settle. */
    #RIPPLE_COUNTER(size);
    OVFUNF *= 1;
    #for(i=0;i<size;i++) OVFUNF *= Q[i];
    MINMAX = CLK*OVFUNF;
    RCLK = CLK*OVFUNF + !OVFUNF;
  }
  #else
  {
    /* Synchronous architecture with carry chain. */
    C[0] = 1;
    #if (enable) CLKO = CLK @(~h ENA);
    #else CLKO = CLK;
    #for(i=0;i<size;i++)
    {
      #if (up_or_down == 1) C[i+1] = C[i]*Q[i];             /* up only */
      #else #if (up_or_down == 2) C[i+1] = C[i]*!Q[i];      /* down only */
      #else C[i+1] = C[i]*(Q[i](+)DWUP);                    /* up/down */
      #if (load)
        Q[i] = (Q[i](+)C[i]) @(~r CLKO) ~a(0/(!LOAD*!D[i]), 1/(!LOAD*D[i]));
      #else
        Q[i] = (Q[i](+)C[i]) @(~r CLKO);
    }
    OVFUNF = C[size];
    MINMAX = CLK*OVFUNF;
    RCLK = CLK*OVFUNF + !OVFUNF;
  }
}
|}

let ripple_counter =
  {|
NAME:RIPPLE_COUNTER;
FUNCTIONS: INC;
PARAMETER: size;
INORDER: CLK;
OUTORDER: Q[size];
VARIABLE: i;
{
  Q[0] = (!Q[0]) @(~r CLK);
  #for(i=1;i<size;i++)
    Q[i] = (!Q[i]) @(~f Q[i-1]);
}
|}

let adder =
  {|
NAME:ADDER;
FUNCTIONS: ADD;
PARAMETER: size;
INORDER: I0[size], I1[size], Cin;
OUTORDER: O[size], Cout;
PIIFVARIABLE: C[size+1];
VARIABLE: i;
{
  C[0]=Cin;
  #for(i=0;i<size;i++)
  {
    O[i] = I0[i] (+) I1[i] (+) C[i];
    C[i+1] = I0[i]*I1[i] + I0[i]*C[i] + I1[i]*C[i];
  }
  Cout = C[size];
}
|}

let addsub =
  {|
NAME:ADDSUB;
FUNCTIONS: ADD, SUB;
PARAMETER: size;
INORDER: A[size], B[size], ADDSUB;
OUTORDER: O[size], Cout;
PIIFVARIABLE: C[size+1], B1[size];
VARIABLE: i;
SUBFUNCTION: ADDER;
{
  #for(i=0;i<size;i++)
    B1[i] = ADDSUB (+) B[i];
  #ADDER(size, A, B1, ADDSUB, O, Cout, C);
}
|}

let register =
  {|
NAME:REGISTER;
FUNCTIONS: STORAGE;
PARAMETER: size, load;
INORDER: I[size], LOAD, CLK;
OUTORDER: Q[size];
PIIFVARIABLE: CP;
VARIABLE: i;
{
  CP = ~b CLK;
  #for(i=0;i<size;i++)
  {
    #if (load) Q[i] = (I[i]*LOAD + Q[i]*!LOAD) @(~r CP);
    #else Q[i] = I[i] @(~r CP);
  }
}
|}

let shl0 =
  {|
NAME:SHL0;
FUNCTIONS: SHL;
PARAMETER: size, shift_distance;
INORDER: I[size];
OUTORDER: O[size];
VARIABLE: i;
{
  #for(i=0;i<size;i++)
  {
    #if (i <= shift_distance - 1) O[i] = 0;
    #else O[i] = I[i-shift_distance];
  }
}
|}

let andn =
  {|
NAME:ANDN;
FUNCTIONS: AND;
PARAMETER: size;
INORDER: I0[size];
OUTORDER: O;
VARIABLE: i;
{
  #for(i=0;i<size;i++) O *= I0[i];
}
|}

let mux2 =
  {|
NAME:MUX2;
FUNCTIONS: MUX_SCL;
PARAMETER: size;
INORDER: I0[size], I1[size], SEL;
OUTORDER: O[size];
VARIABLE: i;
{
  #for(i=0;i<size;i++) O[i] = I0[i]*!SEL + I1[i]*SEL;
}
|}

let decoder =
  {|
NAME:DECODER;
FUNCTIONS: DECODE;
PARAMETER: size;
INORDER: I[size], EN;
OUTORDER: O[2**size];
VARIABLE: i, j;
{
  #for(i=0; i<2**size; i++)
  {
    O[i] *= EN;
    #for(j=0; j<size; j++)
    {
      #if ((i / (2**j)) % 2 == 1) O[i] *= I[j];
      #else O[i] *= !I[j];
    }
  }
}
|}

let comparator =
  {|
NAME:COMPARATOR;
FUNCTIONS: EQ, NEQ, GT, LT;
PARAMETER: size;
INORDER: A[size], B[size];
OUTORDER: OEQ, ONEQ, OGT, OLT;
PIIFVARIABLE: E[size+1], G[size+1], L[size+1];
VARIABLE: i;
{
  E[0]=1;
  G[0]=0;
  L[0]=0;
  /* Scan from the most significant bit down. */
  #for(i=0;i<size;i++)
  {
    E[i+1] = E[i] * (A[size-1-i] (.) B[size-1-i]);
    G[i+1] = G[i] + E[i]*A[size-1-i]*!B[size-1-i];
    L[i+1] = L[i] + E[i]*!A[size-1-i]*B[size-1-i];
  }
  OEQ = E[size];
  ONEQ = !E[size];
  OGT = G[size];
  OLT = L[size];
}
|}

(* Operation select C2 C1 C0: 000 AND, 001 OR, 010 XOR, 011 NOT A,
   100 ADD, 101 SUB. *)
let alu =
  {|
NAME:ALU;
FUNCTIONS: ADD, SUB, AND, OR, XOR, NOT;
PARAMETER: size;
INORDER: A[size], B[size], C0, C1, C2;
OUTORDER: O[size], Cout;
PIIFVARIABLE: C[size+1], BX[size], SUM[size], LOG[size], SUBSEL;
VARIABLE: i;
{
  SUBSEL = C2*!C1*C0;
  C[0] = SUBSEL;
  #for(i=0;i<size;i++)
  {
    BX[i] = B[i] (+) SUBSEL;
    SUM[i] = A[i] (+) BX[i] (+) C[i];
    C[i+1] = A[i]*BX[i] + A[i]*C[i] + BX[i]*C[i];
    LOG[i] = !C1*!C0*A[i]*B[i] + !C1*C0*(A[i]+B[i])
           + C1*!C0*(A[i](+)B[i]) + C1*C0*!A[i];
    O[i] = C2*SUM[i] + !C2*LOG[i];
  }
  Cout = C[size]*C2;
}
|}

let tribuf =
  {|
NAME:TRIBUF;
FUNCTIONS: TRI_STATE;
PARAMETER: size;
INORDER: I[size], EN;
OUTORDER: O[size];
VARIABLE: i;
{
  #for(i=0;i<size;i++) O[i] = I[i] ~t EN;
}
|}

let encoder =
  {|
NAME:ENCODER;
FUNCTIONS: ENCODE;
PARAMETER: size;
INORDER: I[2**size];
OUTORDER: O[size], VALID;
VARIABLE: i, j;
{
  /* one-hot to binary; VALID flags any active input */
  #for(i=0; i<2**size; i++)
  {
    VALID += I[i];
    #for(j=0; j<size; j++)
      #if ((i / (2**j)) % 2 == 1) O[j] += I[i];
  }
}
|}

let barrel_shifter =
  {|
NAME:BARREL_SHIFTER;
FUNCTIONS: SHL;
PARAMETER: size, stages;
INORDER: I[size], S[stages];
OUTORDER: O[size];
PIIFVARIABLE: T[(stages+1)*size];
VARIABLE: i, k;
{
  /* logarithmic shifter: stage k shifts by 2**k when S[k] is set */
  #for(i=0;i<size;i++) T[i] = I[i];
  #for(k=0;k<stages;k++)
    #for(i=0;i<size;i++)
    {
      #if (i >= 2**k)
        T[(k+1)*size+i] = T[k*size+i]*!S[k] + T[k*size+i-2**k]*S[k];
      #else
        T[(k+1)*size+i] = T[k*size+i]*!S[k];
    }
  #for(i=0;i<size;i++) O[i] = T[stages*size+i];
}
|}

let shift_register =
  {|
NAME:SHIFT_REGISTER;
FUNCTIONS: SHL1, STORAGE;
PARAMETER: size;
INORDER: I[size], SIN, LOAD, SHIFT, CLK;
OUTORDER: Q[size], SOUT;
VARIABLE: i;
{
  /* LOAD wins over SHIFT; otherwise hold */
  Q[0] = (I[0]*LOAD + SIN*SHIFT*!LOAD + Q[0]*!LOAD*!SHIFT) @(~r CLK);
  #for(i=1;i<size;i++)
    Q[i] = (I[i]*LOAD + Q[i-1]*SHIFT*!LOAD + Q[i]*!LOAD*!SHIFT) @(~r CLK);
  SOUT = Q[size-1];
}
|}

let multiplier =
  {|
NAME:MULTIPLIER;
FUNCTIONS: MUL;
PARAMETER: size;
INORDER: A[size], B[size];
OUTORDER: P[2*size];
PIIFVARIABLE: PP[size*size], SROW[size*size], CROW[size*(size+1)];
VARIABLE: i, j;
{
  /* array multiplier: row i accumulates the partial product A*B[i] */
  #for(i=0;i<size;i++)
    #for(j=0;j<size;j++)
      PP[i*size+j] = A[j]*B[i];
  #for(j=0;j<size;j++) SROW[j] = PP[j];
  CROW[size] = 0;
  P[0] = SROW[0];
  #for(i=1;i<size;i++)
  {
    CROW[i*(size+1)] = 0;
    #for(j=0;j<size;j++)
    {
      #if (j < size-1)
      {
        SROW[i*size+j] = SROW[(i-1)*size+j+1] (+) PP[i*size+j]
                       (+) CROW[i*(size+1)+j];
        CROW[i*(size+1)+j+1] = SROW[(i-1)*size+j+1]*PP[i*size+j]
                             + SROW[(i-1)*size+j+1]*CROW[i*(size+1)+j]
                             + PP[i*size+j]*CROW[i*(size+1)+j];
      }
      #else
      {
        SROW[i*size+j] = CROW[(i-1)*(size+1)+size] (+) PP[i*size+j]
                       (+) CROW[i*(size+1)+j];
        CROW[i*(size+1)+j+1] = CROW[(i-1)*(size+1)+size]*PP[i*size+j]
                             + CROW[(i-1)*(size+1)+size]*CROW[i*(size+1)+j]
                             + PP[i*size+j]*CROW[i*(size+1)+j];
      }
    }
    P[i] = SROW[i*size];
  }
  #for(j=1;j<size;j++) P[size-1+j] = SROW[(size-1)*size+j];
  P[2*size-1] = CROW[(size-1)*(size+1)+size];
}
|}

let divider =
  {|
NAME:DIVIDER;
FUNCTIONS: DIV;
PARAMETER: size;
INORDER: A[size], B[size];
OUTORDER: Q[size], REM[size];
PIIFVARIABLE: R[(size+1)*(size+1)], RS[size*(size+1)], DIF[size*(size+1)],
              BOR[size*(size+2)];
VARIABLE: k, j;
{
  /* restoring array divider: step k produces quotient bit size-1-k */
  #for(j=0;j<=size;j++) R[j] = 0;
  #for(k=0;k<size;k++)
  {
    /* shift the running remainder left, bringing in dividend bit */
    RS[k*(size+1)] = A[size-1-k];
    #for(j=1;j<=size;j++) RS[k*(size+1)+j] = R[k*(size+1)+j-1];
    /* trial subtraction of the (zero-extended) divisor */
    BOR[k*(size+2)] = 0;
    #for(j=0;j<=size;j++)
    {
      #if (j < size)
      {
        DIF[k*(size+1)+j] = RS[k*(size+1)+j] (+) B[j] (+) BOR[k*(size+2)+j];
        BOR[k*(size+2)+j+1] = !RS[k*(size+1)+j]*B[j]
                            + !RS[k*(size+1)+j]*BOR[k*(size+2)+j]
                            + B[j]*BOR[k*(size+2)+j];
      }
      #else
      {
        DIF[k*(size+1)+j] = RS[k*(size+1)+j] (+) BOR[k*(size+2)+j];
        BOR[k*(size+2)+j+1] = !RS[k*(size+1)+j]*BOR[k*(size+2)+j];
      }
    }
    Q[size-1-k] = !BOR[k*(size+2)+size+1];
    /* keep the difference when it did not borrow */
    #for(j=0;j<=size;j++)
      R[(k+1)*(size+1)+j] = DIF[k*(size+1)+j]*Q[size-1-k]
                          + RS[k*(size+1)+j]*!Q[size-1-k];
  }
  #for(j=0;j<size;j++) REM[j] = R[size*(size+1)+j];
}
|}

let register_file =
  {|
NAME:REGISTER_FILE;
FUNCTIONS: MEMORY, READ, WRITE, STORAGE;
PARAMETER: size, abits;
INORDER: D[size], WA[abits], RA[abits], WE, CLK;
OUTORDER: Q[size];
PIIFVARIABLE: M[(2**abits)*size], WSEL[2**abits], RSEL[2**abits];
VARIABLE: w, b, j;
{
  #for(w=0; w<2**abits; w++)
  {
    WSEL[w] *= WE;
    RSEL[w] *= 1;
    #for(j=0;j<abits;j++)
    {
      #if ((w / (2**j)) % 2 == 1)
      {
        WSEL[w] *= WA[j];
        RSEL[w] *= RA[j];
      }
      #else
      {
        WSEL[w] *= !WA[j];
        RSEL[w] *= !RA[j];
      }
    }
    #for(b=0;b<size;b++)
      M[w*size+b] = (D[b]*WSEL[w] + M[w*size+b]*!WSEL[w]) @(~r CLK);
  }
  #for(b=0;b<size;b++)
    #for(w=0; w<2**abits; w++)
      Q[b] += M[w*size+b]*RSEL[w];
}
|}

let logic_unit =
  {|
NAME:LOGIC_UNIT;
FUNCTIONS: AND, OR, XOR, NOT;
PARAMETER: size;
INORDER: A[size], B[size], S0, S1;
OUTORDER: O[size];
VARIABLE: i;
{
  /* S1 S0: 00 AND, 01 OR, 10 XOR, 11 NOT A */
  #for(i=0;i<size;i++)
    O[i] = !S1*!S0*A[i]*B[i] + !S1*S0*(A[i]+B[i])
         + S1*!S0*(A[i](+)B[i]) + S1*S0*!A[i];
}
|}

let muxg =
  {|
NAME:MUXG;
FUNCTIONS: MUX_SCG;
PARAMETER: size, ways;
INORDER: I[ways*size], G[ways];
OUTORDER: O[size];
VARIABLE: w, b;
{
  /* select by guard: one-hot G picks a word */
  #for(b=0;b<size;b++)
    #for(w=0;w<ways;w++)
      O[b] += I[w*size+b]*G[w];
}
|}

let concat =
  {|
NAME:CONCAT;
FUNCTIONS: CONCAT;
PARAMETER: asize, bsize;
INORDER: A[asize], B[bsize];
OUTORDER: O[asize+bsize];
VARIABLE: i;
{
  #for(i=0;i<asize;i++) O[i] = A[i];
  #for(i=0;i<bsize;i++) O[asize+i] = B[i];
}
|}

let extract =
  {|
NAME:EXTRACT;
FUNCTIONS: EXTRACT;
PARAMETER: size, low, width;
INORDER: I[size];
OUTORDER: O[width];
VARIABLE: i;
{
  #for(i=0;i<width;i++) O[i] = I[low+i];
}
|}

let clock_driver =
  {|
NAME:CLK_DRIVER;
FUNCTIONS: CLK_DR, BUF;
PARAMETER: size;
INORDER: I;
OUTORDER: O[size];
VARIABLE: i;
{
  #for(i=0;i<size;i++) O[i] = ~b I;
}
|}

let schmitt_trigger =
  {|
NAME:SCHMITT_TRIG;
FUNCTIONS: SCHM_TGR;
PARAMETER: size;
INORDER: I[size];
OUTORDER: O[size];
VARIABLE: i;
{
  #for(i=0;i<size;i++) O[i] = ~s I[i];
}
|}

let wor_bus2 =
  {|
NAME:WOR_BUS2;
FUNCTIONS: BUS, WIRE_OR;
PARAMETER: size;
INORDER: I0[size], I1[size], EN0, EN1;
OUTORDER: O[size];
VARIABLE: b;
{
  /* two tri-state drivers wired onto one bus */
  #for(b=0;b<size;b++)
    O[b] = (I0[b] ~t EN0) ~w (I1[b] ~t EN1);
}
|}

let stack =
  {|
NAME:STACK;
FUNCTIONS: PUSH, POP, STORAGE;
PARAMETER: size, abits;
INORDER: D[size], PUSH, POP, CLK, RESET;
OUTORDER: Q[size], EMPTY, FULL;
PIIFVARIABLE: P[abits+1], PINC[abits+1], PDEC[abits+1], CI[abits+2],
              BO[abits+2], PN[abits+1], DOPUSH, DOPOP,
              WSEL[2**abits], RSEL[2**abits], M[(2**abits)*size], RA[abits];
VARIABLE: j, w, b;
{
  /* pointer counts entries; PUSH wins over POP */
  DOPUSH = PUSH*!FULL;
  DOPOP = POP*!PUSH*!EMPTY;

  /* increment and decrement chains */
  CI[0] = 1;
  BO[0] = 1;
  #for(j=0;j<=abits;j++)
  {
    PINC[j] = P[j] (+) CI[j];
    CI[j+1] = P[j]*CI[j];
    PDEC[j] = P[j] (+) BO[j];
    BO[j+1] = !P[j]*BO[j];
  }
  #for(j=0;j<=abits;j++)
  {
    PN[j] = PINC[j]*DOPUSH + PDEC[j]*DOPOP + P[j]*!DOPUSH*!DOPOP;
    P[j] = PN[j] @(~r CLK) ~a(0/(RESET));
  }

  EMPTY *= 1;
  #for(j=0;j<=abits;j++) EMPTY *= !P[j];
  FULL = P[abits];

  /* write the pushed word at the current pointer */
  #for(w=0; w<2**abits; w++)
  {
    WSEL[w] *= DOPUSH;
    #for(j=0;j<abits;j++)
    {
      #if ((w / (2**j)) % 2 == 1) WSEL[w] *= P[j];
      #else WSEL[w] *= !P[j];
    }
    #for(b=0;b<size;b++)
      M[w*size+b] = (D[b]*WSEL[w] + M[w*size+b]*!WSEL[w]) @(~r CLK);
  }

  /* the top of stack lives at pointer - 1 */
  #for(j=0;j<abits;j++) RA[j] = PDEC[j];
  #for(w=0; w<2**abits; w++)
  {
    RSEL[w] *= 1;
    #for(j=0;j<abits;j++)
    {
      #if ((w / (2**j)) % 2 == 1) RSEL[w] *= RA[j];
      #else RSEL[w] *= !RA[j];
    }
  }
  #for(b=0;b<size;b++)
    #for(w=0; w<2**abits; w++)
      Q[b] += M[w*size+b]*RSEL[w];
}
|}

let sources =
  [ ("COUNTER", counter);
    ("RIPPLE_COUNTER", ripple_counter);
    ("ADDER", adder);
    ("ADDSUB", addsub);
    ("REGISTER", register);
    ("SHL0", shl0);
    ("ANDN", andn);
    ("MUX2", mux2);
    ("DECODER", decoder);
    ("COMPARATOR", comparator);
    ("ALU", alu);
    ("TRIBUF", tribuf);
    ("ENCODER", encoder);
    ("BARREL_SHIFTER", barrel_shifter);
    ("SHIFT_REGISTER", shift_register);
    ("MULTIPLIER", multiplier);
    ("DIVIDER", divider);
    ("REGISTER_FILE", register_file);
    ("LOGIC_UNIT", logic_unit);
    ("MUXG", muxg);
    ("CONCAT", concat);
    ("EXTRACT", extract);
    ("CLK_DRIVER", clock_driver);
    ("SCHMITT_TRIG", schmitt_trigger);
    ("WOR_BUS2", wor_bus2);
    ("STACK", stack) ]

let designs =
  lazy
    (List.map (fun (name, src) -> (name, Parser.parse src)) sources)

let all () = Lazy.force designs

let find name = List.assoc_opt name (all ())

(* Registry suitable for {!Expander.expand}. *)
let registry name = find name

(* Convenience: look up, expand, and validate a builtin design. *)
let expand_exn name params =
  match find name with
  | None -> raise (Expander.Expand_error ("unknown builtin design " ^ name))
  | Some d ->
      let flat = Expander.expand ~registry d params in
      (match Flat.validate flat with
       | [] -> flat
       | problems ->
           raise
             (Expander.Expand_error
                (Printf.sprintf "%s: %s" name
                   (String.concat "; "
                      (List.map Flat.problem_to_string problems)))))
