lib/iif/interp.mli: Flat
