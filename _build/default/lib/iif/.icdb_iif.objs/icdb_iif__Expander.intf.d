lib/iif/expander.mli: Ast Flat Hashtbl
