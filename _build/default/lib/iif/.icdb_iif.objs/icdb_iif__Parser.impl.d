lib/iif/parser.ml: Array Ast Lexer List Printf String
