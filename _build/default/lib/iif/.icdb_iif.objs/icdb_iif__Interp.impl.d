lib/iif/interp.ml: Flat Fun Hashtbl List Printf
