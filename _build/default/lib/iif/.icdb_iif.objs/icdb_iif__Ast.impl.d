lib/iif/ast.ml: List Printf String
