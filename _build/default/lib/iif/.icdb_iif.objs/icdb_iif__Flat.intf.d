lib/iif/flat.mli: Buffer
