lib/iif/parser.mli: Ast
