lib/iif/lexer.ml: Array List Printf String
