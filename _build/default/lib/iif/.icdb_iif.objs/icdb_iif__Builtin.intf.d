lib/iif/builtin.mli: Ast Flat
