lib/iif/flat.ml: Buffer Hashtbl List Printf String
