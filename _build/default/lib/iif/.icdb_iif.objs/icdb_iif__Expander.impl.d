lib/iif/expander.ml: Ast Flat Hashtbl List Option Printf String
