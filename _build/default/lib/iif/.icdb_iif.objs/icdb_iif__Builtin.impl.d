lib/iif/builtin.ml: Expander Flat Lazy List Parser Printf String
