(** Reference interpreter for flat IIF designs.

    Two-valued, cycle-oriented semantics used as the specification
    oracle for synthesized netlists: combinational equations settle to
    a fixpoint, latches hold when opaque, flip-flops sample on their
    configured edge with asynchronous set/reset taking priority, and
    rippled clocks (registers clocking registers) are iterated to
    quiescence. All state starts at zero. *)

exception Unstable of string
(** Combinational feedback failed to reach a fixpoint (design name). *)

type t

val create : Flat.t -> t

val step : t -> (string * bool) list -> unit
(** Apply input values and settle the design. The caller drives clocks
    explicitly like a testbench:
    [step st [("CLK", false)]; step st [("CLK", true)]].
    @raise Invalid_argument if a named net is not an input.
    @raise Unstable on oscillating feedback. *)

val value : t -> string -> bool
(** Current value of any net (undriven nets read false). *)

val poke : t -> string -> bool -> unit
(** Force a net (e.g. to establish register state before a test). *)

val outputs : t -> (string * bool) list
(** All primary outputs, in declaration order. *)
