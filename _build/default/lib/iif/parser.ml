(* Recursive-descent parser for IIF (grammar in paper Appendix A.2). *)

open Ast

exception Parse_error of string * int  (* message, line *)

type state = {
  toks : (Lexer.token * int) array;
  mutable pos : int;
}

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let err st fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (msg, line st))) fmt

let expect st tok =
  if peek st = tok then advance st
  else
    err st "expected %s but found %s" (Lexer.token_name tok)
      (Lexer.token_name (peek st))

let ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | t -> err st "expected identifier, found %s" (Lexer.token_name t)

(* ------------------------------------------------------------------ *)
(* C expressions                                                       *)
(* ------------------------------------------------------------------ *)

let rec cexpr st = c_or st

and c_or st =
  let left = c_and st in
  match peek st with
  | Lexer.OROR -> advance st; Cbin (Cor, left, c_or st)
  | _ -> left

and c_and st =
  let left = c_eq st in
  match peek st with
  | Lexer.ANDAND -> advance st; Cbin (Cand, left, c_and st)
  | _ -> left

and c_eq st =
  let left = c_rel st in
  match peek st with
  | Lexer.EQEQ -> advance st; Cbin (Ceq, left, c_rel st)
  | Lexer.NEQ -> advance st; Cbin (Cneq, left, c_rel st)
  (* Tolerate a single '=' as equality inside conditions: the paper's
     examples write [#if(i=size)]. *)
  | Lexer.EQ -> advance st; Cbin (Ceq, left, c_rel st)
  | _ -> left

and c_rel st =
  let left = c_add st in
  match peek st with
  | Lexer.LT -> advance st; Cbin (Clt, left, c_add st)
  | Lexer.LE -> advance st; Cbin (Cle, left, c_add st)
  | Lexer.GT -> advance st; Cbin (Cgt, left, c_add st)
  | Lexer.GE -> advance st; Cbin (Cge, left, c_add st)
  | _ -> left

and c_add st =
  let rec loop left =
    match peek st with
    | Lexer.PLUS -> advance st; loop (Cbin (Cadd, left, c_mul st))
    | Lexer.MINUS -> advance st; loop (Cbin (Csub, left, c_mul st))
    | _ -> left
  in
  loop (c_mul st)

and c_mul st =
  let rec loop left =
    match peek st with
    | Lexer.STAR -> advance st; loop (Cbin (Cmul, left, c_pow st))
    | Lexer.SLASH -> advance st; loop (Cbin (Cdiv, left, c_pow st))
    | Lexer.PERCENT -> advance st; loop (Cbin (Cmod, left, c_pow st))
    | _ -> left
  in
  loop (c_pow st)

and c_pow st =
  let left = c_unary st in
  match peek st with
  | Lexer.DSTAR -> advance st; Cbin (Cexp, left, c_pow st)
  | _ -> left

and c_unary st =
  match peek st with
  | Lexer.MINUS -> advance st; Cneg (c_unary st)
  | Lexer.BANG -> advance st; Cnot (c_unary st)
  | _ -> c_atom st

and c_atom st =
  match peek st with
  | Lexer.INT i -> advance st; Cint i
  | Lexer.IDENT v -> advance st; Cvar v
  | Lexer.LPAREN ->
      advance st;
      let e = cexpr st in
      expect st Lexer.RPAREN;
      e
  | t -> err st "expected a C expression, found %s" (Lexer.token_name t)

(* ------------------------------------------------------------------ *)
(* Boolean expressions                                                 *)
(* ------------------------------------------------------------------ *)

let rec sigref_tail st base =
  let rec indices acc =
    match peek st with
    | Lexer.LBRACKET ->
        advance st;
        let e = cexpr st in
        expect st Lexer.RBRACKET;
        indices (e :: acc)
    | _ -> List.rev acc
  in
  { base; indices = indices [] }

(* Full expression with the postfix sequential/interface operators. *)
and expr st =
  let rec loop left =
    match peek st with
    | Lexer.AT ->
        advance st;
        expect st Lexer.LPAREN;
        let clk = expr st in
        expect st Lexer.RPAREN;
        loop (At (left, clk))
    | Lexer.TILDE_A ->
        advance st;
        expect st Lexer.LPAREN;
        let rec specs acc =
          let v = or_expr st in
          expect st Lexer.SLASH;
          let c = or_expr st in
          match peek st with
          | Lexer.COMMA -> advance st; specs ((v, c) :: acc)
          | _ -> List.rev ((v, c) :: acc)
        in
        let sp = specs [] in
        expect st Lexer.RPAREN;
        loop (Async (left, sp))
    | Lexer.TILDE_D ->
        advance st;
        let d = c_atom st in
        loop (Delay (left, d))
    | Lexer.TILDE_T ->
        advance st;
        let c = or_expr st in
        loop (Tristate (left, c))
    | Lexer.TILDE_W ->
        advance st;
        let r = or_expr st in
        loop (Wire_or (left, r))
    | _ -> left
  in
  loop (or_expr st)

and or_expr st =
  let rec loop left =
    match peek st with
    | Lexer.PLUS -> advance st; loop (Or (left, and_expr st))
    | _ -> left
  in
  loop (and_expr st)

and and_expr st =
  let rec loop left =
    match peek st with
    | Lexer.STAR -> advance st; loop (And (left, xor_expr st))
    | _ -> left
  in
  loop (xor_expr st)

and xor_expr st =
  let rec loop left =
    match peek st with
    | Lexer.XOR -> advance st; loop (Xor (left, unary st))
    | Lexer.XNOR -> advance st; loop (Xnor (left, unary st))
    | _ -> left
  in
  loop (unary st)

and unary st =
  match peek st with
  | Lexer.BANG -> advance st; Not (unary st)
  | Lexer.TILDE_B -> advance st; Buf (unary st)
  | Lexer.TILDE_S -> advance st; Schmitt (unary st)
  | Lexer.TILDE_R -> advance st; Edge (Rising, unary st)
  | Lexer.TILDE_F -> advance st; Edge (Falling, unary st)
  | Lexer.TILDE_H -> advance st; Edge (High, unary st)
  | Lexer.TILDE_L -> advance st; Edge (Low, unary st)
  | _ -> primary st

and primary st =
  match peek st with
  | Lexer.IDENT base ->
      advance st;
      Sig (sigref_tail st base)
  | Lexer.INT i when i = 0 || i = 1 ->
      advance st;
      Lit i
  | Lexer.LPAREN ->
      advance st;
      let e = expr st in
      expect st Lexer.RPAREN;
      e
  | t -> err st "expected an expression, found %s" (Lexer.token_name t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec stmt st =
  match peek st with
  | Lexer.LBRACE ->
      advance st;
      let rec body acc =
        match peek st with
        | Lexer.RBRACE -> advance st; List.rev acc
        | _ -> body (stmt st :: acc)
      in
      Block (body [])
  | Lexer.HASH_IF ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = cexpr st in
      expect st Lexer.RPAREN;
      let then_ = stmt st in
      (match peek st with
       | Lexer.HASH_ELSE ->
           advance st;
           let else_ = stmt st in
           If (cond, then_, Some else_)
       | _ -> If (cond, then_, None))
  | Lexer.HASH_FOR ->
      advance st;
      expect st Lexer.LPAREN;
      let var = ident st in
      expect st Lexer.EQ;
      let init = cexpr st in
      expect st Lexer.SEMI;
      let cond = cexpr st in
      expect st Lexer.SEMI;
      let var2 = ident st in
      if var2 <> var then
        err st "for-loop step must use the loop variable %s" var;
      let step =
        match peek st with
        | Lexer.PLUSPLUS -> advance st; 1
        | Lexer.MINUSMINUS -> advance st; -1
        | t -> err st "expected ++ or --, found %s" (Lexer.token_name t)
      in
      expect st Lexer.RPAREN;
      let body = stmt st in
      For { var; init; cond; step; body }
  | Lexer.HASH_CLINE ->
      advance st;
      let rec assigns acc =
        let v = ident st in
        expect st Lexer.EQ;
        let e = cexpr st in
        match peek st with
        | Lexer.COMMA -> advance st; assigns ((v, e) :: acc)
        | _ ->
            expect st Lexer.SEMI;
            List.rev ((v, e) :: acc)
      in
      Cline (assigns [])
  | Lexer.HASH_CALL name ->
      advance st;
      expect st Lexer.LPAREN;
      let rec args acc =
        match peek st with
        | Lexer.RPAREN -> advance st; List.rev acc
        | Lexer.COMMA -> advance st; args acc
        | _ -> args (cexpr st :: acc)
      in
      let a = args [] in
      expect st Lexer.SEMI;
      Call (name, a)
  | Lexer.IDENT base -> (
      advance st;
      let target = sigref_tail st base in
      let op =
        match peek st with
        | Lexer.EQ -> Set
        | Lexer.PLUSEQ -> Agg_or
        | Lexer.STAREQ -> Agg_and
        | Lexer.XOREQ -> Agg_xor
        | Lexer.XNOREQ -> Agg_xnor
        | t -> err st "expected an assignment operator, found %s" (Lexer.token_name t)
      in
      advance st;
      let rhs = expr st in
      expect st Lexer.SEMI;
      Assign (target, op, rhs))
  | t -> err st "expected a statement, found %s" (Lexer.token_name t)

(* ------------------------------------------------------------------ *)
(* Declarations and designs                                            *)
(* ------------------------------------------------------------------ *)

let sdecl st =
  let sname = ident st in
  match peek st with
  | Lexer.LBRACKET ->
      advance st;
      let e = cexpr st in
      expect st Lexer.RBRACKET;
      { sname; ssize = Some e }
  | _ -> { sname; ssize = None }

let sdecl_list st =
  let rec loop acc =
    let d = sdecl st in
    match peek st with
    | Lexer.COMMA -> advance st; loop (d :: acc)
    | _ ->
        expect st Lexer.SEMI;
        List.rev (d :: acc)
  in
  loop []

let name_list st = List.map (fun d -> d.sname) (sdecl_list st)

let design_of_tokens toks =
  let st = { toks; pos = 0 } in
  let dname = ref "" in
  let dfunctions = ref [] in
  let dparams = ref [] in
  let dvars = ref [] in
  let dinputs = ref [] in
  let doutputs = ref [] in
  let dinternal = ref [] in
  let dsubfunctions = ref [] in
  let dsubcomponents = ref [] in
  let rec decls () =
    match peek st with
    | Lexer.IDENT kw -> (
        advance st;
        expect st Lexer.COLON;
        (match String.uppercase_ascii kw with
         | "NAME" ->
             dname := ident st;
             expect st Lexer.SEMI
         | "FUNCTIONS" | "FUNCTION" -> dfunctions := !dfunctions @ name_list st
         | "PARAMETER" -> dparams := !dparams @ name_list st
         | "VARIABLE" -> dvars := !dvars @ name_list st
         | "INORDER" -> dinputs := !dinputs @ sdecl_list st
         | "OUTORDER" -> doutputs := !doutputs @ sdecl_list st
         | "PIIFVARIABLE" -> dinternal := !dinternal @ sdecl_list st
         | "SUBFUNCTION" -> dsubfunctions := !dsubfunctions @ name_list st
         | "SUBCOMPONENT" -> dsubcomponents := !dsubcomponents @ name_list st
         | _ -> err st "unknown declaration keyword %s" kw);
        decls ())
    | Lexer.LBRACE -> ()
    | t -> err st "expected a declaration or '{', found %s" (Lexer.token_name t)
  in
  decls ();
  let body =
    match stmt st with
    | Block stmts -> stmts
    | s -> [ s ]
  in
  (match peek st with
   | Lexer.EOF -> ()
   | t -> err st "trailing input after design body: %s" (Lexer.token_name t));
  if !dname = "" then err st "design has no NAME declaration";
  { dname = !dname;
    dfunctions = !dfunctions;
    dparams = !dparams;
    dvars = !dvars;
    dinputs = !dinputs;
    doutputs = !doutputs;
    dinternal = !dinternal;
    dsubfunctions = !dsubfunctions;
    dsubcomponents = !dsubcomponents;
    dbody = body }

let parse src = design_of_tokens (Lexer.tokenize src)

let parse_expr src =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let e = expr st in
  (match peek st with
   | Lexer.EOF | Lexer.SEMI -> ()
   | t -> err st "trailing input after expression: %s" (Lexer.token_name t));
  e
