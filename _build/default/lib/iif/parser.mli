(** Recursive-descent parser for IIF source text (grammar: paper
    Appendix A.2). *)

exception Parse_error of string * int
(** Message and source line of a syntax error. *)

val parse : string -> Ast.design
(** Parse a complete IIF design: declarations followed by a braced
    statement body.
    @raise Parse_error on malformed input.
    @raise Lexer.Lex_error on invalid tokens. *)

val parse_expr : string -> Ast.expr
(** Parse a single IIF expression (used by tests and tools).
    @raise Parse_error on malformed or trailing input. *)
