(* Abstract syntax of IIF, the Irvine Intermediate Form (paper Appendix A).

   IIF extends the Berkeley EQN boolean-equation format with clocking
   (`@`), asynchronous set/reset (`~a`), interface operators
   (`~b ~s ~d ~t ~w`) and C-like programming structures (`#if`, `#for`,
   `#c_line`, subfunction calls) for parameterized components. *)

(* ------------------------------------------------------------------ *)
(* C expressions: integer expressions over parameters and variables    *)
(* ------------------------------------------------------------------ *)

type cbinop =
  | Cadd | Csub | Cmul | Cdiv | Cmod | Cexp
  | Clt | Cle | Cgt | Cge | Ceq | Cneq
  | Cand | Cor

type cexpr =
  | Cint of int
  | Cvar of string
  | Cneg of cexpr
  | Cnot of cexpr
  | Cbin of cbinop * cexpr * cexpr

(* ------------------------------------------------------------------ *)
(* Signals and boolean expressions                                     *)
(* ------------------------------------------------------------------ *)

(* A reference to a (possibly indexed) signal, e.g. [Q[i+1]]. *)
type sigref = { base : string; indices : cexpr list }

type edge =
  | Rising   (* ~r : edge-triggered on rise *)
  | Falling  (* ~f : edge-triggered on fall *)
  | High     (* ~h : level-sensitive latch, transparent high *)
  | Low      (* ~l : level-sensitive latch, transparent low *)

type expr =
  | Sig of sigref
  | Lit of int                         (* 0 or 1 in a logic position *)
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr                 (* (+) *)
  | Xnor of expr * expr                (* (.) *)
  | Buf of expr                        (* ~b *)
  | Schmitt of expr                    (* ~s *)
  | Delay of expr * cexpr              (* e ~d 10 *)
  | Tristate of expr * expr            (* data ~t control *)
  | Wire_or of expr * expr             (* a ~w b *)
  | Edge of edge * expr                (* ~r clk, inside an @ clock spec *)
  | At of expr * expr                  (* data @ clockspec *)
  | Async of expr * (expr * expr) list (* e ~a (value/cond, ...) *)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type assign_op =
  | Set       (* =    *)
  | Agg_or    (* +=   *)
  | Agg_and   (* *=   *)
  | Agg_xor   (* (+)= *)
  | Agg_xnor  (* (.)= *)

type stmt =
  | Assign of sigref * assign_op * expr
  | If of cexpr * stmt * stmt option
  | For of { var : string; init : cexpr; cond : cexpr; step : int; body : stmt }
  | Cline of (string * cexpr) list     (* #c_line v = e; *)
  | Call of string * cexpr list        (* #NAME(arg, ...): macro expansion *)
  | Block of stmt list

(* ------------------------------------------------------------------ *)
(* Designs                                                             *)
(* ------------------------------------------------------------------ *)

(* Declared signal: plain ([ssize = None]) or a bus [name[size]]. *)
type sdecl = { sname : string; ssize : cexpr option }

type design = {
  dname : string;
  dfunctions : string list;    (* FUNCTIONS: names this design performs *)
  dparams : string list;       (* PARAMETER: user-supplied values *)
  dvars : string list;         (* VARIABLE: loop/work variables *)
  dinputs : sdecl list;        (* INORDER *)
  doutputs : sdecl list;       (* OUTORDER *)
  dinternal : sdecl list;      (* PIIFVARIABLE *)
  dsubfunctions : string list; (* SUBFUNCTION: other designs called *)
  dsubcomponents : string list;(* SUBCOMPONENT *)
  dbody : stmt list;
}

(* Formals of a design viewed as a macro: parameters then signals in
   declaration order, as required by the IIF expander's positional
   parameter files (Appendix A.1). *)
let formals d =
  d.dparams
  @ List.map (fun s -> s.sname) d.dinputs
  @ List.map (fun s -> s.sname) d.doutputs
  @ List.map (fun s -> s.sname) d.dinternal

let rec cexpr_vars = function
  | Cint _ -> []
  | Cvar v -> [ v ]
  | Cneg e | Cnot e -> cexpr_vars e
  | Cbin (_, a, b) -> cexpr_vars a @ cexpr_vars b

(* Pretty-printers used in error messages and tests. *)

let cbinop_name = function
  | Cadd -> "+" | Csub -> "-" | Cmul -> "*" | Cdiv -> "/" | Cmod -> "%"
  | Cexp -> "**" | Clt -> "<" | Cle -> "<=" | Cgt -> ">" | Cge -> ">="
  | Ceq -> "==" | Cneq -> "!=" | Cand -> "&&" | Cor -> "||"

let rec cexpr_to_string = function
  | Cint i -> string_of_int i
  | Cvar v -> v
  | Cneg e -> "-" ^ cexpr_to_string e
  | Cnot e -> "!" ^ cexpr_to_string e
  | Cbin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (cexpr_to_string a) (cbinop_name op)
        (cexpr_to_string b)

let sigref_to_string { base; indices } =
  base
  ^ String.concat ""
      (List.map (fun i -> "[" ^ cexpr_to_string i ^ "]") indices)

let edge_to_string = function
  | Rising -> "~r" | Falling -> "~f" | High -> "~h" | Low -> "~l"

let rec expr_to_string = function
  | Sig s -> sigref_to_string s
  | Lit i -> string_of_int i
  | Not e -> "!" ^ atom e
  | And (a, b) -> atom a ^ "*" ^ atom b
  | Or (a, b) -> atom a ^ " + " ^ atom b
  | Xor (a, b) -> atom a ^ "(+)" ^ atom b
  | Xnor (a, b) -> atom a ^ "(.)" ^ atom b
  | Buf e -> "~b " ^ atom e
  | Schmitt e -> "~s " ^ atom e
  | Delay (e, d) -> atom e ^ " ~d " ^ cexpr_to_string d
  | Tristate (d, c) -> atom d ^ " ~t " ^ atom c
  | Wire_or (a, b) -> atom a ^ " ~w " ^ atom b
  | Edge (ed, e) -> edge_to_string ed ^ " " ^ atom e
  | At (d, c) -> atom d ^ " @(" ^ expr_to_string c ^ ")"
  | Async (e, specs) ->
      let spec (v, c) = expr_to_string v ^ "/" ^ atom c in
      atom e ^ " ~a (" ^ String.concat "," (List.map spec specs) ^ ")"

and atom e =
  match e with
  | Sig _ | Lit _ | Not _ -> expr_to_string e
  | _ -> "(" ^ expr_to_string e ^ ")"
