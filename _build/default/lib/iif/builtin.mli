(** The generic component library's parameterized IIF descriptions
    (§2.2): the component implementations ICDB ships with, as IIF
    source text, parsed on demand.

    Individual sources ([counter], [adder], ...) are exposed so tests
    and documentation can quote them; prefer {!find}/{!expand_exn}. *)

val counter : string
(** §3.1's 74191-style counter: parameters [size], [type] (1 = ripple,
    2 = synchronous), [load], [enable], [up_or_down] (1 up, 2 down,
    3 both). *)

val ripple_counter : string
val adder : string
val addsub : string
val register : string
val shl0 : string
val andn : string
val mux2 : string
val decoder : string
val comparator : string
val alu : string
val tribuf : string
val encoder : string
val barrel_shifter : string
val shift_register : string
val multiplier : string
val divider : string
val register_file : string
val logic_unit : string
val muxg : string
val concat : string
val extract : string
val clock_driver : string
val schmitt_trigger : string
val wor_bus2 : string
val stack : string

val sources : (string * string) list
(** Every builtin design: (name, IIF source). *)

val all : unit -> (string * Ast.design) list
(** Parsed designs (parsed once, lazily). *)

val find : string -> Ast.design option

val registry : string -> Ast.design option
(** Lookup function suitable for {!Expander.expand}'s [~registry]. *)

val expand_exn : string -> (string * int) list -> Flat.t
(** Expand a builtin by name with parameter values and validate the
    result.
    @raise Expander.Expand_error on unknown designs, bad parameters,
    or structural problems in the flattened design. *)
