(** The IIF expander: parameterized IIF to flat IIF.

    Evaluates C expressions, unrolls [#for] loops, resolves [#if]
    choices and inlines subfunction calls by call-by-name macro
    substitution, producing a {!Flat.t} for logic synthesis
    (Appendix A). *)

exception Expand_error of string

val eval_cexpr : (string, int) Hashtbl.t -> Ast.cexpr -> int
(** Evaluate a C expression under a variable binding.
    @raise Expand_error on unbound variables or division by zero. *)

val expand :
  ?registry:(string -> Ast.design option) ->
  Ast.design ->
  (string * int) list ->
  Flat.t
(** [expand ~registry design params] flattens [design] with the given
    parameter values. [registry] resolves SUBFUNCTION names to their
    designs (default: none available). Unsupplied I/O formals of a
    callee connect by name in the caller's scope; unsupplied internals
    receive fresh names.
    @raise Expand_error on missing/unknown parameters, recursive
    subfunctions, double-driven nets, or malformed sequential
    expressions. *)
