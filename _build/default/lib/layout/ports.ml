(* Port position assignment (§3.3).

   A request assigns each port a side and a relative position:

     CLK left s1.0
     D[0] top 10
     MINMAX right s2.0

   Ports on a side are sorted by their position number and spread
   uniformly along that side of the bounding box. *)

type side = Left | Right | Top | Bottom

type spec = {
  port : string;
  side : side;
  position : float;  (* relative order key *)
}

type placed_port = {
  pp_name : string;
  pp_side : side;
  pp_x : float;
  pp_y : float;
}

exception Port_error of string

let side_of_string = function
  | "left" -> Left
  | "right" -> Right
  | "top" -> Top
  | "bottom" -> Bottom
  | s -> raise (Port_error ("unknown side " ^ s))

let side_to_string = function
  | Left -> "left" | Right -> "right" | Top -> "top" | Bottom -> "bottom"

(* Parse one line: <port> <side> <position>, where position may carry
   the paper's "s" prefix (slot notation). *)
let parse_line line =
  match String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "") with
  | [ port; side; pos ] ->
      let pos =
        let pos =
          if String.length pos > 1 && (pos.[0] = 's' || pos.[0] = 'S') then
            String.sub pos 1 (String.length pos - 1)
          else pos
        in
        match float_of_string_opt pos with
        | Some f -> f
        | None -> raise (Port_error ("bad position " ^ pos))
      in
      Some { port; side = side_of_string side; position = pos }
  | [] -> None
  | _ -> raise (Port_error ("malformed port line: " ^ line))

let parse text =
  String.split_on_char '\n' text |> List.filter_map parse_line

(* Spread each side's ports along the box perimeter in position order. *)
let assign specs ~width ~height =
  let on side = List.filter (fun s -> s.side = side) specs in
  let sorted side =
    List.stable_sort (fun a b -> compare a.position b.position) (on side)
  in
  let spread side along place =
    let ports = sorted side in
    let n = List.length ports in
    List.mapi
      (fun i s ->
        let frac = (float_of_int i +. 1.0) /. (float_of_int n +. 1.0) in
        place s (frac *. along))
      ports
  in
  spread Left height (fun s y ->
      { pp_name = s.port; pp_side = Left; pp_x = 0.0; pp_y = y })
  @ spread Right height (fun s y ->
      { pp_name = s.port; pp_side = Right; pp_x = width; pp_y = y })
  @ spread Bottom width (fun s x ->
      { pp_name = s.port; pp_side = Bottom; pp_x = x; pp_y = 0.0 })
  @ spread Top width (fun s x ->
      { pp_name = s.port; pp_side = Top; pp_x = x; pp_y = height })

(* Default assignment when the user gives none: inputs on the left,
   outputs on the right, clock-like ports at the bottom. *)
let default ~inputs ~outputs =
  let looks_like_clock n =
    let u = String.uppercase_ascii n in
    u = "CLK" || u = "CLOCK" || u = "CK"
  in
  List.mapi
    (fun i n ->
      if looks_like_clock n then
        { port = n; side = Bottom; position = 1.0 }
      else { port = n; side = Left; position = float_of_int i })
    inputs
  @ List.mapi
      (fun i n -> { port = n; side = Right; position = float_of_int i })
      outputs
