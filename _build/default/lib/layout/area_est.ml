(* The paper's area estimator (§4.4.2).

   Width: X is the widest strip over random balanced assignments (equal
   cell counts per strip); Y is the width of the best placement found
   ({!Strip.place}); the estimate is (X + Y) / 2.

   Height: strips times the cell height plus routing channels; the
   number of tracks in a channel is its total horizontal wire length
   divided by the channel width times a track-utilization constant
   obtained experimentally from the layout tool. *)

open Icdb_netlist

type estimate = {
  strips : int;
  width : float;   (* µm *)
  height : float;  (* µm *)
  area : float;    (* µm² *)
  tracks : int;    (* total routing tracks across all channels *)
}

let track_pitch = 6.0      (* µm per horizontal routing track *)
let rail_height = 6.0      (* µm of Vdd/Vss rail shared by two strips *)

(* Track utilization: how much of a channel's length each track is
   actually occupied; experiments on the strip router give better
   utilization for fuller strips. *)
let track_utilization ~cells_in_strip =
  if cells_in_strip <= 2 then 0.4
  else if cells_in_strip <= 8 then 0.55
  else if cells_in_strip <= 24 then 0.7
  else 0.85

(* X of §4.4.2: max strip width when cells are assigned randomly with
   equal cell counts per strip. Averaged over a few seeds to be stable
   but still pessimistic relative to the optimized placement. *)
let random_balanced_width (nl : Netlist.t) ~strips ~seed =
  let widths =
    Array.of_list (List.map Strip.instance_width nl.Netlist.instances)
  in
  if Array.length widths = 0 then 0.0
  else begin
    let rng = Rng.create seed in
    let trials = 5 in
    let acc = ref 0.0 in
    for _ = 1 to trials do
      let order = Array.init (Array.length widths) Fun.id in
      Rng.shuffle rng order;
      let strip_w = Array.make strips 0.0 in
      Array.iteri
        (fun pos idx ->
          let s = pos mod strips in
          strip_w.(s) <- strip_w.(s) +. widths.(idx) +. Strip.cell_gap)
        order;
      acc := !acc +. Array.fold_left Float.max 0.0 strip_w
    done;
    !acc /. float_of_int trials
  end

let estimate ?(seed = 1) (nl : Netlist.t) ~strips =
  let placement = Strip.place nl ~strips in
  let y_width = Strip.width placement in
  let x_width = random_balanced_width nl ~strips ~seed in
  let width = (x_width +. y_width) /. 2.0 in
  let spans = Strip.channel_spans placement in
  let cells_per_strip =
    max 1 (List.length nl.Netlist.instances / max 1 strips)
  in
  let util = track_utilization ~cells_in_strip:cells_per_strip in
  (* total horizontal wire length over all channels divided by the
     usable channel length gives the total track count (§4.4.2) *)
  let total_span = Array.fold_left ( +. ) 0.0 spans in
  let tracks =
    int_of_float (Float.ceil (total_span /. (Float.max width 1.0 *. util)))
  in
  let channel_height = float_of_int tracks *. track_pitch in
  let height =
    (float_of_int strips *. Icdb_logic.Celllib.cell_height)
    +. channel_height
    +. (float_of_int (strips + 1) *. rail_height)
  in
  { strips; width; height; area = width *. height; tracks }

(* The interactive listing of Appendix B §5.3:
     strip = 1 width = 12 height = 7 area = 84 ... *)
let estimate_to_string e =
  Printf.sprintf "strip = %d width = %.0f height = %.0f area = %.0f"
    e.strips e.width e.height e.area
