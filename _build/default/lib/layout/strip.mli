(** Strip-based standard-cell placement (the LES substitute, §4.3.2).

    A layout is a stack of horizontal strips, each a row of cells
    between shared Vdd/Vss rails, with routing channels in between.
    Cells are ordered by a connectivity-driven linear arrangement and
    snaked across strips of roughly equal width. *)

open Icdb_netlist

type placed_cell = {
  pc_inst : Netlist.instance;
  pc_width : float;
  pc_strip : int;   (** 0 = bottom *)
  pc_x : float;     (** left edge within the strip *)
}

type t = {
  netlist : Netlist.t;
  strips : int;
  cells : placed_cell list;
  strip_widths : float array;
}

val cell_gap : float
(** µm between adjacent cells in a strip. *)

val instance_width : Netlist.instance -> float
(** Sized width of an instance's cell (0 for unknown cells). *)

val connectivity_order : Netlist.t -> Netlist.instance list
(** Greedy linear arrangement: seed with the most connected instance,
    repeatedly append the unplaced instance most attracted to the
    placed set. Deterministic. *)

val place : Netlist.t -> strips:int -> t
(** @raise Invalid_argument when [strips < 1]. *)

val width : t -> float
(** Widest strip. *)

val cells_of_strip : t -> int -> placed_cell list

val channel_spans : t -> float array
(** Per routing channel (k between strips k and k+1), the summed
    horizontal span of the nets crossing or living in it — the §4.4.2
    wire-length figure the track estimator divides by utilization. *)
