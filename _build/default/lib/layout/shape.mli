(** Shape functions (§3.3, Figure 6): the (width, height) alternatives
    a component can be laid out in, obtained by varying the strip
    count. Floorplanners consume these to pick aspect ratios. *)

type alternative = {
  alt_index : int;    (** 1-based, as in the §3.3 listing *)
  alt_strips : int;
  alt_width : float;  (** µm *)
  alt_height : float; (** µm *)
  alt_area : float;   (** µm² *)
}

type t = alternative list

val max_strips_for : Icdb_netlist.Netlist.t -> int

val of_netlist : ?seed:int -> Icdb_netlist.Netlist.t -> t
(** Estimate every strip count from 1 upward and normalize into a
    proper staircase: widths strictly decrease, heights never decrease
    (conservative where raw channel estimates would dip). *)

val pareto : t -> t
(** Drop alternatives dominated in both dimensions. *)

val best_area : t -> alternative
(** @raise Invalid_argument on an empty shape function. *)

val fitting_width : t -> max_width:float -> alternative option
(** Smallest-area alternative no wider than the bound. *)

val to_string : t -> string
(** The §3.3 listing: [Alternative=k width=... height=...] lines. *)
