(** The paper's area estimator (§4.4.2).

    Width: X is the widest strip over random balanced assignments, Y
    the width of the optimized placement; the estimate is (X + Y) / 2.
    Height: strip rows plus Vdd/Vss rails plus routing channels, with
    the track count derived from total horizontal wire length over a
    track-utilization constant. Deterministic for a given [seed]. *)

type estimate = {
  strips : int;
  width : float;   (** µm *)
  height : float;  (** µm *)
  area : float;    (** µm² *)
  tracks : int;    (** routing tracks across all channels *)
}

val track_pitch : float
val rail_height : float

val track_utilization : cells_in_strip:int -> float
(** Experimentally-derived utilization constant (§4.4.2). *)

val random_balanced_width :
  Icdb_netlist.Netlist.t -> strips:int -> seed:int -> float
(** The X figure: max strip width under random balanced assignment,
    averaged over a few shuffles. *)

val estimate :
  ?seed:int -> Icdb_netlist.Netlist.t -> strips:int -> estimate

val estimate_to_string : estimate -> string
(** The App B §5.3 row: [strip = k width = ... height = ... area = ...]. *)
