(* Strip-based standard-cell placement (the LES substitute, §4.3.2).

   A layout is a number of horizontal strips; each strip holds a row of
   cells between a shared Vdd/Vss rail pair; routing channels run
   between strips. Placements order cells to keep connected cells in
   the same or adjacent strips (snake order after a connectivity-driven
   linear arrangement). *)

open Icdb_netlist
open Icdb_logic

type placed_cell = {
  pc_inst : Netlist.instance;
  pc_width : float;
  pc_strip : int;     (* 0 = bottom *)
  pc_x : float;       (* left edge within the strip *)
}

type t = {
  netlist : Netlist.t;
  strips : int;
  cells : placed_cell list;
  strip_widths : float array;
}

let cell_gap = 4.0  (* µm between adjacent cells in a strip *)

let instance_width (i : Netlist.instance) =
  match Celllib.find i.cell with
  | Some c -> Celllib.sized_width c i.size
  | None -> 0.0

(* ------------------------------------------------------------------ *)
(* Linear arrangement                                                  *)
(* ------------------------------------------------------------------ *)

(* Order instances so that connected instances sit close together:
   start from the instance with the largest connectivity, repeatedly
   append the unplaced instance most connected to the placed set. *)
let connectivity_order (nl : Netlist.t) =
  let insts = Array.of_list nl.Netlist.instances in
  let n = Array.length insts in
  if n = 0 then []
  else begin
    (* net -> instance indices *)
    let on_net = Hashtbl.create 64 in
    Array.iteri
      (fun idx (i : Netlist.instance) ->
        List.iter
          (fun (_, net) ->
            let prev =
              match Hashtbl.find_opt on_net net with Some l -> l | None -> []
            in
            Hashtbl.replace on_net net (idx :: prev))
          i.conns)
      insts;
    let degree = Array.make n 0 in
    Hashtbl.iter
      (fun _ idxs ->
        let k = List.length idxs in
        List.iter (fun i -> degree.(i) <- degree.(i) + k - 1) idxs)
      on_net;
    let placed = Array.make n false in
    let attraction = Array.make n 0 in
    let order = ref [] in
    let place idx =
      placed.(idx) <- true;
      order := idx :: !order;
      List.iter
        (fun (_, net) ->
          match Hashtbl.find_opt on_net net with
          | Some idxs ->
              List.iter
                (fun j -> if not placed.(j) then attraction.(j) <- attraction.(j) + 1)
                idxs
          | None -> ())
        insts.(idx).conns
    in
    (* seed: the most connected instance (ties by index for determinism) *)
    let seed = ref 0 in
    for i = 1 to n - 1 do
      if degree.(i) > degree.(!seed) then seed := i
    done;
    place !seed;
    for _ = 2 to n do
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if not placed.(i) then
          match !best with
          | -1 -> best := i
          | b ->
              if attraction.(i) > attraction.(b)
                 || (attraction.(i) = attraction.(b) && degree.(i) > degree.(b))
              then best := i
      done;
      place !best
    done;
    List.rev_map (fun idx -> insts.(idx)) !order
  end

(* ------------------------------------------------------------------ *)
(* Strip assignment                                                    *)
(* ------------------------------------------------------------------ *)

(* Snake the linear order across [strips] rows, balancing total width:
   cut the sequence into contiguous chunks of roughly equal width. *)
let place (nl : Netlist.t) ~strips =
  if strips < 1 then invalid_arg "Strip.place: strips must be >= 1";
  let order = connectivity_order nl in
  let widths = List.map instance_width order in
  let total = List.fold_left ( +. ) 0.0 widths in
  let target = total /. float_of_int strips in
  let cells = ref [] in
  let strip = ref 0 in
  let x = ref 0.0 in
  let strip_widths = Array.make strips 0.0 in
  List.iter2
    (fun inst w ->
      (* move to the next strip when the current one reaches its share
         (never beyond the last strip) *)
      if !x > 0.0 && !x +. (w /. 2.0) > target && !strip < strips - 1 then begin
        strip_widths.(!strip) <- !x -. cell_gap;
        incr strip;
        x := 0.0
      end;
      cells := { pc_inst = inst; pc_width = w; pc_strip = !strip; pc_x = !x } :: !cells;
      x := !x +. w +. cell_gap)
    order widths;
  if !x > 0.0 then strip_widths.(!strip) <- !x -. cell_gap;
  (* snake: reverse cell order in odd strips so the sequence meanders *)
  let cells =
    List.map
      (fun c ->
        if c.pc_strip mod 2 = 1 then
          { c with pc_x = strip_widths.(c.pc_strip) -. c.pc_x -. c.pc_width }
        else c)
      !cells
  in
  { netlist = nl; strips; cells = List.rev cells; strip_widths }

let width t = Array.fold_left Float.max 0.0 t.strip_widths

(* Centre coordinates used by the track estimator and the CIF writer.
   Strips stack bottom-up; channel heights are added by the caller. *)
let cell_center _t c =
  let x = c.pc_x +. (c.pc_width /. 2.0) in
  (x, c.pc_strip)

let cells_of_strip t k = List.filter (fun c -> c.pc_strip = k) t.cells

(* Horizontal span of each net, per channel: a net connecting cells in
   strips [a..b] occupies the channels between them over the x-range of
   its pins. Returns for each channel (0 .. strips-2, channel k between
   strip k and k+1) the summed span length. *)
let channel_spans t =
  let channels = Array.make (max 1 (t.strips - 1)) 0.0 in
  let pins = Hashtbl.create 64 in  (* net -> (x, strip) list *)
  List.iter
    (fun c ->
      let x, s = cell_center t c in
      List.iter
        (fun (_, net) ->
          let prev =
            match Hashtbl.find_opt pins net with Some l -> l | None -> []
          in
          Hashtbl.replace pins net ((x, s) :: prev))
        c.pc_inst.Netlist.conns)
    t.cells;
  Hashtbl.iter
    (fun _net pin_list ->
      match pin_list with
      | [] | [ _ ] -> ()
      | pins ->
          let xs = List.map fst pins in
          let ss = List.map snd pins in
          let x0 = List.fold_left Float.min infinity xs in
          let x1 = List.fold_left Float.max neg_infinity xs in
          let s0 = List.fold_left min max_int ss in
          let s1 = List.fold_left max min_int ss in
          let span = Float.max (x1 -. x0) 8.0 in
          if s0 = s1 then begin
            (* same-strip net still needs track room in an adjacent
               channel *)
            let ch = min s0 (Array.length channels - 1) in
            if Array.length channels > 0 then
              channels.(max 0 ch) <- channels.(max 0 ch) +. (span /. 2.0)
          end
          else
            for ch = s0 to s1 - 1 do
              channels.(ch) <- channels.(ch) +. span
            done)
    pins;
  channels
