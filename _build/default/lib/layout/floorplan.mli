(** Slicing floorplanner over shape functions (Figure 13).

    Blocks carry their shape functions; compositions stack them beside
    or above each other, pruning candidate (width, height) sets to
    Pareto-optimal points; a subset-DP search finds the best slicing
    tree for small block counts. *)

type block = {
  bname : string;
  bshapes : Shape.t;
}

type placement = {
  pname : string;
  px : float;
  py : float;
  pwidth : float;
  pheight : float;
  pstrips : int;  (** shape alternative used (strip count) *)
}

type candidate = {
  cwidth : float;
  cheight : float;
  build : float -> float -> placement list;
      (** placements given the candidate's origin *)
}

type result = {
  rwidth : float;
  rheight : float;
  rarea : float;
  rplacements : placement list;
}

val of_block : block -> candidate list
val pareto : candidate list -> candidate list

val beside : candidate list -> candidate list -> candidate list
(** Horizontal composition: widths add, heights max. Pruned. *)

val above : candidate list -> candidate list -> candidate list
(** Vertical composition: heights add, widths max. Pruned. *)

val best : ?aspect:float option -> candidate list -> result
(** Minimum area, optionally penalizing deviation from a target
    width/height ratio. @raise Invalid_argument on empty input. *)

val max_auto_blocks : int

val auto : block list -> candidate list
(** Optimal slicing over all partitions (subset DP).
    @raise Invalid_argument beyond {!max_auto_blocks} blocks. *)

val best_of_blocks : ?aspect:float option -> block list -> result
