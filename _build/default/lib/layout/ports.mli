(** Port position assignment (§3.3).

    Requests assign each port a side and a relative position:
    {v
CLK left s1.0
D[0] top 10
MINMAX right s2.0
    v}
    Ports on a side are sorted by their position number and spread
    uniformly along that side of the bounding box. *)

type side = Left | Right | Top | Bottom

type spec = {
  port : string;
  side : side;
  position : float;  (** relative order key *)
}

type placed_port = {
  pp_name : string;
  pp_side : side;
  pp_x : float;
  pp_y : float;
}

exception Port_error of string

val side_of_string : string -> side
(** @raise Port_error on unknown sides. *)

val side_to_string : side -> string

val parse : string -> spec list
(** Parse the paper's line format; the "s" slot prefix is accepted.
    Blank lines are skipped.
    @raise Port_error on malformed lines. *)

val assign : spec list -> width:float -> height:float -> placed_port list
(** Concrete pad coordinates on a box of the given dimensions. *)

val default : inputs:string list -> outputs:string list -> spec list
(** When the user gives no positions: inputs left, outputs right,
    clock-like ports at the bottom. *)
