(* Slicing floorplanner over shape functions.

   Combines component shape functions (Figure 6) into chip-level
   floorplans (Figure 13): a slicing tree whose leaves pick one shape
   alternative per block and whose internal nodes stack horizontally or
   vertically. Candidate lists are pruned to Pareto-optimal (width,
   height) points as they combine, and a subset-DP search finds the
   best slicing tree for small block counts. *)

type block = {
  bname : string;
  bshapes : Shape.t;
}

type placement = {
  pname : string;
  px : float;
  py : float;
  pwidth : float;
  pheight : float;
  pstrips : int;  (* shape alternative used (strip count), 0 for composites *)
}

(* A candidate: bounding box plus a builder producing placements given
   the candidate's origin. *)
type candidate = {
  cwidth : float;
  cheight : float;
  build : float -> float -> placement list;
}

type result = {
  rwidth : float;
  rheight : float;
  rarea : float;
  rplacements : placement list;
}

let of_block b : candidate list =
  List.map
    (fun (a : Shape.alternative) ->
      { cwidth = a.Shape.alt_width;
        cheight = a.Shape.alt_height;
        build =
          (fun x y ->
            [ { pname = b.bname;
                px = x;
                py = y;
                pwidth = a.Shape.alt_width;
                pheight = a.Shape.alt_height;
                pstrips = a.Shape.alt_strips } ]) })
    b.bshapes

let pareto (cands : candidate list) =
  let sorted =
    List.sort
      (fun a b ->
        match compare a.cwidth b.cwidth with
        | 0 -> compare a.cheight b.cheight
        | c -> c)
      cands
  in
  let rec keep best_h = function
    | [] -> []
    | c :: rest ->
        if c.cheight < best_h -. 1e-9 then c :: keep c.cheight rest
        else keep best_h rest
  in
  keep infinity sorted

let cap = 24

let prune cands =
  let p = pareto cands in
  if List.length p <= cap then p
  else begin
    (* thin by keeping evenly spaced entries *)
    let arr = Array.of_list p in
    let n = Array.length arr in
    List.init cap (fun i -> arr.(i * n / cap))
  end

(* Horizontal composition: blocks side by side (widths add). *)
let beside (a : candidate list) (b : candidate list) =
  prune
    (List.concat_map
       (fun ca ->
         List.map
           (fun cb ->
             { cwidth = ca.cwidth +. cb.cwidth;
               cheight = Float.max ca.cheight cb.cheight;
               build =
                 (fun x y -> ca.build x y @ cb.build (x +. ca.cwidth) y) })
           b)
       a)

(* Vertical composition: blocks stacked (heights add). *)
let above (a : candidate list) (b : candidate list) =
  prune
    (List.concat_map
       (fun ca ->
         List.map
           (fun cb ->
             { cwidth = Float.max ca.cwidth cb.cwidth;
               cheight = ca.cheight +. cb.cheight;
               build =
                 (fun x y -> ca.build x y @ cb.build x (y +. ca.cheight)) })
           b)
       a)

let best ?(aspect = None) (cands : candidate list) =
  match cands with
  | [] -> invalid_arg "Floorplan.best: no candidates"
  | cands ->
      let score c =
        let area = c.cwidth *. c.cheight in
        match aspect with
        | None -> area
        | Some target ->
            (* penalize deviation from the requested aspect ratio *)
            let r = c.cwidth /. c.cheight in
            area *. (1.0 +. (Float.abs (r -. target) /. target))
      in
      let best =
        List.fold_left
          (fun acc c -> if score c < score acc then c else acc)
          (List.hd cands) cands
      in
      { rwidth = best.cwidth;
        rheight = best.cheight;
        rarea = best.cwidth *. best.cheight;
        rplacements = best.build 0.0 0.0 }

(* ------------------------------------------------------------------ *)
(* Subset-DP optimal slicing                                           *)
(* ------------------------------------------------------------------ *)

let max_auto_blocks = 8

(* Best candidate set for every subset of blocks: a singleton subset is
   the block's shapes; a larger subset is the Pareto merge over all
   2-partitions combined both ways. *)
let auto (blocks : block list) =
  let n = List.length blocks in
  if n = 0 then invalid_arg "Floorplan.auto: no blocks";
  if n > max_auto_blocks then
    invalid_arg "Floorplan.auto: too many blocks for exhaustive slicing";
  let arr = Array.of_list blocks in
  let memo = Array.make (1 lsl n) [] in
  for i = 0 to n - 1 do
    memo.(1 lsl i) <- prune (of_block arr.(i))
  done;
  for set = 1 to (1 lsl n) - 1 do
    if memo.(set) = [] && set land (set - 1) <> 0 then begin
      let acc = ref [] in
      (* enumerate proper sub-partitions; fix the lowest bit in [sub]
         to halve the enumeration *)
      let low = set land -set in
      let rest = set lxor low in
      let sub = ref rest in
      while !sub > 0 do
        let a = low lor (rest lxor !sub) in
        let b = !sub in
        if a land b = 0 && a lor b = set && memo.(a) <> [] && memo.(b) <> []
        then
          acc := beside memo.(a) memo.(b) @ above memo.(a) memo.(b) @ !acc;
        sub := (!sub - 1) land rest
      done;
      (* also the partition where sub = 0 means b empty: skip *)
      memo.(set) <- prune !acc
    end
  done;
  memo.((1 lsl n) - 1)

let best_of_blocks ?aspect blocks = best ?aspect (auto blocks)
