(** Small deterministic PRNG (splitmix64) so layout estimates are
    reproducible run-to-run. *)

type t

val create : int -> t
val next : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound). @raise Invalid_argument on bound <= 0. *)

val shuffle : t -> 'a array -> unit
