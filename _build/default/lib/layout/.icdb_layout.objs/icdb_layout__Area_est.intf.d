lib/layout/area_est.mli: Icdb_netlist
