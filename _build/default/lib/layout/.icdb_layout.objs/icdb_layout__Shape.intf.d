lib/layout/shape.mli: Icdb_netlist
