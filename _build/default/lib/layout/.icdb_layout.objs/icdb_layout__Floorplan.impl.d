lib/layout/floorplan.ml: Array Float List Shape
