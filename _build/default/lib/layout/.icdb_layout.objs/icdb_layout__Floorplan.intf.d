lib/layout/floorplan.mli: Shape
