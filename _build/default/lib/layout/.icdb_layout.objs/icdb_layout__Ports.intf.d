lib/layout/ports.mli:
