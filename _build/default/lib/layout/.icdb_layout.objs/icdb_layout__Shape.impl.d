lib/layout/shape.ml: Area_est Float Icdb_netlist List Netlist Printf String
