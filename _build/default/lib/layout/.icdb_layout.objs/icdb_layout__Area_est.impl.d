lib/layout/area_est.ml: Array Float Fun Icdb_logic Icdb_netlist List Netlist Printf Rng Strip
