lib/layout/cif.ml: Area_est Array Buffer Float Icdb_logic Icdb_netlist List Netlist Ports Printf Strip
