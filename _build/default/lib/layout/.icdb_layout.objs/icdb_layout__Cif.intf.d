lib/layout/cif.mli: Icdb_netlist Ports Strip
