lib/layout/strip.mli: Icdb_netlist Netlist
