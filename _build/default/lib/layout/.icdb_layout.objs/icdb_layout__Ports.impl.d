lib/layout/ports.ml: List String
