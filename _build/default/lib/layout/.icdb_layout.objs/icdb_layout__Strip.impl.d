lib/layout/strip.ml: Array Celllib Float Hashtbl Icdb_logic Icdb_netlist List Netlist
