lib/layout/rng.ml: Array Int64
