lib/layout/rng.mli:
