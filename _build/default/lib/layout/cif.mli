(** CIF (Caltech Intermediate Form) output for generated layouts.

    The layout is symbolic: each placed cell is a labelled box on the
    cell-outline layer, strips sit between power rails, and assigned
    ports appear as labelled pads on the bounding box. Dimensions are
    µm; CIF distances are centimicrons. *)

type layout = {
  lname : string;
  lwidth : float;
  lheight : float;
  lstrips : int;
  boxes : (string * float * float * float * float) list;
      (** label, x, y, w, h — cell outlines *)
  rails : (float * float) list;  (** y, height of each Vdd/Vss rail *)
  port_pads : Ports.placed_port list;
}

val of_placement :
  ?seed:int -> Strip.t -> ports:Ports.placed_port list -> layout
(** Stack a placement into coordinates: rails, strips and channels
    bottom-up, channel heights from the track estimate. *)

val to_cif : layout -> string

val generate :
  ?seed:int ->
  Icdb_netlist.Netlist.t ->
  strips:int ->
  port_specs:Ports.spec list ->
  layout * string
(** Place, assign ports and emit CIF in one call. *)
