lib/cql/command.ml: List Option Printf String
