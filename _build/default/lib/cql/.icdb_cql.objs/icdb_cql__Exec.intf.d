lib/cql/exec.mli: Icdb
