lib/cql/exec.ml: Command Icdb Icdb_genus Icdb_layout Icdb_timing Instance List Printf Server Spec String
