lib/cql/command.mli:
