(* CQL command strings (§3.2, Appendix B §4).

   A command is a list of [keyword : value] terms separated by
   semicolons. Values are names, numbers, parenthesised lists
   ("(INC)", "(size:5)", "(O[7]:20,Cout:20)") or variable slots:
   "%x" marks an input supplied by the caller, "?x" an output ICDB
   fills in; x is s/d/r (string/int/float), with "[]" for arrays and
   "f" for file names. *)

type slot =
  | Sstr
  | Sint
  | Sfloat
  | Sfile
  | Sstr_arr
  | Sint_arr
  | Sfloat_arr

type rhs =
  | Name of string                       (* counter, fastest, Q[4] *)
  | Number of float                      (* 30, 29.5 *)
  | Tuple of (string * string option) list  (* (INC) or (size:5, ...) *)
  | In_slot of slot                      (* %s *)
  | Out_slot of slot                     (* ?s[] *)

type term = { key : string; rhs : rhs }

type t = term list

exception Cql_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Cql_error s)) fmt

let slot_of_string s =
  match s with
  | "s" -> Sstr
  | "d" -> Sint
  | "r" -> Sfloat
  | "f" -> Sfile
  | "s[]" -> Sstr_arr
  | "d[]" -> Sint_arr
  | "r[]" -> Sfloat_arr
  | s -> fail "unknown variable type %s" s

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '[' || c = ']' || c = '.' || c = '-' || c = '+'

(* Read one balanced value string up to ; (or end), trimming spaces. *)
let parse src =
  let n = String.length src in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\t' || src.[!pos] = '\n'
                       || src.[!pos] = '\r')
    do incr pos done
  in
  let read_name () =
    skip_ws ();
    let start = !pos in
    while !pos < n && is_name_char src.[!pos] do incr pos done;
    if !pos = start then fail "expected a name at position %d" start;
    String.sub src start (!pos - start)
  in
  let read_slot_type () =
    (* after % or ? : letter plus optional [] *)
    let start = !pos in
    if !pos < n
       && (src.[!pos] = 's' || src.[!pos] = 'd' || src.[!pos] = 'r'
           || src.[!pos] = 'f')
    then begin
      incr pos;
      if !pos + 1 < n && src.[!pos] = '[' && src.[!pos + 1] = ']' then
        pos := !pos + 2
    end;
    String.sub src start (!pos - start)
  in
  let read_tuple () =
    (* after '(': entries name [: value] separated by , until ')' *)
    let entries = ref [] in
    let rec entry () =
      skip_ws ();
      let name = read_name () in
      skip_ws ();
      if !pos < n && src.[!pos] = ':' then begin
        incr pos;
        skip_ws ();
        let v = read_name () in
        entries := (name, Some v) :: !entries
      end
      else entries := (name, None) :: !entries;
      skip_ws ();
      if !pos < n && src.[!pos] = ',' then begin
        incr pos;
        entry ()
      end
      else if !pos < n && src.[!pos] = ')' then incr pos
      else fail "expected , or ) in list at position %d" !pos
    in
    skip_ws ();
    if !pos < n && src.[!pos] = ')' then incr pos else entry ();
    List.rev !entries
  in
  let read_rhs () =
    skip_ws ();
    if !pos >= n then fail "missing value at end of command"
    else
      match src.[!pos] with
      | '(' ->
          incr pos;
          Tuple (read_tuple ())
      | '%' ->
          incr pos;
          In_slot (slot_of_string (read_slot_type ()))
      | '?' ->
          incr pos;
          Out_slot (slot_of_string (read_slot_type ()))
      | c when c = '-' || (c >= '0' && c <= '9') -> (
          let start = !pos in
          incr pos;
          while !pos < n
                && ((src.[!pos] >= '0' && src.[!pos] <= '9') || src.[!pos] = '.')
          do incr pos done;
          let text = String.sub src start (!pos - start) in
          match float_of_string_opt text with
          | Some f -> Number f
          | None -> Name text)
      | _ -> Name (read_name ())
  in
  let terms = ref [] in
  let rec term () =
    skip_ws ();
    if !pos < n then begin
      let key = read_name () in
      skip_ws ();
      if !pos >= n || src.[!pos] <> ':' then
        fail "expected : after keyword %s" key;
      incr pos;
      let rhs = read_rhs () in
      terms := { key; rhs } :: !terms;
      skip_ws ();
      if !pos < n then
        if src.[!pos] = ';' then begin
          incr pos;
          term ()
        end
        else fail "expected ; after term %s at position %d" key !pos
    end
  in
  term ();
  List.rev !terms

(* ------------------------------------------------------------------ *)
(* Access helpers                                                      *)
(* ------------------------------------------------------------------ *)

let find t key = List.find_opt (fun term -> term.key = key) t

let find_any t keys =
  List.find_map (fun k -> Option.map (fun term -> (k, term)) (find t k)) keys

let command_name t =
  match find t "command" with
  | Some { rhs = Name n; _ } -> n
  | Some _ -> fail "command keyword needs a name value"
  | None -> fail "missing command keyword"
