(** CQL command execution against an ICDB server.

    The paper's C binding [ICDB("...", &vars)] becomes a typed call:
    {!run} fills the %-slots from [args] in order and returns an
    association from each ?-slot's keyword to its result, mirroring
    scanf/printf as §3.2 describes.

    Supported commands: [function_query], [component_query],
    [request_component] (including the layout-request form with
    [instance]/[alternative]/[port_position]/[CIF_layout]),
    [instance_query] (delay, shape_function, area, function, connect,
    VHDL_net_list, VHDL_head, clock_width, gates, area_value,
    constraints_met, power, equivalent_ports, inverted_ports),
    [connect_component], and the component-list commands
    [start_a_design] / [start_a_transaction] / [put_in_component_list]
    / [end_a_transaction] / [end_a_design]. *)

type arg =
  | Astr of string
  | Aint of int
  | Afloat of float
  | Astrs of string list

type result =
  | Rstr of string
  | Rint of int
  | Rfloat of float
  | Rstrs of string list

exception Cql_error of string

val run :
  Icdb.Server.t -> ?args:arg list -> string -> (string * result) list
(** Parse and execute one command string.
    @raise Cql_error on syntax errors, slot/argument mismatches or
    unknown commands.
    @raise Icdb.Server.Icdb_error on semantic failures. *)

(** {1 Typed result accessors} *)

val get_string : (string * result) list -> string -> string
val get_strings : (string * result) list -> string -> string list
val get_float : (string * result) list -> string -> float
