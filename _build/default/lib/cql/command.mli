(** CQL command strings (§3.2, Appendix B §4).

    A command is a list of [keyword : value] terms separated by
    semicolons. Values are names, numbers, parenthesised lists
    ("(INC)", "(size:5)", "(O[7]:20,Cout:20)") or variable slots:
    "%x" marks an input supplied by the caller, "?x" an output ICDB
    fills in; x is s/d/r/f (string/int/float/file), with "[]" for
    arrays. *)

type slot =
  | Sstr
  | Sint
  | Sfloat
  | Sfile
  | Sstr_arr
  | Sint_arr
  | Sfloat_arr

type rhs =
  | Name of string                          (** counter, fastest, Q[4] *)
  | Number of float
  | Tuple of (string * string option) list  (** (INC) or (size:5, ...) *)
  | In_slot of slot                         (** %s *)
  | Out_slot of slot                        (** ?s[] *)

type term = { key : string; rhs : rhs }

type t = term list

exception Cql_error of string

val parse : string -> t
(** @raise Cql_error on malformed input. *)

val find : t -> string -> term option
val find_any : t -> string list -> (string * term) option

val command_name : t -> string
(** Value of the [command:] keyword.
    @raise Cql_error when missing. *)
