(** Static timing analysis over cell netlists.

    Implements the paper's delay estimator (§4.4.1): each cell carries
    X (delay per unit transistor load), Y (intrinsic) and Z (per
    fanout); an output's delay is [load*X + Y + fanout*Z] and a path
    sums its cells. Produces the §3.3 report: CW (minimum clock
    width), WD (worst clock-to-output delay per output) and SD (setup
    time per input). Register launch times include clock-network
    arrival, so rippled-clock counters time correctly. *)

exception Timing_error of string

type report = {
  clock_width : float;                     (** CW, ns *)
  output_delays : (string * float) list;   (** WD per output port *)
  setup_times : (string * float) list;     (** SD per input port *)
}

val analyze :
  ?port_loads:(string * float) list -> Icdb_netlist.Netlist.t -> report
(** [analyze ~port_loads nl] runs timing with external unit-transistor
    loads on the named output ports (the CQL [oload] figures).
    @raise Timing_error on unknown cells or timing loops. *)

val critical_instances :
  ?port_loads:(string * float) list -> Icdb_netlist.Netlist.t -> string list
(** Instance names on the worst path (endpoint with the latest
    arrival, walked back through worst-arrival fanins). The sizer
    restricts its upsizing candidates to these. *)

val cell_area : Icdb_netlist.Netlist.t -> float
(** Total sized cell area in µm² (widths times the strip height): the
    pre-layout figure sizing optimizes against. *)

val report_to_string : report -> string
(** The §3.3 textual listing: [CW ...], [WD <port> ...],
    [SD <port> ...] lines. *)
