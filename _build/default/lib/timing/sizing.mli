(** Transistor sizing (the TILOS/Aesop substitute, §4.3 step 4).

    Greedy sensitivity-based sizing on the linear delay model: while a
    constraint is violated, try upsizing the gates on the current
    critical path (falling back to the whole netlist when the violated
    constraint lies off that path) and keep the best
    violation-improvement per added area. *)

type strategy =
  | Fastest   (** upsize until delay stops improving *)
  | Cheapest  (** leave every gate at minimum size *)
  | Balanced  (** smallest area meeting the explicit constraints *)

type constraints = {
  clock_width : float option;           (** CW upper bound, ns *)
  comb_delays : (string * float) list;  (** output -> WD bound; port "*"
                                            bounds every output *)
  setup_bound : float option;           (** max SD over all inputs *)
  port_loads : (string * float) list;   (** output -> external load *)
  strategy : strategy;
}

val default_constraints : constraints
(** No bounds, [Balanced]. *)

val max_size : float
(** Drive-multiplier ceiling per instance. *)

val violation : Sta.report -> constraints -> float
(** Worst constraint violation in ns; [<= 0] when everything is met. *)

val size_to_constraints :
  Icdb_netlist.Netlist.t -> constraints -> Icdb_netlist.Netlist.t
(** Returns a netlist with updated instance sizes (structure otherwise
    identical). Best effort: unreachable constraints yield the best
    netlist found — check with {!meets_constraints}, as the paper's
    server relaxes rather than fails. *)

val meets_constraints : Icdb_netlist.Netlist.t -> constraints -> bool
