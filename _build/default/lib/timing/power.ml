(* Power estimation.

   §1 lists power consumption among the figures the database must serve
   next to delay and area. The estimate combines:
   - dynamic power: per-instance switching activity, measured by driving
     the gate-level netlist with a deterministic pseudo-random vector
     sequence and counting output toggles, times a per-cell switching
     energy proportional to switched transistor width;
   - static power: a small per-transistor leakage term.

   Activities are reported per instance so optimization tools can find
   hot spots. *)

open Icdb_netlist
open Icdb_logic

type report = {
  vectors : int;                 (* simulation length *)
  dynamic_mw : float;            (* at the reference clock *)
  static_uw : float;
  reference_mhz : float;
  activities : (string * float) list;  (* instance -> toggles per vector *)
}

let switching_energy_fj (cell : Celllib.t) size =
  (* ~2 fJ per switched unit transistor at 5 V, scaled by drive *)
  2.0 *. float_of_int cell.Celllib.transistors *. (0.5 +. (0.5 *. size))

let leakage_nw_per_transistor = 5.0

let reference_mhz = 10.0

(* Deterministic input sequence: clock-like inputs toggle every vector,
   others flip pseudo-randomly. *)
let is_clock_name n =
  let u = String.uppercase_ascii n in
  u = "CLK" || u = "CLOCK" || u = "CK" || u = "CLKO"

let estimate ?(vectors = 64) ?(seed = 7) (nl : Netlist.t) =
  let sim = Icdb_sim.Gate_sim.create nl in
  let rng = Random.State.make [| seed |] in
  let inputs = nl.Netlist.inputs in
  (* output net of each instance, for toggle counting *)
  let out_nets =
    List.filter_map
      (fun (i : Netlist.instance) ->
        match Celllib.find i.cell with
        | Some c -> (
            match Netlist.pin_net i c.Celllib.output with
            | Some n -> Some (i, c, n)
            | None -> None)
        | None -> None)
      nl.Netlist.instances
  in
  let toggles = Hashtbl.create 64 in
  let last = Hashtbl.create 64 in
  let record () =
    List.iter
      (fun ((i : Netlist.instance), _, net) ->
        let v = Icdb_sim.Gate_sim.value sim net in
        (match Hashtbl.find_opt last i.inst_name with
         | Some prev when prev <> v ->
             Hashtbl.replace toggles i.inst_name
               (1 + match Hashtbl.find_opt toggles i.inst_name with
                    | Some c -> c
                    | None -> 0)
         | _ -> ());
        Hashtbl.replace last i.inst_name v)
      out_nets
  in
  let state = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace state n false) inputs;
  for step = 1 to vectors do
    let assignment =
      List.map
        (fun n ->
          let v =
            if is_clock_name n then step mod 2 = 1
            else if Random.State.int rng 100 < 30 then
              not (Hashtbl.find state n)
            else Hashtbl.find state n
          in
          Hashtbl.replace state n v;
          (n, v))
        inputs
    in
    Icdb_sim.Gate_sim.step sim assignment;
    record ()
  done;
  let activities =
    List.map
      (fun ((i : Netlist.instance), _, _) ->
        let t =
          match Hashtbl.find_opt toggles i.inst_name with
          | Some c -> float_of_int c
          | None -> 0.0
        in
        (i.inst_name, t /. float_of_int vectors))
      out_nets
  in
  let dynamic_mw =
    (* P = activity * E * f; fJ * MHz = nW, so / 1e6 gives mW *)
    List.fold_left
      (fun acc ((i : Netlist.instance), c, _) ->
        let a = List.assoc i.inst_name activities in
        acc +. (a *. switching_energy_fj c i.size *. reference_mhz /. 1.0e6))
      0.0 out_nets
  in
  let static_uw =
    List.fold_left
      (fun acc ((i : Netlist.instance), c, _) ->
        ignore i;
        acc +. (float_of_int c.Celllib.transistors *. leakage_nw_per_transistor /. 1000.0))
      0.0 out_nets
  in
  { vectors; dynamic_mw; static_uw; reference_mhz; activities }

let report_to_string r =
  let hot =
    List.sort (fun (_, a) (_, b) -> compare b a) r.activities
    |> List.filteri (fun i _ -> i < 5)
  in
  Printf.sprintf
    "P %.3f mW at %.0f MHz (static %.2f uW, %d vectors)\nhottest: %s"
    r.dynamic_mw r.reference_mhz r.static_uw r.vectors
    (String.concat ", "
       (List.map (fun (n, a) -> Printf.sprintf "%s %.2f" n a) hot))
