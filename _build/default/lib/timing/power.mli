(** Power estimation (§1 lists power among the figures the database
    serves).

    Dynamic power comes from measured switching activity: the netlist
    is driven with a deterministic pseudo-random vector sequence
    (clock-like inputs toggle every vector) and per-instance output
    toggles are counted. Static power is a per-transistor leakage
    term. *)

type report = {
  vectors : int;                        (** simulation length *)
  dynamic_mw : float;                   (** at {!reference_mhz} *)
  static_uw : float;
  reference_mhz : float;
  activities : (string * float) list;   (** instance -> toggles/vector *)
}

val reference_mhz : float

val estimate :
  ?vectors:int -> ?seed:int -> Icdb_netlist.Netlist.t -> report
(** Deterministic in [seed]; default 64 vectors. *)

val report_to_string : report -> string
(** One-line summary plus the five hottest instances. *)
