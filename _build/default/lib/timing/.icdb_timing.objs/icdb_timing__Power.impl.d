lib/timing/power.ml: Celllib Hashtbl Icdb_logic Icdb_netlist Icdb_sim List Netlist Printf Random String
