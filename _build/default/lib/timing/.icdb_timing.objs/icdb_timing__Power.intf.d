lib/timing/power.mli: Icdb_netlist
