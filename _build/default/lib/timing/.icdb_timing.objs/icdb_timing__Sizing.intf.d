lib/timing/sizing.mli: Icdb_netlist Sta
