lib/timing/sta.mli: Icdb_netlist
