lib/timing/sizing.ml: Float Icdb_netlist List Netlist Sta
