lib/timing/sta.ml: Buffer Celllib Float Hashtbl Icdb_logic Icdb_netlist List Netlist Option Printf String
