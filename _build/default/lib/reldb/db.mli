(** A database: a set of named tables with snapshot transactions and
    textual persistence.

    This plays the role INGRES plays in the paper (§2.3): ICDB metadata
    (component definitions, implementations, generators, instances)
    lives here, while bulk design data lives in ordinary files. *)

type t

exception Db_error of string

val create : unit -> t

val create_table : t -> string -> Table.schema -> Table.t
(** @raise Db_error if a table with that name exists. *)

val table : t -> string -> Table.t
(** @raise Db_error if absent. *)

val table_opt : t -> string -> Table.t option
val drop_table : t -> string -> unit
val table_names : t -> string list
(** Sorted list of table names. *)

(** {1 Transactions}

    Snapshot-based: [begin_tx] snapshots every table; [rollback]
    restores the snapshots; [commit] discards them. Transactions nest
    by stacking snapshots. *)

val begin_tx : t -> unit
val commit : t -> unit
(** @raise Db_error when no transaction is active. *)

val rollback : t -> unit
(** @raise Db_error when no transaction is active. *)

val in_tx : t -> bool

val with_tx : t -> (unit -> 'a) -> 'a
(** Run a function inside a transaction; commit on return, roll back and
    re-raise on exception. *)

(** {1 Persistence} *)

val save : t -> string -> unit
(** Write the whole database to one text file. *)

val load : string -> t
(** Read a database written by {!save}.
    @raise Db_error on malformed input. *)
