(** Typed atomic values stored in relation columns.

    The engine is deliberately small: four atomic types cover everything
    ICDB stores (component metadata, attribute values, file names, delay
    numbers). *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = Tint | Tfloat | Tstr | Tbool

val ty_of : t -> ty
(** [ty_of v] is the runtime type tag of [v]. *)

val ty_name : ty -> string
(** Human-readable type name ("int", "float", "string", "bool"). *)

val equal : t -> t -> bool
(** Structural equality. [Int] and [Float] never compare equal. *)

val compare : t -> t -> int
(** Total order: within a type, natural order; across types, by type tag. *)

val to_string : t -> string
(** Display form, also used by the textual persistence layer. *)

val pp : Format.formatter -> t -> unit

val escape : string -> string
(** Escape a string for single-line storage (backslash, newline, tab). *)

val unescape : string -> string
(** Inverse of {!escape}. *)

val encode : t -> string
(** Single-line, type-tagged encoding used by {!Storage}. *)

val decode : string -> t
(** Inverse of {!encode}.
    @raise Failure on a malformed encoding. *)
