type rel = {
  rschema : Table.schema;
  rrows : Table.row list;
}

type pred =
  | True
  | Eq of string * Value.t
  | Neq of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | Like of string * string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

let of_table t = { rschema = Table.schema t; rrows = Table.rows t }

let col_index rel col =
  let rec loop i = function
    | [] -> raise (Table.Schema_error ("no column " ^ col))
    | (c, _) :: rest -> if String.equal c col then i else loop (i + 1) rest
  in
  loop 0 rel.rschema

let field rel row col = row.(col_index rel col)

(* Numeric-coercing comparison used by ordering predicates. *)
let cmp_values a b =
  match a, b with
  | Value.Int x, Value.Float y -> Float.compare (float_of_int x) y
  | Value.Float x, Value.Int y -> Float.compare x (float_of_int y)
  | _ -> Value.compare a b

let contains_substring ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0

let rec eval_pred rel p row =
  match p with
  | True -> true
  | Eq (c, v) -> cmp_values (field rel row c) v = 0
  | Neq (c, v) -> cmp_values (field rel row c) v <> 0
  | Lt (c, v) -> cmp_values (field rel row c) v < 0
  | Le (c, v) -> cmp_values (field rel row c) v <= 0
  | Gt (c, v) -> cmp_values (field rel row c) v > 0
  | Ge (c, v) -> cmp_values (field rel row c) v >= 0
  | Like (c, pat) -> (
      match field rel row c with
      | Value.Str s -> contains_substring ~needle:pat s
      | Value.Int _ | Value.Float _ | Value.Bool _ -> false)
  | And (a, b) -> eval_pred rel a row && eval_pred rel b row
  | Or (a, b) -> eval_pred rel a row || eval_pred rel b row
  | Not a -> not (eval_pred rel a row)

let select p rel =
  { rel with rrows = List.filter (eval_pred rel p) rel.rrows }

let project cols rel =
  let idxs = List.map (col_index rel) cols in
  let rschema = List.map (fun i -> List.nth rel.rschema i) idxs in
  let take row = Array.of_list (List.map (fun i -> row.(i)) idxs) in
  { rschema; rrows = List.map take rel.rrows }

let rename pairs rel =
  let ren (c, ty) =
    match List.assoc_opt c pairs with Some c' -> (c', ty) | None -> (c, ty)
  in
  { rel with rschema = List.map ren rel.rschema }

let join left right ~on:(lc, rc) =
  let li = col_index left lc and ri = col_index right rc in
  let left_names = List.map fst left.rschema in
  let disamb (c, ty) =
    if List.mem c left_names then (c ^ "'", ty) else (c, ty)
  in
  let rschema = left.rschema @ List.map disamb right.rschema in
  let rrows =
    List.concat_map
      (fun lrow ->
        List.filter_map
          (fun rrow ->
            if cmp_values lrow.(li) rrow.(ri) = 0 then
              Some (Array.append lrow rrow)
            else None)
          right.rrows)
      left.rrows
  in
  { rschema; rrows }

let order_by col ?(desc = false) rel =
  let i = col_index rel col in
  let cmp a b =
    let c = cmp_values a.(i) b.(i) in
    if desc then -c else c
  in
  { rel with rrows = List.stable_sort cmp rel.rrows }

let distinct rel =
  let seen = Hashtbl.create 64 in
  let keep row =
    let key = String.concat "\x00" (Array.to_list (Array.map Value.encode row)) in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      true
    end
  in
  { rel with rrows = List.filter keep rel.rrows }

let limit n rel =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  { rel with rrows = take (max 0 n) rel.rrows }

let count rel = List.length rel.rrows

let column_values rel col =
  let i = col_index rel col in
  List.map (fun row -> row.(i)) rel.rrows
