exception Db_error of string

type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable snapshots : (string * Table.t) list list;  (* stack of table copies *)
}

let db_err fmt = Printf.ksprintf (fun s -> raise (Db_error s)) fmt

let create () = { tables = Hashtbl.create 16; snapshots = [] }

let create_table t name schema =
  if Hashtbl.mem t.tables name then db_err "table %s already exists" name;
  let tbl = Table.create name schema in
  Hashtbl.add t.tables name tbl;
  tbl

let table_opt t name = Hashtbl.find_opt t.tables name

let table t name =
  match table_opt t name with
  | Some tbl -> tbl
  | None -> db_err "no table %s" name

let drop_table t name =
  if not (Hashtbl.mem t.tables name) then db_err "no table %s" name;
  Hashtbl.remove t.tables name

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let begin_tx t =
  let snap =
    Hashtbl.fold (fun name tbl acc -> (name, Table.copy tbl) :: acc) t.tables []
  in
  t.snapshots <- snap :: t.snapshots

let commit t =
  match t.snapshots with
  | [] -> db_err "commit: no active transaction"
  | _ :: rest -> t.snapshots <- rest

let rollback t =
  match t.snapshots with
  | [] -> db_err "rollback: no active transaction"
  | snap :: rest ->
      (* Tables created during the transaction are dropped; snapshotted
         tables are restored. *)
      let snap_names = List.map fst snap in
      let current = table_names t in
      List.iter
        (fun name ->
          if not (List.mem name snap_names) then Hashtbl.remove t.tables name)
        current;
      List.iter
        (fun (name, copy) ->
          match Hashtbl.find_opt t.tables name with
          | Some tbl -> Table.restore tbl ~from:copy
          | None -> Hashtbl.add t.tables name copy)
        snap;
      t.snapshots <- rest

let in_tx t = t.snapshots <> []

let with_tx t f =
  begin_tx t;
  match f () with
  | result ->
      commit t;
      result
  | exception e ->
      rollback t;
      raise e

(* Persistence format, line-oriented:
     TABLE <name>
     COL <name> <ty>
     ROW
     <encoded value>        (one per column)
     END                    (end of table)  *)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun name ->
          let tbl = table t name in
          Printf.fprintf oc "TABLE %s\n" name;
          List.iter
            (fun (col, ty) ->
              Printf.fprintf oc "COL %s %s\n" col (Value.ty_name ty))
            (Table.schema tbl);
          List.iter
            (fun row ->
              output_string oc "ROW\n";
              Array.iter
                (fun v -> Printf.fprintf oc "%s\n" (Value.encode v))
                row)
            (Table.rows tbl);
          output_string oc "END\n")
        (table_names t))

let ty_of_name = function
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" -> Value.Tstr
  | "bool" -> Value.Tbool
  | s -> db_err "unknown type %s" s

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let t = create () in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      let lines = List.rev !lines in
      let rec parse_tables = function
        | [] -> ()
        | line :: rest when String.length line > 6 && String.sub line 0 6 = "TABLE " ->
            let name = String.sub line 6 (String.length line - 6) in
            parse_cols name [] rest
        | "" :: rest -> parse_tables rest
        | line :: _ -> db_err "load: expected TABLE, got %S" line
      and parse_cols name cols = function
        | line :: rest when String.length line > 4 && String.sub line 0 4 = "COL " -> (
            match String.split_on_char ' ' line with
            | [ "COL"; col; ty ] -> parse_cols name ((col, ty_of_name ty) :: cols) rest
            | _ -> db_err "load: malformed column line %S" line)
        | rest ->
            let tbl = create_table t name (List.rev cols) in
            parse_rows tbl (List.length cols) rest
      and parse_rows tbl arity = function
        | "ROW" :: rest ->
            let rec take k acc = function
              | rest when k = 0 -> (List.rev acc, rest)
              | v :: rest -> take (k - 1) (Value.decode v :: acc) rest
              | [] -> db_err "load: truncated row"
            in
            let values, rest = take arity [] rest in
            Table.insert tbl values;
            parse_rows tbl arity rest
        | "END" :: rest -> parse_tables rest
        | line :: _ -> db_err "load: expected ROW or END, got %S" line
        | [] -> db_err "load: missing END"
      in
      parse_tables lines;
      t)
