(** Relational-algebra combinators over {!Table}.

    Results are transient relations: a schema plus materialized rows.
    These are the primitives the SQL layer ({!Sql}) and the ICDB server
    compile their requests into. *)

type rel = {
  rschema : Table.schema;
  rrows : Table.row list;
}

type pred =
  | True
  | Eq of string * Value.t
  | Neq of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | Like of string * string  (** substring match on string columns *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

val of_table : Table.t -> rel
(** Snapshot of a table as a relation. *)

val field : rel -> Table.row -> string -> Value.t
(** Field access by column name. @raise Table.Schema_error if unknown. *)

val eval_pred : rel -> pred -> Table.row -> bool
(** Evaluate a predicate against a row of the given relation. Numeric
    comparisons between [Int] and [Float] coerce to float. *)

val select : pred -> rel -> rel
(** Keep the rows satisfying the predicate. *)

val project : string list -> rel -> rel
(** Keep (and reorder to) the named columns. *)

val rename : (string * string) list -> rel -> rel
(** Rename columns, [(old, new)] pairs. *)

val join : rel -> rel -> on:(string * string) -> rel
(** Equijoin: rows of the product where [left.col1 = right.col2]. The
    right relation's columns are prefixed with its join column's table
    disambiguator only when names collide, by appending ["'"], so the
    result schema has unique names. *)

val order_by : string -> ?desc:bool -> rel -> rel
(** Stable sort on one column. *)

val distinct : rel -> rel
(** Remove duplicate rows, keeping first occurrences. *)

val limit : int -> rel -> rel

val count : rel -> int

val column_values : rel -> string -> Value.t list
(** All values of one column, in row order. *)
