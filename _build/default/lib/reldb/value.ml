type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = Tint | Tfloat | Tstr | Tbool

let ty_of = function
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Str _ -> Tstr
  | Bool _ -> Tbool

let ty_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstr -> "string"
  | Tbool -> "bool"

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Int _ | Float _ | Str _ | Bool _), _ -> false

let rank = function Int _ -> 0 | Float _ -> 1 | Str _ -> 2 | Bool _ -> 3

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | _ -> Int.compare (rank a) (rank b)

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

let pp ppf v = Format.pp_print_string ppf (to_string v)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '\\' && i + 1 < n then begin
      (match s.[i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | c -> Buffer.add_char buf c);
      loop (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

let encode = function
  | Int i -> "i:" ^ string_of_int i
  | Float f -> Printf.sprintf "f:%h" f  (* hex float: exact roundtrip *)
  | Str s -> "s:" ^ escape s
  | Bool b -> "b:" ^ string_of_bool b

let decode line =
  if String.length line < 2 || line.[1] <> ':' then
    failwith ("Value.decode: malformed " ^ line)
  else
    let payload = String.sub line 2 (String.length line - 2) in
    match line.[0] with
    | 'i' -> Int (int_of_string payload)
    | 'f' -> Float (float_of_string payload)
    | 's' -> Str (unescape payload)
    | 'b' -> Bool (bool_of_string payload)
    | c -> failwith (Printf.sprintf "Value.decode: unknown tag %c" c)
