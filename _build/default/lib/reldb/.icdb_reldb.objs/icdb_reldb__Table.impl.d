lib/reldb/table.ml: Array Hashtbl List Printf Value
