lib/reldb/query.mli: Table Value
