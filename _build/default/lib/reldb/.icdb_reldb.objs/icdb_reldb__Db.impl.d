lib/reldb/db.ml: Array Fun Hashtbl List Printf String Table Value
