lib/reldb/sql.mli: Db Query
