lib/reldb/table.mli: Value
