lib/reldb/sql.ml: Buffer Db List Printf Query String Table Value
