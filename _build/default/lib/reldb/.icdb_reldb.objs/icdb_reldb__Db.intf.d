lib/reldb/db.mli: Table
