lib/reldb/value.mli: Format
