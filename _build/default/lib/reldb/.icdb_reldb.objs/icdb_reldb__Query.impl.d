lib/reldb/query.ml: Array Float Hashtbl List String Table Value
