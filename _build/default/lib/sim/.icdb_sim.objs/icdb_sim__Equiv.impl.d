lib/sim/equiv.ml: Bool Flat Gate_sim Icdb_iif Interp List Printf Random String
