lib/sim/gate_sim.mli: Icdb_netlist
