lib/sim/xsim.ml: Celllib Hashtbl Icdb_iif Icdb_logic Icdb_netlist List Netlist Printf
