lib/sim/equiv.mli: Icdb_iif Icdb_netlist
