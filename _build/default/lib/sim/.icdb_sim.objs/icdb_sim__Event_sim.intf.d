lib/sim/event_sim.mli: Icdb_netlist
