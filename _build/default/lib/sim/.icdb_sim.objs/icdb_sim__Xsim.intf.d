lib/sim/xsim.mli: Icdb_netlist
