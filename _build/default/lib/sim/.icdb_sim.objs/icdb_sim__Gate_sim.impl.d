lib/sim/gate_sim.ml: Celllib Fun Hashtbl Icdb_iif Icdb_logic Icdb_netlist List Netlist Printf
