lib/sim/event_sim.ml: Celllib Float Fun Hashtbl Icdb_iif Icdb_logic Icdb_netlist List Netlist Option Printf
