(** Event-driven timing simulation.

    Transitions propagate through real time on an event wheel: each
    cell contributes its §4.4.1 library delay under its static load,
    and inertial filtering cancels pulses shorter than a gate's delay.
    Measures what the static analyzer only bounds — actual settling
    time after a vector — and counts glitches. Two-valued; state starts
    at zero with the netlist pre-settled. *)

exception Event_error of string

type t

val create : Icdb_netlist.Netlist.t -> t

val apply : t -> (string * bool) list -> float * int
(** Apply an input vector at the current time and run to quiescence.
    Returns (settling delay in ns, transitions caused — including
    glitch pulses). @raise Event_error on non-input nets or an
    exceeded event budget (oscillation). *)

val value : t -> string -> bool
val outputs : t -> (string * bool) list

val transitions : t -> int
(** Total transitions since creation (the power estimator's activity
    ground truth). *)

val now : t -> float
(** Current simulation time, ns. *)
