(** Equivalence checking between a flat IIF specification and a mapped
    netlist.

    Both simulators start from the all-zero state, so identical input
    sequences must produce identical output sequences. Combinational
    designs are enumerated exhaustively (up to {!max_exhaustive}
    inputs); sequential designs are driven with a deterministic
    pseudo-random sequence. *)

type result =
  | Equivalent
  | Mismatch of {
      step : int;
      inputs : (string * bool) list;
      expected : (string * bool) list;  (** from the IIF reference *)
      got : (string * bool) list;       (** from the netlist *)
    }

val is_combinational : Icdb_iif.Flat.t -> bool

val max_exhaustive : int
(** Widest input count enumerated exhaustively (14). *)

val check_combinational :
  Icdb_iif.Flat.t -> Icdb_netlist.Netlist.t -> result
(** Exhaustive check. @raise Invalid_argument beyond {!max_exhaustive}. *)

val check_sequential :
  ?steps:int -> ?seed:int -> Icdb_iif.Flat.t -> Icdb_netlist.Netlist.t -> result
(** Randomized sequence check, deterministic in [seed]. *)

val check :
  ?steps:int -> ?seed:int -> Icdb_iif.Flat.t -> Icdb_netlist.Netlist.t -> result
(** Exhaustive when possible, randomized otherwise. *)

val result_to_string : result -> string
