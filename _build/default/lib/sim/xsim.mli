(** Four-valued (0/1/X/Z) gate-level simulation.

    Registers start at X and unknowns propagate pessimistically, so a
    tool can ask what the two-valued simulators hide: after this reset
    sequence, which outputs are still undefined? Z arises only from
    disabled tri-state drivers and reads as X through gate inputs. *)

exception Xsim_error of string

type v = V0 | V1 | VX | VZ

val v_to_string : v -> string
val of_bool : bool -> v

(** Kleene logic with Z-as-X. *)

val v_not : v -> v
val v_and : v -> v -> v
val v_or : v -> v -> v
val v_xor : v -> v -> v

val resolve : v -> v -> v
(** Wired resolution: Z yields, agreement wins, conflict gives X. *)

type t

val create : Icdb_netlist.Netlist.t -> t
(** Every net starts at X. *)

val step : t -> (string * v) list -> unit
(** Apply input values and settle (oscillating feedback resolves to X
    rather than failing). @raise Xsim_error on non-input nets. *)

val value : t -> string -> v
val outputs : t -> (string * v) list

val undefined_outputs : t -> string list
(** Outputs currently at X or Z. *)

val initialization_check :
  Icdb_netlist.Netlist.t ->
  sequence:(string * bool) list list ->
  t * string list
(** Drive a reset sequence (named inputs per step; unnamed inputs stay
    X) and report the outputs still undefined afterwards. *)
