(* Four-valued gate-level simulation (0 / 1 / X / Z).

   The two-valued simulators start every register at zero, which hides
   initialization bugs. This simulator starts state elements at X and
   propagates unknowns pessimistically, so a synthesis tool can ask the
   question that matters before committing a component: after this
   reset sequence, which outputs are still undefined?

   Z only arises from disabled tri-state drivers; at any gate input it
   reads as X. Bus resolution: drivers at Z are ignored, agreeing
   drivers win, conflicts give X. *)

open Icdb_netlist
open Icdb_logic

exception Xsim_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Xsim_error s)) fmt

type v = V0 | V1 | VX | VZ

let v_to_string = function V0 -> "0" | V1 -> "1" | VX -> "X" | VZ -> "Z"

let of_bool b = if b then V1 else V0

(* Z reads as X through any gate input. *)
let strengthen = function VZ -> VX | v -> v

let v_not v =
  match strengthen v with V0 -> V1 | V1 -> V0 | _ -> VX

let v_and a b =
  match strengthen a, strengthen b with
  | V0, _ | _, V0 -> V0
  | V1, V1 -> V1
  | _ -> VX

let v_or a b =
  match strengthen a, strengthen b with
  | V1, _ | _, V1 -> V1
  | V0, V0 -> V0
  | _ -> VX

let v_xor a b =
  match strengthen a, strengthen b with
  | V0, V0 | V1, V1 -> V0
  | V0, V1 | V1, V0 -> V1
  | _ -> VX

(* Wired resolution of two driver contributions. *)
let resolve a b =
  match a, b with
  | VZ, v | v, VZ -> v
  | V0, V0 -> V0
  | V1, V1 -> V1
  | _ -> VX

(* ------------------------------------------------------------------ *)
(* Compiled form (parallel to Gate_sim)                                *)
(* ------------------------------------------------------------------ *)

type ff_info = {
  inst : string;
  out : string;
  d : string;
  ck : string;
  s : string option;
  r : string option;
}

type compiled =
  | Ccomb of { out : string; cell : Celllib.t; pins : (string * string) list }
  | Cff of ff_info
  | Clatch of { inst : string; out : string; d : string; g : string;
                transparent_high : bool }
  | Ctri_group of { out : string; drivers : (string * string) list }

type t = {
  nl : Netlist.t;
  elements : compiled list;
  values : (string, v) Hashtbl.t;
  prev_clock : (string, v) Hashtbl.t;
  latch_store : (string, v) Hashtbl.t;
}

let compile (nl : Netlist.t) =
  let tri_groups = Hashtbl.create 8 in
  let elements = ref [] in
  List.iter
    (fun (inst : Netlist.instance) ->
      let cell =
        match Celllib.find inst.cell with
        | Some c -> c
        | None -> fail "unknown cell %s" inst.cell
      in
      let pin p = Netlist.pin_net_exn inst p in
      match cell.Celllib.kind with
      | Celllib.Comb ->
          elements :=
            Ccomb { out = pin cell.Celllib.output; cell; pins = inst.conns }
            :: !elements
      | Celllib.Ff { has_set; has_reset } ->
          elements :=
            Cff
              { inst = inst.inst_name;
                out = pin "Q";
                d = pin "D";
                ck = pin "CK";
                s = (if has_set then Some (pin "S") else None);
                r = (if has_reset then Some (pin "R") else None) }
            :: !elements
      | Celllib.Latch_cell { transparent_high } ->
          elements :=
            Clatch
              { inst = inst.inst_name; out = pin "Q"; d = pin "D";
                g = pin "G"; transparent_high }
            :: !elements
      | Celllib.Tri_cell ->
          let out = pin "Y" in
          let prev =
            match Hashtbl.find_opt tri_groups out with Some l -> l | None -> []
          in
          Hashtbl.replace tri_groups out ((pin "A", pin "EN") :: prev))
    nl.Netlist.instances;
  let tris =
    Hashtbl.fold
      (fun out drivers acc ->
        Ctri_group { out; drivers = List.rev drivers } :: acc)
      tri_groups []
  in
  List.rev !elements @ tris

(* Every net (including register outputs) starts at X. *)
let create nl =
  let st =
    { nl;
      elements = compile nl;
      values = Hashtbl.create 128;
      prev_clock = Hashtbl.create 16;
      latch_store = Hashtbl.create 16 }
  in
  List.iter (fun n -> Hashtbl.replace st.values n VX) (Netlist.nets nl);
  st

let value st net =
  if net = "$const1" then V1
  else if net = "$const0" then V0
  else match Hashtbl.find_opt st.values net with Some v -> v | None -> VX

let eval_cell st (cell : Celllib.t) pins =
  let lookup pin =
    match List.assoc_opt pin pins with
    | Some n -> value st n
    | None -> fail "cell %s: pin %s unconnected" cell.Celllib.cname pin
  in
  let rec ev e =
    match e with
    | Icdb_iif.Flat.Fconst b -> of_bool b
    | Icdb_iif.Flat.Fnet p -> lookup p
    | Icdb_iif.Flat.Fnot e -> v_not (ev e)
    | Icdb_iif.Flat.Fand es ->
        List.fold_left (fun acc e -> v_and acc (ev e)) V1 es
    | Icdb_iif.Flat.For_ es ->
        List.fold_left (fun acc e -> v_or acc (ev e)) V0 es
    | Icdb_iif.Flat.Fxor (a, b) -> v_xor (ev a) (ev b)
    | Icdb_iif.Flat.Fxnor (a, b) -> v_not (v_xor (ev a) (ev b))
    | Icdb_iif.Flat.Fbuf e | Icdb_iif.Flat.Fschmitt e -> strengthen (ev e)
    | Icdb_iif.Flat.Fdelay (e, _) -> strengthen (ev e)
    | Icdb_iif.Flat.Ftri _ | Icdb_iif.Flat.Fwor _ ->
        fail "cell %s: interface operator in cell function" cell.Celllib.cname
  in
  match cell.Celllib.logic with
  | Some f -> ev f
  | None -> fail "cell %s has no combinational function" cell.Celllib.cname

let comb_pass st =
  let changed = ref false in
  let update out v =
    if value st out <> v then begin
      Hashtbl.replace st.values out v;
      changed := true
    end
  in
  List.iter
    (fun el ->
      match el with
      | Ccomb { out; cell; pins } -> update out (eval_cell st cell pins)
      | Clatch { inst; out; d; g; transparent_high } ->
          let gv = strengthen (value st g) in
          let active = if transparent_high then V1 else V0 in
          let inactive = if transparent_high then V0 else V1 in
          let v =
            if gv = active then begin
              let dv = strengthen (value st d) in
              Hashtbl.replace st.latch_store inst dv;
              dv
            end
            else if gv = inactive then
              match Hashtbl.find_opt st.latch_store inst with
              | Some held -> held
              | None -> VX
            else VX  (* unknown gate: output unknown *)
          in
          update out v
      | Ctri_group { out; drivers } ->
          let contribution (d, en) =
            match strengthen (value st en) with
            | V1 -> strengthen (value st d)
            | V0 -> VZ
            | _ -> VX
          in
          let v = List.fold_left (fun acc dr -> resolve acc (contribution dr)) VZ drivers in
          update out v
      | Cff _ -> ())
    st.elements;
  !changed

let settle st =
  let limit = List.length st.elements + 8 in
  let rec loop n =
    if comb_pass st then
      if n >= limit then
        (* force unstable feedback to X rather than failing: X is the
           honest answer for an oscillating node *)
        ()
      else loop (n + 1)
  in
  loop 0

let update_registers st =
  let regs =
    List.filter_map
      (fun el -> match el with Cff f -> Some f | _ -> None)
      st.elements
  in
  let rounds = List.length regs + 2 in
  let rec loop n =
    settle st;
    let updates =
      List.map
        (fun f ->
          let clk = strengthen (value st f.ck) in
          let prev_clk =
            match Hashtbl.find_opt st.prev_clock f.inst with
            | Some p -> p
            | None -> clk
          in
          let current = value st f.out in
          let sampled =
            match prev_clk, clk with
            | V0, V1 -> strengthen (value st f.d)   (* clean rising edge *)
            | (V0 | V1), (V0 | V1) -> current       (* no edge *)
            | _ ->
                (* unknown clock: the register may or may not have
                   clocked; only keep the value if old and new agree *)
                let d = strengthen (value st f.d) in
                if d = current then current else VX
          in
          let forced =
            match f.r, f.s with
            | Some r, _ when strengthen (value st r) = V1 -> Some V0
            | _, Some s when strengthen (value st s) = V1 -> Some V1
            | Some r, _ when strengthen (value st r) = VX -> Some VX
            | _, Some s when strengthen (value st s) = VX -> Some VX
            | _ -> None
          in
          let next = match forced with Some v -> v | None -> sampled in
          (f.inst, f.out, clk, next, next <> current))
        regs
    in
    let any_change = List.exists (fun (_, _, _, _, c) -> c) updates in
    List.iter
      (fun (inst, out, clk, next, _) ->
        Hashtbl.replace st.prev_clock inst clk;
        Hashtbl.replace st.values out next)
      updates;
    if any_change && n < rounds then loop (n + 1) else settle st
  in
  loop 0

let step st inputs =
  List.iter
    (fun (n, v) ->
      if not (List.mem n st.nl.Netlist.inputs) then
        fail "Xsim.step: %s is not an input of %s" n st.nl.Netlist.name;
      Hashtbl.replace st.values n v)
    inputs;
  update_registers st

let outputs st = List.map (fun o -> (o, value st o)) st.nl.Netlist.outputs

let undefined_outputs st =
  List.filter_map
    (fun (o, v) -> if v = VX || v = VZ then Some o else None)
    (outputs st)

(* ------------------------------------------------------------------ *)
(* Initialization analysis                                             *)
(* ------------------------------------------------------------------ *)

(* Drive a reset sequence (every step sets the named inputs, all other
   inputs at X) and report the outputs still undefined afterwards: the
   question a synthesis tool asks before trusting a component's
   power-on behaviour. *)
let initialization_check (nl : Netlist.t) ~sequence =
  let st = create nl in
  List.iter
    (fun assignment ->
      let full =
        List.map
          (fun n ->
            match List.assoc_opt n assignment with
            | Some b -> (n, of_bool b)
            | None -> (n, VX))
          nl.Netlist.inputs
      in
      step st full)
    sequence;
  (st, undefined_outputs st)
