(* Gate-level simulator over cell netlists.

   This is the VHDL-simulator substitute of the generation path
   (Figure 8): it executes mapped netlists against the cell library's
   logic functions so generated components can be verified against
   their IIF specification. Semantics mirror {!Icdb_iif.Interp} (settle
   combinational logic, then iterate register updates), so the two can
   be compared step by step. *)

open Icdb_netlist
open Icdb_logic

exception Sim_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

type ff_info = {
  inst : string;
  out : string;
  d : string;
  ck : string;
  s : string option;
  r : string option;
}

type compiled =
  | Ccomb of { out : string; cell : Celllib.t; pins : (string * string) list }
  | Cff of ff_info
  | Clatch of { inst : string; out : string; d : string; g : string;
                transparent_high : bool }
  | Ctri_group of { out : string; drivers : (string * string) list }
      (* (data net, enable net) list; enable "$const1" = always on *)

type t = {
  nl : Netlist.t;
  elements : compiled list;
  values : (string, bool) Hashtbl.t;
  prev_clock : (string, bool) Hashtbl.t;   (* keyed by FF instance name *)
  latch_store : (string, bool) Hashtbl.t;  (* keyed by latch instance name *)
}

let value st net =
  if net = "$const1" then true
  else if net = "$const0" then false
  else
    match Hashtbl.find_opt st.values net with Some v -> v | None -> false

let compile (nl : Netlist.t) =
  let tri_groups = Hashtbl.create 8 in
  let elements = ref [] in
  List.iter
    (fun (inst : Netlist.instance) ->
      let cell =
        match Celllib.find inst.cell with
        | Some c -> c
        | None -> fail "unknown cell %s (instance %s)" inst.cell inst.inst_name
      in
      let pin p = Netlist.pin_net_exn inst p in
      match cell.Celllib.kind with
      | Celllib.Comb ->
          elements :=
            Ccomb { out = pin cell.Celllib.output; cell; pins = inst.conns }
            :: !elements
      | Celllib.Ff { has_set; has_reset } ->
          elements :=
            Cff
              { inst = inst.inst_name;
                out = pin "Q";
                d = pin "D";
                ck = pin "CK";
                s = (if has_set then Some (pin "S") else None);
                r = (if has_reset then Some (pin "R") else None) }
            :: !elements
      | Celllib.Latch_cell { transparent_high } ->
          elements :=
            Clatch
              { inst = inst.inst_name; out = pin "Q"; d = pin "D";
                g = pin "G"; transparent_high }
            :: !elements
      | Celllib.Tri_cell ->
          let out = pin "Y" in
          let prev =
            match Hashtbl.find_opt tri_groups out with Some l -> l | None -> []
          in
          Hashtbl.replace tri_groups out ((pin "A", pin "EN") :: prev))
    nl.Netlist.instances;
  let tri_elements =
    Hashtbl.fold
      (fun out drivers acc ->
        Ctri_group { out; drivers = List.rev drivers } :: acc)
      tri_groups []
  in
  List.rev !elements @ tri_elements

let create nl =
  { nl;
    elements = compile nl;
    values = Hashtbl.create 128;
    prev_clock = Hashtbl.create 16;
    latch_store = Hashtbl.create 16 }

(* Evaluate a combinational cell's function with pins bound to nets. *)
let eval_cell st (cell : Celllib.t) pins =
  let lookup pin =
    match List.assoc_opt pin pins with
    | Some n -> value st n
    | None -> fail "cell %s: pin %s unconnected" cell.Celllib.cname pin
  in
  let rec ev e =
    match e with
    | Icdb_iif.Flat.Fconst b -> b
    | Icdb_iif.Flat.Fnet p -> lookup p
    | Icdb_iif.Flat.Fnot e -> not (ev e)
    | Icdb_iif.Flat.Fand es -> List.for_all ev es
    | Icdb_iif.Flat.For_ es -> List.exists ev es
    | Icdb_iif.Flat.Fxor (a, b) -> ev a <> ev b
    | Icdb_iif.Flat.Fxnor (a, b) -> ev a = ev b
    | Icdb_iif.Flat.Fbuf e | Icdb_iif.Flat.Fschmitt e -> ev e
    | Icdb_iif.Flat.Fdelay (e, _) -> ev e
    | Icdb_iif.Flat.Ftri _ | Icdb_iif.Flat.Fwor _ ->
        fail "cell %s: interface operator in cell function" cell.Celllib.cname
  in
  match cell.Celllib.logic with
  | Some f -> ev f
  | None -> fail "cell %s has no combinational function" cell.Celllib.cname

let comb_pass st =
  let changed = ref false in
  let update out v =
    if value st out <> v then begin
      Hashtbl.replace st.values out v;
      changed := true
    end
  in
  List.iter
    (fun el ->
      match el with
      | Ccomb { out; cell; pins } -> update out (eval_cell st cell pins)
      | Clatch { inst; out; d; g; transparent_high } ->
          let gv = value st g in
          let transparent = if transparent_high then gv else not gv in
          let v =
            if transparent then begin
              let dv = value st d in
              Hashtbl.replace st.latch_store inst dv;
              dv
            end
            else
              match Hashtbl.find_opt st.latch_store inst with
              | Some held -> held
              | None -> value st out
          in
          update out v
      | Ctri_group { out; drivers } ->
          let enabled =
            List.filter_map
              (fun (d, en) -> if value st en then Some (value st d) else None)
              drivers
          in
          (match enabled with
           | [] -> ()  (* bus keeper: retain previous value *)
           | vs -> update out (List.exists Fun.id vs))
      | Cff _ -> ())
    st.elements;
  !changed

let settle st =
  let limit = List.length st.elements + 8 in
  let rec loop n =
    if comb_pass st then
      if n >= limit then fail "netlist %s failed to settle" st.nl.Netlist.name
      else loop (n + 1)
  in
  loop 0

let update_registers st =
  let regs =
    List.filter_map
      (fun el -> match el with Cff f -> Some f | _ -> None)
      st.elements
  in
  let rounds = List.length regs + 2 in
  let rec loop n =
    settle st;
    let updates =
      List.map
        (fun (f : _) ->
          let clk = value st f.ck in
          let prev_clk =
            match Hashtbl.find_opt st.prev_clock f.inst with
            | Some v -> v
            | None -> clk
          in
          let fired = (not prev_clk) && clk in
          let current = value st f.out in
          let forced =
            (* reset wins over set, matching the DFF_SR cell *)
            match f.r, f.s with
            | Some r, _ when value st r -> Some false
            | _, Some s when value st s -> Some true
            | _ -> None
          in
          let next =
            match forced with
            | Some v -> v
            | None -> if fired then value st f.d else current
          in
          (f.inst, f.out, clk, next, next <> current))
        regs
    in
    let any_change = List.exists (fun (_, _, _, _, c) -> c) updates in
    List.iter
      (fun (inst, out, clk, next, _) ->
        Hashtbl.replace st.prev_clock inst clk;
        Hashtbl.replace st.values out next)
      updates;
    if any_change && n < rounds then loop (n + 1) else settle st
  in
  loop 0

let step st inputs =
  List.iter
    (fun (n, v) ->
      if not (List.mem n st.nl.Netlist.inputs) then
        fail "Gate_sim.step: %s is not an input of %s" n st.nl.Netlist.name;
      Hashtbl.replace st.values n v)
    inputs;
  update_registers st

let outputs st = List.map (fun o -> (o, value st o)) st.nl.Netlist.outputs

let poke st net v = Hashtbl.replace st.values net v
