(* Equivalence checking between a flat IIF specification and a mapped
   netlist: both simulators start from the all-zero state, so driving
   identical input sequences must produce identical output sequences.

   For purely combinational designs the check enumerates input vectors
   exhaustively (up to a bound) instead of sampling. *)

open Icdb_iif

type result =
  | Equivalent
  | Mismatch of {
      step : int;
      inputs : (string * bool) list;
      expected : (string * bool) list;  (* from the IIF reference *)
      got : (string * bool) list;       (* from the netlist *)
    }

let is_combinational (flat : Flat.t) =
  List.for_all (fun eq -> not (Flat.is_sequential eq)) flat.Flat.fequations

let compare_step ref_sim gate_sim step inputs =
  Interp.step ref_sim inputs;
  Gate_sim.step gate_sim inputs;
  let expected = Interp.outputs ref_sim in
  let got = Gate_sim.outputs gate_sim in
  if expected = got then None else Some (Mismatch { step; inputs; expected; got })

(* Exhaustive combinational check; caps at 2^max_exhaustive inputs. *)
let max_exhaustive = 14

let check_combinational flat netlist =
  let inputs = flat.Flat.finputs in
  let n = List.length inputs in
  if n > max_exhaustive then invalid_arg "Equiv.check_combinational: too wide";
  let ref_sim = Interp.create flat in
  let gate_sim = Gate_sim.create netlist in
  let rec go v =
    if v >= 1 lsl n then Equivalent
    else
      let assignment =
        List.mapi (fun i name -> (name, (v lsr i) land 1 = 1)) inputs
      in
      match compare_step ref_sim gate_sim v assignment with
      | None -> go (v + 1)
      | Some m -> m
  in
  go 0

(* Randomized sequential check: drive random values on all inputs,
   toggling any plausible clock nets explicitly so edges occur. The
   sequence is deterministic in [seed]. *)
let check_sequential ?(steps = 200) ?(seed = 42) flat netlist =
  let rng = Random.State.make [| seed |] in
  let inputs = flat.Flat.finputs in
  let ref_sim = Interp.create flat in
  let gate_sim = Gate_sim.create netlist in
  let rec go step current =
    if step >= steps then Equivalent
    else begin
      (* flip a random subset of inputs each step *)
      let next =
        List.map
          (fun (n, v) ->
            if Random.State.int rng 100 < 40 then (n, not v) else (n, v))
          current
      in
      match compare_step ref_sim gate_sim step next with
      | None -> go (step + 1) next
      | Some m -> m
    end
  in
  go 0 (List.map (fun n -> (n, false)) inputs)

let check ?steps ?seed flat netlist =
  if is_combinational flat && List.length flat.Flat.finputs <= max_exhaustive
  then check_combinational flat netlist
  else check_sequential ?steps ?seed flat netlist

let result_to_string = function
  | Equivalent -> "equivalent"
  | Mismatch { step; inputs; expected; got } ->
      let show l =
        String.concat ", "
          (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n (Bool.to_int v)) l)
      in
      Printf.sprintf "mismatch at step %d\n  inputs: %s\n  spec:    %s\n  netlist: %s"
        step (show inputs) (show expected) (show got)
