(** Gate-level simulator over cell netlists (the VHDL-simulator role in
    the Figure 8 generation path).

    Cells evaluate through their library logic functions; flip-flops
    are rising-edge (the mapper inverts falling-edge clocks), latches
    hold when opaque, and tri-state groups resolve as wired-or with
    bus-keeper behaviour. Semantics mirror {!Icdb_iif.Interp} so the
    two can be compared step by step. *)

exception Sim_error of string

type t

val create : Icdb_netlist.Netlist.t -> t
(** @raise Sim_error on unknown cells or unconnected pins (lazily, at
    first evaluation for some conditions). *)

val step : t -> (string * bool) list -> unit
(** Apply input values, settle combinational logic and update
    registers (iterating for rippled clocks).
    @raise Sim_error if a named net is not an input, or on oscillating
    feedback. *)

val value : t -> string -> bool
(** Current value of a net ("$const0"/"$const1" read as constants). *)

val outputs : t -> (string * bool) list

val poke : t -> string -> bool -> unit
(** Force a net value. *)
