(* Event-driven timing simulation.

   Where {!Gate_sim} evaluates to a stable state (zero-delay), this
   simulator runs the netlist through real time: every cell contributes
   its library delay (the §4.4.1 X/Y/Z model), transitions propagate as
   events on an event wheel, and inertial filtering cancels pulses
   shorter than a gate's delay. It measures what the static analyzer
   only bounds — actual settling time after an input vector — and
   counts glitches, which the hazard-free STA cannot see.

   Two-valued; state elements start at 0 like the other simulators. *)

open Icdb_netlist
open Icdb_logic

exception Event_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Event_error s)) fmt

type ff_info = {
  ff_inst : string;
  ff_out : string;
  ff_d : string;
  ff_ck : string;
  ff_s : string option;
  ff_r : string option;
}

type element =
  | Ecomb of { out : string; cell : Celllib.t; inst : Netlist.instance }
  | Eff of ff_info * Netlist.instance
  | Elatch of { out : string; d : string; g : string; transparent_high : bool;
                inst : Netlist.instance }
  | Etri of { out : string; drivers : (string * string) list;
              inst : Netlist.instance }

type t = {
  nl : Netlist.t;
  elements : element list;
  values : (string, bool) Hashtbl.t;
  readers : (string, element list) Hashtbl.t;  (* net -> elements reading it *)
  delays : (string, float) Hashtbl.t;          (* element out -> gate delay *)
  pending : (string, float * bool) Hashtbl.t;  (* net -> scheduled event *)
  mutable queue : (float * string * bool) list;  (* sorted by time *)
  mutable now : float;
  mutable transitions : int;
  latch_store : (string, bool) Hashtbl.t;
  prev_clock : (string, bool) Hashtbl.t;
}

let value st net =
  if net = "$const1" then true
  else if net = "$const0" then false
  else match Hashtbl.find_opt st.values net with Some v -> v | None -> false

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let element_out = function
  | Ecomb { out; _ } | Elatch { out; _ } | Etri { out; _ } -> out
  | Eff (f, _) -> f.ff_out

let build (nl : Netlist.t) =
  let cells = Hashtbl.create 64 in
  List.iter
    (fun (i : Netlist.instance) ->
      match Celllib.find i.cell with
      | Some c -> Hashtbl.replace cells i.inst_name c
      | None -> fail "unknown cell %s" i.cell)
    nl.instances;
  let is_output_pin = Celllib.is_output_pin in
  let fanouts = Netlist.fanouts nl ~is_output_pin in
  (* per-net load for the delay model *)
  let load_of net =
    (match Hashtbl.find_opt fanouts net with
     | None -> 0.0
     | Some rs ->
         List.fold_left
           (fun acc ((i : Netlist.instance), _) ->
             let c = Hashtbl.find cells i.inst_name in
             acc +. Celllib.sized_input_load c i.size)
           0.0 rs)
  in
  let fanout_of net =
    match Hashtbl.find_opt fanouts net with
    | Some rs -> List.length rs
    | None -> if List.mem net nl.outputs then 1 else 0
  in
  let tri_groups = Hashtbl.create 8 in
  let elements = ref [] in
  List.iter
    (fun (inst : Netlist.instance) ->
      let cell = Hashtbl.find cells inst.inst_name in
      let pin p = Netlist.pin_net_exn inst p in
      match cell.Celllib.kind with
      | Celllib.Comb ->
          elements := Ecomb { out = pin cell.Celllib.output; cell; inst } :: !elements
      | Celllib.Ff { has_set; has_reset } ->
          elements :=
            Eff
              ({ ff_inst = inst.inst_name;
                 ff_out = pin "Q";
                 ff_d = pin "D";
                 ff_ck = pin "CK";
                 ff_s = (if has_set then Some (pin "S") else None);
                 ff_r = (if has_reset then Some (pin "R") else None) },
               inst)
            :: !elements
      | Celllib.Latch_cell { transparent_high } ->
          elements :=
            Elatch { out = pin "Q"; d = pin "D"; g = pin "G";
                     transparent_high; inst }
            :: !elements
      | Celllib.Tri_cell ->
          let out = pin "Y" in
          let prev =
            match Hashtbl.find_opt tri_groups out with Some l -> l | None -> []
          in
          Hashtbl.replace tri_groups out (((pin "A", pin "EN"), inst) :: prev))
    nl.instances;
  let tri_elements =
    Hashtbl.fold
      (fun out contribs acc ->
        let drivers = List.rev_map fst contribs in
        let (_, inst) = List.hd contribs in
        Etri { out; drivers; inst } :: acc)
      tri_groups []
  in
  let elements = List.rev !elements @ tri_elements in
  (* element delay under its output's static load *)
  let delays = Hashtbl.create 64 in
  List.iter
    (fun el ->
      let out = element_out el in
      let inst =
        match el with
        | Ecomb { inst; _ } | Eff (_, inst) | Elatch { inst; _ }
        | Etri { inst; _ } -> inst
      in
      let cell = Hashtbl.find cells inst.Netlist.inst_name in
      let d =
        Celllib.delay cell ~size:inst.Netlist.size ~load:(load_of out)
          ~fanout:(fanout_of out)
      in
      Hashtbl.replace delays out (Float.max d 0.01))
    elements;
  (* reader index: net -> elements with that net as an input *)
  let readers = Hashtbl.create 64 in
  let add_reader net el =
    let prev = match Hashtbl.find_opt readers net with Some l -> l | None -> [] in
    Hashtbl.replace readers net (el :: prev)
  in
  List.iter
    (fun el ->
      let ins =
        match el with
        | Ecomb { inst; cell; _ } ->
            List.filter_map
              (fun (p, n) -> if p = cell.Celllib.output then None else Some n)
              inst.Netlist.conns
        | Eff (f, _) ->
            [ f.ff_d; f.ff_ck ] @ Option.to_list f.ff_s @ Option.to_list f.ff_r
        | Elatch { d; g; _ } -> [ d; g ]
        | Etri { drivers; _ } ->
            List.concat_map (fun (d, en) -> [ d; en ]) drivers
      in
      List.iter (fun n -> add_reader n el) ins)
    elements;
  (elements, readers, delays)

let eval_comb st (cell : Celllib.t) (inst : Netlist.instance) =
  let lookup pin =
    match Netlist.pin_net inst pin with
    | Some n -> value st n
    | None -> fail "cell %s: pin %s unconnected" cell.Celllib.cname pin
  in
  let rec ev e =
    match e with
    | Icdb_iif.Flat.Fconst b -> b
    | Icdb_iif.Flat.Fnet p -> lookup p
    | Icdb_iif.Flat.Fnot e -> not (ev e)
    | Icdb_iif.Flat.Fand es -> List.for_all ev es
    | Icdb_iif.Flat.For_ es -> List.exists ev es
    | Icdb_iif.Flat.Fxor (a, b) -> ev a <> ev b
    | Icdb_iif.Flat.Fxnor (a, b) -> ev a = ev b
    | Icdb_iif.Flat.Fbuf e | Icdb_iif.Flat.Fschmitt e
    | Icdb_iif.Flat.Fdelay (e, _) -> ev e
    | Icdb_iif.Flat.Ftri _ | Icdb_iif.Flat.Fwor _ ->
        fail "interface operator in cell function"
  in
  match cell.Celllib.logic with
  | Some f -> ev f
  | None -> fail "cell %s has no function" cell.Celllib.cname


let create nl =
  let elements, readers, delays = build nl in
  let st =
    { nl;
      elements;
      values = Hashtbl.create 128;
      readers;
      delays;
      pending = Hashtbl.create 32;
      queue = [];
      now = 0.0;
      transitions = 0;
      latch_store = Hashtbl.create 16;
      prev_clock = Hashtbl.create 16 }
  in
  (* clocks start observed-low, consistent with the all-zero reset
     state, so the very first rising edge is a real edge *)
  List.iter
    (fun el ->
      match el with
      | Eff (f, _) -> Hashtbl.replace st.prev_clock f.ff_inst false
      | _ -> ())
    elements;
  (* zero-delay settle of the initial state: gates whose inputs never
     change must still start at their evaluated value (a NAND of two
     zeros is 1 at time 0, not 0) *)
  let changed = ref true in
  let guard = ref 0 in
  while !changed && !guard < List.length elements + 8 do
    changed := false;
    incr guard;
    List.iter
      (fun el ->
        match el with
        | Ecomb { out; cell; inst } ->
            let v = eval_comb st cell inst in
            if value st out <> v then begin
              Hashtbl.replace st.values out v;
              changed := true
            end
        | Elatch { out; d; g; transparent_high; _ } ->
            let gv = value st g in
            let transparent = if transparent_high then gv else not gv in
            if transparent then begin
              let dv = value st d in
              Hashtbl.replace st.latch_store out dv;
              if value st out <> dv then begin
                Hashtbl.replace st.values out dv;
                changed := true
              end
            end
        | Etri { out; drivers; _ } ->
            let enabled =
              List.filter_map
                (fun (d, en) -> if value st en then Some (value st d) else None)
                drivers
            in
            (match enabled with
             | [] -> ()
             | vs ->
                 let v = List.exists Fun.id vs in
                 if value st out <> v then begin
                   Hashtbl.replace st.values out v;
                   changed := true
                 end)
        | Eff _ -> ())
      elements
  done;
  st

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

(* Inertial scheduling: at most one pending transition per net; a new
   target value replaces it (cancelling sub-delay pulses). *)
let schedule st net target time =
  let current = value st net in
  match Hashtbl.find_opt st.pending net with
  | Some (_, pv) when pv = target -> ()      (* already heading there *)
  | Some _ ->
      Hashtbl.remove st.pending net;          (* cancel the stale pulse *)
      if target <> current then begin
        Hashtbl.replace st.pending net (time, target);
        st.queue <- List.merge compare [ (time, net, target) ] st.queue
      end
  | None ->
      if target <> current then begin
        Hashtbl.replace st.pending net (time, target);
        st.queue <- List.merge compare [ (time, net, target) ] st.queue
      end

(* React to a change on [net]: re-evaluate every reader. *)
let excite st net =
  match Hashtbl.find_opt st.readers net with
  | None -> ()
  | Some els ->
      List.iter
        (fun el ->
          match el with
          | Ecomb { out; cell; inst } ->
              let target = eval_comb st cell inst in
              schedule st out target (st.now +. Hashtbl.find st.delays out)
          | Elatch { out; d; g; transparent_high; _ } ->
              let gv = value st g in
              let transparent = if transparent_high then gv else not gv in
              if transparent then begin
                let dv = value st d in
                Hashtbl.replace st.latch_store out dv;
                schedule st out dv (st.now +. Hashtbl.find st.delays out)
              end
          | Etri { out; drivers; _ } ->
              let enabled =
                List.filter_map
                  (fun (d, en) -> if value st en then Some (value st d) else None)
                  drivers
              in
              (match enabled with
               | [] -> ()  (* bus keeper *)
               | vs ->
                   schedule st out (List.exists Fun.id vs)
                     (st.now +. Hashtbl.find st.delays out))
          | Eff (f, _) ->
              let clk = value st f.ff_ck in
              let prev =
                match Hashtbl.find_opt st.prev_clock f.ff_inst with
                | Some p -> p
                | None -> clk
              in
              let forced =
                match f.ff_r, f.ff_s with
                | Some r, _ when value st r -> Some false
                | _, Some s when value st s -> Some true
                | _ -> None
              in
              (match forced with
               | Some v ->
                   schedule st f.ff_out v
                     (st.now +. Hashtbl.find st.delays f.ff_out)
               | None ->
                   if net = f.ff_ck && (not prev) && clk then
                     (* rising edge: sample D as of now *)
                     schedule st f.ff_out (value st f.ff_d)
                       (st.now +. Hashtbl.find st.delays f.ff_out));
              if net = f.ff_ck then
                Hashtbl.replace st.prev_clock f.ff_inst clk)
        els

let max_events = 200000

(* Run the wheel until quiescence; returns the time of the last event. *)
let run st =
  let guard = ref 0 in
  let last = ref st.now in
  let rec loop () =
    match st.queue with
    | [] -> ()
    | (time, net, v) :: rest ->
        st.queue <- rest;
        (match Hashtbl.find_opt st.pending net with
         | Some (pt, pv) when pt = time && pv = v ->
             Hashtbl.remove st.pending net;
             incr guard;
             if !guard > max_events then
               fail "event limit exceeded (oscillation in %s?)" st.nl.Netlist.name;
             st.now <- time;
             last := time;
             if value st net <> v then begin
               Hashtbl.replace st.values net v;
               st.transitions <- st.transitions + 1;
               excite st net
             end
         | _ -> ());  (* stale entry: lazily discarded *)
        loop ()
  in
  loop ();
  !last

(* Apply an input vector at the current time and run to quiescence.
   Returns (settling delay, transitions caused). *)
let apply st inputs =
  let t0 = st.now in
  let trans0 = st.transitions in
  List.iter
    (fun (n, v) ->
      if not (List.mem n st.nl.Netlist.inputs) then
        fail "Event_sim.apply: %s is not an input" n;
      if value st n <> v then begin
        Hashtbl.replace st.values n v;
        st.transitions <- st.transitions + 1;
        excite st n
      end)
    inputs;
  let t_end = run st in
  (* advance time so successive vectors do not overlap *)
  st.now <- Float.max st.now t_end;
  (t_end -. t0, st.transitions - trans0)

let outputs st = List.map (fun o -> (o, value st o)) st.nl.Netlist.outputs

let transitions st = st.transitions

let now st = st.now
