(** Netlist statistics: levelization and structure summaries used by
    reports and by tools deciding whether a component needs buffering
    or re-synthesis. *)

exception Stats_error of string

type t = {
  gates : int;
  nets : int;
  max_fanout : int;
  avg_fanout : float;
  logic_depth : int;  (** gate stages on the longest combinational path *)
  sequential : int;
  fanout_histogram : (int * int) list;  (** fanout -> net count *)
}

val analyze :
  Netlist.t ->
  is_output_pin:(string -> string -> bool) ->
  is_sequential:(string -> bool) ->
  t
(** [is_sequential cell] marks instances treated as path endpoints.
    @raise Stats_error on combinational cycles. *)

val to_string : t -> string
