(* Gate-level netlists: the output of technology mapping and the input
   to sizing, timing analysis, simulation and layout.

   A netlist instantiates cells by name; cell semantics (function,
   delay, geometry) live in the technology library, keeping this module
   dependency-free. *)

type instance = {
  inst_name : string;
  cell : string;                  (* cell-library name, e.g. "NAND2" *)
  size : float;                   (* drive-strength multiplier, >= 1.0 *)
  conns : (string * string) list; (* cell pin -> net *)
}

type t = {
  name : string;
  inputs : string list;
  outputs : string list;
  instances : instance list;
}

let pin_net inst pin =
  match List.assoc_opt pin inst.conns with
  | Some n -> Some n
  | None -> None

let pin_net_exn inst pin =
  match pin_net inst pin with
  | Some n -> n
  | None ->
      invalid_arg
        (Printf.sprintf "instance %s (%s) has no pin %s" inst.inst_name
           inst.cell pin)

(* All nets mentioned anywhere, inputs and outputs first, no dups. *)
let nets t =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      out := n :: !out
    end
  in
  List.iter add t.inputs;
  List.iter add t.outputs;
  List.iter (fun i -> List.iter (fun (_, n) -> add n) i.conns) t.instances;
  List.rev !out

let instance_count t = List.length t.instances

let cell_histogram t =
  let h = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let c = match Hashtbl.find_opt h i.cell with Some n -> n | None -> 0 in
      Hashtbl.replace h i.cell (c + 1))
    t.instances;
  Hashtbl.fold (fun cell n acc -> (cell, n) :: acc) h []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Map net -> instances reading it through which pins.
   [driver_pins] tells which pins of a cell are outputs. *)
let fanouts t ~is_output_pin =
  let h = Hashtbl.create 64 in
  List.iter
    (fun i ->
      List.iter
        (fun (pin, net) ->
          if not (is_output_pin i.cell pin) then begin
            let prev =
              match Hashtbl.find_opt h net with Some l -> l | None -> []
            in
            Hashtbl.replace h net ((i, pin) :: prev)
          end)
        i.conns)
    t.instances;
  h

(* Map net -> driving instance/pin. Primary inputs have no driver. *)
let drivers t ~is_output_pin =
  let h = Hashtbl.create 64 in
  List.iter
    (fun i ->
      List.iter
        (fun (pin, net) ->
          if is_output_pin i.cell pin then begin
            let prev =
              match Hashtbl.find_opt h net with Some l -> l | None -> []
            in
            Hashtbl.replace h net ((i, pin) :: prev)
          end)
        i.conns)
    t.instances;
  h

let rename_instances t prefix =
  { t with
    instances =
      List.map
        (fun i -> { i with inst_name = prefix ^ i.inst_name })
        t.instances }
