(* Netlist statistics: levelization and fanout/structure summaries used
   by reports and by tools deciding whether a component needs
   buffering or re-synthesis. *)

exception Stats_error of string

type t = {
  gates : int;
  nets : int;
  max_fanout : int;
  avg_fanout : float;
  logic_depth : int;       (* gate stages on the longest comb path *)
  sequential : int;        (* instances with no combinational function *)
  fanout_histogram : (int * int) list;  (* fanout -> net count *)
}

(* [analyze nl ~is_output_pin ~is_sequential] computes the summary.
   [is_sequential cell] marks instances treated as path endpoints. *)
let analyze (nl : Netlist.t) ~is_output_pin ~is_sequential =
  let fanouts = Netlist.fanouts nl ~is_output_pin in
  let drivers = Netlist.drivers nl ~is_output_pin in
  let nets = Netlist.nets nl in
  let fanout_of n =
    match Hashtbl.find_opt fanouts n with
    | Some l -> List.length l
    | None -> 0
  in
  let max_fanout = List.fold_left (fun a n -> max a (fanout_of n)) 0 nets in
  let total_fanout = List.fold_left (fun a n -> a + fanout_of n) 0 nets in
  let histo = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let f = fanout_of n in
      Hashtbl.replace histo f
        (1 + match Hashtbl.find_opt histo f with Some c -> c | None -> 0))
    nets;
  let fanout_histogram =
    Hashtbl.fold (fun f c acc -> (f, c) :: acc) histo []
    |> List.sort compare
  in
  (* levelization: depth of each net = gate stages from inputs or
     sequential outputs *)
  let memo = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 16 in
  let rec depth net =
    match Hashtbl.find_opt memo net with
    | Some d -> d
    | None ->
        if Hashtbl.mem on_stack net then
          raise (Stats_error ("combinational cycle through " ^ net));
        Hashtbl.replace on_stack net ();
        let d =
          match Hashtbl.find_opt drivers net with
          | None | Some [] -> 0
          | Some ((inst, _) :: _) ->
              if is_sequential inst.Netlist.cell then 0
              else
                1
                + List.fold_left
                    (fun acc (pin, n) ->
                      if is_output_pin inst.Netlist.cell pin then acc
                      else max acc (depth n))
                    0 inst.Netlist.conns
        in
        Hashtbl.remove on_stack net;
        Hashtbl.replace memo net d;
        d
  in
  (* endpoints: outputs and sequential instance inputs *)
  let logic_depth = ref 0 in
  List.iter (fun o -> logic_depth := max !logic_depth (depth o)) nl.Netlist.outputs;
  List.iter
    (fun (inst : Netlist.instance) ->
      if is_sequential inst.cell then
        List.iter
          (fun (pin, n) ->
            if not (is_output_pin inst.cell pin) then
              logic_depth := max !logic_depth (depth n))
          inst.conns)
    nl.Netlist.instances;
  let sequential =
    List.length
      (List.filter (fun (i : Netlist.instance) -> is_sequential i.cell)
         nl.Netlist.instances)
  in
  { gates = Netlist.instance_count nl;
    nets = List.length nets;
    max_fanout;
    avg_fanout =
      (if nets = [] then 0.0
       else float_of_int total_fanout /. float_of_int (List.length nets));
    logic_depth = !logic_depth;
    sequential;
    fanout_histogram }

let to_string s =
  Printf.sprintf
    "gates %d  nets %d  depth %d  seq %d  max-fanout %d  avg-fanout %.2f"
    s.gates s.nets s.logic_depth s.sequential s.max_fanout s.avg_fanout
