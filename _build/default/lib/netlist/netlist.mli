(** Gate-level netlists: the output of technology mapping and the input
    to sizing, timing analysis, simulation and layout.

    A netlist instantiates cells by name; cell semantics (function,
    delay, geometry) live in the technology library, keeping this
    module dependency-free. *)

type instance = {
  inst_name : string;
  cell : string;                   (** cell-library name, e.g. "NAND2" *)
  size : float;                    (** drive-strength multiplier, >= 1 *)
  conns : (string * string) list;  (** cell pin -> net *)
}

type t = {
  name : string;
  inputs : string list;
  outputs : string list;
  instances : instance list;
}

val pin_net : instance -> string -> string option
(** Net connected to a pin. *)

val pin_net_exn : instance -> string -> string
(** @raise Invalid_argument when the pin is unconnected. *)

val nets : t -> string list
(** Every net, inputs and outputs first, no duplicates. *)

val instance_count : t -> int

val cell_histogram : t -> (string * int) list
(** Instance count per cell name, sorted by name. *)

val fanouts :
  t ->
  is_output_pin:(string -> string -> bool) ->
  (string, (instance * string) list) Hashtbl.t
(** Net -> reading (instance, pin) pairs. [is_output_pin cell pin]
    distinguishes cell outputs. *)

val drivers :
  t ->
  is_output_pin:(string -> string -> bool) ->
  (string, (instance * string) list) Hashtbl.t
(** Net -> driving (instance, pin) pairs (several for tri-state buses). *)

val rename_instances : t -> string -> t
(** Prefix every instance name (used when flattening clusters). *)
