lib/netlist/vhdl.ml: Buffer List Netlist Printf String
