lib/netlist/vhdl.mli: Netlist
