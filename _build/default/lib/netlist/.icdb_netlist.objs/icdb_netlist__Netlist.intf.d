lib/netlist/netlist.mli: Hashtbl
