lib/netlist/stats.ml: Hashtbl List Netlist Printf
