lib/netlist/netlist.ml: Hashtbl List Printf String
