lib/netlist/stats.mli: Netlist
