(* Design exploration over counter implementations (the Figure 5
   story): a behavioral-synthesis tool needs an up-counter; ICDB offers
   every architecture/attribute combination with delay and area, so the
   tool can pick per its constraints instead of settling for one fixed
   part.

   Run with: dune exec examples/counter_explorer.exe *)

open Icdb
open Icdb_timing

let variants =
  [ ("ripple", [ ("type", 1); ("load", 0); ("enable", 0); ("up_or_down", 1) ]);
    ("sync up", [ ("type", 2); ("load", 0); ("enable", 0); ("up_or_down", 1) ]);
    ("sync up + enable",
     [ ("type", 2); ("load", 0); ("enable", 1); ("up_or_down", 1) ]);
    ("sync up/down", [ ("type", 2); ("load", 0); ("enable", 0); ("up_or_down", 3) ]);
    ("sync up/down + parallel load",
     [ ("type", 2); ("load", 1); ("enable", 1); ("up_or_down", 3) ]) ]

let () =
  let server = Server.create () in
  Printf.printf "%-30s %10s %10s %10s %8s\n" "5-bit counter implementation"
    "WD(Q[4])" "CW (ns)" "area um2" "gates";
  print_endline (String.make 74 '-');
  let results =
    List.map
      (fun (name, attrs) ->
        let inst =
          Server.request_component server
            (Spec.make
               (Spec.From_component
                  { component = "counter";
                    attributes = ("size", 5) :: attrs;
                    functions = [ Icdb_genus.Func.INC ] }))
        in
        let wd = List.assoc "Q[4]" inst.Instance.report.Sta.output_delays in
        Printf.printf "%-30s %10.1f %10.1f %10.0f %8d\n" name wd
          inst.Instance.report.Sta.clock_width
          (Instance.best_area inst)
          (Instance.gate_count inst);
        (name, wd, inst))
      variants
  in
  (* A scheduler with a 15 ns Q-settling budget picks the cheapest
     implementation meeting it. *)
  let budget = 15.0 in
  print_newline ();
  let fitting =
    List.filter (fun (_, wd, _) -> wd <= budget) results
    |> List.sort (fun (_, _, a) (_, _, b) ->
           compare (Instance.best_area a) (Instance.best_area b))
  in
  (match fitting with
   | (name, wd, inst) :: _ ->
       Printf.printf
         "under a %.0f ns settling budget the tool binds: %s (%.1f ns, %.0f um2)\n"
         budget name wd (Instance.best_area inst)
   | [] -> Printf.printf "no implementation meets %.0f ns\n" budget);
  (* And with no budget at all, the smallest part wins. *)
  let smallest =
    List.sort
      (fun (_, _, a) (_, _, b) ->
        compare (Instance.best_area a) (Instance.best_area b))
      results
  in
  match smallest with
  | (name, _, inst) :: _ ->
      Printf.printf "with no timing budget the smallest is: %s (%.0f um2)\n"
        name (Instance.best_area inst)
  | [] -> ()
