(* IIF composition: building an adder/subtractor out of the library's
   adder (Appendix A example 3), generating it, and simulating the
   resulting gate netlist against arithmetic.

   Run with: dune exec examples/adder_subtractor.exe *)

open Icdb
open Icdb_sim

let () =
  let server = Server.create () in
  let inst =
    Server.request_component server
      (Spec.make ~name_hint:"addsub8"
         (Spec.From_component
            { component = "adder_subtractor";
              attributes = [ ("size", 8) ];
              functions = [ Icdb_genus.Func.ADD; Icdb_genus.Func.SUB ] }))
  in
  Printf.printf "generated %s: %d gates\n" inst.Instance.id
    (Instance.gate_count inst);
  print_endline "-- connection information --";
  print_endline (Instance.connect_string inst);
  print_endline "";

  (* Drive the generated netlist through the gate-level simulator. *)
  let sim = Gate_sim.create inst.Instance.netlist in
  let drive_bus base width x =
    List.init width (fun i ->
        (Printf.sprintf "%s[%d]" base i, (x lsr i) land 1 = 1))
  in
  let read_bus base width =
    let v = ref 0 in
    for i = width - 1 downto 0 do
      v :=
        (!v lsl 1)
        lor
        if Gate_sim.value sim (Printf.sprintf "%s[%d]" base i) then 1 else 0
    done;
    !v
  in
  let run a b sub =
    Gate_sim.step sim
      (drive_bus "A" 8 a @ drive_bus "B" 8 b @ [ ("ADDSUB", sub) ]);
    read_bus "O" 8
  in
  print_endline "-- simulating the generated netlist --";
  List.iter
    (fun (a, b) ->
      let sum = run a b false in
      let diff = run a b true in
      Printf.printf "  %3d + %3d = %3d    %3d - %3d = %3d (mod 256)\n" a b sum
        a b diff;
      assert (sum = (a + b) land 255);
      assert (diff = (a - b) land 255))
    [ (12, 5); (200, 100); (255, 1); (0, 1); (77, 77) ];
  print_endline "all checks passed";

  (* The MILO-format flat IIF the optimizer consumed: *)
  match inst.Instance.flat with
  | Some flat ->
      print_endline "\n-- first lines of the expanded (flat) IIF --";
      let lines = String.split_on_char '\n' (Icdb_iif.Flat.to_milo flat) in
      List.iteri (fun i l -> if i < 8 then print_endline ("  " ^ l)) lines
  | None -> ()
