examples/knowledge_server.mli:
