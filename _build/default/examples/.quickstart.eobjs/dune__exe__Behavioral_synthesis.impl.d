examples/behavioral_synthesis.ml: Controller Datapath Dfg Floorplan Icdb Icdb_hls Icdb_layout Icdb_timing Instance List Printf Schedule Server String
