examples/adder_subtractor.ml: Gate_sim Icdb Icdb_genus Icdb_iif Icdb_sim Instance List Printf Server Spec String
