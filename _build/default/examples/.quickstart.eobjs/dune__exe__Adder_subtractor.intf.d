examples/adder_subtractor.mli:
