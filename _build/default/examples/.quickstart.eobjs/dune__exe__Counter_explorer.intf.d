examples/counter_explorer.mli:
