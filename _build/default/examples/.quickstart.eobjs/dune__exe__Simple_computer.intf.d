examples/simple_computer.mli:
