examples/simple_computer.ml: Floorplan Icdb Icdb_layout Instance List Printf Server Shape Spec String
