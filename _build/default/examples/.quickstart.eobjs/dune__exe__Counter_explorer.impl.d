examples/counter_explorer.ml: Icdb Icdb_genus Icdb_timing Instance List Printf Server Spec Sta String
