examples/control_logic.ml: Icdb Icdb_layout Icdb_timing Instance List Printf Server Sizing Spec
