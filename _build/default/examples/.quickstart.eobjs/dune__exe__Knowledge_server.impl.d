examples/knowledge_server.ml: Generator Icdb Icdb_logic Icdb_netlist Icdb_sim Icdb_timing Instance List Netlist Printf Server Spec String
