examples/behavioral_synthesis.mli:
