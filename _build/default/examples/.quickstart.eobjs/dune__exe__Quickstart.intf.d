examples/quickstart.mli:
