examples/quickstart.ml: Exec Icdb Icdb_cql Printf Server String
