examples/control_logic.mli:
