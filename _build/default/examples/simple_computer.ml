(* The simple computer of Figure 13: datapath components and generated
   control logic are floorplanned two ways — control placed as a
   tall/thin column on the left, or as a short/wide row at the bottom —
   and the resulting chip areas and aspect ratios compared.

   Run with: dune exec examples/simple_computer.exe *)

open Icdb
open Icdb_layout

let control_iif =
  {|
NAME:CPU_CTRL;
INORDER: OP0, OP1, Z, CLK, RESET;
OUTORDER: ALU_C0, ALU_C1, ALU_C2, ACC_LD, PC_EN, MEM_RD, MEM_WR;
PIIFVARIABLE: S0, S1, N0, N1, FETCH, EXEC, WRITE;
{
  /* two-bit state counter: fetch -> exec -> write -> fetch */
  FETCH = !S0*!S1;
  EXEC  = S0*!S1;
  WRITE = !S0*S1;
  N0 = FETCH;
  N1 = EXEC*OP1;
  S0 = N0 @(~r CLK) ~a(0/(RESET));
  S1 = N1 @(~r CLK) ~a(0/(RESET));

  /* decoded control signals */
  ALU_C2 = EXEC;
  ALU_C1 = EXEC*OP1*Z;
  ALU_C0 = EXEC*OP0;
  ACC_LD = EXEC;
  PC_EN  = FETCH + WRITE*!Z;
  MEM_RD = FETCH;
  MEM_WR = WRITE*OP0;
}
|}

let request server ?name_hint source = Server.request_component server (Spec.make ?name_hint source)

let comp server name attrs =
  request server
    (Spec.From_component { component = name; attributes = attrs; functions = [] })

let () =
  let server = Server.create () in
  (* Datapath: 8-bit ALU, accumulator, operand register, operand mux,
     and a program counter built from the counter component. *)
  let alu = comp server "alu" [ ("size", 8) ] in
  let acc = comp server "register" [ ("size", 8) ] in
  let opreg = comp server "register" [ ("size", 8) ] in
  let mux = comp server "mux_scl" [ ("size", 8) ] in
  let pc =
    comp server "counter"
      [ ("size", 8); ("type", 2); ("load", 1); ("enable", 1); ("up_or_down", 1) ]
  in
  let ctrl = request server ~name_hint:"cpu_ctrl" (Spec.From_iif control_iif) in
  Printf.printf "components generated: %s\n\n"
    (String.concat ", "
       (List.map
          (fun i -> Printf.sprintf "%s(%d gates)" i.Instance.id (Instance.gate_count i))
          [ alu; acc; opreg; mux; pc; ctrl ]));

  let block name (i : Instance.t) =
    { Floorplan.bname = name; bshapes = i.Instance.shape }
  in
  let datapath_blocks =
    [ block "alu" alu; block "acc" acc; block "opreg" opreg;
      block "mux" mux; block "pc" pc ]
  in
  let datapath = Floorplan.auto datapath_blocks in

  (* control shapes, constrained by intended placement *)
  let ctrl_shapes = ctrl.Instance.shape in
  let tall =
    List.filter (fun a -> a.Shape.alt_width <= a.Shape.alt_height) ctrl_shapes
  in
  let wide =
    List.filter (fun a -> a.Shape.alt_width >= a.Shape.alt_height) ctrl_shapes
  in
  let ctrl_block shapes =
    Floorplan.of_block { Floorplan.bname = "control"; bshapes = shapes }
  in
  let pick shapes fallback = if shapes = [] then fallback else shapes in

  (* Variant 1: control column on the left of the datapath. *)
  let left =
    Floorplan.best ~aspect:(Some 1.0)
      (Floorplan.beside (ctrl_block (pick tall ctrl_shapes)) datapath)
  in
  (* Variant 2: control row under the datapath. *)
  let bottom =
    Floorplan.best ~aspect:(Some 2.0)
      (Floorplan.above datapath (ctrl_block (pick wide ctrl_shapes)))
  in

  let show name (r : Floorplan.result) =
    Printf.printf "%s: %.0fum x %.0fum = %.0f um2 (aspect %.2f)\n" name
      r.Floorplan.rwidth r.Floorplan.rheight r.Floorplan.rarea
      (r.Floorplan.rwidth /. r.Floorplan.rheight);
    List.iter
      (fun p ->
        Printf.printf "    %-8s at (%6.0f,%6.0f)  %5.0f x %5.0f  (%d strips)\n"
          p.Floorplan.pname p.Floorplan.px p.Floorplan.py p.Floorplan.pwidth
          p.Floorplan.pheight p.Floorplan.pstrips)
      r.Floorplan.rplacements
  in
  show "control at LEFT  " left;
  print_newline ();
  show "control at BOTTOM" bottom;
  print_newline ();
  let better, worse, b, w =
    if left.Floorplan.rarea <= bottom.Floorplan.rarea then
      ("left", "bottom", left, bottom)
    else ("bottom", "left", bottom, left)
  in
  Printf.printf
    "the %s placement wins: %.0f vs %.0f um2 (%.0f%% of the %s variant)\n"
    better b.Floorplan.rarea w.Floorplan.rarea
    (100.0 *. b.Floorplan.rarea /. w.Floorplan.rarea)
    worse;

  (* Emit the CIF of each component at the strip count the winning
     floorplan chose. *)
  let by_id =
    [ ("alu", alu); ("acc", acc); ("opreg", opreg); ("mux", mux); ("pc", pc);
      ("control", ctrl) ]
  in
  List.iter
    (fun p ->
      match List.assoc_opt p.Floorplan.pname by_id with
      | Some inst ->
          let alt =
            List.find_opt
              (fun a -> a.Shape.alt_strips = p.Floorplan.pstrips)
              inst.Instance.shape
          in
          let alternative =
            match alt with Some a -> a.Shape.alt_index | None -> 0
          in
          let _, _, file =
            Server.request_layout server inst.Instance.id ~alternative ()
          in
          Printf.printf "  %s layout -> %s\n" p.Floorplan.pname file
      | None -> ())
    b.Floorplan.rplacements
