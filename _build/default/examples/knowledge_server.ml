(* The knowledge-acquisition side of ICDB (§2.2, §4.2): insert a new
   parameterized component implementation, register a custom component
   generator, compare generators, and run the four-valued
   initialization analysis on the result.

   Run with: dune exec examples/knowledge_server.exe *)

open Icdb
open Icdb_netlist

(* A component the stock catalog lacks: a Gray-code counter. The next
   state is binary-count + binary-to-Gray conversion, so consecutive
   outputs differ in one bit — popular for async FIFO pointers. *)
let gray_counter_iif =
  {|
NAME:GRAY_COUNTER;
FUNCTIONS: INC, COUNTER;
PARAMETER: size;
INORDER: CLK, RESET;
OUTORDER: G[size];
PIIFVARIABLE: B[size], C[size+1], BN[size];
VARIABLE: i;
{
  /* internal binary counter */
  C[0] = 1;
  #for(i=0;i<size;i++)
  {
    C[i+1] = C[i]*B[i];
    BN[i] = B[i] (+) C[i];
    B[i] = BN[i] @(~r CLK) ~a(0/(RESET));
  }
  /* binary-to-Gray on the way out */
  #for(i=0;i<size-1;i++)
    G[i] = B[i] (+) B[i+1];
  G[size-1] = B[size-1];
}
|}

let () =
  let server = Server.create () in

  (* 1. knowledge acquisition: teach ICDB the new implementation *)
  ignore (Server.insert_implementation server "GRAY_COUNTER" gray_counter_iif);
  Printf.printf "inserted implementation GRAY_COUNTER (stored in %s)\n\n"
    (Server.workspace server);

  (* 2. generate it through both built-in generators *)
  let request generator =
    Server.request_component server
      (Spec.make ~generator
         (Spec.From_implementation
            { implementation = "GRAY_COUNTER"; params = [ ("size", 4) ] }))
  in
  let via_milo = request "milo" in
  let via_direct = request "direct" in
  let transistors (i : Instance.t) =
    List.fold_left
      (fun acc (inst : Netlist.instance) ->
        match Icdb_logic.Celllib.find inst.cell with
        | Some c -> acc + c.Icdb_logic.Celllib.transistors
        | None -> acc)
      0 i.Instance.netlist.Netlist.instances
  in
  Printf.printf "generator comparison (both verified against the IIF spec):\n";
  List.iter
    (fun (g, i) ->
      Printf.printf "  %-7s %3d gates, %4d transistors, CW %.1f ns\n" g
        (Instance.gate_count i) (transistors i)
        i.Instance.report.Icdb_timing.Sta.clock_width)
    [ ("milo", via_milo); ("direct", via_direct) ];
  print_newline ();

  (* 3. register a custom generator through the knowledge server *)
  Server.insert_generator server
    { Generator.gen_name = "milo_fast";
      gen_description = "milo netlist pre-sized for speed";
      synthesize =
        (fun flat ->
          let nl = Generator.milo.Generator.synthesize flat in
          Icdb_timing.Sizing.size_to_constraints nl
            { Icdb_timing.Sizing.default_constraints with
              strategy = Icdb_timing.Sizing.Fastest }) };
  Printf.printf "registered generators: %s\n\n"
    (String.concat ", " (Server.generator_names server));
  let via_fast = request "milo_fast" in
  Printf.printf "milo_fast: CW %.1f ns (vs %.1f ns unsized)\n\n"
    via_fast.Instance.report.Icdb_timing.Sta.clock_width
    via_milo.Instance.report.Icdb_timing.Sta.clock_width;

  (* 4. initialization analysis: does RESET actually define the state? *)
  let nl = via_milo.Instance.netlist in
  let vec ~clk ~rst = [ ("CLK", clk); ("RESET", rst) ] in
  let _, after_reset =
    Icdb_sim.Xsim.initialization_check nl
      ~sequence:[ vec ~clk:false ~rst:true; vec ~clk:false ~rst:false;
                  vec ~clk:true ~rst:false ]
  in
  Printf.printf "undefined outputs after a RESET pulse: %s\n"
    (match after_reset with [] -> "(none - initializes cleanly)"
                          | l -> String.concat ", " l);
  let _, without_reset =
    Icdb_sim.Xsim.initialization_check nl
      ~sequence:[ vec ~clk:false ~rst:false; vec ~clk:true ~rst:false ]
  in
  Printf.printf "undefined outputs with RESET never asserted: %s\n"
    (match without_reset with [] -> "(none)" | l -> String.concat ", " l);

  (* 5. gray property on the real netlist: consecutive codes differ in
     exactly one bit *)
  let sim = Icdb_sim.Gate_sim.create nl in
  let read () =
    List.fold_left
      (fun acc i ->
        (acc * 2)
        + if Icdb_sim.Gate_sim.value sim (Printf.sprintf "G[%d]" (3 - i)) then 1 else 0)
      0 [ 0; 1; 2; 3 ]
  in
  Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", true) ];
  Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", false) ];
  let prev = ref (read ()) in
  let ok = ref true in
  for _ = 1 to 16 do
    Icdb_sim.Gate_sim.step sim [ ("CLK", true); ("RESET", false) ];
    Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", false) ];
    let now = read () in
    let diff = !prev lxor now in
    if diff land (diff - 1) <> 0 || diff = 0 then ok := false;
    prev := now
  done;
  Printf.printf "\ngray-code property over 16 clocks: %s\n"
    (if !ok then "holds (every step flips exactly one bit)" else "VIOLATED")
