(* The Figure 1 flow, end to end: a behavioral description (dataflow
   graph) is scheduled and bound using ICDB's component information,
   then the bound functional units are floorplanned from their shape
   functions — behavioral synthesis sitting on top of the component
   server, exactly as the paper draws it.

   Run with: dune exec examples/behavioral_synthesis.exe *)

open Icdb
open Icdb_hls
open Icdb_layout

let () =
  let server = Server.create () in
  let dfg = Dfg.diffeq in
  Printf.printf "behavioral input: %s (%d operations)\n\n" dfg.Dfg.dfg_name
    (List.length dfg.Dfg.ops);

  (* 1. explore clock periods with ICDB's delay figures *)
  print_endline "-- schedule exploration (ICDB delays) --";
  let candidates =
    List.map
      (fun clock -> Schedule.run server dfg ~clock ~pessimism:1.0)
      [ 20.0; 30.0; 60.0; 120.0 ]
  in
  List.iter
    (fun r ->
      Printf.printf
        "  clock %5.0f ns: %2d steps, latency %6.0f ns, %d units, %7.0f um2\n"
        r.Schedule.r_clock r.Schedule.r_steps r.Schedule.r_latency
        (List.length r.Schedule.r_units) r.Schedule.r_unit_area)
    candidates;

  (* pick the smallest-latency point, then the cheaper of any tie *)
  let best =
    List.fold_left
      (fun acc r ->
        if r.Schedule.r_latency < acc.Schedule.r_latency
           || (r.Schedule.r_latency = acc.Schedule.r_latency
               && r.Schedule.r_unit_area < acc.Schedule.r_unit_area)
        then r
        else acc)
      (List.hd candidates) candidates
  in
  Printf.printf "\nchosen: %.0f ns clock\n\n" best.Schedule.r_clock;
  print_string (Schedule.to_string best);

  (* 2. the same schedule if the tool only had a generic library *)
  let generic = Schedule.run server dfg ~clock:best.Schedule.r_clock ~pessimism:1.6 in
  Printf.printf
    "\nwith generic-library margins instead of ICDB numbers: %d steps \
     (latency %.0f ns, +%.0f%%)\n"
    generic.Schedule.r_steps generic.Schedule.r_latency
    (100.0
     *. (generic.Schedule.r_latency -. best.Schedule.r_latency)
     /. best.Schedule.r_latency);

  (* 3. synthesize the controller through ICDB (§3.2.2's control-logic
     request) *)
  let ctrl = Controller.generate server best in
  Printf.printf "\n-- generated controller (%s) --\n"
    ctrl.Controller.c_instance.Instance.id;
  Printf.printf "%d gates, CW %.1f ns, control signals: %s\n"
    (Instance.gate_count ctrl.Controller.c_instance)
    ctrl.Controller.c_instance.Instance.report.Icdb_timing.Sta.clock_width
    (String.concat " " ctrl.Controller.c_outputs);

  (* 4. wire the datapath RTL (muxes + registers) and estimate it as a
     VHDL cluster (§6.3) *)
  let dp = Datapath.generate server best in
  Printf.printf
    "\n-- datapath cluster (%s) --\n%d gates after flattening, %d operand \
     muxes, results registered: %s\n"
    dp.Datapath.d_instance.Instance.id
    (Instance.gate_count dp.Datapath.d_instance)
    dp.Datapath.d_muxes
    (String.concat " " dp.Datapath.d_registers);

  (* 5. floorplan the bound datapath (plus the controller) from the
     shape functions *)
  let blocks =
    { Floorplan.bname = "control";
      bshapes = ctrl.Controller.c_instance.Instance.shape }
    :: List.map
         (fun u ->
           { Floorplan.bname = u.Schedule.u_name;
             bshapes = u.Schedule.u_instance.Instance.shape })
         best.Schedule.r_units
  in
  let plan = Floorplan.best_of_blocks ~aspect:(Some 1.0) blocks in
  Printf.printf "\n-- floorplan (%d units + control) --\n"
    (List.length best.Schedule.r_units);
  Printf.printf "chip: %.0f x %.0f um = %.0f um2 (aspect %.2f)\n"
    plan.Floorplan.rwidth plan.Floorplan.rheight plan.Floorplan.rarea
    (plan.Floorplan.rwidth /. plan.Floorplan.rheight);
  List.iter
    (fun p ->
      Printf.printf "  %-22s at (%5.0f,%5.0f)  %5.0f x %5.0f  (%d strips)\n"
        p.Floorplan.pname p.Floorplan.px p.Floorplan.py p.Floorplan.pwidth
        p.Floorplan.pheight p.Floorplan.pstrips)
    plan.Floorplan.rplacements
