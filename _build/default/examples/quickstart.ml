(* Quickstart: ask ICDB for a five-bit up counter and read back the
   §3.3 information — delay report, shape function, connection info.

   Run with: dune exec examples/quickstart.exe *)

open Icdb
open Icdb_cql

let () =
  let server = Server.create () in

  (* The §3.2.2 request: a five-bit counter that can increment, with a
     clock-width bound, through the CQL interface. *)
  let results =
    Exec.run server
      "command:request_component;\n\
       component_name:counter;\n\
       attribute:(size:5);\n\
       function:(INC);\n\
       clock_width:40;\n\
       generated_component:?s"
  in
  let id = Exec.get_string results "generated_component" in
  Printf.printf "generated component instance: %s\n\n" id;

  (* The §3.3 instance query: delay and shape function. *)
  let info =
    Exec.run server ~args:[ Exec.Astr id ]
      "command:instance_query;\n\
       generated_component:%s;\n\
       delay:?s;\n\
       shape_function:?s;\n\
       connect:?s"
  in
  print_endline "-- delay report (CW / WD / SD, ns) --";
  print_endline (Exec.get_string info "delay");
  print_endline "-- shape function (strip alternatives) --";
  print_endline (Exec.get_string info "shape_function");
  print_endline "";
  print_endline "-- connection information --";
  print_endline (Exec.get_string info "connect");

  (* Generate the layout of shape alternative 2 with assigned ports. *)
  let pins =
    "CLK left s1.0\n\
     LOAD left s2.0\n\
     DWUP left s3.0\n\
     D[0] top 10\nD[1] top 20\nD[2] top 30\nD[3] top 40\nD[4] top 50\n\
     MINMAX right s2.0\n\
     Q[0] bottom 10\nQ[1] bottom 20\nQ[2] bottom 30\nQ[3] bottom 40\n\
     Q[4] bottom 50"
  in
  let layout =
    Exec.run server
      ~args:[ Exec.Astr id; Exec.Astr pins ]
      "command:request_component;\n\
       instance:%s;\n\
       alternative:2;\n\
       port_position:%s;\n\
       CIF_layout:?s"
  in
  let cif = Exec.get_string layout "CIF_layout" in
  Printf.printf "\n-- CIF layout (%d bytes) written to %s --\n"
    (String.length cif)
    (Exec.get_string layout "CIF_file")
