(* Control-logic generation (§3.2.2, specification type 3).

   A control-logic synthesis tool produces boolean equations and a
   register list for a design's controller; ICDB turns them into a
   component: optimized gates, delay report, shape function, layout.

   Run with: dune exec examples/control_logic.exe *)

open Icdb
open Icdb_timing

(* A 3-state instruction-fetch controller: one-hot state register with
   next-state and output logic, written directly in IIF. *)
let controller_iif =
  {|
NAME:FETCH_CTRL;
INORDER: GO, MEM_RDY, CLK, RESET;
OUTORDER: MEM_REQ, IR_LOAD, PC_INC;
PIIFVARIABLE: S_IDLE, S_WAIT, S_DONE, N_IDLE, N_WAIT, N_DONE;
{
  /* next-state logic */
  N_IDLE = S_IDLE*!GO + S_DONE;
  N_WAIT = S_IDLE*GO + S_WAIT*!MEM_RDY;
  N_DONE = S_WAIT*MEM_RDY;

  /* one-hot state register, reset into IDLE */
  S_IDLE = N_IDLE @(~r CLK) ~a(1/(RESET));
  S_WAIT = N_WAIT @(~r CLK) ~a(0/(RESET));
  S_DONE = N_DONE @(~r CLK) ~a(0/(RESET));

  /* outputs */
  MEM_REQ = S_WAIT;
  IR_LOAD = S_DONE;
  PC_INC  = S_DONE;
}
|}

let () =
  let server = Server.create () in
  let inst =
    Server.request_component server
      (Spec.make ~name_hint:"fetch_ctrl"
         ~constraints:
           { Sizing.default_constraints with clock_width = Some 20.0 }
         (Spec.From_iif controller_iif))
  in
  Printf.printf "generated %s: %d gates, constraints %s\n\n" inst.Instance.id
    (Instance.gate_count inst)
    (if inst.Instance.constraints_met then "met" else "NOT met");
  print_endline "-- delay report --";
  print_endline (Instance.delay_string inst);
  print_endline "-- shape function --";
  print_endline (Instance.shape_string inst);
  print_endline "";
  print_endline "-- VHDL netlist (for the system simulation of §3.3) --";
  print_endline (Instance.vhdl_head inst);

  (* The controller reaches layout like any catalog part: tall/thin for
     a left-column placement, short/wide for a bottom-row placement
     (the Figure 13 choice). *)
  let tall =
    List.hd (List.rev inst.Instance.shape)  (* most strips: narrowest *)
  in
  let wide = List.hd inst.Instance.shape in
  Printf.printf "tall/thin alternative: %d strips, %.0f x %.0f um\n"
    tall.Icdb_layout.Shape.alt_strips tall.Icdb_layout.Shape.alt_width
    tall.Icdb_layout.Shape.alt_height;
  Printf.printf "short/wide alternative: %d strips, %.0f x %.0f um\n"
    wide.Icdb_layout.Shape.alt_strips wide.Icdb_layout.Shape.alt_width
    wide.Icdb_layout.Shape.alt_height;
  let _, _, file =
    Server.request_layout server inst.Instance.id
      ~alternative:tall.Icdb_layout.Shape.alt_index ()
  in
  Printf.printf "tall layout written to %s\n" file
