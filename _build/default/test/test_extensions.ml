(* Tests for the server extensions: power estimation, equivalent and
   inverted port queries, component generators (§4.2 tool management) —
   plus a random-netlist fuzzer driving the whole synthesis pipeline
   against the reference interpreter. *)

open Icdb
open Icdb_cql
open Icdb_iif
open Icdb_timing

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let with_server f = f (Server.create ())

let request server ?generator component attributes =
  Server.request_component server
    (Spec.make ?generator
       (Spec.From_component { component; attributes; functions = [] }))

(* ------------------------------------------------------------------ *)
(* Power                                                               *)
(* ------------------------------------------------------------------ *)

let test_power_positive () =
  with_server @@ fun server ->
  let inst = request server "counter" [ ("size", 4) ] in
  let p = Lazy.force inst.Instance.power in
  check Alcotest.bool "dynamic power positive" true (p.Power.dynamic_mw > 0.0);
  check Alcotest.bool "static power positive" true (p.Power.static_uw > 0.0);
  check Alcotest.bool "activities recorded" true (p.Power.activities <> [])

let test_power_scales_with_size () =
  with_server @@ fun server ->
  let p n =
    (Lazy.force (request server "adder" [ ("size", n) ]).Instance.power)
      .Power.static_uw
  in
  check Alcotest.bool "8-bit leaks more than 4-bit" true (p 8 > p 4)

let test_power_deterministic () =
  with_server @@ fun server ->
  let inst = request server "register" [ ("size", 4) ] in
  let a = Power.estimate inst.Instance.netlist in
  let b = Power.estimate inst.Instance.netlist in
  check (Alcotest.float 1e-9) "same dynamic" a.Power.dynamic_mw b.Power.dynamic_mw

let test_power_via_cql () =
  with_server @@ fun server ->
  let r1 =
    Exec.run server
      "command:request_component; component_name:counter; attribute:(size:4);\n\
       instance:?s"
  in
  let id = Exec.get_string r1 "instance" in
  let r2 =
    Exec.run server ~args:[ Exec.Astr id ]
      "command:instance_query; instance:%s; power:?s"
  in
  check Alcotest.bool "power report" true
    (contains (Exec.get_string r2 "power") "mW at")

(* ------------------------------------------------------------------ *)
(* Equivalent / inverted ports                                         *)
(* ------------------------------------------------------------------ *)

let test_equivalent_ports () =
  with_server @@ fun server ->
  let adder = request server "adder" [ ("size", 4) ] in
  check Alcotest.string "I0 = I1" "I0 = I1"
    (Instance.equivalent_ports_string adder);
  let counter = request server "counter" [] in
  check Alcotest.string "none" "(none)"
    (Instance.equivalent_ports_string counter)

let test_inverted_ports () =
  with_server @@ fun server ->
  let cmp = request server "comparator" [ ("size", 4) ] in
  check Alcotest.string "OEQ / ONEQ" "OEQ / ONEQ"
    (Instance.inverted_ports_string cmp)

let test_ports_via_cql () =
  with_server @@ fun server ->
  let r1 =
    Exec.run server
      "command:request_component; component_name:adder; attribute:(size:4);\n\
       instance:?s"
  in
  let id = Exec.get_string r1 "instance" in
  let r2 =
    Exec.run server ~args:[ Exec.Astr id ]
      "command:instance_query; instance:%s; equivalent_ports:?s; inverted_ports:?s"
  in
  check Alcotest.string "equivalent" "I0 = I1"
    (Exec.get_string r2 "equivalent_ports");
  check Alcotest.string "inverted" "(none)"
    (Exec.get_string r2 "inverted_ports")

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let transistor_count (inst : Instance.t) =
  List.fold_left
    (fun acc (i : Icdb_netlist.Netlist.instance) ->
      match Icdb_logic.Celllib.find i.cell with
      | Some c -> acc + c.Icdb_logic.Celllib.transistors
      | None -> acc)
    0 inst.Instance.netlist.Icdb_netlist.Netlist.instances

let test_generator_names () =
  with_server @@ fun server ->
  check Alcotest.(list string) "builtin generators" [ "direct"; "milo" ]
    (Server.generator_names server)

let test_direct_generator_larger () =
  with_server @@ fun server ->
  let milo = request server "alu" [ ("size", 4) ] in
  let direct = request server ~generator:"direct" "alu" [ ("size", 4) ] in
  check Alcotest.bool "distinct instances" true
    (milo.Instance.id <> direct.Instance.id);
  check Alcotest.bool
    (Printf.sprintf "direct bigger: %d vs %d transistors"
       (transistor_count direct) (transistor_count milo))
    true
    (transistor_count direct > transistor_count milo)

let test_direct_generator_verified () =
  (* verification runs for both generators, so "direct" output is just
     as correct - only bigger *)
  let server = Server.create ~verify:true () in
  let inst = request server ~generator:"direct" "comparator" [ ("size", 3) ] in
  check Alcotest.bool "generated" true (Instance.gate_count inst > 0)

let test_unknown_generator () =
  with_server @@ fun server ->
  (try
     ignore (request server ~generator:"magic" "adder" [ ("size", 4) ]);
     Alcotest.fail "expected Icdb_error"
   with Server.Icdb_error _ -> ())

let test_insert_generator () =
  with_server @@ fun server ->
  (* a custom generator that delegates to milo *)
  Server.insert_generator server
    { Generator.gen_name = "custom";
      gen_description = "test";
      synthesize = Generator.milo.Generator.synthesize };
  check Alcotest.bool "registered" true
    (List.mem "custom" (Server.generator_names server));
  let inst = request server ~generator:"custom" "adder" [ ("size", 3) ] in
  check Alcotest.bool "usable" true (Instance.gate_count inst > 0)

(* ------------------------------------------------------------------ *)
(* Universal attributes (App B §3)                                     *)
(* ------------------------------------------------------------------ *)

let drive_bus base width x =
  List.init width (fun i -> (Printf.sprintf "%s[%d]" base i, (x lsr i) land 1 = 1))

let read_bus sim base width =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    v := (!v lsl 1)
         lor (if Icdb_sim.Gate_sim.value sim (Printf.sprintf "%s[%d]" base i)
              then 1 else 0)
  done;
  !v

let test_attr_active_low_inputs () =
  (* the §1 motivating case: a component with active-low inputs needs no
     external inverters - ICDB generates it that way *)
  with_server @@ fun server ->
  let inst =
    request server "adder" [ ("size", 4); ("input_type", 0) ]
  in
  let sim = Icdb_sim.Gate_sim.create inst.Instance.netlist in
  let add a b =
    Icdb_sim.Gate_sim.step sim
      (drive_bus "I0" 4 (lnot a land 15)
      @ drive_bus "I1" 4 (lnot b land 15)
      @ [ ("Cin", true) ] (* active low: true pad = logical 0 *));
    read_bus sim "O" 4
  in
  check Alcotest.int "5+3 through inverted pads" 8 (add 5 3);
  check Alcotest.int "9+4" 13 (add 9 4)

let test_attr_active_low_outputs () =
  with_server @@ fun server ->
  let inst =
    request server "comparator" [ ("size", 3); ("output_type", 0) ]
  in
  let sim = Icdb_sim.Gate_sim.create inst.Instance.netlist in
  Icdb_sim.Gate_sim.step sim (drive_bus "A" 3 5 @ drive_bus "B" 3 5);
  (* equal, but OEQ is active low now *)
  check Alcotest.bool "OEQ low when equal" false
    (Icdb_sim.Gate_sim.value sim "OEQ");
  check Alcotest.bool "OGT high (inactive)" true
    (Icdb_sim.Gate_sim.value sim "OGT")

let test_attr_output_tri_state () =
  with_server @@ fun server ->
  let inst =
    request server "mux_scl" [ ("size", 2); ("output_tri_state", 1) ]
  in
  check Alcotest.bool "OE input added" true
    (List.mem "OE" inst.Instance.netlist.Icdb_netlist.Netlist.inputs);
  let sim = Icdb_sim.Gate_sim.create inst.Instance.netlist in
  Icdb_sim.Gate_sim.step sim
    (drive_bus "I0" 2 3 @ drive_bus "I1" 2 0 @ [ ("SEL", false); ("OE", true) ]);
  check Alcotest.int "driving" 3 (read_bus sim "O" 2);
  Icdb_sim.Gate_sim.step sim
    (drive_bus "I0" 2 0 @ drive_bus "I1" 2 0 @ [ ("SEL", false); ("OE", false) ]);
  check Alcotest.int "released: bus keeps value" 3 (read_bus sim "O" 2)

let test_attr_output_latch () =
  with_server @@ fun server ->
  let inst =
    request server "adder" [ ("size", 2); ("output_latch", 1) ]
  in
  check Alcotest.bool "CLK input added" true
    (List.mem "CLK" inst.Instance.netlist.Icdb_netlist.Netlist.inputs);
  let sim = Icdb_sim.Gate_sim.create inst.Instance.netlist in
  let inputs a b clk =
    drive_bus "I0" 2 a @ drive_bus "I1" 2 b @ [ ("Cin", false); ("CLK", clk) ]
  in
  (* load 1+1 through a clock edge *)
  Icdb_sim.Gate_sim.step sim (inputs 1 1 false);
  Icdb_sim.Gate_sim.step sim (inputs 1 1 true);
  check Alcotest.int "captured 2" 2 (read_bus sim "O" 2);
  (* change operands with clock low: output holds *)
  Icdb_sim.Gate_sim.step sim (inputs 3 0 false);
  check Alcotest.int "held" 2 (read_bus sim "O" 2);
  Icdb_sim.Gate_sim.step sim (inputs 3 0 true);
  check Alcotest.int "captures 3" 3 (read_bus sim "O" 2)

let test_attr_input_latch () =
  with_server @@ fun server ->
  let inst =
    request server "adder" [ ("size", 2); ("input_latch", 1) ]
  in
  let sim = Icdb_sim.Gate_sim.create inst.Instance.netlist in
  let inputs a b clk =
    drive_bus "I0" 2 a @ drive_bus "I1" 2 b @ [ ("Cin", false); ("CLK", clk) ]
  in
  (* transparent while CLK high *)
  Icdb_sim.Gate_sim.step sim (inputs 1 2 true);
  check Alcotest.int "transparent" 3 (read_bus sim "O" 2);
  (* opaque while CLK low: operand changes are ignored *)
  Icdb_sim.Gate_sim.step sim (inputs 1 2 false);
  Icdb_sim.Gate_sim.step sim (inputs 3 3 false);
  check Alcotest.int "held operands" 3 (read_bus sim "O" 2)

let test_attr_distinct_cache_entries () =
  with_server @@ fun server ->
  let plain = request server "adder" [ ("size", 4) ] in
  let low = request server "adder" [ ("size", 4); ("input_type", 0) ] in
  check Alcotest.bool "different instances" true
    (plain.Instance.id <> low.Instance.id);
  (* active-high explicitly = the default: same cached instance *)
  let high = request server "adder" [ ("size", 4); ("input_type", 1) ] in
  ignore high;
  check Alcotest.bool "low costs inverters" true
    (Instance.gate_count low > Instance.gate_count plain)

let test_attr_functions_preserved () =
  with_server @@ fun server ->
  let inst =
    request server "counter" [ ("size", 3); ("output_tri_state", 1) ]
  in
  check Alcotest.bool "still counts" true
    (List.exists (Icdb_genus.Func.equal Icdb_genus.Func.INC)
       inst.Instance.functions)

(* ------------------------------------------------------------------ *)
(* Random-design fuzz: the whole pipeline vs the interpreter           *)
(* ------------------------------------------------------------------ *)

(* Random combinational expressions over a fixed input set plus
   already-defined internal nets. *)
let gen_fexpr nets =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun i -> Flat.Fnet (List.nth nets (i mod List.length nets)))
          (int_bound (List.length nets - 1));
        return (Flat.Fconst true);
        return (Flat.Fconst false) ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [ (2, leaf);
            (2, map (fun e -> Flat.Fnot e) (self (depth - 1)));
            (2, map2 (fun a b -> Flat.Fand [ a; b ]) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> Flat.For_ [ a; b ]) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Flat.Fxor (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Flat.Fxnor (a, b)) (self (depth - 1)) (self (depth - 1))) ])
    3

(* A random flat design: inputs a..d, a few internal nets, 2 outputs. *)
let gen_flat =
  let open QCheck.Gen in
  let inputs = [ "a"; "b"; "c"; "d" ] in
  let* n_internal = int_range 0 3 in
  let internal = List.init n_internal (fun i -> Printf.sprintf "t%d" i) in
  let rec build_eqs defined todo acc =
    match todo with
    | [] -> return (List.rev acc)
    | net :: rest ->
        let* rhs = gen_fexpr defined in
        build_eqs (net :: defined) rest (Flat.Comb { target = net; rhs } :: acc)
  in
  let* eqs = build_eqs inputs (internal @ [ "y0"; "y1" ]) [] in
  return
    { Flat.fname = "fuzz";
      finputs = inputs;
      foutputs = [ "y0"; "y1" ];
      finternals = internal;
      fequations = eqs }

let arb_flat = QCheck.make ~print:(fun f -> Flat.to_milo f) gen_flat

let fuzz_pipeline =
  QCheck.Test.make ~name:"random designs synthesize equivalently" ~count:150
    arb_flat
    (fun flat ->
      let network = Icdb_logic.Network.of_flat flat in
      Icdb_logic.Opt.optimize network;
      let nl = Icdb_logic.Techmap.map network in
      Icdb_sim.Equiv.check flat nl = Icdb_sim.Equiv.Equivalent)

let fuzz_pipeline_direct =
  QCheck.Test.make ~name:"random designs map equivalently with NAND2/INV only"
    ~count:100 arb_flat
    (fun flat ->
      let network = Icdb_logic.Network.of_flat flat in
      Icdb_logic.Opt.sweep network;
      let nl =
        Icdb_logic.Techmap.map
          ~cells:Icdb_logic.Celllib.[ inv; nand2; buf ]
          network
      in
      Icdb_sim.Equiv.check flat nl = Icdb_sim.Equiv.Equivalent)

(* Sequential fuzz: random next-state logic feeding 1-2 rising-edge
   registers clocked by a dedicated CLK input, with optional async
   resets. *)
let gen_seq_flat =
  let open QCheck.Gen in
  let inputs = [ "a"; "b"; "c" ] in
  let* n_regs = int_range 1 2 in
  let regs = List.init n_regs (fun i -> Printf.sprintf "q%d" i) in
  let nets = inputs @ regs in
  let* reg_eqs =
    flatten_l
      (List.map
         (fun q ->
           let* data = gen_fexpr nets in
           let* with_reset = bool in
           let asyncs =
             if with_reset then
               [ { Flat.value = false; cond = Flat.Fnet "c" } ]
             else []
           in
           return
             (Flat.Ff
                { target = q; data; rising = true; clock = Flat.Fnet "CLK";
                  asyncs }))
         regs)
  in
  let* out_rhs = gen_fexpr nets in
  return
    { Flat.fname = "seqfuzz";
      finputs = "CLK" :: inputs;
      foutputs = regs @ [ "y" ];
      finternals = [];
      fequations = reg_eqs @ [ Flat.Comb { target = "y"; rhs = out_rhs } ] }

let arb_seq_flat = QCheck.make ~print:(fun f -> Flat.to_milo f) gen_seq_flat

let fuzz_sequential =
  QCheck.Test.make ~name:"random sequential designs synthesize equivalently"
    ~count:80 arb_seq_flat
    (fun flat ->
      let network = Icdb_logic.Network.of_flat flat in
      Icdb_logic.Opt.optimize network;
      let nl = Icdb_logic.Techmap.map network in
      Icdb_sim.Equiv.check ~steps:80 flat nl = Icdb_sim.Equiv.Equivalent)

let fuzz_sta_bounds_event_sim =
  QCheck.Test.make
    ~name:"event-sim settling never exceeds the STA bound (random designs)"
    ~count:60 arb_flat
    (fun flat ->
      let network = Icdb_logic.Network.of_flat flat in
      Icdb_logic.Opt.optimize network;
      let nl = Icdb_logic.Techmap.map network in
      let bound =
        List.fold_left
          (fun acc (_, wd) -> Float.max acc wd)
          0.0
          (Icdb_timing.Sta.analyze nl).Icdb_timing.Sta.output_delays
      in
      let ev = Icdb_sim.Event_sim.create nl in
      let rng = Random.State.make [| 17 |] in
      let ok = ref true in
      for _ = 1 to 10 do
        let vec =
          List.map
            (fun n -> (n, Random.State.bool rng))
            nl.Icdb_netlist.Netlist.inputs
        in
        let settle, _ = Icdb_sim.Event_sim.apply ev vec in
        if settle > bound +. 0.001 then ok := false
      done;
      !ok)

let fuzz_layout_invariants =
  QCheck.Test.make ~name:"layout invariants on random designs" ~count:60
    arb_flat
    (fun flat ->
      let network = Icdb_logic.Network.of_flat flat in
      Icdb_logic.Opt.optimize network;
      let nl = Icdb_logic.Techmap.map network in
      if nl.Icdb_netlist.Netlist.instances = [] then true
      else begin
        let ok = ref true in
        List.iter
          (fun strips ->
            let p = Icdb_layout.Strip.place nl ~strips in
            (* every instance placed exactly once *)
            if
              List.length p.Icdb_layout.Strip.cells
              <> List.length nl.Icdb_netlist.Netlist.instances
            then ok := false;
            (* spans are non-negative *)
            Array.iter
              (fun s -> if s < 0.0 then ok := false)
              (Icdb_layout.Strip.channel_spans p);
            let e = Icdb_layout.Area_est.estimate nl ~strips in
            if e.Icdb_layout.Area_est.width <= 0.0
               || e.Icdb_layout.Area_est.height <= 0.0
            then ok := false)
          [ 1; 2; 3 ];
        (* the shape function is a proper staircase *)
        let shapes = Icdb_layout.Shape.of_netlist nl in
        let rec staircase = function
          | a :: (b :: _ as rest) ->
              a.Icdb_layout.Shape.alt_width > b.Icdb_layout.Shape.alt_width
              && a.Icdb_layout.Shape.alt_height <= b.Icdb_layout.Shape.alt_height
              && staircase rest
          | _ -> true
        in
        !ok && staircase shapes && shapes <> []
      end)

let fuzz_power_runs =
  QCheck.Test.make ~name:"power estimation succeeds on random designs"
    ~count:30 arb_flat
    (fun flat ->
      let network = Icdb_logic.Network.of_flat flat in
      Icdb_logic.Opt.optimize network;
      let nl = Icdb_logic.Techmap.map network in
      let p = Power.estimate ~vectors:16 nl in
      p.Power.dynamic_mw >= 0.0)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ fuzz_pipeline; fuzz_pipeline_direct; fuzz_sequential;
      fuzz_sta_bounds_event_sim; fuzz_layout_invariants; fuzz_power_runs ]

let () =
  Alcotest.run "extensions"
    [ ("power",
       [ Alcotest.test_case "positive" `Quick test_power_positive;
         Alcotest.test_case "scales with size" `Quick test_power_scales_with_size;
         Alcotest.test_case "deterministic" `Quick test_power_deterministic;
         Alcotest.test_case "via CQL" `Quick test_power_via_cql ]);
      ("ports",
       [ Alcotest.test_case "equivalent ports" `Quick test_equivalent_ports;
         Alcotest.test_case "inverted ports" `Quick test_inverted_ports;
         Alcotest.test_case "via CQL" `Quick test_ports_via_cql ]);
      ("attributes",
       [ Alcotest.test_case "active-low inputs" `Quick test_attr_active_low_inputs;
         Alcotest.test_case "active-low outputs" `Quick test_attr_active_low_outputs;
         Alcotest.test_case "tri-state outputs" `Quick test_attr_output_tri_state;
         Alcotest.test_case "output latch" `Quick test_attr_output_latch;
         Alcotest.test_case "input latch" `Quick test_attr_input_latch;
         Alcotest.test_case "distinct cache entries" `Quick
           test_attr_distinct_cache_entries;
         Alcotest.test_case "functions preserved" `Quick
           test_attr_functions_preserved ]);
      ("generators",
       [ Alcotest.test_case "names" `Quick test_generator_names;
         Alcotest.test_case "direct is larger" `Quick test_direct_generator_larger;
         Alcotest.test_case "direct verified" `Quick test_direct_generator_verified;
         Alcotest.test_case "unknown rejected" `Quick test_unknown_generator;
         Alcotest.test_case "insert custom" `Quick test_insert_generator ]);
      ("fuzz", props) ]
