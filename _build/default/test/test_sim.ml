(* Tests for the four-valued simulator (initialization analysis) and
   the netlist statistics module. *)

open Icdb_iif
open Icdb_logic
open Icdb_netlist
open Icdb_sim

let check = Alcotest.check

let synthesize flat =
  let net = Network.of_flat flat in
  Opt.optimize net;
  Techmap.map net

let counter_nl ?(load = 1) () =
  synthesize
    (Builtin.expand_exn "COUNTER"
       [ ("size", 4); ("type", 2); ("load", load); ("enable", 0);
         ("up_or_down", 1) ])

(* ------------------------------------------------------------------ *)
(* Xsim: four-valued semantics                                         *)
(* ------------------------------------------------------------------ *)

let test_x_logic_tables () =
  check Alcotest.bool "0 and X = 0" true (Xsim.v_and Xsim.V0 Xsim.VX = Xsim.V0);
  check Alcotest.bool "1 and X = X" true (Xsim.v_and Xsim.V1 Xsim.VX = Xsim.VX);
  check Alcotest.bool "1 or X = 1" true (Xsim.v_or Xsim.V1 Xsim.VX = Xsim.V1);
  check Alcotest.bool "0 or X = X" true (Xsim.v_or Xsim.V0 Xsim.VX = Xsim.VX);
  check Alcotest.bool "not X = X" true (Xsim.v_not Xsim.VX = Xsim.VX);
  check Alcotest.bool "X xor 1 = X" true (Xsim.v_xor Xsim.VX Xsim.V1 = Xsim.VX);
  check Alcotest.bool "Z reads as X" true (Xsim.v_not Xsim.VZ = Xsim.VX);
  check Alcotest.bool "resolve Z Z = Z" true (Xsim.resolve Xsim.VZ Xsim.VZ = Xsim.VZ);
  check Alcotest.bool "resolve 1 Z = 1" true (Xsim.resolve Xsim.V1 Xsim.VZ = Xsim.V1);
  check Alcotest.bool "resolve 1 0 = X" true (Xsim.resolve Xsim.V1 Xsim.V0 = Xsim.VX)

let test_x_combinational_defined () =
  (* fully-driven combinational logic produces no X *)
  let nl = synthesize (Builtin.expand_exn "ADDER" [ ("size", 3) ]) in
  let st = Xsim.create nl in
  Xsim.step st
    (List.map (fun n -> (n, Xsim.V0)) nl.Netlist.inputs);
  check Alcotest.(list string) "no undefined outputs" []
    (Xsim.undefined_outputs st)

let test_x_controlling_value_masks_x () =
  (* 0 on one AND input defines the output even when the other is X *)
  let nl =
    { Netlist.name = "m"; inputs = [ "a"; "b" ]; outputs = [ "y" ];
      instances =
        [ { Netlist.inst_name = "u"; cell = "AND2"; size = 1.0;
            conns = [ ("A", "a"); ("B", "b"); ("Y", "y") ] } ] }
  in
  let st = Xsim.create nl in
  Xsim.step st [ ("a", Xsim.V0); ("b", Xsim.VX) ];
  check Alcotest.bool "0 wins" true (Xsim.value st "y" = Xsim.V0);
  Xsim.step st [ ("a", Xsim.V1); ("b", Xsim.VX) ];
  check Alcotest.bool "X passes" true (Xsim.value st "y" = Xsim.VX)

let test_x_registers_start_unknown () =
  let nl = counter_nl ~load:0 () in
  let st = Xsim.create nl in
  (* clock it without any reset: counts from X, outputs stay X *)
  let zeros = List.map (fun n -> (n, Xsim.V0)) nl.Netlist.inputs in
  let with_clk v =
    List.map (fun (n, x) -> if n = "CLK" then (n, v) else (n, x)) zeros
  in
  Xsim.step st (with_clk Xsim.V0);
  Xsim.step st (with_clk Xsim.V1);
  Xsim.step st (with_clk Xsim.V0);
  Xsim.step st (with_clk Xsim.V1);
  check Alcotest.bool "Q still unknown without reset" true
    (List.exists
       (fun o -> String.length o >= 1 && o.[0] = 'Q')
       (Xsim.undefined_outputs st))

let test_x_async_load_defines () =
  (* the parallel-load counter initializes through its async load *)
  let nl = counter_nl ~load:1 () in
  let base = [ ("CLK", false); ("LOAD", true); ("DWUP", false);
               ("D[0]", false); ("D[1]", false); ("D[2]", false);
               ("D[3]", false); ("ENA", false) ] in
  let pulse_load =
    List.map (fun (n, v) -> (n, if n = "LOAD" then false else v)) base
  in
  let _, undefined =
    Xsim.initialization_check nl
      ~sequence:[ pulse_load; base;
                  List.map (fun (n, v) -> (n, if n = "CLK" then true else v)) base ]
  in
  let qs = List.filter (fun o -> o.[0] = 'Q') undefined in
  check Alcotest.(list string) "all Q defined after async load" [] qs

let test_x_initialization_check_reports () =
  let nl = counter_nl ~load:0 () in
  (* no reset facility at all: the check must report the Q outputs *)
  let seq = [ [ ("CLK", false) ]; [ ("CLK", true) ] ] in
  let _, undefined = Xsim.initialization_check nl ~sequence:seq in
  check Alcotest.bool "reports undefined state" true (undefined <> [])

let test_x_matches_boolean_sim_when_driven () =
  (* once state is initialized, Xsim agrees with the 2-valued sim *)
  let flat = Builtin.expand_exn "COMPARATOR" [ ("size", 3) ] in
  let nl = synthesize flat in
  let xst = Xsim.create nl in
  let bst = Gate_sim.create nl in
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 40 do
    let assignment =
      List.map (fun n -> (n, Random.State.bool rng)) nl.Netlist.inputs
    in
    Gate_sim.step bst assignment;
    Xsim.step xst (List.map (fun (n, b) -> (n, Xsim.of_bool b)) assignment);
    List.iter
      (fun (o, b) ->
        check Alcotest.bool ("output " ^ o) true
          (Xsim.value xst o = Xsim.of_bool b))
      (Gate_sim.outputs bst)
  done

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let analyze nl =
  Stats.analyze nl ~is_output_pin:Celllib.is_output_pin
    ~is_sequential:(fun cell ->
      match Celllib.find cell with
      | Some c -> (
          match c.Celllib.kind with
          | Celllib.Ff _ | Celllib.Latch_cell _ -> true
          | _ -> false)
      | None -> false)

let test_stats_adder_depth_grows () =
  let depth size =
    (analyze (synthesize (Builtin.expand_exn "ADDER" [ ("size", size) ])))
      .Stats.logic_depth
  in
  check Alcotest.bool "carry chain deepens" true (depth 8 > depth 4);
  check Alcotest.bool "positive" true (depth 2 > 0)

let test_stats_counter_sequential_count () =
  let s = analyze (counter_nl ()) in
  check Alcotest.int "4 FFs" 4 s.Stats.sequential;
  check Alcotest.bool "gates counted" true (s.Stats.gates > 10);
  check Alcotest.bool "histogram sums to nets" true
    (List.fold_left (fun a (_, c) -> a + c) 0 s.Stats.fanout_histogram
     = s.Stats.nets)

let test_stats_inverter_chain () =
  let chain n =
    { Netlist.name = "chain"; inputs = [ "a" ]; outputs = [ "y" ];
      instances =
        List.init n (fun i ->
            { Netlist.inst_name = Printf.sprintf "u%d" i; cell = "INV";
              size = 1.0;
              conns =
                [ ("A", if i = 0 then "a" else Printf.sprintf "n%d" i);
                  ("Y", if i = n - 1 then "y" else Printf.sprintf "n%d" (i + 1)) ] }) }
  in
  let s = analyze (chain 5) in
  check Alcotest.int "depth = chain length" 5 s.Stats.logic_depth;
  check Alcotest.int "max fanout 1" 1 s.Stats.max_fanout

let test_stats_cycle_detected () =
  let nl =
    { Netlist.name = "cyc"; inputs = [ "a" ]; outputs = [ "y" ];
      instances =
        [ { Netlist.inst_name = "u1"; cell = "NAND2"; size = 1.0;
            conns = [ ("A", "a"); ("B", "y"); ("Y", "t") ] };
          { Netlist.inst_name = "u2"; cell = "INV"; size = 1.0;
            conns = [ ("A", "t"); ("Y", "y") ] } ] }
  in
  (try
     ignore (analyze nl);
     Alcotest.fail "expected Stats_error"
   with Stats.Stats_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Event-driven timing simulation                                      *)
(* ------------------------------------------------------------------ *)

let drive_bus base width x =
  List.init width (fun i -> (Printf.sprintf "%s[%d]" base i, (x lsr i) land 1 = 1))

let test_event_matches_gate_sim () =
  let flat = Builtin.expand_exn "ADDER" [ ("size", 4) ] in
  let nl = synthesize flat in
  let ev = Event_sim.create nl in
  let gs = Gate_sim.create nl in
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 30 do
    let vec = List.map (fun n -> (n, Random.State.bool rng)) nl.Netlist.inputs in
    let _ = Event_sim.apply ev vec in
    Gate_sim.step gs vec;
    List.iter
      (fun (o, b) ->
        check Alcotest.bool ("output " ^ o) b (Event_sim.value ev o))
      (Gate_sim.outputs gs)
  done

let test_event_settle_below_sta_bound () =
  (* measured settling can never exceed the static worst case (same
     delay model, STA takes the max over all paths) *)
  let flat = Builtin.expand_exn "ADDER" [ ("size", 6) ] in
  let nl = synthesize flat in
  let bound =
    List.fold_left
      (fun acc (_, wd) -> Float.max acc wd)
      0.0 (Icdb_timing.Sta.analyze nl).Icdb_timing.Sta.output_delays
  in
  let ev = Event_sim.create nl in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 25 do
    let vec = List.map (fun n -> (n, Random.State.bool rng)) nl.Netlist.inputs in
    let settle, _ = Event_sim.apply ev vec in
    check Alcotest.bool
      (Printf.sprintf "settle %.2f <= bound %.2f" settle bound)
      true (settle <= bound +. 0.001)
  done

let test_event_worst_vector_near_bound () =
  (* the carry-ripple vector exercises the critical path: measured time
     should be a large fraction of the STA bound *)
  let flat = Builtin.expand_exn "ADDER" [ ("size", 6) ] in
  let nl = synthesize flat in
  let bound =
    List.fold_left
      (fun acc (_, wd) -> Float.max acc wd)
      0.0 (Icdb_timing.Sta.analyze nl).Icdb_timing.Sta.output_delays
  in
  let ev = Event_sim.create nl in
  (* all ones + carry-in toggling 0->1 ripples through every stage *)
  let _ =
    Event_sim.apply ev
      (drive_bus "I0" 6 63 @ drive_bus "I1" 6 0 @ [ ("Cin", false) ])
  in
  let settle, _ = Event_sim.apply ev [ ("Cin", true) ] in
  check Alcotest.bool
    (Printf.sprintf "ripple %.2f vs bound %.2f" settle bound)
    true
    (settle > bound *. 0.4 && settle <= bound +. 0.001)

let test_event_counts_glitches () =
  (* reconvergent paths with unequal depth glitch: y = a xor (a through
     two inverters) momentarily pulses when a toggles *)
  let nl =
    { Netlist.name = "g"; inputs = [ "a" ]; outputs = [ "y" ];
      instances =
        [ { Netlist.inst_name = "i1"; cell = "INV"; size = 1.0;
            conns = [ ("A", "a"); ("Y", "n1") ] };
          { Netlist.inst_name = "i2"; cell = "INV"; size = 1.0;
            conns = [ ("A", "n1"); ("Y", "n2") ] };
          { Netlist.inst_name = "x"; cell = "XOR2"; size = 1.0;
            conns = [ ("A", "a"); ("B", "n2"); ("Y", "y") ] } ] }
  in
  let ev = Event_sim.create nl in
  let _, t1 = Event_sim.apply ev [ ("a", true) ] in
  (* y ends where it began (a xor a = 0) but transitioned in between *)
  check Alcotest.bool "y settles low" false (Event_sim.value ev "y");
  check Alcotest.bool
    (Printf.sprintf "glitch seen (%d transitions)" t1)
    true (t1 >= 5)
  (* a, n1, n2 plus at least an up-down pulse on y *)

let test_event_counter_clocks () =
  let flat =
    Builtin.expand_exn "COUNTER"
      [ ("size", 3); ("type", 2); ("load", 0); ("enable", 0); ("up_or_down", 1) ]
  in
  let nl = synthesize flat in
  let ev = Event_sim.create nl in
  let others = drive_bus "D" 3 0 @ [ ("LOAD", true); ("ENA", true); ("DWUP", false) ] in
  let _ = Event_sim.apply ev (("CLK", false) :: others) in
  for expected = 1 to 5 do
    let _ = Event_sim.apply ev [ ("CLK", true) ] in
    let _ = Event_sim.apply ev [ ("CLK", false) ] in
    let q =
      List.fold_left
        (fun acc i ->
          (acc * 2)
          + if Event_sim.value ev (Printf.sprintf "Q[%d]" (2 - i)) then 1 else 0)
        0 [ 0; 1; 2 ]
    in
    check Alcotest.int (Printf.sprintf "count %d" expected) expected q
  done

let test_event_time_advances () =
  let flat = Builtin.expand_exn "MUX2" [ ("size", 2) ] in
  let nl = synthesize flat in
  let ev = Event_sim.create nl in
  let t0 = Event_sim.now ev in
  let _ = Event_sim.apply ev (drive_bus "I0" 2 3 @ drive_bus "I1" 2 0 @ [ ("SEL", false) ]) in
  check Alcotest.bool "time moved" true (Event_sim.now ev > t0)

let () =
  Alcotest.run "sim4+stats"
    [ ("xsim",
       [ Alcotest.test_case "logic tables" `Quick test_x_logic_tables;
         Alcotest.test_case "comb fully defined" `Quick test_x_combinational_defined;
         Alcotest.test_case "controlling value masks X" `Quick
           test_x_controlling_value_masks_x;
         Alcotest.test_case "registers start unknown" `Quick
           test_x_registers_start_unknown;
         Alcotest.test_case "async load defines" `Quick test_x_async_load_defines;
         Alcotest.test_case "initialization check" `Quick
           test_x_initialization_check_reports;
         Alcotest.test_case "matches boolean sim" `Quick
           test_x_matches_boolean_sim_when_driven ]);
      ("event",
       [ Alcotest.test_case "matches gate sim" `Quick test_event_matches_gate_sim;
         Alcotest.test_case "settle below STA bound" `Quick
           test_event_settle_below_sta_bound;
         Alcotest.test_case "worst vector near bound" `Quick
           test_event_worst_vector_near_bound;
         Alcotest.test_case "counts glitches" `Quick test_event_counts_glitches;
         Alcotest.test_case "counter clocks" `Quick test_event_counter_clocks;
         Alcotest.test_case "time advances" `Quick test_event_time_advances ]);
      ("stats",
       [ Alcotest.test_case "adder depth grows" `Quick test_stats_adder_depth_grows;
         Alcotest.test_case "counter sequential" `Quick
           test_stats_counter_sequential_count;
         Alcotest.test_case "inverter chain" `Quick test_stats_inverter_chain;
         Alcotest.test_case "cycle detected" `Quick test_stats_cycle_detected ]) ]
