(* Tests for the IIF language: lexer, parser, expander, interpreter. *)

open Icdb_iif

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src = Array.to_list (Lexer.tokenize src) |> List.map fst

let test_lex_operators () =
  check Alcotest.bool "xor token" true
    (toks "A (+) B" = Lexer.[ IDENT "A"; XOR; IDENT "B"; EOF ]);
  check Alcotest.bool "xnor token" true
    (toks "A (.) B" = Lexer.[ IDENT "A"; XNOR; IDENT "B"; EOF ]);
  check Alcotest.bool "paren vs xor" true
    (toks "(A+B)" = Lexer.[ LPAREN; IDENT "A"; PLUS; IDENT "B"; RPAREN; EOF ]);
  check Alcotest.bool "aggregate xor" true
    (toks "O (+)= A" = Lexer.[ IDENT "O"; XOREQ; IDENT "A"; EOF ]);
  check Alcotest.bool "tilde ops" true
    (toks "~a ~r ~l" = Lexer.[ TILDE_A; TILDE_R; TILDE_L; EOF ])

let test_lex_hash () =
  check Alcotest.bool "#if/#else/#for" true
    (toks "#if #else #for #c_line" =
       Lexer.[ HASH_IF; HASH_ELSE; HASH_FOR; HASH_CLINE; EOF ]);
  check Alcotest.bool "call" true
    (toks "#ADDER(size)" =
       Lexer.[ HASH_CALL "ADDER"; LPAREN; IDENT "size"; RPAREN; EOF ])

let test_lex_comment () =
  check Alcotest.bool "comment skipped" true
    (toks "A /* up counter\n only */ B" = Lexer.[ IDENT "A"; IDENT "B"; EOF ])

let test_lex_increment () =
  check Alcotest.bool "++ and +=" true
    (toks "i++ x += 1" =
       Lexer.[ IDENT "i"; PLUSPLUS; IDENT "x"; PLUSEQ; INT 1; EOF ])

let test_lex_error_line () =
  (try
     ignore (Lexer.tokenize "A\nB\n$");
     Alcotest.fail "expected lex error"
   with Lexer.Lex_error (_, line) -> check Alcotest.int "line" 3 line)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_expr_precedence () =
  (* AND binds tighter than OR; XOR binds tighter than AND. *)
  let e = Parser.parse_expr "a + b*c" in
  check Alcotest.bool "a + (b*c)" true
    (match e with
     | Ast.Or (Ast.Sig { base = "a"; _ }, Ast.And (_, _)) -> true
     | _ -> false);
  let e = Parser.parse_expr "a * b(+)c" in
  check Alcotest.bool "a * (b xor c)" true
    (match e with
     | Ast.And (Ast.Sig { base = "a"; _ }, Ast.Xor (_, _)) -> true
     | _ -> false)

let test_parse_sequential () =
  let e = Parser.parse_expr "(Q(+)Cin) @(~r CLKO) ~a(0/(!LOAD*!Din),1/(!LOAD*Din))" in
  match e with
  | Ast.Async (Ast.At (Ast.Xor _, Ast.Edge (Ast.Rising, _)), specs) ->
      check Alcotest.int "two async specs" 2 (List.length specs)
  | _ -> Alcotest.fail ("unexpected shape: " ^ Ast.expr_to_string e)

let test_parse_latched_clock () =
  let e = Parser.parse_expr "CLK @(~h ENA)" in
  match e with
  | Ast.At (Ast.Sig { base = "CLK"; _ }, Ast.Edge (Ast.High, _)) -> ()
  | _ -> Alcotest.fail "expected latch clock spec"

let test_parse_interface_ops () =
  (match Parser.parse_expr "A ~d 10" with
   | Ast.Delay (_, Ast.Cint 10) -> ()
   | _ -> Alcotest.fail "delay");
  (match Parser.parse_expr "Q ~t control" with
   | Ast.Tristate (_, Ast.Sig { base = "control"; _ }) -> ()
   | _ -> Alcotest.fail "tristate");
  (match Parser.parse_expr "A ~w B" with
   | Ast.Wire_or (_, _) -> ()
   | _ -> Alcotest.fail "wire-or");
  (match Parser.parse_expr "~b Clock" with
   | Ast.Buf _ -> ()
   | _ -> Alcotest.fail "buffer");
  match Parser.parse_expr "~s Y" with
  | Ast.Schmitt _ -> ()
  | _ -> Alcotest.fail "schmitt"

let test_parse_design_decls () =
  let d = Parser.parse Builtin.adder in
  check Alcotest.string "name" "ADDER" d.Ast.dname;
  check Alcotest.(list string) "params" [ "size" ] d.Ast.dparams;
  check Alcotest.(list string) "functions" [ "ADD" ] d.Ast.dfunctions;
  check Alcotest.int "inputs" 3 (List.length d.Ast.dinputs);
  check Alcotest.int "outputs" 2 (List.length d.Ast.doutputs);
  check Alcotest.bool "I0 is a bus" true
    ((List.hd d.Ast.dinputs).Ast.ssize <> None)

let test_parse_counter_design () =
  let d = Parser.parse Builtin.counter in
  check Alcotest.string "name" "COUNTER" d.Ast.dname;
  check Alcotest.(list string) "params"
    [ "size"; "type"; "load"; "enable"; "up_or_down" ] d.Ast.dparams;
  check Alcotest.(list string) "subfunctions" [ "RIPPLE_COUNTER" ]
    d.Ast.dsubfunctions

let test_parse_all_builtins () =
  List.iter
    (fun (name, src) ->
      let d = Parser.parse src in
      check Alcotest.string ("name of " ^ name) name d.Ast.dname)
    Builtin.sources

let test_parse_error_reports_line () =
  (try
     ignore (Parser.parse "NAME:X;\nINORDER: A;\nOUTORDER: B;\n{\n  B = ;\n}");
     Alcotest.fail "expected parse error"
   with Parser.Parse_error (_, line) -> check Alcotest.int "line" 5 line)

let test_parse_for_loop () =
  let d =
    Parser.parse
      "NAME:X; PARAMETER: n; INORDER: A[n]; OUTORDER: O; VARIABLE: i;\n\
       { #for(i=0;i<n;i++) O += A[i]; }"
  in
  match d.Ast.dbody with
  | [ Ast.For { var = "i"; step = 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single for loop"

let test_parse_downward_for () =
  let d =
    Parser.parse
      "NAME:X; PARAMETER: n; INORDER: A[n]; OUTORDER: O; VARIABLE: i;\n\
       { #for(i=n-1;i>=0;i--) O += A[i]; }"
  in
  match d.Ast.dbody with
  | [ Ast.For { step = -1; _ } ] -> ()
  | _ -> Alcotest.fail "expected a downward for loop"

(* ------------------------------------------------------------------ *)
(* Expander                                                            *)
(* ------------------------------------------------------------------ *)

let expand_builtin = Builtin.expand_exn

let test_expand_adder4 () =
  (* Appendix A expands the 4-bit adder into 4 sum + 5 carry equations. *)
  let flat = expand_builtin "ADDER" [ ("size", 4) ] in
  check Alcotest.int "inputs: 2*4 + Cin" 9 (List.length flat.Flat.finputs);
  check Alcotest.int "outputs: 4 + Cout" 5 (List.length flat.Flat.foutputs);
  (* C[0]=Cin, 4 sums, 4 carries, Cout *)
  check Alcotest.int "equations" 10 (List.length flat.Flat.fequations);
  check Alcotest.(list string) "input order"
    [ "I0[0]"; "I0[1]"; "I0[2]"; "I0[3]"; "I1[0]"; "I1[1]"; "I1[2]"; "I1[3]";
      "Cin" ]
    flat.Flat.finputs

let test_expand_validate_clean () =
  List.iter
    (fun (name, params) ->
      let flat = expand_builtin name params in
      check Alcotest.(list string) (name ^ " validates") []
        (List.map Flat.problem_to_string (Flat.validate flat)))
    [ ("ADDER", [ ("size", 8) ]);
      ("ADDSUB", [ ("size", 4) ]);
      ("REGISTER", [ ("size", 4); ("load", 1) ]);
      ("SHL0", [ ("size", 8); ("shift_distance", 3) ]);
      ("ANDN", [ ("size", 5) ]);
      ("MUX2", [ ("size", 4) ]);
      ("DECODER", [ ("size", 3) ]);
      ("COMPARATOR", [ ("size", 4) ]);
      ("ALU", [ ("size", 4) ]);
      ("TRIBUF", [ ("size", 4) ]);
      ("COUNTER",
       [ ("size", 4); ("type", 2); ("load", 1); ("enable", 1); ("up_or_down", 3) ]);
      ("COUNTER",
       [ ("size", 5); ("type", 1); ("load", 0); ("enable", 0); ("up_or_down", 1) ]) ]

let test_expand_addsub_inlines_adder () =
  (* The ADDSUB calls #ADDER by macro substitution: B1 xor gates plus the
     adder's equations must appear, with the adder's carry nets renamed
     to the caller's C. *)
  let flat = expand_builtin "ADDSUB" [ ("size", 4) ] in
  let targets = List.map Flat.target_of flat.Flat.fequations in
  check Alcotest.bool "B1[3] present" true (List.mem "B1[3]" targets);
  check Alcotest.bool "C[0] driven by inlined adder" true (List.mem "C[0]" targets);
  check Alcotest.bool "O[3] driven" true (List.mem "O[3]" targets);
  check Alcotest.bool "Cout driven" true (List.mem "Cout" targets)

let test_expand_counter_ff_count () =
  let flat =
    expand_builtin "COUNTER"
      [ ("size", 4); ("type", 2); ("load", 1); ("enable", 1); ("up_or_down", 3) ]
  in
  let ffs =
    List.filter (fun eq -> match eq with Flat.Ff _ -> true | _ -> false)
      flat.Flat.fequations
  in
  let latches =
    List.filter (fun eq -> match eq with Flat.Latch _ -> true | _ -> false)
      flat.Flat.fequations
  in
  check Alcotest.int "4 flip-flops" 4 (List.length ffs);
  check Alcotest.int "1 clock-gating latch" 1 (List.length latches);
  (* parallel load: each FF carries two async specs *)
  List.iter
    (fun eq ->
      match eq with
      | Flat.Ff { asyncs; _ } -> check Alcotest.int "async load" 2 (List.length asyncs)
      | _ -> ())
    ffs

let test_expand_ripple_uses_q_clocks () =
  let flat =
    expand_builtin "COUNTER"
      [ ("size", 3); ("type", 1); ("load", 0); ("enable", 0); ("up_or_down", 1) ]
  in
  let clock_of tgt =
    List.find_map
      (fun eq ->
        match eq with
        | Flat.Ff { target; clock; rising; _ } when target = tgt ->
            Some (clock, rising)
        | _ -> None)
      flat.Flat.fequations
  in
  (match clock_of "Q[0]" with
   | Some (Flat.Fnet "CLK", true) -> ()
   | _ -> Alcotest.fail "Q[0] should clock on rising CLK");
  match clock_of "Q[2]" with
  | Some (Flat.Fnet "Q[1]", false) -> ()
  | _ -> Alcotest.fail "Q[2] should clock on falling Q[1]"

let test_expand_missing_param () =
  (try
     ignore (expand_builtin "ADDER" []);
     Alcotest.fail "expected expand error"
   with Expander.Expand_error msg ->
     check Alcotest.bool "mentions size" true
       (String.length msg > 0 && String.sub msg 0 14 = "parameter size"))

let test_expand_unknown_param () =
  (try
     ignore (expand_builtin "ADDER" [ ("size", 4); ("bogus", 1) ]);
     Alcotest.fail "expected expand error"
   with Expander.Expand_error _ -> ())

let test_expand_double_drive_rejected () =
  let d =
    Parser.parse
      "NAME:X; INORDER: A; OUTORDER: O;\n{ O = A; O = !A; }"
  in
  (try
     ignore (Expander.expand d []);
     Alcotest.fail "expected expand error"
   with Expander.Expand_error _ -> ())

let test_expand_aggregate_and () =
  let flat = expand_builtin "ANDN" [ ("size", 3) ] in
  match flat.Flat.fequations with
  | [ Flat.Comb { target = "O"; rhs = Flat.Fand nets } ] ->
      check Alcotest.int "three conjuncts" 3 (List.length nets)
  | _ -> Alcotest.fail "expected one aggregate AND equation"

let test_expand_decoder_minterm () =
  let flat = expand_builtin "DECODER" [ ("size", 2) ] in
  check Alcotest.int "4 outputs" 5 (List.length flat.Flat.foutputs + 1);
  (* O[2] = EN * I[1] * !I[0]: binary 10 *)
  let eq =
    List.find
      (fun e -> Flat.target_of e = "O[2]")
      flat.Flat.fequations
  in
  match eq with
  | Flat.Comb { rhs = Flat.Fand [ Flat.Fnet "EN"; Flat.Fnot (Flat.Fnet "I[0]");
                                  Flat.Fnet "I[1]" ]; _ } -> ()
  | Flat.Comb { rhs; _ } ->
      Alcotest.failf "unexpected O[2] equation: %s"
        (let b = Buffer.create 64 in Flat.print_fexpr b rhs; Buffer.contents b)
  | _ -> Alcotest.fail "O[2] should be combinational"

let test_expand_cline_arithmetic () =
  (* the Appendix A C(n,m) example: #c_line computing with a loop *)
  let d =
    Parser.parse
      "NAME:CNM; PARAMETER: n, m; INORDER: A; OUTORDER: O[10];\n\
       VARIABLE: i, cnm;\n\
       {\n\
         #c_line cnm = 1;\n\
         #for(i=1;i<=m;i++)\n\
           #c_line cnm = cnm * (n-i+1) / i;\n\
         O[cnm] = A;\n\
         #for(i=0;i<10;i++)\n\
           #if (i != cnm) O[i] = 0;\n\
       }"
  in
  (* C(4,2) = 6: the wire lands on O[6] *)
  let flat = Expander.expand d [ ("n", 4); ("m", 2) ] in
  let eq =
    List.find (fun e -> Flat.target_of e = "O[6]") flat.Flat.fequations
  in
  (match eq with
   | Flat.Comb { rhs = Flat.Fnet "A"; _ } -> ()
   | _ -> Alcotest.fail "O[6] should be wired to A")

let test_expand_call_with_constant_signal () =
  (* the appendix parameter files tie signals to 0: "adderl 4 A B 0 ..." *)
  let d =
    Parser.parse
      "NAME:W; PARAMETER: size; INORDER: X[size], Y[size];\n\
       OUTORDER: S[size], CO;\n\
       PIIFVARIABLE: CC[size+1];\n\
       VARIABLE: i;\n\
       SUBFUNCTION: ADDER;\n\
       { #ADDER(size, X, Y, 0, S, CO, CC); }"
  in
  let flat = Expander.expand ~registry:Builtin.registry d [ ("size", 3) ] in
  check Alcotest.(list string) "validates" []
    (List.map Flat.problem_to_string (Flat.validate flat));
  (* Cin tied to 0: plain addition *)
  let st = Interp.create flat in
  Interp.step st
    (List.init 3 (fun i -> (Printf.sprintf "X[%d]" i, (5 lsr i) land 1 = 1))
    @ List.init 3 (fun i -> (Printf.sprintf "Y[%d]" i, (2 lsr i) land 1 = 1)));
  let s =
    List.fold_left
      (fun a i ->
        (a * 2)
        + if Interp.value st (Printf.sprintf "S[%d]" (2 - i)) then 1 else 0)
      0 [ 0; 1; 2 ]
  in
  check Alcotest.int "5+2 with tied carry" 7 s

let test_milo_format () =
  let flat = expand_builtin "ADDER" [ ("size", 2) ] in
  let text = Flat.to_milo flat in
  check Alcotest.bool "has NAME" true
    (String.length text > 5 && String.sub text 0 5 = "NAME=");
  (* XOR prints as != per the appendix *)
  check Alcotest.bool "xor as !=" true
    (let rec find i =
       i + 2 <= String.length text
       && (String.sub text i 2 = "!=" || find (i + 1))
     in
     find 0)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

(* Read a bus value as an integer. *)
let read_bus st base width =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    v := (!v lsl 1) lor (if Interp.value st (Printf.sprintf "%s[%d]" base i) then 1 else 0)
  done;
  !v

let drive_bus base width x =
  List.init width (fun i -> (Printf.sprintf "%s[%d]" base i, (x lsr i) land 1 = 1))

let test_interp_adder_exhaustive () =
  let flat = expand_builtin "ADDER" [ ("size", 4) ] in
  let st = Interp.create flat in
  for a = 0 to 15 do
    for b = 0 to 15 do
      Interp.step st
        (drive_bus "I0" 4 a @ drive_bus "I1" 4 b @ [ ("Cin", false) ]);
      let sum = read_bus st "O" 4 in
      let cout = Interp.value st "Cout" in
      let expect = a + b in
      check Alcotest.int (Printf.sprintf "%d+%d" a b) (expect land 15) sum;
      check Alcotest.bool "carry" (expect > 15) cout
    done
  done

let test_interp_addsub () =
  let flat = expand_builtin "ADDSUB" [ ("size", 4) ] in
  let st = Interp.create flat in
  (* subtract: ADDSUB=1 computes A - B (two's complement) *)
  Interp.step st
    (drive_bus "A" 4 9 @ drive_bus "B" 4 3 @ [ ("ADDSUB", true) ]);
  check Alcotest.int "9-3" 6 (read_bus st "O" 4);
  Interp.step st
    (drive_bus "A" 4 5 @ drive_bus "B" 4 2 @ [ ("ADDSUB", false) ]);
  check Alcotest.int "5+2" 7 (read_bus st "O" 4)

let clock_pulse st other =
  Interp.step st (("CLK", false) :: other);
  Interp.step st (("CLK", true) :: other)

let test_interp_sync_up_counter () =
  let flat =
    expand_builtin "COUNTER"
      [ ("size", 4); ("type", 2); ("load", 0); ("enable", 0); ("up_or_down", 1) ]
  in
  let st = Interp.create flat in
  let others = drive_bus "D" 4 0 @ [ ("LOAD", true); ("ENA", true); ("DWUP", false) ] in
  Interp.step st (("CLK", false) :: others);
  for expected = 1 to 20 do
    clock_pulse st others;
    check Alcotest.int (Printf.sprintf "count %d" expected) (expected land 15)
      (read_bus st "Q" 4)
  done

let test_interp_counter_enable_gates () =
  let flat =
    expand_builtin "COUNTER"
      [ ("size", 4); ("type", 2); ("load", 0); ("enable", 1); ("up_or_down", 1) ]
  in
  let st = Interp.create flat in
  let en b = drive_bus "D" 4 0 @ [ ("LOAD", true); ("ENA", b); ("DWUP", false) ] in
  Interp.step st (("CLK", false) :: en true);
  clock_pulse st (en true);
  clock_pulse st (en true);
  check Alcotest.int "counted to 2" 2 (read_bus st "Q" 4);
  (* disable: clock pulses must not advance the count *)
  clock_pulse st (en false);
  clock_pulse st (en false);
  check Alcotest.int "frozen at 2" 2 (read_bus st "Q" 4);
  clock_pulse st (en true);
  check Alcotest.int "resumes at 3" 3 (read_bus st "Q" 4)

let test_interp_counter_async_load () =
  let flat =
    expand_builtin "COUNTER"
      [ ("size", 4); ("type", 2); ("load", 1); ("enable", 0); ("up_or_down", 1) ]
  in
  let st = Interp.create flat in
  let others ~load ~d =
    drive_bus "D" 4 d @ [ ("LOAD", load); ("ENA", true); ("DWUP", false) ]
  in
  Interp.step st (("CLK", false) :: others ~load:true ~d:0);
  (* LOAD is active low: dropping it loads D asynchronously. *)
  Interp.step st (("CLK", false) :: others ~load:false ~d:11);
  check Alcotest.int "loaded 11 without clock" 11 (read_bus st "Q" 4);
  Interp.step st (("CLK", false) :: others ~load:true ~d:11);
  clock_pulse st (others ~load:true ~d:11);
  check Alcotest.int "counts from loaded value" 12 (read_bus st "Q" 4)

let test_interp_updown () =
  let flat =
    expand_builtin "COUNTER"
      [ ("size", 4); ("type", 2); ("load", 0); ("enable", 0); ("up_or_down", 3) ]
  in
  let st = Interp.create flat in
  let others dir = drive_bus "D" 4 0 @ [ ("LOAD", true); ("ENA", true); ("DWUP", dir) ] in
  Interp.step st (("CLK", false) :: others false);
  clock_pulse st (others false);
  clock_pulse st (others false);
  clock_pulse st (others false);
  check Alcotest.int "up to 3" 3 (read_bus st "Q" 4);
  (* DWUP=1 counts down *)
  clock_pulse st (others true);
  clock_pulse st (others true);
  check Alcotest.int "down to 1" 1 (read_bus st "Q" 4)

let test_interp_ripple_counter () =
  let flat =
    expand_builtin "COUNTER"
      [ ("size", 4); ("type", 1); ("load", 0); ("enable", 0); ("up_or_down", 1) ]
  in
  let st = Interp.create flat in
  let others = drive_bus "D" 4 0 @ [ ("LOAD", true); ("ENA", true); ("DWUP", false) ] in
  Interp.step st (("CLK", false) :: others);
  for expected = 1 to 18 do
    clock_pulse st others;
    check Alcotest.int (Printf.sprintf "ripple count %d" expected)
      (expected land 15) (read_bus st "Q" 4)
  done

let test_interp_register_load () =
  let flat = expand_builtin "REGISTER" [ ("size", 4); ("load", 1) ] in
  let st = Interp.create flat in
  let inp ~load ~i = drive_bus "I" 4 i @ [ ("LOAD", load) ] in
  Interp.step st (("CLK", false) :: inp ~load:true ~i:9);
  Interp.step st (("CLK", true) :: inp ~load:true ~i:9);
  check Alcotest.int "loaded 9" 9 (read_bus st "Q" 4);
  (* LOAD low: holds *)
  Interp.step st (("CLK", false) :: inp ~load:false ~i:5);
  Interp.step st (("CLK", true) :: inp ~load:false ~i:5);
  check Alcotest.int "held 9" 9 (read_bus st "Q" 4)

let test_interp_mux_decoder_comparator () =
  let mux = Interp.create (expand_builtin "MUX2" [ ("size", 2) ]) in
  Interp.step mux (drive_bus "I0" 2 1 @ drive_bus "I1" 2 2 @ [ ("SEL", false) ]);
  check Alcotest.int "mux sel0" 1 (read_bus mux "O" 2);
  Interp.step mux (drive_bus "I0" 2 1 @ drive_bus "I1" 2 2 @ [ ("SEL", true) ]);
  check Alcotest.int "mux sel1" 2 (read_bus mux "O" 2);
  let dec = Interp.create (expand_builtin "DECODER" [ ("size", 2) ]) in
  Interp.step dec (drive_bus "I" 2 2 @ [ ("EN", true) ]);
  check Alcotest.int "one-hot" 4 (read_bus dec "O" 4);
  Interp.step dec (drive_bus "I" 2 2 @ [ ("EN", false) ]);
  check Alcotest.int "disabled" 0 (read_bus dec "O" 4);
  let cmp = Interp.create (expand_builtin "COMPARATOR" [ ("size", 4) ]) in
  let pairs = [ (3, 3); (5, 2); (2, 5); (15, 0); (0, 0); (8, 9) ] in
  List.iter
    (fun (a, b) ->
      Interp.step cmp (drive_bus "A" 4 a @ drive_bus "B" 4 b);
      check Alcotest.bool (Printf.sprintf "%d=%d" a b) (a = b) (Interp.value cmp "OEQ");
      check Alcotest.bool (Printf.sprintf "%d>%d" a b) (a > b) (Interp.value cmp "OGT");
      check Alcotest.bool (Printf.sprintf "%d<%d" a b) (a < b) (Interp.value cmp "OLT"))
    pairs

let test_interp_alu () =
  let st = Interp.create (expand_builtin "ALU" [ ("size", 4) ]) in
  let op c2 c1 c0 a b =
    Interp.step st
      (drive_bus "A" 4 a @ drive_bus "B" 4 b
      @ [ ("C0", c0); ("C1", c1); ("C2", c2) ]);
    read_bus st "O" 4
  in
  check Alcotest.int "and" (12 land 10) (op false false false 12 10);
  check Alcotest.int "or" (12 lor 10) (op false false true 12 10);
  check Alcotest.int "xor" (12 lxor 10) (op false true false 12 10);
  check Alcotest.int "not" (lnot 12 land 15) (op false true true 12 0);
  check Alcotest.int "add" 7 (op true false false 3 4);
  check Alcotest.int "sub" 2 (op true false true 9 7)

let test_interp_shifter () =
  let st = Interp.create (expand_builtin "SHL0" [ ("size", 8); ("shift_distance", 2) ]) in
  Interp.step st (drive_bus "I" 8 0b1011);
  check Alcotest.int "shl2" (0b1011 lsl 2) (read_bus st "O" 8)

let test_interp_tristate_bus_keeper () =
  let st = Interp.create (expand_builtin "TRIBUF" [ ("size", 1) ]) in
  Interp.step st [ ("I[0]", true); ("EN", true) ];
  check Alcotest.bool "driven high" true (Interp.value st "O[0]");
  Interp.step st [ ("I[0]", false); ("EN", false) ];
  check Alcotest.bool "keeps value when disabled" true (Interp.value st "O[0]")

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_adder_matches_arithmetic =
  QCheck.Test.make ~name:"n-bit adder computes a+b" ~count:200
    QCheck.(triple (int_bound 255) (int_bound 255) bool)
    (fun (a, b, cin) ->
      let flat = expand_builtin "ADDER" [ ("size", 8) ] in
      let st = Interp.create flat in
      Interp.step st
        (drive_bus "I0" 8 a @ drive_bus "I1" 8 b @ [ ("Cin", cin) ]);
      let expect = a + b + if cin then 1 else 0 in
      read_bus st "O" 8 = expect land 255
      && Interp.value st "Cout" = (expect > 255))

let prop_addsub_subtracts =
  QCheck.Test.make ~name:"addsub computes a-b mod 2^n" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let flat = expand_builtin "ADDSUB" [ ("size", 8) ] in
      let st = Interp.create flat in
      Interp.step st (drive_bus "A" 8 a @ drive_bus "B" 8 b @ [ ("ADDSUB", true) ]);
      read_bus st "O" 8 = (a - b) land 255)

let prop_counter_counts_mod_2n =
  QCheck.Test.make ~name:"sync counter counts pulses mod 2^n" ~count:30
    QCheck.(pair (int_range 2 6) (int_bound 40))
    (fun (size, pulses) ->
      let flat =
        expand_builtin "COUNTER"
          [ ("size", size); ("type", 2); ("load", 0); ("enable", 0);
            ("up_or_down", 1) ]
      in
      let st = Interp.create flat in
      let others =
        drive_bus "D" size 0 @ [ ("LOAD", true); ("ENA", true); ("DWUP", false) ]
      in
      Interp.step st (("CLK", false) :: others);
      for _ = 1 to pulses do
        clock_pulse st others
      done;
      read_bus st "Q" size = pulses mod (1 lsl size))

let prop_expander_deterministic =
  QCheck.Test.make ~name:"expansion is deterministic" ~count:20
    QCheck.(int_range 1 8)
    (fun size ->
      let f1 = expand_builtin "ADDER" [ ("size", size) ] in
      let f2 = expand_builtin "ADDER" [ ("size", size) ] in
      Flat.to_milo f1 = Flat.to_milo f2)

let prop_decoder_one_hot =
  QCheck.Test.make ~name:"decoder output is one-hot when enabled" ~count:50
    QCheck.(int_bound 7)
    (fun v ->
      let st = Interp.create (expand_builtin "DECODER" [ ("size", 3) ]) in
      Interp.step st (drive_bus "I" 3 v @ [ ("EN", true) ]);
      read_bus st "O" 8 = 1 lsl v)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_adder_matches_arithmetic; prop_addsub_subtracts;
      prop_counter_counts_mod_2n; prop_expander_deterministic;
      prop_decoder_one_hot ]

let () =
  Alcotest.run "iif"
    [ ("lexer",
       [ Alcotest.test_case "operators" `Quick test_lex_operators;
         Alcotest.test_case "hash directives" `Quick test_lex_hash;
         Alcotest.test_case "comments" `Quick test_lex_comment;
         Alcotest.test_case "increment ops" `Quick test_lex_increment;
         Alcotest.test_case "error line" `Quick test_lex_error_line ]);
      ("parser",
       [ Alcotest.test_case "precedence" `Quick test_parse_expr_precedence;
         Alcotest.test_case "sequential expr" `Quick test_parse_sequential;
         Alcotest.test_case "latched clock" `Quick test_parse_latched_clock;
         Alcotest.test_case "interface ops" `Quick test_parse_interface_ops;
         Alcotest.test_case "adder decls" `Quick test_parse_design_decls;
         Alcotest.test_case "counter design" `Quick test_parse_counter_design;
         Alcotest.test_case "all builtins parse" `Quick test_parse_all_builtins;
         Alcotest.test_case "error line" `Quick test_parse_error_reports_line;
         Alcotest.test_case "for loop" `Quick test_parse_for_loop;
         Alcotest.test_case "downward for" `Quick test_parse_downward_for ]);
      ("expander",
       [ Alcotest.test_case "adder4 shape" `Quick test_expand_adder4;
         Alcotest.test_case "all builtins validate" `Quick test_expand_validate_clean;
         Alcotest.test_case "addsub inlines adder" `Quick test_expand_addsub_inlines_adder;
         Alcotest.test_case "counter FFs and latch" `Quick test_expand_counter_ff_count;
         Alcotest.test_case "ripple clock chain" `Quick test_expand_ripple_uses_q_clocks;
         Alcotest.test_case "missing parameter" `Quick test_expand_missing_param;
         Alcotest.test_case "unknown parameter" `Quick test_expand_unknown_param;
         Alcotest.test_case "double drive rejected" `Quick test_expand_double_drive_rejected;
         Alcotest.test_case "aggregate and" `Quick test_expand_aggregate_and;
         Alcotest.test_case "decoder minterm" `Quick test_expand_decoder_minterm;
         Alcotest.test_case "c_line arithmetic" `Quick test_expand_cline_arithmetic;
         Alcotest.test_case "call with constant signal" `Quick
           test_expand_call_with_constant_signal;
         Alcotest.test_case "milo format" `Quick test_milo_format ]);
      ("interp",
       [ Alcotest.test_case "adder exhaustive" `Quick test_interp_adder_exhaustive;
         Alcotest.test_case "addsub" `Quick test_interp_addsub;
         Alcotest.test_case "sync up counter" `Quick test_interp_sync_up_counter;
         Alcotest.test_case "enable gating" `Quick test_interp_counter_enable_gates;
         Alcotest.test_case "async parallel load" `Quick test_interp_counter_async_load;
         Alcotest.test_case "up/down" `Quick test_interp_updown;
         Alcotest.test_case "ripple counter" `Quick test_interp_ripple_counter;
         Alcotest.test_case "register load" `Quick test_interp_register_load;
         Alcotest.test_case "mux/decoder/comparator" `Quick test_interp_mux_decoder_comparator;
         Alcotest.test_case "alu ops" `Quick test_interp_alu;
         Alcotest.test_case "shifter" `Quick test_interp_shifter;
         Alcotest.test_case "tristate keeper" `Quick test_interp_tristate_bus_keeper ]);
      ("properties", props) ]
