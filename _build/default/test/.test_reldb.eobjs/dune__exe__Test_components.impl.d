test/test_components.ml: Alcotest Builtin Equiv Icdb_iif Icdb_logic Icdb_sim Interp List Network Opt Printf QCheck QCheck_alcotest Techmap
