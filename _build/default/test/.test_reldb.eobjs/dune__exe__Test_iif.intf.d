test/test_iif.mli:
