test/test_hls.ml: Alcotest Controller Datapath Dfg Hashtbl Icdb Icdb_genus Icdb_hls Icdb_logic Icdb_netlist Icdb_sim Lazy List Printf Schedule String
