test/test_icdb.ml: Alcotest Command Exec Filename Icdb Icdb_cql Icdb_genus Icdb_layout Icdb_timing Instance List Obj Printf Server Spec String Sys
