test/test_genus.ml: Alcotest Component Connect Func Icdb Icdb_genus Icdb_iif Instance List Printf Server Spec String
