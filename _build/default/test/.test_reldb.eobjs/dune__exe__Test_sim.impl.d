test/test_sim.ml: Alcotest Builtin Celllib Event_sim Float Gate_sim Icdb_iif Icdb_logic Icdb_netlist Icdb_sim Icdb_timing List Netlist Network Opt Printf Random Stats String Techmap Xsim
