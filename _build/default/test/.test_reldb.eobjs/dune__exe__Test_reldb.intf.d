test/test_reldb.mli:
