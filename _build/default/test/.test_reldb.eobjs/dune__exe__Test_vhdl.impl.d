test/test_vhdl.ml: Alcotest Builtin Compare Fixed_lib Generic_lib Icdb Icdb_baseline Icdb_iif Icdb_logic Icdb_netlist Lazy List Netlist Network Opt Server String Techmap Vhdl
