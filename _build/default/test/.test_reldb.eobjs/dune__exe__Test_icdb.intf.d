test/test_icdb.mli:
