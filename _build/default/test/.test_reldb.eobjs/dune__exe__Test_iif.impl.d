test/test_iif.ml: Alcotest Array Ast Buffer Builtin Expander Flat Icdb_iif Interp Lexer List Parser Printf QCheck QCheck_alcotest String
