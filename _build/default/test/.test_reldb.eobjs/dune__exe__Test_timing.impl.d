test/test_timing.ml: Alcotest Builtin Icdb_iif Icdb_logic Icdb_netlist Icdb_timing List Netlist Network Opt Printf QCheck QCheck_alcotest Sizing Sta String Techmap
