test/test_reldb.ml: Alcotest Array Db Filename Gen Icdb_reldb List QCheck QCheck_alcotest Query Sql String Sys Table Value
