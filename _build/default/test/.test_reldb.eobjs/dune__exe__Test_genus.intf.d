test/test_genus.mli:
