(* Tests for static timing analysis and transistor sizing. *)

open Icdb_iif
open Icdb_logic
open Icdb_netlist
open Icdb_timing

let check = Alcotest.check

let synthesize flat =
  let net = Network.of_flat flat in
  Opt.optimize net;
  Techmap.map net

let counter ?(size = 5) ?(typ = 2) ?(load = 0) ?(enable = 0) ?(ud = 1) () =
  synthesize
    (Builtin.expand_exn "COUNTER"
       [ ("size", size); ("type", typ); ("load", load); ("enable", enable);
         ("up_or_down", ud) ])

let adder size = synthesize (Builtin.expand_exn "ADDER" [ ("size", size) ])

(* ------------------------------------------------------------------ *)
(* STA basics                                                          *)
(* ------------------------------------------------------------------ *)

let test_sta_single_inverter () =
  let nl =
    { Netlist.name = "inv1";
      inputs = [ "a" ];
      outputs = [ "y" ];
      instances =
        [ { Netlist.inst_name = "U1"; cell = "INV"; size = 1.0;
            conns = [ ("A", "a"); ("Y", "y") ] } ] }
  in
  let r = Sta.analyze nl in
  (* no load, no fanout readers: delay = Y = 0.4, plus Z*1 for the output *)
  let wd = List.assoc "y" r.Sta.output_delays in
  check Alcotest.bool "intrinsic-ish delay" true (wd > 0.3 && wd < 1.0);
  check Alcotest.(list (pair string (float 0.001))) "no setup" [ ("a", 0.0) ]
    r.Sta.setup_times

let test_sta_chain_adds_delays () =
  let chain n =
    let instances =
      List.init n (fun i ->
          { Netlist.inst_name = Printf.sprintf "U%d" i;
            cell = "INV";
            size = 1.0;
            conns =
              [ ("A", if i = 0 then "a" else Printf.sprintf "n%d" i);
                ("Y", if i = n - 1 then "y" else Printf.sprintf "n%d" (i + 1)) ] })
    in
    { Netlist.name = "chain"; inputs = [ "a" ]; outputs = [ "y" ]; instances }
  in
  let wd n =
    List.assoc "y" (Sta.analyze (chain n)).Sta.output_delays
  in
  check Alcotest.bool "monotone in depth" true (wd 4 > wd 2 && wd 8 > wd 4);
  (* roughly linear: doubling the chain roughly doubles the delay *)
  let r = wd 8 /. wd 4 in
  check Alcotest.bool "roughly linear" true (r > 1.6 && r < 2.4)

let test_sta_load_increases_delay () =
  let nl = adder 4 in
  let base = Sta.analyze nl in
  let loaded = Sta.analyze ~port_loads:[ ("O[3]", 40.0) ] nl in
  let wd r = List.assoc "O[3]" r.Sta.output_delays in
  check Alcotest.bool "more load, more delay" true (wd loaded > wd base)

let test_sta_counter_report_shape () =
  let nl = counter ~size:5 ~load:1 ~enable:1 ~ud:3 () in
  let r = Sta.analyze nl in
  (* the §3.3 report: CW positive, Q outputs fast (just clk->Q), MINMAX
     slower (carry chain), DWUP has a setup time *)
  check Alcotest.bool "CW positive" true (r.Sta.clock_width > 0.0);
  let wd p = List.assoc p r.Sta.output_delays in
  check Alcotest.bool "MINMAX slower than Q[0]" true (wd "MINMAX" > wd "Q[0]");
  let sd = List.assoc "DWUP" r.Sta.setup_times in
  check Alcotest.bool "DWUP has setup" true (sd > 0.0);
  check Alcotest.bool "CW covers DWUP setup" true (r.Sta.clock_width >= sd)

let test_sta_ripple_slower_than_sync () =
  (* ripple counter: Q[4] settles after the whole flip-flop chain *)
  let wd nl port = List.assoc port (Sta.analyze nl).Sta.output_delays in
  let sync = counter ~typ:2 () in
  let ripple = counter ~typ:1 () in
  check Alcotest.bool "ripple Q[4] slower" true
    (wd ripple "Q[4]" > wd sync "Q[4]")

let test_sta_adder_carry_grows () =
  let wd size =
    let nl = adder size in
    List.assoc "Cout" (Sta.analyze nl).Sta.output_delays
  in
  check Alcotest.bool "8-bit carry slower than 4-bit" true (wd 8 > wd 4)

let test_sta_comb_only_no_cw_from_regs () =
  let nl = adder 4 in
  let r = Sta.analyze nl in
  (* no registers: CW reduces to the worst input->reg setup = 0 *)
  check Alcotest.(float 0.001) "CW 0 for comb" 0.0 r.Sta.clock_width

let test_report_format () =
  let nl = counter ~size:3 ~load:1 ~enable:1 ~ud:3 () in
  let r = Sta.analyze nl in
  let s = Sta.report_to_string r in
  check Alcotest.bool "has CW line" true (String.length s > 3 && String.sub s 0 3 = "CW ");
  check Alcotest.bool "mentions WD Q[2]" true
    (let re = "WD Q[2]" in
     let rec find i =
       i + String.length re <= String.length s
       && (String.sub s i (String.length re) = re || find (i + 1))
     in
     find 0)

(* ------------------------------------------------------------------ *)
(* Sizing                                                              *)
(* ------------------------------------------------------------------ *)

let test_sizing_cheapest_keeps_sizes () =
  let nl = adder 4 in
  let sized =
    Sizing.size_to_constraints nl
      { Sizing.default_constraints with strategy = Sizing.Cheapest }
  in
  List.iter
    (fun (i : Netlist.instance) ->
      check (Alcotest.float 0.0001) "size 1" 1.0 i.size)
    sized.Netlist.instances

let test_sizing_fastest_reduces_delay () =
  let nl = adder 4 in
  let before = List.assoc "Cout" (Sta.analyze nl).Sta.output_delays in
  let sized =
    Sizing.size_to_constraints nl
      { Sizing.default_constraints with strategy = Sizing.Fastest }
  in
  let after = List.assoc "Cout" (Sta.analyze sized).Sta.output_delays in
  check Alcotest.bool
    (Printf.sprintf "delay %.2f -> %.2f" before after)
    true (after < before);
  check Alcotest.bool "area grew" true
    (Sta.cell_area sized > Sta.cell_area nl)

let test_sizing_meets_comb_delay () =
  let nl = adder 4 in
  let before = List.assoc "Cout" (Sta.analyze nl).Sta.output_delays in
  (* ask for 15% faster than unsized *)
  let bound = before *. 0.85 in
  let c =
    { Sizing.default_constraints with
      comb_delays = [ ("Cout", bound) ] }
  in
  let sized = Sizing.size_to_constraints nl c in
  check Alcotest.bool "constraint met" true (Sizing.meets_constraints sized c)

let test_sizing_clock_width_constraint () =
  let nl = counter ~size:4 ~load:1 ~enable:1 ~ud:3 () in
  let cw0 = (Sta.analyze nl).Sta.clock_width in
  let c =
    { Sizing.default_constraints with clock_width = Some (cw0 *. 0.9) }
  in
  let sized = Sizing.size_to_constraints nl c in
  let cw1 = (Sta.analyze sized).Sta.clock_width in
  check Alcotest.bool
    (Printf.sprintf "CW %.2f -> %.2f (bound %.2f)" cw0 cw1 (cw0 *. 0.9))
    true (cw1 <= cw0 *. 0.9 +. 1e-6)

let test_sizing_load_costs_area () =
  (* Figure 10's mechanism: same clock-width bound under growing output
     load costs (modest) area. *)
  let nl = counter ~size:4 ~load:1 ~enable:1 ~ud:3 () in
  let cw0 = (Sta.analyze nl).Sta.clock_width in
  let area_for load =
    let ports = List.map (fun o -> (o, load)) [ "Q[0]"; "Q[1]"; "Q[2]"; "Q[3]" ] in
    let c =
      { Sizing.default_constraints with
        clock_width = Some cw0;
        port_loads = ports }
    in
    Sta.cell_area (Sizing.size_to_constraints nl c)
  in
  let a10 = area_for 10.0 and a50 = area_for 50.0 in
  check Alcotest.bool
    (Printf.sprintf "area(50)=%.0f >= area(10)=%.0f" a50 a10)
    true (a50 >= a10)

let prop_sizing_never_breaks_function =
  (* sizing only changes the [size] field; cells and connectivity stay *)
  QCheck.Test.make ~name:"sizing preserves structure" ~count:5
    QCheck.(int_range 2 5)
    (fun size ->
      let nl = adder size in
      let sized =
        Sizing.size_to_constraints nl
          { Sizing.default_constraints with strategy = Sizing.Fastest }
      in
      List.length sized.Netlist.instances = List.length nl.Netlist.instances
      && List.for_all2
           (fun (a : Netlist.instance) (b : Netlist.instance) ->
             a.cell = b.cell && a.conns = b.conns && b.size >= a.size)
           nl.Netlist.instances sized.Netlist.instances)

let props = List.map QCheck_alcotest.to_alcotest [ prop_sizing_never_breaks_function ]

let () =
  Alcotest.run "timing"
    [ ("sta",
       [ Alcotest.test_case "single inverter" `Quick test_sta_single_inverter;
         Alcotest.test_case "chain adds delays" `Quick test_sta_chain_adds_delays;
         Alcotest.test_case "load increases delay" `Quick test_sta_load_increases_delay;
         Alcotest.test_case "counter report shape" `Quick test_sta_counter_report_shape;
         Alcotest.test_case "ripple slower than sync" `Quick test_sta_ripple_slower_than_sync;
         Alcotest.test_case "adder carry grows" `Quick test_sta_adder_carry_grows;
         Alcotest.test_case "comb has zero CW" `Quick test_sta_comb_only_no_cw_from_regs;
         Alcotest.test_case "report format" `Quick test_report_format ]);
      ("sizing",
       [ Alcotest.test_case "cheapest keeps sizes" `Quick test_sizing_cheapest_keeps_sizes;
         Alcotest.test_case "fastest reduces delay" `Quick test_sizing_fastest_reduces_delay;
         Alcotest.test_case "meets comb delay" `Quick test_sizing_meets_comb_delay;
         Alcotest.test_case "clock width constraint" `Quick test_sizing_clock_width_constraint;
         Alcotest.test_case "load costs area" `Quick test_sizing_load_costs_area ]);
      ("properties", props) ]
