(* Tests for the GENUS-style catalog: naming and taxonomy invariants,
   plus a sweep proving every predefined component generates through the
   full server pipeline with verification enabled. *)

open Icdb_genus
open Icdb

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Func                                                                *)
(* ------------------------------------------------------------------ *)

let test_func_roundtrip () =
  List.iter
    (fun f ->
      check Alcotest.bool
        ("roundtrip " ^ Func.to_string f)
        true
        (Func.equal f (Func.of_string (Func.to_string f))))
    Func.known

let test_func_names_unique () =
  let names = List.map Func.to_string Func.known in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_func_custom () =
  match Func.of_string "MY_WEIRD_OP" with
  | Func.Custom "MY_WEIRD_OP" -> ()
  | _ -> Alcotest.fail "expected Custom"

let test_func_case_insensitive () =
  check Alcotest.bool "add lowercase" true
    (Func.equal Func.ADD (Func.of_string "add"))

(* ------------------------------------------------------------------ *)
(* Component catalog invariants                                        *)
(* ------------------------------------------------------------------ *)

let test_catalog_names_unique () =
  let names = List.map (fun c -> c.Component.comp_name) Component.all in
  check Alcotest.int "unique component names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_catalog_size () =
  (* the paper's predefined list has ~25 entries; ours should approach it *)
  check Alcotest.bool "at least 20 components" true
    (List.length Component.all >= 20)

let test_catalog_every_component_has_functions () =
  List.iter
    (fun c ->
      check Alcotest.bool (c.Component.comp_name ^ " has functions") true
        (c.Component.functions_of [] <> []))
    Component.all

let test_catalog_every_component_has_ports () =
  List.iter
    (fun c ->
      let has_out =
        List.exists
          (fun p -> p.Component.role = Component.Data_out)
          c.Component.ports
      in
      check Alcotest.bool (c.Component.comp_name ^ " has an output") true has_out)
    Component.all

let test_catalog_implementations_exist () =
  List.iter
    (fun c ->
      check Alcotest.bool
        (c.Component.comp_name ^ " implementation parses")
        true
        (Icdb_iif.Builtin.find c.Component.implementation <> None))
    Component.all

let test_catalog_defaults_expand () =
  (* the default attribute values must be accepted by the IIF design *)
  List.iter
    (fun c ->
      let params = c.Component.params_of [] in
      let flat = Icdb_iif.Builtin.expand_exn c.Component.implementation params in
      check Alcotest.bool (c.Component.comp_name ^ " expands") true
        (flat.Icdb_iif.Flat.fequations <> []))
    Component.all

let test_connections_reference_real_ports () =
  List.iter
    (fun c ->
      let port_names = List.map (fun p -> p.Component.port_name) c.Component.ports in
      List.iter
        (fun (conn : Connect.t) ->
          List.iter
            (fun line ->
              match line with
              | Connect.Port_map { comp_port; _ } ->
                  check Alcotest.bool
                    (Printf.sprintf "%s: %s is a port" c.Component.comp_name comp_port)
                    true (List.mem comp_port port_names)
              | Connect.Control { port; _ } ->
                  check Alcotest.bool
                    (Printf.sprintf "%s: control %s is a port" c.Component.comp_name port)
                    true (List.mem port port_names))
            conn.Connect.lines)
        (c.Component.connections_of []))
    Component.all

let test_performing () =
  let storage = Component.performing [ Func.STORAGE ] in
  let names = List.map (fun c -> c.Component.comp_name) storage in
  check Alcotest.bool "register stores" true (List.mem "register" names);
  check Alcotest.bool "register_file stores" true (List.mem "register_file" names);
  check Alcotest.bool "adder does not store" true (not (List.mem "adder" names))

let test_check_attributes () =
  match Component.find "counter" with
  | None -> Alcotest.fail "counter missing"
  | Some c -> (
      Component.check_attributes c [ ("size", 4) ];
      try
        Component.check_attributes c [ ("bogus", 1) ];
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

let test_connect_format () =
  match Component.find "alu" with
  | None -> Alcotest.fail "alu missing"
  | Some c ->
      let s = Connect.all_to_string (c.Component.connections_of []) in
      let contains needle =
        let nh = String.length s and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub s i nn = needle || at (i + 1)) in
        at 0
      in
      check Alcotest.bool "## function ADD" true (contains "## function ADD");
      check Alcotest.bool "** C2 1" true (contains "** C2 1")

(* ------------------------------------------------------------------ *)
(* Every catalog component generates through the verified pipeline     *)
(* ------------------------------------------------------------------ *)

let generation_sweep () =
  let server = Server.create ~verify:true () in
  List.iter
    (fun (c : Component.t) ->
      (* small attribute values keep verification fast *)
      let small (n, d) =
        match n with
        | "size" -> (n, min d 3)
        | "abits" -> (n, 2)
        | "asize" | "bsize" -> (n, 2)
        | "stages" -> (n, 2)
        | "width" -> (n, 2)
        | _ -> (n, d)
      in
      let attributes = List.map small c.Component.attributes in
      (* barrel shifter: size must cover 2^stages *)
      let attributes =
        if c.Component.comp_name = "barrel_shifter" then
          [ ("size", 4); ("stages", 2) ]
        else attributes
      in
      let inst =
        Server.request_component server
          (Spec.make
             (Spec.From_component
                { component = c.Component.comp_name; attributes; functions = [] }))
      in
      check Alcotest.bool
        (c.Component.comp_name ^ " generated and verified")
        true
        (Instance.gate_count inst > 0))
    Component.all

let () =
  Alcotest.run "genus"
    [ ("func",
       [ Alcotest.test_case "roundtrip" `Quick test_func_roundtrip;
         Alcotest.test_case "unique names" `Quick test_func_names_unique;
         Alcotest.test_case "custom escape" `Quick test_func_custom;
         Alcotest.test_case "case insensitive" `Quick test_func_case_insensitive ]);
      ("catalog",
       [ Alcotest.test_case "unique names" `Quick test_catalog_names_unique;
         Alcotest.test_case "catalog size" `Quick test_catalog_size;
         Alcotest.test_case "all have functions" `Quick
           test_catalog_every_component_has_functions;
         Alcotest.test_case "all have outputs" `Quick
           test_catalog_every_component_has_ports;
         Alcotest.test_case "implementations exist" `Quick
           test_catalog_implementations_exist;
         Alcotest.test_case "defaults expand" `Quick test_catalog_defaults_expand;
         Alcotest.test_case "connections use real ports" `Quick
           test_connections_reference_real_ports;
         Alcotest.test_case "performing" `Quick test_performing;
         Alcotest.test_case "check_attributes" `Quick test_check_attributes;
         Alcotest.test_case "connect format" `Quick test_connect_format ]);
      ("generation",
       [ Alcotest.test_case "every catalog component generates" `Slow
           generation_sweep ]) ]
