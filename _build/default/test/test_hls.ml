(* Tests for the behavioral-synthesis client (Figure 1): dataflow
   graphs, ICDB-informed scheduling, chaining, multi-cycling and
   functional-unit binding. *)

open Icdb_hls

let check = Alcotest.check

let server = lazy (Icdb.Server.create ())

let run ?(pessimism = 1.0) dfg clock =
  Schedule.run (Lazy.force server) dfg ~clock ~pessimism

(* ------------------------------------------------------------------ *)
(* Dfg                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dfg_topological () =
  let order = Dfg.validate Dfg.diffeq in
  let pos id =
    let rec find i = function
      | [] -> Alcotest.fail ("missing " ^ id)
      | (o : Dfg.op) :: rest -> if o.Dfg.op_id = id then i else find (i + 1) rest
    in
    find 0 order
  in
  List.iter
    (fun (o : Dfg.op) ->
      List.iter
        (fun d ->
          check Alcotest.bool
            (Printf.sprintf "%s after %s" o.Dfg.op_id d)
            true
            (pos d < pos o.Dfg.op_id))
        o.Dfg.op_deps)
    Dfg.diffeq.Dfg.ops

let test_dfg_cycle_rejected () =
  let cyclic =
    { Dfg.dfg_name = "cyc";
      ops =
        [ { Dfg.op_id = "a"; op_func = Icdb_genus.Func.ADD; op_width = 4;
            op_deps = [ "b" ] };
          { Dfg.op_id = "b"; op_func = Icdb_genus.Func.ADD; op_width = 4;
            op_deps = [ "a" ] } ] }
  in
  (try
     ignore (Dfg.validate cyclic);
     Alcotest.fail "expected Dfg_error"
   with Dfg.Dfg_error _ -> ())

let test_dfg_unknown_dep_rejected () =
  let bad =
    { Dfg.dfg_name = "bad";
      ops =
        [ { Dfg.op_id = "a"; op_func = Icdb_genus.Func.ADD; op_width = 4;
            op_deps = [ "ghost" ] } ] }
  in
  (try
     ignore (Dfg.validate bad);
     Alcotest.fail "expected Dfg_error"
   with Dfg.Dfg_error _ -> ())

let test_dfg_duplicate_rejected () =
  let bad =
    { Dfg.dfg_name = "dup";
      ops =
        [ { Dfg.op_id = "a"; op_func = Icdb_genus.Func.ADD; op_width = 4;
            op_deps = [] };
          { Dfg.op_id = "a"; op_func = Icdb_genus.Func.SUB; op_width = 4;
            op_deps = [] } ] }
  in
  (try
     ignore (Dfg.validate bad);
     Alcotest.fail "expected Dfg_error"
   with Dfg.Dfg_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Scheduling invariants                                               *)
(* ------------------------------------------------------------------ *)

let find_op r id =
  List.find (fun s -> s.Schedule.so_op.Dfg.op_id = id) r.Schedule.r_ops

let test_schedule_respects_deps () =
  let r = run Dfg.diffeq 30.0 in
  List.iter
    (fun s ->
      List.iter
        (fun dep ->
          let p = find_op r dep in
          check Alcotest.bool
            (Printf.sprintf "%s starts after %s" s.Schedule.so_op.Dfg.op_id dep)
            true
            (s.Schedule.so_start_step > p.Schedule.so_end_step
             || (s.Schedule.so_start_step >= p.Schedule.so_end_step
                 && s.Schedule.so_start_offset >= 0.0)))
        s.Schedule.so_op.Dfg.op_deps)
    r.Schedule.r_ops

let test_schedule_no_unit_overlap () =
  let r = run Dfg.diffeq 30.0 in
  let by_unit = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let prev =
        match Hashtbl.find_opt by_unit s.Schedule.so_unit with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_unit s.Schedule.so_unit (s :: prev))
    r.Schedule.r_ops;
  Hashtbl.iter
    (fun unit ops ->
      let sorted =
        List.sort
          (fun a b -> compare a.Schedule.so_start_step b.Schedule.so_start_step)
          ops
      in
      let rec no_overlap = function
        | a :: (b :: _ as rest) ->
            check Alcotest.bool
              (Printf.sprintf "%s reuse is sequential" unit)
              true
              (b.Schedule.so_start_step > a.Schedule.so_end_step
               || (b.Schedule.so_start_step = a.Schedule.so_end_step
                   && b.Schedule.so_start_offset +. 0.001 >= a.Schedule.so_start_offset
                      +. a.Schedule.so_delay));
            no_overlap rest
        | _ -> ()
      in
      no_overlap sorted)
    by_unit

let test_schedule_huge_clock_single_step () =
  let r = run Dfg.fir4 2000.0 in
  check Alcotest.int "one step" 1 r.Schedule.r_steps;
  check Alcotest.int "no registers" 0 r.Schedule.r_register_bits;
  (* everything chains: ops with deps start at nonzero offsets *)
  let a2 = find_op r "a2" in
  check Alcotest.bool "a2 chained mid-step" true (a2.Schedule.so_start_offset > 0.0)

let test_schedule_tighter_clock_more_steps () =
  let s20 = (run Dfg.diffeq 20.0).Schedule.r_steps in
  let s40 = (run Dfg.diffeq 40.0).Schedule.r_steps in
  let s120 = (run Dfg.diffeq 120.0).Schedule.r_steps in
  check Alcotest.bool
    (Printf.sprintf "steps %d >= %d >= %d" s20 s40 s120)
    true
    (s20 >= s40 && s40 >= s120)

let test_schedule_binding_reuses_units () =
  (* four multiplies never alive at once share units at a small clock *)
  let r = run Dfg.diffeq 30.0 in
  let muls =
    List.filter
      (fun u -> u.Schedule.u_component = "multiplier")
      r.Schedule.r_units
  in
  check Alcotest.bool
    (Printf.sprintf "%d multiplier units for 4 ops" (List.length muls))
    true
    (List.length muls < 4 && List.length muls >= 1)

let test_schedule_pessimism_costs_latency () =
  let honest = run ~pessimism:1.0 Dfg.diffeq 30.0 in
  let margins = run ~pessimism:1.6 Dfg.diffeq 30.0 in
  check Alcotest.bool
    (Printf.sprintf "latency %.0f < %.0f" honest.Schedule.r_latency
       margins.Schedule.r_latency)
    true
    (honest.Schedule.r_latency < margins.Schedule.r_latency)

let test_schedule_multicycle_ops () =
  (* at 30 ns the 8-bit multiplier (~100 ns) must be multi-cycle *)
  let r = run Dfg.diffeq 30.0 in
  let m1 = find_op r "m1" in
  check Alcotest.bool "multiplier spans steps" true
    (m1.Schedule.so_end_step > m1.Schedule.so_start_step)

let test_schedule_registers_counted () =
  let r = run Dfg.diffeq 30.0 in
  check Alcotest.bool "values cross steps" true (r.Schedule.r_register_bits > 0)

let test_schedule_report_format () =
  let r = run Dfg.fir4 40.0 in
  let s = Schedule.to_string r in
  check Alcotest.bool "mentions the dfg" true
    (String.length s > 4 && String.sub s 0 4 = "fir4")

let test_schedule_bad_clock () =
  (try
     ignore (run Dfg.fir4 0.0);
     Alcotest.fail "expected Schedule_error"
   with Schedule.Schedule_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Controller synthesis                                                *)
(* ------------------------------------------------------------------ *)

let controller_for dfg clock =
  let s = Lazy.force server in
  let r = Schedule.run s dfg ~clock ~pessimism:1.0 in
  (r, Controller.generate s r)

let test_controller_generates () =
  let r, c = controller_for Dfg.diffeq 30.0 in
  check Alcotest.bool "has gates" true
    (Icdb.Instance.gate_count c.Controller.c_instance > r.Schedule.r_steps);
  check Alcotest.bool "DONE output" true
    (List.mem "DONE" c.Controller.c_outputs);
  (* one GO strobe per functional unit *)
  List.iter
    (fun u ->
      check Alcotest.bool ("GO for " ^ u.Schedule.u_name) true
        (List.mem ("GO_" ^ u.Schedule.u_name) c.Controller.c_outputs))
    r.Schedule.r_units

let test_controller_strobe_timing () =
  let r, c = controller_for Dfg.diffeq 30.0 in
  let sim = Icdb_sim.Gate_sim.create c.Controller.c_instance.Icdb.Instance.netlist in
  Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", true) ];
  Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", false) ];
  for step = 0 to r.Schedule.r_steps - 1 do
    (* every op starting this step must have its unit's GO high *)
    List.iter
      (fun s ->
        if s.Schedule.so_start_step = step then
          check Alcotest.bool
            (Printf.sprintf "%s GO at step %d" s.Schedule.so_unit step)
            true
            (Icdb_sim.Gate_sim.value sim ("GO_" ^ s.Schedule.so_unit)))
      r.Schedule.r_ops;
    check Alcotest.bool
      (Printf.sprintf "DONE only at the last step (%d)" step)
      (step = r.Schedule.r_steps - 1)
      (Icdb_sim.Gate_sim.value sim "DONE");
    Icdb_sim.Gate_sim.step sim [ ("CLK", true); ("RESET", false) ];
    Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", false) ]
  done

let test_controller_ring_wraps () =
  let r, c = controller_for Dfg.fir4 40.0 in
  let sim = Icdb_sim.Gate_sim.create c.Controller.c_instance.Icdb.Instance.netlist in
  Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", true) ];
  Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", false) ];
  (* two full passes: DONE fires exactly twice *)
  let dones = ref 0 in
  for _ = 1 to 2 * r.Schedule.r_steps do
    if Icdb_sim.Gate_sim.value sim "DONE" then incr dones;
    Icdb_sim.Gate_sim.step sim [ ("CLK", true); ("RESET", false) ];
    Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", false) ]
  done;
  check Alcotest.int "wraps around" 2 !dones

let test_controller_steers_multifunction_units () =
  let _, c = controller_for Dfg.diffeq 30.0 in
  (* subtraction on the adder_subtractor requires ADDSUB = 1 *)
  check Alcotest.bool "ADDSUB steering output" true
    (List.exists
       (fun o ->
         String.length o > 7
         && String.sub o (String.length o - 6) 6 = "ADDSUB")
       c.Controller.c_outputs)

let test_controller_encodings_equivalent () =
  let s = Lazy.force server in
  let r = Schedule.run s Dfg.diffeq ~clock:30.0 ~pessimism:1.0 in
  let strobe_trace enc =
    let c = Controller.generate ~encoding:enc s r in
    let sim = Icdb_sim.Gate_sim.create c.Controller.c_instance.Icdb.Instance.netlist in
    Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", true) ];
    Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", false) ];
    let trace = ref [] in
    for _ = 0 to r.Schedule.r_steps - 1 do
      trace :=
        List.map
          (fun o -> Icdb_sim.Gate_sim.value sim o)
          c.Controller.c_outputs
        :: !trace;
      Icdb_sim.Gate_sim.step sim [ ("CLK", true); ("RESET", false) ];
      Icdb_sim.Gate_sim.step sim [ ("CLK", false); ("RESET", false) ]
    done;
    (c, List.rev !trace)
  in
  let oh, t1 = strobe_trace Controller.One_hot in
  let bin, t2 = strobe_trace Controller.Binary in
  check Alcotest.bool "identical strobe traces" true (t1 = t2);
  (* binary trades flip-flops for combinational logic *)
  let ffs (c : Controller.t) =
    List.length
      (List.filter
         (fun (i : Icdb_netlist.Netlist.instance) ->
           String.length i.cell >= 3 && String.sub i.cell 0 3 = "DFF")
         c.Controller.c_instance.Icdb.Instance.netlist.Icdb_netlist.Netlist.instances)
  in
  check Alcotest.int "one-hot: one FF per step" r.Schedule.r_steps (ffs oh);
  check Alcotest.bool "binary: log2 FFs" true (ffs bin <= 4)

(* ------------------------------------------------------------------ *)
(* Datapath construction                                               *)
(* ------------------------------------------------------------------ *)

let datapath_for dfg clock =
  let s = Lazy.force server in
  let r = Schedule.run s dfg ~clock ~pessimism:1.0 in
  (r, Datapath.generate s r)

let test_datapath_generates () =
  let r, dp = datapath_for Dfg.diffeq 30.0 in
  let unit_gates =
    List.fold_left
      (fun acc u -> acc + Icdb.Instance.gate_count u.Schedule.u_instance)
      0 r.Schedule.r_units
  in
  check Alcotest.bool "includes units plus regs and muxes" true
    (Icdb.Instance.gate_count dp.Datapath.d_instance > unit_gates);
  check Alcotest.bool "muxes inserted for shared units" true
    (dp.Datapath.d_muxes > 0);
  check Alcotest.bool "has a shape function" true
    (dp.Datapath.d_instance.Icdb.Instance.shape <> [])

let test_datapath_registers_sinks () =
  let r, dp = datapath_for Dfg.diffeq 30.0 in
  ignore r;
  (* sink results (s2, c1) must be registered; so must cross-step ones *)
  List.iter
    (fun id ->
      check Alcotest.bool (id ^ " registered") true
        (List.mem id dp.Datapath.d_registers))
    [ "s2"; "c1"; "m1" ]

let test_datapath_control_inputs () =
  let _, dp = datapath_for Dfg.diffeq 30.0 in
  let inputs = dp.Datapath.d_instance.Icdb.Instance.netlist.Icdb_netlist.Netlist.inputs in
  check Alcotest.bool "CLK" true (List.mem "CLK" inputs);
  check Alcotest.bool "load strobes" true (List.mem "LD_s2" inputs);
  check Alcotest.bool "mux selects for shared multiplier" true
    (List.exists
       (fun n -> String.length n > 4 && String.sub n 0 4 = "SEL_")
       inputs)

let test_datapath_structurally_sound () =
  let _, dp = datapath_for Dfg.fir4 40.0 in
  (* levelization succeeds = no combinational cycles through the wiring *)
  let s =
    Icdb_netlist.Stats.analyze dp.Datapath.d_instance.Icdb.Instance.netlist
      ~is_output_pin:Icdb_logic.Celllib.is_output_pin
      ~is_sequential:(fun cell ->
        match Icdb_logic.Celllib.find cell with
        | Some c -> (
            match c.Icdb_logic.Celllib.kind with
            | Icdb_logic.Celllib.Ff _ | Icdb_logic.Celllib.Latch_cell _ -> true
            | _ -> false)
        | None -> false)
  in
  check Alcotest.bool "sequential elements present" true (s.Icdb_netlist.Stats.sequential > 0);
  check Alcotest.bool "positive depth" true (s.Icdb_netlist.Stats.logic_depth > 0)

let test_datapath_vhdl_text () =
  let _, dp = datapath_for Dfg.fir4 40.0 in
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  check Alcotest.bool "entity" true (contains "entity dp_fir4" dp.Datapath.d_vhdl);
  check Alcotest.bool "port maps" true (contains "port map" dp.Datapath.d_vhdl)

let () =
  Alcotest.run "hls"
    [ ("dfg",
       [ Alcotest.test_case "topological order" `Quick test_dfg_topological;
         Alcotest.test_case "cycle rejected" `Quick test_dfg_cycle_rejected;
         Alcotest.test_case "unknown dep rejected" `Quick test_dfg_unknown_dep_rejected;
         Alcotest.test_case "duplicate rejected" `Quick test_dfg_duplicate_rejected ]);
      ("schedule",
       [ Alcotest.test_case "respects deps" `Quick test_schedule_respects_deps;
         Alcotest.test_case "no unit overlap" `Quick test_schedule_no_unit_overlap;
         Alcotest.test_case "huge clock chains all" `Quick
           test_schedule_huge_clock_single_step;
         Alcotest.test_case "tighter clock more steps" `Quick
           test_schedule_tighter_clock_more_steps;
         Alcotest.test_case "binding reuses units" `Quick
           test_schedule_binding_reuses_units;
         Alcotest.test_case "pessimism costs latency" `Quick
           test_schedule_pessimism_costs_latency;
         Alcotest.test_case "multi-cycle ops" `Quick test_schedule_multicycle_ops;
         Alcotest.test_case "registers counted" `Quick test_schedule_registers_counted;
         Alcotest.test_case "report format" `Quick test_schedule_report_format;
         Alcotest.test_case "bad clock" `Quick test_schedule_bad_clock ]);
      ("controller",
       [ Alcotest.test_case "generates" `Quick test_controller_generates;
         Alcotest.test_case "strobe timing" `Quick test_controller_strobe_timing;
         Alcotest.test_case "ring wraps" `Quick test_controller_ring_wraps;
         Alcotest.test_case "steers multi-function units" `Quick
           test_controller_steers_multifunction_units;
         Alcotest.test_case "encodings equivalent" `Quick
           test_controller_encodings_equivalent ]);
      ("datapath",
       [ Alcotest.test_case "generates" `Quick test_datapath_generates;
         Alcotest.test_case "registers sinks" `Quick test_datapath_registers_sinks;
         Alcotest.test_case "control inputs" `Quick test_datapath_control_inputs;
         Alcotest.test_case "structurally sound" `Quick
           test_datapath_structurally_sound;
         Alcotest.test_case "vhdl text" `Quick test_datapath_vhdl_text ]) ]
