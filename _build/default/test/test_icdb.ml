(* End-to-end tests of the ICDB server and CQL: the paper's §3.2/§3.3
   queries, generation caching, constraint handling, VHDL clusters and
   component-list management. *)

open Icdb
open Icdb_cql

let check = Alcotest.check

let with_server f =
  let server = Server.create () in
  f server

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Server-level                                                        *)
(* ------------------------------------------------------------------ *)

let test_function_query_storage () =
  with_server @@ fun server ->
  (* §4.1: "When a user needs a register, ICDB will search the
     components which perform the STORAGE function. Both the updown
     counter and the register component will be returned." *)
  let names = Server.function_query server [ Icdb_genus.Func.STORAGE ] in
  check Alcotest.bool "register found" true (List.mem "register" names);
  check Alcotest.bool "counter found" true (List.mem "counter" names)

let test_function_query_multi () =
  with_server @@ fun server ->
  (* "If an optimizer wants a component that executes both the COUNTER
     and STORAGE functions, the updown counter will be returned." *)
  let names =
    Server.function_query server
      [ Icdb_genus.Func.COUNTER; Icdb_genus.Func.STORAGE ]
  in
  check Alcotest.(list string) "only counter" [ "counter" ] names

let test_component_query_functions () =
  with_server @@ fun server ->
  let fs = Server.component_query server "alu" in
  check Alcotest.bool "alu adds" true
    (List.exists (Icdb_genus.Func.equal Icdb_genus.Func.ADD) fs);
  check Alcotest.bool "alu subtracts" true
    (List.exists (Icdb_genus.Func.equal Icdb_genus.Func.SUB) fs)

let counter_spec ?constraints ?(size = 5) () =
  Spec.make ?constraints
    (Spec.From_component
       { component = "counter";
         attributes = [ ("size", size) ];
         functions = [ Icdb_genus.Func.INC ] })

let test_request_component_counter () =
  with_server @@ fun server ->
  let inst = Server.request_component server (counter_spec ()) in
  check Alcotest.bool "id assigned" true
    (String.length inst.Instance.id > 0);
  check Alcotest.bool "has gates" true (Instance.gate_count inst > 10);
  check Alcotest.bool "positive CW" true
    (inst.Instance.report.Icdb_timing.Sta.clock_width > 0.0);
  check Alcotest.bool "has shape function" true
    (List.length inst.Instance.shape >= 2)

let test_request_component_cached () =
  with_server @@ fun server ->
  let a = Server.request_component server (counter_spec ()) in
  let b = Server.request_component server (counter_spec ()) in
  check Alcotest.string "same instance, not regenerated" a.Instance.id
    b.Instance.id;
  let c = Server.request_component server (counter_spec ~size:4 ()) in
  check Alcotest.bool "different spec, new instance" true
    (c.Instance.id <> a.Instance.id)

let test_request_unknown_component () =
  with_server @@ fun server ->
  (try
     ignore
       (Server.request_component server
          (Spec.make
             (Spec.From_component
                { component = "florb"; attributes = []; functions = [] })));
     Alcotest.fail "expected Icdb_error"
   with Server.Icdb_error _ -> ())

let test_request_function_mismatch () =
  with_server @@ fun server ->
  (* an up-only counter cannot perform DEC *)
  (try
     ignore
       (Server.request_component server
          (Spec.make
             (Spec.From_component
                { component = "counter";
                  attributes = [ ("up_or_down", 1) ];
                  functions = [ Icdb_genus.Func.DEC ] })));
     Alcotest.fail "expected Icdb_error"
   with Server.Icdb_error _ -> ())

let test_request_from_implementation () =
  with_server @@ fun server ->
  let inst =
    Server.request_component server
      (Spec.make
         (Spec.From_implementation
            { implementation = "ADDER"; params = [ ("size", 4) ] }))
  in
  check Alcotest.bool "adder generated" true (Instance.gate_count inst > 5)

let test_request_from_iif_control_logic () =
  with_server @@ fun server ->
  (* §3.2.2 type 3: control logic straight from boolean equations *)
  let iif =
    "NAME:CTRL;\nINORDER: S0, S1, OPA;\nOUTORDER: LD, EN;\n\
     { LD = S0*!S1 + OPA; EN = S0 + S1; }"
  in
  let inst = Server.request_component server (Spec.make (Spec.From_iif iif)) in
  check Alcotest.bool "control logic generated" true (Instance.gate_count inst > 0);
  check Alcotest.bool "combinational" true
    (inst.Instance.report.Icdb_timing.Sta.clock_width = 0.0)

let test_request_with_strategy_fastest () =
  with_server @@ fun server ->
  let cheap =
    Server.request_component server
      (Spec.make
         ~constraints:
           { Icdb_timing.Sizing.default_constraints with
             strategy = Icdb_timing.Sizing.Cheapest }
         (Spec.From_implementation
            { implementation = "ADDER"; params = [ ("size", 4) ] }))
  in
  let fast =
    Server.request_component server
      (Spec.make
         ~constraints:
           { Icdb_timing.Sizing.default_constraints with
             strategy = Icdb_timing.Sizing.Fastest }
         (Spec.From_implementation
            { implementation = "ADDER"; params = [ ("size", 4) ] }))
  in
  let wd i =
    List.assoc "Cout" i.Instance.report.Icdb_timing.Sta.output_delays
  in
  check Alcotest.bool "fastest is faster" true (wd fast < wd cheap);
  check Alcotest.bool "fastest is bigger" true
    (Instance.best_area fast > Instance.best_area cheap)

let test_constraints_met_flag () =
  with_server @@ fun server ->
  let loose =
    Server.request_component server
      (counter_spec
         ~constraints:
           { Icdb_timing.Sizing.default_constraints with
             clock_width = Some 1000.0 }
         ())
  in
  check Alcotest.bool "loose met" true loose.Instance.constraints_met;
  let impossible =
    Server.request_component server
      (counter_spec
         ~constraints:
           { Icdb_timing.Sizing.default_constraints with
             clock_width = Some 0.1 }
         ())
  in
  (* the paper relaxes: generation succeeds but the flag reports it *)
  check Alcotest.bool "impossible not met" false
    impossible.Instance.constraints_met

let test_vhdl_cluster_request () =
  with_server @@ fun server ->
  let a =
    Server.request_component server
      (Spec.make ~name_hint:"add4"
         (Spec.From_implementation
            { implementation = "ADDER"; params = [ ("size", 2) ] }))
  in
  ignore a;
  let vhdl =
    "entity cluster1 is port (\n\
     x[0] : in bit; x[1] : in bit; y[0] : in bit; y[1] : in bit;\n\
     ci : in bit; s[0] : out bit; s[1] : out bit; co : out bit );\n\
     end cluster1;\n\
     architecture s of cluster1 is begin\n\
     u1: add4 port map (I0[0] => x[0], I0[1] => x[1], I1[0] => y[0],\n\
     I1[1] => y[1], Cin => ci, O[0] => s[0], O[1] => s[1], Cout => co);\n\
     end s;"
  in
  let inst =
    Server.request_component server (Spec.make (Spec.From_vhdl_netlist vhdl))
  in
  check Alcotest.int "same gates as the adder" (Instance.gate_count a)
    (Instance.gate_count inst);
  check Alcotest.bool "cluster has a shape" true (inst.Instance.shape <> [])

let test_request_layout () =
  with_server @@ fun server ->
  let inst = Server.request_component server (counter_spec ()) in
  let layout, cif, file =
    Server.request_layout server inst.Instance.id ~alternative:2 ()
  in
  check Alcotest.bool "cif text" true (contains cif "DS 1 1 1;");
  check Alcotest.bool "file written" true (Sys.file_exists file);
  check Alcotest.bool "strips per alternative" true
    (layout.Icdb_layout.Cif.lstrips >= 1)

let test_insert_implementation_and_use () =
  with_server @@ fun server ->
  let src =
    "NAME:NIBBLE_SWAP;\nPARAMETER: size;\nINORDER: I[2*size];\n\
     OUTORDER: O[2*size];\nVARIABLE: i;\n\
     { #for(i=0;i<size;i++) { O[i] = I[i+size]; O[i+size] = I[i]; } }"
  in
  ignore (Server.insert_implementation server "NIBBLE_SWAP" src);
  let inst =
    Server.request_component server
      (Spec.make
         (Spec.From_implementation
            { implementation = "NIBBLE_SWAP"; params = [ ("size", 2) ] }))
  in
  check Alcotest.bool "generated" true (Instance.gate_count inst > 0)

let test_component_list_lifecycle () =
  with_server @@ fun server ->
  Server.start_design server "cpu";
  Server.start_transaction server "cpu";
  let a = Server.request_component server (counter_spec ()) in
  let b = Server.request_component server (counter_spec ~size:3 ()) in
  Server.put_in_component_list server "cpu" a.Instance.id;
  Server.end_transaction server "cpu";
  (* a kept, b deleted *)
  check Alcotest.bool "kept instance remains" true
    (Server.find_instance server a.Instance.id == a);
  (try
     ignore (Server.find_instance server b.Instance.id);
     Alcotest.fail "b should be deleted"
   with Server.Icdb_error _ -> ());
  check Alcotest.(list string) "component list" [ a.Instance.id ]
    (Server.component_list server "cpu");
  Server.end_design server "cpu";
  (try
     ignore (Server.find_instance server a.Instance.id);
     Alcotest.fail "a should be deleted after end_design"
   with Server.Icdb_error _ -> ())

let test_instance_strings () =
  with_server @@ fun server ->
  let inst = Server.request_component server (counter_spec ()) in
  let delay = Instance.delay_string inst in
  check Alcotest.bool "CW line" true (contains delay "CW ");
  check Alcotest.bool "WD Q[4]" true (contains delay "WD Q[4]");
  check Alcotest.bool "SD DWUP" true (contains delay "SD DWUP");
  let shape = Instance.shape_string inst in
  check Alcotest.bool "Alternative=1" true (contains shape "Alternative=1");
  let conn = Instance.connect_string inst in
  check Alcotest.bool "## function INC" true (contains conn "## function INC");
  check Alcotest.bool "control line" true (contains conn "** CLK 1 edge_trigger");
  let vhdl = Instance.vhdl_netlist inst in
  check Alcotest.bool "architecture" true (contains vhdl "architecture netlist of");
  let head = Instance.vhdl_head inst in
  check Alcotest.bool "entity" true (contains head "entity")

(* ------------------------------------------------------------------ *)
(* CQL                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cql_parse_terms () =
  let cmd =
    Command.parse
      "command: component_query;\n component :counter;\n function:(INC);\n\
       attribute:(size:5);\n ICDB_components:?s[] "
  in
  check Alcotest.int "five terms" 5 (List.length cmd);
  check Alcotest.string "command" "component_query" (Command.command_name cmd)

let test_cql_parse_slots () =
  let cmd = Command.parse "command:instance_query; instance:%s; delay:?s" in
  match List.map (fun t -> t.Command.rhs) cmd with
  | [ Command.Name _; Command.In_slot Command.Sstr; Command.Out_slot Command.Sstr ] -> ()
  | _ -> Alcotest.fail "unexpected slot parse"

let test_cql_parse_error () =
  (try
     ignore (Command.parse "command component_query");
     Alcotest.fail "expected Cql_error"
   with Command.Cql_error _ -> ())

let test_cql_function_query () =
  with_server @@ fun server ->
  let results =
    Exec.run server
      "command: function_query; function:(ADD,SUB); component:?s[]"
  in
  let comps = Exec.get_strings results "component" in
  check Alcotest.bool "adder_subtractor" true (List.mem "adder_subtractor" comps);
  check Alcotest.bool "alu" true (List.mem "alu" comps);
  check Alcotest.bool "plain adder excluded" true (not (List.mem "adder" comps))

let test_cql_paper_counter_request () =
  with_server @@ fun server ->
  (* §3.2.2's request, with the delay-constraint block passed as %s *)
  let c_delay = "rdelay Q[4] 40\noload Q[4] 10" in
  let results =
    Exec.run server
      ~args:[ Exec.Astr c_delay ]
      "command:request_component;\n\
       component_name:counter;\n\
       attribute:(size:5);\n\
       function:(INC);\n\
       clock_width:60;\n\
       comb_delay:%s;\n\
       set_up_time:30;\n\
       generated_component:?s"
  in
  let id = Exec.get_string results "generated_component" in
  check Alcotest.bool "instance name returned" true (String.length id > 0);
  (* then the §3.3 instance query *)
  let r2 =
    Exec.run server ~args:[ Exec.Astr id ]
      "command:instance_query;\n\
       generated_component:%s;\n\
       delay:?s;\n\
       shape_function:?s"
  in
  check Alcotest.bool "delay text" true
    (contains (Exec.get_string r2 "delay") "CW ");
  check Alcotest.bool "shape text" true
    (contains (Exec.get_string r2 "shape_function") "Alternative=")

let test_cql_component_query_functions () =
  with_server @@ fun server ->
  let results =
    Exec.run server "command:component_query; component:counter; function:?s[]"
  in
  let fs = Exec.get_strings results "function" in
  check Alcotest.bool "INC" true (List.mem "INC" fs);
  check Alcotest.bool "STORAGE" true (List.mem "STORAGE" fs)

let test_cql_connect_query () =
  with_server @@ fun server ->
  let r1 =
    Exec.run server
      "command:request_component; component_name:adder_subtractor;\n\
       attribute:(size:4); instance:?s"
  in
  let id = Exec.get_string r1 "instance" in
  let r2 =
    Exec.run server ~args:[ Exec.Astr id ]
      "command:connect_component; instance:%s; connect:?s"
  in
  let conn = Exec.get_string r2 "connect" in
  check Alcotest.bool "ADD section" true (contains conn "## function ADD");
  check Alcotest.bool "SUB section" true (contains conn "## function SUB");
  check Alcotest.bool "control code" true (contains conn "** ADDSUB 1")

let test_cql_strategy_fastest () =
  with_server @@ fun server ->
  let results =
    Exec.run server
      "command:request_component; component_name:counter;\n\
       function:(INC); strategy:fastest; instance:?s"
  in
  let id = Exec.get_string results "instance" in
  let r = Exec.run server ~args:[ Exec.Astr id ]
      "command:instance_query; instance:%s; clock_width:?r" in
  check Alcotest.bool "cw returned" true (Exec.get_float r "clock_width" > 0.0)

let test_cql_layout_request () =
  with_server @@ fun server ->
  let r1 =
    Exec.run server
      "command:request_component; component_name:counter; attribute:(size:4);\n\
       instance:?s"
  in
  let id = Exec.get_string r1 "instance" in
  let pins = "CLK left s1.0\nD[0] top 10\nQ[0] bottom 10" in
  let r2 =
    Exec.run server
      ~args:[ Exec.Astr id; Exec.Astr pins ]
      "command:request_component; instance:%s; alternative:2;\n\
       port_position:%s; CIF_layout:?s"
  in
  check Alcotest.bool "cif" true (contains (Exec.get_string r2 "CIF_layout") "DS 1 1 1;")

let test_cql_layout_target () =
  with_server @@ fun server ->
  (* the §6.2 example: target:layout takes the request all the way to a
     CIF file in the workspace *)
  let r =
    Exec.run server
      "command:request_component; component_name:counter;\n\
       target: layout; attribute:(size:4); function:(LOAD,INC);\n\
       instance:?s"
    |> fun r -> r
  in
  let id = Exec.get_string r "instance" in
  let inst = Server.find_instance server id in
  let strips =
    (Icdb_layout.Shape.best_area inst.Instance.shape).Icdb_layout.Shape.alt_strips
  in
  let path =
    Filename.concat (Server.workspace server)
      (Printf.sprintf "%s_s%d.cif" id strips)
  in
  check Alcotest.bool "CIF written by the layout target" true
    (Sys.file_exists path)

let test_cql_vhdl_cluster () =
  with_server @@ fun server ->
  let r1 =
    Exec.run server
      "command:request_component; implementation:ADDER; attribute:(size:2);\n\
       naming:add2; instance:?s"
  in
  ignore (Exec.get_string r1 "instance");
  let vhdl =
    "entity pairsum is port (\n\
     a0 : in bit; a1 : in bit; b0 : in bit; b1 : in bit; ci : in bit;\n\
     s0 : out bit; s1 : out bit; co : out bit );\n\
     end pairsum;\n\
     architecture s of pairsum is begin\n\
     u1: add2 port map (I0[0] => a0, I0[1] => a1, I1[0] => b0,\n\
     I1[1] => b1, Cin => ci, O[0] => s0, O[1] => s1, Cout => co);\n\
     end s;"
  in
  let r2 =
    Exec.run server ~args:[ Exec.Astr vhdl ]
      "command:request_component; VHDL_net_list:%s; instance:?s"
  in
  let id = Exec.get_string r2 "instance" in
  let r3 =
    Exec.run server ~args:[ Exec.Astr id ]
      "command:instance_query; instance:%s; area:?s; gates:?d"
  in
  check Alcotest.bool "cluster area listing" true
    (contains (Exec.get_string r3 "area") "strip = 1")

let test_cql_list_management () =
  with_server @@ fun server ->
  List.iter
    (fun c -> ignore (Exec.run server c))
    [ "command:start_a_design; design:chip";
      "command:start_a_transaction; design:chip" ];
  let r =
    Exec.run server
      "command:request_component; component_name:register; attribute:(size:4);\n\
       instance:?s"
  in
  let id = Exec.get_string r "instance" in
  ignore
    (Exec.run server ~args:[ Exec.Astr id ]
       "command:put_in_component_list; design:chip; instance:%s");
  ignore (Exec.run server "command:end_a_transaction; design:chip");
  check Alcotest.bool "still present" true
    (Server.find_instance server id != Obj.magic 0);
  ignore (Exec.run server "command:end_a_design; design:chip")

let test_cql_missing_args () =
  with_server @@ fun server ->
  (try
     ignore (Exec.run server "command:instance_query; instance:%s; delay:?s");
     Alcotest.fail "expected Cql_error"
   with Exec.Cql_error _ -> ())

let test_cql_unknown_command () =
  with_server @@ fun server ->
  (try
     ignore (Exec.run server "command:frobnicate; x:1");
     Alcotest.fail "expected Cql_error"
   with Exec.Cql_error _ -> ())

let () =
  Alcotest.run "icdb"
    [ ("server",
       [ Alcotest.test_case "function query STORAGE" `Quick test_function_query_storage;
         Alcotest.test_case "function query multi" `Quick test_function_query_multi;
         Alcotest.test_case "component query functions" `Quick test_component_query_functions;
         Alcotest.test_case "request counter" `Quick test_request_component_counter;
         Alcotest.test_case "generation cache" `Quick test_request_component_cached;
         Alcotest.test_case "unknown component" `Quick test_request_unknown_component;
         Alcotest.test_case "function mismatch" `Quick test_request_function_mismatch;
         Alcotest.test_case "from implementation" `Quick test_request_from_implementation;
         Alcotest.test_case "control logic from IIF" `Quick test_request_from_iif_control_logic;
         Alcotest.test_case "strategy fastest" `Quick test_request_with_strategy_fastest;
         Alcotest.test_case "constraints met flag" `Quick test_constraints_met_flag;
         Alcotest.test_case "VHDL cluster" `Quick test_vhdl_cluster_request;
         Alcotest.test_case "layout request" `Quick test_request_layout;
         Alcotest.test_case "insert implementation" `Quick test_insert_implementation_and_use;
         Alcotest.test_case "component list lifecycle" `Quick test_component_list_lifecycle;
         Alcotest.test_case "instance strings" `Quick test_instance_strings ]);
      ("cql",
       [ Alcotest.test_case "parse terms" `Quick test_cql_parse_terms;
         Alcotest.test_case "parse slots" `Quick test_cql_parse_slots;
         Alcotest.test_case "parse error" `Quick test_cql_parse_error;
         Alcotest.test_case "function query" `Quick test_cql_function_query;
         Alcotest.test_case "paper counter request" `Quick test_cql_paper_counter_request;
         Alcotest.test_case "component query functions" `Quick test_cql_component_query_functions;
         Alcotest.test_case "connect query" `Quick test_cql_connect_query;
         Alcotest.test_case "strategy fastest" `Quick test_cql_strategy_fastest;
         Alcotest.test_case "layout request" `Quick test_cql_layout_request;
         Alcotest.test_case "layout target" `Quick test_cql_layout_target;
         Alcotest.test_case "vhdl cluster via CQL" `Quick test_cql_vhdl_cluster;
         Alcotest.test_case "list management" `Quick test_cql_list_management;
         Alcotest.test_case "missing args" `Quick test_cql_missing_args;
         Alcotest.test_case "unknown command" `Quick test_cql_unknown_command ]) ]
