(* Tests for strip placement, area/shape estimation, ports, CIF and the
   floorplanner. *)

open Icdb_iif
open Icdb_logic
open Icdb_netlist
open Icdb_layout

let check = Alcotest.check

let synthesize flat =
  let net = Network.of_flat flat in
  Opt.optimize net;
  Techmap.map net

let counter_nl ?(size = 5) () =
  synthesize
    (Builtin.expand_exn "COUNTER"
       [ ("size", size); ("type", 2); ("load", 1); ("enable", 1);
         ("up_or_down", 3) ])

(* ------------------------------------------------------------------ *)
(* Strip placement                                                     *)
(* ------------------------------------------------------------------ *)

let test_strip_all_cells_placed () =
  let nl = counter_nl () in
  let p = Strip.place nl ~strips:3 in
  check Alcotest.int "every instance placed"
    (List.length nl.Netlist.instances)
    (List.length p.Strip.cells)

let test_strip_respects_count () =
  let nl = counter_nl () in
  List.iter
    (fun strips ->
      let p = Strip.place nl ~strips in
      let used =
        List.sort_uniq compare
          (List.map (fun c -> c.Strip.pc_strip) p.Strip.cells)
      in
      check Alcotest.bool
        (Printf.sprintf "%d strips used (max %d)" (List.length used) strips)
        true
        (List.length used <= strips && List.for_all (fun s -> s < strips) used))
    [ 1; 2; 3; 5; 8 ]

let test_strip_no_overlap () =
  let nl = counter_nl () in
  let p = Strip.place nl ~strips:4 in
  List.iter
    (fun k ->
      let cells =
        List.sort
          (fun a b -> compare a.Strip.pc_x b.Strip.pc_x)
          (Strip.cells_of_strip p k)
      in
      let rec no_overlap = function
        | a :: (b :: _ as rest) ->
            check Alcotest.bool "no overlap" true
              (a.Strip.pc_x +. a.Strip.pc_width <= b.Strip.pc_x +. 0.001);
            no_overlap rest
        | _ -> ()
      in
      no_overlap cells)
    [ 0; 1; 2; 3 ]

let test_strip_balanced_widths () =
  let nl = counter_nl () in
  let p = Strip.place nl ~strips:4 in
  let widths = Array.to_list p.Strip.strip_widths in
  let mx = List.fold_left Float.max 0.0 widths in
  let mn = List.fold_left Float.min infinity widths in
  check Alcotest.bool
    (Printf.sprintf "balanced: min %.0f max %.0f" mn mx)
    true (mn > 0.0 && mx /. mn < 3.0)

(* ------------------------------------------------------------------ *)
(* Area estimation and shape functions                                 *)
(* ------------------------------------------------------------------ *)

let test_area_deterministic () =
  let nl = counter_nl () in
  let a = Area_est.estimate nl ~strips:3 in
  let b = Area_est.estimate nl ~strips:3 in
  check (Alcotest.float 0.0001) "same width" a.Area_est.width b.Area_est.width;
  check (Alcotest.float 0.0001) "same height" a.Area_est.height b.Area_est.height

let test_area_positive () =
  let nl = counter_nl () in
  List.iter
    (fun strips ->
      let e = Area_est.estimate nl ~strips in
      check Alcotest.bool "positive dims" true
        (e.Area_est.width > 0.0 && e.Area_est.height > 0.0))
    [ 1; 2; 4; 8 ]

let test_shape_monotone () =
  (* more strips: narrower and taller *)
  let nl = counter_nl () in
  let shapes = Shape.of_netlist nl in
  check Alcotest.bool "several alternatives" true (List.length shapes >= 4);
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        check Alcotest.bool "width shrinks" true
          (b.Shape.alt_width <= a.Shape.alt_width +. 0.001);
        check Alcotest.bool "height grows" true
          (b.Shape.alt_height >= a.Shape.alt_height -. 0.001);
        monotone rest
    | _ -> ()
  in
  monotone shapes

let test_shape_pareto_subset () =
  let nl = counter_nl () in
  let shapes = Shape.of_netlist nl in
  let p = Shape.pareto shapes in
  check Alcotest.bool "pareto is a subset" true
    (List.length p <= List.length shapes && p <> [])

let test_shape_listing_format () =
  let nl = counter_nl ~size:3 () in
  let s = Shape.to_string (Shape.of_netlist nl) in
  check Alcotest.bool "has Alternative=1" true
    (String.length s >= 13 && String.sub s 0 13 = "Alternative=1")

let test_bigger_component_bigger_area () =
  let area size =
    (Shape.best_area (Shape.of_netlist (counter_nl ~size ()))).Shape.alt_area
  in
  check Alcotest.bool "8-bit counter bigger than 4-bit" true
    (area 8 > area 4)

(* ------------------------------------------------------------------ *)
(* Ports                                                               *)
(* ------------------------------------------------------------------ *)

let test_ports_parse_paper_format () =
  let text = "CLK left s1.0\nD[0] top 10\nD[1] top 20\nQ[0] bottom 10\nMINMAX right s2.0" in
  let specs = Ports.parse text in
  check Alcotest.int "five specs" 5 (List.length specs);
  let clk = List.find (fun s -> s.Ports.port = "CLK") specs in
  check Alcotest.bool "clk on left" true (clk.Ports.side = Ports.Left)

let test_ports_assignment_ordering () =
  let specs = Ports.parse "D[0] top 10\nD[1] top 20\nD[2] top 30" in
  let placed = Ports.assign specs ~width:100.0 ~height:50.0 in
  let x name = (List.find (fun p -> p.Ports.pp_name = name) placed).Ports.pp_x in
  check Alcotest.bool "ordered left to right" true
    (x "D[0]" < x "D[1]" && x "D[1]" < x "D[2]");
  List.iter
    (fun p -> check (Alcotest.float 0.001) "on top edge" 50.0 p.Ports.pp_y)
    placed

let test_ports_bad_side_rejected () =
  (try
     ignore (Ports.parse "CLK north 1");
     Alcotest.fail "expected Port_error"
   with Ports.Port_error _ -> ())

let test_ports_default () =
  let specs = Ports.default ~inputs:[ "A"; "CLK" ] ~outputs:[ "Y" ] in
  let clk = List.find (fun s -> s.Ports.port = "CLK") specs in
  check Alcotest.bool "clock at bottom" true (clk.Ports.side = Ports.Bottom);
  let y = List.find (fun s -> s.Ports.port = "Y") specs in
  check Alcotest.bool "output right" true (y.Ports.side = Ports.Right)

(* ------------------------------------------------------------------ *)
(* CIF                                                                 *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_cif_structure () =
  let nl = counter_nl ~size:3 () in
  let specs =
    Ports.default ~inputs:nl.Netlist.inputs ~outputs:nl.Netlist.outputs
  in
  let layout, cif = Cif.generate nl ~strips:3 ~port_specs:specs in
  check Alcotest.bool "DS/DF present" true
    (contains cif "DS 1 1 1;" && contains cif "DF;" && contains cif "E\n");
  check Alcotest.bool "has boxes" true (contains cif "B ");
  check Alcotest.bool "port label present" true (contains cif "94 CLK");
  check Alcotest.int "one box per instance + rails + ports + bbox" 3
    layout.Cif.lstrips;
  check Alcotest.int "boxes = instances"
    (List.length nl.Netlist.instances)
    (List.length layout.Cif.boxes)

let test_cif_deterministic () =
  let nl = counter_nl ~size:3 () in
  let specs = Ports.default ~inputs:nl.Netlist.inputs ~outputs:nl.Netlist.outputs in
  let _, a = Cif.generate nl ~strips:2 ~port_specs:specs in
  let _, b = Cif.generate nl ~strips:2 ~port_specs:specs in
  check Alcotest.string "same CIF" a b

(* ------------------------------------------------------------------ *)
(* Floorplan                                                           *)
(* ------------------------------------------------------------------ *)

let block name nl = { Floorplan.bname = name; bshapes = Shape.of_netlist nl }

let test_floorplan_two_blocks () =
  let a = block "ctr_a" (counter_nl ~size:4 ()) in
  let b = block "ctr_b" (counter_nl ~size:3 ()) in
  let r = Floorplan.best (Floorplan.beside (Floorplan.of_block a) (Floorplan.of_block b)) in
  check Alcotest.int "two placements" 2 (List.length r.Floorplan.rplacements);
  (* side by side: no x overlap *)
  match r.Floorplan.rplacements with
  | [ p1; p2 ] ->
      let sep =
        p1.Floorplan.px +. p1.Floorplan.pwidth <= p2.Floorplan.px +. 0.001
        || p2.Floorplan.px +. p2.Floorplan.pwidth <= p1.Floorplan.px +. 0.001
      in
      check Alcotest.bool "disjoint in x" true sep
  | _ -> Alcotest.fail "expected 2 placements"

let test_floorplan_auto_beats_naive () =
  let blocks =
    [ block "a" (counter_nl ~size:5 ());
      block "b" (counter_nl ~size:4 ());
      block "c" (counter_nl ~size:3 ()) ]
  in
  let auto = Floorplan.best_of_blocks blocks in
  (* naive: stack everything vertically using first shapes *)
  let naive =
    Floorplan.best
      (List.fold_left
         (fun acc b ->
           match acc with
           | None -> Some (Floorplan.of_block b)
           | Some acc -> Some (Floorplan.above acc (Floorplan.of_block b)))
         None blocks
      |> Option.get)
  in
  check Alcotest.bool
    (Printf.sprintf "auto %.0f <= naive %.0f" auto.Floorplan.rarea
       naive.Floorplan.rarea)
    true
    (auto.Floorplan.rarea <= naive.Floorplan.rarea +. 0.001);
  check Alcotest.int "all blocks placed" 3 (List.length auto.Floorplan.rplacements)

let test_floorplan_placements_inside_bbox () =
  let blocks =
    [ block "a" (counter_nl ~size:4 ()); block "b" (counter_nl ~size:3 ()) ]
  in
  let r = Floorplan.best_of_blocks blocks in
  List.iter
    (fun p ->
      check Alcotest.bool "inside" true
        (p.Floorplan.px >= -0.001 && p.Floorplan.py >= -0.001
        && p.Floorplan.px +. p.Floorplan.pwidth <= r.Floorplan.rwidth +. 0.001
        && p.Floorplan.py +. p.Floorplan.pheight <= r.Floorplan.rheight +. 0.001))
    r.Floorplan.rplacements

let test_floorplan_aspect_steering () =
  let blocks =
    [ block "a" (counter_nl ~size:4 ()); block "b" (counter_nl ~size:4 ()) ]
  in
  let wide = Floorplan.best ~aspect:(Some 3.0) (Floorplan.auto blocks) in
  let tall = Floorplan.best ~aspect:(Some 0.33) (Floorplan.auto blocks) in
  let ratio r = r.Floorplan.rwidth /. r.Floorplan.rheight in
  check Alcotest.bool
    (Printf.sprintf "wide %.2f > tall %.2f" (ratio wide) (ratio tall))
    true (ratio wide >= ratio tall)

let prop_pareto_no_dominated =
  QCheck.Test.make ~name:"floorplan pareto keeps no dominated point" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 12) (pair (int_range 1 100) (int_range 1 100)))
    (fun dims ->
      let cands =
        List.map
          (fun (w, h) ->
            { Floorplan.cwidth = float_of_int w;
              cheight = float_of_int h;
              build = (fun _ _ -> []) })
          dims
      in
      let p = Floorplan.pareto cands in
      List.for_all
        (fun a ->
          not
            (List.exists
               (fun b ->
                 b != a
                 && b.Floorplan.cwidth <= a.Floorplan.cwidth
                 && b.Floorplan.cheight < a.Floorplan.cheight)
               p))
        p)

let props = List.map QCheck_alcotest.to_alcotest [ prop_pareto_no_dominated ]

let () =
  Alcotest.run "layout"
    [ ("strip",
       [ Alcotest.test_case "all cells placed" `Quick test_strip_all_cells_placed;
         Alcotest.test_case "respects strip count" `Quick test_strip_respects_count;
         Alcotest.test_case "no overlap" `Quick test_strip_no_overlap;
         Alcotest.test_case "balanced widths" `Quick test_strip_balanced_widths ]);
      ("area",
       [ Alcotest.test_case "deterministic" `Quick test_area_deterministic;
         Alcotest.test_case "positive" `Quick test_area_positive;
         Alcotest.test_case "shape monotone" `Quick test_shape_monotone;
         Alcotest.test_case "pareto subset" `Quick test_shape_pareto_subset;
         Alcotest.test_case "listing format" `Quick test_shape_listing_format;
         Alcotest.test_case "bigger component bigger area" `Quick
           test_bigger_component_bigger_area ]);
      ("ports",
       [ Alcotest.test_case "parse paper format" `Quick test_ports_parse_paper_format;
         Alcotest.test_case "assignment ordering" `Quick test_ports_assignment_ordering;
         Alcotest.test_case "bad side rejected" `Quick test_ports_bad_side_rejected;
         Alcotest.test_case "default sides" `Quick test_ports_default ]);
      ("cif",
       [ Alcotest.test_case "structure" `Quick test_cif_structure;
         Alcotest.test_case "deterministic" `Quick test_cif_deterministic ]);
      ("floorplan",
       [ Alcotest.test_case "two blocks" `Quick test_floorplan_two_blocks;
         Alcotest.test_case "auto beats naive" `Quick test_floorplan_auto_beats_naive;
         Alcotest.test_case "inside bbox" `Quick test_floorplan_placements_inside_bbox;
         Alcotest.test_case "aspect steering" `Quick test_floorplan_aspect_steering ]);
      ("properties", props) ]
