(* Tests for the extended generic component library: functional
   correctness against arithmetic on the reference interpreter, plus
   spec-vs-netlist equivalence through the full generation pipeline. *)

open Icdb_iif
open Icdb_logic
open Icdb_sim

let check = Alcotest.check

let expand = Builtin.expand_exn

let synthesize flat =
  let net = Network.of_flat flat in
  Opt.optimize net;
  Techmap.map net

let drive_bus base width x =
  List.init width (fun i -> (Printf.sprintf "%s[%d]" base i, (x lsr i) land 1 = 1))

let read_bus st base width =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    v := (!v lsl 1)
         lor (if Interp.value st (Printf.sprintf "%s[%d]" base i) then 1 else 0)
  done;
  !v

(* ------------------------------------------------------------------ *)
(* Interpreter-level correctness                                       *)
(* ------------------------------------------------------------------ *)

let test_multiplier_exhaustive () =
  let st = Interp.create (expand "MULTIPLIER" [ ("size", 3) ]) in
  for a = 0 to 7 do
    for b = 0 to 7 do
      Interp.step st (drive_bus "A" 3 a @ drive_bus "B" 3 b);
      check Alcotest.int (Printf.sprintf "%d*%d" a b) (a * b) (read_bus st "P" 6)
    done
  done

let test_multiplier_4bit_samples () =
  let st = Interp.create (expand "MULTIPLIER" [ ("size", 4) ]) in
  List.iter
    (fun (a, b) ->
      Interp.step st (drive_bus "A" 4 a @ drive_bus "B" 4 b);
      check Alcotest.int (Printf.sprintf "%d*%d" a b) (a * b) (read_bus st "P" 8))
    [ (15, 15); (12, 11); (9, 7); (1, 15); (0, 13); (8, 8) ]

let test_divider_exhaustive () =
  let st = Interp.create (expand "DIVIDER" [ ("size", 3) ]) in
  for a = 0 to 7 do
    for b = 1 to 7 do
      Interp.step st (drive_bus "A" 3 a @ drive_bus "B" 3 b);
      check Alcotest.int (Printf.sprintf "%d/%d" a b) (a / b) (read_bus st "Q" 3);
      check Alcotest.int (Printf.sprintf "%d mod %d" a b) (a mod b)
        (read_bus st "REM" 3)
    done
  done

let test_barrel_shifter () =
  let st = Interp.create (expand "BARREL_SHIFTER" [ ("size", 8); ("stages", 3) ]) in
  List.iter
    (fun (x, s) ->
      Interp.step st (drive_bus "I" 8 x @ drive_bus "S" 3 s);
      check Alcotest.int
        (Printf.sprintf "%d << %d" x s)
        ((x lsl s) land 255)
        (read_bus st "O" 8))
    [ (1, 0); (1, 7); (0b10110011, 3); (255, 1); (0b1111, 4) ]

let test_shift_register () =
  let st = Interp.create (expand "SHIFT_REGISTER" [ ("size", 4) ]) in
  let step ?(load = false) ?(shift = false) ?(sin = false) ?(i = 0) clk =
    Interp.step st
      (drive_bus "I" 4 i
      @ [ ("SIN", sin); ("LOAD", load); ("SHIFT", shift); ("CLK", clk) ])
  in
  step false;
  (* parallel load 0b1010 *)
  step ~load:true ~i:10 false;
  step ~load:true ~i:10 true;
  check Alcotest.int "loaded" 10 (read_bus st "Q" 4);
  (* shift in a 1 *)
  step ~shift:true ~sin:true false;
  step ~shift:true ~sin:true true;
  check Alcotest.int "shifted" ((10 lsl 1) land 15 lor 1) (read_bus st "Q" 4);
  check Alcotest.bool "sout is old msb" true (Interp.value st "SOUT" = ((10 lsl 1) land 8 <> 0));
  (* hold *)
  step false;
  step true;
  check Alcotest.int "held" 5 (read_bus st "Q" 4)

let test_encoder () =
  let st = Interp.create (expand "ENCODER" [ ("size", 3) ]) in
  for v = 0 to 7 do
    Interp.step st (drive_bus "I" 8 (1 lsl v));
    check Alcotest.int (Printf.sprintf "encode %d" v) v (read_bus st "O" 3);
    check Alcotest.bool "valid" true (Interp.value st "VALID")
  done;
  Interp.step st (drive_bus "I" 8 0);
  check Alcotest.bool "invalid when no input" false (Interp.value st "VALID")

let test_register_file () =
  let st = Interp.create (expand "REGISTER_FILE" [ ("size", 4); ("abits", 2) ]) in
  let write addr data =
    let base w =
      drive_bus "D" 4 data @ drive_bus "WA" 2 addr @ drive_bus "RA" 2 addr
      @ [ ("WE", w) ]
    in
    Interp.step st (("CLK", false) :: base true);
    Interp.step st (("CLK", true) :: base true)
  in
  let read addr =
    Interp.step st
      (("CLK", false) :: ("WE", false)
      :: (drive_bus "D" 4 0 @ drive_bus "WA" 2 0 @ drive_bus "RA" 2 addr));
    read_bus st "Q" 4
  in
  write 0 3;
  write 1 7;
  write 2 12;
  write 3 9;
  check Alcotest.int "word 0" 3 (read 0);
  check Alcotest.int "word 1" 7 (read 1);
  check Alcotest.int "word 2" 12 (read 2);
  check Alcotest.int "word 3" 9 (read 3);
  (* overwrite one word; others untouched *)
  write 1 15;
  check Alcotest.int "word 1 rewritten" 15 (read 1);
  check Alcotest.int "word 2 untouched" 12 (read 2)

let test_logic_unit_ops () =
  let st = Interp.create (expand "LOGIC_UNIT" [ ("size", 4) ]) in
  let op s1 s0 a b =
    Interp.step st
      (drive_bus "A" 4 a @ drive_bus "B" 4 b @ [ ("S0", s0); ("S1", s1) ]);
    read_bus st "O" 4
  in
  check Alcotest.int "and" (12 land 10) (op false false 12 10);
  check Alcotest.int "or" (12 lor 10) (op false true 12 10);
  check Alcotest.int "xor" (12 lxor 10) (op true false 12 10);
  check Alcotest.int "not" (lnot 12 land 15) (op true true 12 0)

let test_muxg () =
  let st = Interp.create (expand "MUXG" [ ("size", 4); ("ways", 3) ]) in
  let words = [ 5; 9; 14 ] in
  let word_bits =
    List.concat
      (List.mapi
         (fun i x ->
           List.init 4 (fun b ->
               (Printf.sprintf "I[%d]" ((i * 4) + b), (x lsr b) land 1 = 1)))
         words)
  in
  List.iteri
    (fun w expected ->
      Interp.step st
        (word_bits @ List.init 3 (fun g -> (Printf.sprintf "G[%d]" g, g = w)));
      check Alcotest.int (Printf.sprintf "way %d" w) expected (read_bus st "O" 4))
    words

let test_concat_extract () =
  let st = Interp.create (expand "CONCAT" [ ("asize", 3); ("bsize", 5) ]) in
  Interp.step st (drive_bus "A" 3 5 @ drive_bus "B" 5 19);
  check Alcotest.int "concat" (5 lor (19 lsl 3)) (read_bus st "O" 8);
  let st = Interp.create (expand "EXTRACT" [ ("size", 8); ("low", 2); ("width", 4) ]) in
  Interp.step st (drive_bus "I" 8 0b10110100);
  check Alcotest.int "extract" 0b1101 (read_bus st "O" 4)

let test_clock_driver_and_schmitt () =
  let st = Interp.create (expand "CLK_DRIVER" [ ("size", 4) ]) in
  Interp.step st [ ("I", true) ];
  check Alcotest.int "all high" 15 (read_bus st "O" 4);
  let st = Interp.create (expand "SCHMITT_TRIG" [ ("size", 2) ]) in
  Interp.step st [ ("I[0]", true); ("I[1]", false) ];
  check Alcotest.bool "pass through" true
    (Interp.value st "O[0]" && not (Interp.value st "O[1]"))

let test_wor_bus () =
  let st = Interp.create (expand "WOR_BUS2" [ ("size", 4) ]) in
  let dr i0 i1 e0 e1 =
    Interp.step st
      (drive_bus "I0" 4 i0 @ drive_bus "I1" 4 i1 @ [ ("EN0", e0); ("EN1", e1) ]);
    read_bus st "O" 4
  in
  check Alcotest.int "driver 0" 5 (dr 5 9 true false);
  check Alcotest.int "driver 1" 9 (dr 5 9 false true);
  check Alcotest.int "wired or of both" (5 lor 9) (dr 5 9 true true);
  (* both disabled: bus keeps its value *)
  check Alcotest.int "bus keeper" (5 lor 9) (dr 0 0 false false)

let test_stack () =
  let st = Interp.create (expand "STACK" [ ("size", 4); ("abits", 2) ]) in
  let step ?(push = false) ?(pop = false) ?(rst = false) ?(d = 0) clk =
    Interp.step st
      (drive_bus "D" 4 d
      @ [ ("PUSH", push); ("POP", pop); ("CLK", clk); ("RESET", rst) ])
  in
  let top () = read_bus st "Q" 4 in
  step ~rst:true false;
  step false;
  check Alcotest.bool "starts empty" true (Interp.value st "EMPTY");
  (* push 5, 9, 12: LIFO order out *)
  List.iter
    (fun v -> step ~push:true ~d:v false; step ~push:true ~d:v true)
    [ 5; 9; 12 ];
  check Alcotest.int "top after pushes" 12 (top ());
  check Alcotest.bool "not empty" false (Interp.value st "EMPTY");
  step ~pop:true false;
  step ~pop:true true;
  check Alcotest.int "pop reveals 9" 9 (top ());
  step ~pop:true false;
  step ~pop:true true;
  check Alcotest.int "pop reveals 5" 5 (top ());
  (* fill to capacity (4): pushes beyond are ignored *)
  List.iter
    (fun v -> step ~push:true ~d:v false; step ~push:true ~d:v true)
    [ 1; 2; 3 ];
  check Alcotest.bool "full" true (Interp.value st "FULL");
  step ~push:true ~d:15 false;
  step ~push:true ~d:15 true;
  check Alcotest.int "overflow push ignored" 3 (top ());
  (* pop to empty: pops beyond are ignored *)
  for _ = 1 to 4 do
    step ~pop:true false;
    step ~pop:true true
  done;
  check Alcotest.bool "empty again" true (Interp.value st "EMPTY");
  step ~pop:true false;
  step ~pop:true true;
  check Alcotest.bool "underflow pop ignored" true (Interp.value st "EMPTY")

(* ------------------------------------------------------------------ *)
(* Pipeline equivalence for the new components                         *)
(* ------------------------------------------------------------------ *)

let equiv_case name flat =
  Alcotest.test_case name `Quick (fun () ->
      let nl = synthesize flat in
      match Equiv.check flat nl with
      | Equiv.Equivalent -> ()
      | m -> Alcotest.fail (Equiv.result_to_string m))

let equivalence_suite =
  [ equiv_case "encoder3" (expand "ENCODER" [ ("size", 3) ]);
    equiv_case "barrel8" (expand "BARREL_SHIFTER" [ ("size", 8); ("stages", 3) ]);
    equiv_case "shift_register4" (expand "SHIFT_REGISTER" [ ("size", 4) ]);
    equiv_case "multiplier3" (expand "MULTIPLIER" [ ("size", 3) ]);
    equiv_case "multiplier4" (expand "MULTIPLIER" [ ("size", 4) ]);
    equiv_case "divider3" (expand "DIVIDER" [ ("size", 3) ]);
    equiv_case "divider4" (expand "DIVIDER" [ ("size", 4) ]);
    equiv_case "register_file" (expand "REGISTER_FILE" [ ("size", 2); ("abits", 2) ]);
    equiv_case "logic_unit4" (expand "LOGIC_UNIT" [ ("size", 4) ]);
    equiv_case "muxg" (expand "MUXG" [ ("size", 3); ("ways", 3) ]);
    equiv_case "concat" (expand "CONCAT" [ ("asize", 3); ("bsize", 4) ]);
    equiv_case "extract" (expand "EXTRACT" [ ("size", 8); ("low", 3); ("width", 3) ]);
    equiv_case "clock_driver" (expand "CLK_DRIVER" [ ("size", 4) ]);
    equiv_case "schmitt" (expand "SCHMITT_TRIG" [ ("size", 2) ]);
    equiv_case "wor_bus" (expand "WOR_BUS2" [ ("size", 3) ]);
    equiv_case "stack" (expand "STACK" [ ("size", 2); ("abits", 2) ]) ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_multiplier =
  QCheck.Test.make ~name:"multiplier computes a*b" ~count:100
    QCheck.(pair (int_bound 31) (int_bound 31))
    (fun (a, b) ->
      let st = Interp.create (expand "MULTIPLIER" [ ("size", 5) ]) in
      Interp.step st (drive_bus "A" 5 a @ drive_bus "B" 5 b);
      read_bus st "P" 10 = a * b)

let prop_divider =
  QCheck.Test.make ~name:"divider computes quotient and remainder" ~count:100
    QCheck.(pair (int_bound 31) (int_range 1 31))
    (fun (a, b) ->
      let st = Interp.create (expand "DIVIDER" [ ("size", 5) ]) in
      Interp.step st (drive_bus "A" 5 a @ drive_bus "B" 5 b);
      read_bus st "Q" 5 = a / b && read_bus st "REM" 5 = a mod b)

let prop_barrel =
  QCheck.Test.make ~name:"barrel shifter shifts" ~count:100
    QCheck.(pair (int_bound 255) (int_bound 7))
    (fun (x, s) ->
      let st =
        Interp.create (expand "BARREL_SHIFTER" [ ("size", 8); ("stages", 3) ])
      in
      Interp.step st (drive_bus "I" 8 x @ drive_bus "S" 3 s);
      read_bus st "O" 8 = (x lsl s) land 255)

let prop_div_mul_inverse =
  QCheck.Test.make ~name:"a = q*b + r with r < b" ~count:100
    QCheck.(pair (int_bound 15) (int_range 1 15))
    (fun (a, b) ->
      let st = Interp.create (expand "DIVIDER" [ ("size", 4) ]) in
      Interp.step st (drive_bus "A" 4 a @ drive_bus "B" 4 b);
      let q = read_bus st "Q" 4 and r = read_bus st "REM" 4 in
      (q * b) + r = a && r < b)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_multiplier; prop_divider; prop_barrel; prop_div_mul_inverse ]

let () =
  Alcotest.run "components"
    [ ("interp",
       [ Alcotest.test_case "multiplier 3-bit exhaustive" `Quick test_multiplier_exhaustive;
         Alcotest.test_case "multiplier 4-bit samples" `Quick test_multiplier_4bit_samples;
         Alcotest.test_case "divider 3-bit exhaustive" `Quick test_divider_exhaustive;
         Alcotest.test_case "barrel shifter" `Quick test_barrel_shifter;
         Alcotest.test_case "shift register" `Quick test_shift_register;
         Alcotest.test_case "encoder" `Quick test_encoder;
         Alcotest.test_case "register file" `Quick test_register_file;
         Alcotest.test_case "logic unit" `Quick test_logic_unit_ops;
         Alcotest.test_case "mux by guard" `Quick test_muxg;
         Alcotest.test_case "concat/extract" `Quick test_concat_extract;
         Alcotest.test_case "clock driver / schmitt" `Quick test_clock_driver_and_schmitt;
         Alcotest.test_case "wired-or bus" `Quick test_wor_bus;
         Alcotest.test_case "stack LIFO" `Quick test_stack ]);
      ("equivalence", equivalence_suite);
      ("properties", props) ]
