(* Tests for the VHDL writer/parser and for the baseline libraries. *)

open Icdb_iif
open Icdb_logic
open Icdb_netlist
open Icdb_baseline
open Icdb

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let synthesize flat =
  let net = Network.of_flat flat in
  Opt.optimize net;
  Techmap.map net

let adder_nl = lazy (synthesize (Builtin.expand_exn "ADDER" [ ("size", 2) ]))

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let test_entity_shape () =
  let e = Vhdl.entity_of (Lazy.force adder_nl) in
  check Alcotest.bool "entity line" true (contains e "entity ADDER is");
  check Alcotest.bool "input port" true (contains e "I0_0_ : in bit");
  check Alcotest.bool "output port" true (contains e "Cout : out bit");
  check Alcotest.bool "terminated" true (contains e "end ADDER;")

let test_architecture_shape () =
  let a = Vhdl.architecture_of (Lazy.force adder_nl) in
  check Alcotest.bool "architecture line" true
    (contains a "architecture netlist of ADDER");
  check Alcotest.bool "component decls" true (contains a "component ");
  check Alcotest.bool "port maps" true (contains a "port map (");
  check Alcotest.bool "sizes recorded" true (contains a "-- size 1.00")

let test_sanitize () =
  check Alcotest.string "brackets" "Q_3_" (Vhdl.sanitize "Q[3]");
  check Alcotest.string "dollar" "n_m1" (Vhdl.sanitize "$m1");
  check Alcotest.string "plain" "CLK" (Vhdl.sanitize "CLK")

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let cluster_src =
  "-- a two-instance cluster\n\
   entity pair is port (\n\
   a : in bit; b : in bit;\n\
   x : out bit; y : out bit );\n\
   end pair;\n\
   architecture s of pair is\n\
   begin\n\
   u1: blockA port map (P => a, Q => x);\n\
   u2: blockB port map (P => b, Q => y, R => a);\n\
   end s;"

let test_parse_cluster () =
  let p = Vhdl.parse cluster_src in
  check Alcotest.string "name" "pair" p.Vhdl.p_name;
  check Alcotest.(list string) "inputs" [ "a"; "b" ] p.Vhdl.p_inputs;
  check Alcotest.(list string) "outputs" [ "x"; "y" ] p.Vhdl.p_outputs;
  check Alcotest.int "two instances" 2 (List.length p.Vhdl.p_instances);
  let u2 = List.nth p.Vhdl.p_instances 1 in
  check Alcotest.string "component" "blockB" u2.Vhdl.pi_component;
  check Alcotest.int "three maps" 3 (List.length u2.Vhdl.pi_ports)

let test_parse_comments_ignored () =
  let p = Vhdl.parse ("-- leading comment\n" ^ cluster_src) in
  check Alcotest.string "name" "pair" p.Vhdl.p_name

let test_parse_error () =
  (try
     ignore (Vhdl.parse "entity broken is port");
     Alcotest.fail "expected Vhdl_error"
   with Vhdl.Vhdl_error _ -> ())

let test_flatten_renames () =
  let p = Vhdl.parse cluster_src in
  let sub =
    { Netlist.name = "blk";
      inputs = [ "P" ];
      outputs = [ "Q" ];
      instances =
        [ { Netlist.inst_name = "g"; cell = "INV"; size = 1.0;
            conns = [ ("A", "P"); ("Y", "t") ] };
          { Netlist.inst_name = "h"; cell = "BUF"; size = 1.0;
            conns = [ ("A", "t"); ("Y", "Q") ] } ] }
  in
  let sub_b =
    { sub with
      inputs = [ "P"; "R" ];
      instances =
        [ { Netlist.inst_name = "g"; cell = "NAND2"; size = 1.0;
            conns = [ ("A", "P"); ("B", "R"); ("Y", "Q") ] } ] }
  in
  let resolve = function
    | "blockA" -> Some sub
    | "blockB" -> Some sub_b
    | _ -> None
  in
  let flat = Vhdl.flatten p ~resolve in
  check Alcotest.int "3 instances" 3 (List.length flat.Netlist.instances);
  (* internal nets get the instance-label prefix; ports map to actuals *)
  let u1g = List.find (fun i -> i.Netlist.inst_name = "u1/g") flat.Netlist.instances in
  check Alcotest.string "input mapped" "a" (Netlist.pin_net_exn u1g "A");
  check Alcotest.string "internal prefixed" "u1/t" (Netlist.pin_net_exn u1g "Y")

let test_flatten_unknown_component () =
  let p = Vhdl.parse cluster_src in
  (try
     ignore (Vhdl.flatten p ~resolve:(fun _ -> None));
     Alcotest.fail "expected Vhdl_error"
   with Vhdl.Vhdl_error _ -> ())

let test_writer_parser_roundtrip () =
  (* a netlist written out can be read back as a cluster of cells *)
  let nl = Lazy.force adder_nl in
  let text = Vhdl.to_vhdl nl in
  let p = Vhdl.parse text in
  check Alcotest.int "same instance count"
    (List.length nl.Netlist.instances)
    (List.length p.Vhdl.p_instances);
  check Alcotest.int "same input count"
    (List.length nl.Netlist.inputs)
    (List.length p.Vhdl.p_inputs)

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let test_fixed_lib_oversizes () =
  let server = Server.create ~verify:false () in
  let fixed = Fixed_lib.build server [ "adder" ] in
  let r = Fixed_lib.request fixed ~component:"adder" ~size:5 () in
  check Alcotest.int "picks the 8-bit part" 8 r.Fixed_lib.chosen.Fixed_lib.e_size;
  check Alcotest.int "wastes 3 bits" 3 r.Fixed_lib.oversize_bits

let test_fixed_lib_padding_costs () =
  let server = Server.create ~verify:false () in
  let fixed = Fixed_lib.build server [ "register" ] in
  let clean = Fixed_lib.request fixed ~component:"register" ~size:4 () in
  let padded =
    Fixed_lib.request fixed ~component:"register" ~size:4 ~active_low_inputs:2 ()
  in
  check Alcotest.int "two inverters" 2 padded.Fixed_lib.padding_gates;
  check Alcotest.bool "padding adds area" true
    (padded.Fixed_lib.area > clean.Fixed_lib.area);
  check Alcotest.bool "padding adds delay" true
    (padded.Fixed_lib.worst_delay > clean.Fixed_lib.worst_delay)

let test_fixed_lib_relaxes () =
  let server = Server.create ~verify:false () in
  let fixed = Fixed_lib.build server [ "counter" ] in
  (* 1 ns is unreachable: the request must come back violated, not fail *)
  let r = Fixed_lib.request fixed ~component:"counter" ~size:4 ~max_delay:1.0 () in
  check Alcotest.bool "violation reported" true (r.Fixed_lib.violation > 0.0)

let test_fixed_lib_no_part () =
  let server = Server.create ~verify:false () in
  let fixed = Fixed_lib.build server [ "adder" ] in
  (try
     ignore (Fixed_lib.request fixed ~component:"adder" ~size:17 ());
     Alcotest.fail "expected No_part"
   with Fixed_lib.No_part _ -> ())

let test_generic_lib_margins () =
  let server = Server.create ~verify:false () in
  let r = Generic_lib.request server ~component:"adder" ~size:4 in
  check Alcotest.bool "delay over actual" true (r.Generic_lib.delay_overbudget > 0.0);
  check Alcotest.bool "area over actual" true (r.Generic_lib.area_overbudget > 0.0);
  check Alcotest.bool "no shape function" true (not r.Generic_lib.has_shape_function)

let test_compare_icdb_wins () =
  let server = Server.create ~verify:false () in
  let fixed = Fixed_lib.build server [ "register"; "adder" ] in
  let needs =
    [ { Compare.n_component = "register"; n_size = 5; n_active_low_inputs = 1;
        n_max_delay = None };
      { Compare.n_component = "adder"; n_size = 5; n_active_low_inputs = 0;
        n_max_delay = None } ]
  in
  let i = Compare.icdb_verdict server needs in
  let f = Compare.fixed_verdict fixed needs in
  let g = Compare.generic_verdict server needs in
  check Alcotest.bool "icdb area <= fixed (no oversizing)" true
    (i.Compare.v_total_area <= f.Compare.v_total_area);
  check Alcotest.bool "icdb area <= generic budget" true
    (i.Compare.v_total_area <= g.Compare.v_total_area);
  check Alcotest.bool "icdb offers shapes" true
    (i.Compare.v_shape_alternatives > 0 && g.Compare.v_shape_alternatives = 0)

let () =
  Alcotest.run "vhdl+baseline"
    [ ("writer",
       [ Alcotest.test_case "entity shape" `Quick test_entity_shape;
         Alcotest.test_case "architecture shape" `Quick test_architecture_shape;
         Alcotest.test_case "sanitize" `Quick test_sanitize ]);
      ("parser",
       [ Alcotest.test_case "cluster" `Quick test_parse_cluster;
         Alcotest.test_case "comments" `Quick test_parse_comments_ignored;
         Alcotest.test_case "error" `Quick test_parse_error;
         Alcotest.test_case "flatten renames" `Quick test_flatten_renames;
         Alcotest.test_case "unknown component" `Quick test_flatten_unknown_component;
         Alcotest.test_case "writer/parser roundtrip" `Quick
           test_writer_parser_roundtrip ]);
      ("baseline",
       [ Alcotest.test_case "fixed oversizes" `Quick test_fixed_lib_oversizes;
         Alcotest.test_case "fixed padding costs" `Quick test_fixed_lib_padding_costs;
         Alcotest.test_case "fixed relaxes" `Quick test_fixed_lib_relaxes;
         Alcotest.test_case "fixed no part" `Quick test_fixed_lib_no_part;
         Alcotest.test_case "generic margins" `Quick test_generic_lib_margins;
         Alcotest.test_case "icdb wins" `Quick test_compare_icdb_wins ]) ]
