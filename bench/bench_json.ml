(* Deterministic JSON emission for bench_out artifacts.

   The emitter itself now lives in {!Icdb_obs.Json}: the flight
   recorder, the admin plane's /statz and /connz, and `icdb stats
   --json` need the same byte-deterministic rendering (fields in given
   order, fixed float precision, no clock or hash-table influence), so
   bench promoted its hand-rolled module into lib/obs and keeps this
   alias so every experiment's [Bench_json.Obj ...] call sites read
   unchanged. *)

include Icdb_obs.Json
