(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5 and the examples of §3.3 / Appendix B), printing the
   paper's reported series next to the measured ones, then runs
   Bechamel micro-benchmarks for the §4.4 generation-latency claim.

   Run everything:         dune exec bench/main.exe
   Run one experiment:     dune exec bench/main.exe -- fig5
   List experiments:       dune exec bench/main.exe -- list *)

open Icdb
open Icdb_iif
open Icdb_logic
open Icdb_timing
open Icdb_layout
open Icdb_baseline

let header title =
  Printf.printf "\n=== %s ===\n" title

let sub title = Printf.printf "-- %s --\n" title

let kilo f = f /. 1000.0

(* one shared server: instance caching mirrors real tool use *)
let server = lazy (Server.create ())

let counter_instance ?(size = 5) ?(typ = 2) ?(load = 0) ?(enable = 0) ?(ud = 1)
    ?constraints () =
  Server.request_component (Lazy.force server)
    (Spec.make ?constraints
       (Spec.From_component
          { component = "counter";
            attributes =
              [ ("size", size); ("type", typ); ("load", load);
                ("enable", enable); ("up_or_down", ud) ];
            functions = [] }))

let synthesize flat =
  let network = Network.of_flat flat in
  Opt.optimize network;
  Techmap.map network

(* ------------------------------------------------------------------ *)
(* E1 / Figure 5: area-time tradeoff of counters                       *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  header "E1 / Figure 5: area/time tradeoff of 5-bit up-counters";
  (* paper series: (name, delay ns, area 10^3 um^2) *)
  let paper =
    [ ("ripple", 17.4, 17.2);
      ("sync up", 5.8, 23.6);
      ("sync up + enable", 9.8, 30.0);
      ("sync up/down", 5.1, 37.3);
      ("sync up/down + load", 11.3, 53.4) ]
  in
  let measured =
    [ ("ripple", counter_instance ~typ:1 ());
      ("sync up", counter_instance ());
      ("sync up + enable", counter_instance ~enable:1 ());
      ("sync up/down", counter_instance ~ud:3 ());
      ("sync up/down + load", counter_instance ~ud:3 ~load:1 ~enable:1 ()) ]
  in
  Printf.printf "%-22s | %8s %12s | %8s %12s\n" "implementation"
    "paper ns" "paper 1e3um2" "ours ns" "ours 1e3um2";
  Printf.printf "%s\n" (String.make 72 '-');
  let rows =
    List.map2
      (fun (name, pd, pa) (_, inst) ->
        let wd = List.assoc "Q[4]" inst.Instance.report.Sta.output_delays in
        let area = kilo (Instance.best_area inst) in
        Printf.printf "%-22s | %8.1f %12.1f | %8.1f %12.1f\n" name pd pa wd area;
        (name, wd, area))
      paper measured
  in
  (* qualitative checks the paper's figure shows *)
  let get n = List.find (fun (m, _, _) -> m = n) rows in
  let (_, rip_d, rip_a) = get "ripple" in
  let (_, su_d, _) = get "sync up" in
  let (_, _, full_a) = get "sync up/down + load" in
  Printf.printf "shape checks: ripple slowest (%b), ripple smallest (%b), \
                 full-featured largest (%b), sync up faster than ripple (%b)\n"
    (List.for_all (fun (_, d, _) -> rip_d >= d) rows)
    (List.for_all (fun (_, _, a) -> rip_a <= a) rows)
    (List.for_all (fun (_, _, a) -> full_a >= a) rows)
    (su_d < rip_d)

(* ------------------------------------------------------------------ *)
(* E2 / Figure 6: shape function of the updown counter                 *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "E2 / Figure 6: shape function of the 5-bit up/down counter";
  let paper =
    [ (33.0, 115.0); (36.0, 99.0); (37.0, 90.0); (44.0, 76.0);
      (67.0, 55.0); (67.0, 52.0); (88.0, 41.0); (133.0, 32.0) ]
  in
  let inst = counter_instance ~ud:3 ~load:1 ~enable:1 () in
  let shapes =
    List.sort
      (fun a b -> compare a.Shape.alt_width b.Shape.alt_width)
      inst.Instance.shape
  in
  Printf.printf "paper (width x height, 1e2 um):    %s\n"
    (String.concat " "
       (List.map (fun (w, h) -> Printf.sprintf "(%.0f,%.0f)" w h) paper));
  Printf.printf "measured (width x height, 1e1 um): %s\n"
    (String.concat " "
       (List.map
          (fun a ->
            Printf.sprintf "(%.0f,%.0f)" (a.Shape.alt_width /. 10.0)
              (a.Shape.alt_height /. 10.0))
          shapes));
  let monotone =
    let rec ok = function
      | a :: (b :: _ as rest) ->
          a.Shape.alt_width <= b.Shape.alt_width
          && a.Shape.alt_height >= b.Shape.alt_height
          && ok rest
      | _ -> true
    in
    ok shapes
  in
  Printf.printf
    "shape checks: %d alternatives (paper: 8), widths up / heights down \
     monotone (%b)\n"
    (List.length shapes) monotone

(* ------------------------------------------------------------------ *)
(* E3 / §3.3 delay report                                              *)
(* ------------------------------------------------------------------ *)

let tab_delay () =
  header "E3 / §3.3 delay listing: counter with enable, updown, parallel load";
  print_endline
    "paper:     CW 29.0 | WD Q[4] 8.5  Q[3] 8.5  Q[2] 8.5  Q[1] 9.7  Q[0] 8.7 \
     | WD MINMAX 27.3 | SD DWUP 26.7";
  let inst = counter_instance ~ud:3 ~load:1 ~enable:1 () in
  let r = inst.Instance.report in
  let wd p = List.assoc p r.Sta.output_delays in
  Printf.printf
    "measured:  CW %.1f | WD Q[4] %.1f  Q[3] %.1f  Q[2] %.1f  Q[1] %.1f  \
     Q[0] %.1f | WD MINMAX %.1f | SD DWUP %.1f\n"
    r.Sta.clock_width (wd "Q[4]") (wd "Q[3]") (wd "Q[2]") (wd "Q[1]")
    (wd "Q[0]") (wd "MINMAX")
    (List.assoc "DWUP" r.Sta.setup_times);
  Printf.printf
    "shape checks: MINMAX slower than every Q (%b), DWUP setup below CW (%b), \
     CW above worst WD Q (%b)\n"
    (List.for_all (fun q -> wd "MINMAX" > wd q)
       [ "Q[0]"; "Q[1]"; "Q[2]"; "Q[3]"; "Q[4]" ])
    (List.assoc "DWUP" r.Sta.setup_times <= r.Sta.clock_width)
    (r.Sta.clock_width >= wd "Q[4]");
  sub "full generated report";
  print_string (Sta.report_to_string r)

(* ------------------------------------------------------------------ *)
(* E4 / §3.3 + App B §5.3 shape & area listings                        *)
(* ------------------------------------------------------------------ *)

let tab_shape () =
  header "E4 / shape-function and area listings (§3.3, App B §5.3)";
  let inst = counter_instance ~ud:3 ~load:1 ~enable:1 () in
  sub "Alternative listing (§3.3 format)";
  print_endline (Instance.shape_string inst);
  sub "strip/width/height/area listing (App B §5.3 format)";
  print_endline (Instance.area_listing inst)

(* ------------------------------------------------------------------ *)
(* E5 / Figure 9: layouts of the five counters                         *)
(* ------------------------------------------------------------------ *)

let out_dir () =
  let dir = "bench_out" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let fig9 () =
  header "E5 / Figure 9: CIF layouts of the five counter implementations";
  let dir = out_dir () in
  List.iter
    (fun (tag, inst) ->
      let _, cif, _ = Server.request_layout (Lazy.force server) inst.Instance.id () in
      let path = Filename.concat dir (Printf.sprintf "fig9_%s.cif" tag) in
      Out_channel.with_open_text path (fun oc -> output_string oc cif);
      let best = Shape.best_area inst.Instance.shape in
      Printf.printf "%-22s %4d gates  %6.0f x %5.0f um  -> %s (%d bytes)\n" tag
        (Instance.gate_count inst) best.Shape.alt_width best.Shape.alt_height
        path (String.length cif))
    [ ("ripple", counter_instance ~typ:1 ());
      ("sync_up", counter_instance ());
      ("sync_up_enable", counter_instance ~enable:1 ());
      ("sync_updown", counter_instance ~ud:3 ());
      ("sync_updown_load", counter_instance ~ud:3 ~load:1 ~enable:1 ()) ]

(* ------------------------------------------------------------------ *)
(* E6 / Figure 10: area/load tradeoff                                  *)
(* ------------------------------------------------------------------ *)

let q_ports size = List.init size (fun i -> Printf.sprintf "Q[%d]" i)

let sized_area ~loads ~cw_bound =
  let flat =
    Builtin.expand_exn "COUNTER"
      [ ("size", 5); ("type", 2); ("load", 0); ("enable", 0); ("up_or_down", 3) ]
  in
  let nl = synthesize flat in
  let port_loads = List.map (fun p -> (p, loads)) (q_ports 5) in
  let constraints =
    { Sizing.default_constraints with
      clock_width = Some cw_bound;
      port_loads }
  in
  let sized = Sizing.size_to_constraints nl constraints in
  let met = Sizing.meets_constraints sized constraints in
  ((Shape.best_area (Shape.of_netlist sized)).Shape.alt_area, met)

let fig10 () =
  header "E6 / Figure 10: area/load tradeoff of the up/down counter";
  let paper =
    [ (10.0, 33.2); (20.0, 34.5); (30.0, 35.7); (40.0, 35.4); (50.0, 38.5) ]
  in
  (* fix the clock-width bound the way the paper fixes 25 ns: at the
     unsized CW for the smallest load, so larger loads force sizing *)
  let flat =
    Builtin.expand_exn "COUNTER"
      [ ("size", 5); ("type", 2); ("load", 0); ("enable", 0); ("up_or_down", 3) ]
  in
  let nl = synthesize flat in
  let base_cw =
    (Sta.analyze ~port_loads:(List.map (fun p -> (p, 10.0)) (q_ports 5)) nl)
      .Sta.clock_width
  in
  let cw_bound = base_cw in
  Printf.printf "clock-width bound: %.1f ns (paper: 25 ns)\n" cw_bound;
  Printf.printf "%-6s | %12s | %12s %s\n" "load" "paper 1e3um2" "ours 1e3um2" "met";
  let areas =
    List.map
      (fun (load, pa) ->
        let area, met = sized_area ~loads:load ~cw_bound in
        Printf.printf "%-6.0f | %12.1f | %12.1f %s\n" load pa (kilo area)
          (if met then "yes" else "no");
        area)
      paper
  in
  let a10 = List.nth areas 0 and a40 = List.nth areas 3 in
  Printf.printf
    "shape checks: largest load not cheaper than smallest (%b); growth \
     10->40 = %.1f%% (paper: ~6%%)\n"
    (List.nth areas 4 >= a10)
    (100.0 *. (a40 -. a10) /. a10)

(* ------------------------------------------------------------------ *)
(* E7 / Figure 11: area/clock-width tradeoff                           *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  header "E7 / Figure 11: area/clock-width tradeoff of the up/down counter";
  let paper = [ (24.0, 30.7); (25.0, 29.0); (27.0, 31.6); (30.0, 32.9) ] in
  let flat =
    Builtin.expand_exn "COUNTER"
      [ ("size", 5); ("type", 2); ("load", 0); ("enable", 0); ("up_or_down", 3) ]
  in
  let nl = synthesize flat in
  let loads = List.map (fun p -> (p, 10.0)) (q_ports 5) in
  let base_cw = (Sta.analyze ~port_loads:loads nl).Sta.clock_width in
  Printf.printf "unsized CW at load 10: %.1f ns (paper sweeps 24..30 ns)\n" base_cw;
  Printf.printf "%-10s | %12s | %-10s %12s %s\n" "paper CW" "paper 1e3um2"
    "ours CW" "ours 1e3um2" "met";
  let areas =
    List.map
      (fun (factor, (pcw, pa)) ->
        let bound = base_cw *. factor in
        let constraints =
          { Sizing.default_constraints with
            clock_width = Some bound;
            port_loads = loads }
        in
        let sized = Sizing.size_to_constraints nl constraints in
        let met = Sizing.meets_constraints sized constraints in
        let area = (Shape.best_area (Shape.of_netlist sized)).Shape.alt_area in
        Printf.printf "%-10.1f | %12.1f | %-10.1f %12.1f %s\n" pcw pa bound
          (kilo area)
          (if met then "yes" else "no");
        area)
      (List.combine [ 0.90; 0.94; 0.98; 1.02 ] paper)
  in
  let amax = List.fold_left Float.max 0.0 areas in
  let amin = List.fold_left Float.min infinity areas in
  Printf.printf
    "shape checks: tightest clock never cheaper than loosest (%b); area band \
     %.1f%% (paper: ~6%%)\n"
    (List.nth areas 0 >= List.nth areas 3)
    (100.0 *. (amax -. amin) /. amin)

(* ------------------------------------------------------------------ *)
(* E8 / Figure 12: different-shape layouts                             *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  header "E8 / Figure 12: the same counter laid out in different shapes";
  let inst = counter_instance ~ud:3 ~load:1 ~enable:1 () in
  let dir = out_dir () in
  List.iter
    (fun (a : Shape.alternative) ->
      let layout, cif, _ =
        Server.request_layout (Lazy.force server) inst.Instance.id
          ~alternative:a.Shape.alt_index ()
      in
      let path =
        Filename.concat dir
          (Printf.sprintf "fig12_strips%d.cif" a.Shape.alt_strips)
      in
      Out_channel.with_open_text path (fun oc -> output_string oc cif);
      Printf.printf
        "alternative %d: %d strips, %6.0f x %5.0f um (aspect %5.2f) -> %s\n"
        a.Shape.alt_index a.Shape.alt_strips layout.Cif.lwidth
        layout.Cif.lheight
        (layout.Cif.lwidth /. layout.Cif.lheight)
        path)
    inst.Instance.shape

(* ------------------------------------------------------------------ *)
(* E9 / Figure 13: the simple computer                                 *)
(* ------------------------------------------------------------------ *)

let cpu_control_iif =
  {|
NAME:CPU_CTRL;
INORDER: OP0, OP1, Z, CLK, RESET;
OUTORDER: ALU_C0, ALU_C1, ALU_C2, ACC_LD, PC_EN, MEM_RD, MEM_WR;
PIIFVARIABLE: S0, S1, N0, N1, FETCH, EXEC, WRITE;
{
  FETCH = !S0*!S1;
  EXEC  = S0*!S1;
  WRITE = !S0*S1;
  N0 = FETCH;
  N1 = EXEC*OP1;
  S0 = N0 @(~r CLK) ~a(0/(RESET));
  S1 = N1 @(~r CLK) ~a(0/(RESET));
  ALU_C2 = EXEC;
  ALU_C1 = EXEC*OP1*Z;
  ALU_C0 = EXEC*OP0;
  ACC_LD = EXEC;
  PC_EN  = FETCH + WRITE*!Z;
  MEM_RD = FETCH;
  MEM_WR = WRITE*OP0;
}
|}

let fig13 () =
  header "E9 / Figure 13: two floorplans of a simple computer";
  print_endline
    "paper: control at left   -> 1558 x 1838 um = 2,863,604 um2 (aspect ~1:1)";
  print_endline
    "paper: control at bottom -> 2420 x 1207 um = 2,320,940 um2 (aspect ~2:1)";
  let s = Lazy.force server in
  let comp name attrs =
    Server.request_component s
      (Spec.make
         (Spec.From_component { component = name; attributes = attrs; functions = [] }))
  in
  let alu = comp "alu" [ ("size", 8) ] in
  let acc = comp "register" [ ("size", 8) ] in
  let opreg = comp "register" [ ("size", 8) ] in
  let mux = comp "mux_scl" [ ("size", 8) ] in
  let pc =
    comp "counter"
      [ ("size", 8); ("type", 2); ("load", 1); ("enable", 1); ("up_or_down", 1) ]
  in
  let ctrl =
    Server.request_component s (Spec.make (Spec.From_iif cpu_control_iif))
  in
  let block name (i : Instance.t) =
    { Floorplan.bname = name; bshapes = i.Instance.shape }
  in
  let datapath =
    Floorplan.auto
      [ block "alu" alu; block "acc" acc; block "opreg" opreg;
        block "mux" mux; block "pc" pc ]
  in
  let shapes = ctrl.Instance.shape in
  let tall = List.filter (fun a -> a.Shape.alt_width <= a.Shape.alt_height) shapes in
  let wide = List.filter (fun a -> a.Shape.alt_width >= a.Shape.alt_height) shapes in
  let pick l = if l = [] then shapes else l in
  let cblock l = Floorplan.of_block { Floorplan.bname = "control"; bshapes = pick l } in
  let left =
    Floorplan.best ~aspect:(Some 1.0) (Floorplan.beside (cblock tall) datapath)
  in
  let bottom =
    Floorplan.best ~aspect:(Some 2.0) (Floorplan.above datapath (cblock wide))
  in
  Printf.printf "ours:  control at left   -> %4.0f x %4.0f um = %9.0f um2 (aspect %.2f)\n"
    left.Floorplan.rwidth left.Floorplan.rheight left.Floorplan.rarea
    (left.Floorplan.rwidth /. left.Floorplan.rheight);
  Printf.printf "ours:  control at bottom -> %4.0f x %4.0f um = %9.0f um2 (aspect %.2f)\n"
    bottom.Floorplan.rwidth bottom.Floorplan.rheight bottom.Floorplan.rarea
    (bottom.Floorplan.rwidth /. bottom.Floorplan.rheight);
  let ratio = bottom.Floorplan.rarea /. left.Floorplan.rarea in
  Printf.printf
    "shape checks: both variants produced; bottom/left area ratio %.2f \
     (paper: 0.81); wide-control variant has the wider aspect (%b)\n"
    ratio
    (bottom.Floorplan.rwidth /. bottom.Floorplan.rheight
     > left.Floorplan.rwidth /. left.Floorplan.rheight)

(* ------------------------------------------------------------------ *)
(* E10 / App B §5.3: the three-bit up/down counter instance query      *)
(* ------------------------------------------------------------------ *)

let tab_instq () =
  header "E10 / App B §5.3: three_bit_up_down_counter instance query";
  print_endline
    "paper: functions LOAD STORE INC DEC | CW 20.3 | WD O[2] 5.6 O[1] 12.3 \
     O[0] 7.8 | SD UPDOWN 100";
  let inst = counter_instance ~size:3 ~ud:3 ~load:1 ~enable:0 () in
  Printf.printf "measured: functions %s | CW %.1f | WD Q[2] %.1f Q[1] %.1f \
                 Q[0] %.1f | SD DWUP %.1f\n"
    (Instance.functions_string inst)
    inst.Instance.report.Sta.clock_width
    (List.assoc "Q[2]" inst.Instance.report.Sta.output_delays)
    (List.assoc "Q[1]" inst.Instance.report.Sta.output_delays)
    (List.assoc "Q[0]" inst.Instance.report.Sta.output_delays)
    (List.assoc "DWUP" inst.Instance.report.Sta.setup_times);
  let fs = Instance.functions_string inst in
  let has f =
    let nf = String.length f and ns = String.length fs in
    let rec at i = i + nf <= ns && (String.sub fs i nf = f || at (i + 1)) in
    at 0
  in
  Printf.printf "shape checks: LOAD (%b) STORAGE (%b) INC (%b) DEC (%b)\n"
    (has "LOAD") (has "STORAGE") (has "INC") (has "DEC")

(* ------------------------------------------------------------------ *)
(* E11 / §4.1 connection information                                   *)
(* ------------------------------------------------------------------ *)

let tab_connect () =
  header "E11 / §4.1: connection information of the up/down counter";
  print_endline "paper:";
  print_endline "  ## function INC";
  print_endline "  OO is OO high";
  print_endline "  ** DWUP 0";
  print_endline "  ** ENA 0";
  print_endline "  ** LOAD 1";
  print_endline "  ** CLK 1 edge_trigger";
  let inst = counter_instance ~ud:3 ~load:1 ~enable:1 () in
  print_endline "measured:";
  String.split_on_char '\n' (Instance.connect_string inst)
  |> List.iter (fun l -> print_endline ("  " ^ l));
  print_endline
    "(note: our enable is active high, so ENA is 1 where the paper shows 0)"

(* ------------------------------------------------------------------ *)
(* E13 / ablation: ICDB vs fixed vs generic libraries                  *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "E13 / ablation: the same allocation served three ways (§1 claims)";
  let s = Server.create () in
  let fixed =
    Fixed_lib.build s [ "counter"; "register"; "adder"; "mux_scl"; "comparator" ]
  in
  (* a small datapath's needs: odd widths and polarity mismatches are
     exactly what fixed catalogs handle badly *)
  let needs =
    [ { Compare.n_component = "register"; n_size = 5; n_active_low_inputs = 1;
        n_max_delay = Some 12.0 };
      { Compare.n_component = "adder"; n_size = 5; n_active_low_inputs = 0;
        n_max_delay = Some 14.0 };
      { Compare.n_component = "counter"; n_size = 5; n_active_low_inputs = 1;
        n_max_delay = Some 30.0 };
      { Compare.n_component = "mux_scl"; n_size = 5; n_active_low_inputs = 0;
        n_max_delay = Some 6.0 };
      { Compare.n_component = "comparator"; n_size = 5; n_active_low_inputs = 0;
        n_max_delay = Some 12.0 } ]
  in
  let icdb_v = Compare.icdb_verdict s needs in
  let fixed_v = Compare.fixed_verdict fixed needs in
  let generic_v = Compare.generic_verdict s needs in
  List.iter
    (fun v -> print_endline (Compare.verdict_to_string v))
    [ icdb_v; fixed_v; generic_v ];
  Printf.printf
    "shape checks: icdb smallest area (%b), icdb most shape alternatives (%b), \
     generic budgets the slowest clock (%b)\n"
    (icdb_v.Compare.v_total_area <= fixed_v.Compare.v_total_area
     && icdb_v.Compare.v_total_area <= generic_v.Compare.v_total_area)
    (icdb_v.Compare.v_shape_alternatives > fixed_v.Compare.v_shape_alternatives
     && icdb_v.Compare.v_shape_alternatives > generic_v.Compare.v_shape_alternatives)
    (generic_v.Compare.v_worst_delay >= icdb_v.Compare.v_worst_delay
     && generic_v.Compare.v_worst_delay >= fixed_v.Compare.v_worst_delay)

(* ------------------------------------------------------------------ *)
(* Synthesis-flow ablation: the design choices DESIGN.md calls out     *)
(* ------------------------------------------------------------------ *)

let transistors (nl : Icdb_netlist.Netlist.t) =
  List.fold_left
    (fun acc (i : Icdb_netlist.Netlist.instance) ->
      match Celllib.find i.cell with
      | Some c -> acc + c.Celllib.transistors
      | None -> acc)
    0 nl.Icdb_netlist.Netlist.instances

let ablation_synth () =
  header "ablation: synthesis-flow design choices";
  let designs =
    [ ("alu4", Builtin.expand_exn "ALU" [ ("size", 4) ]);
      ("comparator4", Builtin.expand_exn "COMPARATOR" [ ("size", 4) ]);
      ("counter5", Builtin.expand_exn "COUNTER"
         [ ("size", 5); ("type", 2); ("load", 1); ("enable", 1);
           ("up_or_down", 3) ]);
      ("multiplier4", Builtin.expand_exn "MULTIPLIER" [ ("size", 4) ]) ]
  in
  sub "logic optimization and cell library (transistors / gates)";
  Printf.printf "%-14s | %16s | %16s | %16s\n" "design" "opt+full lib"
    "no-opt+full lib" "no-opt+NAND2/INV";
  List.iter
    (fun (name, flat) ->
      let full () =
        let n = Network.of_flat flat in
        Opt.optimize n;
        Techmap.map n
      in
      let noopt () =
        let n = Network.of_flat flat in
        Opt.sweep n;
        Techmap.map n
      in
      let naive () =
        let n = Network.of_flat flat in
        Opt.sweep n;
        Techmap.map ~cells:Celllib.[ inv; nand2; buf ] n
      in
      let show nl =
        Printf.sprintf "%5dT %4dg" (transistors nl)
          (Icdb_netlist.Netlist.instance_count nl)
      in
      Printf.printf "%-14s | %16s | %16s | %16s\n" name
        (show (full ())) (show (noopt ())) (show (naive ())))
    designs;
  sub "controller state encoding (12-step diffeq controller)";
  let s = Server.create () in
  let sched = Icdb_hls.Schedule.run s Icdb_hls.Dfg.diffeq ~clock:30.0 ~pessimism:1.0 in
  List.iter
    (fun (tag, enc) ->
      let c = Icdb_hls.Controller.generate ~encoding:enc s sched in
      let i = c.Icdb_hls.Controller.c_instance in
      Printf.printf "%-8s %3d gates  %6.0f um2  CW %.1f ns\n" tag
        (Instance.gate_count i) (Instance.best_area i)
        i.Instance.report.Sta.clock_width)
    [ ("one-hot", Icdb_hls.Controller.One_hot);
      ("binary", Icdb_hls.Controller.Binary) ];
  sub "sizing strategy on the 4-bit adder (delay to Cout vs area)";
  let flat = Builtin.expand_exn "ADDER" [ ("size", 4) ] in
  let nl = synthesize flat in
  List.iter
    (fun (label, strategy) ->
      let sized =
        Sizing.size_to_constraints nl
          { Sizing.default_constraints with strategy }
      in
      let r = Sta.analyze sized in
      Printf.printf "%-10s  WD(Cout) %5.1f ns   cell area %7.0f um2\n" label
        (List.assoc "Cout" r.Sta.output_delays)
        (Sta.cell_area sized))
    [ ("cheapest", Sizing.Cheapest); ("balanced", Sizing.Balanced);
      ("fastest", Sizing.Fastest) ]

(* ------------------------------------------------------------------ *)
(* HLS: scheduling quality with ICDB numbers vs generic margins        *)
(* ------------------------------------------------------------------ *)

let hls () =
  header "HLS / Figure 1: scheduling against ICDB vs a generic library";
  print_endline
    "the §2.1 claim: component delay figures let the scheduler chain, \
     multi-cycle and bind correctly; a generic library forces margins";
  let s = Server.create () in
  let bench dfg clock =
    let honest = Icdb_hls.Schedule.run s dfg ~clock ~pessimism:1.0 in
    let margins = Icdb_hls.Schedule.run s dfg ~clock ~pessimism:1.6 in
    Printf.printf
      "%-7s @ %3.0f ns | icdb: %2d steps %5.0f ns latency, %d units | \
       generic margins: %2d steps %5.0f ns (+%.0f%%)\n"
      dfg.Icdb_hls.Dfg.dfg_name clock honest.Icdb_hls.Schedule.r_steps
      honest.Icdb_hls.Schedule.r_latency
      (List.length honest.Icdb_hls.Schedule.r_units)
      margins.Icdb_hls.Schedule.r_steps margins.Icdb_hls.Schedule.r_latency
      (100.0
       *. (margins.Icdb_hls.Schedule.r_latency
           -. honest.Icdb_hls.Schedule.r_latency)
       /. honest.Icdb_hls.Schedule.r_latency);
    (honest, margins)
  in
  let h1, m1 = bench Icdb_hls.Dfg.diffeq 30.0 in
  let h2, m2 = bench Icdb_hls.Dfg.fir4 40.0 in
  let h3, m3 = bench Icdb_hls.Dfg.diffeq 60.0 in
  Printf.printf
    "shape checks: margins never faster (%b), unit counts stable (%b)\n"
    (List.for_all
       (fun (h, m) ->
         m.Icdb_hls.Schedule.r_latency >= h.Icdb_hls.Schedule.r_latency)
       [ (h1, m1); (h2, m2); (h3, m3) ])
    (List.for_all
       (fun (h, m) ->
         List.length m.Icdb_hls.Schedule.r_units
         >= List.length h.Icdb_hls.Schedule.r_units - 1)
       [ (h1, m1); (h2, m2); (h3, m3) ])

(* ------------------------------------------------------------------ *)
(* E12 / §4.4 generation latency + Bechamel micro-benchmarks           *)
(* ------------------------------------------------------------------ *)

let wallclock () =
  header "E12 / §4.4 claim: gate-level netlist generation takes under 5 minutes";
  let t0 = Unix.gettimeofday () in
  let s = Server.create ~verify:true () in
  let inst =
    Server.request_component s
      (Spec.make
         (Spec.From_component
            { component = "counter";
              attributes =
                [ ("size", 8); ("type", 2); ("load", 1); ("enable", 1);
                  ("up_or_down", 3) ];
              functions = [] }))
  in
  let t1 = Unix.gettimeofday () in
  Printf.printf
    "8-bit full-featured counter: %d gates generated, verified, timed and \
     shaped in %.2f s (paper: minutes on a 1989 Sun)\n"
    (Instance.gate_count inst) (t1 -. t0)

let bechamel () =
  header "Bechamel micro-benchmarks (generation path stages)";
  let open Bechamel in
  let open Toolkit in
  let counter_design = Parser.parse Builtin.counter in
  let params =
    [ ("size", 5); ("type", 2); ("load", 1); ("enable", 1); ("up_or_down", 3) ]
  in
  let flat = Builtin.expand_exn "COUNTER" params in
  let netlist = synthesize flat in
  let s = Server.create ~verify:false () in
  let warm =
    Server.request_component s
      (Spec.make
         (Spec.From_component
            { component = "counter"; attributes = params; functions = [] }))
  in
  ignore warm;
  let tests =
    Test.make_grouped ~name:"icdb"
      [ Test.make ~name:"iif_parse" (Staged.stage (fun () ->
            ignore (Parser.parse Builtin.counter)));
        Test.make ~name:"iif_expand" (Staged.stage (fun () ->
            ignore
              (Expander.expand ~registry:Builtin.registry counter_design params)));
        Test.make ~name:"logic_opt_map" (Staged.stage (fun () ->
            ignore (synthesize flat)));
        Test.make ~name:"sta" (Staged.stage (fun () ->
            ignore (Sta.analyze netlist)));
        Test.make ~name:"area_estimate" (Staged.stage (fun () ->
            ignore (Area_est.estimate netlist ~strips:3)));
        Test.make ~name:"shape_function" (Staged.stage (fun () ->
            ignore (Shape.of_netlist netlist)));
        Test.make ~name:"cached_request" (Staged.stage (fun () ->
            ignore
              (Server.request_component s
                 (Spec.make
                    (Spec.From_component
                       { component = "counter"; attributes = params;
                         functions = [] })))));
        Test.make ~name:"cql_parse" (Staged.stage (fun () ->
            ignore
              (Icdb_cql.Command.parse
                 "command:request_component; component_name:counter; \
                  attribute:(size:5); function:(INC); instance:?s"))) ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      let ols_result = Hashtbl.find results name in
      match Analyze.OLS.estimates ols_result with
      | Some [ t ] ->
          let pretty =
            if t > 1e9 then Printf.sprintf "%8.2f s " (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%8.2f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%8.2f us" (t /. 1e3)
            else Printf.sprintf "%8.0f ns" t
          in
          Printf.printf "%-24s %s/run\n" name pretty
      | _ -> Printf.printf "%-24s (no estimate)\n" name)
    (List.sort compare names)

(* ------------------------------------------------------------------ *)
(* E16 / cache: warm vs cold request_component                         *)
(* ------------------------------------------------------------------ *)

(* The memoization tentpole's headline measurement: every spec is
   requested once against an empty cache (cold = full Figure 8
   pipeline) and [warm_reps] more times (warm = cache hit), and the
   trajectory lands in bench_out/BENCH_cache.json so CI can track it
   per PR. ICDB_SMOKE=1 shrinks the sweep for CI smoke runs. *)
let cache_bench () =
  header "E16 / cache: warm vs cold request_component";
  let smoke = Sys.getenv_opt "ICDB_SMOKE" <> None in
  let warm_reps = if smoke then 20 else 100 in
  let counter ?(size = 5) ?(typ = 2) ?(load = 0) ?(enable = 0) ?(ud = 1) () =
    Spec.make
      (Spec.From_component
         { component = "counter";
           attributes =
             [ ("size", size); ("type", typ); ("load", load);
               ("enable", enable); ("up_or_down", ud) ];
           functions = [] })
  in
  let simple comp size =
    Spec.make
      (Spec.From_component
         { component = comp; attributes = [ ("size", size) ]; functions = [] })
  in
  let specs =
    [ ("counter5_sync", counter ());
      ("counter5_updown_load", counter ~ud:3 ~load:1 ~enable:1 ());
      ("adder6", simple "adder" 6);
      ("register8", simple "register" 8) ]
    @
    if smoke then []
    else
      [ ("counter8_ripple", counter ~size:8 ~typ:1 ());
        ("comparator6", simple "comparator" 6);
        ("mux4", simple "mux_scl" 4);
        ("adder10", simple "adder" 10) ]
  in
  let s = Server.create () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let rows =
    List.map
      (fun (name, spec) ->
        let cold_inst, cold = time (fun () -> Server.request_component s spec) in
        let warm_inst = ref cold_inst in
        let (), warm_total =
          time (fun () ->
              for _ = 1 to warm_reps do
                warm_inst := Server.request_component s spec
              done)
        in
        let warm = warm_total /. float_of_int warm_reps in
        assert (!warm_inst == cold_inst);  (* hits return the same instance *)
        (name, cold, warm))
      specs
  in
  Printf.printf "%-22s %10s %12s %9s\n" "spec" "cold (ms)" "warm (us)"
    "speedup";
  List.iter
    (fun (name, cold, warm) ->
      Printf.printf "%-22s %10.2f %12.2f %8.0fx\n" name (cold *. 1e3)
        (warm *. 1e6)
        (cold /. warm))
    rows;
  let cold_total = List.fold_left (fun a (_, c, _) -> a +. c) 0.0 rows in
  let warm_total = List.fold_left (fun a (_, _, w) -> a +. w) 0.0 rows in
  let speedup = cold_total /. warm_total in
  let st = Server.stats s in
  Printf.printf
    "totals: cold %.1f ms, warm %.1f us/sweep -> %.0fx; stats: %d hits, %d \
     reuse, %d misses, %d memo hits, %d entries\n"
    (cold_total *. 1e3) (warm_total *. 1e6) speedup st.Server.st_hits
    st.Server.st_reuse_hits st.Server.st_misses st.Server.st_memo_hits
    st.Server.st_entries;
  Printf.printf "shape check: warm >= 10x faster than cold (%b)\n"
    (speedup >= 10.0);
  let dir = out_dir () in
  let path = Filename.concat dir "BENCH_cache.json" in
  Bench_json.write ~path
    (Bench_json.Obj
       [ ("experiment", Bench_json.Str "cache");
         ("smoke", Bench_json.Bool smoke);
         ("warm_reps", Bench_json.Int warm_reps);
         ("cold_total_s", Bench_json.float ~prec:6 cold_total);
         ("warm_per_sweep_s", Bench_json.float ~prec:9 warm_total);
         ("speedup", Bench_json.float ~prec:1 speedup);
         ( "per_spec",
           Bench_json.List
             (List.map
                (fun (name, cold, warm) ->
                  Bench_json.Obj
                    [ ("name", Bench_json.Str name);
                      ("cold_s", Bench_json.float ~prec:6 cold);
                      ("warm_s", Bench_json.float ~prec:9 warm);
                      ("speedup", Bench_json.float ~prec:1 (cold /. warm)) ])
                rows) );
         ( "stats",
           Bench_json.Obj
             [ ("hits", Bench_json.Int st.Server.st_hits);
               ("reuse_hits", Bench_json.Int st.Server.st_reuse_hits);
               ("misses", Bench_json.Int st.Server.st_misses);
               ("evictions", Bench_json.Int st.Server.st_evictions);
               ("entries", Bench_json.Int st.Server.st_entries);
               ("memo_hits", Bench_json.Int st.Server.st_memo_hits);
               ("memo_misses", Bench_json.Int st.Server.st_memo_misses) ] ) ]);
  Printf.printf "trajectory -> %s\n" path

(* ------------------------------------------------------------------ *)
(* E17 / phases: per-phase latency of the generation path              *)
(* ------------------------------------------------------------------ *)

(* The observability tentpole's headline measurement: one cold
   Layout-target request traced end to end (the full Figure 8 pipeline,
   every phase spanned), then warm cache-hit repeats, with the
   per-phase numbers landing in bench_out/BENCH_phases.json and the
   cold span tree in bench_out/BENCH_trace.json (Chrome trace_event
   JSON). Exits non-zero if any expected phase span is missing from the
   cold trace, so CI catches instrumentation rot. *)
let phases_bench () =
  header "E17 / phases: per-phase latency breakdown of request_component";
  let smoke = Sys.getenv_opt "ICDB_SMOKE" <> None in
  let warm_reps = if smoke then 20 else 100 in
  let spec =
    Spec.make ~target:Spec.Layout
      (Spec.From_component
         { component = "counter";
           attributes =
             [ ("size", 5); ("type", 2); ("load", 1); ("enable", 1);
               ("up_or_down", 3) ];
           functions = [] })
  in
  Icdb_obs.Trace.set_enabled true;
  let s = Server.create ~verify:false () in
  let mark = Icdb_obs.Trace.finished_count () in
  ignore (Server.request_component s spec);
  let cold_spans = Icdb_obs.Trace.since mark in
  for _ = 1 to warm_reps do
    ignore (Server.request_component s spec)
  done;
  Icdb_obs.Trace.set_enabled false;
  let dir = out_dir () in
  let trace_path = Filename.concat dir "BENCH_trace.json" in
  Icdb_obs.Trace.write_chrome ~spans:cold_spans trace_path;
  let cold_totals = Icdb_obs.Trace.phase_totals cold_spans in
  let cold_request =
    match List.assoc_opt "request" cold_totals with Some t -> t | None -> 0.0
  in
  let st = Server.stats s in
  Printf.printf "%-20s %12s | %7s %10s %10s %10s\n" "phase" "cold" "count"
    "p50" "p90" "p99";
  print_endline (String.make 76 '-');
  List.iter
    (fun (name, cold) ->
      let q f =
        match
          List.find_opt
            (fun (x : Icdb_obs.Metrics.summary) ->
              x.Icdb_obs.Metrics.s_name = name)
            st.Server.st_phases
        with
        | Some x -> f x
        | None -> 0.0
      in
      let count =
        match
          List.find_opt
            (fun (x : Icdb_obs.Metrics.summary) ->
              x.Icdb_obs.Metrics.s_name = name)
            st.Server.st_phases
        with
        | Some x -> x.Icdb_obs.Metrics.s_count
        | None -> 0
      in
      Printf.printf "%-20s %12s | %7d %10s %10s %10s\n" name
        (Icdb_obs.Metrics.pretty_s cold)
        count
        (Icdb_obs.Metrics.pretty_s (q (fun x -> x.Icdb_obs.Metrics.s_p50)))
        (Icdb_obs.Metrics.pretty_s (q (fun x -> x.Icdb_obs.Metrics.s_p90)))
        (Icdb_obs.Metrics.pretty_s (q (fun x -> x.Icdb_obs.Metrics.s_p99))))
    cold_totals;
  let warm_request =
    match
      List.find_opt
        (fun (x : Icdb_obs.Metrics.summary) ->
          x.Icdb_obs.Metrics.s_name = "request")
        st.Server.st_phases
    with
    | Some x -> x.Icdb_obs.Metrics.s_p50
    | None -> 0.0
  in
  Printf.printf
    "cold request %s, warm request p50 %s over %d repeats\n"
    (Icdb_obs.Metrics.pretty_s cold_request)
    (Icdb_obs.Metrics.pretty_s warm_request)
    warm_reps;
  (* the once-per-request server phases plus the library-level spans a
     cold Layout-target generation must traverse *)
  let required =
    [ "request"; "cache_lookup"; "resolve"; "expand"; "generator_select";
      "synthesize"; "sizing"; "sta"; "shape"; "persist"; "cif";
      "opt.optimize"; "techmap.map"; "sta.analyze"; "sizing.size";
      "shape.estimate"; "cif.generate" ]
  in
  let missing =
    List.filter (fun p -> not (List.mem_assoc p cold_totals)) required
  in
  let path = Filename.concat dir "BENCH_phases.json" in
  Bench_json.write ~path
    (Bench_json.Obj
       [ ("experiment", Bench_json.Str "phases");
         ("smoke", Bench_json.Bool smoke);
         ("warm_reps", Bench_json.Int warm_reps);
         ("cold_request_s", Bench_json.float ~prec:6 cold_request);
         ("warm_request_p50_s", Bench_json.float ~prec:9 warm_request);
         ( "cold_phases",
           Bench_json.List
             (List.map
                (fun (name, total) ->
                  Bench_json.Obj
                    [ ("name", Bench_json.Str name);
                      ("total_s", Bench_json.float ~prec:9 total) ])
                cold_totals) );
         ( "phase_summaries",
           Bench_json.List
             (List.map
                (fun (x : Icdb_obs.Metrics.summary) ->
                  Bench_json.Obj
                    [ ("name", Bench_json.Str x.Icdb_obs.Metrics.s_name);
                      ("count", Bench_json.Int x.Icdb_obs.Metrics.s_count);
                      ("p50_s", Bench_json.float ~prec:9 x.Icdb_obs.Metrics.s_p50);
                      ("p90_s", Bench_json.float ~prec:9 x.Icdb_obs.Metrics.s_p90);
                      ("p99_s", Bench_json.float ~prec:9 x.Icdb_obs.Metrics.s_p99);
                      ("sum_s", Bench_json.float ~prec:9 x.Icdb_obs.Metrics.s_sum) ])
                st.Server.st_phases) );
         ( "missing_phases",
           Bench_json.List (List.map (fun p -> Bench_json.Str p) missing) ) ]);
  Printf.printf "per-phase trajectory -> %s\n" path;
  Printf.printf "cold span tree -> %s (chrome://tracing / Perfetto)\n"
    trace_path;
  if missing <> [] then begin
    Printf.printf "MISSING PHASE SPANS: %s\n" (String.concat " " missing);
    exit 1
  end
  else Printf.printf "shape check: all %d expected phase spans present (true)\n"
         (List.length required)

(* ------------------------------------------------------------------ *)
(* E18 / serve: network service throughput and latency                 *)
(* ------------------------------------------------------------------ *)

(* The network tentpole's headline measurement: an in-process icdbd on
   an ephemeral port, N client threads each running M CQL queries over
   their own TCP connection (the client library is call/response and
   not thread-safe, so one connection per thread mirrors real use).
   Each client cold-generates one distinct component, then hammers the
   cache-served query path — so the numbers blend one generation miss
   per client into a hit-dominated workload, the way a synthesis tool
   fanning out over a shared daemon would. Reports throughput and the
   p50/p99 round-trip latency, and lands the trajectory in
   bench_out/BENCH_serve.json. ICDB_SMOKE=1 shrinks the sweep. *)
let serve_bench () =
  header "E18 / serve: icdbd throughput and round-trip latency";
  let smoke = Sys.getenv_opt "ICDB_SMOKE" <> None in
  let clients = if smoke then 4 else 8 in
  let queries = if smoke then 25 else 100 in
  let sync = Icdb_net.Sync.wrap (Server.create ()) in
  let config =
    { Icdb_net.Service.default_config with
      port = 0;
      max_connections = clients + 4;
      workers = 4;
      max_queue = clients * 4 }
  in
  let svc = Icdb_net.Service.start ~config sync in
  let port = Icdb_net.Service.port svc in
  let run_client k =
    let c = Icdb_net.Client.connect ~port () in
    let gen =
      Printf.sprintf
        "command:request_component; component_name:counter; \
         attribute:(size:%d); attribute:(type:2); instance:?s"
        (3 + k)
    in
    let hot =
      [| gen; "command:function_query; function:(INC); component:?s"; gen |]
    in
    let lat = Array.make queries 0.0 in
    for i = 0 to queries - 1 do
      let text = if i = 0 then gen else hot.(i mod Array.length hot) in
      let t0 = Unix.gettimeofday () in
      (match Icdb_net.Client.exec c text with
      | Ok _ -> ()
      | Error (_, msg) -> failwith ("serve bench query failed: " ^ msg));
      lat.(i) <- Unix.gettimeofday () -. t0
    done;
    Icdb_net.Client.close c;
    lat
  in
  let t0 = Unix.gettimeofday () in
  (* Thread.join discards results, so each thread writes its own slot *)
  let slots = Array.make clients [||] in
  let threads =
    List.init clients (fun k ->
        Thread.create (fun () -> slots.(k) <- run_client k) ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let lats = Array.concat (Array.to_list (Array.map Array.copy slots)) in
  Array.sort compare lats;
  let total = Array.length lats in
  let pct p =
    if total = 0 then 0.0
    else
      let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int total)) in
      lats.(max 0 (min (total - 1) (rank - 1)))
  in
  let p50 = pct 50.0 and p90 = pct 90.0 and p99 = pct 99.0 in
  let throughput = float_of_int total /. wall in
  Printf.printf
    "%d clients x %d queries = %d requests in %.2f s -> %.0f req/s\n" clients
    queries total wall throughput;
  Printf.printf "round-trip latency: p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max %.2f ms\n"
    (p50 *. 1e3) (p90 *. 1e3) (p99 *. 1e3)
    (if total = 0 then 0.0 else lats.(total - 1) *. 1e3);
  Printf.printf "shape checks: all requests answered (%b), p99 >= p50 (%b)\n"
    (total = clients * queries)
    (p99 >= p50);
  (* E21: the batching curve. The caches are hot now (the sequential
     sweep above generated every component), so this isolates what the
     wire v4 [Batch] frame buys on the hit-dominated path: one framing
     round trip and one admission decision amortized over the whole
     batch instead of paid per request. Each client still runs the same
     number of queries; only the grouping changes. *)
  let batch_sizes = if smoke then [ 1; 5; 25 ] else [ 1; 4; 16; 64 ] in
  let run_batch_client size k =
    let c = Icdb_net.Client.connect ~port () in
    let hot =
      [| Printf.sprintf
           "command:request_component; component_name:counter; \
            attribute:(size:%d); attribute:(type:2); instance:?s"
           (3 + k);
         "command:function_query; function:(INC); component:?s" |]
    in
    let sent = ref 0 in
    while !sent < queries do
      let n = min size (queries - !sent) in
      let entries =
        List.init n (fun i ->
            Icdb_net.Wire.Bcql
              { text = hot.((!sent + i) mod Array.length hot); args = [] })
      in
      (match Icdb_net.Client.batch c entries with
      | Ok results ->
          List.iter
            (function
              | Icdb_net.Wire.Berror { message; _ } ->
                  failwith ("serve bench batch entry failed: " ^ message)
              | _ -> ())
            results
      | Error (_, msg) -> failwith ("serve bench batch failed: " ^ msg));
      sent := !sent + n
    done;
    Icdb_net.Client.close c
  in
  let batch_curve =
    List.map
      (fun size ->
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init clients (fun k ->
              Thread.create (fun () -> run_batch_client size k) ())
        in
        List.iter Thread.join threads;
        let bwall = Unix.gettimeofday () -. t0 in
        let rps = float_of_int (clients * queries) /. bwall in
        Printf.printf "batch size %3d: %d requests in %.3f s -> %.0f req/s\n"
          size (clients * queries) bwall rps;
        (size, bwall, rps))
      batch_sizes
  in
  Icdb_net.Service.shutdown svc;
  let batch_rps =
    List.fold_left (fun a (_, _, r) -> Float.max a r) 0.0 batch_curve
  in
  let batch_speedup = if throughput > 0.0 then batch_rps /. throughput else 0.0 in
  Printf.printf "best batched throughput: %.0f req/s (%.2fx the sequential %.0f)\n"
    batch_rps batch_speedup throughput;
  let dir = out_dir () in
  let path = Filename.concat dir "BENCH_serve.json" in
  Bench_json.write ~path
    (Bench_json.Obj
       [ ("experiment", Bench_json.Str "serve");
         ("smoke", Bench_json.Bool smoke);
         ("clients", Bench_json.Int clients);
         ("queries_per_client", Bench_json.Int queries);
         ("total_requests", Bench_json.Int total);
         ("wall_s", Bench_json.float ~prec:6 wall);
         ("throughput_rps", Bench_json.float ~prec:1 throughput);
         ("p50_s", Bench_json.float ~prec:9 p50);
         ("p90_s", Bench_json.float ~prec:9 p90);
         ("p99_s", Bench_json.float ~prec:9 p99);
         ( "max_s",
           Bench_json.float ~prec:9
             (if total = 0 then 0.0 else lats.(total - 1)) );
         ( "batch_curve",
           Bench_json.List
             (List.map
                (fun (size, bwall, rps) ->
                  Bench_json.Obj
                    [ ("batch_size", Bench_json.Int size);
                      ("wall_s", Bench_json.float ~prec:6 bwall);
                      ("rps", Bench_json.float ~prec:1 rps) ])
                batch_curve) );
         ("batch_rps", Bench_json.float ~prec:1 batch_rps);
         ("batch_speedup", Bench_json.float ~prec:3 batch_speedup) ]);
  Printf.printf "trajectory -> %s\n" path;
  (* the CI gate: batching must actually pay, or the v4 frame is
     overhead masquerading as a feature *)
  if batch_rps <= throughput then begin
    Printf.printf
      "BATCH GATE FAILED: batched %.0f req/s <= sequential %.0f req/s\n"
      batch_rps throughput;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E19 / admin: the observability plane's cost on serve throughput     *)
(* ------------------------------------------------------------------ *)

(* A/B of the E18 workload with the admin endpoint off versus enabled
   and scraped every 100 ms — the overhead question an operator asks
   before pointing Prometheus at a production daemon. Each mode takes
   the best of several runs (throughput benches are noise-limited from
   below: slow runs measure the machine, fast runs measure the code).
   Lands bench_out/BENCH_admin.json; the acceptance bar is <= 5%
   throughput regression with scraping on. *)
let admin_bench () =
  header "E19 / admin: serve throughput with /metrics scraped every 100 ms";
  let smoke = Sys.getenv_opt "ICDB_SMOKE" <> None in
  let clients = if smoke then 4 else 8 in
  (* even the smoke sweep keeps the measured window in the hundreds of
     milliseconds: at ~25k hot req/s, a short sweep would time the
     scheduler's jitter, not the admin plane *)
  let queries = if smoke then 1000 else 2000 in
  (* best-of-5: the comparison is noise-limited from below, and one
     slow-machine episode in either column would fake a regression *)
  let runs = 5 in
  let run_load ~admin () =
    let sync = Icdb_net.Sync.wrap (Server.create ()) in
    let config =
      { Icdb_net.Service.default_config with
        port = 0;
        max_connections = clients + 4;
        workers = 4;
        max_queue = clients * 4 }
    in
    let svc = Icdb_net.Service.start ~config sync in
    let port = Icdb_net.Service.port svc in
    let adm =
      if admin then
        Some (Icdb_net.Admin.start ~port:0 ~service:svc ~sync ())
      else None
    in
    let scrapes = ref 0 in
    let stop_scraper = Atomic.make false in
    let scraper =
      Option.map
        (fun a ->
          let aport = Icdb_net.Admin.port a in
          Thread.create
            (fun () ->
              while not (Atomic.get stop_scraper) do
                (match Icdb_obs.Expo.http_get ~port:aport "/metrics" with
                | 200, body when String.length body > 0 -> incr scrapes
                | status, _ ->
                    failwith
                      (Printf.sprintf "mid-load scrape answered %d" status)
                | exception Unix.Unix_error _ -> ());
                Thread.delay 0.1
              done)
            ())
        adm
    in
    (* cold generation is excluded from the timed window (its cost is
       E18's story, and its run-to-run variance would drown a 5%
       comparison): every client generates its component, parks at the
       barrier, and only the hit-dominated hot phase is measured *)
    let ready = Atomic.make 0 in
    let go = Atomic.make false in
    let run_client k =
      let c = Icdb_net.Client.connect ~port () in
      let gen =
        Printf.sprintf
          "command:request_component; component_name:counter; \
           attribute:(size:%d); attribute:(type:2); instance:?s"
          (3 + k)
      in
      let hot =
        [| gen; "command:function_query; function:(INC); component:?s"; gen |]
      in
      let exec text =
        match Icdb_net.Client.exec c text with
        | Ok _ -> ()
        | Error (_, msg) -> failwith ("admin bench query failed: " ^ msg)
      in
      exec gen;
      Atomic.incr ready;
      while not (Atomic.get go) do
        Thread.yield ()
      done;
      for i = 0 to queries - 1 do
        exec hot.(i mod Array.length hot)
      done;
      Icdb_net.Client.close c
    in
    let threads = List.init clients (fun k -> Thread.create run_client k) in
    while Atomic.get ready < clients do
      Thread.yield ()
    done;
    let t0 = Unix.gettimeofday () in
    Atomic.set go true;
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Atomic.set stop_scraper true;
    Option.iter Thread.join scraper;
    Option.iter Icdb_net.Admin.stop adm;
    Icdb_net.Service.shutdown svc;
    (float_of_int (clients * queries) /. wall, !scrapes)
  in
  (* interleave the two modes so slow machine phases (GC, noisy
     neighbors) bias both sides alike, and keep each mode's best run *)
  let base_tp = ref 0.0 and admin_tp = ref 0.0 and scrapes = ref 0 in
  for _ = 1 to runs do
    let t, _ = run_load ~admin:false () in
    if t > !base_tp then base_tp := t;
    let t, s = run_load ~admin:true () in
    if t > !admin_tp then admin_tp := t;
    scrapes := !scrapes + s
  done;
  let base_tp = !base_tp and admin_tp = !admin_tp and scrapes = !scrapes in
  let overhead_pct = (base_tp -. admin_tp) /. base_tp *. 100.0 in
  Printf.printf "admin off:  %.0f req/s (best of %d)\n" base_tp runs;
  Printf.printf "admin on:   %.0f req/s (best of %d, %d scrapes landed)\n"
    admin_tp runs scrapes;
  Printf.printf "overhead:   %.1f%%\n" overhead_pct;
  Printf.printf
    "shape checks: scrapes landed mid-load (%b), overhead <= 5%% (%b)\n"
    (scrapes > 0) (overhead_pct <= 5.0);
  let dir = out_dir () in
  let path = Filename.concat dir "BENCH_admin.json" in
  Bench_json.write ~path
    (Bench_json.Obj
       [ ("experiment", Bench_json.Str "admin");
         ("smoke", Bench_json.Bool smoke);
         ("clients", Bench_json.Int clients);
         ("queries_per_client", Bench_json.Int queries);
         ("runs_per_mode", Bench_json.Int runs);
         ("scrape_interval_s", Bench_json.float ~prec:3 0.1);
         ("baseline_rps", Bench_json.float ~prec:1 base_tp);
         ("admin_rps", Bench_json.float ~prec:1 admin_tp);
         ("scrapes", Bench_json.Int scrapes);
         ("overhead_pct", Bench_json.float ~prec:2 overhead_pct) ]);
  Printf.printf "trajectory -> %s\n" path

(* ------------------------------------------------------------------ *)
(* E22 / telemetry: sampler overhead on the hot serve path             *)
(* ------------------------------------------------------------------ *)

(* The continuous-telemetry sampler runs always-on in production, so
   its cost must be within noise of zero on the hot serve workload —
   the same A/B discipline as E19's admin bench, with the sampler
   deliberately run at 20 Hz (50 ms), 20x the 1 s production default,
   so the measured bound is a hard ceiling on the default's cost.
   Lands bench_out/BENCH_telemetry.json. *)
let telemetry_bench () =
  header "E22 / telemetry: serve throughput with the 20 Hz sampler on vs off";
  let smoke = Sys.getenv_opt "ICDB_SMOKE" <> None in
  let clients = if smoke then 4 else 8 in
  let queries = if smoke then 1000 else 2000 in
  let runs = 5 in
  let sampler_period = 0.05 in
  let run_load ~telemetry () =
    let sync = Icdb_net.Sync.wrap (Server.create ()) in
    let config =
      { Icdb_net.Service.default_config with
        port = 0;
        max_connections = clients + 4;
        workers = 4;
        max_queue = clients * 4;
        telemetry_period_s = (if telemetry then sampler_period else 0.0) }
    in
    let svc = Icdb_net.Service.start ~config sync in
    let port = Icdb_net.Service.port svc in
    (* the barrier keeps cold generation out of the timed window, as in
       E19: clients generate, park, and only the hot phase is measured *)
    let ready = Atomic.make 0 in
    let go = Atomic.make false in
    let run_client k =
      let c = Icdb_net.Client.connect ~port () in
      let gen =
        Printf.sprintf
          "command:request_component; component_name:counter; \
           attribute:(size:%d); attribute:(type:2); instance:?s"
          (3 + k)
      in
      let hot =
        [| gen; "command:function_query; function:(INC); component:?s"; gen |]
      in
      let exec text =
        match Icdb_net.Client.exec c text with
        | Ok _ -> ()
        | Error (_, msg) -> failwith ("telemetry bench query failed: " ^ msg)
      in
      exec gen;
      Atomic.incr ready;
      while not (Atomic.get go) do
        Thread.yield ()
      done;
      for i = 0 to queries - 1 do
        exec hot.(i mod Array.length hot)
      done;
      Icdb_net.Client.close c
    in
    let threads = List.init clients (fun k -> Thread.create run_client k) in
    while Atomic.get ready < clients do
      Thread.yield ()
    done;
    let t0 = Unix.gettimeofday () in
    Atomic.set go true;
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let samples =
      match Icdb_net.Service.sampler svc with
      | Some s -> Icdb_obs.Series.total_ticks s
      | None -> 0
    in
    Icdb_net.Service.shutdown svc;
    (float_of_int (clients * queries) /. wall, samples)
  in
  (* interleaved best-of-N, as in E19: slow machine phases bias both
     columns alike, and each column keeps its best run *)
  let base_tp = ref 0.0 and telem_tp = ref 0.0 and samples = ref 0 in
  for _ = 1 to runs do
    let t, _ = run_load ~telemetry:false () in
    if t > !base_tp then base_tp := t;
    let t, s = run_load ~telemetry:true () in
    if t > !telem_tp then telem_tp := t;
    samples := !samples + s
  done;
  let base_tp = !base_tp and telem_tp = !telem_tp and samples = !samples in
  let overhead_pct = (base_tp -. telem_tp) /. base_tp *. 100.0 in
  Printf.printf "sampler off: %.0f req/s (best of %d)\n" base_tp runs;
  Printf.printf "sampler on:  %.0f req/s (best of %d, %d ticks sampled)\n"
    telem_tp runs samples;
  Printf.printf "overhead:    %.1f%%\n" overhead_pct;
  Printf.printf
    "shape checks: sampler ticked mid-load (%b), overhead <= 5%% (%b)\n"
    (samples > 0) (overhead_pct <= 5.0);
  let dir = out_dir () in
  let path = Filename.concat dir "BENCH_telemetry.json" in
  Bench_json.write ~path
    (Bench_json.Obj
       [ ("experiment", Bench_json.Str "telemetry");
         ("smoke", Bench_json.Bool smoke);
         ("clients", Bench_json.Int clients);
         ("queries_per_client", Bench_json.Int queries);
         ("runs_per_mode", Bench_json.Int runs);
         ("sampler_period_s", Bench_json.float ~prec:3 sampler_period);
         ("baseline_rps", Bench_json.float ~prec:1 base_tp);
         ("telemetry_rps", Bench_json.float ~prec:1 telem_tp);
         ("sampler_ticks", Bench_json.Int samples);
         ("overhead_pct", Bench_json.float ~prec:2 overhead_pct) ]);
  Printf.printf "trajectory -> %s\n" path

(* ------------------------------------------------------------------ *)
(* E20 / repl: follower catch-up rate and propagation lag              *)
(* ------------------------------------------------------------------ *)

(* The replication plane's two operational numbers: how fast a fresh
   follower drains a backlog (records/s through subscribe, stream and
   replay), and how long a single committed write takes to become
   visible on a caught-up follower (bounded from below by the
   publisher's 50 ms poll). Lands bench_out/BENCH_repl.json.
   ICDB_SMOKE=1 shrinks the backlog. *)
let repl_bench () =
  header "E20 / repl: follower catch-up throughput and propagation lag";
  let smoke = Sys.getenv_opt "ICDB_SMOKE" <> None in
  let backlog = if smoke then 8 else 40 in
  let probes = if smoke then 5 else 20 in
  let sync = Icdb_net.Sync.wrap (Server.create ~verify:false ~durable:true ()) in
  let svc =
    Icdb_net.Service.start
      ~config:{ Icdb_net.Service.default_config with port = 0 }
      sync
  in
  let port = Icdb_net.Service.port svc in
  (* distinct spec per call — a reuse-cache hit writes no journal
     record and would make the follower look infinitely fast *)
  let comps = [| "counter"; "adder"; "register"; "comparator" |] in
  let gen k =
    ignore
      (Icdb_net.Sync.with_server sync (fun s ->
           Server.request_component s
             (Spec.make
                (Spec.From_component
                   { component = comps.(k mod 4);
                     attributes = [ ("size", 2 + (k / 4)) ];
                     functions = [] }))))
  in
  let primary_next () =
    Icdb_net.Sync.with_server sync (fun s ->
        match Icdb_reldb.Db.journal (Server.db s) with
        | Some j -> Icdb_reldb.Journal.next_seq j
        | None -> 0)
  in
  (* backlog first, so catch-up measures streaming + replay, not
     generation *)
  for k = 0 to backlog - 1 do gen k done;
  let target = primary_next () in
  let ws = Filename.temp_file "icdb_bench_repl" "" in
  Sys.remove ws;
  let rcfg = { Icdb_net.Replica.default_config with port } in
  let t0 = Unix.gettimeofday () in
  let replica = Icdb_net.Replica.create ~config:rcfg ~workspace:ws () in
  Icdb_net.Replica.run replica;
  let wait_until goal =
    while Icdb_net.Replica.cursor replica < goal do
      Thread.yield ();
      Unix.sleepf 0.002
    done
  in
  wait_until target;
  let catchup_wall = Unix.gettimeofday () -. t0 in
  let catchup_rate = float_of_int target /. catchup_wall in
  (* then single-record propagation on the live stream *)
  let lags = Array.make probes 0.0 in
  for i = 0 to probes - 1 do
    gen (backlog + i);
    (* clock starts once the write is committed on the primary: the lag
       measured is the stream's, not the synthesis pipeline's *)
    let t0 = Unix.gettimeofday () in
    wait_until (primary_next ());
    lags.(i) <- Unix.gettimeofday () -. t0
  done;
  Icdb_net.Replica.stop replica;
  Icdb_net.Service.shutdown svc;
  Array.sort compare lags;
  let p50 = lags.(probes / 2) and worst = lags.(probes - 1) in
  Printf.printf "catch-up: %d records in %.3f s -> %.0f records/s\n" target
    catchup_wall catchup_rate;
  Printf.printf
    "propagation (generate -> visible on follower): p50 %.1f ms, max %.1f ms\n"
    (p50 *. 1e3) (worst *. 1e3);
  Printf.printf "shape checks: follower caught up (%b), p50 <= max (%b)\n"
    (Icdb_net.Replica.cursor replica >= target)
    (p50 <= worst);
  let dir = out_dir () in
  let path = Filename.concat dir "BENCH_repl.json" in
  Bench_json.write ~path
    (Bench_json.Obj
       [ ("experiment", Bench_json.Str "repl");
         ("smoke", Bench_json.Bool smoke);
         ("backlog_records", Bench_json.Int target);
         ("catchup_wall_s", Bench_json.float ~prec:6 catchup_wall);
         ("catchup_records_per_s", Bench_json.float ~prec:1 catchup_rate);
         ("probes", Bench_json.Int probes);
         ("propagation_p50_s", Bench_json.float ~prec:6 p50);
         ("propagation_max_s", Bench_json.float ~prec:6 worst) ]);
  Printf.printf "trajectory -> %s\n" path

(* ------------------------------------------------------------------ *)
(* E23 / explore: DSE sweep throughput + indexed Pareto vs scan        *)
(* ------------------------------------------------------------------ *)

(* Two halves. First the real thing: a design-space sweep through
   Icdb_explore.Driver against a local server, persisted into a journaled
   store, then rerun to prove resume recomputes nothing. Then the query
   side at scale: a synthetic exploration relation (the sweep above is
   too small to stress the planner) answers the same PARETO statement
   with and without the secondary index on [sweep]; the rendered rows
   must be byte-identical and, at >= 10^4 rows, the indexed plan must be
   at least 5x faster. Both gates exit non-zero so CI can hold the
   line. *)
let explore_bench () =
  header "E23 / explore: design-space sweep + indexed Pareto queries";
  let smoke = Sys.getenv_opt "ICDB_SMOKE" <> None in
  let module Ax = Icdb_explore.Axis in
  let module St = Icdb_explore.Store in
  let module Dr = Icdb_explore.Driver in
  let module R = Icdb_reldb in
  let dir = out_dir () in

  sub "sweep throughput (local backend, journaled store)";
  let store_dir = Filename.concat dir "explore_store" in
  (* cold start: a stale store would turn the sweep into a no-op *)
  List.iter
    (fun f ->
      let p = Filename.concat store_dir f in
      if Sys.file_exists p then Sys.remove p)
    [ "explore.db"; "explore.journal" ];
  let axes =
    if smoke then
      [ Ax.parse "size=2..9"; Ax.parse "strategy=fastest,cheapest,balanced";
        Ax.parse "clock=20,none" ]
    else
      [ Ax.parse "size=2..13"; Ax.parse "strategy=fastest,cheapest,balanced";
        Ax.parse "clock=10,20,none"; Ax.parse "delay=30,none" ]
  in
  let points = Ax.expand ~component:"counter" axes in
  let sweep = "bench" in
  let sweep_server = Server.create ~verify:false () in
  let store = St.open_ store_dir in
  let t0 = Unix.gettimeofday () in
  let s = Dr.run ~sweep (Dr.Local sweep_server) store points in
  let sweep_wall = Unix.gettimeofday () -. t0 in
  let rate = float_of_int s.Dr.s_executed /. sweep_wall in
  Printf.printf "swept %d points in %.2fs (%.1f points/s), %d failed\n"
    s.Dr.s_executed sweep_wall rate
    (List.length s.Dr.s_failures);
  let s2 = Dr.run ~sweep (Dr.Local sweep_server) store points in
  Printf.printf "rerun: %d executed, %d skipped (resume %s)\n"
    s2.Dr.s_executed s2.Dr.s_skipped
    (if s2.Dr.s_executed = 0 then "ok" else "BROKEN");
  St.close store;
  if s2.Dr.s_executed <> 0 then begin
    Printf.eprintf "explore gate FAILED: rerun recomputed %d points\n"
      s2.Dr.s_executed;
    exit 1
  end;

  sub "indexed PARETO vs scan (synthetic exploration relation)";
  let rows = if smoke then 10_000 else 40_000 in
  let sweeps = 16 in
  let db = R.Db.create () in
  let tbl = R.Db.create_table db St.table_name St.schema in
  let rng = Random.State.make [| 0x1CDB; rows |] in
  for i = 0 to rows - 1 do
    let area = 1000.0 +. Random.State.float rng 99000.0 in
    let delay = 1.0 +. Random.State.float rng 99.0 in
    R.Table.insert tbl
      [ R.Value.Str (Printf.sprintf "k%d" i);
        R.Value.Str (Printf.sprintf "sweep_%d" (i mod sweeps));
        R.Value.Str "counter"; R.Value.Str "size=5"; R.Value.Str "balanced";
        R.Value.Float 0.0; R.Value.Float 0.0;
        R.Value.Str (Printf.sprintf "counter_%d" i);
        R.Value.Float area; R.Value.Float delay; R.Value.Float 0.0;
        R.Value.Int (100 + (i mod 900)); R.Value.Str "miss";
        R.Value.Float 0.001; R.Value.Bool false; R.Value.Bool true ]
  done;
  let stmt =
    Printf.sprintf "PARETO %s ON area, delay WHERE sweep = %s" St.table_name
      (R.Sql.quote_string "sweep_7")
  in
  let render = function
    | R.Sql.Relation rel ->
        String.concat "\n"
          (List.map
             (fun row ->
               String.concat "|"
                 (Array.to_list (Array.map R.Value.to_string row)))
             rel.R.Query.rrows)
    | R.Sql.Affected _ -> "affected"
  in
  let reps = if smoke then 20 else 40 in
  let measure () =
    let out = ref "" in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      out := render (R.Sql.exec db stmt)
    done;
    ((Unix.gettimeofday () -. t0) /. float_of_int reps, !out)
  in
  let scan_s, scan_out = measure () in
  (match R.Sql.exec db (Printf.sprintf "CREATE INDEX ON %s (sweep)" St.table_name) with
  | R.Sql.Affected _ -> ()
  | R.Sql.Relation _ -> ());
  let indexed_s, indexed_out = measure () in
  let identical = String.equal scan_out indexed_out in
  let speedup = scan_s /. indexed_s in
  Printf.printf
    "%d rows over %d sweeps: scan %.3f ms, indexed %.3f ms, speedup %.1fx, \
     results identical: %b\n"
    rows sweeps (scan_s *. 1e3) (indexed_s *. 1e3) speedup identical;
  if not identical then begin
    Printf.eprintf "explore gate FAILED: indexed PARETO differs from scan\n";
    exit 1
  end;
  if rows >= 10_000 && speedup < 5.0 then begin
    Printf.eprintf
      "explore gate FAILED: indexed PARETO only %.1fx faster at %d rows\n"
      speedup rows;
    exit 1
  end;

  let path = Filename.concat dir "BENCH_explore.json" in
  Bench_json.write ~path
    (Bench_json.Obj
       [ ("experiment", Bench_json.Str "explore");
         ("smoke", Bench_json.Bool smoke);
         ("sweep_points", Bench_json.Int s.Dr.s_executed);
         ("sweep_wall_s", Bench_json.float ~prec:3 sweep_wall);
         ("sweep_points_per_s", Bench_json.float ~prec:1 rate);
         ("resume_reexecuted", Bench_json.Int s2.Dr.s_executed);
         ("pareto_rows", Bench_json.Int rows);
         ("pareto_scan_s", Bench_json.float ~prec:6 scan_s);
         ("pareto_indexed_s", Bench_json.float ~prec:6 indexed_s);
         ("pareto_speedup", Bench_json.float ~prec:1 speedup);
         ("results_identical", Bench_json.Bool identical) ]);
  Printf.printf "trajectory -> %s\n" path

(* ------------------------------------------------------------------ *)
(* E24 / queryobs: EXPLAIN ANALYZE overhead + stats-driven index pick  *)
(* ------------------------------------------------------------------ *)

(* Two gates on the query-observability plane. (a) EXPLAIN ANALYZE must
   cost at most 10% over plain execution of the same statement — the
   per-node clocks and row counters ride along with the query, so the
   instrumented path has to stay cheap enough to use in production.
   (b) With two candidate equality indexes of very different
   selectivity, post-ANALYZE statistics must route the probe through
   the smaller bucket — asserted from the per-index hit counters, with
   the rows byte-identical to an unindexed scan of the same data. *)
let queryobs_bench () =
  header "E24 / queryobs: EXPLAIN ANALYZE overhead + stats-driven index pick";
  let smoke = Sys.getenv_opt "ICDB_SMOKE" <> None in
  let module R = Icdb_reldb in
  let dir = out_dir () in
  let rows = if smoke then 10_000 else 40_000 in
  let groups = 2 in
  let keys = rows / 40 in
  let schema =
    [ ("key", R.Value.Tstr); ("grp", R.Value.Tstr); ("val", R.Value.Tint) ]
  in
  let fill db =
    let tbl = R.Db.create_table db "skewed" schema in
    for i = 0 to rows - 1 do
      R.Table.insert tbl
        [ R.Value.Str (Printf.sprintf "k%d" (i mod keys));
          R.Value.Str (Printf.sprintf "g%d" (i mod groups));
          R.Value.Int i ]
    done;
    tbl
  in
  let db = R.Db.create () in
  let _ = fill db in
  let render = function
    | R.Sql.Relation rel ->
        String.concat "\n"
          (List.map
             (fun row ->
               String.concat "|"
                 (Array.to_list (Array.map R.Value.to_string row)))
             rel.R.Query.rrows)
    | R.Sql.Affected _ -> "affected"
  in

  sub "EXPLAIN ANALYZE overhead (scan-shaped SELECT)";
  (* a scan with a refilter: enough work per call that the per-node
     clocks and counters are measured against a realistic statement,
     not an empty one *)
  let stmt = "SELECT key, val FROM skewed WHERE grp = 'g1' LIMIT 64" in
  let reps = if smoke then 100 else 60 in
  let batch stmt =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do ignore (R.Sql.exec db stmt) done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  (* paired rounds, median ratio: the two arms run back-to-back inside
     each round, so machine-level drift (frequency scaling, contending
     load) hits both and cancels in the per-round ratio; the median of
     the ratios is then robust to the odd slow round, where per-arm
     minima taken independently are not *)
  let rounds = 8 in
  let plain_s = ref infinity and analyze_s = ref infinity in
  ignore (batch stmt);
  ignore (batch ("EXPLAIN ANALYZE " ^ stmt));
  let ratios =
    List.init rounds (fun _ ->
        let p = batch stmt in
        let a = batch ("EXPLAIN ANALYZE " ^ stmt) in
        plain_s := Float.min !plain_s p;
        analyze_s := Float.min !analyze_s a;
        a /. p)
  in
  let sorted = List.sort compare ratios in
  let median =
    (List.nth sorted ((rounds - 1) / 2) +. List.nth sorted (rounds / 2)) /. 2.0
  in
  let plain_s = !plain_s and analyze_s = !analyze_s in
  let overhead_pct = (median -. 1.0) *. 100.0 in
  Printf.printf
    "%d rows: plain %.3f ms, explain-analyze %.3f ms, overhead %.1f%%\n" rows
    (plain_s *. 1e3) (analyze_s *. 1e3) overhead_pct;
  if overhead_pct > 10.0 then begin
    Printf.eprintf
      "queryobs gate FAILED: EXPLAIN ANALYZE overhead %.1f%% > 10%%\n"
      overhead_pct;
    exit 1
  end;

  sub "statistics-driven index choice (skewed selectivities)";
  (* both columns indexed: grp buckets hold rows/2 entries, key buckets
     rows/keys — statistics must send the probe through key *)
  ignore (R.Sql.exec db "CREATE INDEX ON skewed (grp)");
  ignore (R.Sql.exec db "CREATE INDEX ON skewed (key)");
  ignore (R.Sql.exec db "ANALYZE skewed");
  let probe = "SELECT key, grp, val FROM skewed WHERE grp = 'g1' AND key = 'k7'" in
  let hits col =
    Icdb_obs.Metrics.counter_value
      (Icdb_obs.Metrics.counter (Printf.sprintf "reldb.index.skewed.%s.hits" col))
  in
  let key_before = hits "key" and grp_before = hits "grp" in
  let indexed_out = render (R.Sql.exec db probe) in
  let key_hits = hits "key" - key_before
  and grp_hits = hits "grp" - grp_before in
  let plan_text = render (R.Sql.exec db ("EXPLAIN ANALYZE " ^ probe)) in
  let contains needle hay =
    let nn = String.length needle and nh = String.length hay in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  (* the scan baseline runs on a second database holding the same rows
     and no indexes, so "byte-identical" compares full executions, not
     a code path sharing the probe *)
  let db_scan = R.Db.create () in
  let _ = fill db_scan in
  let scan_out = render (R.Sql.exec db_scan probe) in
  let identical = String.equal indexed_out scan_out in
  Printf.printf
    "probe hits: key +%d, grp +%d; plan uses stats: %b; results identical: %b\n"
    key_hits grp_hits
    (contains "stats" plan_text)
    identical;
  print_endline plan_text;
  if key_hits < 1 || grp_hits > 0 then begin
    Printf.eprintf
      "queryobs gate FAILED: probe used grp (+%d) instead of key (+%d)\n"
      grp_hits key_hits;
    exit 1
  end;
  if not (contains "Index Probe" plan_text && contains "stats" plan_text
          && contains "actual" plan_text) then begin
    Printf.eprintf "queryobs gate FAILED: plan text missing probe/stats/actuals:\n%s\n"
      plan_text;
    exit 1
  end;
  if not identical then begin
    Printf.eprintf "queryobs gate FAILED: indexed probe differs from scan\n";
    exit 1
  end;

  let path = Filename.concat dir "BENCH_queryobs.json" in
  Bench_json.write ~path
    (Bench_json.Obj
       [ ("experiment", Bench_json.Str "queryobs");
         ("smoke", Bench_json.Bool smoke);
         ("rows", Bench_json.Int rows);
         ("plain_s", Bench_json.float ~prec:6 plain_s);
         ("explain_analyze_s", Bench_json.float ~prec:6 analyze_s);
         ("overhead_pct", Bench_json.float ~prec:1 overhead_pct);
         ("key_index_hits", Bench_json.Int key_hits);
         ("grp_index_hits", Bench_json.Int grp_hits);
         ("results_identical", Bench_json.Bool identical) ]);
  Printf.printf "trajectory -> %s\n" path

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [ ("fig5", fig5); ("fig6", fig6); ("tab_delay", tab_delay);
    ("tab_shape", tab_shape); ("fig9", fig9); ("fig10", fig10);
    ("fig11", fig11); ("fig12", fig12); ("fig13", fig13);
    ("tab_instq", tab_instq); ("tab_connect", tab_connect);
    ("ablation", ablation); ("ablation_synth", ablation_synth); ("hls", hls);
    ("wallclock", wallclock); ("cache", cache_bench);
    ("phases", phases_bench); ("serve", serve_bench); ("admin", admin_bench);
    ("telemetry", telemetry_bench); ("repl", repl_bench);
    ("explore", explore_bench); ("queryobs", queryobs_bench);
    ("bechamel", bechamel) ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "list" :: _ ->
      List.iter (fun (n, _) -> print_endline n) experiments
  | _ :: name :: _ -> (
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (try: list)\n" name;
          exit 1)
  | _ ->
      print_endline
        "ICDB evaluation harness: regenerating every table and figure";
      List.iter (fun (_, f) -> f ()) experiments
