(* Seeded protocol fuzzing for the icdbd wire codec (ISSUE 7 satellite).

   Three properties, each over a deterministic PRNG so failures
   reproduce from the printed seed:

   1. Round-trip: every v3/v4 frame shape under random valid payloads
      (adversarial strings, extreme ints, NaN/infinity floats)
      re-encodes to byte-identical frames after a decode. Byte
      comparison, not structural equality, so NaN payloads and float
      bit patterns are covered rather than dodged.

   2. Classification: mutated, truncated, oversized, and garbage byte
      streams fed through [Wire.Dechunk] + the payload decoders always
      land in the documented taxonomy — [Ok], recoverable
      ([Bad_version]/[Malformed]), or the stream-level fatal outcomes
      ([`Oversized], held-back [`Await]) — and never escape as an
      unclassified exception.

   3. Split-at-every-offset: one frame of each kind decodes identically
      no matter where the kernel splits the read, which is the partial-
      read audit the event loop's correctness rests on. *)

module Wire = Icdb_net.Wire

let seed =
  match Sys.getenv_opt "ICDB_FUZZ_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None ->
          Printf.eprintf "ICDB_FUZZ_SEED must be an int, got %S\n" s;
          exit 2)
  | None -> 0x1cdb

let () =
  Printf.printf "wire fuzz seed: %d (set ICDB_FUZZ_SEED to reproduce)\n%!" seed

let rng = Random.State.make [| seed |]
let rint n = Random.State.int rng n
let pick l = List.nth l (rint (List.length l))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* Strings with every byte value, including NULs, newlines and high
   bytes — the codec is length-prefixed and must not care. *)
let gen_string () =
  let n = rint 13 in
  String.init n (fun _ -> Char.chr (rint 256))

let gen_int () =
  pick
    [ 0; 1; -1; 42; max_int; min_int; rint 1000; -rint 1000;
      (rint 1_000_000 * 4096) + rint 4096 ]

let gen_float () =
  pick
    [ 0.0; -0.0; 1.5; -3.25; infinity; neg_infinity; nan; Float.pi;
      Random.State.float rng 1e9; -.Random.State.float rng 1.0; 1e-300 ]

let gen_list gen =
  let n = rint 4 in
  List.init n (fun _ -> gen ())

let gen_arg () : Icdb_cql.Exec.arg =
  match rint 4 with
  | 0 -> Astr (gen_string ())
  | 1 -> Aint (gen_int ())
  | 2 -> Afloat (gen_float ())
  | _ -> Astrs (gen_list gen_string)

let gen_result () : string * Icdb_cql.Exec.result =
  ( gen_string (),
    match rint 4 with
    | 0 -> Rstr (gen_string ())
    | 1 -> Rint (gen_int ())
    | 2 -> Rfloat (gen_float ())
    | _ -> Rstrs (gen_list gen_string) )

let gen_ctx () =
  { Wire.trace_id = gen_string (); timeout_s = gen_float () }

let gen_error_code () : Wire.error_code =
  pick
    [ Wire.Parse_error; Wire.Exec_error; Wire.Sql_error; Wire.Protocol_error;
      Wire.Version_mismatch; Wire.Overloaded; Wire.Timeout;
      Wire.Shutting_down; Wire.Internal; Wire.Read_only ]

let gen_batch_entry () : Wire.batch_entry =
  if rint 2 = 0 then Bcql { text = gen_string (); args = gen_list gen_arg }
  else Bsql (gen_string ())

(* Every request constructor, v3 and v4. *)
let gen_req () : Wire.req =
  match rint 8 with
  | 0 -> Ping
  | 1 -> Cql { text = gen_string (); args = gen_list gen_arg }
  | 2 -> Sql (gen_string ())
  | 3 -> Stats
  | 4 -> Trace_fetch (gen_string ())
  | 5 -> Shutdown
  | 6 -> Subscribe { cursor = gen_int () }
  | _ -> Batch (gen_list gen_batch_entry)

let gen_sql_result () : Wire.sql_result =
  if rint 2 = 0 then Affected (gen_int ())
  else
    Relation
      { cols = gen_list gen_string;
        rows = gen_list (fun () -> gen_list gen_string) }

let gen_remote_span () : Wire.remote_span =
  { rs_id = gen_int ();
    rs_parent = (if rint 2 = 0 then None else Some (gen_int ()));
    rs_name = gen_string ();
    rs_tag = gen_string ();
    rs_start_ns = gen_int ();
    rs_dur_ns = gen_int ();
    rs_attrs = gen_list (fun () -> (gen_string (), gen_string ())) }

let gen_hist () : Wire.hist_summary =
  { hs_name = gen_string ();
    hs_count = gen_int ();
    hs_sum = gen_float ();
    hs_min = gen_float ();
    hs_max = gen_float ();
    hs_p50 = gen_float ();
    hs_p90 = gen_float ();
    hs_p99 = gen_float () }

let gen_slow () : Wire.slow_entry =
  { sl_cmd = gen_string ();
    sl_trace = gen_string ();
    sl_conn = gen_int ();
    sl_seconds = gen_float ();
    sl_cache = gen_string ();
    sl_phases = gen_list (fun () -> (gen_string (), gen_float ()));
    sl_plan = gen_string () }

let gen_stats_payload () : Wire.stats_payload =
  { sp_text = gen_string ();
    sp_counters = gen_list (fun () -> (gen_string (), gen_int ()));
    sp_gauges = gen_list (fun () -> (gen_string (), gen_float ()));
    sp_hists = gen_list gen_hist;
    sp_slow = gen_list gen_slow }

let gen_batch_result () : Wire.batch_result =
  match rint 3 with
  | 0 -> Bresults (gen_list gen_result)
  | 1 -> Bsql_result (gen_sql_result ())
  | _ -> Berror { code = gen_error_code (); message = gen_string () }

(* Every response constructor, v3 and v4. *)
let gen_resp () : Wire.resp =
  match rint 12 with
  | 0 -> Pong
  | 1 -> Results (gen_list gen_result)
  | 2 -> Sql_result (gen_sql_result ())
  | 3 -> Stats_report (gen_stats_payload ())
  | 4 -> Spans (gen_list gen_remote_span)
  | 5 -> Error { code = gen_error_code (); message = gen_string () }
  | 6 -> Bye
  | 7 ->
      Journal_batch
        { jb_first = gen_int ();
          jb_next = gen_int ();
          jb_records = gen_list gen_string;
          jb_files = gen_list (fun () -> (gen_string (), gen_string ())) }
  | 8 ->
      (* co_files is a u32 on the wire: the encoder rejects anything
         outside [0, 2^31) by design, so generate in range *)
      Checkpoint_offer { co_cursor = gen_int (); co_files = rint 100_000 }
  | 9 ->
      Checkpoint_chunk
        { cc_name = gen_string ();
          cc_data = gen_string ();
          cc_last = rint 2 = 0 }
  | 10 -> Repl_error (gen_string ())
  | _ -> Batch_reply (gen_list gen_batch_result)

(* ------------------------------------------------------------------ *)
(* Classification harness                                              *)
(* ------------------------------------------------------------------ *)

let payload_of frame_bytes =
  String.sub frame_bytes 4 (String.length frame_bytes - 4)

(* Decode one complete payload and name the taxonomy bucket it landed
   in; anything outside the documented buckets is the bug. *)
let classify_payload decode p =
  match decode p with
  | Ok _ -> `Ok
  | Error (Wire.Bad_version _) | Error (Wire.Malformed _) -> `Recoverable
  | Error (Wire.Closed | Wire.Truncated _ | Wire.Oversized _) ->
      `Transport_error_from_complete_payload
  | exception e -> `Unclassified_exception (Printexc.to_string e)

let decode_req_u p = Result.map ignore (Wire.decode_request p)
let decode_resp_u p = Result.map ignore (Wire.decode_response p)

(* Push an arbitrary byte stream through a fresh Dechunk and classify
   everything that comes out. Returns the number of complete payloads
   seen; fails the test on any unclassified outcome. *)
let classify_stream ?(decode = decode_req_u) bytes =
  let d = Wire.Dechunk.create () in
  Wire.Dechunk.feed_string d bytes;
  let payloads = ref 0 in
  let rec go () =
    match Wire.Dechunk.next d with
    | exception e ->
        Alcotest.failf "Dechunk.next raised: %s" (Printexc.to_string e)
    | `Await -> () (* incomplete tail: the service waits or, at EOF,
                      classifies it Truncated via [buffered] *)
    | `Oversized n ->
        (* fatal, and only for genuinely out-of-range declarations *)
        if n >= 0 && n <= Wire.max_payload then
          Alcotest.failf "Oversized reported for in-range length %d" n
    | `Payload p -> (
        incr payloads;
        match classify_payload decode p with
        | `Ok | `Recoverable -> go ()
        | `Transport_error_from_complete_payload ->
            Alcotest.fail
              "decoder returned a transport-level error for a complete \
               payload"
        | `Unclassified_exception msg ->
            Alcotest.failf "unclassified decoder exception: %s" msg)
  in
  go ();
  !payloads

(* ------------------------------------------------------------------ *)
(* 1. Round-trips                                                      *)
(* ------------------------------------------------------------------ *)

let cases = 1000

let t_roundtrip_requests () =
  for _ = 1 to cases do
    let ctx = gen_ctx () in
    let frame = { Wire.id = gen_int (); body = gen_req () } in
    let bytes = Wire.encode_request ~ctx frame in
    match Wire.decode_request (payload_of bytes) with
    | Error e ->
        Alcotest.failf "valid request rejected: %s"
          (Wire.decode_error_to_string e)
    | Ok (frame', ctx') ->
        let bytes' = Wire.encode_request ~ctx:ctx' frame' in
        if not (String.equal bytes bytes') then
          Alcotest.fail "request did not round-trip to identical bytes"
  done

let t_roundtrip_responses () =
  for _ = 1 to cases do
    let frame = { Wire.id = gen_int (); body = gen_resp () } in
    let bytes = Wire.encode_response frame in
    match Wire.decode_response (payload_of bytes) with
    | Error e ->
        Alcotest.failf "valid response rejected: %s"
          (Wire.decode_error_to_string e)
    | Ok frame' ->
        let bytes' = Wire.encode_response frame' in
        if not (String.equal bytes bytes') then
          Alcotest.fail "response did not round-trip to identical bytes"
  done

(* ------------------------------------------------------------------ *)
(* 2. Mutation / truncation / garbage classification                   *)
(* ------------------------------------------------------------------ *)

let mutate bytes =
  let b = Bytes.of_string bytes in
  let len = Bytes.length b in
  match rint 6 with
  | 0 ->
      (* flip one random byte *)
      if len > 0 then begin
        let i = rint len in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + rint 255)))
      end;
      Bytes.to_string b
  | 1 ->
      (* flip several bytes *)
      for _ = 1 to 1 + rint 4 do
        if len > 0 then
          let i = rint len in
          Bytes.set b i (Char.chr (rint 256))
      done;
      Bytes.to_string b
  | 2 ->
      (* truncate at a random point *)
      Bytes.sub_string b 0 (rint (max 1 len))
  | 3 ->
      (* rewrite the length header with a random declaration *)
      if len >= 4 then
        Bytes.set_int32_be b 0 (Random.State.int32 rng Int32.max_int);
      Bytes.to_string b
  | 4 ->
      (* glue a second (possibly cut) copy on: resynchronization *)
      Bytes.to_string b ^ String.sub bytes 0 (rint (max 1 len))
  | _ ->
      (* pure garbage *)
      String.init (rint 64) (fun _ -> Char.chr (rint 256))

let t_mutation_classification () =
  for _ = 1 to cases do
    let bytes =
      if rint 2 = 0 then
        Wire.encode_request ~ctx:(gen_ctx ())
          { Wire.id = gen_int (); body = gen_req () }
      else Wire.encode_response { Wire.id = gen_int (); body = gen_resp () }
    in
    let decode =
      (* decode mutated responses as requests half the time too: a
         confused peer is exactly the case the taxonomy must absorb *)
      if rint 2 = 0 then decode_req_u else decode_resp_u
    in
    ignore (classify_stream ~decode (mutate bytes))
  done

let t_oversized_declaration () =
  (* a header declaring more than max_payload must be caught from the
     4 header bytes alone, before any body is buffered *)
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (Wire.max_payload + 1));
  let d = Wire.Dechunk.create () in
  Wire.Dechunk.feed_string d (Bytes.to_string b);
  (match Wire.Dechunk.next d with
   | `Oversized n -> Alcotest.(check int) "declared" (Wire.max_payload + 1) n
   | _ -> Alcotest.fail "oversized declaration not detected from header");
  (* negative declaration (high bit set) is oversized too, not a crash *)
  Bytes.set_int32_be b 0 0x80000001l;
  let d = Wire.Dechunk.create () in
  Wire.Dechunk.feed_string d (Bytes.to_string b);
  match Wire.Dechunk.next d with
  | `Oversized n -> Alcotest.(check bool) "negative declared" true (n < 0)
  | _ -> Alcotest.fail "negative declaration not detected"

let t_truncation_never_yields () =
  (* no prefix of a single valid frame ever yields a payload, and the
     partial bytes stay visible via [buffered] so EOF classifies as
     Truncated *)
  for _ = 1 to 200 do
    let bytes =
      Wire.encode_request ~ctx:(gen_ctx ())
        { Wire.id = gen_int (); body = gen_req () }
    in
    let len = String.length bytes in
    let cut = 1 + rint (len - 1) in
    let d = Wire.Dechunk.create () in
    Wire.Dechunk.feed_string d (String.sub bytes 0 cut);
    (match Wire.Dechunk.next d with
     | `Await -> ()
     | `Payload _ -> Alcotest.fail "payload produced from a truncated frame"
     | `Oversized _ -> Alcotest.fail "oversized from a valid prefix");
    Alcotest.(check int) "buffered bytes" cut (Wire.Dechunk.buffered d)
  done

(* ------------------------------------------------------------------ *)
(* 3. Split-at-every-offset + random fragmentation                     *)
(* ------------------------------------------------------------------ *)

(* One representative frame of every kind on the wire, request and
   response, with non-trivial bodies so every field boundary exists. *)
let one_of_each () : (string * string) list =
  let ctx = { Wire.trace_id = "trace-1"; timeout_s = 2.5 } in
  let reqs : (string * Wire.req) list =
    [ ("ping", Ping);
      ("cql", Cql { text = "command:request_component;"; args = [ Aint 5; Astr "x"; Afloat 2.5; Astrs [ "a"; "b" ] ] });
      ("sql", Sql "SELECT name FROM components");
      ("stats", Stats);
      ("trace_fetch", Trace_fetch "tid-1");
      ("shutdown", Shutdown);
      ("subscribe", Subscribe { cursor = 12345 });
      ( "batch",
        Batch
          [ Bcql { text = "command:x;"; args = [ Aint 1 ] };
            Bsql "SELECT a FROM b" ] ) ]
  in
  let resps : (string * Wire.resp) list =
    [ ("pong", Pong);
      ("results", Results [ ("s", Rstr "v"); ("n", Rint 7); ("f", Rfloat 1.5); ("l", Rstrs [ "x" ]) ]);
      ("sql_affected", Sql_result (Affected 3));
      ("sql_relation", Sql_result (Relation { cols = [ "a"; "b" ]; rows = [ [ "1"; "2" ] ] }));
      ( "stats_report",
        Stats_report
          { sp_text = "t";
            sp_counters = [ ("c", 1) ];
            sp_gauges = [ ("g", 2.0) ];
            sp_hists =
              [ { hs_name = "h"; hs_count = 1; hs_sum = 1.0; hs_min = 0.5;
                  hs_max = 1.5; hs_p50 = 1.0; hs_p90 = 1.2; hs_p99 = 1.4 } ];
            sp_slow =
              [ { sl_cmd = "net.cql.x"; sl_trace = "t"; sl_conn = 1;
                  sl_seconds = 2.0; sl_cache = "hit";
                  sl_phases = [ ("gen", 1.5) ];
                  sl_plan = "scan(components)" } ] } );
      ( "spans",
        Spans
          [ { rs_id = 1; rs_parent = Some 0; rs_name = "n"; rs_tag = "t";
              rs_start_ns = 10; rs_dur_ns = 20; rs_attrs = [ ("k", "v") ] } ] );
      ("error", Error { code = Wire.Overloaded; message = "m" });
      ("bye", Bye);
      ( "journal_batch",
        Journal_batch
          { jb_first = 1; jb_next = 2; jb_records = [ "r1"; "r2" ];
            jb_files = [ ("f", "data") ] } );
      ("checkpoint_offer", Checkpoint_offer { co_cursor = 9; co_files = 2 });
      ( "checkpoint_chunk",
        Checkpoint_chunk { cc_name = "f"; cc_data = "d"; cc_last = true } );
      ("repl_error", Repl_error "gone");
      ( "batch_reply",
        Batch_reply
          [ Bresults [ ("k", Rstr "v") ];
            Bsql_result (Affected 1);
            Berror { code = Wire.Sql_error; message = "e" } ] ) ]
  in
  List.map
    (fun (n, r) ->
      ("req." ^ n, Wire.encode_request ~ctx { Wire.id = 7; body = r }))
    reqs
  @ List.map
      (fun (n, r) ->
        ("resp." ^ n, Wire.encode_response { Wire.id = 7; body = r }))
      resps

let decodes_ok name bytes p =
  let ok =
    if String.length name >= 4 && String.sub name 0 4 = "req." then
      match Wire.decode_request p with
      | Ok (f, ctx) ->
          String.equal bytes (Wire.encode_request ~ctx f)
      | Error _ -> false
    else
      match Wire.decode_response p with
      | Ok f -> String.equal bytes (Wire.encode_response f)
      | Error _ -> false
  in
  if not ok then Alcotest.failf "%s: reassembled payload did not decode" name

let t_split_every_offset () =
  List.iter
    (fun (name, bytes) ->
      let len = String.length bytes in
      for cut = 0 to len do
        let d = Wire.Dechunk.create () in
        Wire.Dechunk.feed_string d (String.sub bytes 0 cut);
        (match Wire.Dechunk.next d with
         | `Payload p ->
             if cut < len then
               Alcotest.failf "%s: payload before byte %d of %d" name cut len
             else decodes_ok name bytes p
         | `Await ->
             if cut = len then
               Alcotest.failf "%s: complete frame not recognized" name
         | `Oversized _ -> Alcotest.failf "%s: bogus oversized" name);
        if cut < len then begin
          Wire.Dechunk.feed_string d (String.sub bytes cut (len - cut));
          match Wire.Dechunk.next d with
          | `Payload p -> decodes_ok name bytes p
          | `Await | `Oversized _ ->
              Alcotest.failf "%s: frame split at %d did not reassemble" name
                cut
        end
      done)
    (one_of_each ())

let t_random_fragmentation () =
  (* several frames glued, then cut into random fragments: exactly the
     original payloads come out, in order *)
  for _ = 1 to 200 do
    let frames =
      List.init (1 + rint 4) (fun _ ->
          Wire.encode_request ~ctx:(gen_ctx ())
            { Wire.id = gen_int (); body = gen_req () })
    in
    let stream = String.concat "" frames in
    let d = Wire.Dechunk.create () in
    let out = ref [] in
    let pos = ref 0 in
    let len = String.length stream in
    while !pos < len do
      let n = min (1 + rint 40) (len - !pos) in
      Wire.Dechunk.feed d (Bytes.unsafe_of_string stream) !pos n;
      pos := !pos + n;
      let rec drain () =
        match Wire.Dechunk.next d with
        | `Payload p ->
            out := p :: !out;
            drain ()
        | `Await -> ()
        | `Oversized _ -> Alcotest.fail "bogus oversized mid-stream"
      in
      drain ()
    done;
    let got = List.rev !out in
    Alcotest.(check int) "frame count" (List.length frames) (List.length got);
    List.iter2
      (fun frame p ->
        if not (String.equal (payload_of frame) p) then
          Alcotest.fail "fragmented payload differs from the original")
      frames got;
    Alcotest.(check int) "no leftover" 0 (Wire.Dechunk.buffered d)
  done

let () =
  Alcotest.run "wire_fuzz"
    [ ( "fuzz",
        [ Alcotest.test_case "request round-trips" `Quick t_roundtrip_requests;
          Alcotest.test_case "response round-trips" `Quick
            t_roundtrip_responses;
          Alcotest.test_case "mutation classification" `Quick
            t_mutation_classification;
          Alcotest.test_case "oversized declarations" `Quick
            t_oversized_declaration;
          Alcotest.test_case "truncation never yields" `Quick
            t_truncation_never_yields;
          Alcotest.test_case "split at every offset" `Quick
            t_split_every_offset;
          Alcotest.test_case "random fragmentation" `Quick
            t_random_fragmentation ] ) ]
