(* Golden-file regression for the layout back end: the CIF files
   committed under bench_out/ (Figure 9's five counters, Figure 12's
   shape alternatives) must be reproduced byte-for-byte by a fresh
   server. Layout generation is deterministic — the CIF text depends
   only on the netlist, the strip count and the port positions — so
   any diff means the generation pipeline changed observable output.

   When such a change is intentional, regenerate with
       ICDB_BLESS=1 dune exec test/test_golden.exe
   (or point ICDB_GOLDEN_DIR at the bench_out directory to bless or
   compare against a different tree). *)

open Icdb
open Icdb_layout

let check = Alcotest.check

(* The goldens live in <repo>/bench_out; tests run under _build, so
   walk up to the repository root (the directory holding .git). *)
let golden_dir =
  lazy
    (match Sys.getenv_opt "ICDB_GOLDEN_DIR" with
     | Some d -> d
     | None ->
         let rec up dir =
           if Sys.file_exists (Filename.concat dir ".git") then
             Filename.concat dir "bench_out"
           else
             let parent = Filename.dirname dir in
             if parent = dir then
               Alcotest.fail
                 "repository root not found; set ICDB_GOLDEN_DIR"
             else up parent
         in
         up (Sys.getcwd ()))

let bless = Sys.getenv_opt "ICDB_BLESS" = Some "1"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let check_golden name cif =
  let path = Filename.concat (Lazy.force golden_dir) name in
  if bless then (
    Out_channel.with_open_bin path (fun oc -> output_string oc cif);
    Printf.printf "blessed %s (%d bytes)\n" path (String.length cif))
  else if not (Sys.file_exists path) then
    Alcotest.fail (Printf.sprintf "missing golden %s (run with ICDB_BLESS=1)" path)
  else
    check Alcotest.string (name ^ " matches byte-for-byte") (read_file path) cif

let server = lazy (Server.create ~verify:false ())

let counter ?(typ = 2) ?(load = 0) ?(enable = 0) ?(ud = 1) () =
  Server.request_component (Lazy.force server)
    (Spec.make
       (Spec.From_component
          { component = "counter";
            attributes =
              [ ("size", 5); ("type", typ); ("load", load); ("enable", enable);
                ("up_or_down", ud) ];
            functions = [] }))

(* Figure 9: the five counter implementations at their best-area shape. *)
let test_fig9 () =
  List.iter
    (fun (tag, inst) ->
      let _, cif, _ =
        Server.request_layout (Lazy.force server) inst.Instance.id ()
      in
      check_golden (Printf.sprintf "fig9_%s.cif" tag) cif)
    [ ("ripple", counter ~typ:1 ());
      ("sync_up", counter ());
      ("sync_up_enable", counter ~enable:1 ());
      ("sync_updown", counter ~ud:3 ());
      ("sync_updown_load", counter ~ud:3 ~load:1 ~enable:1 ()) ]

(* Figure 12: every shape alternative of the up/down+load counter. *)
let test_fig12 () =
  let inst = counter ~ud:3 ~load:1 ~enable:1 () in
  check Alcotest.bool "has shape alternatives" true
    (List.length inst.Instance.shape > 1);
  List.iter
    (fun (a : Shape.alternative) ->
      let _, cif, _ =
        Server.request_layout (Lazy.force server) inst.Instance.id
          ~alternative:a.Shape.alt_index ()
      in
      check_golden (Printf.sprintf "fig12_strips%d.cif" a.Shape.alt_strips) cif)
    inst.Instance.shape

let () =
  Alcotest.run "golden"
    [ ("cif",
       [ Alcotest.test_case "fig9 counters" `Quick test_fig9;
         Alcotest.test_case "fig12 shapes" `Quick test_fig12 ]) ]
