(* Crash-safety tests: write-ahead journaling, kill-and-recover at every
   fault-injection site, App B §7 transaction rollback on reopen, and
   graceful degradation in the generation pipeline. *)

open Icdb
open Icdb_reldb

let check = Alcotest.check

let counter_spec ?constraints ?target ?(size = 5) () =
  Spec.make ?constraints ?target
    (Spec.From_component
       { component = "counter";
         attributes = [ ("size", size) ];
         functions = [ Icdb_genus.Func.INC ] })

let with_faults f = Fun.protect ~finally:Faultinject.reset f

let instance_rows server =
  Table.cardinality (Db.table (Server.db server) "instances")

let vhdl_exists server id =
  Sys.file_exists (Filename.concat (Server.workspace server) (id ^ ".vhdl"))

let no_tmp_litter server =
  Array.for_all
    (fun f -> not (Filename.check_suffix f ".tmp"))
    (Sys.readdir (Server.workspace server))

(* ------------------------------------------------------------------ *)
(* Journal format                                                      *)
(* ------------------------------------------------------------------ *)

let test_journal_roundtrip () =
  let path = Filename.temp_file "icdb_j" ".journal" in
  let entries =
    [ Journal.Create ("t", [ ("a", Value.Tstr); ("n", Value.Tint) ]);
      Journal.Insert ("t", [ Value.Str "tab\there\nand newline"; Value.Int 3 ]);
      Journal.Tx_begin "design";
      Journal.Delete ("t", [ Value.Str "tab\there\nand newline"; Value.Int 3 ]);
      Journal.Tx_commit "design";
      Journal.Drop "t" ]
  in
  let j = Journal.open_append path in
  List.iter (Journal.append j) entries;
  Journal.close j;
  let got, torn = Journal.replay path in
  check Alcotest.bool "not torn" false torn;
  check Alcotest.bool "entries survive encode/decode" true (got = entries);
  Sys.remove path

let test_journal_torn_tail () =
  let path = Filename.temp_file "icdb_j" ".journal" in
  let j = Journal.open_append path in
  Journal.append j (Journal.Tx_begin "a");
  Journal.append j (Journal.Tx_commit "a");
  Journal.close j;
  (* a crash mid-write leaves a partial last line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "deadbeef\tI\tt";
  close_out oc;
  let got, torn = Journal.replay path in
  check Alcotest.bool "torn tail detected" true torn;
  check Alcotest.int "valid prefix kept" 2 (List.length got);
  Sys.remove path

let test_journal_checksum () =
  let path = Filename.temp_file "icdb_j" ".journal" in
  let j = Journal.open_append path in
  Journal.append j (Journal.Tx_begin "a");
  Journal.append j (Journal.Tx_begin "b");
  Journal.append j (Journal.Tx_begin "c");
  Journal.close j;
  (* flip bytes in the middle line: its checksum no longer matches *)
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
  in
  let tampered =
    List.mapi
      (fun i l ->
        if i = 1 then String.map (fun c -> if c = 'b' then 'x' else c) l
        else l)
      lines
  in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (String.concat "\n" tampered));
  let got, torn = Journal.replay path in
  check Alcotest.bool "corruption detected" true torn;
  check Alcotest.bool "only the prefix survives" true
    (got = [ Journal.Tx_begin "a" ])

(* The record-sequence cursor: monotonic across truncations, persisted
   in the sidecar, and rebuilt on reopen as base + records on disk. *)
let test_journal_cursor () =
  let path = Filename.temp_file "icdb_j" ".journal" in
  let j = Journal.open_append path in
  check Alcotest.int "fresh base" 0 (Journal.base_seq j);
  check Alcotest.int "fresh next" 0 (Journal.next_seq j);
  Journal.append j (Journal.Tx_begin "a");
  Journal.append j (Journal.Tx_commit "a");
  check Alcotest.int "next counts appends" 2 (Journal.next_seq j);
  (* a checkpoint truncation absorbs the records but never rewinds the
     sequence space *)
  Journal.reset j;
  check Alcotest.int "base advances to next" 2 (Journal.base_seq j);
  check Alcotest.int "next survives reset" 2 (Journal.next_seq j);
  Journal.append j (Journal.Tx_begin "b");
  check Alcotest.int "appends keep counting" 3 (Journal.next_seq j);
  Journal.close j;
  let j2 = Journal.open_append path in
  check Alcotest.int "base survives close/reopen" 2 (Journal.base_seq j2);
  check Alcotest.int "next = base + records on disk" 3 (Journal.next_seq j2);
  Journal.close j2;
  (* seeding a follower journal pins both ends of the window *)
  let ws = Filename.temp_file "icdb_jb" "" in
  Sys.remove ws;
  Unix.mkdir ws 0o755;
  let jpath = Filename.concat ws "icdb.journal" in
  Journal.install_base jpath 57;
  let jb = Journal.open_append jpath in
  check Alcotest.int "installed base" 57 (Journal.base_seq jb);
  check Alcotest.int "installed next" 57 (Journal.next_seq jb);
  Journal.close jb;
  Sys.remove path;
  Sys.remove (path ^ ".seq")

let test_journal_stream_from () =
  let path = Filename.temp_file "icdb_j" ".journal" in
  let j = Journal.open_append path in
  List.iter
    (fun n -> Journal.append j (Journal.Tx_begin n))
    [ "a"; "b"; "c"; "d" ];
  (* a window in the middle, bounded by max_records *)
  let s = Journal.stream_from j ~seq:1 ~max_records:2 () in
  check Alcotest.int "first requested seq" 1 s.Journal.st_first;
  check Alcotest.bool "exact middle slice" true
    (s.Journal.st_entries = [ Journal.Tx_begin "b"; Journal.Tx_begin "c" ]);
  check Alcotest.bool "clean read" false s.Journal.st_torn;
  (* seq = next is a valid empty read (a caught-up follower) *)
  let s = Journal.stream_from j ~seq:4 () in
  check Alcotest.bool "caught up means empty" true (s.Journal.st_entries = []);
  (* outside the window is the caller's bug *)
  (try
     ignore (Journal.stream_from j ~seq:5 ());
     Alcotest.fail "expected Journal_error past next"
   with Journal.Journal_error _ -> ());
  Journal.reset j;
  (try
     ignore (Journal.stream_from j ~seq:0 ());
     Alcotest.fail "expected Journal_error below base"
   with Journal.Journal_error _ -> ());
  (* a torn final record stops the stream at the valid prefix *)
  Journal.append j (Journal.Tx_begin "e");
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "deadbeef\tI\tt";
  close_out oc;
  let s = Journal.stream_from j ~seq:4 () in
  check Alcotest.bool "valid prefix served" true
    (s.Journal.st_entries = [ Journal.Tx_begin "e" ]);
  check Alcotest.bool "torn tail flagged" true s.Journal.st_torn;
  Journal.close j;
  Sys.remove path;
  Sys.remove (path ^ ".seq")

let test_faultinject_spec () =
  with_faults @@ fun () ->
  Faultinject.arm_from_spec "techmap:crash:2;sizing:transient:1";
  (try
     Faultinject.hit Faultinject.Techmap;
     (* second techmap hit crashes *)
     (try
        Faultinject.hit Faultinject.Techmap;
        Alcotest.fail "expected crash"
      with Faultinject.Crash Faultinject.Techmap -> ());
     (try
        Faultinject.hit Faultinject.Sizing;
        Alcotest.fail "expected transient fault"
      with Fault.Fault (Fault.Transient, _) -> ())
   with Faultinject.Crash _ -> Alcotest.fail "crashed too early");
  (try
     Faultinject.arm_from_spec "nonsense";
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* SQL quoting (injection hardening)                                   *)
(* ------------------------------------------------------------------ *)

let test_sql_quote () =
  let db = Db.create () in
  ignore (Db.create_table db "t" [ ("name", Value.Tstr) ]);
  Db.insert db "t" [ Value.Str "o'brien" ];
  Db.insert db "t" [ Value.Str "plain" ];
  let rows q =
    match Sql.exec db q with
    | Sql.Relation rel -> List.length rel.Query.rrows
    | Sql.Affected _ -> Alcotest.fail "expected a relation"
  in
  check Alcotest.int "quoted literal matches" 1
    (rows ("SELECT name FROM t WHERE name = " ^ Sql.quote_string "o'brien"));
  (* a classic injection payload stays a plain string *)
  check Alcotest.int "injection payload finds nothing" 0
    (rows
       ("SELECT name FROM t WHERE name = "
       ^ Sql.quote_string "x' OR 'a' = 'a"))

(* ------------------------------------------------------------------ *)
(* Workspace hygiene                                                   *)
(* ------------------------------------------------------------------ *)

let test_fresh_workspaces_distinct () =
  let a = Server.create ~verify:false () in
  let b = Server.create ~verify:false () in
  check Alcotest.bool "distinct workspaces" true
    (Server.workspace a <> Server.workspace b);
  check Alcotest.bool "both exist" true
    (Sys.file_exists (Server.workspace a)
    && Sys.file_exists (Server.workspace b))

let test_delete_instance_files () =
  let server = Server.create ~verify:false () in
  let inst =
    Server.request_component server
      (counter_spec ~target:Spec.Layout ~size:4 ())
  in
  let id = inst.Instance.id in
  let ws = Server.workspace server in
  let cifs () =
    Sys.readdir ws |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".cif"
           && String.length f > String.length id
           && String.sub f 0 (String.length id) = id)
  in
  check Alcotest.bool "netlist file written" true (vhdl_exists server id);
  check Alcotest.bool "layout file written" true (cifs () <> []);
  Server.delete_instance server id;
  check Alcotest.bool "netlist file removed" false (vhdl_exists server id);
  check (Alcotest.list Alcotest.string) "layout files removed" [] (cifs ());
  check (Alcotest.list Alcotest.string) "no instances" []
    (Server.instance_ids server);
  check Alcotest.int "no rows" 0 (instance_rows server);
  (* deleting again (or a file already gone) is a no-op *)
  Server.delete_instance server id

(* ------------------------------------------------------------------ *)
(* Durable server: clean reopen                                        *)
(* ------------------------------------------------------------------ *)

let test_durable_reopen () =
  let server = Server.create ~verify:false ~durable:true () in
  let ws = Server.workspace server in
  let a = Server.request_component server (counter_spec ~size:4 ()) in
  let b = Server.request_component server (counter_spec ~size:6 ()) in
  let gates_a = Instance.gate_count a and area_a = Instance.best_area a in
  (* abandon [server] without any shutdown and rebuild from disk *)
  let server2, r = Server.reopen ~verify:false ~workspace:ws () in
  check (Alcotest.list Alcotest.string) "nothing dropped" []
    (List.map snd r.Server.rr_dropped);
  check Alcotest.bool "no torn tail" false r.Server.rr_torn_tail;
  check
    (Alcotest.list Alcotest.string)
    "both instances recovered"
    (List.sort String.compare [ a.Instance.id; b.Instance.id ])
    (Server.instance_ids server2);
  let a2 = Server.find_instance server2 a.Instance.id in
  check Alcotest.int "gate count survives" gates_a (Instance.gate_count a2);
  check (Alcotest.float 1e-3) "area survives" area_a (Instance.best_area a2);
  check Alcotest.bool "not marked degraded" false a2.Instance.degraded;
  (* the generation cache survives: the same spec is not regenerated *)
  let a3 = Server.request_component server2 (counter_spec ~size:4 ()) in
  check Alcotest.string "cache hit after reopen" a.Instance.id a3.Instance.id;
  (* and fresh ids do not collide with recovered ones *)
  let c = Server.request_component server2 (counter_spec ~size:7 ()) in
  check Alcotest.bool "fresh id" true
    (not (List.mem c.Instance.id [ a.Instance.id; b.Instance.id ]));
  (* re-creating over a journaled workspace is refused *)
  try
    ignore (Server.create ~workspace:ws ~durable:true ());
    Alcotest.fail "expected Icdb_error"
  with Server.Icdb_error _ -> ()

(* A crash mid-append leaves a partial final journal record: reopen
   must cut it, report it, and leave a journal that appends cleanly. *)
let test_reopen_torn_tail () =
  let server = Server.create ~verify:false ~durable:true () in
  let ws = Server.workspace server in
  let a = Server.request_component server (counter_spec ~size:4 ()) in
  let oc =
    open_out_gen [ Open_append ] 0o644 (Filename.concat ws "icdb.journal")
  in
  output_string oc "deadbeef\tI\tinstances\tpart";
  close_out oc;
  let server2, r = Server.reopen ~verify:false ~workspace:ws () in
  check Alcotest.bool "torn tail reported" true r.Server.rr_torn_tail;
  check
    (Alcotest.list Alcotest.string)
    "full records all survive" [ a.Instance.id ]
    (Server.instance_ids server2);
  (* the tail was truncated, not just skipped: new writes land after a
     valid prefix and a second reopen is clean *)
  let b = Server.request_component server2 (counter_spec ~size:6 ()) in
  let server3, r3 = Server.reopen ~verify:false ~workspace:ws () in
  check Alcotest.bool "clean after truncation" false r3.Server.rr_torn_tail;
  check
    (Alcotest.list Alcotest.string)
    "both instances recovered"
    (List.sort String.compare [ a.Instance.id; b.Instance.id ])
    (Server.instance_ids server3)

let test_checkpoint () =
  let server = Server.create ~verify:false ~durable:true () in
  let ws = Server.workspace server in
  let a = Server.request_component server (counter_spec ~size:4 ()) in
  Server.checkpoint server;
  let b = Server.request_component server (counter_spec ~size:6 ()) in
  let server2, r = Server.reopen ~verify:false ~workspace:ws () in
  check
    (Alcotest.list Alcotest.string)
    "snapshot + journal give both instances"
    (List.sort String.compare [ a.Instance.id; b.Instance.id ])
    (Server.instance_ids server2);
  (* the snapshot absorbed everything before it: only b's mutations
     remain in the journal *)
  check Alcotest.bool "short journal after checkpoint" true
    (r.Server.rr_entries_replayed <= 2);
  (* a non-durable server cannot checkpoint *)
  let plain = Server.create ~verify:false () in
  try
    Server.checkpoint plain;
    Alcotest.fail "expected Icdb_error"
  with Server.Icdb_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Kill-and-recover at every injection site                            *)
(* ------------------------------------------------------------------ *)

(* The invariant checked after every crash: the instances table, the
   in-memory maps and the workspace files agree exactly — the crashed
   request either fully exists or never happened — and no half-written
   temp file is left behind. *)
let crash_and_recover site () =
  with_faults @@ fun () ->
  let server = Server.create ~verify:false ~durable:true () in
  let ws = Server.workspace server in
  let before = Server.request_component server (counter_spec ~size:4 ()) in
  Faultinject.arm site (Faultinject.Crash_on 1);
  (try
     ignore (Server.request_component server (counter_spec ~size:6 ()));
     Alcotest.fail "expected the injected crash"
   with Faultinject.Crash s ->
     check Alcotest.string "crashed at the armed site"
       (Faultinject.site_to_string site)
       (Faultinject.site_to_string s));
  Faultinject.reset ();
  let server2, _ = Server.reopen ~verify:false ~workspace:ws () in
  check
    (Alcotest.list Alcotest.string)
    "only the pre-crash instance survives" [ before.Instance.id ]
    (Server.instance_ids server2);
  check Alcotest.int "one database row" 1 (instance_rows server2);
  check Alcotest.bool "its netlist file exists" true
    (vhdl_exists server2 before.Instance.id);
  check Alcotest.bool "no temp litter" true (no_tmp_litter server2);
  (* the server keeps working after recovery *)
  let again = Server.request_component server2 (counter_spec ~size:6 ()) in
  check Alcotest.bool "post-recovery generation works" true
    (Instance.gate_count again > 0)

let test_crash_file_write () = crash_and_recover Faultinject.File_write ()
let test_crash_journal_append () =
  crash_and_recover Faultinject.Journal_append ()
let test_crash_expand () = crash_and_recover Faultinject.Expand ()
let test_crash_techmap () = crash_and_recover Faultinject.Techmap ()
let test_crash_sizing () = crash_and_recover Faultinject.Sizing ()

let test_tx_rollback_on_reopen () =
  let server = Server.create ~verify:false ~durable:true () in
  let ws = Server.workspace server in
  let a = Server.request_component server (counter_spec ~size:4 ()) in
  Server.start_design server "chip";
  Server.start_transaction server "chip";
  let b = Server.request_component server (counter_spec ~size:6 ()) in
  (* crash with the App B §7 transaction still open: everything inside
     it must be rolled back by recovery *)
  let server2, r = Server.reopen ~verify:false ~workspace:ws () in
  check Alcotest.bool "rollback reported" true r.Server.rr_rolled_back_tx;
  check
    (Alcotest.list Alcotest.string)
    "transaction instance rolled back" [ a.Instance.id ]
    (Server.instance_ids server2);
  check Alcotest.bool "its file was swept" false
    (vhdl_exists server2 b.Instance.id);
  (* a committed transaction is not rolled back *)
  let server3 = Server.create ~verify:false ~durable:true () in
  Server.start_design server3 "chip";
  Server.start_transaction server3 "chip";
  let c = Server.request_component server3 (counter_spec ~size:4 ()) in
  Server.put_in_component_list server3 "chip" c.Instance.id;
  Server.end_transaction server3 "chip";
  let server4, r4 =
    Server.reopen ~verify:false ~workspace:(Server.workspace server3) ()
  in
  check Alcotest.bool "no rollback after commit" false
    r4.Server.rr_rolled_back_tx;
  check
    (Alcotest.list Alcotest.string)
    "kept instance survives" [ c.Instance.id ]
    (Server.instance_ids server4)

let test_corrupt_artifact_dropped () =
  let server = Server.create ~verify:false ~durable:true () in
  let ws = Server.workspace server in
  let a = Server.request_component server (counter_spec ~size:4 ()) in
  let b = Server.request_component server (counter_spec ~size:6 ()) in
  (* silently corrupt b's netlist file behind the server's back *)
  Out_channel.with_open_text
    (Filename.concat ws (b.Instance.id ^ ".vhdl"))
    (fun oc -> output_string oc "-- damaged\n");
  let server2, r = Server.reopen ~verify:false ~workspace:ws () in
  check
    (Alcotest.list Alcotest.string)
    "damaged instance dropped, healthy one served" [ a.Instance.id ]
    (Server.instance_ids server2);
  check Alcotest.bool "the drop is reported" true (r.Server.rr_dropped <> [])

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                *)
(* ------------------------------------------------------------------ *)

let test_generator_fallback () =
  with_faults @@ fun () ->
  let server = Server.create ~verify:false () in
  (* the preferred generator fails hard once; the fallback serves *)
  Faultinject.arm Faultinject.Techmap (Faultinject.Fail (1, Fault.Corrupt));
  let inst = Server.request_component server (counter_spec ~size:4 ()) in
  check Alcotest.bool "served degraded" true inst.Instance.degraded;
  check Alcotest.bool "both generators ran" true
    (Faultinject.hits Faultinject.Techmap >= 2);
  check Alcotest.bool "netlist still produced" true
    (Instance.gate_count inst > 0);
  (* degradation is visible through CQL *)
  let results =
    Icdb_cql.Exec.run server
      ~args:[ Icdb_cql.Exec.Astr inst.Instance.id ]
      "command:instance_query;\ngenerated_component:%s;\ndegraded:?s"
  in
  check Alcotest.string "degraded through CQL" "yes"
    (Icdb_cql.Exec.get_string results "degraded");
  (* and it is persisted in the instances table *)
  let tbl = Db.table (Server.db server) "instances" in
  let row =
    List.find
      (fun r -> Table.get r tbl "id" = Value.Str inst.Instance.id)
      (Table.rows tbl)
  in
  check Alcotest.bool "degraded column set" true
    (Table.get row tbl "degraded" = Value.Bool true)

let test_sizing_degrades_to_unsized () =
  with_faults @@ fun () ->
  let server = Server.create ~verify:false () in
  Faultinject.arm Faultinject.Sizing (Faultinject.Fail (1, Fault.Resource));
  let inst = Server.request_component server (counter_spec ~size:4 ()) in
  check Alcotest.bool "served unsized but alive" true inst.Instance.degraded;
  check Alcotest.bool "netlist still produced" true
    (Instance.gate_count inst > 0)

let test_transient_retry () =
  with_faults @@ fun () ->
  let server = Server.create ~verify:false () in
  (* two transient write failures: the bounded retry absorbs them *)
  Faultinject.arm Faultinject.File_write (Faultinject.Fail (2, Fault.Transient));
  let inst = Server.request_component server (counter_spec ~size:4 ()) in
  check Alcotest.bool "not degraded" false inst.Instance.degraded;
  check Alcotest.int "three attempts" 3 (Faultinject.hits Faultinject.File_write);
  check Alcotest.bool "file landed" true (vhdl_exists server inst.Instance.id)

let test_resource_fault_surfaces () =
  with_faults @@ fun () ->
  let server = Server.create ~verify:false () in
  (* a persistent resource failure exhausts the retries and surfaces as
     a classified Icdb_error — not a crash, not a hang *)
  Faultinject.arm Faultinject.File_write (Faultinject.Fail (99, Fault.Resource));
  try
    ignore (Server.request_component server (counter_spec ~size:4 ()));
    Alcotest.fail "expected Icdb_error"
  with Server.Icdb_error msg ->
    check Alcotest.bool "kind in message" true
      (String.length msg > 0
      && String.sub msg 0 8 = "resource")

let () =
  Alcotest.run "recovery"
    [ ( "journal",
        [ Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "checksum" `Quick test_journal_checksum;
          Alcotest.test_case "cursor" `Quick test_journal_cursor;
          Alcotest.test_case "stream_from" `Quick test_journal_stream_from;
          Alcotest.test_case "fault spec" `Quick test_faultinject_spec ] );
      ( "hardening",
        [ Alcotest.test_case "sql quoting" `Quick test_sql_quote;
          Alcotest.test_case "distinct workspaces" `Quick
            test_fresh_workspaces_distinct;
          Alcotest.test_case "delete cleans files" `Quick
            test_delete_instance_files ] );
      ( "reopen",
        [ Alcotest.test_case "durable reopen" `Quick test_durable_reopen;
          Alcotest.test_case "torn tail truncated" `Quick
            test_reopen_torn_tail;
          Alcotest.test_case "checkpoint" `Quick test_checkpoint;
          Alcotest.test_case "corrupt artifact dropped" `Quick
            test_corrupt_artifact_dropped;
          Alcotest.test_case "tx rollback" `Quick test_tx_rollback_on_reopen ] );
      ( "crash sites",
        [ Alcotest.test_case "file write" `Quick test_crash_file_write;
          Alcotest.test_case "journal append" `Quick test_crash_journal_append;
          Alcotest.test_case "expand" `Quick test_crash_expand;
          Alcotest.test_case "techmap" `Quick test_crash_techmap;
          Alcotest.test_case "sizing" `Quick test_crash_sizing ] );
      ( "degradation",
        [ Alcotest.test_case "generator fallback" `Quick
            test_generator_fallback;
          Alcotest.test_case "unsized fallback" `Quick
            test_sizing_degrades_to_unsized;
          Alcotest.test_case "transient retry" `Quick test_transient_retry;
          Alcotest.test_case "resource surfaces" `Quick
            test_resource_fault_surfaces ] ) ]
