(* Prometheus exposition tests: name sanitization, label escaping,
   monotone cumulative buckets, _sum/_count consistency, scrapes that
   stay parseable under concurrent instrument writers, and the tiny
   HTTP listener that serves them. *)

open Icdb_obs

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* A miniature scrape parser                                           *)
(* ------------------------------------------------------------------ *)

(* Each non-comment line of the exposition format is
   [name{labels} value] or [name value]; the parser rejects anything
   else, which is exactly the property the tests want. *)
type sample = { s_name : string; s_le : string option; s_value : float }

let parse_line line =
  let name_end =
    match (String.index_opt line '{', String.index_opt line ' ') with
    | Some b, Some sp when b < sp -> b
    | _, Some sp -> sp
    | _ -> Alcotest.failf "unparseable exposition line: %S" line
  in
  let name = String.sub line 0 name_end in
  let le =
    match String.index_opt line '{' with
    | None -> None
    | Some b ->
        let close =
          match String.index_from_opt line b '}' with
          | Some c -> c
          | None -> Alcotest.failf "unclosed label set: %S" line
        in
        let labels = String.sub line (b + 1) (close - b - 1) in
        let prefix = "le=\"" in
        if String.length labels > String.length prefix
           && String.sub labels 0 (String.length prefix) = prefix
        then Some (String.sub labels 4 (String.length labels - 5))
        else None
  in
  let value_str =
    match String.rindex_opt line ' ' with
    | Some sp -> String.sub line (sp + 1) (String.length line - sp - 1)
    | None -> Alcotest.failf "no value on line: %S" line
  in
  let value =
    if value_str = "+Inf" then infinity
    else
      match float_of_string_opt value_str with
      | Some v -> v
      | None -> Alcotest.failf "unparseable value %S on line %S" value_str line
  in
  { s_name = name; s_le = le; s_value = value }

let parse_scrape text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "" && not (String.length l >= 1 && l.[0] = '#'))
  |> List.map parse_line

let legal_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_' || c = ':')
       name
  && not (name.[0] >= '0' && name.[0] <= '9')

(* ------------------------------------------------------------------ *)
(* Format properties                                                   *)
(* ------------------------------------------------------------------ *)

let test_sanitize () =
  check Alcotest.string "dots become underscores" "net_requests"
    (Expo.sanitize_metric_name "net.requests");
  check Alcotest.string "dashes become underscores" "slow_query_log"
    (Expo.sanitize_metric_name "slow-query-log");
  check Alcotest.string "leading digit is illegal" "_lives"
    (Expo.sanitize_metric_name "9lives");
  check Alcotest.string "empty name still renders" "_"
    (Expo.sanitize_metric_name "");
  check Alcotest.string "legal names pass through" "net_requests:rate"
    (Expo.sanitize_metric_name "net_requests:rate");
  check Alcotest.string "digits after the first survive" "phase2_total"
    (Expo.sanitize_metric_name "phase2.total")

let test_label_escaping () =
  check Alcotest.string "backslash" "a\\\\b" (Expo.escape_label_value "a\\b");
  check Alcotest.string "double quote" "say \\\"hi\\\""
    (Expo.escape_label_value "say \"hi\"");
  check Alcotest.string "newline" "one\\ntwo"
    (Expo.escape_label_value "one\ntwo");
  check Alcotest.string "plain text untouched" "net.cql"
    (Expo.escape_label_value "net.cql")

let test_counter_rendering () =
  let r = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter ~registry:r "net.requests");
  Metrics.incr (Metrics.counter ~registry:r "cache.miss");
  let samples = parse_scrape (Expo.prometheus ~registry:r ()) in
  (* counters gain the _total suffix after sanitization *)
  let v name =
    match List.find_opt (fun s -> s.s_name = name) samples with
    | Some s -> s.s_value
    | None -> Alcotest.failf "no sample named %s in scrape" name
  in
  check (Alcotest.float 0.0) "net.requests -> net_requests_total" 3.0
    (v "net_requests_total");
  check (Alcotest.float 0.0) "cache.miss -> cache_miss_total" 1.0
    (v "cache_miss_total");
  List.iter
    (fun s ->
      check Alcotest.bool ("legal name: " ^ s.s_name) true
        (legal_name s.s_name))
    samples

let test_histogram_monotone_and_consistent () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "net.cql.request_component" in
  (* observations spanning decades, plus values below the bucket floor
     and repeats, so both sparse and multiply-occupied buckets render *)
  let obs = [ 1e-10; 3e-7; 3e-7; 4.2e-5; 0.0013; 0.0013; 0.0013; 0.25; 7.5 ] in
  List.iter (Metrics.observe h) obs;
  let samples = parse_scrape (Expo.prometheus ~registry:r ()) in
  let base = "net_cql_request_component" in
  let buckets =
    List.filter (fun s -> s.s_name = base ^ "_bucket") samples
  in
  check Alcotest.bool "several bucket lines rendered" true
    (List.length buckets >= 4);
  (* [le] upper bounds strictly increase and counts are cumulative *)
  let rec walk prev_le prev_cum = function
    | [] -> Alcotest.fail "bucket series should end at +Inf"
    | [ last ] ->
        check Alcotest.bool "series ends at +Inf" true
          (last.s_le = Some "+Inf");
        check (Alcotest.float 0.0) "+Inf bucket equals _count"
          (float_of_int (List.length obs))
          last.s_value
    | s :: rest ->
        let le =
          match s.s_le with
          | Some le -> float_of_string le
          | None -> Alcotest.failf "bucket line without le: %s" s.s_name
        in
        check Alcotest.bool "le strictly increases" true (le > prev_le);
        check Alcotest.bool "counts are cumulative" true
          (s.s_value >= prev_cum);
        walk le s.s_value rest
  in
  walk neg_infinity 0.0 buckets;
  let v name =
    match List.find_opt (fun s -> s.s_name = name) samples with
    | Some s -> s.s_value
    | None -> Alcotest.failf "no sample named %s" name
  in
  check (Alcotest.float 0.0) "_count matches observations"
    (float_of_int (List.length obs))
    (v (base ^ "_count"));
  check (Alcotest.float 1e-9) "_sum matches the observed total"
    (List.fold_left ( +. ) 0.0 obs)
    (v (base ^ "_sum"));
  (* every observation landed in a bucket whose bound covers it *)
  List.iter
    (fun x ->
      check Alcotest.bool "an enclosing bucket exists" true
        (List.exists
           (fun s ->
             match s.s_le with
             | Some "+Inf" -> true
             | Some le -> float_of_string le >= x
             | None -> false)
           buckets))
    obs

let test_float_rendering () =
  check Alcotest.string "integers render bare" "42" (Expo.float_str 42.0);
  check Alcotest.string "negative integers too" "-3" (Expo.float_str (-3.0));
  List.iter
    (fun v ->
      let s = Expo.float_str v in
      check Alcotest.bool
        (Printf.sprintf "%s survives a round-trip" s)
        true
        (float_of_string s = v))
    [ 0.1; 1.5e-9; Float.max_float; epsilon_float; 1.0 /. 3.0; 1e15 +. 1.0 ]

(* scrapes taken while 8 writer threads hammer the instruments must
   still parse: the registry structure is locked, instrument updates
   are monotone, so a mid-flight scrape is stale at worst, never torn *)
let test_concurrent_writers_scrape_parses () =
  let r = Metrics.create () in
  let stop = Atomic.make false in
  let writer k =
    let c = Metrics.counter ~registry:r (Printf.sprintf "writer.%d.ops" k) in
    let h = Metrics.histogram ~registry:r "shared.latency" in
    let g = Metrics.gauge ~registry:r "shared.depth" in
    let i = ref 0 in
    (* body-first loop: the final scrape asserts every writer counted,
       so each thread must increment at least once even if [stop] flips
       before it is first scheduled *)
    let continue = ref true in
    while !continue do
      incr i;
      Metrics.incr c;
      Metrics.observe h (1e-6 *. float_of_int (1 + (!i mod 1000)));
      Metrics.set g (float_of_int (!i mod 32));
      if !i mod 64 = 0 then Thread.yield ();
      continue := not (Atomic.get stop)
    done
  in
  let threads = List.init 8 (fun k -> Thread.create writer k) in
  let scrapes = ref [] in
  for _ = 1 to 25 do
    scrapes := Expo.prometheus ~registry:r () :: !scrapes;
    Thread.yield ()
  done;
  Atomic.set stop true;
  List.iter Thread.join threads;
  List.iter
    (fun scrape ->
      let samples = parse_scrape scrape in
      List.iter
        (fun s ->
          check Alcotest.bool ("legal name: " ^ s.s_name) true
            (legal_name s.s_name);
          check Alcotest.bool "finite or +Inf value" true
            (Float.is_finite s.s_value || s.s_value = infinity))
        samples)
    !scrapes;
  (* the final quiescent scrape accounts for every writer *)
  let final = parse_scrape (Expo.prometheus ~registry:r ()) in
  for k = 0 to 7 do
    let name = Printf.sprintf "writer_%d_ops_total" k in
    match List.find_opt (fun s -> s.s_name = name) final with
    | Some s -> check Alcotest.bool (name ^ " counted") true (s.s_value > 0.0)
    | None -> Alcotest.failf "writer %d's counter missing from scrape" k
  done

(* ------------------------------------------------------------------ *)
(* HTTP listener                                                       *)
(* ------------------------------------------------------------------ *)

let with_http handler f =
  let http = Expo.http_start ~port:0 handler in
  Fun.protect
    ~finally:(fun () -> Expo.http_stop http)
    (fun () -> f (Expo.http_port http))

let test_http_serves () =
  let handler = function
    | "/ping" -> Some (Expo.text "pong\n")
    | "/boom" -> failwith "handler crash"
    | _ -> None
  in
  with_http handler @@ fun port ->
  let status, body = Expo.http_get ~port "/ping" in
  check Alcotest.int "200 on a served path" 200 status;
  check Alcotest.string "body delivered intact" "pong\n" body;
  (* query strings are stripped before dispatch, as scrapers expect *)
  let status, _ = Expo.http_get ~port "/ping?debug=1" in
  check Alcotest.int "query string stripped" 200 status;
  let status, _ = Expo.http_get ~port "/nope" in
  check Alcotest.int "404 on an unknown path" 404 status;
  (* a crashing handler answers 500; the listener survives to serve
     the next request *)
  let status, _ = Expo.http_get ~port "/boom" in
  check Alcotest.int "500 on handler crash" 500 status;
  let status, _ = Expo.http_get ~port "/ping" in
  check Alcotest.int "listener survives a crash" 200 status

let test_http_metrics_end_to_end () =
  let r = Metrics.create () in
  Metrics.incr ~by:7 (Metrics.counter ~registry:r "net.requests");
  let handler = function
    | "/metrics" -> Some (Expo.text (Expo.prometheus ~registry:r ()))
    | _ -> None
  in
  with_http handler @@ fun port ->
  let status, body = Expo.http_get ~port "/metrics" in
  check Alcotest.int "scrape status" 200 status;
  let samples = parse_scrape body in
  match List.find_opt (fun s -> s.s_name = "net_requests_total") samples with
  | Some s -> check (Alcotest.float 0.0) "counter over HTTP" 7.0 s.s_value
  | None -> Alcotest.fail "net_requests_total missing from HTTP scrape"

let () =
  Alcotest.run "expo"
    [ ( "format",
        [ Alcotest.test_case "name sanitization" `Quick test_sanitize;
          Alcotest.test_case "label escaping" `Quick test_label_escaping;
          Alcotest.test_case "counter rendering" `Quick test_counter_rendering;
          Alcotest.test_case "histogram buckets monotone and consistent"
            `Quick test_histogram_monotone_and_consistent;
          Alcotest.test_case "float rendering round-trips" `Quick
            test_float_rendering;
          Alcotest.test_case "concurrent writers, parseable scrapes" `Quick
            test_concurrent_writers_scrape_parses ] );
      ( "http",
        [ Alcotest.test_case "serves, 404s, survives crashes" `Quick
            test_http_serves;
          Alcotest.test_case "metrics end-to-end over HTTP" `Quick
            test_http_metrics_end_to_end ] ) ]
