(* Network layer tests: the wire codec round-trips every request and
   response shape; malformed, truncated, oversized and wrong-version
   frames classify as the protocol promises; and an in-process icdbd
   serves the full CQL command set to concurrent clients, survives
   garbage frames, enforces admission control, and loses no journaled
   writes across a graceful shutdown. *)

open Icdb
open Icdb_net

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Codec round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let strip_header s = String.sub s 4 (String.length s - 4)

let rt_req ?(id = 7) ?ctx body =
  let bytes = Wire.encode_request ?ctx { Wire.id; body } in
  match Wire.decode_request (strip_header bytes) with
  | Ok (f, c) -> (f, c)
  | Error e -> Alcotest.failf "decode_request: %s" (Wire.decode_error_to_string e)

let rt_resp ?(id = 7) body =
  let bytes = Wire.encode_response { Wire.id; body } in
  match Wire.decode_response (strip_header bytes) with
  | Ok f -> f
  | Error e -> Alcotest.failf "decode_response: %s" (Wire.decode_error_to_string e)

let test_request_roundtrip () =
  let reqs =
    [ Wire.Ping;
      Wire.Cql { text = "command:function_query; function:(INC); component:?s[]";
                 args = [] };
      Wire.Cql
        { text = "command:instance_query; instance:%s; delay:?s";
          args =
            [ Icdb_cql.Exec.Astr "counter_1"; Icdb_cql.Exec.Aint (-42);
              Icdb_cql.Exec.Afloat 1.5e-9;
              Icdb_cql.Exec.Astrs [ "a"; ""; "tab\there\nnewline" ] ] };
      Wire.Sql "SELECT name FROM components";
      Wire.Stats;
      Wire.Trace_fetch "cli42.7";
      Wire.Subscribe { cursor = 0 };
      Wire.Subscribe { cursor = 0x7edc_ba98_7654 };
      Wire.Subscribe { cursor = -1 };
      Wire.Shutdown ]
  in
  List.iter
    (fun body ->
      let f, c = rt_req body in
      check Alcotest.int "id" 7 f.Wire.id;
      check Alcotest.bool "body round-trips" true (f.Wire.body = body);
      check Alcotest.bool "default ctx" true (c = Wire.no_ctx))
    reqs;
  (* ids survive at full width and at zero *)
  let f, _ = rt_req ~id:0x1234_5678_9abc Wire.Ping in
  check Alcotest.int "wide id" 0x1234_5678_9abc f.Wire.id;
  let f, _ = rt_req ~id:0 Wire.Ping in
  check Alcotest.int "zero id" 0 f.Wire.id

let test_ctx_roundtrip () =
  (* every request kind carries its context in the same fixed slot *)
  let ctx = { Wire.trace_id = "cli42.7"; timeout_s = 2.5 } in
  List.iter
    (fun body ->
      let _, c = rt_req ~ctx body in
      check Alcotest.bool "ctx round-trips" true (c = ctx))
    [ Wire.Ping; Wire.Stats; Wire.Trace_fetch "x"; Wire.Shutdown;
      Wire.Sql "SELECT 1";
      Wire.Cql { text = "command:stats"; args = [] } ];
  (* partial contexts: only a trace id, only a deadline *)
  let _, c = rt_req ~ctx:{ Wire.trace_id = "t"; timeout_s = 0.0 } Wire.Ping in
  check Alcotest.bool "trace-only ctx" true
    (c.Wire.trace_id = "t" && c.Wire.timeout_s = 0.0);
  let _, c = rt_req ~ctx:{ Wire.trace_id = ""; timeout_s = 0.25 } Wire.Ping in
  check Alcotest.bool "deadline-only ctx" true
    (c.Wire.trace_id = "" && c.Wire.timeout_s = 0.25)

let all_error_codes =
  [ Wire.Parse_error; Wire.Exec_error; Wire.Sql_error; Wire.Protocol_error;
    Wire.Version_mismatch; Wire.Overloaded; Wire.Timeout; Wire.Shutting_down;
    Wire.Internal; Wire.Read_only ]

let test_response_roundtrip () =
  let resps =
    [ Wire.Pong;
      Wire.Results [];
      Wire.Results
        [ ("instance", Icdb_cql.Exec.Rstr "counter_1");
          ("gates", Icdb_cql.Exec.Rint 57);
          ("negative", Icdb_cql.Exec.Rint (-3));
          ("clock_width", Icdb_cql.Exec.Rfloat 29.0625);
          ("tiny", Icdb_cql.Exec.Rfloat 1.5e-9);
          ("component", Icdb_cql.Exec.Rstrs [ "counter"; "alu" ]);
          ("empty_list", Icdb_cql.Exec.Rstrs []);
          ("empty_str", Icdb_cql.Exec.Rstr "") ];
      Wire.Sql_result (Wire.Affected 42);
      Wire.Sql_result (Wire.Relation { cols = []; rows = [] });
      Wire.Sql_result
        (Wire.Relation
           { cols = [ "name"; "area" ];
             rows = [ [ "adder"; "35.5" ]; [ "counter"; "" ] ] });
      Wire.Stats_report
        { Wire.sp_text = "server cache: 1 hits";
          sp_counters = [ ("net.requests", 3); ("cache.miss", 1) ];
          sp_gauges = [ ("net.connections", 2.0) ];
          sp_hists =
            [ { Wire.hs_name = "net.cql.request_component"; hs_count = 4;
                hs_sum = 0.25; hs_min = 0.01; hs_max = 0.2; hs_p50 = 0.02;
                hs_p90 = 0.19; hs_p99 = 0.2 } ];
          sp_slow =
            [ { Wire.sl_cmd = "net.cql.request_component"; sl_trace = "cli1.1";
                sl_conn = 3; sl_seconds = 1.75; sl_cache = "miss";
                sl_phases = [ ("synth", 1.5); ("verify", 0.2) ];
                sl_plan = "" };
              { Wire.sl_cmd = "net.sql"; sl_trace = ""; sl_conn = 4;
                sl_seconds = 1.01; sl_cache = "-"; sl_phases = [];
                sl_plan = "indexed(instances.component)" } ] };
      Wire.Stats_report
        { Wire.sp_text = ""; sp_counters = []; sp_gauges = []; sp_hists = [];
          sp_slow = [] };
      Wire.Spans [];
      Wire.Spans
        [ { Wire.rs_id = 1; rs_parent = None; rs_name = "net.request";
            rs_tag = "cli1.1"; rs_start_ns = 12345; rs_dur_ns = 6789;
            rs_attrs = [ ("cmd", "request_component"); ("conn", "3") ] };
          { Wire.rs_id = 2; rs_parent = Some 1; rs_name = "gen.synthesize";
            rs_tag = "cli1.1"; rs_start_ns = 12400; rs_dur_ns = 500;
            rs_attrs = [] } ];
      Wire.Bye;
      (* v3 replication stream frames *)
      Wire.Journal_batch
        { jb_first = 0; jb_next = 0; jb_records = []; jb_files = [] };
      Wire.Journal_batch
        { jb_first = 41; jb_next = 44;
          jb_records = [ "a1b2c3d4\tI\tinstances\tx"; "00000000\tD\tt\ty";
                         "" ];
          jb_files =
            [ ("c1.vhdl", "entity c1 is\nend;\n"); ("empty.iif", "");
              ("bin", String.init 256 Char.chr) ] };
      Wire.Checkpoint_offer { co_cursor = 0; co_files = 0 };
      Wire.Checkpoint_offer { co_cursor = 0x7edc_ba98_7654; co_files = 12 };
      Wire.Checkpoint_chunk { cc_name = "icdb.snapshot"; cc_data = ""; cc_last = true };
      Wire.Checkpoint_chunk
        { cc_name = "c1.vhdl"; cc_data = String.init 256 Char.chr;
          cc_last = false };
      Wire.Repl_error "";
      Wire.Repl_error "cursor left the journal window" ]
    @ List.map
        (fun code -> Wire.Error { code; message = "why: \"quoted\"\n" })
        all_error_codes
  in
  List.iter
    (fun body ->
      let f = rt_resp body in
      check Alcotest.int "id" 7 f.Wire.id;
      check Alcotest.bool "body round-trips" true (f.Wire.body = body))
    resps

let test_float_bits_roundtrip () =
  (* floats cross the wire as IEEE-754 bits, so they come back exact *)
  List.iter
    (fun v ->
      match (rt_resp (Wire.Results [ ("x", Icdb_cql.Exec.Rfloat v) ])).Wire.body with
      | Wire.Results [ ("x", Icdb_cql.Exec.Rfloat v') ] ->
          check Alcotest.bool "bit-exact" true
            (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v'))
      | _ -> Alcotest.fail "shape changed in flight")
    [ 0.1; -0.0; Float.max_float; Float.min_float; epsilon_float; 1e300 ]

(* ------------------------------------------------------------------ *)
(* Decode-error classification                                         *)
(* ------------------------------------------------------------------ *)

let test_decode_malformed () =
  (* a too-short payload cannot even carry a header *)
  (match Wire.decode_request "\x01" with
   | Error (Wire.Malformed { id = None; _ }) -> ()
   | _ -> Alcotest.fail "short payload should be Malformed without an id");
  (* an unknown kind byte inside a well-formed header salvages the id *)
  let good = strip_header (Wire.encode_request { Wire.id = 99; body = Wire.Ping }) in
  let bad_kind = Bytes.of_string good in
  Bytes.set bad_kind 1 '\xee';
  (match Wire.decode_request (Bytes.to_string bad_kind) with
   | Error (Wire.Malformed { id = Some 99; _ }) -> ()
   | _ -> Alcotest.fail "unknown kind should be Malformed with salvaged id");
  (* a response kind byte on the request side is Malformed, not misparsed *)
  let resp = strip_header (Wire.encode_response { Wire.id = 5; body = Wire.Pong }) in
  (match Wire.decode_request resp with
   | Error (Wire.Malformed { id = Some 5; _ }) -> ()
   | _ -> Alcotest.fail "response kind on request side should be Malformed");
  (* a string length running past the payload end is caught *)
  let sql = strip_header (Wire.encode_request { Wire.id = 3; body = Wire.Sql "SELECT" }) in
  let truncated_body = String.sub sql 0 (String.length sql - 2) in
  match Wire.decode_request truncated_body with
  | Error (Wire.Malformed { id = Some 3; _ }) -> ()
  | _ -> Alcotest.fail "short string body should be Malformed"

let test_decode_bad_version () =
  let good = strip_header (Wire.encode_request { Wire.id = 21; body = Wire.Ping }) in
  let b = Bytes.of_string good in
  Bytes.set b 0 '\x09';
  match Wire.decode_request (Bytes.to_string b) with
  | Error (Wire.Bad_version { id = Some 21; got = 9 }) -> ()
  | _ -> Alcotest.fail "flipped version byte should be Bad_version with id"

let test_decode_v1_recoverable () =
  (* a pre-context (v1) frame must classify as Bad_version — with the
     id salvaged so the server can answer it — never as Malformed,
     which would misreport an old client as sending garbage *)
  let good = strip_header (Wire.encode_request { Wire.id = 11; body = Wire.Ping }) in
  let b = Bytes.of_string good in
  Bytes.set b 0 '\x01';
  match Wire.decode_request (Bytes.to_string b) with
  | Error (Wire.Bad_version { id = Some 11; got = 1 }) -> ()
  | Error e ->
      Alcotest.failf "v1 frame should be Bad_version, got %s"
        (Wire.decode_error_to_string e)
  | Ok _ -> Alcotest.fail "v1 frame should not decode as v2"

let test_version_stamped_per_kind () =
  (* a real v3 binary accepts only its own version byte, so every frame
     kind that existed in v3 and kept its v3 payload must still be
     stamped 3 by this encoder — otherwise a rolling upgrade breaks: an
     upgraded server's replies (and replication pushes) would classify
     as Bad_version on every not-yet-upgraded client and follower. A
     kind is stamped higher only when that version changed its payload:
     the v4-only Batch kinds carry 4, and Stats_report — whose slow
     entries grew a plan field in v5 — carries 5, so an old peer
     classifies the reshaped payload instead of misparsing it. *)
  let vbyte bytes = Char.code bytes.[4] (* u32 length, then version *) in
  let v3_reqs : Wire.req list =
    [ Wire.Ping;
      Wire.Cql { text = "command:stats"; args = [ Icdb_cql.Exec.Aint 1 ] };
      Wire.Sql "SELECT 1"; Wire.Stats; Wire.Trace_fetch "t"; Wire.Shutdown;
      Wire.Subscribe { cursor = 0 } ]
  in
  List.iter
    (fun body ->
      check Alcotest.int "pre-v4 request kinds stay stamped v3" 3
        (vbyte (Wire.encode_request { Wire.id = 1; body })))
    v3_reqs;
  let v3_resps : Wire.resp list =
    [ Wire.Pong; Wire.Results []; Wire.Sql_result (Wire.Affected 1);
      Wire.Sql_result (Wire.Relation { cols = [ "a" ]; rows = [ [ "1" ] ] });
      Wire.Spans []; Wire.Error { code = Wire.Timeout; message = "m" };
      Wire.Bye;
      Wire.Journal_batch
        { jb_first = 0; jb_next = 0; jb_records = []; jb_files = [] };
      Wire.Checkpoint_offer { co_cursor = 0; co_files = 0 };
      Wire.Checkpoint_chunk { cc_name = "f"; cc_data = "d"; cc_last = true };
      Wire.Repl_error "e" ]
  in
  List.iter
    (fun body ->
      check Alcotest.int "unchanged response kinds stay stamped v3" 3
        (vbyte (Wire.encode_response { Wire.id = 1; body })))
    v3_resps;
  check Alcotest.int "Batch carries the v4 stamp" 4
    (vbyte (Wire.encode_request { Wire.id = 1; body = Wire.Batch [] }));
  check Alcotest.int "Batch_reply carries the v4 stamp" 4
    (vbyte (Wire.encode_response { Wire.id = 1; body = Wire.Batch_reply [] }));
  check Alcotest.int "Stats_report carries the v5 stamp" 5
    (vbyte
       (Wire.encode_response
          { Wire.id = 1;
            body =
              Wire.Stats_report
                { Wire.sp_text = ""; sp_counters = []; sp_gauges = [];
                  sp_hists = []; sp_slow = [] } }))

let test_legacy_stats_report_decodes () =
  (* A v3/v4 peer's Stats_report has no plan field on slow entries. We
     fabricate one by encoding a v5 report whose single entry carries an
     empty plan — the plan's u32 length is the last 4 bytes of the
     payload — stripping those bytes and rewriting the version byte.
     The decoder must accept it and default the plan to "". *)
  let entry =
    { Wire.sl_cmd = "net.sql"; sl_trace = "t"; sl_conn = 9;
      sl_seconds = 1.5; sl_cache = "-"; sl_phases = [ ("exec", 1.4) ];
      sl_plan = "" }
  in
  let body =
    Wire.Stats_report
      { Wire.sp_text = "x"; sp_counters = [ ("c", 1) ]; sp_gauges = [];
        sp_hists = []; sp_slow = [ entry ] }
  in
  let bytes = Wire.encode_response { Wire.id = 3; body } in
  (* strip the length header, drop the trailing empty-plan length,
     restamp as v3, and hand the payload to the decoder directly *)
  let payload = String.sub bytes 4 (String.length bytes - 4) in
  let legacy = Bytes.of_string (String.sub payload 0 (String.length payload - 4)) in
  Bytes.set legacy 0 '\003';
  (match Wire.decode_response (Bytes.to_string legacy) with
  | Ok { Wire.id = 3; body = Wire.Stats_report p } -> (
      match p.Wire.sp_slow with
      | [ e ] ->
          check Alcotest.string "legacy entry decodes fields" "net.sql"
            e.Wire.sl_cmd;
          check Alcotest.string "plan defaults to empty" "" e.Wire.sl_plan
      | _ -> Alcotest.fail "slow entry list reshaped")
  | Ok _ -> Alcotest.fail "unexpected response shape"
  | Error e -> Alcotest.failf "legacy v3 stats report rejected: %s"
                 (Wire.decode_error_to_string e));
  (* and the same v5 payload decodes with the plan intact *)
  match Wire.decode_response payload with
  | Ok { Wire.body = Wire.Stats_report p; _ } ->
      check Alcotest.int "v5 decode keeps the entry" 1
        (List.length p.Wire.sp_slow)
  | _ -> Alcotest.fail "v5 stats report did not decode"

let test_read_framing_failures () =
  let with_pipe f =
    let r, w = Unix.pipe ~cloexec:true () in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close r with Unix.Unix_error _ -> ());
        try Unix.close w with Unix.Unix_error _ -> ())
      (fun () -> f r w)
  in
  (* clean EOF between frames *)
  with_pipe (fun r w ->
      Unix.close w;
      match Wire.read_request r with
      | Error Wire.Closed -> ()
      | _ -> Alcotest.fail "EOF between frames should be Closed");
  (* EOF inside a frame *)
  with_pipe (fun r w ->
      let frame = Wire.encode_request { Wire.id = 1; body = Wire.Stats } in
      let partial = String.sub frame 0 (String.length frame - 3) in
      ignore (Unix.write_substring w partial 0 (String.length partial));
      Unix.close w;
      match Wire.read_request r with
      | Error (Wire.Truncated _) -> ()
      | _ -> Alcotest.fail "EOF mid-frame should be Truncated");
  (* a length header beyond max_payload *)
  with_pipe (fun r w ->
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 (Int32.of_int (Wire.max_payload + 1));
      ignore (Unix.write w header 0 4);
      match Wire.read_request r with
      | Error (Wire.Oversized n) ->
          check Alcotest.int "declared length" (Wire.max_payload + 1) n
      | _ -> Alcotest.fail "huge declared length should be Oversized")

(* ------------------------------------------------------------------ *)
(* Service end-to-end                                                  *)
(* ------------------------------------------------------------------ *)

let quiet_events = lazy (Icdb_obs.Event.set_level Icdb_obs.Event.Error)

let with_service ?(config = Service.default_config) ?(durable = false) f =
  Lazy.force quiet_events;
  let server = Server.create ~verify:false ~durable () in
  let ws = Server.workspace server in
  let sync = Sync.wrap server in
  let svc = Service.start ~config:{ config with port = 0 } sync in
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () -> f svc (Service.port svc) ws)

let ok_exec client ?trace_id ?args text =
  match Client.exec client ?trace_id ?args text with
  | Ok results -> results
  | Error (code, msg) ->
      Alcotest.failf "%s failed: %s: %s" text (Wire.error_code_to_string code) msg

let get_str results name =
  match List.assoc_opt name results with
  | Some (Icdb_cql.Exec.Rstr s) -> s
  | _ -> Alcotest.failf "no string binding %s" name

(* the full CQL command set, §3.2 + Appendix B §7, over one connection *)
let test_service_full_cql_set () =
  with_service @@ fun _svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.ping c;
  ignore (ok_exec c "command:start_a_design; design:chip");
  ignore (ok_exec c "command:start_a_transaction; design:chip");
  let r =
    ok_exec c
      "command:request_component; component_name:counter; attribute:(size:4); \
       function:(INC); instance:?s"
  in
  let id = get_str r "instance" in
  check Alcotest.bool "instance id" true (String.length id > 0);
  ignore
    (ok_exec c
       ~args:[ Icdb_cql.Exec.Astr id ]
       "command:put_in_component_list; design:chip; instance:%s");
  let r =
    ok_exec c ~args:[ Icdb_cql.Exec.Astr id ]
      "command:instance_query; instance:%s; delay:?s; gates:?d"
  in
  check Alcotest.bool "delay text" true
    (String.length (get_str r "delay") > 0);
  let r = ok_exec c "command:component_query; component:counter; function:?s[]" in
  (match List.assoc_opt "function" r with
   | Some (Icdb_cql.Exec.Rstrs fs) ->
       check Alcotest.bool "INC listed" true (List.mem "INC" fs)
   | _ -> Alcotest.fail "component_query shape");
  let r = ok_exec c "command:function_query; function:(INC); component:?s[]" in
  (match List.assoc_opt "component" r with
   | Some (Icdb_cql.Exec.Rstrs cs) ->
       check Alcotest.bool "counter performs INC" true (List.mem "counter" cs)
   | _ -> Alcotest.fail "function_query shape");
  let r =
    ok_exec c ~args:[ Icdb_cql.Exec.Astr id ]
      "command:connect_component; instance:%s; connect:?s"
  in
  check Alcotest.bool "connect info" true
    (String.length (get_str r "connect") > 0);
  ignore (ok_exec c "command:end_a_transaction; design:chip");
  ignore (ok_exec c "command:end_a_design; design:chip");
  (* SQL against the metadata database over the same connection *)
  (match Client.sql c "SELECT name FROM components" with
   | Ok (Wire.Relation { cols; rows }) ->
       check (Alcotest.list Alcotest.string) "cols" [ "name" ] cols;
       check Alcotest.bool "catalog rows" true
         (List.mem [ "counter" ] rows)
   | Ok (Wire.Affected _) -> Alcotest.fail "SELECT answered Affected"
   | Error (_, msg) -> Alcotest.failf "sql failed: %s" msg);
  (match Client.sql c "SELEKT broken" with
   | Error (Wire.Sql_error, _) -> ()
   | _ -> Alcotest.fail "bad SQL should answer Sql_error");
  match Client.stats c with
  | Ok payload ->
      check Alcotest.bool "stats carry a summary line" true
        (String.length payload.Wire.sp_text > 0);
      (match List.assoc_opt "net.requests" payload.Wire.sp_counters with
       | Some n -> check Alcotest.bool "net.requests counted" true (n > 0)
       | None -> Alcotest.fail "stats payload should count net.requests")
  | Error (_, msg) -> Alcotest.failf "stats failed: %s" msg

(* a CQL failure is a structured reply, not a dead connection *)
let test_service_cql_error_keeps_connection () =
  with_service @@ fun _svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.exec c "command:bogus_cmd; x:?s" with
   | Error (Wire.Parse_error, msg) ->
       check Alcotest.bool "mentions the command" true
         (String.length msg > 0)
   | _ -> Alcotest.fail "unknown command should answer Parse_error");
  (match Client.exec c "command:instance_query; instance:nope_99; delay:?s" with
   | Error ((Wire.Exec_error | Wire.Parse_error), _) -> ()
   | _ -> Alcotest.fail "unknown instance should answer a structured error");
  Client.ping c (* still alive *)

let test_service_concurrent_clients () =
  with_service @@ fun _svc port _ws ->
  let clients = 8 and iters = 3 in
  let failures = Atomic.make 0 in
  let ids = Array.make clients "" in
  let run k =
    try
      let c = Client.connect ~port () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      for _ = 1 to iters do
        let r =
          ok_exec c
            (Printf.sprintf
               "command:request_component; component_name:counter; \
                attribute:(size:%d); instance:?s"
               (3 + k))
        in
        ids.(k) <- get_str r "instance";
        ignore
          (ok_exec c ~args:[ Icdb_cql.Exec.Astr ids.(k) ]
             "command:instance_query; instance:%s; gates:?d");
        ignore (ok_exec c "command:function_query; function:(INC); component:?s[]")
      done
    with _ -> Atomic.incr failures
  in
  let threads = List.init clients (fun k -> Thread.create run k) in
  List.iter Thread.join threads;
  check Alcotest.int "no client failed" 0 (Atomic.get failures);
  (* distinct specs produced distinct instances *)
  let sorted = List.sort_uniq String.compare (Array.to_list ids) in
  check Alcotest.int "distinct instances" clients (List.length sorted)

let raw_connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let test_service_malformed_frame_survival () =
  with_service @@ fun _svc port _ws ->
  let fd = raw_connect port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* garbage inside a well-delimited frame: structured error, conn lives *)
  let good = Wire.encode_request { Wire.id = 77; body = Wire.Ping } in
  let garbled = Bytes.of_string good in
  Bytes.set garbled 5 '\xee' (* kind byte, after the 4-byte length header *);
  Wire.write_frame fd (Bytes.to_string garbled);
  (match Wire.read_response fd with
   | Ok { Wire.id = 77; body = Wire.Error { code = Wire.Protocol_error; _ } } -> ()
   | _ -> Alcotest.fail "garbled kind should answer Protocol_error with the id");
  (* wrong version byte: structured error, conn lives *)
  let wrong_v = Bytes.of_string good in
  Bytes.set wrong_v 4 '\x63';
  Wire.write_frame fd (Bytes.to_string wrong_v);
  (match Wire.read_response fd with
   | Ok { Wire.id = 77; body = Wire.Error { code = Wire.Version_mismatch; _ } } ->
       ()
   | _ -> Alcotest.fail "wrong version should answer Version_mismatch");
  (* a genuine v1 client (pre trace-context) gets the same treatment:
     the server names the mismatch and keeps the connection open *)
  let v1 = Bytes.of_string good in
  Bytes.set v1 4 '\x01';
  Wire.write_frame fd (Bytes.to_string v1);
  (match Wire.read_response fd with
   | Ok { Wire.id = 77; body = Wire.Error { code = Wire.Version_mismatch; _ } } ->
       ()
   | _ -> Alcotest.fail "a v1 frame should answer Version_mismatch");
  (* the same connection still serves real requests *)
  Wire.write_frame fd good;
  match Wire.read_response fd with
  | Ok { Wire.id = 77; body = Wire.Pong } -> ()
  | _ -> Alcotest.fail "connection should survive recoverable frames"

let test_service_oversized_frame_closes () =
  with_service @@ fun _svc port _ws ->
  let fd = raw_connect port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Wire.max_payload + 1));
  ignore (Unix.write fd header 0 4);
  (match Wire.read_response fd with
   | Ok { Wire.body = Wire.Error { code = Wire.Protocol_error; _ }; _ } -> ()
   | _ -> Alcotest.fail "oversized frame should answer Protocol_error");
  (* framing is unrecoverable: the server closes the connection *)
  match Wire.read_response fd with
  | Error Wire.Closed | Error (Wire.Truncated _) -> ()
  | Ok _ -> Alcotest.fail "connection should close after an oversized frame"
  | Error _ -> ()

let test_service_refuses_over_limit () =
  let config = { Service.default_config with max_connections = 1 } in
  with_service ~config @@ fun _svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.ping c (* connection 1 is registered once it answers *);
  let fd = raw_connect port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (match Wire.read_response fd with
   | Ok { Wire.id = 0; body = Wire.Error { code = Wire.Overloaded; _ } } -> ()
   | _ -> Alcotest.fail "over-limit connect should be refused with Overloaded");
  (* the admitted connection is unaffected *)
  Client.ping c

let test_service_request_timeout () =
  let config = { Service.default_config with request_timeout_s = -1.0 } in
  with_service ~config @@ fun _svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.exec c "command:function_query; function:(INC); component:?s[]" with
  | Error (Wire.Timeout, _) -> ()
  | _ -> Alcotest.fail "an already-expired deadline should answer Timeout"

(* a client-sent deadline in the request context is honored even when
   the server's own request_timeout_s is permissive *)
let test_service_ctx_deadline () =
  let config = { Service.default_config with workers = 1 } in
  with_service ~config @@ fun _svc port _ws ->
  let fd = raw_connect port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* pipeline two frames at the single worker: a cold component
     generation without a deadline, then a ping whose context demands
     an impossibly tight one. The ping waits in queue behind the
     generation, so its deadline has expired by dequeue time. *)
  let busy =
    Wire.encode_request
      { Wire.id = 1;
        body =
          Wire.Cql
            { text =
                "command:request_component; component_name:counter; \
                 attribute:(size:9); instance:?s";
              args = [] } }
  in
  let hurried =
    Wire.encode_request
      ~ctx:{ Wire.trace_id = ""; timeout_s = 1e-6 }
      { Wire.id = 2; body = Wire.Ping }
  in
  Wire.write_frame fd busy;
  Wire.write_frame fd hurried;
  (match Wire.read_response fd with
   | Ok { Wire.id = 1; body = Wire.Results _ } -> ()
   | _ -> Alcotest.fail "the undeadlined request should be served");
  match Wire.read_response fd with
  | Ok { Wire.id = 2; body = Wire.Error { code = Wire.Timeout; _ } } -> ()
  | Ok { Wire.id = 2; body = Wire.Pong } ->
      Alcotest.fail "an expired client deadline should not be served"
  | _ -> Alcotest.fail "the deadlined request should answer Timeout"

(* a traced request's server-side spans come back tagged with exactly
   the trace id the client sent *)
let test_service_trace_propagation () =
  with_service @@ fun _svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let tid = "t-prop-1" in
  ignore
    (ok_exec c ~trace_id:tid
       "command:request_component; component_name:counter; \
        attribute:(size:5); instance:?s");
  match Client.fetch_trace c tid with
  | Error (_, msg) -> Alcotest.failf "fetch_trace failed: %s" msg
  | Ok spans ->
      check Alcotest.bool "spans came back" true (spans <> []);
      List.iter
        (fun s ->
          check Alcotest.string "tagged with our trace id" tid s.Wire.rs_tag)
        spans;
      check Alcotest.bool "the request envelope span is present" true
        (List.exists (fun s -> s.Wire.rs_name = "net.request") spans);
      (* parent ids resolve inside the reply: the span tree is closed *)
      let ids = List.map (fun s -> s.Wire.rs_id) spans in
      List.iter
        (fun s ->
          match s.Wire.rs_parent with
          | None -> ()
          | Some p ->
              check Alcotest.bool "parent resolves in-reply" true
                (List.mem p ids))
        spans;
      (* an unknown trace id owns nothing *)
      (match Client.fetch_trace c "no-such-trace" with
       | Ok [] -> ()
       | Ok _ -> Alcotest.fail "an unknown trace id should own no spans"
       | Error (_, msg) -> Alcotest.failf "fetch_trace failed: %s" msg);
      (* and the merge produces a well-formed single-timeline span list *)
      let merged = Client.merge_remote_spans ~local:[] ~remote:spans in
      check Alcotest.int "merge keeps every server span"
        (List.length spans) (List.length merged);
      List.iter
        (fun (s : Icdb_obs.Trace.span) ->
          check Alcotest.bool "merged spans tagged server" true
            (s.Icdb_obs.Trace.stag = Some "server"))
        merged

(* eight clients tracing concurrently each see only their own spans:
   the attribution the tentpole promises under contention *)
let test_service_per_client_span_isolation () =
  with_service @@ fun _svc port _ws ->
  let clients = 8 in
  let failures = Mutex.create () in
  let failed = ref [] in
  let fail k msg =
    Mutex.lock failures;
    failed := Printf.sprintf "client %d: %s" k msg :: !failed;
    Mutex.unlock failures
  in
  let run k =
    let tid = Printf.sprintf "iso-%d" k in
    try
      let c = Client.connect ~port () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      for i = 1 to 2 do
        ignore
          (ok_exec c ~trace_id:tid
             (Printf.sprintf
                "command:request_component; component_name:counter; \
                 attribute:(size:%d); instance:?s"
                (10 + (k * 2) + i)))
      done;
      match Client.fetch_trace c tid with
      | Error (_, msg) -> fail k ("fetch_trace: " ^ msg)
      | Ok [] -> fail k "no spans attributed"
      | Ok spans ->
          List.iter
            (fun s ->
              if s.Wire.rs_tag <> tid then
                fail k
                  (Printf.sprintf "foreign span %S leaked into trace %s"
                     s.Wire.rs_tag tid))
            spans
    with e -> fail k (Printexc.to_string e)
  in
  let threads = List.init clients (fun k -> Thread.create run k) in
  List.iter Thread.join threads;
  check (Alcotest.list Alcotest.string) "no isolation failures" []
    (List.sort String.compare !failed)

(* with the threshold at zero every request is "slow": the log records
   command kind, trace id and a per-phase breakdown, and the stats
   reply carries it to the client *)
let test_service_slow_log () =
  let config = { Service.default_config with slow_threshold_s = 0.0 } in
  with_service ~config @@ fun svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore
    (ok_exec c ~trace_id:"slow-1"
       "command:request_component; component_name:counter; \
        attribute:(size:7); instance:?s");
  let entries = Service.slow_log svc in
  check Alcotest.bool "server-side slow log is non-empty" true (entries <> []);
  (match
     List.find_opt (fun e -> e.Wire.sl_trace = "slow-1") entries
   with
   | None -> Alcotest.fail "the traced request should be in the slow log"
   | Some e ->
       check Alcotest.string "command kind" "net.cql.request_component"
         e.Wire.sl_cmd;
       check Alcotest.bool "latency recorded" true (e.Wire.sl_seconds >= 0.0);
       check Alcotest.bool "cache disposition recorded" true
         (e.Wire.sl_cache = "hit" || e.Wire.sl_cache = "miss");
       check Alcotest.string "CQL request has no query plan" "" e.Wire.sl_plan;
       check Alcotest.bool "per-phase breakdown present" true
         (e.Wire.sl_phases <> []));
  (* a SQL request carries the planner's decision into its entry *)
  (match Client.sql c ~trace_id:"slow-sql" "SELECT id FROM instances" with
  | Ok _ -> ()
  | Error (_, msg) -> Alcotest.failf "sql failed: %s" msg);
  (match
     List.find_opt
       (fun e -> e.Wire.sl_trace = "slow-sql")
       (Service.slow_log svc)
   with
  | None -> Alcotest.fail "the SQL request should be in the slow log"
  | Some e ->
      check Alcotest.string "plan summary recorded" "scan(instances)"
        e.Wire.sl_plan);
  (* the stats reply carries the same log across the wire *)
  match Client.stats c with
  | Error (_, msg) -> Alcotest.failf "stats failed: %s" msg
  | Ok payload ->
      check Alcotest.bool "slow log crosses the wire" true
        (List.exists
           (fun e -> e.Wire.sl_trace = "slow-1")
           payload.Wire.sp_slow);
      check Alcotest.bool "plan summary crosses the wire" true
        (List.exists
           (fun e -> e.Wire.sl_plan = "scan(instances)")
           payload.Wire.sp_slow)

(* graceful shutdown drains, says Bye, and loses no journaled writes:
   the post-shutdown reopen differential the ISSUE requires *)
let test_service_shutdown_durable_differential () =
  Lazy.force quiet_events;
  let server = Server.create ~verify:false ~durable:true () in
  let ws = Server.workspace server in
  let sync = Sync.wrap server in
  let svc =
    Service.start ~config:{ Service.default_config with port = 0 } sync
  in
  let port = Service.port svc in
  let c = Client.connect ~port () in
  let gen size =
    get_str
      (ok_exec c
         (Printf.sprintf
            "command:request_component; component_name:counter; \
             attribute:(size:%d); instance:?s"
            size))
      "instance"
  in
  let a = gen 4 in
  let b = gen 6 in
  Client.shutdown_server c (* Shutdown frame: drain, Bye, stop *);
  Service.wait svc;
  (* reopen replays the journal: everything clients wrote is back *)
  let server2, report = Server.reopen ~verify:false ~workspace:ws () in
  check Alcotest.bool "no torn journal tail" false report.Server.rr_torn_tail;
  check (Alcotest.list Alcotest.string) "nothing dropped" []
    (List.map snd report.Server.rr_dropped);
  check
    (Alcotest.list Alcotest.string)
    "both journaled instances recovered"
    (List.sort String.compare [ a; b ])
    (Server.instance_ids server2);
  check Alcotest.bool "no torn workspace files" true
    (Array.for_all
       (fun f -> not (Filename.check_suffix f ".tmp"))
       (Sys.readdir ws))

let test_service_shutdown_refuses_new_requests () =
  with_service @@ fun svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.ping c;
  Service.request_shutdown svc;
  (* a request racing the drain gets a structured answer either way:
     served if a worker grabs it, Shutting_down if admission saw the
     flag first, or a closed connection if teardown won the race *)
  match Client.exec c "command:function_query; function:(INC); component:?s[]" with
  | Ok _ | Error (Wire.Shutting_down, _) -> ()
  | Error (code, msg) ->
      Alcotest.failf "unexpected refusal: %s: %s"
        (Wire.error_code_to_string code) msg
  | exception Client.Net_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Pipelining, batching, and the event loop                            *)
(* ------------------------------------------------------------------ *)

let gen_cql size =
  Printf.sprintf
    "command:request_component; component_name:counter; attribute:(size:%d); \
     instance:?s"
    size

let shuffle st arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done

(* Property: with many requests in flight on one connection and awaits
   in an order unrelated to either issue order or the server's
   completion order (4 workers race), every reply still matches its
   request's id and payload. *)
let test_service_pipelining_property () =
  with_service @@ fun _svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let st = Random.State.make [| 42 |] in
  (* learn the size -> instance mapping sequentially first *)
  let sizes = Array.init 8 (fun i -> 3 + i) in
  let expected = Hashtbl.create 8 in
  Array.iter
    (fun size ->
      Hashtbl.replace expected size (get_str (ok_exec c (gen_cql size)) "instance"))
    sizes;
  for _round = 1 to 3 do
    (* issue a burst of interleaved pings and queries without reading *)
    let n = 40 in
    let plan =
      Array.init n (fun _ ->
          if Random.State.int st 4 = 0 then `Ping
          else `Query sizes.(Random.State.int st (Array.length sizes)))
    in
    let tickets =
      Array.map
        (fun p ->
          match p with
          | `Ping -> (p, Client.call_async c Wire.Ping)
          | `Query size ->
              (p, Client.call_async c (Wire.Cql { text = gen_cql size; args = [] })))
        plan
    in
    (* await in a shuffled order: most replies arrive while a different
       ticket is being awaited, exercising the stash *)
    shuffle st tickets;
    Array.iter
      (fun (p, ticket) ->
        match (p, Client.await c ticket) with
        | `Ping, Wire.Pong -> ()
        | `Query size, Wire.Results r ->
            check Alcotest.string "pipelined reply matches its request"
              (Hashtbl.find expected size) (get_str r "instance")
        | _, _ -> Alcotest.fail "reply shape does not match the request")
      tickets
  done

(* A batch mixing valid and invalid entries: per-entry results come
   back positionally, and an error in one entry never disturbs the
   entries around it. *)
let test_service_batch_mixed () =
  with_service @@ fun _svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let entries =
    [ Wire.Bcql { text = gen_cql 4; args = [] };
      Wire.Bcql { text = "command:nonsense_command;"; args = [] };
      Wire.Bsql "SELECT name FROM components";
      Wire.Bsql "SELEKT broken";
      Wire.Bcql
        { text = "command:component_query; component:%s; function:?s[]";
          args = [ Icdb_cql.Exec.Astr "counter" ] } ]
  in
  (match Client.batch c entries with
   | Error (code, msg) ->
       Alcotest.failf "batch refused: %s: %s"
         (Wire.error_code_to_string code) msg
   | Ok [ r0; r1; r2; r3; r4 ] ->
       (match r0 with
        | Wire.Bresults r ->
            check Alcotest.bool "entry 0 generated" true
              (String.length (get_str r "instance") > 0)
        | _ -> Alcotest.fail "entry 0 should have succeeded");
       (match r1 with
        | Wire.Berror { code = Wire.Parse_error; _ } -> ()
        | _ -> Alcotest.fail "entry 1 should be an isolated Parse_error");
       (match r2 with
        | Wire.Bsql_result (Wire.Relation { cols; rows }) ->
            check (Alcotest.list Alcotest.string) "entry 2 cols" [ "name" ] cols;
            check Alcotest.bool "entry 2 rows" true (List.mem [ "counter" ] rows)
        | _ -> Alcotest.fail "entry 2 should be a relation");
       (match r3 with
        | Wire.Berror { code = Wire.Sql_error; _ } -> ()
        | _ -> Alcotest.fail "entry 3 should be an isolated Sql_error");
       (match r4 with
        | Wire.Bresults r -> (
            match List.assoc_opt "function" r with
            | Some (Icdb_cql.Exec.Rstrs _) -> ()
            | _ -> Alcotest.fail "entry 4 shape")
        | _ -> Alcotest.fail "entry 4 should have succeeded after the errors")
   | Ok rs -> Alcotest.failf "expected 5 results, got %d" (List.length rs));
  (* the degenerate batch: zero entries, zero results, still answered *)
  match Client.batch c [] with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty batch should answer zero results"
  | Error (code, msg) ->
      Alcotest.failf "empty batch refused: %s: %s"
        (Wire.error_code_to_string code) msg

(* A batch bigger than the entry cap is refused whole — it would carry
   an unbounded amount of work on one queue slot — while a batch at
   exactly the cap still answers positionally. *)
let test_service_batch_entry_cap () =
  with_service @@ fun _svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let entry = Wire.Bcql { text = "command:nonsense_command;"; args = [] } in
  (match
     Client.batch c (List.init (Service.max_batch_entries + 1) (fun _ -> entry))
   with
   | Error (Wire.Protocol_error, _) -> ()
   | Error (code, msg) ->
       Alcotest.failf "over-cap batch: expected Protocol_error, got %s: %s"
         (Wire.error_code_to_string code) msg
   | Ok _ -> Alcotest.fail "a batch over the entry cap must be refused");
  match Client.batch c (List.init Service.max_batch_entries (fun _ -> entry)) with
  | Ok results ->
      check Alcotest.int "at-cap batch answers every entry"
        Service.max_batch_entries (List.length results)
  | Error (code, msg) ->
      Alcotest.failf "at-cap batch refused: %s: %s"
        (Wire.error_code_to_string code) msg

(* The client deadline is enforced *between* batch entries, not only at
   dequeue: once it passes, every remaining entry answers a positional
   [Berror Timeout]. Timing-tolerant — the batch may also finish in
   time, or expire while still queued — but whatever happens, timeouts
   may only form a suffix and the reply stays positionally complete. *)
let test_service_batch_deadline_tail () =
  with_service @@ fun _svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let n = 3000 in
  let entries = List.init n (fun _ -> Wire.Bsql "SELECT name FROM components") in
  match Client.batch c ~timeout_s:0.05 entries with
  | Error (Wire.Timeout, _) -> () (* expired while still queued *)
  | Error (code, msg) ->
      Alcotest.failf "batch failed: %s: %s"
        (Wire.error_code_to_string code) msg
  | Ok results ->
      check Alcotest.int "positionally complete" n (List.length results);
      let seen_timeout = ref false in
      List.iteri
        (fun i r ->
          match r with
          | Wire.Berror { code = Wire.Timeout; _ } -> seen_timeout := true
          | Wire.Bsql_result (Wire.Relation _) ->
              if !seen_timeout then
                Alcotest.failf
                  "entry %d executed after an earlier entry timed out" i
          | _ -> Alcotest.failf "entry %d: unexpected result shape" i)
        results

let thread_count () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> -1 (* not Linux: skip the assertion *)
  | ic ->
      let rec go () =
        match input_line ic with
        | line when String.length line >= 8 && String.sub line 0 8 = "Threads:" ->
            int_of_string (String.trim (String.sub line 8 (String.length line - 8)))
        | _ -> go ()
        | exception End_of_file -> -1
      in
      let n = go () in
      close_in ic;
      n

(* The event-loop claims: 1000+ mostly-idle connections cost no worker
   threads, and a client trickling its request one byte at a time
   cannot stall anybody else. *)
let test_service_event_loop_stress () =
  let config =
    { Service.default_config with max_connections = 1100; max_queue = 256 }
  in
  with_service ~config @@ fun _svc port _ws ->
  let idle = Array.init 1000 (fun _ -> raw_connect port) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        idle)
  @@ fun () ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.ping c (* all 1000 admissions are behind this reply *);
  let threads_with_idle = thread_count () in
  if threads_with_idle >= 0 then
    (* service threads: workers + event loop + publisher; clients: this
       one. 1000 idle connections must not have added any. *)
    check Alcotest.bool
      (Printf.sprintf "no thread per connection (%d threads)" threads_with_idle)
      true
      (threads_with_idle < 64);
  (* a slow sender trickles a Ping one byte at a time while the hot
     connection keeps getting answers *)
  let trickle_fd = raw_connect port in
  Fun.protect
    ~finally:(fun () ->
      try Unix.close trickle_fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let trickle_done = Atomic.make false in
  let frame = Wire.encode_request { Wire.id = 5; body = Wire.Ping } in
  let trickler =
    Thread.create
      (fun () ->
        String.iter
          (fun ch ->
            ignore (Unix.write_substring trickle_fd (String.make 1 ch) 0 1);
            Thread.delay 0.02)
          frame;
        Atomic.set trickle_done true)
      ()
  in
  ignore (ok_exec c (gen_cql 4));
  for _ = 1 to 50 do
    ignore (ok_exec c "command:function_query; function:(INC); component:?s[]")
  done;
  check Alcotest.bool "hot work finished while the trickler still trickles"
    false (Atomic.get trickle_done);
  Thread.join trickler;
  (* the trickled frame, once complete, still gets its answer *)
  match Wire.read_response trickle_fd with
  | Ok { Wire.id = 5; body = Wire.Pong } -> ()
  | _ -> Alcotest.fail "trickled Ping should eventually answer Pong"

(* Graceful drain: every request the server has read gets a reply even
   when shutdown starts while they are still queued. *)
let test_service_drain_answers_inflight () =
  with_service @@ fun svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let tickets =
    List.init 12 (fun k ->
        Client.call_async c (Wire.Cql { text = gen_cql (3 + k); args = [] }))
  in
  (* let the event loop read and enqueue them, then start the drain *)
  Thread.delay 0.2;
  Service.request_shutdown svc;
  List.iter
    (fun ticket ->
      match Client.await c ticket with
      | Wire.Results _ | Wire.Error _ -> () (* a real reply either way *)
      | _ -> Alcotest.fail "unexpected reply shape during drain")
    tickets

(* ------------------------------------------------------------------ *)
(* Continuous telemetry: /statz, /connz, the stall watchdog            *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let wait_for ?(timeout = 10.0) ~what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else (Thread.delay 0.01; go ())
  in
  go ()

(* Pull the integer after ["key": ] out of a JSON body — enough of a
   parser for the counts these tests assert on. *)
let json_int_field body key =
  let pat = Printf.sprintf "\"%s\": " key in
  let pl = String.length pat and bl = String.length body in
  let rec find i =
    if i + pl > bl then None
    else if String.sub body i pl = pat then
      let j = ref (i + pl) in
      while !j < bl && body.[!j] >= '0' && body.[!j] <= '9' do incr j done;
      if !j > i + pl then Some (int_of_string (String.sub body (i + pl) (!j - i - pl)))
      else None
    else find (i + 1)
  in
  find 0

let telemetry_config period =
  { Service.default_config with telemetry_period_s = period }

(* /statz and /connz end to end: a fast sampler accumulates 60+ points
   while a client works, the admin plane serves them as JSON, and the
   connection table shows the live connection with its request count. *)
let test_service_statz_connz () =
  Lazy.force quiet_events;
  let server = Server.create ~verify:false () in
  let sync = Sync.wrap server in
  let svc =
    Service.start ~config:{ (telemetry_config 0.02) with port = 0 } sync
  in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  let port = Service.port svc in
  let recorder = Icdb_obs.Recorder.create () in
  Icdb_obs.Recorder.set_sampler recorder
    (match Service.sampler svc with
     | Some s -> s
     | None -> Alcotest.fail "sampler not running with a positive period");
  Fun.protect ~finally:(fun () -> Icdb_obs.Recorder.close recorder)
  @@ fun () ->
  let admin = Admin.start ~recorder ~port:0 ~service:svc ~sync () in
  Fun.protect ~finally:(fun () -> Admin.stop admin) @@ fun () ->
  let aport = Admin.port admin in
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  for _ = 1 to 10 do
    ignore (ok_exec c "command:function_query; function:(INC); component:?s[]")
  done;
  (* 60 sample periods at 20 ms: the ring must hold >= 60 points *)
  let sampler =
    match Service.sampler svc with Some s -> s | None -> assert false
  in
  wait_for ~what:"60 sampler ticks" (fun () ->
      Icdb_obs.Series.total_ticks sampler >= 60);
  let status, body = Icdb_obs.Expo.http_get ~port:aport "/statz" in
  check Alcotest.int "/statz answers 200" 200 status;
  (match json_int_field body "samples" with
   | Some n -> check Alcotest.bool "at least 60 samples retained" true (n >= 60)
   | None -> Alcotest.fail "/statz body has no samples count");
  check Alcotest.bool "request-rate series present" true
    (contains body "net.requests");
  check Alcotest.bool "event-loop series present" true
    (contains body "net.loop.poll_wait.p99");
  check Alcotest.bool "replication-lag series present" true
    (contains body "repl.lag_records");
  let status, body = Icdb_obs.Expo.http_get ~port:aport "/connz" in
  check Alcotest.int "/connz answers 200" 200 status;
  (match json_int_field body "connections" with
   | Some n -> check Alcotest.int "one live connection" 1 n
   | None -> Alcotest.fail "/connz body has no connections count");
  check Alcotest.bool "connection is active" true
    (contains body "\"state\": \"active\"");
  (match json_int_field body "reqs" with
   | Some n -> check Alcotest.bool "request count tracked" true (n >= 10)
   | None -> Alcotest.fail "/connz body has no reqs count");
  let status, body = Icdb_obs.Expo.http_get ~port:aport "/metrics" in
  check Alcotest.int "/metrics answers 200" 200 status;
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " exposed") true (contains body name))
    [ "process_uptime_seconds"; "process_open_fds"; "process_max_rss_bytes";
      "net_loop_poll_wait"; "net_loop_dispatch"; "net_watchdog_tripped";
      "net_queue_depth"; "net_wq_bytes" ];
  let status, body = Icdb_obs.Expo.http_get ~port:aport "/blackboxz" in
  check Alcotest.int "/blackboxz answers 200" 200 status;
  check Alcotest.bool "blackbox dump identifies itself" true
    (contains body "\"blackbox\": \"icdb\"")

(* The watchdog stays quiet under healthy load, trips while the event
   loop is wedged by an injected stall, and recovers once it unwedges. *)
let test_service_watchdog_stall () =
  Fun.protect ~finally:Faultinject.reset @@ fun () ->
  with_service ~config:(telemetry_config 0.05) @@ fun svc port _ws ->
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  for _ = 1 to 20 do
    ignore (ok_exec c "command:function_query; function:(INC); component:?s[]")
  done;
  Thread.delay 0.3;
  check
    (Alcotest.pair Alcotest.bool Alcotest.string)
    "no false positive under healthy load" (false, "")
    (Service.watchdog svc);
  let trips = Icdb_obs.Metrics.counter "net.watchdog.trips" in
  let before = trips.Icdb_obs.Metrics.count in
  (* wedge the loop through the ICDB_FAULT spec syntax: the next two
     armed hits sleep 1.5 s each, past the 1 s staleness bound the
     watchdog enforces on the loop heartbeat *)
  Faultinject.arm_from_spec "loop_stall:transient:2";
  wait_for ~what:"watchdog trip" (fun () ->
      trips.Icdb_obs.Metrics.count > before);
  (* the trip is visible while the stall lasts; the second armed hit
     keeps the loop wedged long enough to observe it *)
  wait_for ~what:"watchdog reason" (fun () ->
      match Service.watchdog svc with
      | true, reason -> contains reason "stalled"
      | false, _ -> false);
  (* the fault disarms after two hits: the loop unwedges, the heartbeat
     refreshes, and the watchdog must report recovery *)
  wait_for ~what:"watchdog recovery" (fun () ->
      fst (Service.watchdog svc) = false);
  (* and the service still answers *)
  ignore (ok_exec c "command:function_query; function:(INC); component:?s[]")

let () =
  Alcotest.run "net"
    [ ( "wire",
        [ Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "trace context round-trip" `Quick test_ctx_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "float bits exact" `Quick test_float_bits_roundtrip;
          Alcotest.test_case "malformed classification" `Quick
            test_decode_malformed;
          Alcotest.test_case "bad version classification" `Quick
            test_decode_bad_version;
          Alcotest.test_case "v1 frame is recoverable" `Quick
            test_decode_v1_recoverable;
          Alcotest.test_case "pre-v4 kinds stamped v3" `Quick
            test_version_stamped_per_kind;
          Alcotest.test_case "legacy v3 stats report decodes" `Quick
            test_legacy_stats_report_decodes;
          Alcotest.test_case "framing failures" `Quick test_read_framing_failures ] );
      ( "service",
        [ Alcotest.test_case "full CQL set" `Quick test_service_full_cql_set;
          Alcotest.test_case "CQL error keeps connection" `Quick
            test_service_cql_error_keeps_connection;
          Alcotest.test_case "8 concurrent clients" `Quick
            test_service_concurrent_clients;
          Alcotest.test_case "malformed frame survival" `Quick
            test_service_malformed_frame_survival;
          Alcotest.test_case "oversized frame closes" `Quick
            test_service_oversized_frame_closes;
          Alcotest.test_case "refuses over connection limit" `Quick
            test_service_refuses_over_limit;
          Alcotest.test_case "request timeout" `Quick test_service_request_timeout;
          Alcotest.test_case "client ctx deadline" `Quick
            test_service_ctx_deadline;
          Alcotest.test_case "trace propagation" `Quick
            test_service_trace_propagation;
          Alcotest.test_case "per-client span isolation" `Quick
            test_service_per_client_span_isolation;
          Alcotest.test_case "slow-query log" `Quick test_service_slow_log;
          Alcotest.test_case "durable shutdown differential" `Quick
            test_service_shutdown_durable_differential;
          Alcotest.test_case "shutdown refuses new work" `Quick
            test_service_shutdown_refuses_new_requests ] );
      ( "pipeline",
        [ Alcotest.test_case "out-of-order awaits match ids" `Quick
            test_service_pipelining_property;
          Alcotest.test_case "mixed batch isolates errors" `Quick
            test_service_batch_mixed;
          Alcotest.test_case "batch entry cap" `Quick
            test_service_batch_entry_cap;
          Alcotest.test_case "batch deadline between entries" `Quick
            test_service_batch_deadline_tail;
          Alcotest.test_case "event loop: 1000 idle conns, slow client" `Quick
            test_service_event_loop_stress;
          Alcotest.test_case "drain answers in-flight" `Quick
            test_service_drain_answers_inflight ] );
      ( "telemetry",
        [ Alcotest.test_case "/statz, /connz, /metrics end-to-end" `Quick
            test_service_statz_connz;
          Alcotest.test_case "stall watchdog trips and recovers" `Quick
            test_service_watchdog_stall ] ) ]
