(* Differential testing of the two builtin component generators: for a
   sweep of counter and adder designs, milo (optimize + full library
   map) and direct (sweep + INV/NAND2 map) must both produce netlists
   equivalent to the IIF specification, and milo — the optimizing
   path — must never pay more area than the naive one. Also pins the
   server-level contract: an explicit ~generator:"direct" request is a
   different specification from the default and gets its own
   instance. *)

open Icdb
open Icdb_iif
open Icdb_timing
open Icdb_sim

let check = Alcotest.check

let expand = Builtin.expand_exn

let generator name =
  List.find (fun g -> g.Generator.gen_name = name) Generator.builtins

let assert_equivalent label flat nl =
  match Equiv.check ~steps:120 flat nl with
  | Equiv.Equivalent -> ()
  | m ->
      Alcotest.fail
        (Printf.sprintf "%s: not equivalent to its IIF spec: %s" label
           (Equiv.result_to_string m))

let counter_params size typ =
  [ ("size", size); ("type", typ); ("load", 1); ("enable", 1);
    ("up_or_down", 3) ]

(* Each entry is (label, design, params, comb): [comb] marks purely
   combinational designs, where logic optimization must strictly pay
   off in area. Sequential counters are flip-flop-dominated — the FFs
   map identically on both paths — so there milo is only required to
   stay within 2% (in practice a small constant library-cell
   difference in the control logic). *)
let sweep =
  [ ("counter2_sync", "COUNTER", counter_params 2 2, false);
    ("counter3_sync", "COUNTER", counter_params 3 2, false);
    ("counter4_sync", "COUNTER", counter_params 4 2, false);
    ("counter3_ripple", "COUNTER", counter_params 3 1, false);
    ("adder2", "ADDER", [ ("size", 2) ], true);
    ("adder3", "ADDER", [ ("size", 3) ], true);
    ("adder4", "ADDER", [ ("size", 4) ], true) ]

let test_generators_agree () =
  let milo = generator "milo" and direct = generator "direct" in
  List.iter
    (fun (label, design, params, comb) ->
      let flat = expand design params in
      let nm = milo.Generator.synthesize flat in
      let nd = direct.Generator.synthesize flat in
      assert_equivalent (label ^ " via milo") flat nm;
      assert_equivalent (label ^ " via direct") flat nd;
      let am = Sta.cell_area nm and ad = Sta.cell_area nd in
      let bound = if comb then ad else 1.02 *. ad in
      check Alcotest.bool
        (Printf.sprintf "%s: milo area %.0f within bound %.0f (direct %.0f)"
           label am bound ad)
        true (am <= bound))
    sweep

let test_server_keeps_generators_apart () =
  let s = Server.create ~verify:false () in
  let source =
    Spec.From_component
      { component = "counter"; attributes = [ ("size", 3) ]; functions = [] }
  in
  let default = Server.request_component s (Spec.make source) in
  let direct =
    Server.request_component s (Spec.make ~generator:"direct" source)
  in
  check Alcotest.bool "distinct instances" true (default != direct);
  (* both serve the same component contract *)
  check Alcotest.bool "same gate-level interface" true
    (default.Instance.netlist.Icdb_netlist.Netlist.inputs
       = direct.Instance.netlist.Icdb_netlist.Netlist.inputs
    && default.Instance.netlist.Icdb_netlist.Netlist.outputs
       = direct.Instance.netlist.Icdb_netlist.Netlist.outputs);
  (* repeating either request hits its own cache entry *)
  check Alcotest.bool "default cached" true
    (Server.request_component s (Spec.make source) == default);
  check Alcotest.bool "direct cached" true
    (Server.request_component s (Spec.make ~generator:"direct" source)
     == direct)

let () =
  Alcotest.run "diff"
    [ ("generators",
       [ Alcotest.test_case "milo vs direct sweep" `Slow test_generators_agree;
         Alcotest.test_case "server keeps generators apart" `Quick
           test_server_keeps_generators_apart ]) ]
