(* Tests for the logic engine: SOP minimization, factoring, network
   construction, optimization, technology mapping — with end-to-end
   equivalence checks against the IIF reference interpreter. *)

open Icdb_iif
open Icdb_logic
open Icdb_sim

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Sop                                                                 *)
(* ------------------------------------------------------------------ *)

let test_sop_minimize_classic () =
  (* f = sum m(0,1,2,5,6,7) over 3 vars: minimal cover has 4 cubes of 2
     literals... the classic result is f = a'b' + bc' + ac? (several
     minimum covers exist); we check cover validity and literal count. *)
  let sop = Sop.of_minterms 3 [ 0; 1; 2; 5; 6; 7 ] in
  let m = Sop.minimize sop in
  for v = 0 to 7 do
    check Alcotest.bool (Printf.sprintf "m%d" v) (Sop.eval sop v) (Sop.eval m v)
  done;
  check Alcotest.bool "at most 3 cubes" true (List.length (Sop.cubes m) <= 3);
  check Alcotest.bool "at most 6 literals" true (Sop.literal_count m <= 6)

let test_sop_minimize_tautology () =
  let sop = Sop.of_minterms 2 [ 0; 1; 2; 3 ] in
  let m = Sop.minimize sop in
  check Alcotest.bool "is one" true (Sop.is_one m)

let test_sop_minimize_empty () =
  let m = Sop.minimize (Sop.zero 3) in
  check Alcotest.bool "is zero" true (Sop.is_zero m)

let test_sop_xor_has_no_merge () =
  (* XOR of 3 vars: no two minterms are distance-1; cover = 4 minterms. *)
  let sop = Sop.of_minterms 3 [ 1; 2; 4; 7 ] in
  let m = Sop.minimize sop in
  check Alcotest.int "four cubes" 4 (List.length (Sop.cubes m));
  check Alcotest.int "twelve literals" 12 (Sop.literal_count m)

let test_sop_of_fexpr () =
  let fanins = [| "a"; "b" |] in
  let expr = Flat.For_ [ Flat.Fand [ Flat.Fnet "a"; Flat.Fnot (Flat.Fnet "b") ];
                         Flat.Fnet "b" ] in
  let sop = Sop.of_fexpr fanins expr in
  (* a!b + b  =  a + b *)
  let m = Sop.minimize sop in
  check Alcotest.int "two 1-literal cubes" 2 (Sop.literal_count m)

let test_sop_roundtrip_eval () =
  let fanins = [| "a"; "b"; "c" |] in
  let expr =
    Flat.Fxor (Flat.Fnet "a", Flat.Fand [ Flat.Fnet "b"; Flat.Fnet "c" ])
  in
  let sop = Sop.of_fexpr fanins expr in
  let back = Sop.to_fexpr fanins (Sop.minimize sop) in
  let sop2 = Sop.of_fexpr fanins back in
  for v = 0 to 7 do
    check Alcotest.bool "same function" (Sop.eval sop v) (Sop.eval sop2 v)
  done

(* Property sweep: 200 seeded-random covers across 1..8 variables.
   Quine–McCluskey output must compute exactly the same truth table
   (checked exhaustively over all 2^n minterms) and never carry more
   literals than the minterm-canonical input cover. Deterministic seed
   so a failure is reproducible by case number. *)
let test_sop_random_covers () =
  let st = Random.State.make [| 0x50C0 |] in
  for case = 1 to 200 do
    let n = 1 + Random.State.int st 8 in
    let space = 1 lsl n in
    (* density varies per case: sparse, dense and mid covers all occur *)
    let p = 0.05 +. Random.State.float st 0.9 in
    let minterms =
      List.filter (fun _ -> Random.State.float st 1.0 < p)
        (List.init space Fun.id)
    in
    let sop = Sop.of_minterms n minterms in
    let m = Sop.minimize sop in
    for v = 0 to space - 1 do
      if Sop.eval sop v <> Sop.eval m v then
        Alcotest.fail
          (Printf.sprintf
             "case %d (%d vars, %d minterms): differs at minterm %d" case n
             (List.length minterms) v)
    done;
    if Sop.literal_count m > Sop.literal_count sop then
      Alcotest.fail
        (Printf.sprintf "case %d (%d vars): %d literals grew to %d" case n
           (Sop.literal_count sop) (Sop.literal_count m));
    (* minimization is stable: minimizing again changes nothing *)
    if Sop.literal_count (Sop.minimize m) <> Sop.literal_count m then
      Alcotest.fail (Printf.sprintf "case %d: not idempotent" case)
  done

(* ------------------------------------------------------------------ *)
(* Factor                                                              *)
(* ------------------------------------------------------------------ *)

let rec count_literals = function
  | Flat.Fconst _ -> 0
  | Flat.Fnet _ -> 1
  | Flat.Fnot e | Flat.Fbuf e | Flat.Fschmitt e | Flat.Fdelay (e, _) ->
      count_literals e
  | Flat.Fand es | Flat.For_ es | Flat.Fwor es ->
      List.fold_left (fun a e -> a + count_literals e) 0 es
  | Flat.Fxor (a, b) | Flat.Fxnor (a, b) -> count_literals a + count_literals b
  | Flat.Ftri { data; enable } -> count_literals data + count_literals enable

let test_factor_shares_literal () =
  (* ab + ac + ad factors as a(b + c + d): 6 -> 4 literals *)
  let fanins = [| "a"; "b"; "c"; "d" |] in
  let expr =
    Flat.For_
      [ Flat.Fand [ Flat.Fnet "a"; Flat.Fnet "b" ];
        Flat.Fand [ Flat.Fnet "a"; Flat.Fnet "c" ];
        Flat.Fand [ Flat.Fnet "a"; Flat.Fnet "d" ] ]
  in
  let sop = Sop.minimize (Sop.of_fexpr fanins expr) in
  let factored = Factor.factor fanins sop in
  check Alcotest.int "four literals" 4 (count_literals factored);
  (* function preserved *)
  let sop2 = Sop.of_fexpr fanins factored in
  for v = 0 to 15 do
    check Alcotest.bool "same" (Sop.eval sop v) (Sop.eval sop2 v)
  done

let test_factor_const_cases () =
  check Alcotest.bool "zero" true
    (Factor.factor [| "a" |] (Sop.zero 1) = Flat.Fconst false);
  check Alcotest.bool "one" true
    (Factor.factor [| "a" |] (Sop.one 1) = Flat.Fconst true)

let prop_factor_preserves_function =
  QCheck.Test.make ~name:"factoring preserves the function" ~count:300
    QCheck.(pair (int_range 1 5) (list_of_size Gen.(int_bound 12) (int_bound 31)))
    (fun (nvars, raw) ->
      let minterms =
        List.sort_uniq compare (List.map (fun m -> m mod (1 lsl nvars)) raw)
      in
      let sop = Sop.of_minterms nvars minterms in
      let fanins = Array.init nvars (fun i -> Printf.sprintf "v%d" i) in
      let factored = Factor.factor fanins (Sop.minimize sop) in
      let sop2 = Sop.of_fexpr fanins factored in
      List.for_all
        (fun v -> Sop.eval sop v = Sop.eval sop2 v)
        (List.init (1 lsl nvars) Fun.id))

let prop_minimize_preserves_function =
  QCheck.Test.make ~name:"QM minimization preserves the function" ~count:300
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_bound 20) (int_bound 63)))
    (fun (nvars, raw) ->
      let minterms =
        List.sort_uniq compare (List.map (fun m -> m mod (1 lsl nvars)) raw)
      in
      let sop = Sop.of_minterms nvars minterms in
      let m = Sop.minimize sop in
      List.for_all
        (fun v -> Sop.eval sop v = Sop.eval m v)
        (List.init (1 lsl nvars) Fun.id))

let prop_minimize_no_worse =
  QCheck.Test.make ~name:"QM minimization never adds literals" ~count:200
    QCheck.(pair (int_range 1 5) (list_of_size Gen.(int_bound 16) (int_bound 31)))
    (fun (nvars, raw) ->
      let minterms =
        List.sort_uniq compare (List.map (fun m -> m mod (1 lsl nvars)) raw)
      in
      let sop = Sop.of_minterms nvars minterms in
      Sop.literal_count (Sop.minimize sop) <= Sop.literal_count sop)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let counter_flat ?(size = 4) ?(typ = 2) ?(load = 1) ?(enable = 1) ?(ud = 3) () =
  Builtin.expand_exn "COUNTER"
    [ ("size", size); ("type", typ); ("load", load); ("enable", enable);
      ("up_or_down", ud) ]

let test_network_of_counter () =
  let net = Network.of_flat (counter_flat ()) in
  let regs =
    List.filter
      (fun el -> match el with Network.Reg _ -> true | _ -> false)
      net.Network.elements
  in
  let lats =
    List.filter
      (fun el -> match el with Network.Lat _ -> true | _ -> false)
      net.Network.elements
  in
  check Alcotest.int "4 registers" 4 (List.length regs);
  check Alcotest.int "1 latch" 1 (List.length lats);
  List.iter
    (fun el ->
      match el with
      | Network.Reg { set; reset; _ } ->
          check Alcotest.bool "has set" true (set <> None);
          check Alcotest.bool "has reset" true (reset <> None)
      | _ -> ())
    regs

let test_network_multiple_driver_rejected () =
  let flat =
    { Flat.fname = "bad";
      finputs = [ "a" ];
      foutputs = [ "y" ];
      finternals = [];
      fequations =
        [ Flat.Comb { target = "y"; rhs = Flat.Fnet "a" };
          Flat.Comb { target = "y"; rhs = Flat.Fnot (Flat.Fnet "a") } ] }
  in
  let net = Network.of_flat flat in
  (try
     ignore (Network.driver_table net);
     Alcotest.fail "expected Network_error"
   with Network.Network_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Opt                                                                 *)
(* ------------------------------------------------------------------ *)

let test_opt_reduces_literals () =
  let flat = Builtin.expand_exn "ALU" [ ("size", 4) ] in
  let net = Network.of_flat flat in
  let before = Network.literal_count net in
  Opt.optimize net;
  let after = Network.literal_count net in
  check Alcotest.bool
    (Printf.sprintf "literals %d -> %d" before after)
    true (after <= before)

let test_opt_sweeps_constants () =
  let flat =
    { Flat.fname = "c";
      finputs = [ "a" ];
      foutputs = [ "y" ];
      finternals = [ "t" ];
      fequations =
        [ Flat.Comb { target = "t"; rhs = Flat.Fand [ Flat.Fnet "a"; Flat.Fconst false ] };
          Flat.Comb { target = "y"; rhs = Flat.For_ [ Flat.Fnet "t"; Flat.Fnet "a" ] } ] }
  in
  let net = Network.of_flat flat in
  Opt.optimize net;
  (* t = 0, so y = a: a single alias gate remains *)
  check Alcotest.int "one gate" 1 (List.length net.Network.elements);
  match net.Network.elements with
  | [ Network.Gate { out = "y"; expr = Flat.Fnet "a" } ] -> ()
  | _ -> Alcotest.fail "expected y = a"

let test_opt_preserves_function () =
  (* optimize the ALU and re-check against the interpreter via mapping *)
  let flat = Builtin.expand_exn "COMPARATOR" [ ("size", 3) ] in
  let net = Network.of_flat flat in
  Opt.optimize net;
  let nl = Techmap.map net in
  match Equiv.check flat nl with
  | Equiv.Equivalent -> ()
  | m -> Alcotest.fail (Equiv.result_to_string m)

(* ------------------------------------------------------------------ *)
(* Techmap                                                             *)
(* ------------------------------------------------------------------ *)

let synthesize flat =
  let net = Network.of_flat flat in
  Opt.optimize net;
  Techmap.map net

let test_map_known_cells_only () =
  let nl = synthesize (counter_flat ()) in
  List.iter
    (fun (i : Icdb_netlist.Netlist.instance) ->
      check Alcotest.bool ("known cell " ^ i.cell) true
        (Celllib.find i.cell <> None))
    nl.Icdb_netlist.Netlist.instances

let test_map_counter_uses_dff_sr () =
  let nl = synthesize (counter_flat ()) in
  let hist = Icdb_netlist.Netlist.cell_histogram nl in
  check Alcotest.(option int) "4 DFF_SR" (Some 4) (List.assoc_opt "DFF_SR" hist);
  check Alcotest.(option int) "1 LATCH_H" (Some 1) (List.assoc_opt "LATCH_H" hist)

let test_map_counter_no_load_uses_plain_dff () =
  let nl = synthesize (counter_flat ~load:0 ~enable:0 ()) in
  let hist = Icdb_netlist.Netlist.cell_histogram nl in
  check Alcotest.(option int) "4 DFF" (Some 4) (List.assoc_opt "DFF" hist);
  check Alcotest.bool "no latch" true (List.assoc_opt "LATCH_H" hist = None)

let test_map_complex_gates_used () =
  (* AOI/OAI patterns should win over NAND+INV chains somewhere in a
     carry-select style function. *)
  let flat = Builtin.expand_exn "ALU" [ ("size", 4) ] in
  let nl = synthesize flat in
  let hist = Icdb_netlist.Netlist.cell_histogram nl in
  let complex =
    List.filter
      (fun (c, _) ->
        List.mem c [ "AOI21"; "OAI21"; "AOI22"; "OAI22"; "NAND3"; "NAND4";
                     "NOR2"; "NOR3"; "AND2"; "OR2" ])
      hist
  in
  check Alcotest.bool "some complex gates" true (complex <> [])

let equiv_case name flat =
  Alcotest.test_case name `Quick (fun () ->
      let nl = synthesize flat in
      match Equiv.check flat nl with
      | Equiv.Equivalent -> ()
      | m -> Alcotest.fail (Equiv.result_to_string m))

let equivalence_suite =
  [ equiv_case "adder4" (Builtin.expand_exn "ADDER" [ ("size", 4) ]);
    equiv_case "adder8" (Builtin.expand_exn "ADDER" [ ("size", 8) ]);
    equiv_case "addsub4" (Builtin.expand_exn "ADDSUB" [ ("size", 4) ]);
    equiv_case "mux2" (Builtin.expand_exn "MUX2" [ ("size", 3) ]);
    equiv_case "decoder3" (Builtin.expand_exn "DECODER" [ ("size", 3) ]);
    equiv_case "comparator4" (Builtin.expand_exn "COMPARATOR" [ ("size", 4) ]);
    equiv_case "alu4" (Builtin.expand_exn "ALU" [ ("size", 4) ]);
    equiv_case "shl" (Builtin.expand_exn "SHL0" [ ("size", 6); ("shift_distance", 2) ]);
    equiv_case "andn" (Builtin.expand_exn "ANDN" [ ("size", 6) ]);
    equiv_case "register" (Builtin.expand_exn "REGISTER" [ ("size", 4); ("load", 1) ]);
    equiv_case "counter sync updown load enable" (counter_flat ());
    equiv_case "counter sync up" (counter_flat ~load:0 ~enable:0 ~ud:1 ());
    equiv_case "counter sync down" (counter_flat ~load:0 ~enable:0 ~ud:2 ());
    equiv_case "counter sync up enable" (counter_flat ~load:0 ~enable:1 ~ud:1 ());
    equiv_case "counter ripple" (counter_flat ~typ:1 ~load:0 ~enable:0 ~ud:1 ());
    equiv_case "counter 6-bit" (counter_flat ~size:6 ()) ]

(* ------------------------------------------------------------------ *)
(* Paper-verbatim Appendix A examples through the whole pipeline       *)
(* ------------------------------------------------------------------ *)

(* Example 1: the 4-bit register with parallel load, written exactly in
   the appendix's fixed-size style (explicit nets, ~b clock buffer). *)
let appendix_register =
  "NAME:REGISTER4;\n\
   INORDER: Load, I0, I1, I2, I3, Clock;\n\
   OUTORDER: A0, A1, A2, A3;\n\
   PIIFVARIABLE: not_load, load, CP;\n\
   {\n\
     CP = ~b Clock;\n\
     not_load = !Load;\n\
     load = !not_load;\n\
     A0 = ((I0*load) + (A0*not_load)) @(~r CP);\n\
     A1 = ((I1*load) + (A1*not_load)) @(~r CP);\n\
     A2 = ((I2*load) + (A2*not_load)) @(~r CP);\n\
     A3 = ((I3*load) + (A3*not_load)) @(~r CP);\n\
   }"

(* The appendix's falling-edge flip-flop with asynchronous set and
   reset: Q=(D @ ~f clk) ~a (0/!reset, 1/!set). *)
let appendix_dffsr =
  "NAME:DFFSR;\n\
   INORDER: D, clk, reset, set;\n\
   OUTORDER: Q;\n\
   {\n\
     Q = (D @(~f clk)) ~a(0/!reset, 1/!set);\n\
   }"

let test_appendix_register_pipeline () =
  let d = Parser.parse appendix_register in
  let flat = Expander.expand d [] in
  check Alcotest.(list string) "validates" []
    (List.map Flat.problem_to_string (Flat.validate flat));
  let nl = synthesize flat in
  (match Equiv.check flat nl with
   | Equiv.Equivalent -> ()
   | m -> Alcotest.fail (Equiv.result_to_string m));
  (* behavioural spot-check: load 1010, hold, reload *)
  let sim = Gate_sim.create nl in
  let step load bits clk =
    Gate_sim.step sim
      [ ("Load", load); ("I0", List.nth bits 0); ("I1", List.nth bits 1);
        ("I2", List.nth bits 2); ("I3", List.nth bits 3); ("Clock", clk) ]
  in
  step true [ false; true; false; true ] false;
  step true [ false; true; false; true ] true;
  check Alcotest.bool "A1 loaded" true (Gate_sim.value sim "A1");
  check Alcotest.bool "A0 clear" false (Gate_sim.value sim "A0");
  step false [ true; false; true; false ] false;
  step false [ true; false; true; false ] true;
  check Alcotest.bool "held with Load low" true (Gate_sim.value sim "A1")

let test_appendix_dffsr_pipeline () =
  let d = Parser.parse appendix_dffsr in
  let flat = Expander.expand d [] in
  check Alcotest.(list string) "validates" []
    (List.map Flat.problem_to_string (Flat.validate flat));
  (* falling-edge FF with both asyncs survives synthesis *)
  let nl = synthesize flat in
  (match Equiv.check flat nl with
   | Equiv.Equivalent -> ()
   | m -> Alcotest.fail (Equiv.result_to_string m));
  let sim = Gate_sim.create nl in
  let step d clk rst st =
    Gate_sim.step sim [ ("D", d); ("clk", clk); ("reset", rst); ("set", st) ]
  in
  (* actives are low: idle = both high *)
  step true true true true;
  step true false true true;  (* falling edge samples D=1 *)
  check Alcotest.bool "captured on falling edge" true (Gate_sim.value sim "Q");
  step false true true true;  (* rising edge: no capture *)
  check Alcotest.bool "rising edge ignored" true (Gate_sim.value sim "Q");
  step false false true false;  (* async set (active low) *)
  check Alcotest.bool "async set" true (Gate_sim.value sim "Q");
  step true true false true;  (* async reset *)
  check Alcotest.bool "async reset" false (Gate_sim.value sim "Q")

(* gate-count sanity: bigger parameters give bigger netlists *)
let test_map_monotone_size () =
  let count size =
    Icdb_netlist.Netlist.instance_count
      (synthesize (Builtin.expand_exn "ADDER" [ ("size", size) ]))
  in
  check Alcotest.bool "8-bit adder larger than 4-bit" true (count 8 > count 4)

let prop_adder_pipeline_equivalence =
  QCheck.Test.make ~name:"synthesized adder equals spec (random sizes)" ~count:4
    QCheck.(int_range 2 6)
    (fun size ->
      let flat = Builtin.expand_exn "ADDER" [ ("size", size) ] in
      let nl = synthesize flat in
      Equiv.check flat nl = Equiv.Equivalent)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_factor_preserves_function; prop_minimize_preserves_function;
      prop_minimize_no_worse; prop_adder_pipeline_equivalence ]

let () =
  Alcotest.run "logic"
    [ ("sop",
       [ Alcotest.test_case "minimize classic" `Quick test_sop_minimize_classic;
         Alcotest.test_case "tautology" `Quick test_sop_minimize_tautology;
         Alcotest.test_case "empty" `Quick test_sop_minimize_empty;
         Alcotest.test_case "xor has no merge" `Quick test_sop_xor_has_no_merge;
         Alcotest.test_case "of_fexpr" `Quick test_sop_of_fexpr;
         Alcotest.test_case "roundtrip eval" `Quick test_sop_roundtrip_eval;
         Alcotest.test_case "200 random covers to 8 vars" `Slow
           test_sop_random_covers ]);
      ("factor",
       [ Alcotest.test_case "shares literal" `Quick test_factor_shares_literal;
         Alcotest.test_case "const cases" `Quick test_factor_const_cases ]);
      ("network",
       [ Alcotest.test_case "counter elements" `Quick test_network_of_counter;
         Alcotest.test_case "multi-driver rejected" `Quick
           test_network_multiple_driver_rejected ]);
      ("opt",
       [ Alcotest.test_case "reduces literals" `Quick test_opt_reduces_literals;
         Alcotest.test_case "sweeps constants" `Quick test_opt_sweeps_constants;
         Alcotest.test_case "preserves function" `Quick test_opt_preserves_function ]);
      ("techmap",
       [ Alcotest.test_case "known cells only" `Quick test_map_known_cells_only;
         Alcotest.test_case "counter uses DFF_SR" `Quick test_map_counter_uses_dff_sr;
         Alcotest.test_case "plain DFF without load" `Quick
           test_map_counter_no_load_uses_plain_dff;
         Alcotest.test_case "complex gates used" `Quick test_map_complex_gates_used;
         Alcotest.test_case "monotone size" `Quick test_map_monotone_size ]);
      ("appendix-fidelity",
       [ Alcotest.test_case "example 1 register" `Quick
           test_appendix_register_pipeline;
         Alcotest.test_case "falling-edge DFF with set/reset" `Quick
           test_appendix_dffsr_pipeline ]);
      ("equivalence", equivalence_suite);
      ("properties", props) ]
