(* Tests for the relational engine (INGRES substitute). *)

open Icdb_reldb

let check = Alcotest.check
let vint i = Value.Int i
let vstr s = Value.Str s
let vfloat f = Value.Float f
let vbool b = Value.Bool b

let sample_components () =
  let t =
    Table.create "components"
      [ ("name", Value.Tstr); ("size", Value.Tint); ("area", Value.Tfloat);
        ("sequential", Value.Tbool) ]
  in
  Table.insert t [ vstr "counter"; vint 5; vfloat 37.3; vbool true ];
  Table.insert t [ vstr "adder"; vint 8; vfloat 21.0; vbool false ];
  Table.insert t [ vstr "register"; vint 4; vfloat 12.5; vbool true ];
  Table.insert t [ vstr "alu"; vint 8; vfloat 55.0; vbool false ];
  t

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_roundtrip () =
  let values =
    [ vint 42; vint (-7); vfloat 3.25; vfloat (-0.5); vstr "hello";
      vstr "with\nnewline\tand\\slash"; vstr ""; vbool true; vbool false ]
  in
  List.iter
    (fun v ->
      check Alcotest.bool "roundtrip" true
        (Value.equal v (Value.decode (Value.encode v))))
    values

let test_value_equal_across_types () =
  check Alcotest.bool "int<>float" false (Value.equal (vint 1) (vfloat 1.0));
  check Alcotest.bool "str<>bool" false (Value.equal (vstr "true") (vbool true))

let test_value_compare_total () =
  let vs = [ vint 3; vint 1; vfloat 2.0; vstr "b"; vstr "a"; vbool false ] in
  let sorted = List.sort Value.compare vs in
  check Alcotest.int "stable size" (List.length vs) (List.length sorted);
  check Alcotest.bool "ints first, ordered" true
    (match sorted with
     | Value.Int 1 :: Value.Int 3 :: _ -> true
     | _ -> false)

let test_value_escape_injective () =
  let nasty = [ "a\\nb"; "a\nb"; "a\\\nb"; "\\"; "\n"; "" ] in
  let encoded = List.map Value.escape nasty in
  let distinct = List.sort_uniq String.compare encoded in
  check Alcotest.int "no collisions" (List.length nasty) (List.length distinct);
  List.iter
    (fun s -> check Alcotest.string "unescape" s (Value.unescape (Value.escape s)))
    nasty

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_insert_and_rows () =
  let t = sample_components () in
  check Alcotest.int "cardinality" 4 (Table.cardinality t);
  let names =
    List.map (fun r -> Value.to_string (Table.get r t "name")) (Table.rows t)
  in
  check Alcotest.(list string) "insertion order"
    [ "counter"; "adder"; "register"; "alu" ] names

let test_table_type_mismatch () =
  let t = sample_components () in
  Alcotest.check_raises "type error"
    (Table.Schema_error "table components: column size expects int, got string")
    (fun () -> Table.insert t [ vstr "x"; vstr "bad"; vfloat 1.0; vbool true ])

let test_table_arity_mismatch () =
  let t = sample_components () in
  Alcotest.check_raises "arity error"
    (Table.Schema_error "table components: expected 4 values")
    (fun () -> Table.insert t [ vstr "x" ])

let test_table_duplicate_column () =
  Alcotest.check_raises "dup column"
    (Table.Schema_error "table bad: duplicate column a")
    (fun () ->
      ignore (Table.create "bad" [ ("a", Value.Tint); ("a", Value.Tstr) ]))

let test_table_insert_assoc () =
  let t = sample_components () in
  Table.insert_assoc t
    [ ("area", vfloat 9.9); ("name", vstr "mux"); ("sequential", vbool false);
      ("size", vint 2) ];
  check Alcotest.int "inserted" 5 (Table.cardinality t);
  let last = List.nth (Table.rows t) 4 in
  check Alcotest.string "name bound" "mux" (Value.to_string (Table.get last t "name"))

let test_table_insert_assoc_missing () =
  let t = sample_components () in
  Alcotest.check_raises "missing binding"
    (Table.Schema_error "table components: column area not bound")
    (fun () -> Table.insert_assoc t [ ("name", vstr "x"); ("size", vint 1);
                                      ("sequential", vbool true) ])

let test_table_update () =
  let t = sample_components () in
  let n =
    Table.update t
      (fun r -> Table.get r t "size" = vint 8)
      (fun _ -> [ ("area", vfloat 99.0) ])
  in
  check Alcotest.int "two rows updated" 2 n;
  let areas =
    Table.filter t (fun r -> Table.get r t "size" = vint 8)
    |> List.map (fun r -> Table.get r t "area")
  in
  List.iter (fun a -> check Alcotest.bool "updated" true (Value.equal a (vfloat 99.0))) areas

let test_table_delete () =
  let t = sample_components () in
  let n = Table.delete t (fun r -> Table.get r t "sequential" = vbool true) in
  check Alcotest.int "deleted" 2 n;
  check Alcotest.int "remaining" 2 (Table.cardinality t)

let test_table_rows_are_copies () =
  let t = sample_components () in
  (match Table.rows t with
   | row :: _ -> row.(0) <- vstr "clobbered"
   | [] -> Alcotest.fail "expected rows");
  match Table.rows t with
  | row :: _ ->
      check Alcotest.string "unaffected" "counter" (Value.to_string row.(0))
  | [] -> Alcotest.fail "expected rows"

let test_table_copy_restore () =
  let t = sample_components () in
  let snap = Table.copy t in
  ignore (Table.delete t (fun _ -> true));
  check Alcotest.int "emptied" 0 (Table.cardinality t);
  Table.restore t ~from:snap;
  check Alcotest.int "restored" 4 (Table.cardinality t)

(* ------------------------------------------------------------------ *)
(* Query                                                               *)
(* ------------------------------------------------------------------ *)

let rel () = Query.of_table (sample_components ())

let test_query_select_eq () =
  let r = Query.select (Query.Eq ("name", vstr "adder")) (rel ()) in
  check Alcotest.int "one row" 1 (Query.count r)

let test_query_select_numeric_coercion () =
  (* Int column compared against a Float literal must coerce. *)
  let r = Query.select (Query.Ge ("size", vfloat 5.0)) (rel ()) in
  check Alcotest.int "three rows >= 5" 3 (Query.count r)

let test_query_select_and_or_not () =
  let p =
    Query.And
      ( Query.Eq ("sequential", vbool true),
        Query.Not (Query.Eq ("name", vstr "register")) )
  in
  let r = Query.select p (rel ()) in
  check Alcotest.int "only counter" 1 (Query.count r);
  let r2 =
    Query.select
      (Query.Or (Query.Eq ("name", vstr "alu"), Query.Eq ("name", vstr "adder")))
      (rel ())
  in
  check Alcotest.int "two" 2 (Query.count r2)

let test_query_like () =
  let r = Query.select (Query.Like ("name", "der")) (rel ()) in
  check Alcotest.int "adder matches" 1 (Query.count r);
  let r2 = Query.select (Query.Like ("name", "")) (rel ()) in
  check Alcotest.int "empty pattern matches all" 4 (Query.count r2)

let test_query_project_reorders () =
  let r = Query.project [ "area"; "name" ] (rel ()) in
  check Alcotest.(list string) "schema" [ "area"; "name" ]
    (List.map fst r.Query.rschema);
  match r.Query.rrows with
  | row :: _ -> check Alcotest.string "first col is area" "37.3" (Value.to_string row.(0))
  | [] -> Alcotest.fail "rows expected"

let test_query_order_by () =
  let r = Query.order_by "area" (rel ()) in
  let names = Query.column_values r "name" |> List.map Value.to_string in
  check Alcotest.(list string) "ascending area"
    [ "register"; "adder"; "counter"; "alu" ] names;
  let r = Query.order_by "area" ~desc:true (rel ()) in
  let names = Query.column_values r "name" |> List.map Value.to_string in
  check Alcotest.(list string) "descending area"
    [ "alu"; "counter"; "adder"; "register" ] names

let test_query_join () =
  let impls =
    Table.create "impls" [ ("comp", Value.Tstr); ("impl", Value.Tstr) ]
  in
  Table.insert impls [ vstr "counter"; vstr "ripple" ];
  Table.insert impls [ vstr "counter"; vstr "synchronous" ];
  Table.insert impls [ vstr "adder"; vstr "ripple_carry" ];
  let j = Query.join (rel ()) (Query.of_table impls) ~on:("name", "comp") in
  check Alcotest.int "join rows" 3 (Query.count j);
  let impls_of_counter =
    Query.select (Query.Eq ("name", vstr "counter")) j
    |> fun r -> Query.column_values r "impl" |> List.map Value.to_string
  in
  check Alcotest.(list string) "counter impls" [ "ripple"; "synchronous" ]
    impls_of_counter

let test_query_join_name_collision () =
  let other = Table.create "o" [ ("name", Value.Tstr); ("x", Value.Tint) ] in
  Table.insert other [ vstr "adder"; vint 1 ];
  let j = Query.join (rel ()) (Query.of_table other) ~on:("name", "name") in
  let cols = List.map fst j.Query.rschema in
  check Alcotest.bool "disambiguated" true (List.mem "name'" cols)

let test_query_distinct_limit () =
  let t = Table.create "d" [ ("v", Value.Tint) ] in
  List.iter (fun i -> Table.insert t [ vint i ]) [ 1; 2; 2; 3; 1 ];
  let r = Query.distinct (Query.of_table t) in
  check Alcotest.int "distinct" 3 (Query.count r);
  check Alcotest.int "limit" 2 (Query.count (Query.limit 2 r));
  check Alcotest.int "limit 0" 0 (Query.count (Query.limit 0 r))

(* ------------------------------------------------------------------ *)
(* Db: transactions + persistence                                      *)
(* ------------------------------------------------------------------ *)

let mkdb () =
  let db = Db.create () in
  let t = Db.create_table db "comps" [ ("name", Value.Tstr); ("n", Value.Tint) ] in
  Table.insert t [ vstr "a"; vint 1 ];
  Table.insert t [ vstr "b"; vint 2 ];
  db

let test_db_rollback () =
  let db = mkdb () in
  Db.begin_tx db;
  Table.insert (Db.table db "comps") [ vstr "c"; vint 3 ];
  ignore (Db.create_table db "scratch" [ ("x", Value.Tint) ]);
  Db.rollback db;
  check Alcotest.int "insert undone" 2 (Table.cardinality (Db.table db "comps"));
  check Alcotest.bool "created table dropped" true
    (Db.table_opt db "scratch" = None)

let test_db_commit () =
  let db = mkdb () in
  Db.begin_tx db;
  Table.insert (Db.table db "comps") [ vstr "c"; vint 3 ];
  Db.commit db;
  check Alcotest.int "kept" 3 (Table.cardinality (Db.table db "comps"));
  check Alcotest.bool "no tx" false (Db.in_tx db)

let test_db_nested_tx () =
  let db = mkdb () in
  Db.begin_tx db;
  Table.insert (Db.table db "comps") [ vstr "c"; vint 3 ];
  Db.begin_tx db;
  Table.insert (Db.table db "comps") [ vstr "d"; vint 4 ];
  Db.rollback db;
  check Alcotest.int "inner undone" 3 (Table.cardinality (Db.table db "comps"));
  Db.commit db;
  check Alcotest.int "outer kept" 3 (Table.cardinality (Db.table db "comps"))

let test_db_with_tx_exn () =
  let db = mkdb () in
  (try
     Db.with_tx db (fun () ->
         Table.insert (Db.table db "comps") [ vstr "c"; vint 3 ];
         failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "rolled back on exn" 2 (Table.cardinality (Db.table db "comps"))

let test_db_save_load () =
  let db = mkdb () in
  let t2 = Db.create_table db "delays"
      [ ("port", Value.Tstr); ("wd", Value.Tfloat); ("seq", Value.Tbool) ] in
  Table.insert t2 [ vstr "Q[4]"; vfloat 8.5; vbool true ];
  Table.insert t2 [ vstr "line\nbreak"; vfloat (-1.5); vbool false ];
  let path = Filename.temp_file "icdb_reldb" ".db" in
  Db.save db path;
  let db' = Db.load path in
  Sys.remove path;
  check Alcotest.(list string) "tables" [ "comps"; "delays" ] (Db.table_names db');
  check Alcotest.int "rows back" 2 (Table.cardinality (Db.table db' "delays"));
  let rows = Table.rows (Db.table db' "delays") in
  (match rows with
   | [ r1; r2 ] ->
       check Alcotest.string "str" "Q[4]" (Value.to_string r1.(0));
       check Alcotest.string "newline preserved" "line\nbreak" (Value.to_string r2.(0));
       check Alcotest.bool "float" true (Value.equal r1.(1) (vfloat 8.5))
   | _ -> Alcotest.fail "expected 2 rows")

let test_db_missing_table () =
  let db = mkdb () in
  Alcotest.check_raises "no table" (Db.Db_error "no table nope") (fun () ->
      ignore (Db.table db "nope"))

(* ------------------------------------------------------------------ *)
(* Sql                                                                 *)
(* ------------------------------------------------------------------ *)

let sqldb () =
  let db = Db.create () in
  let t =
    Db.create_table db "impls"
      [ ("name", Value.Tstr); ("comp", Value.Tstr); ("size", Value.Tint);
        ("area", Value.Tfloat) ]
  in
  Table.insert t [ vstr "ripple"; vstr "counter"; vint 5; vfloat 17.2 ];
  Table.insert t [ vstr "sync_up"; vstr "counter"; vint 5; vfloat 23.6 ];
  Table.insert t [ vstr "sync_updown"; vstr "counter"; vint 5; vfloat 37.3 ];
  Table.insert t [ vstr "ripple_carry"; vstr "adder"; vint 8; vfloat 21.0 ];
  db

let run_select db q =
  match Sql.exec db q with
  | Sql.Relation r -> r
  | Sql.Affected _ -> Alcotest.fail "expected relation"

let test_sql_select_star () =
  let r = run_select (sqldb ()) "SELECT * FROM impls" in
  check Alcotest.int "all rows" 4 (Query.count r);
  check Alcotest.int "all cols" 4 (List.length r.Query.rschema)

let test_sql_select_where () =
  let r =
    run_select (sqldb ())
      "SELECT name FROM impls WHERE comp = 'counter' AND area < 30.0"
  in
  let names = Query.column_values r "name" |> List.map Value.to_string in
  check Alcotest.(list string) "cheap counters" [ "ripple"; "sync_up" ] names

let test_sql_select_or_parens () =
  let r =
    run_select (sqldb ())
      "SELECT name FROM impls WHERE (comp = 'adder' OR name = 'ripple') AND size >= 5"
  in
  check Alcotest.int "two rows" 2 (Query.count r)

let test_sql_like () =
  let r = run_select (sqldb ()) "SELECT name FROM impls WHERE name LIKE 'sync'" in
  check Alcotest.int "two sync impls" 2 (Query.count r)

let test_sql_order_limit () =
  let r =
    run_select (sqldb ())
      "SELECT name FROM impls WHERE comp = 'counter' ORDER BY area DESC LIMIT 1"
  in
  check Alcotest.(list string) "largest counter" [ "sync_updown" ]
    (Query.column_values r "name" |> List.map Value.to_string)

let test_sql_insert_update_delete () =
  let db = sqldb () in
  (match Sql.exec db "INSERT INTO impls VALUES ('cla', 'adder', 8, 35.5)" with
   | Sql.Affected 1 -> ()
   | _ -> Alcotest.fail "insert");
  (match Sql.exec db "UPDATE impls SET area = 36.0 WHERE name = 'cla'" with
   | Sql.Affected 1 -> ()
   | _ -> Alcotest.fail "update");
  let r = run_select db "SELECT area FROM impls WHERE name = 'cla'" in
  check Alcotest.bool "updated" true
    (Value.equal (List.hd (Query.column_values r "area")) (vfloat 36.0));
  (match Sql.exec db "DELETE FROM impls WHERE comp = 'adder'" with
   | Sql.Affected 2 -> ()
   | _ -> Alcotest.fail "delete");
  let r = run_select db "SELECT * FROM impls" in
  check Alcotest.int "three left" 3 (Query.count r)

let test_sql_case_insensitive_keywords () =
  let r = run_select (sqldb ()) "select name from impls where size > 5" in
  check Alcotest.int "one" 1 (Query.count r)

let test_sql_syntax_error () =
  let db = sqldb () in
  (try
     ignore (Sql.exec db "SELECT FROM");
     Alcotest.fail "should raise"
   with Sql.Sql_error _ -> ())

let test_sql_string_with_spaces () =
  let db = Db.create () in
  let t = Db.create_table db "files" [ ("k", Value.Tstr) ] in
  ignore t;
  (match Sql.exec db "INSERT INTO files VALUES ('a b c.cif')" with
   | Sql.Affected 1 -> ()
   | _ -> Alcotest.fail "insert");
  let r = run_select db "SELECT k FROM files WHERE k = 'a b c.cif'" in
  check Alcotest.int "found" 1 (Query.count r)

(* ------------------------------------------------------------------ *)
(* Secondary indexes                                                   *)
(* ------------------------------------------------------------------ *)

(* The differential that matters everywhere below: the indexed plan and
   the pure scan must return the same rows in the same order. *)
let same_rows tbl p =
  let indexed = (Query.select_table tbl p).Query.rrows in
  let scan = (Query.select p (Query.of_table tbl)).Query.rrows in
  List.length indexed = List.length scan
  && List.for_all2 (fun a b -> Array.for_all2 Value.equal a b) indexed scan

let test_index_basics () =
  let t = sample_components () in
  check Alcotest.bool "no index yet" false (Table.has_index t "size");
  Table.create_index t "size";
  Table.create_index t "size" (* idempotent *);
  check Alcotest.bool "indexed" true (Table.has_index t "size");
  check Alcotest.(list string) "indexed columns" [ "size" ]
    (Table.indexed_columns t);
  check Alcotest.bool "same rows, same order" true
    (same_rows t (Query.Eq ("size", vint 8)));
  (match Table.index_lookup t "size" (vint 8) with
  | Some rows -> check Alcotest.int "bucket" 2 (List.length rows)
  | None -> Alcotest.fail "expected an index hit");
  Table.drop_index t "size";
  check Alcotest.bool "dropped" false (Table.has_index t "size");
  check Alcotest.bool "lookup gone" true (Table.index_lookup t "size" (vint 8) = None)

let test_index_maintenance () =
  let t = sample_components () in
  Table.create_index t "size";
  Table.insert t [ vstr "mux"; vint 8; vfloat 5.0; vbool false ];
  check Alcotest.bool "after insert" true (same_rows t (Query.Eq ("size", vint 8)));
  ignore (Table.delete_one t (fun r -> Table.get r t "name" = vstr "adder"));
  check Alcotest.bool "after delete_one" true (same_rows t (Query.Eq ("size", vint 8)));
  ignore (Table.delete t (fun r -> Table.get r t "sequential" = vbool true));
  check Alcotest.bool "after bulk delete" true (same_rows t (Query.Eq ("size", vint 8)));
  ignore (Table.update t (fun r -> Table.get r t "name" = vstr "alu")
            (fun _ -> [ ("size", vint 4) ]));
  check Alcotest.bool "after update (8)" true (same_rows t (Query.Eq ("size", vint 8)));
  check Alcotest.bool "after update (4)" true (same_rows t (Query.Eq ("size", vint 4)));
  let snap = Table.copy t in
  ignore (Table.delete t (fun _ -> true));
  Table.restore t ~from:snap;
  check Alcotest.bool "after restore" true (same_rows t (Query.Eq ("size", vint 4)))

let test_index_numeric_coercion () =
  let t = sample_components () in
  Table.create_index t "size";
  (* Int column probed with an equal Float must coerce like the scan *)
  check Alcotest.bool "float probe" true (same_rows t (Query.Eq ("size", vfloat 8.0)));
  check Alcotest.bool "non-integral float" true
    (same_rows t (Query.Eq ("size", vfloat 7.5)));
  (* too large to round-trip exactly: the planner must fall back *)
  check Alcotest.bool "huge float falls back" true
    (same_rows t (Query.Eq ("size", vfloat 1e300)));
  (* cross-type probe: empty on both plans, not an error *)
  check Alcotest.bool "string probe" true
    (same_rows t (Query.Eq ("size", vstr "8")))

let test_index_only_eq_conjuncts () =
  let t = sample_components () in
  Table.create_index t "name";
  let p =
    Query.And
      ( Query.Eq ("name", vstr "counter"),
        Query.Gt ("area", vfloat 10.0) )
  in
  check Alcotest.bool "eq under and" true (same_rows t p);
  (* Eq under Or must not be pushed down (it is not a conjunct) *)
  let p2 =
    Query.Or (Query.Eq ("name", vstr "adder"), Query.Gt ("area", vfloat 50.0))
  in
  check Alcotest.bool "eq under or" true (same_rows t p2)

let test_where_unknown_column () =
  let t = sample_components () in
  Alcotest.check_raises "structured error, table named"
    (Table.Schema_error
       "table components: no column nosuch (columns: name, size, area, \
        sequential)")
    (fun () -> ignore (Query.select_table t (Query.Eq ("nosuch", vint 1))));
  (* the empty table reports the same error instead of silently matching
     nothing *)
  let e = Table.create "empty" [ ("a", Value.Tint) ] in
  Alcotest.check_raises "empty table too"
    (Table.Schema_error "table empty: no column b (columns: a)")
    (fun () -> ignore (Query.select_table e (Query.Eq ("b", vint 1))))

(* ------------------------------------------------------------------ *)
(* Pareto queries                                                      *)
(* ------------------------------------------------------------------ *)

let pareto_db () =
  let db = Db.create () in
  let t =
    Db.create_table db "pts"
      [ ("name", Value.Tstr); ("area", Value.Tfloat); ("delay", Value.Tfloat);
        ("grp", Value.Tstr) ]
  in
  List.iter
    (fun (n, a, d, g) -> Table.insert t [ vstr n; vfloat a; vfloat d; vstr g ])
    [ ("a", 1.0, 5.0, "g1"); ("b", 2.0, 3.0, "g1"); ("d", 2.0, 4.0, "g1");
      ("c", 3.0, 1.0, "g1"); ("e", 3.0, 3.5, "g2"); ("f", 2.0, 3.0, "g2") ];
  db

let names r = Query.column_values r "name" |> List.map Value.to_string

let test_sql_pareto () =
  let r = run_select (pareto_db ()) "PARETO pts ON area, delay" in
  (* duplicates of a frontier point stay on the frontier; original
     insertion order is preserved *)
  check Alcotest.(list string) "frontier" [ "a"; "b"; "c"; "f" ] (names r)

let test_sql_dominated_is_complement () =
  let db = pareto_db () in
  let front = run_select db "PARETO pts ON area, delay" in
  let dom = run_select db "DOMINATED pts ON area, delay" in
  check Alcotest.(list string) "dominated" [ "d"; "e" ] (names dom);
  check Alcotest.int "partition" 6 (Query.count front + Query.count dom)

let test_sql_pareto_where_limit () =
  let db = pareto_db () in
  (* restricting to g2 changes the frontier: f dominates e *)
  let r = run_select db "PARETO pts ON area, delay WHERE grp = 'g2'" in
  check Alcotest.(list string) "per-group frontier" [ "f" ] (names r);
  let r2 = run_select db "PARETO pts ON area, delay LIMIT 2" in
  check Alcotest.(list string) "limit after frontier" [ "a"; "b" ] (names r2)

let test_sql_pareto_non_numeric () =
  try
    ignore (Sql.exec (pareto_db ()) "PARETO pts ON name, delay");
    Alcotest.fail "should raise"
  with Table.Schema_error msg ->
    check Alcotest.bool "names the table and objective" true
      (String.length msg > 0
      && String.sub msg 0 9 = "table pts")

let test_sql_create_drop_index () =
  let db = pareto_db () in
  (match Sql.exec db "CREATE INDEX ON pts (grp)" with
  | Sql.Affected 0 -> ()
  | _ -> Alcotest.fail "create index");
  check Alcotest.bool "table indexed" true (Table.has_index (Db.table db "pts") "grp");
  let r = run_select db "SELECT name FROM pts WHERE grp = 'g2'" in
  check Alcotest.(list string) "served by index" [ "e"; "f" ] (names r);
  (match Sql.exec db "DROP INDEX ON pts (grp)" with
  | Sql.Affected 0 -> ()
  | _ -> Alcotest.fail "drop index");
  check Alcotest.bool "dropped" false (Table.has_index (Db.table db "pts") "grp")

let test_sql_where_unknown_column_message () =
  try
    ignore (Sql.exec (pareto_db ()) "SELECT * FROM pts WHERE nope = 1");
    Alcotest.fail "should raise"
  with Table.Schema_error msg ->
    check Alcotest.string "structured error"
      "table pts: no column nope (columns: name, area, delay, grp)" msg

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Query observability: EXPLAIN, ANALYZE, QUERY STATS                  *)
(* ------------------------------------------------------------------ *)

let plan_lines db stmt =
  List.map
    (fun row ->
      match row.(0) with Value.Str s -> s | v -> Value.to_string v)
    (run_select db stmt).Query.rrows

let counter_value name =
  Icdb_obs.Metrics.counter_value (Icdb_obs.Metrics.counter name)

(* The rendered plan text is a stable, golden surface: CI greps and the
   docs both quote it verbatim. *)
let test_explain_golden () =
  let db = sqldb () in
  check Alcotest.(list string) "scan plan"
    [ "Seq Scan on impls"; "  Filter: comp = 'counter'"; "  Project: name" ]
    (plan_lines db "EXPLAIN SELECT name FROM impls WHERE comp = 'counter'");
  ignore (Sql.exec db "CREATE INDEX ON impls (comp)");
  check Alcotest.(list string) "indexed plan"
    [ "Index Probe on impls comp = 'counter' (est 3 rows via bucket)";
      "  Filter: comp = 'counter'"; "  Project: name" ]
    (plan_lines db "EXPLAIN SELECT name FROM impls WHERE comp = 'counter'");
  check Alcotest.(list string) "decorated plan"
    [ "Index Probe on impls comp = 'counter' (est 3 rows via bucket)";
      "  Filter: comp = 'counter'"; "  Sort: area DESC"; "  Limit: 2";
      "  Project: name" ]
    (plan_lines db
       "EXPLAIN SELECT name FROM impls WHERE comp = 'counter' \
        ORDER BY area DESC LIMIT 2");
  check Alcotest.(list string) "frontier plan"
    [ "Seq Scan on impls"; "  Pareto Frontier: minimize (size, area)" ]
    (plan_lines db "EXPLAIN PARETO impls ON size, area");
  (* a typo'd column must be an error, not a plausible plan *)
  check Alcotest.bool "unknown column rejected" true
    (match Sql.exec db "EXPLAIN SELECT name FROM impls WHERE nope = 1" with
     | exception Table.Schema_error _ -> true
     | _ -> false);
  (* EXPLAIN reads no rows, so projection and ORDER BY columns must be
     validated at plan time too — not only when a stage executes *)
  check Alcotest.bool "unknown projection rejected" true
    (match Sql.exec db "EXPLAIN SELECT nope FROM impls" with
     | exception Table.Schema_error _ -> true
     | _ -> false);
  check Alcotest.bool "unknown order-by rejected" true
    (match Sql.exec db "EXPLAIN SELECT name FROM impls ORDER BY nope" with
     | exception Table.Schema_error _ -> true
     | _ -> false)

let test_explain_analyze_actuals () =
  let db = sqldb () in
  ignore (Sql.exec db "CREATE INDEX ON impls (comp)");
  let lines =
    plan_lines db
      "EXPLAIN ANALYZE SELECT name FROM impls WHERE comp = 'counter'"
  in
  let contains needle hay =
    let nn = String.length needle and nh = String.length hay in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  check Alcotest.int "three steps" 3 (List.length lines);
  List.iter
    (fun l -> check Alcotest.bool ("actuals on: " ^ l) true (contains "actual" l))
    lines;
  (* 4 rows considered, 3 in the comp='counter' bucket, 3 survive *)
  check Alcotest.bool "probe actuals" true
    (contains "(actual 4 -> 3 rows," (List.nth lines 0));
  check Alcotest.bool "filter actuals" true
    (contains "(actual 3 -> 3 rows," (List.nth lines 1))

let test_sql_analyze_stats () =
  let db = sqldb () in
  (match Sql.exec db "ANALYZE impls" with
   | Sql.Affected 1 -> ()
   | _ -> Alcotest.fail "ANALYZE impls should report 1 table");
  let st =
    match Table.stats (Db.table db "impls") with
    | Some st -> st
    | None -> Alcotest.fail "no stats installed"
  in
  check Alcotest.int "row count" 4 st.Table.st_rows;
  let col name =
    List.find (fun c -> c.Table.cs_column = name) st.Table.st_cols
  in
  check Alcotest.int "comp distinct" 2 (col "comp").Table.cs_distinct;
  check Alcotest.int "name distinct" 4 (col "name").Table.cs_distinct;
  check Alcotest.(float 1e-9) "no nulls" 0.0 (col "comp").Table.cs_null_frac;
  check Alcotest.bool "size min/max" true
    (match (col "size").Table.cs_min, (col "size").Table.cs_max with
     | Some (Value.Int 5), Some (Value.Int 8) -> true
     | _ -> false);
  (* empty strings count as nulls; stats refresh on re-ANALYZE *)
  Table.insert (Db.table db "impls")
    [ vstr ""; vstr "counter"; vint 5; vfloat 1.0 ];
  ignore (Sql.exec db "ANALYZE impls");
  let st2 = Option.get (Table.stats (Db.table db "impls")) in
  let name2 = List.find (fun c -> c.Table.cs_column = "name") st2.Table.st_cols in
  check Alcotest.(float 1e-9) "null fraction" 0.2 name2.Table.cs_null_frac

(* Two candidate equality indexes, very different selectivity: before
   ANALYZE the planner ranks exact bucket lengths, after ANALYZE the
   statistics estimates — either way the probe must go through the
   selective column, and the per-index hit counters prove which index
   actually served it. *)
let test_stats_driven_choice () =
  let db = Db.create () in
  let t =
    Db.create_table db "pts" [ ("grp", Value.Tstr); ("key", Value.Tstr) ]
  in
  for i = 0 to 99 do
    Table.insert t
      [ vstr (Printf.sprintf "g%d" (i mod 2));
        vstr (Printf.sprintf "k%d" (i mod 50)) ]
  done;
  ignore (Sql.exec db "CREATE INDEX ON pts (grp)");
  ignore (Sql.exec db "CREATE INDEX ON pts (key)");
  let stmt = "SELECT * FROM pts WHERE grp = 'g1' AND key = 'k7'" in
  let plan_line () = List.hd (plan_lines db ("EXPLAIN " ^ stmt)) in
  check Alcotest.string "bucket-ranked probe"
    "Index Probe on pts key = 'k7' (est 2 rows via bucket)" (plan_line ());
  ignore (Sql.exec db "ANALYZE pts");
  check Alcotest.string "stats-ranked probe"
    "Index Probe on pts key = 'k7' (est 2 rows via stats)" (plan_line ());
  let key_b = counter_value "reldb.index.pts.key.hits" in
  let grp_b = counter_value "reldb.index.pts.grp.hits" in
  let indexed = run_select db stmt in
  check Alcotest.int "key index served the probe" (key_b + 1)
    (counter_value "reldb.index.pts.key.hits");
  check Alcotest.int "grp index untouched" grp_b
    (counter_value "reldb.index.pts.grp.hits");
  ignore (Sql.exec db "DROP INDEX ON pts (grp)");
  ignore (Sql.exec db "DROP INDEX ON pts (key)");
  let scanned = run_select db stmt in
  check Alcotest.int "same count as scan" (Query.count scanned)
    (Query.count indexed);
  check Alcotest.bool "same rows as scan" true
    (List.for_all2
       (fun a b -> Array.for_all2 Value.equal a b)
       indexed.Query.rrows scanned.Query.rrows)

let test_query_stats_sql () =
  let db = sqldb () in
  ignore (Sql.exec db "QUERY STATS RESET");
  let stmt = "SELECT name FROM impls WHERE comp = 'counter'" in
  ignore (Sql.exec db stmt);
  ignore (Sql.exec db "SELECT name FROM impls WHERE comp = 'adder'");
  let r = run_select db "QUERY STATS" in
  check Alcotest.(list string) "columns"
    [ "fingerprint"; "plan"; "calls"; "rows"; "total_ms"; "max_ms" ]
    (List.map fst r.Query.rschema);
  (* both literals normalize to one fingerprint with two calls *)
  check Alcotest.int "one statement" 1 (Query.count r);
  let row = List.hd r.Query.rrows in
  check Alcotest.bool "normalized fingerprint" true
    (Value.equal row.(0) (vstr (Sql.fingerprint stmt)));
  check Alcotest.bool "two calls" true (Value.equal row.(2) (vint 2));
  (* 3 counter rows + 1 adder row flowed through it *)
  check Alcotest.bool "rows aggregated" true (Value.equal row.(3) (vint 4));
  check Alcotest.bool "plan label" true
    (Value.equal row.(1) (vstr "scan(impls)"));
  (* reading the stats plane does not pollute it; RESET empties it *)
  check Alcotest.int "QUERY STATS not self-recorded" 1
    (Query.count (run_select db "QUERY STATS"));
  (match Sql.exec db "QUERY STATS RESET" with
   | Sql.Affected 1 -> ()
   | _ -> Alcotest.fail "RESET should report 1 dropped statement");
  check Alcotest.int "empty after reset" 0
    (Query.count (run_select db "QUERY STATS"))

let value_gen =
  QCheck.Gen.(
    oneof
      [ map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1000.0);
        map (fun s -> Value.Str s) (string_size (int_bound 12));
        map (fun b -> Value.Bool b) bool ])

let arb_value = QCheck.make ~print:Value.to_string value_gen

let prop_value_roundtrip =
  QCheck.Test.make ~name:"value encode/decode roundtrip" ~count:500 arb_value
    (fun v -> Value.equal v (Value.decode (Value.encode v)))

let prop_compare_reflexive =
  QCheck.Test.make ~name:"value compare reflexive" ~count:200 arb_value
    (fun v -> Value.compare v v = 0)

let prop_compare_antisym =
  QCheck.Test.make ~name:"value compare antisymmetric" ~count:500
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      Value.compare a b = -Value.compare b a)

let prop_select_idempotent =
  QCheck.Test.make ~name:"select idempotent" ~count:100
    QCheck.(list_of_size Gen.(int_bound 20) (pair small_int (string_gen_of_size Gen.(int_bound 8) Gen.printable)))
    (fun rows ->
      let t = Table.create "p" [ ("n", Value.Tint); ("s", Value.Tstr) ] in
      List.iter (fun (n, s) -> Table.insert t [ vint n; vstr s ]) rows;
      let p = Query.Gt ("n", vint 10) in
      let r1 = Query.select p (Query.of_table t) in
      let r2 = Query.select p r1 in
      Query.count r1 = Query.count r2)

let prop_project_preserves_count =
  QCheck.Test.make ~name:"project preserves row count" ~count:100
    QCheck.(list_of_size Gen.(int_bound 20) small_int)
    (fun ns ->
      let t = Table.create "p" [ ("n", Value.Tint); ("m", Value.Tint) ] in
      List.iter (fun n -> Table.insert t [ vint n; vint (n * 2) ]) ns;
      let r = Query.of_table t in
      Query.count (Query.project [ "m" ] r) = Query.count r)

let prop_save_load_identity =
  QCheck.Test.make ~name:"db save/load identity" ~count:50
    QCheck.(list_of_size Gen.(int_bound 15)
              (pair (string_gen_of_size Gen.(int_bound 8) Gen.printable) small_int))
    (fun rows ->
      let db = Db.create () in
      let t = Db.create_table db "t" [ ("s", Value.Tstr); ("n", Value.Tint) ] in
      List.iter (fun (s, n) -> Table.insert t [ vstr s; vint n ]) rows;
      let path = Filename.temp_file "icdb_prop" ".db" in
      Db.save db path;
      let db' = Db.load path in
      Sys.remove path;
      let r = Query.of_table (Db.table db' "t") in
      let orig = Query.of_table t in
      Query.count r = Query.count orig
      && List.for_all2
           (fun a b -> Array.for_all2 Value.equal a b)
           orig.Query.rrows r.Query.rrows)

(* The index differential, end to end: randomized inserts and deletes
   against a journaled, indexed table; a fault-injected crash partway
   through the tail (the same ICDB_FAULT machinery icdbd uses, spec
   "journal_append:crash:N"); recovery by journal replay into a fresh
   process image; indexes re-declared (they are derived state, never
   journaled). At every stage, for every probe value — including the
   Int/Float coercion edges the planner special-cases — the indexed plan
   must return exactly what the scan returns. *)
let prop_indexed_equals_scan =
  let probes =
    [ vint 0; vint 3; vint 7; vfloat 0.0; vfloat 3.0; vfloat 2.5;
      vfloat 1e300; vstr "3" ]
  in
  let all_probes_agree tbl =
    List.for_all (fun v -> same_rows tbl (Query.Eq ("n", v))) probes
    && same_rows tbl
         (Query.And (Query.Eq ("n", vint 3), Query.Gt ("n", vint (-1))))
  in
  (* the plan kind EXPLAIN reports must be the plan that then executes:
     an Index Probe plan bumps exactly the indexed counter, a Seq Scan
     plan exactly the scan counter *)
  let plan_kind_matches db =
    let stmt = "SELECT * FROM t WHERE n = 3" in
    match Sql.exec_explained db ("EXPLAIN " ^ stmt) with
    | _, None -> false
    | _, Some plan -> (
        let ix0 = counter_value "reldb.select.indexed"
        and sc0 = counter_value "reldb.select.scan" in
        ignore (Sql.exec db stmt);
        let ix = counter_value "reldb.select.indexed" - ix0
        and sc = counter_value "reldb.select.scan" - sc0 in
        match plan.Plan.p_kind with
        | `Indexed -> ix = 1 && sc = 0
        | `Scan -> ix = 0 && sc = 1)
  in
  QCheck.Test.make
    ~name:"indexed select = scan across insert/delete/crash/replay" ~count:40
    QCheck.(
      triple
        (list_of_size Gen.(int_bound 25)
           (pair (int_bound 8) (string_gen_of_size Gen.(int_bound 4) Gen.printable)))
        (list_of_size Gen.(int_bound 8) (int_bound 8))
        (pair
           (list_of_size Gen.(int_bound 8)
              (pair (int_bound 8) (string_gen_of_size Gen.(int_bound 4) Gen.printable)))
           (int_bound 5)))
    (fun (inserts, deletes, (tail, crash_after)) ->
      let dir = Filename.temp_file "icdb_ixprop" "" in
      Sys.remove dir;
      Sys.mkdir dir 0o755;
      let jpath = Filename.concat dir "t.journal" in
      Fun.protect
        ~finally:(fun () ->
          Journal.append_hook := (fun () -> ());
          Icdb.Faultinject.reset ();
          Array.iter
            (fun f -> Sys.remove (Filename.concat dir f))
            (Sys.readdir dir);
          Sys.rmdir dir)
      @@ fun () ->
      let db = Db.create () in
      let j = Journal.open_append jpath in
      Db.attach_journal db j;
      (* create through the journal so replay can rebuild the table *)
      let tbl = Db.create_table db "t" [ ("n", Value.Tint); ("s", Value.Tstr) ] in
      Table.create_index tbl "n";
      List.iter (fun (n, s) -> Db.insert db "t" [ vint n; vstr s ]) inserts;
      List.iter
        (fun n ->
          ignore (Db.delete_where db "t" (fun r -> Value.equal r.(0) (vint n))))
        deletes;
      let live_ok = all_probes_agree tbl && plan_kind_matches db in
      (* crash partway through the tail writes, through the fault plane *)
      Journal.append_hook :=
        (fun () -> Icdb.Faultinject.hit Icdb.Faultinject.Journal_append);
      Icdb.Faultinject.arm_from_spec
        (Printf.sprintf "journal_append:crash:%d" (crash_after + 1));
      let crashed =
        try
          List.iter (fun (n, s) -> Db.insert db "t" [ vint n; vstr s ]) tail;
          false
        with Icdb.Faultinject.Crash _ -> true
      in
      Icdb.Faultinject.reset ();
      Journal.append_hook := (fun () -> ());
      ignore crashed;
      Journal.close j;
      (* reopen as a recovery would: replay, then re-declare the index *)
      let db2, _report = Db.recover ~journal_path:jpath () in
      let tbl2 = Db.table db2 "t" in
      let pre_index_rows = Table.cardinality tbl2 in
      Table.create_index tbl2 "n";
      live_ok && all_probes_agree tbl2 && plan_kind_matches db2
      && Table.cardinality tbl2 = pre_index_rows)

let props = List.map QCheck_alcotest.to_alcotest
    [ prop_value_roundtrip; prop_compare_reflexive; prop_compare_antisym;
      prop_select_idempotent; prop_project_preserves_count;
      prop_save_load_identity; prop_indexed_equals_scan ]

let () =
  Alcotest.run "reldb"
    [ ("value",
       [ Alcotest.test_case "encode/decode roundtrip" `Quick test_value_roundtrip;
         Alcotest.test_case "no cross-type equality" `Quick test_value_equal_across_types;
         Alcotest.test_case "total order" `Quick test_value_compare_total;
         Alcotest.test_case "escape injective" `Quick test_value_escape_injective ]);
      ("table",
       [ Alcotest.test_case "insert and rows" `Quick test_table_insert_and_rows;
         Alcotest.test_case "type mismatch" `Quick test_table_type_mismatch;
         Alcotest.test_case "arity mismatch" `Quick test_table_arity_mismatch;
         Alcotest.test_case "duplicate column" `Quick test_table_duplicate_column;
         Alcotest.test_case "insert_assoc" `Quick test_table_insert_assoc;
         Alcotest.test_case "insert_assoc missing" `Quick test_table_insert_assoc_missing;
         Alcotest.test_case "update" `Quick test_table_update;
         Alcotest.test_case "delete" `Quick test_table_delete;
         Alcotest.test_case "rows are copies" `Quick test_table_rows_are_copies;
         Alcotest.test_case "copy/restore" `Quick test_table_copy_restore ]);
      ("query",
       [ Alcotest.test_case "select eq" `Quick test_query_select_eq;
         Alcotest.test_case "numeric coercion" `Quick test_query_select_numeric_coercion;
         Alcotest.test_case "and/or/not" `Quick test_query_select_and_or_not;
         Alcotest.test_case "like" `Quick test_query_like;
         Alcotest.test_case "project reorders" `Quick test_query_project_reorders;
         Alcotest.test_case "order_by" `Quick test_query_order_by;
         Alcotest.test_case "join" `Quick test_query_join;
         Alcotest.test_case "join name collision" `Quick test_query_join_name_collision;
         Alcotest.test_case "distinct/limit" `Quick test_query_distinct_limit ]);
      ("db",
       [ Alcotest.test_case "rollback" `Quick test_db_rollback;
         Alcotest.test_case "commit" `Quick test_db_commit;
         Alcotest.test_case "nested tx" `Quick test_db_nested_tx;
         Alcotest.test_case "with_tx exn" `Quick test_db_with_tx_exn;
         Alcotest.test_case "save/load" `Quick test_db_save_load;
         Alcotest.test_case "missing table" `Quick test_db_missing_table ]);
      ("sql",
       [ Alcotest.test_case "select star" `Quick test_sql_select_star;
         Alcotest.test_case "select where" `Quick test_sql_select_where;
         Alcotest.test_case "or/parens" `Quick test_sql_select_or_parens;
         Alcotest.test_case "like" `Quick test_sql_like;
         Alcotest.test_case "order/limit" `Quick test_sql_order_limit;
         Alcotest.test_case "insert/update/delete" `Quick test_sql_insert_update_delete;
         Alcotest.test_case "case-insensitive keywords" `Quick test_sql_case_insensitive_keywords;
         Alcotest.test_case "syntax error" `Quick test_sql_syntax_error;
         Alcotest.test_case "string with spaces" `Quick test_sql_string_with_spaces ]);
      ("index",
       [ Alcotest.test_case "create/lookup/drop" `Quick test_index_basics;
         Alcotest.test_case "maintenance through mutation" `Quick test_index_maintenance;
         Alcotest.test_case "numeric coercion at the probe" `Quick test_index_numeric_coercion;
         Alcotest.test_case "only eq conjuncts push down" `Quick test_index_only_eq_conjuncts;
         Alcotest.test_case "unknown WHERE column is an error" `Quick test_where_unknown_column ]);
      ("pareto",
       [ Alcotest.test_case "frontier with ties" `Quick test_sql_pareto;
         Alcotest.test_case "dominated is the complement" `Quick test_sql_dominated_is_complement;
         Alcotest.test_case "where + limit" `Quick test_sql_pareto_where_limit;
         Alcotest.test_case "non-numeric objective" `Quick test_sql_pareto_non_numeric;
         Alcotest.test_case "create/drop index statements" `Quick test_sql_create_drop_index;
         Alcotest.test_case "unknown column names the table" `Quick test_sql_where_unknown_column_message ]);
      ("queryobs",
       [ Alcotest.test_case "golden EXPLAIN text" `Quick test_explain_golden;
         Alcotest.test_case "EXPLAIN ANALYZE actuals" `Quick test_explain_analyze_actuals;
         Alcotest.test_case "ANALYZE statistics values" `Quick test_sql_analyze_stats;
         Alcotest.test_case "statistics-driven index choice" `Quick test_stats_driven_choice;
         Alcotest.test_case "QUERY STATS aggregation/reset" `Quick test_query_stats_sql ]);
      ("properties", props) ]
