(* Tests for the design-space exploration subsystem: axis parsing and
   lattice expansion, the journaled results store (including
   crash-reopen), and the sweep driver — local, resumed, limited, and
   remote through the pipelined batch path, checked differentially
   against the local backend. *)

open Icdb_explore

let check = Alcotest.check

let quiet_events = lazy (Icdb_obs.Event.set_level Icdb_obs.Event.Error)

let tmpdir () =
  let d = Filename.temp_file "icdb_explore" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_store f =
  let dir = tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Axis                                                                *)
(* ------------------------------------------------------------------ *)

let test_axis_parse () =
  (match Axis.parse "size=2..5" with
  | Axis.Attr { name = "size"; values = [ 2; 3; 4; 5 ] } -> ()
  | _ -> Alcotest.fail "range");
  (match Axis.parse "size=2..9..3" with
  | Axis.Attr { name = "size"; values = [ 2; 5; 8 ] } -> ()
  | _ -> Alcotest.fail "stepped range");
  (match Axis.parse "size=8,2,4" with
  | Axis.Attr { name = "size"; values = [ 8; 2; 4 ] } -> ()
  | _ -> Alcotest.fail "list keeps declaration order");
  (match Axis.parse "strategy=fastest,balanced" with
  | Axis.Strategy [ Icdb_timing.Sizing.Fastest; Icdb_timing.Sizing.Balanced ] -> ()
  | _ -> Alcotest.fail "strategy");
  (match Axis.parse "clock=10,none" with
  | Axis.Clock [ Some 10.0; None ] -> ()
  | _ -> Alcotest.fail "clock with none");
  (match Axis.parse "delay=7.5,none" with
  | Axis.Delay [ Some 7.5; None ] -> ()
  | _ -> Alcotest.fail "delay")

let test_axis_parse_errors () =
  List.iter
    (fun bad ->
      try
        ignore (Axis.parse bad);
        Alcotest.failf "expected Axis_error on %s" bad
      with Axis.Axis_error _ -> ())
    [ "size"; "size="; "=2"; "size=9..2"; "size=2..9..0"; "size=a,b";
      "strategy=warp"; "clock=fast"; "size=2..999999" ]

let test_expand_deterministic () =
  let axes = [ Axis.parse "size=2,3"; Axis.parse "strategy=fastest,cheapest" ] in
  let pts = Axis.expand ~component:"counter" axes in
  check Alcotest.int "cartesian size" 4 (List.length pts);
  (* first axis varies slowest *)
  check Alcotest.(list (pair int string)) "order"
    [ (2, "fastest"); (2, "cheapest"); (3, "fastest"); (3, "cheapest") ]
    (List.map
       (fun p ->
         (List.assoc "size" p.Axis.p_attrs, Axis.strategy_name p.Axis.p_strategy))
       pts);
  let pts2 = Axis.expand ~component:"counter" axes in
  check Alcotest.(list string) "keys are stable"
    (List.map Axis.point_key pts) (List.map Axis.point_key pts2);
  let keys = List.sort_uniq String.compare (List.map Axis.point_key pts) in
  check Alcotest.int "keys are distinct" 4 (List.length keys)

let test_expand_bounds () =
  (try
     ignore
       (Axis.expand ~component:"c" [ Axis.parse "size=1,2"; Axis.parse "size=3,4" ]);
     Alcotest.fail "duplicate axis"
   with Axis.Axis_error _ -> ());
  try
    ignore
      (Axis.expand ~component:"c"
         [ Axis.parse "size=1..2000"; Axis.parse "type=1..2000" ]);
    Alcotest.fail "too many points"
  with Axis.Axis_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let sample_result p =
  { Store.r_point = p;
    r_instance = "i1";
    r_area = 10.0;
    r_delay = 2.0;
    r_power = 0.0;
    r_gates = 12;
    r_cache = "miss";
    r_latency_s = 0.001;
    r_degraded = false;
    r_constraints_met = true }

let points2 () =
  Axis.expand ~component:"counter" [ Axis.parse "size=2,3" ]

let test_store_persist_reopen () =
  with_store @@ fun dir ->
  let pts = points2 () in
  let s = Store.open_ dir in
  List.iter (fun p -> Store.add s ~sweep:"sw" (sample_result p)) pts;
  check Alcotest.int "count" 2 (Store.count s ~sweep:"sw");
  Store.close s;
  (* reopen without a checkpoint: rows come back from the journal *)
  let s2 = Store.open_ dir in
  check Alcotest.int "replayed" 2 (Store.count s2 ~sweep:"sw");
  let keys = Store.persisted_keys s2 ~sweep:"sw" in
  List.iter
    (fun p ->
      check Alcotest.bool "key persisted" true
        (Hashtbl.mem keys (Axis.point_key p)))
    pts;
  check Alcotest.int "other sweeps empty" 0 (Store.count s2 ~sweep:"other");
  Store.checkpoint s2;
  Store.close s2;
  let s3 = Store.open_ dir in
  check Alcotest.int "after checkpoint" 2 (Store.count s3 ~sweep:"sw");
  Store.close s3

let test_store_pareto_query () =
  with_store @@ fun dir ->
  let s = Store.open_ dir in
  List.iteri
    (fun i p ->
      Store.add s ~sweep:"sw"
        { (sample_result p) with
          r_instance = Printf.sprintf "i%d" i;
          r_area = (if i = 0 then 10.0 else 20.0);
          r_delay = (if i = 0 then 2.0 else 1.0) })
    (points2 ());
  (match
     Store.query s
       "PARETO exploration ON area, delay WHERE sweep = 'sw'"
   with
  | Icdb_reldb.Sql.Relation rel ->
      check Alcotest.int "both on frontier" 2 (List.length rel.Icdb_reldb.Query.rrows)
  | _ -> Alcotest.fail "expected relation");
  match Store.query s "DOMINATED exploration ON area, delay" with
  | Icdb_reldb.Sql.Relation rel ->
      check Alcotest.int "none dominated" 0 (List.length rel.Icdb_reldb.Query.rrows);
      Store.close s
  | _ -> Alcotest.fail "expected relation"

(* ------------------------------------------------------------------ *)
(* Driver: local backend                                               *)
(* ------------------------------------------------------------------ *)

let axes_small =
  [ "size=2,3,4"; "strategy=fastest,cheapest" ]

let expand_small () =
  Axis.expand ~component:"counter" (List.map Axis.parse axes_small)

let test_driver_local_sweep_and_resume () =
  Lazy.force quiet_events;
  with_store @@ fun dir ->
  let server = Icdb.Server.create ~verify:false () in
  let store = Store.open_ dir in
  let pts = expand_small () in
  let updates = ref 0 in
  let s =
    Driver.run ~sweep:"sw" ~on_progress:(fun _ -> incr updates)
      (Driver.Local server) store pts
  in
  check Alcotest.int "all executed" 6 s.Driver.s_executed;
  check Alcotest.int "none skipped" 0 s.Driver.s_skipped;
  check Alcotest.(list string) "no failures" []
    (List.map (fun f -> f.Driver.f_reason) s.Driver.s_failures);
  check Alcotest.int "every point persisted" 6 (Store.count store ~sweep:"sw");
  check Alcotest.bool "progress fired" true (!updates >= 7);
  (* rerun: resume recomputes nothing *)
  let s2 = Driver.run ~sweep:"sw" (Driver.Local server) store pts in
  check Alcotest.int "rerun executes nothing" 0 s2.Driver.s_executed;
  check Alcotest.int "rerun skips all" 6 s2.Driver.s_skipped;
  check Alcotest.int "no duplicate rows" 6 (Store.count store ~sweep:"sw");
  Store.close store

let test_driver_limit_then_finish () =
  Lazy.force quiet_events;
  with_store @@ fun dir ->
  let server = Icdb.Server.create ~verify:false () in
  let pts = expand_small () in
  (* partial run, store closed (killed) without checkpoint *)
  let store = Store.open_ dir in
  let s = Driver.run ~sweep:"sw" ~limit:2 (Driver.Local server) store pts in
  check Alcotest.int "limited" 2 s.Driver.s_executed;
  Store.close store;
  (* the rerun picks up exactly the remainder *)
  let store2 = Store.open_ dir in
  let s2 = Driver.run ~sweep:"sw" (Driver.Local server) store2 pts in
  check Alcotest.int "remainder executed" 4 s2.Driver.s_executed;
  check Alcotest.int "finished skipped" 2 s2.Driver.s_skipped;
  check Alcotest.int "complete" 6 (Store.count store2 ~sweep:"sw");
  Store.close store2

let test_driver_sweeps_are_disjoint () =
  Lazy.force quiet_events;
  with_store @@ fun dir ->
  let server = Icdb.Server.create ~verify:false () in
  let store = Store.open_ dir in
  let pts = points2 () in
  ignore (Driver.run ~sweep:"a" (Driver.Local server) store pts);
  (* the same points under another sweep name run again *)
  let s = Driver.run ~sweep:"b" (Driver.Local server) store pts in
  check Alcotest.int "other sweep reruns" 2 s.Driver.s_executed;
  check Alcotest.int "a kept" 2 (Store.count store ~sweep:"a");
  check Alcotest.int "b kept" 2 (Store.count store ~sweep:"b");
  Store.close store

(* ------------------------------------------------------------------ *)
(* Driver: remote backend, differential against local                  *)
(* ------------------------------------------------------------------ *)

let with_service f =
  Lazy.force quiet_events;
  let server = Icdb.Server.create ~verify:false () in
  let sync = Icdb_net.Sync.wrap server in
  let svc =
    Icdb_net.Service.start
      ~config:{ Icdb_net.Service.default_config with port = 0 }
      sync
  in
  Fun.protect
    ~finally:(fun () -> Icdb_net.Service.shutdown svc)
    (fun () -> f (Icdb_net.Service.port svc))

let row_metrics store sweep =
  match
    Store.query store
      (Printf.sprintf
         "SELECT spec_key, area, delay, gates FROM exploration WHERE sweep = %s"
         (Icdb_reldb.Sql.quote_string sweep))
  with
  | Icdb_reldb.Sql.Relation rel ->
      rel.Icdb_reldb.Query.rrows
      |> List.map (fun row ->
             Array.to_list (Array.map Icdb_reldb.Value.to_string row))
      |> List.sort compare
  | _ -> Alcotest.fail "expected relation"

let test_driver_remote_differential () =
  with_service @@ fun port ->
  with_store @@ fun dir ->
  let pts = expand_small () in
  let store = Store.open_ dir in
  (* local reference sweep *)
  let local_server = Icdb.Server.create ~verify:false () in
  let sl = Driver.run ~sweep:"local" (Driver.Local local_server) store pts in
  check Alcotest.int "local all" 6 sl.Driver.s_executed;
  (* remote sweep through the pipelined batch path, small frames to
     force several inflight windows *)
  let client = Icdb_net.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Icdb_net.Client.close client) @@ fun () ->
  let sr =
    Driver.run ~sweep:"remote"
      (Driver.Remote { client; batch = 2; inflight = 2 })
      store pts
  in
  check Alcotest.int "remote all" 6 sr.Driver.s_executed;
  check Alcotest.(list string) "remote no failures" []
    (List.map (fun f -> f.Driver.f_reason) sr.Driver.s_failures);
  (* identical figures of merit per spec key, both backends *)
  let strip l = List.map (function _ :: rest -> rest | [] -> []) l in
  let local_rows = row_metrics store "local" in
  let remote_rows = row_metrics store "remote" in
  check Alcotest.(list (list string)) "same keys"
    (List.map (fun r -> [ List.hd r ]) local_rows)
    (List.map (fun r -> [ List.hd r ]) remote_rows);
  check Alcotest.(list (list string)) "same area/delay/gates"
    (strip local_rows) (strip remote_rows);
  (* a remote rerun resumes off the persisted set like the local one *)
  let sr2 =
    Driver.run ~sweep:"remote"
      (Driver.Remote { client; batch = 2; inflight = 2 })
      store pts
  in
  check Alcotest.int "remote rerun skips" 6 sr2.Driver.s_skipped;
  Store.close store

let test_driver_remote_bad_point_isolated () =
  with_service @@ fun port ->
  with_store @@ fun dir ->
  let store = Store.open_ dir in
  let good = points2 () in
  let bad =
    { (List.hd good) with Axis.p_component = "no_such_component" }
  in
  let client = Icdb_net.Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Icdb_net.Client.close client) @@ fun () ->
  let s =
    Driver.run ~sweep:"sw"
      (Driver.Remote { client; batch = 4; inflight = 1 })
      store (bad :: good)
  in
  (* the bad entry fails inside its batch; the rest of the frame lands *)
  check Alcotest.int "good points executed" 2 s.Driver.s_executed;
  check Alcotest.int "one failure" 1 (List.length s.Driver.s_failures);
  check Alcotest.int "good rows persisted" 2 (Store.count store ~sweep:"sw");
  Store.close store

let () =
  Alcotest.run "explore"
    [ ("axis",
       [ Alcotest.test_case "parse" `Quick test_axis_parse;
         Alcotest.test_case "parse errors" `Quick test_axis_parse_errors;
         Alcotest.test_case "expand deterministic" `Quick test_expand_deterministic;
         Alcotest.test_case "expand bounds" `Quick test_expand_bounds ]);
      ("store",
       [ Alcotest.test_case "persist/reopen/checkpoint" `Quick test_store_persist_reopen;
         Alcotest.test_case "pareto query" `Quick test_store_pareto_query ]);
      ("driver-local",
       [ Alcotest.test_case "sweep then resume" `Quick test_driver_local_sweep_and_resume;
         Alcotest.test_case "limit then finish" `Quick test_driver_limit_then_finish;
         Alcotest.test_case "sweeps are disjoint" `Quick test_driver_sweeps_are_disjoint ]);
      ("driver-remote",
       [ Alcotest.test_case "differential vs local" `Quick test_driver_remote_differential;
         Alcotest.test_case "bad point isolated" `Quick test_driver_remote_bad_point_isolated ]) ]
