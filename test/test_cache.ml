(* The memoization safety net: the instance-reuse cache and synthesis
   memo must be observationally invisible — a cached answer has to be
   bit-identical (netlist dump) and figure-identical (report, area,
   gates) to what fresh generation would produce, across randomized
   attribute/constraint sweeps, after eviction, and after a durable
   reopen. Plus unit coverage for the LRU and Spec canonicalization. *)

open Icdb
open Icdb_netlist
open Icdb_timing

let check = Alcotest.check

(* Netlist identity up to the instance id baked into the name. *)
let dump_normalized inst =
  Vhdl.dump { inst.Instance.netlist with Netlist.name = "N" }

let same_answer label (a : Instance.t) (b : Instance.t) =
  check Alcotest.string (label ^ ": netlist dump") (dump_normalized a)
    (dump_normalized b);
  check Alcotest.bool (label ^ ": report") true
    (a.Instance.report = b.Instance.report);
  check (Alcotest.float 1e-9) (label ^ ": area") (Instance.best_area a)
    (Instance.best_area b);
  check Alcotest.int (label ^ ": gates") (Instance.gate_count a)
    (Instance.gate_count b);
  check Alcotest.bool (label ^ ": constraints_met")
    a.Instance.constraints_met b.Instance.constraints_met

(* ------------------------------------------------------------------ *)
(* LRU unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_lru_basics () =
  let l = Lru.create 3 in
  Lru.put l "a" 1;
  Lru.put l "b" 2;
  Lru.put l "c" 3;
  check Alcotest.int "full" 3 (Lru.length l);
  check (Alcotest.option Alcotest.int) "find b" (Some 2) (Lru.find l "b");
  Lru.put l "d" 4;
  (* "a" was least recently used ("b" was touched by find) *)
  check (Alcotest.option Alcotest.int) "a evicted" None (Lru.find l "a");
  check (Alcotest.option Alcotest.int) "b kept" (Some 2) (Lru.find l "b");
  check Alcotest.int "one eviction" 1 (Lru.evictions l);
  Lru.put l "b" 20;
  check (Alcotest.option Alcotest.int) "replace in place" (Some 20)
    (Lru.find l "b");
  check Alcotest.int "replace does not grow" 3 (Lru.length l);
  Lru.remove l "b";
  check Alcotest.int "remove shrinks" 2 (Lru.length l);
  check Alcotest.int "remove is not an eviction" 1 (Lru.evictions l);
  check Alcotest.bool "mem without touch" true (Lru.mem l "c");
  let keys = Lru.fold (fun k _ acc -> k :: acc) l [] in
  check Alcotest.int "fold sees all" 2 (List.length keys);
  Lru.clear l;
  check Alcotest.int "clear empties" 0 (Lru.length l);
  (try
     ignore (Lru.create 0);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_lru_eviction_order () =
  let l = Lru.create 2 in
  Lru.put l 1 "one";
  Lru.put l 2 "two";
  ignore (Lru.find l 1);  (* 1 becomes most recent *)
  Lru.put l 3 "three";    (* evicts 2 *)
  check Alcotest.bool "2 evicted" false (Lru.mem l 2);
  check Alcotest.bool "1 kept" true (Lru.mem l 1);
  check Alcotest.bool "3 kept" true (Lru.mem l 3)

(* ------------------------------------------------------------------ *)
(* Spec canonicalization (§2.2 cache-key hazard)                       *)
(* ------------------------------------------------------------------ *)

let counter_source attrs =
  Spec.From_component { component = "counter"; attributes = attrs; functions = [] }

let test_spec_attribute_order () =
  let a = Spec.make (counter_source [ ("size", 5); ("type", 2); ("load", 1) ]) in
  let b = Spec.make (counter_source [ ("load", 1); ("size", 5); ("type", 2) ]) in
  check Alcotest.bool "permuted attributes: equal specs" true (a = b);
  check Alcotest.string "permuted attributes: equal keys" (Spec.cache_key a)
    (Spec.cache_key b);
  check Alcotest.string "permuted attributes: equal hashes" (Spec.hash a)
    (Spec.hash b)

let test_spec_default_fill () =
  (* elided attributes vs the same values spelled out *)
  let elided = Spec.make (counter_source [ ("size", 5) ]) in
  let spelled =
    Spec.make
      (counter_source
         [ ("size", 5); ("type", 2); ("load", 1); ("enable", 1);
           ("up_or_down", 3); ("input_type", 1); ("output_type", 1);
           ("input_latch", 0); ("output_latch", 0); ("output_tri_state", 0) ])
  in
  check Alcotest.bool "default-filled equals spelled out" true
    (elided = spelled);
  check Alcotest.string "equal keys" (Spec.cache_key elided)
    (Spec.cache_key spelled);
  (* and the other direction: a non-default value must differ *)
  let other = Spec.make (counter_source [ ("size", 5); ("load", 0) ]) in
  check Alcotest.bool "non-default value differs" false (elided = other);
  check Alcotest.bool "non-default value: different keys" false
    (Spec.cache_key elided = Spec.cache_key other)

let test_spec_generator_normalized () =
  let implicit = Spec.make (counter_source [ ("size", 4) ]) in
  let explicit = Spec.make ~generator:"milo" (counter_source [ ("size", 4) ]) in
  let direct = Spec.make ~generator:"direct" (counter_source [ ("size", 4) ]) in
  check Alcotest.string "milo explicit = implicit" (Spec.cache_key implicit)
    (Spec.cache_key explicit);
  check Alcotest.bool "direct differs" false
    (Spec.cache_key implicit = Spec.cache_key direct)

let test_spec_constraint_normalization () =
  let c ls =
    { Sizing.default_constraints with
      Sizing.clock_width = Some 100.0;
      Sizing.port_loads = ls }
  in
  let a =
    Spec.make
      ~constraints:(c [ ("Q[1]", 2.0); ("Q[0]", 3.0) ])
      (counter_source [ ("size", 2) ])
  in
  let b =
    Spec.make
      ~constraints:(c [ ("Q[0]", 3.0); ("Q[1]", 2.0) ])
      (counter_source [ ("size", 2) ])
  in
  check Alcotest.string "port loads sorted into the key" (Spec.cache_key a)
    (Spec.cache_key b);
  check Alcotest.bool "structural key excludes constraints" true
    (Spec.structural_key a
     = Spec.structural_key (Spec.make (counter_source [ ("size", 2) ])));
  check Alcotest.bool "constraint key has no separator" true
    (not (String.contains (Spec.constraint_key a) '|'))

(* ------------------------------------------------------------------ *)
(* Exact-hit behavior and counters                                     *)
(* ------------------------------------------------------------------ *)

let test_exact_hit_stats () =
  let s = Server.create ~verify:false () in
  let spec = Spec.make (counter_source [ ("size", 4) ]) in
  let a = Server.request_component s spec in
  let b = Server.request_component s spec in
  (* permuted spelling of the same request is still an exact hit *)
  let c =
    Server.request_component s
      (Spec.make (counter_source [ ("type", 2); ("size", 4) ]))
  in
  check Alcotest.bool "same physical instance" true (a == b && b == c);
  let st = Server.stats s in
  check Alcotest.int "two hits" 2 st.Server.st_hits;
  check Alcotest.int "one miss" 1 st.Server.st_misses;
  check Alcotest.int "no reuse needed" 0 st.Server.st_reuse_hits;
  check Alcotest.int "one live entry" 1 st.Server.st_entries

(* ------------------------------------------------------------------ *)
(* §3.3 figure-based reuse                                             *)
(* ------------------------------------------------------------------ *)

let with_cw cw =
  { Sizing.default_constraints with Sizing.clock_width = Some cw }

let test_reuse_when_figures_meet () =
  let s = Server.create ~verify:false () in
  let a =
    Server.request_component s
      (Spec.make ~constraints:(with_cw 1000.0) (counter_source [ ("size", 4) ]))
  in
  check Alcotest.bool "loose bound met" true a.Instance.constraints_met;
  (* different constraints, same structure, figures already satisfy *)
  let b =
    Server.request_component s
      (Spec.make ~constraints:(with_cw 2000.0) (counter_source [ ("size", 4) ]))
  in
  check Alcotest.bool "reused the existing instance" true (a == b);
  let st = Server.stats s in
  check Alcotest.int "one reuse hit" 1 st.Server.st_reuse_hits;
  check Alcotest.int "one generation" 1 st.Server.st_misses;
  (* the aliased key is now an exact hit *)
  let b2 =
    Server.request_component s
      (Spec.make ~constraints:(with_cw 2000.0) (counter_source [ ("size", 4) ]))
  in
  check Alcotest.bool "alias cached" true (a == b2);
  check Alcotest.int "alias exact hit" 1 (Server.stats s).Server.st_hits

let test_no_reuse_when_figures_fail () =
  let s = Server.create ~verify:false () in
  let a =
    Server.request_component s
      (Spec.make ~constraints:(with_cw 1000.0) (counter_source [ ("size", 4) ]))
  in
  (* an unreachable bound: the existing figures cannot satisfy it *)
  let b =
    Server.request_component s
      (Spec.make ~constraints:(with_cw 0.001) (counter_source [ ("size", 4) ]))
  in
  check Alcotest.bool "not reused" true (a != b);
  check Alcotest.bool "fresh instance reports unmet" false
    b.Instance.constraints_met;
  check Alcotest.int "no reuse hit" 0 (Server.stats s).Server.st_reuse_hits;
  check Alcotest.int "two generations" 2 (Server.stats s).Server.st_misses

let test_no_reuse_across_strategy () =
  let s = Server.create ~verify:false () in
  let fast =
    { Sizing.default_constraints with Sizing.strategy = Sizing.Fastest }
  in
  let cheap =
    { Sizing.default_constraints with Sizing.strategy = Sizing.Cheapest }
  in
  let a =
    Server.request_component s
      (Spec.make ~constraints:fast (counter_source [ ("size", 4) ]))
  in
  let b =
    Server.request_component s
      (Spec.make ~constraints:cheap (counter_source [ ("size", 4) ]))
  in
  check Alcotest.bool "different sizing strategies never share" true (a != b)

(* The synthesis memo: even when constraints force regeneration, the
   expand→optimize→map→verify work is done once per flat design. *)
let test_synth_memo () =
  let s = Server.create () in
  ignore
    (Server.request_component s
       (Spec.make ~constraints:(with_cw 0.001) (counter_source [ ("size", 3) ])));
  ignore
    (Server.request_component s
       (Spec.make ~constraints:(with_cw 0.002) (counter_source [ ("size", 3) ])));
  let st = Server.stats s in
  check Alcotest.int "both requests generated" 2 st.Server.st_misses;
  check Alcotest.int "pipeline ran once" 1 st.Server.st_memo_misses;
  check Alcotest.int "memo served the second" 1 st.Server.st_memo_hits

(* ------------------------------------------------------------------ *)
(* Eviction: losing a cache entry never loses the instance             *)
(* ------------------------------------------------------------------ *)

let test_eviction_recovers_via_reuse () =
  let s = Server.create ~verify:false ~cache_capacity:4 () in
  let spec n = Spec.make (counter_source [ ("size", n) ]) in
  let first = Server.request_component s (spec 2) in
  List.iter (fun n -> ignore (Server.request_component s (spec n))) [ 3; 4; 5; 6; 7 ];
  let st = Server.stats s in
  check Alcotest.bool "evictions happened" true (st.Server.st_evictions >= 2);
  check Alcotest.int "bounded" 4 st.Server.st_entries;
  (* the first spec's key was evicted; the instance is still found
     through the structural index, not regenerated *)
  let again = Server.request_component s (spec 2) in
  check Alcotest.bool "same instance served" true (first == again);
  check Alcotest.int "via reuse, not generation" 6
    (Server.stats s).Server.st_misses

(* ------------------------------------------------------------------ *)
(* Randomized differential sweep: cached == fresh                      *)
(* ------------------------------------------------------------------ *)

(* Cheap-but-varied spec space: counters across their attribute grid,
   registers, adders, comparators and muxes, under randomized clock
   bounds and sizing strategies. *)
let random_spec st =
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let source =
    match Random.State.int st 5 with
    | 0 ->
        let typ = pick [ 1; 2 ] in
        let attrs =
          if typ = 1 then [ ("size", pick [ 2; 3; 4 ]); ("type", 1) ]
          else
            [ ("size", pick [ 2; 3 ]); ("type", 2);
              ("load", pick [ 0; 1 ]); ("enable", pick [ 0; 1 ]);
              ("up_or_down", pick [ 1; 3 ]) ]
        in
        counter_source attrs
    | 1 ->
        Spec.From_component
          { component = "register";
            attributes = [ ("size", pick [ 2; 3; 4; 5; 6 ]) ];
            functions = [] }
    | 2 ->
        Spec.From_component
          { component = "adder";
            attributes = [ ("size", pick [ 2; 3 ]) ];
            functions = [] }
    | 3 ->
        Spec.From_component
          { component = "comparator";
            attributes = [ ("size", pick [ 2; 3 ]) ];
            functions = [] }
    | _ ->
        Spec.From_component
          { component = "mux_scl";
            attributes = [ ("size", pick [ 2; 3; 4 ]) ];
            functions = [] }
  in
  let constraints =
    { Sizing.default_constraints with
      Sizing.clock_width =
        (match Random.State.int st 3 with
         | 0 -> None
         | _ -> Some (50.0 +. Random.State.float st 450.0));
      Sizing.strategy =
        pick [ Sizing.Balanced; Sizing.Fastest; Sizing.Cheapest ] }
  in
  Spec.make ~constraints source

(* The same request, spelled differently: attributes reversed and two
   universal defaults written out. Canonicalization must make it the
   same spec. *)
let respell spec =
  match spec.Spec.source with
  | Spec.From_component { component; attributes; functions } ->
      { spec with
        Spec.source =
          Spec.From_component
            { component;
              attributes =
                List.rev attributes
                @ [ ("output_type", 1); ("input_latch", 0) ];
              functions } }
  | _ -> spec

let test_differential_sweep () =
  let st = Random.State.make [| 0xCDB |] in
  (* distinct canonical keys, so the sweep genuinely covers >= 50
     different specifications *)
  let specs = Hashtbl.create 64 in
  while Hashtbl.length specs < 55 do
    let s = random_spec st in
    if not (Hashtbl.mem specs (Spec.cache_key s)) then
      Hashtbl.replace specs (Spec.cache_key s) s
  done;
  let specs = Hashtbl.fold (fun _ s acc -> s :: acc) specs [] in
  let warm = Server.create ~verify:false () in
  let fresh = Server.create ~verify:false () in
  List.iteri
    (fun i spec ->
      let label = Printf.sprintf "spec %d" i in
      let first = Server.request_component warm spec in
      (* a cache hit must return the very same instance, even through a
         differently spelled but equal request *)
      let hit = Server.request_component warm (respell spec) in
      check Alcotest.bool (label ^ ": hit is physical") true (first == hit);
      (* and must be indistinguishable from generating from scratch *)
      let scratch = Server.request_component fresh spec in
      same_answer label hit scratch)
    specs;
  let st_warm = Server.stats warm in
  check Alcotest.int "every respelled request hit" 55 st_warm.Server.st_hits;
  check Alcotest.int "each spec generated at most once" 55
    (st_warm.Server.st_misses + st_warm.Server.st_reuse_hits)

(* ------------------------------------------------------------------ *)
(* Durable reopen: the rebuilt cache serves identical answers          *)
(* ------------------------------------------------------------------ *)

let test_reopen_differential () =
  let st = Random.State.make [| 0xD0B |] in
  (* distinct structures: a same-structure pair could legitimately
     share one instance through §3.3 reuse, and only the creating
     request's key is persisted for reopen *)
  let specs = Hashtbl.create 16 in
  while Hashtbl.length specs < 8 do
    let s = random_spec st in
    if not (Hashtbl.mem specs (Spec.structural_key s)) then
      Hashtbl.replace specs (Spec.structural_key s) s
  done;
  let specs = Hashtbl.fold (fun _ s acc -> s :: acc) specs [] in
  let server = Server.create ~verify:false ~durable:true () in
  let ws = Server.workspace server in
  let originals = List.map (Server.request_component server) specs in
  (* abandon the process's memory; rebuild purely from the workspace *)
  let server2, r = Server.reopen ~verify:false ~workspace:ws () in
  check (Alcotest.list Alcotest.string) "nothing dropped" []
    (List.map snd r.Server.rr_dropped);
  List.iteri
    (fun i (spec, orig) ->
      let label = Printf.sprintf "reopened spec %d" i in
      let inst = Server.request_component server2 spec in
      check Alcotest.string (label ^ ": same id") orig.Instance.id
        inst.Instance.id;
      check Alcotest.string (label ^ ": netlist dump") (dump_normalized orig)
        (dump_normalized inst);
      check (Alcotest.float 1e-9) (label ^ ": area")
        (Instance.best_area orig) (Instance.best_area inst);
      check Alcotest.int (label ^ ": gates") (Instance.gate_count orig)
        (Instance.gate_count inst);
      check (Alcotest.float 1e-6) (label ^ ": clock width")
        orig.Instance.report.Sta.clock_width
        inst.Instance.report.Sta.clock_width)
    (List.combine specs originals);
  let st2 = Server.stats server2 in
  check Alcotest.int "all exact hits after reopen" 8 st2.Server.st_hits;
  check Alcotest.int "nothing regenerated" 0 st2.Server.st_misses

(* ------------------------------------------------------------------ *)
(* Warm speed: the acceptance floor                                    *)
(* ------------------------------------------------------------------ *)

let test_warm_speedup () =
  let s = Server.create ~verify:false () in
  let spec =
    Spec.make
      (counter_source
         [ ("size", 5); ("type", 2); ("load", 1); ("enable", 1);
           ("up_or_down", 3) ])
  in
  let t0 = Unix.gettimeofday () in
  let cold = Server.request_component s spec in
  let cold_t = Unix.gettimeofday () -. t0 in
  let reps = 50 in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Server.request_component s spec)
  done;
  let warm_t = (Unix.gettimeofday () -. t1) /. float_of_int reps in
  check Alcotest.bool "warm instance is the cached one" true
    (Server.request_component s spec == cold);
  check Alcotest.bool
    (Printf.sprintf "warm >= 10x faster (cold %.3f ms, warm %.3f ms)"
       (cold_t *. 1e3) (warm_t *. 1e3))
    true
    (cold_t >= 10.0 *. warm_t)

let () =
  Alcotest.run "cache"
    [ ("lru",
       [ Alcotest.test_case "basics" `Quick test_lru_basics;
         Alcotest.test_case "eviction order" `Quick test_lru_eviction_order ]);
      ("spec canonicalization",
       [ Alcotest.test_case "attribute order" `Quick test_spec_attribute_order;
         Alcotest.test_case "default fill" `Quick test_spec_default_fill;
         Alcotest.test_case "generator normalized" `Quick
           test_spec_generator_normalized;
         Alcotest.test_case "constraint normalization" `Quick
           test_spec_constraint_normalization ]);
      ("exact cache",
       [ Alcotest.test_case "hit stats" `Quick test_exact_hit_stats;
         Alcotest.test_case "eviction recovers via reuse" `Quick
           test_eviction_recovers_via_reuse ]);
      ("figure reuse",
       [ Alcotest.test_case "reuse when figures meet" `Quick
           test_reuse_when_figures_meet;
         Alcotest.test_case "no reuse when figures fail" `Quick
           test_no_reuse_when_figures_fail;
         Alcotest.test_case "no reuse across strategy" `Quick
           test_no_reuse_across_strategy;
         Alcotest.test_case "synthesis memo" `Quick test_synth_memo ]);
      ("differential",
       [ Alcotest.test_case "55 randomized specs" `Slow
           test_differential_sweep;
         Alcotest.test_case "durable reopen" `Quick test_reopen_differential;
         Alcotest.test_case "warm speedup" `Quick test_warm_speedup ]) ]
