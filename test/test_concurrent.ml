(* Concurrency stress for the locked server: many threads generating,
   querying and deleting through Sync at once must leave the cache
   counters consistent, the journal replayable, and the workspace free
   of torn files — the invariants the network layer's worker pool
   relies on. *)

open Icdb
open Icdb_net

let check = Alcotest.check

let quiet = lazy (Icdb_obs.Event.set_level Icdb_obs.Event.Error)

let counter_spec size =
  Spec.make
    (Spec.From_component
       { component = "counter";
         attributes = [ ("size", size) ];
         functions = [ Icdb_genus.Func.INC ] })

(* Every thread hammers one shared spec (exercising the hit path under
   contention) and owns one private spec it generates, queries and
   deletes each iteration (exercising generation, the CQL executor and
   delete-with-cache-purge). Counter bookkeeping is tallied locally and
   reconciled against Server.stats at the end. *)
let test_parallel_generate_query_delete () =
  Lazy.force quiet;
  let server = Server.create ~verify:false ~durable:true () in
  let ws = Server.workspace server in
  let sync = Sync.wrap server in
  let nthreads = 8 and iters = 4 in
  let failures = Atomic.make 0 in
  let requests = Atomic.make 0 in
  let run k =
    try
      for _ = 1 to iters do
        (* shared spec: at most one generation ever, hits afterwards *)
        let shared =
          Sync.with_server sync (fun s ->
              Server.request_component s (counter_spec 4))
        in
        Atomic.incr requests;
        check Alcotest.bool "shared instance served" true
          (String.length shared.Instance.id > 0);
        (* private spec: generate, query through CQL, then delete so the
           next iteration regenerates from scratch *)
        let mine =
          Sync.with_server sync (fun s ->
              Server.request_component s (counter_spec (10 + k)))
        in
        Atomic.incr requests;
        let r =
          Sync.with_server sync (fun s ->
              Icdb_cql.Exec.run s
                ~args:[ Icdb_cql.Exec.Astr mine.Instance.id ]
                "command:instance_query; instance:%s; gates:?d")
        in
        (match List.assoc_opt "gates" r with
         | Some (Icdb_cql.Exec.Rint g) ->
             check Alcotest.bool "gates positive" true (g > 0)
         | _ -> Alcotest.fail "instance_query shape");
        Sync.with_server sync (fun s ->
            Server.delete_instance s mine.Instance.id)
      done
    with e ->
      Printf.eprintf "thread %d: %s\n%!" k (Printexc.to_string e);
      Atomic.incr failures
  in
  let threads = List.init nthreads (fun k -> Thread.create run k) in
  List.iter Thread.join threads;
  check Alcotest.int "no thread failed" 0 (Atomic.get failures);
  (* cache counters: every request_component is exactly one of
     hit / reuse hit / miss *)
  let st = Sync.with_server sync Server.stats in
  check Alcotest.int "counters account for every request"
    (Atomic.get requests)
    (st.Server.st_hits + st.Server.st_reuse_hits + st.Server.st_misses);
  (* private instances were deleted every iteration: each of the
     nthreads private specs regenerated iters times, the shared spec
     once — all misses; nothing else ran the pipeline *)
  check Alcotest.int "misses match regeneration count"
    ((nthreads * iters) + 1)
    st.Server.st_misses;
  (* only the shared instance remains live *)
  let ids = Sync.with_server sync Server.instance_ids in
  check Alcotest.int "only the shared instance survives" 1 (List.length ids);
  (* the workspace holds no torn temp files *)
  check Alcotest.bool "no .tmp litter" true
    (Array.for_all
       (fun f -> not (Filename.check_suffix f ".tmp"))
       (Sys.readdir ws));
  (* and the journal replays to exactly the live state *)
  Sync.with_server sync Server.checkpoint;
  let server2, report = Server.reopen ~verify:false ~workspace:ws () in
  check Alcotest.bool "no torn tail" false report.Server.rr_torn_tail;
  check (Alcotest.list Alcotest.string) "nothing dropped" []
    (List.map snd report.Server.rr_dropped);
  check
    (Alcotest.list Alcotest.string)
    "reopen sees the same instances"
    (List.sort String.compare ids)
    (Server.instance_ids server2)

(* Unsynchronized sanity: with_server really excludes — a writer
   incrementing a plain counter inside the lock is never interleaved. *)
let test_with_server_mutual_exclusion () =
  Lazy.force quiet;
  let server = Server.create ~verify:false () in
  let sync = Sync.wrap server in
  let shared = ref 0 in
  let iters = 10_000 in
  let run () =
    for _ = 1 to iters do
      Sync.with_server sync (fun _ ->
          let v = !shared in
          Thread.yield ();
          shared := v + 1)
    done
  in
  let threads = List.init 4 (fun _ -> Thread.create run ()) in
  List.iter Thread.join threads;
  check Alcotest.int "no lost updates" (4 * iters) !shared

let () =
  Alcotest.run "concurrent"
    [ ( "server",
        [ Alcotest.test_case "parallel generate/query/delete" `Quick
            test_parallel_generate_query_delete;
          Alcotest.test_case "with_server excludes" `Quick
            test_with_server_mutual_exclusion ] ) ]
