(* Replication tests: a follower bootstraps from a checkpoint, streams
   the primary's journal, survives restarts on either side and injected
   faults at the streaming and replay sites, refuses writes, and gates
   its /readyz on replication lag. The differential tests assert the
   strongest property we have: after the stream drains, the follower
   answers CQL and SQL byte-identically to the primary. *)

open Icdb
open Icdb_net

let check = Alcotest.check

let quiet_events = lazy (Icdb_obs.Event.set_level Icdb_obs.Event.Error)

(* A path that does not exist yet; Replica.create makes the directory. *)
let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  path

(* A durable primary with its lock wrapper exposed: the tests need the
   journal cursor and checkpoints under the same lock the service uses. *)
let with_primary ?(config = Service.default_config) f =
  Lazy.force quiet_events;
  let server = Server.create ~verify:false ~durable:true () in
  let sync = Sync.wrap server in
  let svc = Service.start ~config:{ config with port = 0 } sync in
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () -> f svc (Service.port svc) sync)

let primary_next sync =
  Sync.with_server sync (fun server ->
      match Icdb_reldb.Db.journal (Server.db server) with
      | Some j -> Icdb_reldb.Journal.next_seq j
      | None -> 0)

let wait_for ?(timeout = 30.0) ~what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  if not (pred ()) then Alcotest.failf "timed out waiting for %s" what

(* Caught up = connected and the local journal has every record the
   primary had when we looked. *)
let wait_caught_up ?timeout replica psync =
  let target = primary_next psync in
  wait_for ?timeout ~what:"follower catch-up" (fun () ->
      Replica.connected replica && Replica.cursor replica >= target)

let with_client ~port f =
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ok_exec client ?args text =
  match Client.exec client ?args text with
  | Ok results -> results
  | Error (code, msg) ->
      Alcotest.failf "%s failed: %s: %s" text
        (Wire.error_code_to_string code) msg

let get_str results name =
  match List.assoc_opt name results with
  | Some (Icdb_cql.Exec.Rstr s) -> s
  | _ -> Alcotest.failf "no string binding %s" name

(* ------------------------------------------------------------------ *)
(* Differential probes                                                 *)
(* ------------------------------------------------------------------ *)

(* Every instances column except [file], whose value is a primary-side
   path: identical bytes in the replicated row, but comparing it would
   prove nothing about the follower's own workspace. *)
let instances_sql =
  "SELECT id, component, gates, area, clock_width, constraints_met, \
   degraded, spec_key FROM instances"

let instance_rows port =
  with_client ~port @@ fun c ->
  match Client.sql c instances_sql with
  | Ok (Wire.Relation { rows; _ }) -> List.sort compare rows
  | Ok _ -> Alcotest.fail "instances query returned no relation"
  | Error (_, msg) -> Alcotest.failf "sql failed: %s" msg

let instance_ids port =
  with_client ~port @@ fun c ->
  match Client.sql c "SELECT id FROM instances" with
  | Ok (Wire.Relation { rows; _ }) ->
      List.sort compare (List.concat rows)
  | Ok _ -> Alcotest.fail "id query returned no relation"
  | Error (_, msg) -> Alcotest.failf "sql failed: %s" msg

let instance_fields port id =
  with_client ~port @@ fun c ->
  ok_exec c ~args:[ Icdb_cql.Exec.Astr id ]
    "command:instance_query; instance:%s; delay:?s; gates:?d; \
     area_value:?r; shape_function:?s; VHDL_net_list:?s"

(* The follower must be indistinguishable from the primary: same rows,
   same instances, and field-for-field identical CQL answers. *)
let assert_identical ~pport ~fport =
  let prows = instance_rows pport and frows = instance_rows fport in
  check Alcotest.bool "instances relation identical" true (prows = frows);
  let pids = instance_ids pport in
  check Alcotest.bool "some instances survived" true (pids <> []);
  List.iter
    (fun id ->
      let p = instance_fields pport id and f = instance_fields fport id in
      check Alcotest.bool
        (Printf.sprintf "instance %s answers identically" id)
        true (p = f))
    pids

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let components = [| ("counter", ""); ("adder", ""); ("comparator", "") |]
let sizes = [| 2; 3; 4; 5; 8 |]
let design_counter = ref 0

(* One randomized design round: generate a few instances inside a
   transaction, keep a random subset, and sometimes tear the whole
   design down — exercising both Insert and Delete journal records. *)
let workload_round rng client =
  incr design_counter;
  let design = Printf.sprintf "repl_d%d" !design_counter in
  let run text = ignore (ok_exec client text) in
  run (Printf.sprintf "command:start_a_design; design:%s" design);
  run (Printf.sprintf "command:start_a_transaction; design:%s" design);
  let made = ref [] in
  for _ = 1 to 1 + Random.State.int rng 2 do
    let name, _ = components.(Random.State.int rng (Array.length components)) in
    let size = sizes.(Random.State.int rng (Array.length sizes)) in
    let r =
      ok_exec client
        (Printf.sprintf
           "command:request_component; component_name:%s; \
            attribute:(size:%d); instance:?s"
           name size)
    in
    made := get_str r "instance" :: !made
  done;
  List.iter
    (fun id ->
      if Random.State.bool rng then
        ignore
          (ok_exec client
             ~args:[ Icdb_cql.Exec.Astr id ]
             (Printf.sprintf
                "command:put_in_component_list; design:%s; instance:%%s"
                design)))
    !made;
  run (Printf.sprintf "command:end_a_transaction; design:%s" design);
  if Random.State.int rng 3 = 0 then
    run (Printf.sprintf "command:end_a_design; design:%s" design)

let workload rng client rounds =
  for _ = 1 to rounds do
    workload_round rng client
  done

(* ------------------------------------------------------------------ *)
(* Checkpoint bootstrap                                                *)
(* ------------------------------------------------------------------ *)

(* A virgin follower whose primary already checkpointed must fetch the
   checkpoint (its cursor predates the journal window), then stream,
   and end up byte-identical. *)
let test_checkpoint_bootstrap () =
  with_primary @@ fun _psvc pport psync ->
  let rng = Random.State.make [| 11 |] in
  with_client ~port:pport (fun c -> workload rng c 4);
  (* absorb the journal: the window now starts at the checkpoint *)
  Sync.with_server psync Server.checkpoint;
  let ws = fresh_dir "icdb_repl_boot" in
  let rcfg = { Replica.default_config with port = pport } in
  let replica = Replica.create ~config:rcfg ~workspace:ws () in
  Fun.protect ~finally:(fun () -> Replica.stop replica) @@ fun () ->
  Replica.run replica;
  (* keep writing after the checkpoint: the stream part of catch-up *)
  with_client ~port:pport (fun c -> workload rng c 2);
  wait_caught_up replica psync;
  let fsvc =
    Service.start
      ~config:{ Service.default_config with port = 0; read_only = true }
      (Replica.sync replica)
  in
  Fun.protect ~finally:(fun () -> Service.shutdown fsvc) @@ fun () ->
  assert_identical ~pport ~fport:(Service.port fsvc)

(* ------------------------------------------------------------------ *)
(* Differential workload with a follower restart mid-catch-up          *)
(* ------------------------------------------------------------------ *)

let test_differential_restart () =
  with_primary @@ fun _psvc pport psync ->
  let rng = Random.State.make [| 42 |] in
  let ws = fresh_dir "icdb_repl_diff" in
  let rcfg = { Replica.default_config with port = pport } in
  (* first life: stream from a virgin workspace while writes flow *)
  let r1 = Replica.create ~config:rcfg ~workspace:ws () in
  Replica.run r1;
  with_client ~port:pport (fun c -> workload rng c 5);
  (* stop mid-catch-up — r1 may or may not have drained; the point is
     the second life resumes from whatever its journal holds *)
  Replica.stop r1;
  with_client ~port:pport (fun c -> workload rng c 5);
  (* force the primary's window past the stopped follower's cursor, so
     the restart must also handle a mid-life checkpoint re-sync *)
  Sync.with_server psync Server.checkpoint;
  with_client ~port:pport (fun c -> workload rng c 2);
  let r2 = Replica.create ~config:rcfg ~workspace:ws () in
  Fun.protect ~finally:(fun () -> Replica.stop r2) @@ fun () ->
  Replica.run r2;
  wait_caught_up r2 psync;
  let fsvc =
    Service.start
      ~config:{ Service.default_config with port = 0; read_only = true }
      (Replica.sync r2)
  in
  Fun.protect ~finally:(fun () -> Service.shutdown fsvc) @@ fun () ->
  assert_identical ~pport ~fport:(Service.port fsvc)

(* ------------------------------------------------------------------ *)
(* Read-only enforcement                                               *)
(* ------------------------------------------------------------------ *)

let test_read_only () =
  Lazy.force quiet_events;
  let server = Server.create ~verify:false ~durable:true () in
  (* seed one instance while still writable, for the read probes *)
  let inst =
    Icdb_cql.Exec.get_string
      (Icdb_cql.Exec.run server
         "command:request_component; component_name:counter; \
          attribute:(size:4); instance:?s")
      "instance"
  in
  let sync = Sync.wrap server in
  let svc =
    Service.start
      ~config:{ Service.default_config with port = 0; read_only = true }
      sync
  in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  with_client ~port:(Service.port svc) @@ fun c ->
  (* every mutating CQL command bounces with the structured code *)
  List.iter
    (fun text ->
      match Client.exec c text with
      | Error (Wire.Read_only, msg) ->
          check Alcotest.bool "names the command" true
            (String.length msg > 0)
      | Error (code, msg) ->
          Alcotest.failf "%s: wrong code %s: %s" text
            (Wire.error_code_to_string code) msg
      | Ok _ -> Alcotest.failf "%s succeeded on a follower" text)
    [ "command:request_component; component_name:counter; \
       attribute:(size:4); instance:?s";
      "command:start_a_design; design:chip";
      "command:start_a_transaction; design:chip";
      "command:put_in_component_list; design:chip; instance:x";
      "command:end_a_transaction; design:chip";
      "command:end_a_design; design:chip" ];
  (* mutating SQL bounces too *)
  (match Client.sql c "DELETE FROM instances" with
   | Error (Wire.Read_only, _) -> ()
   | Error (code, _) ->
       Alcotest.failf "DELETE: wrong code %s"
         (Wire.error_code_to_string code)
   | Ok _ -> Alcotest.fail "DELETE succeeded on a follower");
  (* reads still work *)
  let r =
    ok_exec c ~args:[ Icdb_cql.Exec.Astr inst ]
      "command:instance_query; instance:%s; gates:?d"
  in
  check Alcotest.bool "instance_query allowed" true (r <> []);
  (match Client.sql c "SELECT id FROM instances" with
   | Ok (Wire.Relation { rows; _ }) ->
       check Alcotest.int "select allowed" 1 (List.length rows)
   | _ -> Alcotest.fail "SELECT failed on a follower");
  (* a follower does not fan out: subscribing to it is refused *)
  match Client.call c (Wire.Subscribe { cursor = 0 }) with
  | Wire.Repl_error _ -> ()
  | _ -> Alcotest.fail "subscribe to a follower not refused"

(* ------------------------------------------------------------------ *)
(* Fault injection at the streaming and replay sites                   *)
(* ------------------------------------------------------------------ *)

let with_faults f = Fun.protect ~finally:Faultinject.reset f

(* Transient faults in the primary's journal tail-read and the
   follower's replay must heal: the publisher retries its tick, the
   follower reconnects, and catch-up still completes. *)
let test_fault_healing () =
  with_faults @@ fun () ->
  with_primary @@ fun _psvc pport psync ->
  let rng = Random.State.make [| 7 |] in
  let ws = fresh_dir "icdb_repl_fault" in
  let rcfg = { Replica.default_config with port = pport } in
  let replica = Replica.create ~config:rcfg ~workspace:ws () in
  Fun.protect ~finally:(fun () -> Replica.stop replica) @@ fun () ->
  Replica.run replica;
  wait_caught_up replica psync;
  Faultinject.arm Faultinject.Journal_stream
    (Faultinject.Fail (2, Fault.Transient));
  Faultinject.arm Faultinject.Repl_replay
    (Faultinject.Fail (1, Fault.Transient));
  with_client ~port:pport (fun c -> workload rng c 3);
  wait_caught_up replica psync;
  check Alcotest.bool "journal_stream site fired" true
    (Faultinject.hits Faultinject.Journal_stream > 0);
  check Alcotest.bool "repl_replay site fired" true
    (Faultinject.hits Faultinject.Repl_replay > 0);
  let fsvc =
    Service.start
      ~config:{ Service.default_config with port = 0; read_only = true }
      (Replica.sync replica)
  in
  Fun.protect ~finally:(fun () -> Service.shutdown fsvc) @@ fun () ->
  assert_identical ~pport ~fport:(Service.port fsvc)

(* ------------------------------------------------------------------ *)
(* Lag-gated readiness                                                 *)
(* ------------------------------------------------------------------ *)

let test_readyz_gating () =
  with_primary @@ fun _psvc pport psync ->
  with_client ~port:pport (fun c ->
      ignore
        (ok_exec c
           "command:request_component; component_name:counter; \
            attribute:(size:4); instance:?s"));
  let ws = fresh_dir "icdb_repl_ready" in
  let rcfg = { Replica.default_config with port = pport } in
  let replica = Replica.create ~config:rcfg ~workspace:ws () in
  Fun.protect ~finally:(fun () -> Replica.stop replica) @@ fun () ->
  let fsvc =
    Service.start
      ~config:{ Service.default_config with port = 0; read_only = true }
      (Replica.sync replica)
  in
  Fun.protect ~finally:(fun () -> Service.shutdown fsvc) @@ fun () ->
  let admin =
    Admin.start ~replica ~port:0 ~service:fsvc ~sync:(Replica.sync replica) ()
  in
  Fun.protect ~finally:(fun () -> Admin.stop admin) @@ fun () ->
  let aport = Admin.port admin in
  (* stream not started: not connected, so not ready *)
  let status, body = Icdb_obs.Expo.http_get ~port:aport "/readyz" in
  check Alcotest.int "not ready before the stream starts" 503 status;
  check Alcotest.bool "repl_connected is the failing check" true
    (let rec contains i =
       i + 19 <= String.length body
       && (String.sub body i 19 = "repl_connected FAIL" || contains (i + 1))
     in
     contains 0);
  (* start the stream: readiness flips once the lag drains *)
  Replica.run replica;
  wait_for ~what:"/readyz 200" (fun () ->
      fst (Icdb_obs.Expo.http_get ~port:aport "/readyz") = 200);
  ignore (primary_next psync)

(* ------------------------------------------------------------------ *)
(* Primary restart: the follower reconnects and drains the rest        *)
(* ------------------------------------------------------------------ *)

let test_primary_restart () =
  Lazy.force quiet_events;
  let server = Server.create ~verify:false ~durable:true () in
  let sync = Sync.wrap server in
  let svc1 =
    Service.start ~config:{ Service.default_config with port = 0 } sync
  in
  let pport = Service.port svc1 in
  let rng = Random.State.make [| 3 |] in
  with_client ~port:pport (fun c -> workload rng c 2);
  let ws = fresh_dir "icdb_repl_prestart" in
  let rcfg = { Replica.default_config with port = pport } in
  let replica = Replica.create ~config:rcfg ~workspace:ws () in
  Fun.protect ~finally:(fun () -> Replica.stop replica) @@ fun () ->
  Replica.run replica;
  wait_caught_up replica sync;
  (* take the primary's service down; its server (and journal) survive *)
  Service.shutdown svc1;
  wait_for ~what:"follower to notice the outage" (fun () ->
      not (Replica.connected replica));
  (* bring it back on the same port and keep writing *)
  let svc2 =
    Service.start ~config:{ Service.default_config with port = pport } sync
  in
  Fun.protect ~finally:(fun () -> Service.shutdown svc2) @@ fun () ->
  with_client ~port:pport (fun c -> workload rng c 2);
  wait_caught_up ~timeout:60.0 replica sync;
  let fsvc =
    Service.start
      ~config:{ Service.default_config with port = 0; read_only = true }
      (Replica.sync replica)
  in
  Fun.protect ~finally:(fun () -> Service.shutdown fsvc) @@ fun () ->
  assert_identical ~pport ~fport:(Service.port fsvc)

let () =
  Alcotest.run "repl"
    [ ( "replication",
        [ Alcotest.test_case "checkpoint bootstrap" `Quick
            test_checkpoint_bootstrap;
          Alcotest.test_case "differential restart" `Quick
            test_differential_restart;
          Alcotest.test_case "read-only follower" `Quick test_read_only;
          Alcotest.test_case "fault healing" `Quick test_fault_healing;
          Alcotest.test_case "readyz gating" `Quick test_readyz_gating;
          Alcotest.test_case "primary restart" `Quick test_primary_restart ] ) ]
