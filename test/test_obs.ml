(* The observability subsystem: span nesting and ordering, histogram
   percentile accuracy, event sinks, the disabled-mode no-op guarantee,
   and — end to end — that a traced [Server.request_component] yields a
   span tree covering every phase of the generation path exactly once
   and exports as well-formed Chrome trace_event JSON. *)

open Icdb
module Trace = Icdb_obs.Trace
module Metrics = Icdb_obs.Metrics
module Event = Icdb_obs.Event

let check = Alcotest.check

(* Tracing state is global; every test starts from a clean slate and
   leaves tracing off for its neighbours. *)
let with_tracing f () =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect ~finally:(fun () -> Trace.set_enabled false; Trace.reset ()) f

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting =
  with_tracing @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner_a" (fun () -> ());
      Trace.with_span "inner_b" (fun () ->
          Trace.with_span "leaf" (fun () -> ())));
  let spans = Trace.all_finished () in
  check Alcotest.int "four spans" 4 (List.length spans);
  (* completion order: children before parents *)
  check (Alcotest.list Alcotest.string) "completion order"
    [ "inner_a"; "leaf"; "inner_b"; "outer" ]
    (List.map (fun s -> s.Trace.sname) spans);
  let find name = List.find (fun s -> s.Trace.sname = name) spans in
  let outer = find "outer" in
  check Alcotest.(option int) "outer is a root" None outer.Trace.sparent;
  check Alcotest.(option int) "inner_a under outer" (Some outer.Trace.sid)
    (find "inner_a").Trace.sparent;
  check Alcotest.(option int) "inner_b under outer" (Some outer.Trace.sid)
    (find "inner_b").Trace.sparent;
  check Alcotest.(option int) "leaf under inner_b"
    (Some (find "inner_b").Trace.sid)
    (find "leaf").Trace.sparent;
  (* intervals: children contained in the parent *)
  List.iter
    (fun name ->
      let c = find name in
      check Alcotest.bool (name ^ " starts after outer") true
        (c.Trace.sstart_ns >= outer.Trace.sstart_ns);
      check Alcotest.bool (name ^ " ends before outer") true
        (c.Trace.sstart_ns + c.Trace.sdur_ns
         <= outer.Trace.sstart_ns + outer.Trace.sdur_ns))
    [ "inner_a"; "inner_b"; "leaf" ]

let test_span_attrs_and_exceptions =
  with_tracing @@ fun () ->
  (try
     Trace.with_span "failing" (fun () ->
         Trace.add_attr "k" "v";
         failwith "boom")
   with Failure _ -> ());
  match Trace.all_finished () with
  | [ s ] ->
      check Alcotest.string "span closed by the exception" "failing"
        s.Trace.sname;
      check Alcotest.bool "duration recorded" true (s.Trace.sdur_ns >= 0);
      check Alcotest.(option string) "attribute survived" (Some "v")
        (List.assoc_opt "k" s.Trace.sattrs)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_ring_bounds =
  with_tracing @@ fun () ->
  let saved = Trace.capacity () in
  Trace.set_capacity 8;
  Fun.protect
    ~finally:(fun () -> Trace.set_capacity saved)
    (fun () ->
      for i = 1 to 20 do
        Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
      done;
      let spans = Trace.all_finished () in
      check Alcotest.int "ring keeps the last 8" 8 (List.length spans);
      check (Alcotest.list Alcotest.string) "most recent retained, in order"
        [ "s13"; "s14"; "s15"; "s16"; "s17"; "s18"; "s19"; "s20" ]
        (List.map (fun s -> s.Trace.sname) spans);
      check Alcotest.int "total keeps counting" 20 (Trace.finished_count ()))

let test_disabled_noop () =
  Trace.set_enabled false;
  Trace.reset ();
  let before = Trace.finished_count () in
  let ran = ref 0 in
  Trace.with_span "ghost" (fun () ->
      incr ran;
      Trace.add_attr "k" "v");
  check Alcotest.int "body ran" 1 !ran;
  check Alcotest.int "nothing recorded" before (Trace.finished_count ());
  check Alcotest.bool "disabled stays disabled" false (Trace.enabled ())

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_percentiles () =
  let h = Metrics.make_histogram "t" in
  (* 1..100 ms: percentiles are known exactly, the log-scale buckets
     carry a bounded ~13% relative error *)
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i *. 1e-3)
  done;
  let s = Metrics.summary h in
  check Alcotest.int "count" 100 s.Metrics.s_count;
  check (Alcotest.float 1e-9) "min" 1e-3 s.Metrics.s_min;
  check (Alcotest.float 1e-9) "max" 0.1 s.Metrics.s_max;
  let close name expected actual =
    check Alcotest.bool
      (Printf.sprintf "%s: %.4f within 15%% of %.4f" name actual expected)
      true
      (Float.abs (actual -. expected) /. expected < 0.15)
  in
  close "p50" 0.050 s.Metrics.s_p50;
  close "p90" 0.090 s.Metrics.s_p90;
  close "p99" 0.099 s.Metrics.s_p99;
  check (Alcotest.float 1e-6) "mean is exact (tracked outside buckets)"
    0.0505 s.Metrics.s_mean

let test_histogram_single_value () =
  let h = Metrics.make_histogram "one" in
  Metrics.observe h 0.042;
  let s = Metrics.summary h in
  (* clamping to [min, max] makes a single-valued distribution exact *)
  check (Alcotest.float 1e-9) "p50 exact" 0.042 s.Metrics.s_p50;
  check (Alcotest.float 1e-9) "p99 exact" 0.042 s.Metrics.s_p99

let test_counters () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "c" in
  Metrics.incr c;
  Metrics.incr ~by:5 c;
  check Alcotest.int "counter adds up" 6 (Metrics.counter_value c);
  check Alcotest.bool "get-or-create returns the same instrument" true
    (Metrics.counter ~registry:r "c" == c);
  Metrics.reset r;
  check Alcotest.int "reset zeroes in place" 0 (Metrics.counter_value c)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let test_ring_sink () =
  let sink, read = Event.ring_sink 4 in
  let saved = Event.level () in
  Event.set_level Event.Debug;
  let id = Event.add_sink sink in
  Fun.protect
    ~finally:(fun () -> Event.remove_sink id; Event.set_level saved)
    (fun () ->
      for i = 1 to 10 do
        Event.emit Event.Info ~fields:[ ("i", string_of_int i) ] "tick"
      done;
      let events = read () in
      check Alcotest.int "ring keeps the last 4" 4 (List.length events);
      check (Alcotest.list Alcotest.string) "oldest first"
        [ "7"; "8"; "9"; "10" ]
        (List.map (fun e -> List.assoc "i" e.Event.ev_fields) events))

let test_event_threshold () =
  let sink, read = Event.ring_sink 8 in
  let saved = Event.level () in
  Event.set_level Event.Warn;
  let id = Event.add_sink sink in
  Fun.protect
    ~finally:(fun () -> Event.remove_sink id; Event.set_level saved)
    (fun () ->
      Event.emit Event.Debug "below";
      Event.emit Event.Info "below";
      Event.emit Event.Warn "kept";
      Event.emit Event.Error "kept";
      check Alcotest.int "threshold filters" 2 (List.length (read ()));
      check Alcotest.bool "no sink for debug at warn threshold" false
        (Event.enabled Event.Debug))

(* ------------------------------------------------------------------ *)
(* Chrome export: well-formedness without a JSON library               *)
(* ------------------------------------------------------------------ *)

(* A tiny structural validator: balanced braces/brackets outside
   strings, correct escaping inside them. Enough to catch a malformed
   export without pulling in a parser dependency. *)
let json_well_formed s =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  let ok = ref true in
  String.iter
    (fun c ->
      if !in_str then
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_str := false
        else if c = '\n' then ok := false
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> Stdlib.incr depth
        | '}' | ']' ->
            Stdlib.decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let test_chrome_export =
  with_tracing @@ fun () ->
  Trace.with_span "root" (fun () ->
      Trace.add_attr "quote" "say \"hi\"\nand newline";
      Trace.with_span "child" (fun () -> ()));
  let json = Trace.export_chrome () in
  check Alcotest.bool "balanced and escaped" true (json_well_formed json);
  let has needle =
    let nn = String.length needle and ns = String.length json in
    let rec at i = i + nn <= ns && (String.sub json i nn = needle || at (i + 1)) in
    at 0
  in
  check Alcotest.bool "complete events" true (has "\"ph\":\"X\"");
  check Alcotest.bool "both spans named" true
    (has "\"name\":\"root\"" && has "\"name\":\"child\"");
  check Alcotest.bool "parent link present" true (has "\"parent_id\"");
  check Alcotest.bool "attr escaped" true (has "say \\\"hi\\\"\\nand newline")

(* ------------------------------------------------------------------ *)
(* End to end: a traced request covers every phase exactly once        *)
(* ------------------------------------------------------------------ *)

let counter_spec =
  Spec.make ~target:Spec.Layout
    (Spec.From_component
       { component = "counter";
         attributes =
           [ ("size", 3); ("type", 2); ("load", 1); ("enable", 1);
             ("up_or_down", 3) ];
         functions = [] })

let test_request_trace =
  with_tracing @@ fun () ->
  let server = Server.create ~verify:false () in
  let mark = Trace.finished_count () in
  let inst = Server.request_component server counter_spec in
  ignore inst;
  let spans = Trace.since mark in
  let count name =
    List.length (List.filter (fun s -> s.Trace.sname = name) spans)
  in
  (* server-level phases a cold Layout-target generation runs once *)
  List.iter
    (fun phase -> check Alcotest.int (phase ^ " exactly once") 1 (count phase))
    [ "request"; "cache_lookup"; "resolve"; "expand"; "generator_select";
      "synthesize"; "sizing"; "sta"; "shape"; "persist"; "cif";
      "opt.optimize"; "techmap.map"; "sizing.size"; "shape.estimate";
      "cif.generate" ];
  (* sta.analyze is re-run by the sizing loop: at least once, and every
     span sits under the single request root *)
  check Alcotest.bool "sta.analyze ran" true (count "sta.analyze" >= 1);
  let root = List.find (fun s -> s.Trace.sname = "request") spans in
  check Alcotest.(option int) "request is the root" None root.Trace.sparent;
  List.iter
    (fun s ->
      if s != root then
        check Alcotest.bool (s.Trace.sname ^ " has a parent") true
          (s.Trace.sparent <> None))
    spans;
  check Alcotest.bool "export is well-formed JSON" true
    (json_well_formed (Trace.export_chrome ~spans ()));
  (* the per-server stats saw the same phases *)
  let st = Server.stats server in
  check Alcotest.bool "per-phase histograms non-empty" true
    (st.Server.st_phases <> []);
  check Alcotest.bool "request phase summarized" true
    (List.exists
       (fun (s : Metrics.summary) -> s.Metrics.s_name = "request")
       st.Server.st_phases);
  check Alcotest.bool "slow-request capture populated" true
    (st.Server.st_slow <> [])

let test_warm_hit_trace =
  with_tracing @@ fun () ->
  let server = Server.create ~verify:false () in
  let cold = Server.request_component server counter_spec in
  let mark = Trace.finished_count () in
  let warm = Server.request_component server counter_spec in
  check Alcotest.bool "hit returns the same instance" true (cold == warm);
  let spans = Trace.since mark in
  check (Alcotest.list Alcotest.string) "a hit is lookup + request only"
    [ "cache_lookup"; "request" ]
    (List.map (fun s -> s.Trace.sname) spans)

let test_disabled_request () =
  Trace.set_enabled false;
  Trace.reset ();
  let server = Server.create ~verify:false () in
  let inst = Server.request_component server counter_spec in
  check Alcotest.bool "generation works untraced" true
    (Instance.gate_count inst > 0);
  check Alcotest.int "no spans recorded" 0 (Trace.finished_count ());
  let st = Server.stats server in
  check Alcotest.bool "no per-phase histograms untraced" true
    (st.Server.st_phases = [])

(* ------------------------------------------------------------------ *)
(* Time-series rings and the flight recorder                           *)
(* ------------------------------------------------------------------ *)

module Series = Icdb_obs.Series
module Recorder = Icdb_obs.Recorder
module Json = Icdb_obs.Json

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

(* Six manual ticks into a 4-slot ring: retention caps at the ring,
   counter points are per-tick deltas, a raising poll records NaN. *)
let test_series_ring_and_deltas () =
  let s = Series.create ~cap:4 ~period_s:1.0 () in
  let c = Metrics.counter "test.series.ring" in
  let reqs = Series.add s "reqs" (Series.Counter c) in
  let boom = Series.add s "boom" (Series.Poll (fun () -> failwith "down")) in
  for i = 1 to 6 do
    Metrics.incr ~by:i c;
    Series.tick s
  done;
  check Alcotest.int "total ticks" 6 (Series.total_ticks s);
  check Alcotest.int "ring caps retention" 4 (Series.sample_count s);
  check (Alcotest.list (Alcotest.float 0.0)) "only the last four deltas survive"
    [ 3.0; 4.0; 5.0; 6.0 ]
    (List.map snd (Series.samples s reqs));
  List.iter
    (fun (_, v) ->
      check Alcotest.bool "failed poll records NaN" true (Float.is_nan v))
    (Series.samples s boom);
  let times = List.map fst (Series.samples s reqs) in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  check Alcotest.bool "retained timestamps are monotone" true (mono times)

(* A writer hammers the counter while the sampler ticks: deltas must
   never go negative and must sum to exactly what the writer added. *)
let test_series_concurrent_writer () =
  let s = Series.create ~cap:128 ~period_s:1.0 () in
  let c = Metrics.counter "test.series.concurrent" in
  let sr = Series.add s "ops" (Series.Counter c) in
  let total = 20_000 in
  let writer =
    Thread.create
      (fun () ->
        for i = 1 to total do
          Metrics.incr c;
          if i mod 1024 = 0 then Thread.yield ()
        done)
      ()
  in
  for _ = 1 to 60 do
    Series.tick s;
    Thread.yield ()
  done;
  Thread.join writer;
  Series.tick s;
  let deltas = List.map snd (Series.samples s sr) in
  check Alcotest.bool "no negative deltas" true
    (List.for_all (fun d -> d >= 0.0) deltas);
  check (Alcotest.float 0.0) "deltas sum to the writer's total"
    (float_of_int total)
    (List.fold_left ( +. ) 0.0 deltas)

(* The background thread ticks on its own, runs hooks, and joins. *)
let test_series_sampler_thread () =
  let s = Series.create ~cap:64 ~period_s:0.01 () in
  let g = Metrics.gauge "test.series.level" in
  Metrics.set g 42.0;
  let sr = Series.add s "level" (Series.Gauge g) in
  let hooks = ref 0 in
  Series.on_tick s (fun () -> hooks := !hooks + 1);
  check Alcotest.bool "not running before start" false (Series.running s);
  Series.start s;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Series.total_ticks s < 5 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Series.stop s;
  check Alcotest.bool "stopped after stop" false (Series.running s);
  check Alcotest.bool "at least five ticks" true (Series.total_ticks s >= 5);
  check Alcotest.bool "hooks ran with the ticks" true (!hooks >= 5);
  (match Series.last_value s sr with
   | Some (_, v) -> check (Alcotest.float 0.0) "gauge level sampled" 42.0 v
   | None -> Alcotest.fail "no samples after the thread ran")

(* The /statz body: structurally valid JSON, NaN as null, ?last bound. *)
let test_series_json () =
  let s = Series.create ~cap:8 ~period_s:0.5 () in
  let c = Metrics.counter "test.series.json" in
  ignore (Series.add s "reqs" (Series.Counter c));
  ignore (Series.add s "nan" (Series.Poll (fun () -> Float.nan)));
  for _ = 1 to 12 do
    Metrics.incr c;
    Series.tick s
  done;
  let body = Json.to_string (Series.to_json s) in
  check Alcotest.bool "statz body well-formed" true (json_well_formed body);
  check Alcotest.bool "NaN renders as null" true (contains body "null");
  check Alcotest.bool "ring bound reported" true
    (contains body "\"samples\": 8");
  let limited = Json.to_string (Series.to_json ~last:3 s) in
  check Alcotest.bool "last-limited body well-formed" true
    (json_well_formed limited);
  check Alcotest.bool "last bound reported" true
    (contains limited "\"samples\": 3")

(* The flight recorder: bounded event ring, oldest-first, and a dump
   that is well-formed JSON both in memory and on disk. *)
let test_recorder_dump () =
  let old_level = Event.level () in
  Event.set_level Event.Error;
  let r = Recorder.create ~cap:4 () in
  Fun.protect
    ~finally:(fun () ->
      Recorder.close r;
      Event.set_level old_level)
    (fun () ->
      for i = 1 to 6 do
        Event.error "recorder test event %d" i
      done;
      check Alcotest.int "event ring bounded" 4 (Recorder.event_count r);
      (match Recorder.events r with
       | first :: _ ->
           check Alcotest.bool "ring keeps the newest, oldest-first" true
             (contains first "event 3")
       | [] -> Alcotest.fail "no events retained");
      let sampler = Series.create ~cap:8 ~period_s:1.0 () in
      let c = Metrics.counter "test.recorder.ctr" in
      ignore (Series.add sampler "reqs" (Series.Counter c));
      Metrics.incr c;
      Series.tick sampler;
      Recorder.set_sampler r sampler;
      Recorder.set_meta r [ ("role", "test") ];
      Recorder.add_table r "conns" (fun () ->
          [ [ ("cid", "1"); ("state", "active") ] ]);
      let body = Json.to_string (Recorder.to_json ~reason:"unit" r) in
      check Alcotest.bool "dump well-formed" true (json_well_formed body);
      check Alcotest.bool "reason recorded" true (contains body "\"unit\"");
      check Alcotest.bool "meta recorded" true (contains body "\"role\"");
      check Alcotest.bool "conn table present" true (contains body "\"conns\"");
      check Alcotest.bool "series section present" true
        (contains body "\"series\"");
      let path = Filename.temp_file "icdb-blackbox" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Recorder.dump ~reason:"unit" r ~path;
          let ic = open_in_bin path in
          let contents = really_input_string ic (in_channel_length ic) in
          close_in ic;
          check Alcotest.bool "on-disk dump well-formed" true
            (json_well_formed contents)))

let () =
  Alcotest.run "obs"
    [ ( "trace",
        [ Alcotest.test_case "span nesting and ordering" `Quick
            test_span_nesting;
          Alcotest.test_case "attrs survive exceptions" `Quick
            test_span_attrs_and_exceptions;
          Alcotest.test_case "completed-span ring is bounded" `Quick
            test_ring_bounds;
          Alcotest.test_case "disabled tracing is a no-op" `Quick
            test_disabled_noop;
          Alcotest.test_case "chrome export well-formed" `Quick
            test_chrome_export ] );
      ( "metrics",
        [ Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "single-valued histogram exact" `Quick
            test_histogram_single_value;
          Alcotest.test_case "counters" `Quick test_counters ] );
      ( "events",
        [ Alcotest.test_case "ring sink bounded, oldest-first" `Quick
            test_ring_sink;
          Alcotest.test_case "threshold filtering" `Quick
            test_event_threshold ] );
      ( "telemetry",
        [ Alcotest.test_case "series ring wrap and deltas" `Quick
            test_series_ring_and_deltas;
          Alcotest.test_case "deltas exact under a concurrent writer" `Quick
            test_series_concurrent_writer;
          Alcotest.test_case "sampler thread ticks and stops" `Quick
            test_series_sampler_thread;
          Alcotest.test_case "statz JSON well-formed and bounded" `Quick
            test_series_json;
          Alcotest.test_case "flight-recorder dump" `Quick
            test_recorder_dump ] );
      ( "pipeline",
        [ Alcotest.test_case "request covers every phase once" `Quick
            test_request_trace;
          Alcotest.test_case "warm hit traces lookup only" `Quick
            test_warm_hit_trace;
          Alcotest.test_case "untraced request stays clean" `Quick
            test_disabled_request ] ) ]
