(* The icdb command-line tool.

   - [icdb shell]    interactive CQL, as in Appendix B §4 ("ICDB provides
                     an interactive user interface program. A user can
                     enter the command description string and the user
                     interface program will call ICDB and display the
                     result on the screen.")
   - [icdb serve]    the same server as a network daemon (icdbd)
   - [icdb connect]  the shell again, but against a remote icdbd
   - [icdb catalog]  list predefined components, functions, attributes
   - [icdb gen]      one-shot component generation from flags
   - [icdb cells]    print the technology cell library *)

open Cmdliner
open Icdb
open Icdb_cql

let print_results results =
  List.iter
    (fun (key, r) ->
      match r with
      | Exec.Rstr s ->
          Printf.printf "%s:\n%s\n" key s
      | Exec.Rint i -> Printf.printf "%s: %d\n" key i
      | Exec.Rfloat f -> Printf.printf "%s: %g\n" key f
      | Exec.Rstrs l -> Printf.printf "%s: %s\n" key (String.concat " " l))
    results

(* ------------------------------------------------------------------ *)
(* shell                                                               *)
(* ------------------------------------------------------------------ *)

let print_relation cols rows =
  print_endline (String.concat " | " cols);
  List.iter (fun row -> print_endline (String.concat " | " row)) rows

let run_sql server stmt =
  match Icdb_reldb.Sql.exec (Server.db server) stmt with
  | Icdb_reldb.Sql.Affected n -> Printf.printf "%d row(s)\n" n
  | Icdb_reldb.Sql.Relation rel ->
      print_relation
        (List.map fst rel.Icdb_reldb.Query.rschema)
        (List.map
           (fun row ->
             Array.to_list (Array.map Icdb_reldb.Value.to_string row))
           rel.Icdb_reldb.Query.rrows)

let has_prefix p s =
  String.length s > String.length p && String.sub s 0 (String.length p) = p

(* Run one shell command string (CQL, or "!sql ..." / "!stats") against
   the in-process server; [true] on success, [false] with the error
   printed otherwise — scripted callers turn [false] into a non-zero
   exit code. *)
let local_run server cmd =
  try
    if has_prefix "!sql " cmd then
      run_sql server (String.sub cmd 5 (String.length cmd - 5))
    else if has_prefix "!explain " cmd then
      (* "!explain STMT" is sugar for "!sql EXPLAIN STMT", so
         "!explain ANALYZE SELECT ..." composes naturally *)
      run_sql server ("EXPLAIN " ^ String.sub cmd 9 (String.length cmd - 9))
    else if String.trim cmd = "!stats" then begin
      let st = Server.stats server in
      Printf.printf
        "cache: %d hits, %d reuse hits, %d misses; memo: %d/%d\n"
        st.Server.st_hits st.Server.st_reuse_hits st.Server.st_misses
        st.Server.st_memo_hits st.Server.st_memo_misses;
      print_string (Icdb_obs.Metrics.render ())
    end
    else print_results (Exec.run server cmd);
    true
  with
  | Exec.Cql_error msg ->
      Printf.printf "CQL error: %s\n" msg;
      false
  | Server.Icdb_error msg ->
      Printf.printf "ICDB error: %s\n" msg;
      false
  | Icdb_reldb.Sql.Sql_error msg
  | Icdb_reldb.Table.Schema_error msg
  | Icdb_reldb.Db.Db_error msg ->
      Printf.printf "SQL error: %s\n" msg;
      false

(* Render the full remote stats payload: the cache summary line, every
   counter and gauge in the registry, histogram percentiles, and the
   slow-query log — the same level of detail a local `icdb stats`
   prints. *)
let print_stats_payload (p : Icdb_net.Wire.stats_payload) =
  let open Icdb_net.Wire in
  print_endline p.sp_text;
  if p.sp_counters <> [] then begin
    print_endline "\ncounters:";
    List.iter
      (fun (name, v) -> Printf.printf "  %-32s %d\n" name v)
      p.sp_counters
  end;
  if p.sp_gauges <> [] then begin
    print_endline "\ngauges:";
    List.iter
      (fun (name, v) -> Printf.printf "  %-32s %g\n" name v)
      p.sp_gauges
  end;
  if p.sp_hists <> [] then begin
    print_endline "\nhistograms:";
    Printf.printf "  %-32s %7s %10s %10s %10s %10s %10s\n" "name" "count"
      "p50" "p90" "p99" "max" "total";
    List.iter
      (fun h ->
        Printf.printf "  %-32s %7d %10s %10s %10s %10s %10s\n" h.hs_name
          h.hs_count
          (Icdb_obs.Metrics.pretty_s h.hs_p50)
          (Icdb_obs.Metrics.pretty_s h.hs_p90)
          (Icdb_obs.Metrics.pretty_s h.hs_p99)
          (Icdb_obs.Metrics.pretty_s h.hs_max)
          (Icdb_obs.Metrics.pretty_s h.hs_sum))
      p.sp_hists
  end;
  if p.sp_slow <> [] then begin
    print_endline "\nslow requests (newest first):";
    List.iter
      (fun e ->
        Printf.printf "  %10s  %-20s conn=%d cache=%-4s trace=%s plan=%s\n"
          (Icdb_obs.Metrics.pretty_s e.sl_seconds)
          e.sl_cmd e.sl_conn e.sl_cache
          (if e.sl_trace = "" then "-" else e.sl_trace)
          (if e.sl_plan = "" then "-" else e.sl_plan);
        List.iter
          (fun (phase, seconds) ->
            Printf.printf "    %-28s %10s\n" phase
              (Icdb_obs.Metrics.pretty_s seconds))
          e.sl_phases)
      p.sp_slow
  end

(* One shell command string to one batch entry: the same "!sql " prefix
   convention the sequential shell uses, everything else CQL. *)
let batch_entry_of_cmd cmd =
  if has_prefix "!sql " cmd then
    Icdb_net.Wire.Bsql (String.sub cmd 5 (String.length cmd - 5))
  else Icdb_net.Wire.Bcql { text = String.trim cmd; args = [] }

(* Send many commands as one pipelined [Batch] frame and print the
   per-entry results in order; [false] when the batch was refused as a
   whole or any entry failed. *)
let remote_batch ?trace_id client cmds =
  match
    Icdb_net.Client.batch client ?trace_id (List.map batch_entry_of_cmd cmds)
  with
  | Error (code, msg) ->
      Printf.printf "remote error (%s): %s\n"
        (Icdb_net.Wire.error_code_to_string code)
        msg;
      false
  | Ok results ->
      let ok = ref true in
      List.iteri
        (fun i r ->
          Printf.printf "-- entry %d --\n" (i + 1);
          match r with
          | Icdb_net.Wire.Bresults rs -> print_results rs
          | Icdb_net.Wire.Bsql_result (Icdb_net.Wire.Affected n) ->
              Printf.printf "%d row(s)\n" n
          | Icdb_net.Wire.Bsql_result (Icdb_net.Wire.Relation { cols; rows })
            ->
              print_relation cols rows
          | Icdb_net.Wire.Berror { code; message } ->
              ok := false;
              Printf.printf "remote error (%s): %s\n"
                (Icdb_net.Wire.error_code_to_string code)
                message)
        results;
      !ok

(* "!batch" shell syntax: the lines after the "!batch" header are
   entries separated by lines holding only "--" (CQL commands span
   lines, so a one-line-per-entry rule would not fit them). *)
let parse_batch_cmd cmd =
  match String.split_on_char '\n' cmd with
  | [] -> []
  | _header :: rest ->
      let flush acc entry =
        match String.trim (String.concat "\n" (List.rev entry)) with
        | "" -> acc
        | s -> s :: acc
      in
      let rec go acc entry = function
        | [] -> List.rev (flush acc entry)
        | line :: rest when String.trim line = "--" ->
            go (flush acc entry) [] rest
        | line :: rest -> go acc (line :: entry) rest
      in
      go [] [] rest

(* The same commands against a remote icdbd. Transport failures raise
   [Client.Net_error]; server-side failures print the structured error
   frame and return [false]. [trace_id] tags the server-side spans of
   CQL commands so they can be fetched back afterwards. *)
let remote_run ?trace_id client cmd =
  let report code msg =
    Printf.printf "remote error (%s): %s\n"
      (Icdb_net.Wire.error_code_to_string code) msg;
    false
  in
  if String.trim (List.hd (String.split_on_char '\n' cmd)) = "!batch" then
    match parse_batch_cmd cmd with
    | [] ->
        print_endline
          "usage: !batch, then one entry per block separated by `--` lines";
        false
    | entries -> remote_batch ?trace_id client entries
  else if has_prefix "!sql " cmd || has_prefix "!explain " cmd then
    let stmt =
      if has_prefix "!sql " cmd then String.sub cmd 5 (String.length cmd - 5)
      else "EXPLAIN " ^ String.sub cmd 9 (String.length cmd - 9)
    in
    match Icdb_net.Client.sql client ?trace_id stmt with
    | Ok (Icdb_net.Wire.Affected n) ->
        Printf.printf "%d row(s)\n" n;
        true
    | Ok (Icdb_net.Wire.Relation { cols; rows }) ->
        print_relation cols rows;
        true
    | Error (code, msg) -> report code msg
  else if String.trim cmd = "!stats" then
    match Icdb_net.Client.stats client with
    | Ok payload ->
        print_stats_payload payload;
        true
    | Error (code, msg) -> report code msg
  else
    match Icdb_net.Client.exec client ?trace_id cmd with
    | Ok results ->
        print_results results;
        true
    | Error (code, msg) -> report code msg

(* Interactive loop shared by [shell] and [connect]. A command is lines
   terminated by a blank line; EOF (Ctrl-D) exits cleanly, mid-command
   or not. Returns the number of failed commands. *)
let shell_loop ?(interactive = true) run_one =
  if interactive then begin
    print_endline "ICDB interactive CQL shell.";
    print_endline
      "Enter a command terminated by a blank line (empty command quits).";
    print_endline
      "Lines starting with !sql query the metadata database; !stats prints \
       server metrics.";
    print_endline
      "!explain STMT shows the query plan (!explain ANALYZE STMT also runs \
       it with per-node timings).";
    print_endline
      "Remote shells also take !batch: entries separated by `--` lines, \
       sent as one frame.";
    print_endline "Example:";
    print_endline "  command:request_component;";
    print_endline "  component_name:counter;";
    print_endline "  attribute:(size:5);";
    print_endline "  instance:?s"
  end;
  let rec read_command acc =
    if interactive then begin
      print_string (if acc = [] then "icdb> " else "....> ");
      flush stdout
    end;
    match In_channel.input_line stdin with
    | None ->
        (* EOF mid-command: drop the partial input, exit cleanly *)
        if interactive && acc <> [] then print_newline ();
        None
    | Some "" ->
        if acc = [] then None else Some (String.concat "\n" (List.rev acc))
    | Some line when acc = [] && String.length (String.trim line) = 0 ->
        read_command acc
    | Some line
      when acc = []
           && (has_prefix "!sql " line || has_prefix "!explain " line
               || String.trim line = "!stats") ->
        Some line
    | Some line -> read_command (line :: acc)
  in
  let errors = ref 0 in
  let rec loop () =
    match read_command [] with
    | None -> if interactive then print_endline "bye."
    | Some cmd ->
        if not (run_one cmd) then incr errors;
        loop ()
  in
  loop ();
  !errors

(* Scripted entry: run each --exec command in order; stop at the first
   failure so scripts see where things broke. Returns the exit code. *)
let run_execs run_one cmds =
  let rec go = function
    | [] -> 0
    | cmd :: rest -> if run_one cmd then go rest else 1
  in
  go cmds

let setup_logging log_level =
  match log_level with
  | None -> ()
  | Some l -> (
      match Icdb_obs.Event.level_of_string l with
      | Some lvl ->
          Icdb_obs.Event.set_level lvl;
          ignore (Icdb_obs.Event.add_sink (Icdb_obs.Event.stderr_sink ()))
      | None ->
          Printf.eprintf
            "error: unknown log level %s (expected debug|info|warn|error)\n" l;
          exit 1)

let shell workspace durable log_level trace_out execs =
  setup_logging log_level;
  if trace_out <> None then Icdb_obs.Trace.set_enabled true;
  match Server.create ?workspace ~durable () with
  | exception Server.Icdb_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | server ->
      if durable && execs = [] then
        Printf.printf "journaling to %s\n"
          (Filename.concat (Server.workspace server) "icdb.journal");
      let code =
        if execs <> [] then run_execs (local_run server) execs
        else begin
          let interactive = Unix.isatty Unix.stdin in
          let errors = shell_loop ~interactive (local_run server) in
          (* scripted (piped) sessions must be able to detect failure;
             interactive typo-and-retry keeps exiting 0 *)
          if (not interactive) && errors > 0 then 1 else 0
        end
      in
      (match trace_out with
       | None -> ()
       | Some path ->
           Icdb_obs.Trace.write_chrome path;
           Printf.printf
             "trace written to %s (load it in chrome://tracing or \
              https://ui.perfetto.dev)\n"
             path);
      exit code

(* ------------------------------------------------------------------ *)
(* serve / connect                                                     *)
(* ------------------------------------------------------------------ *)

(* Written atomically so pollers never read a partial value. *)
let write_port_file path value =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc -> Printf.fprintf oc "%d\n" value);
  Sys.rename tmp path

let parse_host_port s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          Some ((if host = "" then "127.0.0.1" else host), p)
      | _ -> None)
  | None -> None

(* The tail of both serve flavours: service + optional admin plane up,
   the flight recorder armed, signals routed to a graceful drain,
   checkpoint on the way out. *)
let serve_loop ~host ~port_file ~admin_port ~admin_port_file ?replica ~sync
    ~durable ~blackbox_out ~svc () =
  let bound = Icdb_net.Service.port svc in
  (match port_file with
   | None -> ()
   | Some path -> write_port_file path bound);
  (* the black box: recent events, last telemetry samples, and the live
     connection table, dumped on SIGQUIT, on a fatal exit, and served
     at /blackboxz for `icdb blackbox` *)
  let recorder = Icdb_obs.Recorder.create () in
  let blackbox_path =
    match blackbox_out with
    | Some path -> path
    | None ->
        Filename.concat (Icdb_net.Sync.peek_workspace sync)
          "icdb.blackbox.json"
  in
  Icdb_obs.Recorder.set_meta recorder
    [ ("workspace", Icdb_net.Sync.peek_workspace sync);
      ("port", string_of_int bound);
      ("role", if Option.is_some replica then "follower" else "primary") ];
  (match Icdb_net.Service.sampler svc with
   | Some s -> Icdb_obs.Recorder.set_sampler recorder s
   | None -> ());
  Icdb_obs.Recorder.add_table recorder "conns" (fun () ->
      List.map
        (fun (c : Icdb_net.Service.conn_info) ->
          [ ("cid", string_of_int c.Icdb_net.Service.ci_cid);
            ("peer", c.Icdb_net.Service.ci_peer);
            ("state", c.Icdb_net.Service.ci_state);
            ("wq_bytes", string_of_int c.Icdb_net.Service.ci_wq_bytes);
            ("reqs", string_of_int c.Icdb_net.Service.ci_reqs);
            ("age_s", Printf.sprintf "%.3f" c.Icdb_net.Service.ci_age_s);
            ("idle_s", Printf.sprintf "%.3f" c.Icdb_net.Service.ci_idle_s);
            ("paused_s", Printf.sprintf "%.3f" c.Icdb_net.Service.ci_paused_s)
          ])
        (Icdb_net.Service.conn_table svc));
  let dump reason =
    match Icdb_obs.Recorder.dump ~reason recorder ~path:blackbox_path with
    | () -> Printf.eprintf "blackbox dump (%s): %s\n%!" reason blackbox_path
    | exception _ -> ()
  in
  Sys.set_signal Sys.sigquit (Sys.Signal_handle (fun _ -> dump "sigquit"));
  Printexc.set_uncaught_exception_handler (fun e bt ->
      dump ("fatal: " ^ Printexc.to_string e);
      Printf.eprintf "Fatal error: exception %s\n%s%!" (Printexc.to_string e)
        (Printexc.raw_backtrace_to_string bt));
  let admin =
    match admin_port with
    | None -> None
    | Some ap -> (
        match
          Icdb_net.Admin.start ~host ?replica ~recorder ~port:ap ~service:svc
            ~sync ()
        with
        | a ->
            Printf.printf
              "admin endpoint on http://%s:%d (/healthz /readyz /metrics \
               /tracez /slowz /statz /connz /blackboxz)\n%!"
              host (Icdb_net.Admin.port a);
            (match admin_port_file with
             | None -> ()
             | Some path -> write_port_file path (Icdb_net.Admin.port a));
            Some a
        | exception Unix.Unix_error (e, _, _) ->
            Printf.eprintf "error: cannot bind admin port %d: %s\n" ap
              (Unix.error_message e);
            Icdb_net.Service.shutdown svc;
            exit 1)
  in
  Option.iter Icdb_net.Replica.run replica;
  let stop _ = Icdb_net.Service.request_shutdown svc in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Icdb_net.Service.wait svc;
  Option.iter Icdb_net.Admin.stop admin;
  Option.iter Icdb_net.Replica.stop replica;
  (* every accepted request is answered; now make recovery cheap *)
  if durable then begin
    match Icdb_net.Sync.with_server sync Server.checkpoint with
    | () ->
        Printf.printf "checkpointed %s\n" (Icdb_net.Sync.peek_workspace sync)
    | exception Server.Icdb_error msg ->
        Printf.eprintf "checkpoint failed: %s\n" msg;
        exit 1
  end;
  let st = Icdb_net.Sync.with_server sync Server.stats in
  Printf.printf "served: %d cache hits, %d reuse hits, %d misses; bye.\n"
    st.Server.st_hits st.Server.st_reuse_hits st.Server.st_misses

let serve workspace durable host port port_file admin_port admin_port_file
    max_connections workers max_queue request_timeout idle_timeout
    slow_threshold telemetry_period blackbox_out follow log_level =
  setup_logging log_level;
  (* a peer vanishing mid-write must surface as EPIPE, not kill icdbd;
     Service.start and Client.connect set this too — this earlier copy
     covers the window before either exists, and is harmless *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let config ~read_only =
    { Icdb_net.Service.host;
      port;
      max_connections;
      workers;
      max_queue;
      request_timeout_s = request_timeout;
      idle_timeout_s = idle_timeout;
      slow_threshold_s = slow_threshold;
      read_only;
      repl_max_lag = Icdb_net.Service.default_config.repl_max_lag;
      repl_batch = Icdb_net.Service.default_config.repl_batch;
      telemetry_period_s = telemetry_period }
  in
  let start_service config sync =
    try Icdb_net.Service.start ~config sync
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "error: cannot listen on %s:%d: %s\n" host port
        (Unix.error_message e);
      exit 1
  in
  match follow with
  | Some spec ->
      (* follower: bootstrap from the primary, serve read-only *)
      let phost, pport =
        match parse_host_port spec with
        | Some hp -> hp
        | None ->
            Printf.eprintf "error: --follow expects HOST:PORT, got %S\n" spec;
            exit 2
      in
      let ws =
        match workspace with
        | Some ws -> ws
        | None ->
            Printf.eprintf
              "error: --follow requires --workspace: the follower's durable \
               state (journal, snapshot, netlists) lives there across \
               restarts\n";
            exit 2
      in
      let rconfig =
        { Icdb_net.Replica.default_config with host = phost; port = pport }
      in
      let replica =
        match Icdb_net.Replica.create ~config:rconfig ~workspace:ws () with
        | r -> r
        | exception
            ( Icdb_net.Replica.Repl_error msg
            | Icdb_net.Client.Net_error msg
            | Server.Icdb_error msg ) ->
            Printf.eprintf "error: cannot bootstrap follower: %s\n" msg;
            exit 1
      in
      let sync = Icdb_net.Replica.sync replica in
      let svc = start_service (config ~read_only:true) sync in
      Printf.printf
        "icdbd listening on %s:%d (workspace %s, read-only follower of \
         %s:%d)\n%!"
        host (Icdb_net.Service.port svc) ws phost pport;
      serve_loop ~host ~port_file ~admin_port ~admin_port_file ~replica ~sync
        ~durable:true ~blackbox_out ~svc ()
  | None -> (
      match Server.create ?workspace ~durable () with
      | exception Server.Icdb_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      | server ->
          let sync = Icdb_net.Sync.wrap server in
          let svc = start_service (config ~read_only:false) sync in
          Printf.printf "icdbd listening on %s:%d (workspace %s%s)\n%!" host
            (Icdb_net.Service.port svc)
            (Server.workspace server)
            (if durable then ", durable" else "");
          serve_loop ~host ~port_file ~admin_port ~admin_port_file ~sync
            ~durable ~blackbox_out ~svc ())

let connect endpoint trace_out batch execs =
  if batch && execs = [] then begin
    Printf.eprintf "error: --batch needs at least one --exec command\n";
    exit 2
  end;
  match parse_host_port endpoint with
  | None ->
      Printf.eprintf "error: expected HOST:PORT, got %s\n" endpoint;
      exit 2
  | Some (host, port) -> (
      match Icdb_net.Client.connect ~host ~port () with
      | exception Icdb_net.Client.Net_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      | client ->
          if trace_out <> None then Icdb_obs.Trace.set_enabled true;
          (* with --trace-out, each command gets a distinct trace id:
             the server tags its spans with it, and the last id is what
             we fetch back and merge on exit. Meta commands like !stats
             are answered outside the server's traced request path, so
             they never become the fetch target — the merged trace
             always shows a real query *)
          let last_tid = ref None in
          let cmd_no = ref 0 in
          let run_one cmd =
            match trace_out with
            | None -> remote_run client cmd
            | Some _ ->
                incr cmd_no;
                let tid =
                  Printf.sprintf "cli%d.%d" (Unix.getpid ()) !cmd_no
                in
                if String.trim cmd <> "!stats" then last_tid := Some tid;
                Icdb_obs.Trace.with_tag tid (fun () ->
                    Icdb_obs.Trace.with_span "client.request" (fun () ->
                        remote_run ~trace_id:tid client cmd))
          in
          let code =
            try
              if batch then begin
                (* all --exec commands ride in one Batch frame; the
                   trace id (when tracing) covers the whole batch *)
                let tid =
                  match trace_out with
                  | None -> None
                  | Some _ ->
                      let tid = Printf.sprintf "cli%d.1" (Unix.getpid ()) in
                      last_tid := Some tid;
                      Some tid
                in
                let run () = remote_batch ?trace_id:tid client execs in
                let ok =
                  match tid with
                  | None -> run ()
                  | Some tid ->
                      Icdb_obs.Trace.with_tag tid (fun () ->
                          Icdb_obs.Trace.with_span "client.batch" run)
                in
                if ok then 0 else 1
              end
              else if execs <> [] then run_execs run_one execs
              else begin
                let interactive = Unix.isatty Unix.stdin in
                if interactive then
                  Printf.printf "connected to icdbd at %s:%d\n" host port;
                let errors = shell_loop ~interactive run_one in
                if (not interactive) && errors > 0 then 1 else 0
              end
            with Icdb_net.Client.Net_error msg ->
              Printf.eprintf "connection error: %s\n" msg;
              1
          in
          (match (trace_out, !last_tid) with
           | Some path, Some tid ->
               (* merge the last request's client-side spans with the
                  server-side spans fetched for the same trace id *)
               let local = Icdb_obs.Trace.tagged tid in
               let remote =
                 match Icdb_net.Client.fetch_trace client tid with
                 | Ok spans -> spans
                 | Error (code, msg) ->
                     Printf.eprintf
                       "warning: could not fetch remote spans (%s): %s\n"
                       (Icdb_net.Wire.error_code_to_string code)
                       msg;
                     []
                 | exception Icdb_net.Client.Net_error msg ->
                     Printf.eprintf
                       "warning: could not fetch remote spans: %s\n" msg;
                     []
               in
               let merged =
                 Icdb_net.Client.merge_remote_spans ~local ~remote
               in
               Icdb_obs.Trace.write_chrome ~spans:merged path;
               Printf.printf
                 "merged trace for %s (%d client + %d server spans) written \
                  to %s\n\
                  load it in chrome://tracing or https://ui.perfetto.dev\n"
                 tid (List.length local) (List.length remote) path
           | Some path, None ->
               Icdb_obs.Trace.write_chrome ~spans:[] path;
               Printf.eprintf
                 "warning: no commands were traced; wrote an empty trace to \
                  %s\n"
                 path
           | None, _ -> ());
          Icdb_net.Client.close client;
          exit code)

(* ------------------------------------------------------------------ *)
(* recover                                                             *)
(* ------------------------------------------------------------------ *)

let recover workspace interactive =
  match Server.reopen ~workspace () with
  | exception Server.Icdb_error msg ->
      Printf.eprintf "recovery failed: %s\n" msg;
      exit 1
  | server, r ->
      Printf.printf "recovered workspace %s\n" workspace;
      Printf.printf "  journal entries replayed: %d\n" r.Server.rr_entries_replayed;
      if r.Server.rr_torn_tail then
        print_endline "  torn journal tail truncated";
      if r.Server.rr_rolled_back_tx then
        print_endline "  uncommitted transaction rolled back";
      Printf.printf "  instances: %s\n"
        (match r.Server.rr_instances with
         | [] -> "(none)"
         | ids -> String.concat " " ids);
      List.iter
        (fun (kind, msg) ->
          Printf.printf "  dropped (%s): %s\n" (Fault.kind_to_string kind) msg)
        r.Server.rr_dropped;
      List.iter (Printf.printf "  removed orphan: %s\n") r.Server.rr_orphans;
      if interactive then ignore (shell_loop (local_run server))

(* ------------------------------------------------------------------ *)
(* catalog                                                             *)
(* ------------------------------------------------------------------ *)

let catalog () =
  Printf.printf "%-18s %-14s %-38s %s\n" "component" "implementation"
    "functions" "attributes (defaults)";
  print_endline (String.make 100 '-');
  List.iter
    (fun (c : Icdb_genus.Component.t) ->
      Printf.printf "%-18s %-14s %-38s %s\n" c.Icdb_genus.Component.comp_name
        c.Icdb_genus.Component.implementation
        (String.concat ","
           (List.map Icdb_genus.Func.to_string
              (c.Icdb_genus.Component.functions_of [])))
        (String.concat ", "
           (List.map
              (fun (n, v) -> Printf.sprintf "%s=%d" n v)
              c.Icdb_genus.Component.attributes)))
    Icdb_genus.Component.all

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen component size strategy clock_width layout_out =
  let server = Server.create () in
  let strategy =
    match strategy with
    | "fastest" -> Icdb_timing.Sizing.Fastest
    | "cheapest" -> Icdb_timing.Sizing.Cheapest
    | _ -> Icdb_timing.Sizing.Balanced
  in
  let constraints =
    { Icdb_timing.Sizing.default_constraints with
      strategy;
      clock_width }
  in
  let inst =
    Server.request_component server
      (Spec.make ~constraints
         (Spec.From_component
            { component; attributes = [ ("size", size) ]; functions = [] }))
  in
  Printf.printf "instance: %s (%d gates, constraints %s)\n" inst.Instance.id
    (Instance.gate_count inst)
    (if inst.Instance.constraints_met then "met" else "NOT met");
  print_endline "-- delay --";
  print_endline (Instance.delay_string inst);
  print_endline "-- shape function --";
  print_endline (Instance.shape_string inst);
  print_endline "-- connection info --";
  print_endline (Instance.connect_string inst);
  match layout_out with
  | None -> ()
  | Some path ->
      let _, cif, _ = Server.request_layout server inst.Instance.id () in
      Out_channel.with_open_text path (fun oc -> output_string oc cif);
      Printf.printf "CIF layout written to %s\n" path

(* ------------------------------------------------------------------ *)
(* cells                                                               *)
(* ------------------------------------------------------------------ *)

let cells () =
  Printf.printf "%-10s %5s %8s %6s %6s %6s %6s\n" "cell" "T" "width" "X" "Y"
    "Z" "setup";
  print_endline (String.make 56 '-');
  List.iter
    (fun (c : Icdb_logic.Celllib.t) ->
      Printf.printf "%-10s %5d %8.1f %6.2f %6.2f %6.2f %6.1f\n"
        c.Icdb_logic.Celllib.cname c.Icdb_logic.Celllib.transistors
        c.Icdb_logic.Celllib.width c.Icdb_logic.Celllib.x_delay
        c.Icdb_logic.Celllib.y_delay c.Icdb_logic.Celllib.z_delay
        c.Icdb_logic.Celllib.setup)
    Icdb_logic.Celllib.all

(* ------------------------------------------------------------------ *)
(* hls                                                                 *)
(* ------------------------------------------------------------------ *)

let hls dfg_name clock pessimism with_rtl =
  let dfg =
    match dfg_name with
    | "diffeq" -> Icdb_hls.Dfg.diffeq
    | "fir4" -> Icdb_hls.Dfg.fir4
    | other ->
        Printf.eprintf "unknown dataflow graph %s (try diffeq or fir4)\n" other;
        exit 1
  in
  let server = Server.create () in
  let r = Icdb_hls.Schedule.run server dfg ~clock ~pessimism in
  print_string (Icdb_hls.Schedule.to_string r);
  if with_rtl then begin
    let ctrl = Icdb_hls.Controller.generate server r in
    Printf.printf "\ncontroller (%d gates):\n%s\n"
      (Instance.gate_count ctrl.Icdb_hls.Controller.c_instance)
      ctrl.Icdb_hls.Controller.c_iif;
    let dp = Icdb_hls.Datapath.generate server r in
    Printf.printf "datapath cluster: %d gates, %d muxes, %d registered results\n"
      (Instance.gate_count dp.Icdb_hls.Datapath.d_instance)
      dp.Icdb_hls.Datapath.d_muxes
      (List.length dp.Icdb_hls.Datapath.d_registers)
  end

(* ------------------------------------------------------------------ *)
(* stats / trace                                                       *)
(* ------------------------------------------------------------------ *)

let workload_spec component size strategy =
  let strategy =
    match strategy with
    | "fastest" -> Icdb_timing.Sizing.Fastest
    | "cheapest" -> Icdb_timing.Sizing.Cheapest
    | _ -> Icdb_timing.Sizing.Balanced
  in
  Spec.make
    ~constraints:{ Icdb_timing.Sizing.default_constraints with strategy }
    ~target:Spec.Layout
    (Spec.From_component
       { component; attributes = [ ("size", size) ]; functions = [] })

(* Run a small representative workload with tracing on and print the
   per-phase latency table, the slowest requests, and every counter the
   instrumented code bumped. With --connect, instead fetch the live
   metrics of a running icdbd — cache counters, net.* admission
   counters and the per-wire-command latency histograms. *)
(* The machine-readable flavour of `stats --connect`: the same wire
   payload through the deterministic emitter, so CI scripts and `icdb
   top` share one schema with bench_out artifacts. Field order is fixed
   by construction; counter/gauge/histogram order is the registry's
   (name-sorted) order, carried verbatim by the wire payload. *)
let stats_payload_json (p : Icdb_net.Wire.stats_payload) =
  let open Icdb_obs in
  let open Icdb_net.Wire in
  Json.Obj
    [ ("text", Json.Str p.sp_text);
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) p.sp_counters) );
      ( "gauges",
        Json.Obj (List.map (fun (n, v) -> (n, Json.float v)) p.sp_gauges) );
      ( "histograms",
        Json.List
          (List.map
             (fun h ->
               Json.Obj
                 [ ("name", Json.Str h.hs_name);
                   ("count", Json.Int h.hs_count);
                   ("sum", Json.float h.hs_sum);
                   ("min", Json.float h.hs_min);
                   ("max", Json.float h.hs_max);
                   ("p50", Json.float h.hs_p50);
                   ("p90", Json.float h.hs_p90);
                   ("p99", Json.float h.hs_p99) ])
             p.sp_hists) );
      ( "slow",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [ ("cmd", Json.Str e.sl_cmd);
                   ("trace", Json.Str e.sl_trace);
                   ("conn", Json.Int e.sl_conn);
                   ("seconds", Json.float e.sl_seconds);
                   ("cache", Json.Str e.sl_cache);
                   ( "phases",
                     Json.Obj
                       (List.map
                          (fun (n, s) -> (n, Json.float s))
                          e.sl_phases) ) ])
             p.sp_slow) ) ]

let remote_stats ~json endpoint =
  match parse_host_port endpoint with
  | None ->
      Printf.eprintf "error: expected HOST:PORT, got %s\n" endpoint;
      exit 2
  | Some (host, port) -> (
      match
        let client = Icdb_net.Client.connect ~host ~port () in
        Fun.protect
          ~finally:(fun () -> Icdb_net.Client.close client)
          (fun () -> Icdb_net.Client.stats client)
      with
      | Ok payload ->
          if json then
            print_string (Icdb_obs.Json.to_string (stats_payload_json payload))
          else print_stats_payload payload
      | Error (code, msg) ->
          Printf.eprintf "remote error (%s): %s\n"
            (Icdb_net.Wire.error_code_to_string code) msg;
          exit 1
      | exception Icdb_net.Client.Net_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)

let stats component requests connect json =
  match connect with
  | Some endpoint -> remote_stats ~json endpoint
  | None ->
  if json then begin
    Printf.eprintf "error: --json requires --connect (the machine-readable \
                    output mirrors the wire stats payload)\n";
    exit 2
  end;
  Icdb_obs.Trace.set_enabled true;
  let server = Server.create ~verify:false () in
  (try
     for i = 0 to requests - 1 do
       (* vary the width so the workload mixes cold generations with
          exact-cache hits, like a real synthesis session *)
       let size = 2 + (i mod 4) in
       ignore (Server.request_component server (workload_spec component size "balanced"))
     done
   with Server.Icdb_error msg ->
     Printf.eprintf "error: %s\n" msg;
     exit 1);
  let st = Server.stats server in
  Printf.printf "%d request(s) against component %s\n\n" requests component;
  Printf.printf
    "cache: %d hit(s), %d reuse hit(s), %d miss(es); memo: %d/%d\n\n"
    st.Server.st_hits st.Server.st_reuse_hits st.Server.st_misses
    st.Server.st_memo_hits st.Server.st_memo_misses;
  Printf.printf "%-20s %7s %10s %10s %10s %10s\n" "phase" "count" "p50" "p90"
    "p99" "total";
  print_endline (String.make 72 '-');
  List.iter
    (fun (s : Icdb_obs.Metrics.summary) ->
      Printf.printf "%-20s %7d %10s %10s %10s %10s\n" s.Icdb_obs.Metrics.s_name
        s.Icdb_obs.Metrics.s_count
        (Icdb_obs.Metrics.pretty_s s.Icdb_obs.Metrics.s_p50)
        (Icdb_obs.Metrics.pretty_s s.Icdb_obs.Metrics.s_p90)
        (Icdb_obs.Metrics.pretty_s s.Icdb_obs.Metrics.s_p99)
        (Icdb_obs.Metrics.pretty_s s.Icdb_obs.Metrics.s_sum))
    st.Server.st_phases;
  (match st.Server.st_slow with
   | [] -> ()
   | slow ->
       Printf.printf "\nslowest requests:\n";
       List.iter
         (fun (sr : Server.slow_request) ->
           Printf.printf "  %s  %s -> %s\n"
             (Icdb_obs.Metrics.pretty_s sr.Server.sr_seconds)
             sr.Server.sr_key sr.Server.sr_id)
         slow);
  print_newline ();
  print_string (Icdb_obs.Metrics.render ())

(* Live terminal cockpit over a running icdbd: poll the wire Stats
   payload at a fixed interval, compute rates from counter deltas, and
   read the level gauges the telemetry sampler maintains. One
   persistent wire connection; no admin port needed. *)
let top connect interval iterations =
  let open Icdb_net.Wire in
  match parse_host_port connect with
  | None ->
      Printf.eprintf "error: expected HOST:PORT, got %s\n" connect;
      exit 2
  | Some (host, port) ->
      let client =
        match Icdb_net.Client.connect ~host ~port () with
        | c -> c
        | exception Icdb_net.Client.Net_error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
      in
      let counter p name =
        Option.value (List.assoc_opt name p.sp_counters) ~default:0
      in
      let gauge p name =
        (* Never let a bad sample put nan/inf on the dashboard. *)
        let v = Option.value (List.assoc_opt name p.sp_gauges) ~default:0.0 in
        if Float.is_finite v then v else 0.0
      in
      let hist_p99 p name =
        match List.find_opt (fun h -> h.hs_name = name) p.sp_hists with
        | Some h when h.hs_count > 0 && Float.is_finite h.hs_p99 ->
            Icdb_obs.Metrics.pretty_s h.hs_p99
        | Some _ | None -> "-"
      in
      let tty = Unix.isatty Unix.stdout in
      let prev = ref None in
      let rec loop i =
        (match Icdb_net.Client.stats client with
         | Error (code, msg) ->
             Printf.eprintf "remote error (%s): %s\n"
               (error_code_to_string code) msg;
             exit 1
         | exception Icdb_net.Client.Net_error msg ->
             Printf.eprintf "error: %s\n" msg;
             exit 1
         | Ok p ->
             let t = Unix.gettimeofday () in
             let rate name =
               (* "-" on the first sample, a zero/negative interval
                  (clock step), or a counter reset (server restart):
                  never nan/inf, never a negative rate. *)
               match !prev with
               | Some (q, tq) when t > tq ->
                   let delta = counter p name - counter q name in
                   let r = float_of_int delta /. (t -. tq) in
                   if delta < 0 || not (Float.is_finite r) then "-"
                   else Printf.sprintf "%.1f" r
               | _ -> "-"
             in
             if tty && iterations <> 1 then print_string "\027[2J\027[H";
             Printf.printf "icdb top — %s  (interval %gs)\n" connect interval;
             let tripped = gauge p "net.watchdog.tripped" > 0.5 in
             if tripped then
               print_string "!! STALL WATCHDOG TRIPPED (see /healthz)\n";
             Printf.printf "req/s %-8s err/s %-8s p99(req) %-9s p99(wait) %-9s\n"
               (rate "net.requests") (rate "net.errors")
               (hist_p99 p "net.request_s") (hist_p99 p "net.queue_wait");
             Printf.printf
               "queue %-4.0f age %-6.2fs wq %-9.0fB fds %-5.0f rss %s\n"
               (gauge p "net.queue_depth") (gauge p "net.queue_age_s")
               (gauge p "net.wq_bytes") (gauge p "process.open_fds")
               (let rss = gauge p "process.max_rss_bytes" in
                if rss > 0.0 then Printf.sprintf "%.0fMiB" (rss /. 1048576.0)
                else "-");
             Printf.printf
               "conns %-4.0f (active %.0f paused %.0f fatal %.0f) followers \
                %-3.0f lag %.0frec/%.1fs\n"
               (gauge p "net.connections") (gauge p "net.conns.active")
               (gauge p "net.conns.paused") (gauge p "net.conns.fatal")
               (gauge p "repl.followers") (gauge p "repl.lag_records")
               (gauge p "repl.lag_seconds");
             Printf.printf "loop p99: poll %-9s dispatch %s\n%!"
               (hist_p99 p "net.loop.poll_wait")
               (hist_p99 p "net.loop.dispatch");
             prev := Some (p, t));
        if iterations = 0 || i + 1 < iterations then begin
          Thread.delay interval;
          loop (i + 1)
        end
      in
      Fun.protect
        ~finally:(fun () -> Icdb_net.Client.close client)
        (fun () -> loop 0)

(* Pull a flight-recorder dump from a running icdbd's admin port. *)
let blackbox connect out =
  match parse_host_port connect with
  | None ->
      Printf.eprintf "error: expected HOST:ADMIN_PORT, got %s\n" connect;
      exit 2
  | Some (host, port) -> (
      match Icdb_obs.Expo.http_get ~host ~port "/blackboxz" with
      | 200, body -> (
          match out with
          | None -> print_string body
          | Some path ->
              Out_channel.with_open_text path (fun oc ->
                  output_string oc body);
              Printf.printf "blackbox dump written to %s (%d bytes)\n" path
                (String.length body))
      | status, body ->
          Printf.eprintf "error: /blackboxz answered %d: %s" status body;
          exit 1
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "error: cannot reach %s: %s\n" connect
            (Unix.error_message e);
          exit 1
      | exception Failure msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)

(* Trace one request end to end and write the span tree as Chrome
   trace_event JSON. *)
let trace_run out component size =
  Icdb_obs.Trace.set_enabled true;
  let server = Server.create ~verify:false () in
  let mark = Icdb_obs.Trace.finished_count () in
  (match Server.request_component server (workload_spec component size "balanced") with
   | exception Server.Icdb_error msg ->
       Printf.eprintf "error: %s\n" msg;
       exit 1
   | inst ->
       let spans = Icdb_obs.Trace.since mark in
       Icdb_obs.Trace.write_chrome ~spans out;
       Printf.printf "instance %s: %d span(s) written to %s\n" inst.Instance.id
         (List.length spans) out;
       Printf.printf "load the file in chrome://tracing or https://ui.perfetto.dev\n\n";
       Printf.printf "%-20s %10s\n" "phase" "total";
       print_endline (String.make 32 '-');
       List.iter
         (fun (name, seconds) ->
           Printf.printf "%-20s %10s\n" name (Icdb_obs.Metrics.pretty_s seconds))
         (Icdb_obs.Trace.phase_totals spans))

(* ------------------------------------------------------------------ *)
(* cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

let shell_cmd =
  let workspace =
    Arg.(value & opt (some string) None
         & info [ "workspace" ] ~doc:"Workspace directory" ~docv:"DIR")
  in
  let durable =
    Arg.(value & flag
         & info [ "durable" ]
             ~doc:"Journal every mutation so the workspace survives a crash \
                   (recover it with $(b,icdb recover))")
  in
  let log_level =
    Arg.(value & opt (some string) None
         & info [ "log-level" ]
             ~doc:"Log structured events at this level and above to stderr \
                   (debug|info|warn|error)" ~docv:"LEVEL")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ]
             ~doc:"Trace every request and write Chrome trace_event JSON to \
                   FILE on exit" ~docv:"FILE")
  in
  let execs =
    Arg.(value & opt_all string []
         & info [ "exec"; "e" ]
             ~doc:"Run CMD non-interactively instead of reading stdin; \
                   repeatable, runs in order, exits non-zero at the first \
                   failure" ~docv:"CMD")
  in
  Cmd.v (Cmd.info "shell" ~doc:"Interactive CQL shell")
    Term.(const shell $ workspace $ durable $ log_level $ trace_out $ execs)

let serve_cmd =
  let workspace =
    Arg.(value & opt (some string) None
         & info [ "workspace" ] ~doc:"Workspace directory" ~docv:"DIR")
  in
  let durable =
    Arg.(value & flag
         & info [ "durable" ]
             ~doc:"Journal every mutation; a SIGTERM shutdown checkpoints, \
                   and $(b,icdb recover) rebuilds the workspace after a crash")
  in
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~doc:"Bind address" ~docv:"ADDR")
  in
  let port =
    Arg.(value & opt int 7601
         & info [ "port"; "p" ]
             ~doc:"TCP port (0 picks an ephemeral port; see --port-file)"
             ~docv:"PORT")
  in
  let port_file =
    Arg.(value & opt (some string) None
         & info [ "port-file" ]
             ~doc:"Write the actually-bound port to FILE (atomically) once \
                   listening — the scripting hook for --port 0" ~docv:"FILE")
  in
  let admin_port =
    Arg.(value & opt (some int) None
         & info [ "admin-port" ]
             ~doc:"Also serve an HTTP admin endpoint on this port: /healthz, \
                   /readyz, /metrics (Prometheus text format), /tracez, \
                   /slowz. 0 picks an ephemeral port; see --admin-port-file"
             ~docv:"PORT")
  in
  let admin_port_file =
    Arg.(value & opt (some string) None
         & info [ "admin-port-file" ]
             ~doc:"Write the actually-bound admin port to FILE (atomically) \
                   once listening" ~docv:"FILE")
  in
  let max_connections =
    Arg.(value & opt int Icdb_net.Service.default_config.max_connections
         & info [ "max-connections" ]
             ~doc:"Refuse connections beyond this many concurrent clients")
  in
  let workers =
    Arg.(value & opt int Icdb_net.Service.default_config.workers
         & info [ "workers" ] ~doc:"Worker threads executing requests")
  in
  let max_queue =
    Arg.(value & opt int Icdb_net.Service.default_config.max_queue
         & info [ "max-queue" ]
             ~doc:"Shed requests once this many are queued unserved")
  in
  let request_timeout =
    Arg.(value & opt float Icdb_net.Service.default_config.request_timeout_s
         & info [ "request-timeout" ]
             ~doc:"Requests older than this many seconds when a worker picks \
                   them up are answered with a timeout error" ~docv:"SECONDS")
  in
  let idle_timeout =
    Arg.(value & opt float Icdb_net.Service.default_config.idle_timeout_s
         & info [ "idle-timeout" ]
             ~doc:"Reap connections idle longer than this many seconds"
             ~docv:"SECONDS")
  in
  let slow_threshold =
    Arg.(value & opt float Icdb_net.Service.default_config.slow_threshold_s
         & info [ "slow-threshold" ]
             ~doc:"Log requests at least this slow to the slow-query log \
                   (0 logs everything, negative disables)" ~docv:"SECONDS")
  in
  let telemetry_period =
    Arg.(value & opt float Icdb_net.Service.default_config.telemetry_period_s
         & info [ "telemetry-period" ]
             ~doc:"Sampling period of the continuous-telemetry time-series \
                   rings served at /statz (and of the stall watchdog); 0 \
                   disables both" ~docv:"SECONDS")
  in
  let blackbox_out =
    Arg.(value & opt (some string) None
         & info [ "blackbox-out" ]
             ~doc:"Where the flight recorder dumps on SIGQUIT or a fatal \
                   exit (default: icdb.blackbox.json in the workspace)"
             ~docv:"FILE")
  in
  let follow =
    Arg.(value & opt (some string) None
         & info [ "follow" ]
             ~doc:"Run as a read-only replication follower of the primary \
                   icdbd at HOST:PORT: catch up from a checkpoint or the \
                   journal stream, serve queries locally, refuse mutations \
                   with a read_only error. Requires --workspace (the \
                   follower's durable state lives there across restarts); \
                   /readyz on --admin-port gates on replication lag"
             ~docv:"HOST:PORT")
  in
  let log_level =
    Arg.(value & opt (some string) None
         & info [ "log-level" ]
             ~doc:"Log structured events at this level and above to stderr \
                   (debug|info|warn|error)" ~docv:"LEVEL")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the component server as a network daemon (icdbd), as a \
             primary or (with --follow) a read-only follower. SIGTERM \
             drains in-flight requests, checkpoints a durable workspace, \
             then exits")
    Term.(const serve $ workspace $ durable $ host $ port $ port_file
          $ admin_port $ admin_port_file $ max_connections $ workers
          $ max_queue $ request_timeout $ idle_timeout $ slow_threshold
          $ telemetry_period $ blackbox_out $ follow $ log_level)

let connect_cmd =
  let endpoint =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"HOST:PORT"
           ~doc:"Address of a running $(b,icdb serve)")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ]
             ~doc:"Send a trace id with every CQL command, fetch the \
                   server-side spans of the last one back, and write the \
                   merged client+server Chrome trace_event JSON to FILE on \
                   exit" ~docv:"FILE")
  in
  let execs =
    Arg.(value & opt_all string []
         & info [ "exec"; "e" ]
             ~doc:"Run CMD non-interactively instead of reading stdin; \
                   repeatable, runs in order, exits non-zero at the first \
                   failure" ~docv:"CMD")
  in
  let batch =
    Arg.(value & flag
         & info [ "batch" ]
             ~doc:"Send all $(b,--exec) commands as one pipelined Batch \
                   frame (wire v4): one round trip, per-entry results in \
                   order, failures isolated to their entry")
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Interactive CQL shell against a remote icdbd — every local \
             shell workflow, over the wire")
    Term.(const connect $ endpoint $ trace_out $ batch $ execs)

let recover_cmd =
  let workspace =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKSPACE"
           ~doc:"Workspace directory of a durable server")
  in
  let interactive =
    Arg.(value & flag
         & info [ "shell" ] ~doc:"Drop into the CQL shell after recovery")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Rebuild a durable server from its workspace after a crash")
    Term.(const recover $ workspace $ interactive)

let catalog_cmd =
  Cmd.v (Cmd.info "catalog" ~doc:"List the predefined component catalog")
    Term.(const catalog $ const ())

let cells_cmd =
  Cmd.v (Cmd.info "cells" ~doc:"Print the technology cell library")
    Term.(const cells $ const ())

let gen_cmd =
  let component =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"COMPONENT")
  in
  let size =
    Arg.(value & opt int 4 & info [ "size"; "n" ] ~doc:"Bit width")
  in
  let strategy =
    Arg.(value & opt string "balanced"
         & info [ "strategy" ] ~doc:"fastest | cheapest | balanced")
  in
  let clock_width =
    Arg.(value & opt (some float) None
         & info [ "clock-width" ] ~doc:"Minimum clock width bound (ns)")
  in
  let layout =
    Arg.(value & opt (some string) None
         & info [ "layout" ] ~doc:"Write a CIF layout to FILE" ~docv:"FILE")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate one component and print its reports")
    Term.(const gen $ component $ size $ strategy $ clock_width $ layout)

let hls_cmd =
  let dfg =
    Arg.(value & pos 0 string "diffeq" & info [] ~docv:"DFG"
           ~doc:"Dataflow graph: diffeq or fir4")
  in
  let clock =
    Arg.(value & opt float 30.0 & info [ "clock" ] ~doc:"Clock period (ns)")
  in
  let pessimism =
    Arg.(value & opt float 1.0
         & info [ "pessimism" ]
             ~doc:"Delay margin factor (1.0 = ICDB numbers, 1.6 = generic library)")
  in
  let rtl =
    Arg.(value & flag & info [ "rtl" ] ~doc:"Also generate controller and datapath")
  in
  Cmd.v
    (Cmd.info "hls" ~doc:"Schedule a dataflow graph against ICDB (Figure 1)")
    Term.(const hls $ dfg $ clock $ pessimism $ rtl)

let stats_cmd =
  let component =
    Arg.(value & opt string "counter"
         & info [ "component" ] ~doc:"Component to request" ~docv:"NAME")
  in
  let requests =
    Arg.(value & opt int 8
         & info [ "requests"; "n" ] ~doc:"Number of requests to run")
  in
  let connect =
    Arg.(value & opt (some string) None
         & info [ "connect" ]
             ~doc:"Instead of a local workload, fetch the live metrics of \
                   the icdbd at HOST:PORT — cache counters, net.* admission \
                   counters, and per-wire-command latency histograms"
             ~docv:"HOST:PORT")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"With --connect, print the stats payload as deterministic \
                   JSON (fixed field order) instead of the human tables — \
                   the format CI scripts parse")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a traced workload and print per-phase latency histograms, \
             the slowest requests, and all pipeline counters; or --connect \
             to a live icdbd")
    Term.(const stats $ component $ requests $ connect $ json)

let top_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ]
             ~doc:"Address of a running icdbd (the wire port, as in \
                   $(b,icdb connect))" ~docv:"HOST:PORT")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval"; "i" ] ~doc:"Seconds between refreshes"
             ~docv:"SECONDS")
  in
  let iterations =
    Arg.(value & opt int 0
         & info [ "iterations"; "n" ]
             ~doc:"Exit after this many refreshes (0 = run until \
                   interrupted) — scripting/CI hook")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live terminal view of a running icdbd: request/error rates, \
             p99 latencies, queue and write-queue pressure, connection \
             states, replication lag, open fds")
    Term.(const top $ connect $ interval $ iterations)

let blackbox_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ]
             ~doc:"Admin endpoint of a running icdbd (the --admin-port, \
                   not the wire port)" ~docv:"HOST:ADMIN_PORT")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ]
             ~doc:"Write the dump to FILE instead of stdout" ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "blackbox"
       ~doc:"Pull a flight-recorder dump (recent events, telemetry samples, \
             connection table) from a running icdbd's /blackboxz")
    Term.(const blackbox $ connect $ out)

let trace_cmd =
  let out =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Output file for the Chrome trace_event JSON")
  in
  let component =
    Arg.(value & opt string "counter"
         & info [ "component" ] ~doc:"Component to request" ~docv:"NAME")
  in
  let size =
    Arg.(value & opt int 4 & info [ "size"; "n" ] ~doc:"Bit width")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace one component request end to end and write the span tree \
             as Chrome trace_event JSON (chrome://tracing, Perfetto)")
    Term.(const trace_run $ out $ component $ size)

(* ------------------------------------------------------------------ *)
(* explore — design-space exploration sweeps (DB4HLS workload)         *)
(* ------------------------------------------------------------------ *)

let print_sql_result = function
  | Icdb_reldb.Sql.Affected n -> Printf.printf "%d row(s)\n" n
  | Icdb_reldb.Sql.Relation rel ->
      print_relation
        (List.map fst rel.Icdb_reldb.Query.rschema)
        (List.map
           (fun row ->
             Array.to_list (Array.map Icdb_reldb.Value.to_string row))
           rel.Icdb_reldb.Query.rrows)

let explore component axis_specs sweep store_dir connect batch inflight power
    limit verify query pareto json_out log_level =
  setup_logging log_level;
  let module Ax = Icdb_explore.Axis in
  let module St = Icdb_explore.Store in
  let module Dr = Icdb_explore.Driver in
  let fatal fmt = Printf.ksprintf (fun s -> Printf.eprintf "error: %s\n" s;
                                    exit 1) fmt
  in
  let usage fmt = Printf.ksprintf (fun s -> Printf.eprintf "error: %s\n" s;
                                    exit 2) fmt
  in
  let axes =
    try List.map Ax.parse axis_specs
    with Ax.Axis_error msg -> usage "%s" msg
  in
  if axis_specs = [] && query = None && pareto = None then
    usage "nothing to do: give at least one --axis, or --query/--pareto";
  let points =
    if axis_specs = [] then []
    else try Ax.expand ~component axes with Ax.Axis_error msg -> usage "%s" msg
  in
  let sweep = match sweep with Some s -> s | None -> component in
  let store =
    try St.open_ store_dir
    with
    | St.Store_error msg | Icdb_reldb.Db.Db_error msg -> fatal "%s" msg
    | Icdb_reldb.Journal.Journal_error msg -> fatal "%s" msg
  in
  Fun.protect ~finally:(fun () -> St.close store) @@ fun () ->
  let tty = Unix.isatty Unix.stderr in
  let progress_printed = ref false in
  let on_progress (pr : Dr.progress) =
    let show =
      tty || pr.Dr.pr_done = 0
      || pr.Dr.pr_done mod 10 = 0
      || pr.Dr.pr_done + pr.Dr.pr_skipped >= pr.Dr.pr_total
    in
    if show then begin
      progress_printed := true;
      let eta =
        match pr.Dr.pr_eta_s with
        | Some e when Float.is_finite e -> Printf.sprintf "  eta %.0fs" e
        | _ -> ""
      in
      Printf.eprintf "%sexplore %s: %d/%d done, %d skipped, %d failed%s%s%!"
        (if tty then "\r\027[K" else "") sweep pr.Dr.pr_done
        (pr.Dr.pr_total - pr.Dr.pr_skipped) pr.Dr.pr_skipped pr.Dr.pr_failed
        eta
        (if tty then "" else "\n")
    end
  in
  let t0 = Unix.gettimeofday () in
  let summary =
    if points = [] then None
    else
      let run backend =
        try Dr.run ~power ?limit ~on_progress ~sweep backend store points with
        | Dr.Driver_error msg -> fatal "%s" msg
        | Icdb_net.Client.Net_error msg ->
            if tty && !progress_printed then prerr_newline ();
            fatal "connection lost: %s (completed points are persisted; \
                   rerun to resume)" msg
      in
      match connect with
      | None -> Some (run (Dr.Local (Server.create ~verify ())))
      | Some spec -> (
          match parse_host_port spec with
          | None -> usage "expected HOST:PORT, got %s" spec
          | Some (host, port) -> (
              match Icdb_net.Client.connect ~host ~port ~retries:2 () with
              | exception Icdb_net.Client.Net_error msg -> fatal "%s" msg
              | client ->
                  Fun.protect
                    ~finally:(fun () -> Icdb_net.Client.close client)
                    (fun () ->
                      Some
                        (run
                           (Dr.Remote { client; batch; inflight })))))
  in
  let seconds = Unix.gettimeofday () -. t0 in
  if tty && !progress_printed then prerr_newline ();
  (* --verify also covers the reporting queries: re-run each one under
     EXPLAIN ANALYZE so the plan the store actually executed — index
     probe vs. scan, with per-node actual row counts — is printed next
     to its rows. *)
  let explain_if_verify stmt =
    if verify then begin
      match St.query store ("EXPLAIN ANALYZE " ^ stmt) with
      | Icdb_reldb.Sql.Relation rel ->
          List.iter
            (fun row ->
              match row.(0) with
              | Icdb_reldb.Value.Str line -> Printf.printf "  # %s\n" line
              | _ -> ())
            rel.Icdb_reldb.Query.rrows
      | Icdb_reldb.Sql.Affected _ -> ()
      | exception Icdb_reldb.Sql.Sql_error msg ->
          Printf.eprintf "explain failed: %s\n" msg
    end
  in
  (match summary with
  | None -> ()
  | Some s ->
      Printf.printf
        "sweep %s: %d points — %d executed, %d skipped, %d failed (%.1fs); \
         %d rows persisted in %s\n"
        sweep s.Dr.s_total s.Dr.s_executed s.Dr.s_skipped
        (List.length s.Dr.s_failures) seconds
        (St.count store ~sweep) store_dir;
      List.iter
        (fun (f : Dr.failure) ->
          Printf.printf "  failed: %s: %s\n"
            (Ax.point_to_string f.Dr.f_point)
            f.Dr.f_reason)
        s.Dr.s_failures;
      St.checkpoint store);
  (match pareto with
  | None -> ()
  | Some objectives -> (
      match String.split_on_char ',' objectives |> List.map String.trim with
      | [ x; y ] when x <> "" && y <> "" ->
          let stmt =
            Printf.sprintf "PARETO %s ON %s, %s WHERE sweep = %s" St.table_name
              x y
              (Icdb_reldb.Sql.quote_string sweep)
          in
          Printf.printf "%s\n" stmt;
          print_sql_result (St.query store stmt);
          explain_if_verify stmt
      | _ -> usage "--pareto expects COLX,COLY (e.g. area,delay)"));
  (match query with
  | None -> ()
  | Some stmt -> (
      try
        print_sql_result (St.query store stmt);
        explain_if_verify stmt
      with
      | Icdb_reldb.Sql.Sql_error msg
      | Icdb_reldb.Table.Schema_error msg
      | Icdb_reldb.Db.Db_error msg ->
          fatal "%s" msg));
  (match json_out, summary with
  | Some path, Some s ->
      let failed = List.length s.Dr.s_failures in
      Out_channel.with_open_text path (fun oc ->
          Printf.fprintf oc
            "{\"sweep\": \"%s\", \"total\": %d, \"executed\": %d, \
             \"skipped\": %d, \"failed\": %d, \"seconds\": %.3f, \
             \"rows\": %d}\n"
            (String.concat ""
               (List.map
                  (function
                    | ('"' | '\\') as c -> Printf.sprintf "\\%c" c
                    | c -> String.make 1 c)
                  (List.init (String.length sweep) (String.get sweep))))
            s.Dr.s_total s.Dr.s_executed s.Dr.s_skipped failed seconds
            (St.count store ~sweep))
  | _ -> ());
  match summary with
  | Some s when s.Dr.s_failures <> [] -> exit 1
  | _ -> ()

let explore_cmd =
  let component =
    Arg.(value & opt string "counter"
         & info [ "component" ] ~doc:"Catalog component to sweep" ~docv:"NAME")
  in
  let axes =
    Arg.(value & opt_all string []
         & info [ "axis"; "a" ]
             ~doc:"One sweep axis, $(i,name=values): $(b,size=2..9), \
                   $(b,size=2..16..2), $(b,size=2,4,8), \
                   $(b,strategy=fastest,cheapest,balanced), \
                   $(b,clock=10,20,none), $(b,delay=5,7.5,none); repeatable, \
                   the sweep is the cartesian product" ~docv:"AXIS")
  in
  let sweep =
    Arg.(value & opt (some string) None
         & info [ "sweep" ]
             ~doc:"Sweep name results are filed under (default: the \
                   component name); reruns with the same name skip \
                   already-persisted points" ~docv:"NAME")
  in
  let store_dir =
    Arg.(value & opt string "explore_store"
         & info [ "store" ]
             ~doc:"Results store directory (journal + snapshot); safe to \
                   kill and rerun" ~docv:"DIR")
  in
  let connect =
    Arg.(value & opt (some string) None
         & info [ "connect" ]
             ~doc:"Drive a running icdbd through the pipelined wire-v4 \
                   batch path instead of an in-process server"
             ~docv:"HOST:PORT")
  in
  let batch =
    Arg.(value & opt int 16
         & info [ "batch" ] ~doc:"Points per Batch frame (with --connect)")
  in
  let inflight =
    Arg.(value & opt int 4
         & info [ "inflight" ]
             ~doc:"Batch frames in flight at once (with --connect)")
  in
  let power =
    Arg.(value & flag
         & info [ "power" ]
             ~doc:"Also simulate and record dynamic power per point \
                   (slower)")
  in
  let limit =
    Arg.(value & opt (some int) None
         & info [ "limit" ]
             ~doc:"Execute at most N new points this run (partial sweeps \
                   resume on rerun)" ~docv:"N")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Verify every generated netlist by simulation (local \
                   backend only; slower). Also prints the EXPLAIN ANALYZE \
                   plan under each --query/--pareto report")
  in
  let query =
    Arg.(value & opt (some string) None
         & info [ "query" ]
             ~doc:"After the sweep, run this SQL (SELECT/PARETO/DOMINATED) \
                   against the store and print the rows" ~docv:"STMT")
  in
  let pareto =
    Arg.(value & opt (some string) None
         & info [ "pareto" ]
             ~doc:"After the sweep, print this sweep's Pareto frontier on \
                   two numeric columns, e.g. $(b,area,delay)" ~docv:"X,Y")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ]
             ~doc:"Write a machine-readable run summary to FILE" ~docv:"FILE")
  in
  let log_level =
    Arg.(value & opt (some string) None
         & info [ "log-level" ]
             ~doc:"Log structured events at this level and above to stderr \
                   (debug|info|warn|error)" ~docv:"LEVEL")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Sweep a component's attribute/constraint lattice (design-space \
             exploration), persist every point in an indexed, \
             Pareto-queryable results store, and resume safely after a \
             kill: already-persisted points are never recomputed")
    Term.(const explore $ component $ axes $ sweep $ store_dir $ connect
          $ batch $ inflight $ power $ limit $ verify $ query $ pareto $ json
          $ log_level)

let default =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  Faultinject.init_from_env ();
  let info =
    Cmd.info "icdb" ~version:"1.0.0"
      ~doc:"Intelligent Component Database for behavioral synthesis"
  in
  exit (Cmd.eval (Cmd.group ~default info
                    [ shell_cmd; serve_cmd; connect_cmd; recover_cmd;
                      catalog_cmd; gen_cmd; cells_cmd; hls_cmd; stats_cmd;
                      top_cmd; blackbox_cmd; trace_cmd; explore_cmd ]))
