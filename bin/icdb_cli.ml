(* The icdb command-line tool.

   - [icdb shell]    interactive CQL, as in Appendix B §4 ("ICDB provides
                     an interactive user interface program. A user can
                     enter the command description string and the user
                     interface program will call ICDB and display the
                     result on the screen.")
   - [icdb catalog]  list predefined components, functions, attributes
   - [icdb gen]      one-shot component generation from flags
   - [icdb cells]    print the technology cell library *)

open Cmdliner
open Icdb
open Icdb_cql

let print_results results =
  List.iter
    (fun (key, r) ->
      match r with
      | Exec.Rstr s ->
          Printf.printf "%s:\n%s\n" key s
      | Exec.Rint i -> Printf.printf "%s: %d\n" key i
      | Exec.Rfloat f -> Printf.printf "%s: %g\n" key f
      | Exec.Rstrs l -> Printf.printf "%s: %s\n" key (String.concat " " l))
    results

(* ------------------------------------------------------------------ *)
(* shell                                                               *)
(* ------------------------------------------------------------------ *)

let run_sql server stmt =
  match Icdb_reldb.Sql.exec (Server.db server) stmt with
  | Icdb_reldb.Sql.Affected n -> Printf.printf "%d row(s)\n" n
  | Icdb_reldb.Sql.Relation rel ->
      let cols = List.map fst rel.Icdb_reldb.Query.rschema in
      print_endline (String.concat " | " cols);
      List.iter
        (fun row ->
          print_endline
            (String.concat " | "
               (Array.to_list (Array.map Icdb_reldb.Value.to_string row))))
        rel.Icdb_reldb.Query.rrows

let shell_loop server =
  print_endline "ICDB interactive CQL shell.";
  print_endline "Enter a command terminated by a blank line (empty command quits).";
  print_endline "Lines starting with !sql query the metadata database directly.";
  print_endline "Example:";
  print_endline "  command:request_component;";
  print_endline "  component_name:counter;";
  print_endline "  attribute:(size:5);";
  print_endline "  instance:?s";
  let rec read_command acc =
    print_string (if acc = [] then "icdb> " else "....> ");
    match In_channel.input_line stdin with
    | None -> None
    | Some "" -> if acc = [] then None else Some (String.concat "\n" (List.rev acc))
    | Some line
      when acc = [] && String.length line > 5 && String.sub line 0 5 = "!sql " ->
        Some line
    | Some line -> read_command (line :: acc)
  in
  let rec loop () =
    match read_command [] with
    | None -> print_endline "bye."
    | Some cmd ->
        (try
           if String.length cmd > 5 && String.sub cmd 0 5 = "!sql " then
             run_sql server (String.sub cmd 5 (String.length cmd - 5))
           else print_results (Exec.run server cmd)
         with
         | Exec.Cql_error msg -> Printf.printf "CQL error: %s\n" msg
         | Server.Icdb_error msg -> Printf.printf "ICDB error: %s\n" msg
         | Icdb_reldb.Sql.Sql_error msg -> Printf.printf "SQL error: %s\n" msg);
        loop ()
  in
  loop ()

let setup_logging log_level =
  match log_level with
  | None -> ()
  | Some l -> (
      match Icdb_obs.Event.level_of_string l with
      | Some lvl ->
          Icdb_obs.Event.set_level lvl;
          ignore (Icdb_obs.Event.add_sink (Icdb_obs.Event.stderr_sink ()))
      | None ->
          Printf.eprintf
            "error: unknown log level %s (expected debug|info|warn|error)\n" l;
          exit 1)

let shell workspace durable log_level trace_out =
  setup_logging log_level;
  if trace_out <> None then Icdb_obs.Trace.set_enabled true;
  match Server.create ?workspace ~durable () with
  | exception Server.Icdb_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | server ->
      if durable then
        Printf.printf "journaling to %s\n"
          (Filename.concat (Server.workspace server) "icdb.journal");
      shell_loop server;
      (match trace_out with
       | None -> ()
       | Some path ->
           Icdb_obs.Trace.write_chrome path;
           Printf.printf
             "trace written to %s (load it in chrome://tracing or \
              https://ui.perfetto.dev)\n"
             path)

(* ------------------------------------------------------------------ *)
(* recover                                                             *)
(* ------------------------------------------------------------------ *)

let recover workspace interactive =
  match Server.reopen ~workspace () with
  | exception Server.Icdb_error msg ->
      Printf.eprintf "recovery failed: %s\n" msg;
      exit 1
  | server, r ->
      Printf.printf "recovered workspace %s\n" workspace;
      Printf.printf "  journal entries replayed: %d\n" r.Server.rr_entries_replayed;
      if r.Server.rr_torn_tail then
        print_endline "  torn journal tail truncated";
      if r.Server.rr_rolled_back_tx then
        print_endline "  uncommitted transaction rolled back";
      Printf.printf "  instances: %s\n"
        (match r.Server.rr_instances with
         | [] -> "(none)"
         | ids -> String.concat " " ids);
      List.iter
        (fun (kind, msg) ->
          Printf.printf "  dropped (%s): %s\n" (Fault.kind_to_string kind) msg)
        r.Server.rr_dropped;
      List.iter (Printf.printf "  removed orphan: %s\n") r.Server.rr_orphans;
      if interactive then shell_loop server

(* ------------------------------------------------------------------ *)
(* catalog                                                             *)
(* ------------------------------------------------------------------ *)

let catalog () =
  Printf.printf "%-18s %-14s %-38s %s\n" "component" "implementation"
    "functions" "attributes (defaults)";
  print_endline (String.make 100 '-');
  List.iter
    (fun (c : Icdb_genus.Component.t) ->
      Printf.printf "%-18s %-14s %-38s %s\n" c.Icdb_genus.Component.comp_name
        c.Icdb_genus.Component.implementation
        (String.concat ","
           (List.map Icdb_genus.Func.to_string
              (c.Icdb_genus.Component.functions_of [])))
        (String.concat ", "
           (List.map
              (fun (n, v) -> Printf.sprintf "%s=%d" n v)
              c.Icdb_genus.Component.attributes)))
    Icdb_genus.Component.all

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen component size strategy clock_width layout_out =
  let server = Server.create () in
  let strategy =
    match strategy with
    | "fastest" -> Icdb_timing.Sizing.Fastest
    | "cheapest" -> Icdb_timing.Sizing.Cheapest
    | _ -> Icdb_timing.Sizing.Balanced
  in
  let constraints =
    { Icdb_timing.Sizing.default_constraints with
      strategy;
      clock_width }
  in
  let inst =
    Server.request_component server
      (Spec.make ~constraints
         (Spec.From_component
            { component; attributes = [ ("size", size) ]; functions = [] }))
  in
  Printf.printf "instance: %s (%d gates, constraints %s)\n" inst.Instance.id
    (Instance.gate_count inst)
    (if inst.Instance.constraints_met then "met" else "NOT met");
  print_endline "-- delay --";
  print_endline (Instance.delay_string inst);
  print_endline "-- shape function --";
  print_endline (Instance.shape_string inst);
  print_endline "-- connection info --";
  print_endline (Instance.connect_string inst);
  match layout_out with
  | None -> ()
  | Some path ->
      let _, cif, _ = Server.request_layout server inst.Instance.id () in
      Out_channel.with_open_text path (fun oc -> output_string oc cif);
      Printf.printf "CIF layout written to %s\n" path

(* ------------------------------------------------------------------ *)
(* cells                                                               *)
(* ------------------------------------------------------------------ *)

let cells () =
  Printf.printf "%-10s %5s %8s %6s %6s %6s %6s\n" "cell" "T" "width" "X" "Y"
    "Z" "setup";
  print_endline (String.make 56 '-');
  List.iter
    (fun (c : Icdb_logic.Celllib.t) ->
      Printf.printf "%-10s %5d %8.1f %6.2f %6.2f %6.2f %6.1f\n"
        c.Icdb_logic.Celllib.cname c.Icdb_logic.Celllib.transistors
        c.Icdb_logic.Celllib.width c.Icdb_logic.Celllib.x_delay
        c.Icdb_logic.Celllib.y_delay c.Icdb_logic.Celllib.z_delay
        c.Icdb_logic.Celllib.setup)
    Icdb_logic.Celllib.all

(* ------------------------------------------------------------------ *)
(* hls                                                                 *)
(* ------------------------------------------------------------------ *)

let hls dfg_name clock pessimism with_rtl =
  let dfg =
    match dfg_name with
    | "diffeq" -> Icdb_hls.Dfg.diffeq
    | "fir4" -> Icdb_hls.Dfg.fir4
    | other ->
        Printf.eprintf "unknown dataflow graph %s (try diffeq or fir4)\n" other;
        exit 1
  in
  let server = Server.create () in
  let r = Icdb_hls.Schedule.run server dfg ~clock ~pessimism in
  print_string (Icdb_hls.Schedule.to_string r);
  if with_rtl then begin
    let ctrl = Icdb_hls.Controller.generate server r in
    Printf.printf "\ncontroller (%d gates):\n%s\n"
      (Instance.gate_count ctrl.Icdb_hls.Controller.c_instance)
      ctrl.Icdb_hls.Controller.c_iif;
    let dp = Icdb_hls.Datapath.generate server r in
    Printf.printf "datapath cluster: %d gates, %d muxes, %d registered results\n"
      (Instance.gate_count dp.Icdb_hls.Datapath.d_instance)
      dp.Icdb_hls.Datapath.d_muxes
      (List.length dp.Icdb_hls.Datapath.d_registers)
  end

(* ------------------------------------------------------------------ *)
(* stats / trace                                                       *)
(* ------------------------------------------------------------------ *)

let workload_spec component size strategy =
  let strategy =
    match strategy with
    | "fastest" -> Icdb_timing.Sizing.Fastest
    | "cheapest" -> Icdb_timing.Sizing.Cheapest
    | _ -> Icdb_timing.Sizing.Balanced
  in
  Spec.make
    ~constraints:{ Icdb_timing.Sizing.default_constraints with strategy }
    ~target:Spec.Layout
    (Spec.From_component
       { component; attributes = [ ("size", size) ]; functions = [] })

(* Run a small representative workload with tracing on and print the
   per-phase latency table, the slowest requests, and every counter the
   instrumented code bumped. *)
let stats component requests =
  Icdb_obs.Trace.set_enabled true;
  let server = Server.create ~verify:false () in
  (try
     for i = 0 to requests - 1 do
       (* vary the width so the workload mixes cold generations with
          exact-cache hits, like a real synthesis session *)
       let size = 2 + (i mod 4) in
       ignore (Server.request_component server (workload_spec component size "balanced"))
     done
   with Server.Icdb_error msg ->
     Printf.eprintf "error: %s\n" msg;
     exit 1);
  let st = Server.stats server in
  Printf.printf "%d request(s) against component %s\n\n" requests component;
  Printf.printf
    "cache: %d hit(s), %d reuse hit(s), %d miss(es); memo: %d/%d\n\n"
    st.Server.st_hits st.Server.st_reuse_hits st.Server.st_misses
    st.Server.st_memo_hits st.Server.st_memo_misses;
  Printf.printf "%-20s %7s %10s %10s %10s %10s\n" "phase" "count" "p50" "p90"
    "p99" "total";
  print_endline (String.make 72 '-');
  List.iter
    (fun (s : Icdb_obs.Metrics.summary) ->
      Printf.printf "%-20s %7d %10s %10s %10s %10s\n" s.Icdb_obs.Metrics.s_name
        s.Icdb_obs.Metrics.s_count
        (Icdb_obs.Metrics.pretty_s s.Icdb_obs.Metrics.s_p50)
        (Icdb_obs.Metrics.pretty_s s.Icdb_obs.Metrics.s_p90)
        (Icdb_obs.Metrics.pretty_s s.Icdb_obs.Metrics.s_p99)
        (Icdb_obs.Metrics.pretty_s s.Icdb_obs.Metrics.s_sum))
    st.Server.st_phases;
  (match st.Server.st_slow with
   | [] -> ()
   | slow ->
       Printf.printf "\nslowest requests:\n";
       List.iter
         (fun (sr : Server.slow_request) ->
           Printf.printf "  %s  %s -> %s\n"
             (Icdb_obs.Metrics.pretty_s sr.Server.sr_seconds)
             sr.Server.sr_key sr.Server.sr_id)
         slow);
  print_newline ();
  print_string (Icdb_obs.Metrics.render ())

(* Trace one request end to end and write the span tree as Chrome
   trace_event JSON. *)
let trace_run out component size =
  Icdb_obs.Trace.set_enabled true;
  let server = Server.create ~verify:false () in
  let mark = Icdb_obs.Trace.finished_count () in
  (match Server.request_component server (workload_spec component size "balanced") with
   | exception Server.Icdb_error msg ->
       Printf.eprintf "error: %s\n" msg;
       exit 1
   | inst ->
       let spans = Icdb_obs.Trace.since mark in
       Icdb_obs.Trace.write_chrome ~spans out;
       Printf.printf "instance %s: %d span(s) written to %s\n" inst.Instance.id
         (List.length spans) out;
       Printf.printf "load the file in chrome://tracing or https://ui.perfetto.dev\n\n";
       Printf.printf "%-20s %10s\n" "phase" "total";
       print_endline (String.make 32 '-');
       List.iter
         (fun (name, seconds) ->
           Printf.printf "%-20s %10s\n" name (Icdb_obs.Metrics.pretty_s seconds))
         (Icdb_obs.Trace.phase_totals spans))

(* ------------------------------------------------------------------ *)
(* cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

let shell_cmd =
  let workspace =
    Arg.(value & opt (some string) None
         & info [ "workspace" ] ~doc:"Workspace directory" ~docv:"DIR")
  in
  let durable =
    Arg.(value & flag
         & info [ "durable" ]
             ~doc:"Journal every mutation so the workspace survives a crash \
                   (recover it with $(b,icdb recover))")
  in
  let log_level =
    Arg.(value & opt (some string) None
         & info [ "log-level" ]
             ~doc:"Log structured events at this level and above to stderr \
                   (debug|info|warn|error)" ~docv:"LEVEL")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ]
             ~doc:"Trace every request and write Chrome trace_event JSON to \
                   FILE on exit" ~docv:"FILE")
  in
  Cmd.v (Cmd.info "shell" ~doc:"Interactive CQL shell")
    Term.(const shell $ workspace $ durable $ log_level $ trace_out)

let recover_cmd =
  let workspace =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKSPACE"
           ~doc:"Workspace directory of a durable server")
  in
  let interactive =
    Arg.(value & flag
         & info [ "shell" ] ~doc:"Drop into the CQL shell after recovery")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Rebuild a durable server from its workspace after a crash")
    Term.(const recover $ workspace $ interactive)

let catalog_cmd =
  Cmd.v (Cmd.info "catalog" ~doc:"List the predefined component catalog")
    Term.(const catalog $ const ())

let cells_cmd =
  Cmd.v (Cmd.info "cells" ~doc:"Print the technology cell library")
    Term.(const cells $ const ())

let gen_cmd =
  let component =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"COMPONENT")
  in
  let size =
    Arg.(value & opt int 4 & info [ "size"; "n" ] ~doc:"Bit width")
  in
  let strategy =
    Arg.(value & opt string "balanced"
         & info [ "strategy" ] ~doc:"fastest | cheapest | balanced")
  in
  let clock_width =
    Arg.(value & opt (some float) None
         & info [ "clock-width" ] ~doc:"Minimum clock width bound (ns)")
  in
  let layout =
    Arg.(value & opt (some string) None
         & info [ "layout" ] ~doc:"Write a CIF layout to FILE" ~docv:"FILE")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate one component and print its reports")
    Term.(const gen $ component $ size $ strategy $ clock_width $ layout)

let hls_cmd =
  let dfg =
    Arg.(value & pos 0 string "diffeq" & info [] ~docv:"DFG"
           ~doc:"Dataflow graph: diffeq or fir4")
  in
  let clock =
    Arg.(value & opt float 30.0 & info [ "clock" ] ~doc:"Clock period (ns)")
  in
  let pessimism =
    Arg.(value & opt float 1.0
         & info [ "pessimism" ]
             ~doc:"Delay margin factor (1.0 = ICDB numbers, 1.6 = generic library)")
  in
  let rtl =
    Arg.(value & flag & info [ "rtl" ] ~doc:"Also generate controller and datapath")
  in
  Cmd.v
    (Cmd.info "hls" ~doc:"Schedule a dataflow graph against ICDB (Figure 1)")
    Term.(const hls $ dfg $ clock $ pessimism $ rtl)

let stats_cmd =
  let component =
    Arg.(value & opt string "counter"
         & info [ "component" ] ~doc:"Component to request" ~docv:"NAME")
  in
  let requests =
    Arg.(value & opt int 8
         & info [ "requests"; "n" ] ~doc:"Number of requests to run")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a traced workload and print per-phase latency histograms, \
             the slowest requests, and all pipeline counters")
    Term.(const stats $ component $ requests)

let trace_cmd =
  let out =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Output file for the Chrome trace_event JSON")
  in
  let component =
    Arg.(value & opt string "counter"
         & info [ "component" ] ~doc:"Component to request" ~docv:"NAME")
  in
  let size =
    Arg.(value & opt int 4 & info [ "size"; "n" ] ~doc:"Bit width")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace one component request end to end and write the span tree \
             as Chrome trace_event JSON (chrome://tracing, Perfetto)")
    Term.(const trace_run $ out $ component $ size)

let default =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  Faultinject.init_from_env ();
  let info =
    Cmd.info "icdb" ~version:"1.0.0"
      ~doc:"Intelligent Component Database for behavioral synthesis"
  in
  exit (Cmd.eval (Cmd.group ~default info
                    [ shell_cmd; recover_cmd; catalog_cmd; gen_cmd; cells_cmd;
                      hls_cmd; stats_cmd; trace_cmd ]))
