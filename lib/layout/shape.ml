(* Shape functions: the list of (width, height) alternatives a component
   can be laid out in, obtained by varying the number of strips (§3.3,
   Figure 6). Floorplanners consume these to pick aspect ratios. *)

open Icdb_netlist

type alternative = {
  alt_index : int;       (* 1-based, as in the §3.3 listing *)
  alt_strips : int;
  alt_width : float;
  alt_height : float;
  alt_area : float;
}

type t = alternative list

let max_strips_for nl =
  let n = List.length nl.Netlist.instances in
  (* small components offer up to 8 alternatives (Figure 6); larger
     ones get proportionally more so square aspect ratios exist *)
  if n <= 64 then max 1 (min 8 n) else min 20 (n / 8)

(* All strip counts from 1 to a sensible maximum, normalized into a
   proper staircase shape function: widths strictly decrease with the
   strip count and heights never decrease (the estimator is made
   conservative where raw channel estimates would dip). *)
let of_netlist ?(seed = 1) (nl : Netlist.t) : t =
  Icdb_obs.Trace.with_span "shape.estimate" @@ fun () ->
  let m = max_strips_for nl in
  let raw =
    List.map
      (fun strips -> (strips, Area_est.estimate ~seed nl ~strips))
      (List.init m (fun i -> i + 1))
  in
  let _, _, alts =
    List.fold_left
      (fun (prev_w, prev_h, acc) (strips, e) ->
        let w = e.Area_est.width and h = Float.max e.Area_est.height prev_h in
        if w >= prev_w then (prev_w, prev_h, acc)  (* not narrower: drop *)
        else (w, h, (strips, w, h) :: acc))
      (infinity, 0.0, []) raw
  in
  List.rev alts
  |> List.mapi (fun i (strips, w, h) ->
         { alt_index = i + 1;
           alt_strips = strips;
           alt_width = w;
           alt_height = h;
           alt_area = w *. h })

(* Keep only Pareto-optimal points (no alternative both narrower and
   shorter exists). *)
let pareto (t : t) =
  List.filter
    (fun a ->
      not
        (List.exists
           (fun b ->
             b != a && b.alt_width <= a.alt_width
             && b.alt_height <= a.alt_height
             && (b.alt_width < a.alt_width || b.alt_height < a.alt_height))
           t))
    t

let best_area (t : t) =
  match t with
  | [] -> invalid_arg "Shape.best_area: empty shape function"
  | first :: rest ->
      List.fold_left
        (fun best a -> if a.alt_area < best.alt_area then a else best)
        first rest

(* Narrowest alternative at most [max_width] wide, if any. *)
let fitting_width (t : t) ~max_width =
  List.filter (fun a -> a.alt_width <= max_width) t
  |> function
  | [] -> None
  | fits -> Some (best_area fits)

(* The §3.3 listing:
     Alternative=1 width=12000 height=48000 ... *)
let to_string (t : t) =
  String.concat "\n"
    (List.map
       (fun a ->
         Printf.sprintf "Alternative=%d width=%.0f height=%.0f"
           a.alt_index a.alt_width a.alt_height)
       t)
