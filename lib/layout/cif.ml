(* CIF (Caltech Intermediate Form) output for generated layouts.

   The layout is symbolic: each placed cell becomes a box on the
   cell-outline layer with a user-text label, strips sit between power
   rails, and assigned ports appear as labelled pads on the bounding
   box. Dimensions are micrometres; CIF distances are written in
   centimicrons (×100). *)

open Icdb_netlist

type layout = {
  lname : string;
  lwidth : float;
  lheight : float;
  lstrips : int;
  boxes : (string * float * float * float * float) list;
      (* label, x, y, w, h — cell outlines *)
  rails : (float * float) list;  (* y, height of each Vdd/Vss rail *)
  port_pads : Ports.placed_port list;
}

(* Stack a placement into real coordinates: rails, strips and channels
   bottom-up, channel heights taken from the track estimate. *)
let of_placement ?(seed = 1) (p : Strip.t) ~(ports : Ports.placed_port list) =
  let nl = p.Strip.netlist in
  let est = Area_est.estimate ~seed nl ~strips:p.Strip.strips in
  let spans = Strip.channel_spans p in
  let width = Float.max (Strip.width p) 1.0 in
  let cells_per_strip =
    max 1 (List.length nl.Netlist.instances / max 1 p.Strip.strips)
  in
  let util = Area_est.track_utilization ~cells_in_strip:cells_per_strip in
  let channel_height ch =
    if ch >= Array.length spans then 0.0
    else
      let tracks =
        Float.ceil (spans.(ch) /. (width *. util))
      in
      tracks *. Area_est.track_pitch
  in
  (* y of the bottom of each strip *)
  let strip_y = Array.make p.Strip.strips 0.0 in
  let rails = ref [] in
  let y = ref 0.0 in
  for s = 0 to p.Strip.strips - 1 do
    rails := (!y, Area_est.rail_height) :: !rails;
    y := !y +. Area_est.rail_height;
    strip_y.(s) <- !y;
    y := !y +. Icdb_logic.Celllib.cell_height;
    if s < p.Strip.strips - 1 then y := !y +. channel_height s
  done;
  rails := (!y, Area_est.rail_height) :: !rails;
  y := !y +. Area_est.rail_height;
  let height = !y in
  let boxes =
    List.map
      (fun (c : Strip.placed_cell) ->
        ( c.Strip.pc_inst.Netlist.inst_name ^ ":" ^ c.Strip.pc_inst.Netlist.cell,
          c.Strip.pc_x,
          strip_y.(c.Strip.pc_strip),
          c.Strip.pc_width,
          Icdb_logic.Celllib.cell_height ))
      p.Strip.cells
  in
  ignore est;
  { lname = nl.Netlist.name;
    lwidth = width;
    lheight = height;
    lstrips = p.Strip.strips;
    boxes;
    rails = List.rev !rails;
    port_pads = ports }

let cu f = int_of_float (Float.round (f *. 100.0))  (* µm -> centimicrons *)

let to_cif (l : layout) =
  let buf = Buffer.create 4096 in
  let box ~layer x y w h =
    Buffer.add_string buf
      (Printf.sprintf "    L %s; B %d %d %d %d;\n" layer (cu w) (cu h)
         (cu (x +. (w /. 2.0))) (cu (y +. (h /. 2.0))))
  in
  Buffer.add_string buf (Printf.sprintf "(CIF for %s, strips=%d);\n" l.lname l.lstrips);
  Buffer.add_string buf "DS 1 1 1;\n";
  Buffer.add_string buf (Printf.sprintf "  9 %s;\n" l.lname);
  (* bounding box on the well layer *)
  box ~layer:"CWN" 0.0 0.0 l.lwidth l.lheight;
  (* rails on metal1 *)
  List.iter (fun (y, h) -> box ~layer:"CMF" 0.0 y l.lwidth h) l.rails;
  (* cells on the poly layer with labels *)
  List.iter
    (fun (label, x, y, w, h) ->
      box ~layer:"CPG" x y w h;
      Buffer.add_string buf
        (Printf.sprintf "    94 %s %d %d;\n" label
           (cu (x +. (w /. 2.0))) (cu (y +. (h /. 2.0)))))
    l.boxes;
  (* port pads on metal2 *)
  List.iter
    (fun (p : Ports.placed_port) ->
      let pad = 8.0 in
      box ~layer:"CMS" (p.Ports.pp_x -. (pad /. 2.0))
        (p.Ports.pp_y -. (pad /. 2.0)) pad pad;
      Buffer.add_string buf
        (Printf.sprintf "    94 %s %d %d;\n" p.Ports.pp_name
           (cu p.Ports.pp_x) (cu p.Ports.pp_y)))
    l.port_pads;
  Buffer.add_string buf "DF;\nC 1;\nE\n";
  Buffer.contents buf

(* One-call convenience: place, assign ports, emit CIF. *)
let generate ?(seed = 1) (nl : Netlist.t) ~strips ~port_specs =
  Icdb_obs.Trace.with_span "cif.generate" @@ fun () ->
  let placement = Strip.place nl ~strips in
  let spans = Strip.channel_spans placement in
  ignore spans;
  let est = Area_est.estimate ~seed nl ~strips in
  let ports =
    Ports.assign port_specs ~width:est.Area_est.width
      ~height:est.Area_est.height
  in
  let l = of_placement ~seed placement ~ports in
  (l, to_cif l)
