(* Multi-level logic optimization (the MILO substitute, §4.3.1).

   The script mirrors the paper's six-step description:
   1. sequential constructs were already removed ({!Network.of_flat});
   2. node functions are minimized (Quine–McCluskey) and factored;
   3. levels shrink by eliminating small single-fanout nodes into their
      readers and re-factoring;
   4. technology mapping then combines gates into complex gates
      ({!Techmap});
   5. sequential logic is reinserted (registers survive as elements);
   6. transistor sizing happens downstream (Icdb_timing.Sizing). *)

open Icdb_iif

(* ------------------------------------------------------------------ *)
(* Expression utilities                                                *)
(* ------------------------------------------------------------------ *)

let rec subst_nets map e =
  match e with
  | Flat.Fconst _ -> e
  | Flat.Fnet n -> (
      match Hashtbl.find_opt map n with Some e' -> e' | None -> e)
  | Flat.Fnot e -> Flat.Fnot (subst_nets map e)
  | Flat.Fand es -> Flat.Fand (List.map (subst_nets map) es)
  | Flat.For_ es -> Flat.For_ (List.map (subst_nets map) es)
  | Flat.Fxor (a, b) -> Flat.Fxor (subst_nets map a, subst_nets map b)
  | Flat.Fxnor (a, b) -> Flat.Fxnor (subst_nets map a, subst_nets map b)
  | Flat.Fbuf e -> Flat.Fbuf (subst_nets map e)
  | Flat.Fschmitt e -> Flat.Fschmitt (subst_nets map e)
  | Flat.Fdelay (e, d) -> Flat.Fdelay (subst_nets map e, d)
  | Flat.Ftri { data; enable } ->
      Flat.Ftri { data = subst_nets map data; enable = subst_nets map enable }
  | Flat.Fwor es -> Flat.Fwor (List.map (subst_nets map) es)

(* Constant folding and local identities. *)
let rec fold e =
  match e with
  | Flat.Fconst _ | Flat.Fnet _ -> e
  | Flat.Fnot e -> (
      match fold e with
      | Flat.Fconst b -> Flat.Fconst (not b)
      | Flat.Fnot inner -> inner
      | e -> Flat.Fnot e)
  | Flat.Fand es -> (
      let es = List.map fold es in
      if List.exists (fun e -> e = Flat.Fconst false) es then Flat.Fconst false
      else
        let es =
          List.concat_map
            (fun e ->
              match e with
              | Flat.Fconst true -> []
              | Flat.Fand inner -> inner
              | e -> [ e ])
            es
        in
        match es with [] -> Flat.Fconst true | [ e ] -> e | es -> Flat.Fand es)
  | Flat.For_ es -> (
      let es = List.map fold es in
      if List.exists (fun e -> e = Flat.Fconst true) es then Flat.Fconst true
      else
        let es =
          List.concat_map
            (fun e ->
              match e with
              | Flat.Fconst false -> []
              | Flat.For_ inner -> inner
              | e -> [ e ])
            es
        in
        match es with [] -> Flat.Fconst false | [ e ] -> e | es -> Flat.For_ es)
  | Flat.Fxor (a, b) -> (
      match fold a, fold b with
      | Flat.Fconst x, Flat.Fconst y -> Flat.Fconst (x <> y)
      | Flat.Fconst false, e | e, Flat.Fconst false -> e
      | Flat.Fconst true, e | e, Flat.Fconst true -> Flat.Fnot e
      | a, b -> Flat.Fxor (a, b))
  | Flat.Fxnor (a, b) -> (
      match fold a, fold b with
      | Flat.Fconst x, Flat.Fconst y -> Flat.Fconst (x = y)
      | Flat.Fconst true, e | e, Flat.Fconst true -> e
      | Flat.Fconst false, e | e, Flat.Fconst false -> Flat.Fnot e
      | a, b -> Flat.Fxnor (a, b))
  | Flat.Fbuf e -> Flat.Fbuf (fold e)
  | Flat.Fschmitt e -> Flat.Fschmitt (fold e)
  | Flat.Fdelay (e, d) -> Flat.Fdelay (fold e, d)
  | Flat.Ftri { data; enable } -> (
      match fold enable with
      | Flat.Fconst true -> fold data
      | enable -> Flat.Ftri { data = fold data; enable })
  | Flat.Fwor es -> Flat.Fwor (List.map fold es)

(* Pure AND/OR/NOT cone (minimizable via SOP)? *)
let rec is_sop_friendly = function
  | Flat.Fconst _ | Flat.Fnet _ -> true
  | Flat.Fnot e -> is_sop_friendly e
  | Flat.Fand es | Flat.For_ es -> List.for_all is_sop_friendly es
  | Flat.Fxor _ | Flat.Fxnor _ | Flat.Fbuf _ | Flat.Fschmitt _
  | Flat.Fdelay _ | Flat.Ftri _ | Flat.Fwor _ -> false

let support e = Flat.uniq (Flat.fexpr_nets e)

(* ------------------------------------------------------------------ *)
(* Sweep: constant propagation, alias inlining, dead-node removal      *)
(* ------------------------------------------------------------------ *)

let sweep (net : Network.t) =
  let open Network in
  let changed = ref true in
  while !changed do
    changed := false;
    let visible = visible_nets net in
    (* Pass 1: fold every gate; collect aliases and constants. *)
    let repl = Hashtbl.create 16 in
    net.elements <-
      List.map
        (fun el ->
          match el with
          | Gate { out; expr } ->
              let expr = fold expr in
              (match expr with
               | Flat.Fconst _ when not (Hashtbl.mem visible out) ->
                   Hashtbl.replace repl out expr
               | Flat.Fnet _ when not (Hashtbl.mem visible out) ->
                   Hashtbl.replace repl out expr
               | _ -> ());
              Gate { out; expr }
          | el -> el)
        net.elements;
    if Hashtbl.length repl > 0 then changed := true;
    (* Close alias chains (t2 -> t1 -> a) so one substitution pass never
       leaves a reference to a gate being dropped. Chains are acyclic
       (single drivers, combinational), but bound the loop anyway. *)
    let rec close expr guard =
      if guard = 0 then expr
      else
        let expr' = fold (subst_nets repl expr) in
        if expr' = expr then expr else close expr' (guard - 1)
    in
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) repl [] in
    List.iter
      (fun k -> Hashtbl.replace repl k (close (Hashtbl.find repl k) 64))
      keys;
    (* Pass 2: substitute aliases/constants into every reader, dropping
       the replaced gates. *)
    if Hashtbl.length repl > 0 then
      net.elements <-
        List.filter_map
          (fun el ->
            match el with
            | Gate { out; _ } when Hashtbl.mem repl out -> None
            | Gate { out; expr } ->
                Some (Gate { out; expr = fold (subst_nets repl expr) })
            | el -> Some el)
          net.elements;
    (* Alias substitution cannot reach sequential pins (they reference
       nets by name); give aliased nets a concrete driver when a
       sequential element reads them. *)
    let needed = Hashtbl.create 16 in
    List.iter
      (fun el ->
        match el with
        | Gate _ -> ()
        | el ->
            List.iter
              (fun n -> if Hashtbl.mem repl n then Hashtbl.replace needed n ())
              (element_reads el))
      net.elements;
    Hashtbl.iter
      (fun n () ->
        net.elements <-
          Gate { out = n; expr = Hashtbl.find repl n } :: net.elements)
      needed;
    (* Pass 3: drop unread, invisible gates. *)
    let visible = visible_nets net in
    let read = Hashtbl.create 64 in
    List.iter
      (fun el ->
        List.iter (fun n -> Hashtbl.replace read n ()) (element_reads el))
      net.elements;
    let before = List.length net.elements in
    net.elements <-
      List.filter
        (fun el ->
          match el with
          | Gate { out; _ } -> Hashtbl.mem read out || Hashtbl.mem visible out
          | _ -> true)
        net.elements;
    if List.length net.elements <> before then changed := true
  done

(* ------------------------------------------------------------------ *)
(* XOR / buffer extraction                                             *)
(* ------------------------------------------------------------------ *)

(* Pull XOR/XNOR/BUF/SCHMITT subtrees out of mixed gates so the
   remaining AND/OR/NOT logic is SOP-friendly. *)
let extract_special (net : Network.t) =
  let open Network in
  let counter = ref 0 in
  let extra = ref [] in
  let fresh out =
    incr counter;
    Printf.sprintf "%s$x%d" out !counter
  in
  let rec walk out ~top e =
    match e with
    | Flat.Fconst _ | Flat.Fnet _ -> e
    | Flat.Fnot e -> Flat.Fnot (walk out ~top:false e)
    | Flat.Fand es -> Flat.Fand (List.map (walk out ~top:false) es)
    | Flat.For_ es -> Flat.For_ (List.map (walk out ~top:false) es)
    | Flat.Fxor (a, b) ->
        let a = hoist out a and b = hoist out b in
        let x = Flat.Fxor (a, b) in
        if top then x else hoist_expr out x
    | Flat.Fxnor (a, b) ->
        let a = hoist out a and b = hoist out b in
        let x = Flat.Fxnor (a, b) in
        if top then x else hoist_expr out x
    | Flat.Fbuf e ->
        let e = hoist out e in
        if top then Flat.Fbuf e else hoist_expr out (Flat.Fbuf e)
    | Flat.Fschmitt e ->
        let e = hoist out e in
        if top then Flat.Fschmitt e else hoist_expr out (Flat.Fschmitt e)
    | Flat.Fdelay (e, d) -> Flat.Fdelay (walk out ~top:false e, d)
    | Flat.Ftri { data; enable } ->
        Flat.Ftri
          { data = walk out ~top:false data; enable = walk out ~top:false enable }
    | Flat.Fwor es -> Flat.Fwor (List.map (walk out ~top:false) es)
  (* hoist: ensure a subexpression is a plain net (possibly extracting). *)
  and hoist out e =
    match walk out ~top:false e with
    | (Flat.Fnet _ | Flat.Fconst _) as e -> e
    | e -> hoist_expr out e
  and hoist_expr out e =
    let n = fresh out in
    extra := Gate { out = n; expr = e } :: !extra;
    Flat.Fnet n
  in
  net.elements <-
    List.map
      (fun el ->
        match el with
        | Gate { out; expr } -> Gate { out; expr = walk out ~top:true expr }
        | el -> el)
      net.elements;
  net.elements <- net.elements @ List.rev !extra

(* ------------------------------------------------------------------ *)
(* Node minimization                                                   *)
(* ------------------------------------------------------------------ *)

let minimize_expr expr =
  if not (is_sop_friendly expr) then expr
  else
    let fanins = Array.of_list (support expr) in
    if Array.length fanins = 0 then fold expr
    else
      match Sop.of_fexpr fanins expr with
      | sop ->
          let minimized = Sop.minimize sop in
          fold (Factor.factor fanins minimized)
      | exception Sop.Too_wide -> expr

let minimize_nodes (net : Network.t) =
  let open Network in
  net.elements <-
    List.map
      (fun el ->
        match el with
        | Gate { out; expr } -> Gate { out; expr = minimize_expr expr }
        | el -> el)
      net.elements

(* ------------------------------------------------------------------ *)
(* Eliminate: collapse single-fanout nodes into their reader           *)
(* ------------------------------------------------------------------ *)

let max_collapse_support = 12

let eliminate (net : Network.t) =
  let open Network in
  let changed = ref true in
  while !changed do
    changed := false;
    let visible = visible_nets net in
    (* fanout census over gate reads only *)
    let reads = Hashtbl.create 64 in
    List.iter
      (fun el ->
        let bump n =
          Hashtbl.replace reads n
            (1 + match Hashtbl.find_opt reads n with Some c -> c | None -> 0)
        in
        List.iter bump (element_reads el))
      net.elements;
    (* candidates: SOP-friendly gate, invisible, read exactly once, and
       that single read is from another SOP-friendly gate *)
    let gate_exprs = Hashtbl.create 64 in
    List.iter
      (fun el ->
        match el with
        | Gate { out; expr } -> Hashtbl.replace gate_exprs out expr
        | _ -> ())
      net.elements;
    let candidate out expr =
      (not (Hashtbl.mem visible out))
      && Hashtbl.find_opt reads out = Some 1
      && is_sop_friendly expr
    in
    (* find one reader gate per candidate and inline if support is ok *)
    let inlined = Hashtbl.create 8 in
    net.elements <-
      List.map
        (fun el ->
          match el with
          | Gate { out; expr } when is_sop_friendly expr ->
              let sub = Hashtbl.create 4 in
              List.iter
                (fun n ->
                  if not (Hashtbl.mem inlined n) then
                    match Hashtbl.find_opt gate_exprs n with
                    | Some e when candidate n e && n <> out ->
                        let merged_support =
                          List.length
                            (Flat.uniq (support expr @ support e))
                        in
                        if merged_support <= max_collapse_support then begin
                          Hashtbl.replace sub n e;
                          Hashtbl.replace inlined n ()
                        end
                    | _ -> ())
                (support expr);
              if Hashtbl.length sub > 0 then begin
                changed := true;
                let expr = minimize_expr (fold (subst_nets sub expr)) in
                (* keep the expression table fresh so later inlinings of
                   this gate use its rewritten form *)
                Hashtbl.replace gate_exprs out expr;
                Gate { out; expr }
              end
              else el
          | el -> el)
        net.elements;
    if Hashtbl.length inlined > 0 then
      net.elements <-
        List.filter
          (fun el ->
            match el with
            | Gate { out; _ } -> not (Hashtbl.mem inlined out)
            | _ -> true)
          net.elements
  done

(* ------------------------------------------------------------------ *)
(* The optimization script                                             *)
(* ------------------------------------------------------------------ *)

let optimize (net : Network.t) =
  Icdb_obs.Trace.with_span "opt.optimize" @@ fun () ->
  sweep net;
  extract_special net;
  sweep net;
  minimize_nodes net;
  eliminate net;
  minimize_nodes net;
  sweep net
