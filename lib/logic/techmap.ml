(* Technology mapping: boolean network -> cell netlist.

   Classic tree covering: gate expressions are decomposed into a
   hash-consed NAND2/INV subject DAG (XOR/XNOR/BUF/SCHMITT stay
   primitive and map one-to-one); the DAG is broken into trees at
   multi-fanout and boundary points; dynamic programming picks the
   minimum-transistor cover from the cell library's pattern set. *)

open Icdb_iif

exception Map_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Map_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Subject graph                                                       *)
(* ------------------------------------------------------------------ *)

type snode =
  | Svar of string
  | Sconst of bool
  | Sinv of int
  | Snand of int * int
  | Sxor of int * int
  | Sxnor of int * int
  | Sbuf of int
  | Sschmitt of int

type graph = {
  mutable nodes : snode array;
  mutable count : int;
  cons : (snode, int) Hashtbl.t;
}

let new_graph () = { nodes = Array.make 256 (Sconst false); count = 0;
                     cons = Hashtbl.create 256 }

let node g i = g.nodes.(i)

let mk g n =
  match Hashtbl.find_opt g.cons n with
  | Some i -> i
  | None ->
      if g.count = Array.length g.nodes then begin
        let bigger = Array.make (2 * g.count) (Sconst false) in
        Array.blit g.nodes 0 bigger 0 g.count;
        g.nodes <- bigger
      end;
      let i = g.count in
      g.nodes.(i) <- n;
      g.count <- g.count + 1;
      Hashtbl.replace g.cons n i;
      i

let mk_inv g a =
  match node g a with
  | Sinv x -> x                       (* double inversion cancels *)
  | Sconst b -> mk g (Sconst (not b))
  | _ -> mk g (Sinv a)

let mk_nand g a b =
  match node g a, node g b with
  | Sconst false, _ | _, Sconst false -> mk g (Sconst true)
  | Sconst true, _ -> mk_inv g b
  | _, Sconst true -> mk_inv g a
  | _ ->
      (* canonical operand order for hash-consing *)
      let a, b = if a <= b then (a, b) else (b, a) in
      mk g (Snand (a, b))

let mk_and g a b = mk_inv g (mk_nand g a b)
let mk_or g a b = mk_nand g (mk_inv g a) (mk_inv g b)

let mk_xor g a b =
  match node g a, node g b with
  | Sconst false, _ -> b
  | _, Sconst false -> a
  | Sconst true, _ -> mk_inv g b
  | _, Sconst true -> mk_inv g a
  | _ ->
      let a, b = if a <= b then (a, b) else (b, a) in
      mk g (Sxor (a, b))

let mk_xnor g a b =
  match node g a, node g b with
  | Sconst false, _ -> mk_inv g b
  | _, Sconst false -> mk_inv g a
  | Sconst true, _ -> b
  | _, Sconst true -> a
  | _ ->
      let a, b = if a <= b then (a, b) else (b, a) in
      mk g (Sxnor (a, b))

(* ------------------------------------------------------------------ *)
(* Building the graph from a network                                   *)
(* ------------------------------------------------------------------ *)

type build_state = {
  g : graph;
  net : Network.t;
  gate_of : (string, Flat.fexpr) Hashtbl.t;  (* net -> driving gate expr *)
  visible : (string, unit) Hashtbl.t;
  memo : (string, int) Hashtbl.t;            (* net -> subject node *)
  mutable in_progress : string list;
}

let rec build_net st n =
  match Hashtbl.find_opt st.memo n with
  | Some id -> id
  | None ->
      if List.mem n st.in_progress then
        fail "combinational cycle through net %s" n;
      let id =
        match Hashtbl.find_opt st.gate_of n with
        | Some expr when not (Hashtbl.mem st.visible n) ->
            st.in_progress <- n :: st.in_progress;
            let id = build_expr st expr in
            st.in_progress <- List.tl st.in_progress;
            id
        | _ -> mk st.g (Svar n)
      in
      Hashtbl.replace st.memo n id;
      id

and build_expr st e =
  let fold_left1 f = function
    | [] -> invalid_arg "empty operand list"
    | x :: rest -> List.fold_left f x rest
  in
  match e with
  | Flat.Fconst b -> mk st.g (Sconst b)
  | Flat.Fnet n -> build_net st n
  | Flat.Fnot e -> mk_inv st.g (build_expr st e)
  | Flat.Fand es -> fold_left1 (mk_and st.g) (List.map (build_expr st) es)
  | Flat.For_ es -> fold_left1 (mk_or st.g) (List.map (build_expr st) es)
  | Flat.Fxor (a, b) -> mk_xor st.g (build_expr st a) (build_expr st b)
  | Flat.Fxnor (a, b) -> mk_xnor st.g (build_expr st a) (build_expr st b)
  | Flat.Fbuf e -> mk st.g (Sbuf (build_expr st e))
  | Flat.Fschmitt e -> mk st.g (Sschmitt (build_expr st e))
  | Flat.Fdelay _ | Flat.Ftri _ | Flat.Fwor _ ->
      fail "interface operator reached the mapper inside a logic cone"

(* ------------------------------------------------------------------ *)
(* Pattern matching and covering                                       *)
(* ------------------------------------------------------------------ *)

(* Try to match [pattern] at node [id]; interior pattern nodes may not
   cross materialized boundaries. Returns leaf node ids (with
   duplicates if the pattern binds one leaf twice). *)
let rec match_pattern g materialized pattern id ~root =
  let interior_ok i = root || not materialized.(i) in
  match pattern with
  | Celllib.Pleaf -> Some [ id ]
  | Celllib.Pinv p -> (
      if not (interior_ok id) then None
      else
        match node g id with
        | Sinv child -> match_pattern g materialized p child ~root:false
        | _ -> None)
  | Celllib.Pnand (p1, p2) -> (
      if not (interior_ok id) then None
      else
        match node g id with
        | Snand (a, b) -> (
            let try_order x y =
              match match_pattern g materialized p1 x ~root:false with
              | None -> None
              | Some l1 -> (
                  match match_pattern g materialized p2 y ~root:false with
                  | None -> None
                  | Some l2 -> Some (l1 @ l2))
            in
            match try_order a b with
            | Some r -> Some r
            | None -> if a = b then None else try_order b a)
        | _ -> None)

type mapper = {
  st : build_state;
  materialized : bool array;
  matchable : Celllib.t list;         (* pattern cells available for covering *)
  best : (int, float * Celllib.t * int list) Hashtbl.t;  (* node -> cost, cell, leaves *)
  names : (int, string) Hashtbl.t;    (* node -> assigned net name *)
  mutable instances : Icdb_netlist.Netlist.instance list;
  mutable inst_counter : int;
  mutable fresh_net : int;
}

let rec best_cover m id =
  match Hashtbl.find_opt m.best id with
  | Some r -> r
  | None ->
      let r =
        match node m.st.g id with
        | Svar _ | Sconst _ | Sxor _ | Sxnor _ | Sbuf _ | Sschmitt _ ->
            (* hard boundary: materialization cost accounted elsewhere *)
            (0.0, Celllib.inv (* dummy, never used *), [])
        | Sinv _ | Snand _ ->
            let best = ref None in
            List.iter
              (fun (cell : Celllib.t) ->
                List.iter
                  (fun pattern ->
                    match
                      match_pattern m.st.g m.materialized pattern id ~root:true
                    with
                    | None -> ()
                    | Some leaves ->
                        if List.for_all (fun l -> l <> id) leaves then begin
                          let cost =
                            float_of_int cell.Celllib.transistors
                            +. List.fold_left
                                 (fun acc l -> acc +. leaf_cost m l)
                                 0.0 leaves
                          in
                          match !best with
                          | None -> best := Some (cost, cell, leaves)
                          | Some (c, _, _) ->
                              if cost < c then best := Some (cost, cell, leaves)
                        end)
                  cell.Celllib.patterns)
              m.matchable;
            (match !best with
             | Some r -> r
             | None -> fail "no matching cell for subject node %d" id)
      in
      Hashtbl.replace m.best id r;
      r

and leaf_cost m id =
  if m.materialized.(id) then 0.0
  else
    match node m.st.g id with
    | Svar _ | Sconst _ -> 0.0
    | Sxor _ | Sxnor _ -> 10.0
    | Sbuf _ -> 4.0
    | Sschmitt _ -> 6.0
    | Sinv _ | Snand _ ->
        let c, _, _ = best_cover m id in
        c

let fresh_net m =
  m.fresh_net <- m.fresh_net + 1;
  Printf.sprintf "$m%d" m.fresh_net

let add_instance m cell conns size =
  m.inst_counter <- m.inst_counter + 1;
  m.instances <-
    { Icdb_netlist.Netlist.inst_name = Printf.sprintf "U%d" m.inst_counter;
      cell;
      size;
      conns }
    :: m.instances

(* Materialize node [id] onto a net and return the net name. *)
let rec emit m id =
  match Hashtbl.find_opt m.names id with
  | Some n -> n
  | None ->
      let name =
        match node m.st.g id with
        | Svar n -> n
        | Sconst b ->
            let n = if b then "$const1" else "$const0" in
            add_instance m (if b then "TIE1" else "TIE0") [ ("Y", n) ] 1.0;
            n
        | Sxor (a, b) ->
            let na = emit m a and nb = emit m b in
            let out = fresh_net m in
            add_instance m "XOR2" [ ("A", na); ("B", nb); ("Y", out) ] 1.0;
            out
        | Sxnor (a, b) ->
            let na = emit m a and nb = emit m b in
            let out = fresh_net m in
            add_instance m "XNOR2" [ ("A", na); ("B", nb); ("Y", out) ] 1.0;
            out
        | Sbuf a ->
            let na = emit m a in
            let out = fresh_net m in
            add_instance m "BUF" [ ("A", na); ("Y", out) ] 1.0;
            out
        | Sschmitt a ->
            let na = emit m a in
            let out = fresh_net m in
            add_instance m "SCHMITT" [ ("A", na); ("Y", out) ] 1.0;
            out
        | Sinv _ | Snand _ ->
            let _, cell, leaves = best_cover m id in
            let leaf_nets = List.map (emit m) leaves in
            let out = fresh_net m in
            let conns =
              List.map2 (fun pin n -> (pin, n)) cell.Celllib.inputs leaf_nets
              @ [ (cell.Celllib.output, out) ]
            in
            add_instance m cell.Celllib.cname conns 1.0;
            out
      in
      Hashtbl.replace m.names id name;
      name

(* Materialize node [id] onto a *specific* net name. If the node already
   has a name, tie the two with a buffer. *)
let emit_named m id name =
  match Hashtbl.find_opt m.names id with
  | None -> (
      match node m.st.g id with
      | Svar n when n = name -> Hashtbl.replace m.names id name
      | Svar n ->
          (* alias of another net: explicit buffer *)
          add_instance m "BUF" [ ("A", n); ("Y", name) ] 1.0;
          (* do not rename the var node itself *)
          ()
      | Sconst b ->
          add_instance m (if b then "TIE1" else "TIE0") [ ("Y", name) ] 1.0
      | Sxor (a, b) ->
          let na = emit m a and nb = emit m b in
          add_instance m "XOR2" [ ("A", na); ("B", nb); ("Y", name) ] 1.0;
          Hashtbl.replace m.names id name
      | Sxnor (a, b) ->
          let na = emit m a and nb = emit m b in
          add_instance m "XNOR2" [ ("A", na); ("B", nb); ("Y", name) ] 1.0;
          Hashtbl.replace m.names id name
      | Sbuf a ->
          let na = emit m a in
          add_instance m "BUF" [ ("A", na); ("Y", name) ] 1.0;
          Hashtbl.replace m.names id name
      | Sschmitt a ->
          let na = emit m a in
          add_instance m "SCHMITT" [ ("A", na); ("Y", name) ] 1.0;
          Hashtbl.replace m.names id name
      | Sinv _ | Snand _ ->
          let _, cell, leaves = best_cover m id in
          let leaf_nets = List.map (emit m) leaves in
          let conns =
            List.map2 (fun pin n -> (pin, n)) cell.Celllib.inputs leaf_nets
            @ [ (cell.Celllib.output, name) ]
          in
          add_instance m cell.Celllib.cname conns 1.0;
          Hashtbl.replace m.names id name)
  | Some existing ->
      if existing <> name then
        add_instance m "BUF" [ ("A", existing); ("Y", name) ] 1.0

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(* [map network] lowers a boolean network to a cell netlist.
   [cells] restricts the pattern library available to the tree coverer
   (default: every matchable cell); INV and NAND2 must be included so
   any subject graph stays coverable. *)
let map ?(cells = Celllib.matchable) (network : Network.t) =
  Icdb_obs.Trace.with_span "techmap.map" @@ fun () ->
  let open Network in
  let g = new_graph () in
  let gate_of = Hashtbl.create 64 in
  List.iter (fun (out, expr) -> Hashtbl.replace gate_of out expr)
    (Network.gates network);
  let visible = Network.visible_nets network in
  let st = { g; net = network; gate_of; visible;
             memo = Hashtbl.create 128; in_progress = [] } in
  (* Bind every visible gate output (and output nets) to subject nodes. *)
  let bindings = ref [] in  (* (net, node id), in network order *)
  List.iter
    (fun el ->
      match el with
      | Gate { out; expr } when Hashtbl.mem visible out ->
          let id = build_expr st expr in
          Hashtbl.replace st.memo out id;
          bindings := (out, id) :: !bindings
      | _ -> ())
    network.elements;
  let bindings = List.rev !bindings in
  (* Fanout census to find shared nodes. *)
  let parents = Array.make g.count 0 in
  let bump i = parents.(i) <- parents.(i) + 1 in
  for i = 0 to g.count - 1 do
    match g.nodes.(i) with
    | Svar _ | Sconst _ -> ()
    | Sinv a | Sbuf a | Sschmitt a -> bump a
    | Snand (a, b) | Sxor (a, b) | Sxnor (a, b) -> bump a; bump b
  done;
  List.iter (fun (_, id) -> bump id) bindings;
  let materialized = Array.make g.count false in
  for i = 0 to g.count - 1 do
    (match g.nodes.(i) with
     | Svar _ | Sconst _ | Sxor _ | Sxnor _ | Sbuf _ | Sschmitt _ ->
         materialized.(i) <- true
     | Sinv _ | Snand _ -> if parents.(i) > 1 then materialized.(i) <- true);
    (* children of hard primitives must exist as nets *)
    match g.nodes.(i) with
    | Sxor (a, b) | Sxnor (a, b) ->
        materialized.(a) <- true;
        materialized.(b) <- true
    | Sbuf a | Sschmitt a -> materialized.(a) <- true
    | Svar _ | Sconst _ | Sinv _ | Snand _ -> ()
  done;
  List.iter (fun (_, id) -> materialized.(id) <- true) bindings;
  let m =
    { st; materialized;
      matchable = List.filter (fun c -> c.Celllib.patterns <> []) cells;
      best = Hashtbl.create 128;
      names = Hashtbl.create 128;
      instances = [];
      inst_counter = 0;
      fresh_net = 0 }
  in
  (* Emit visible logic cones under their real names. *)
  List.iter (fun (out, id) -> emit_named m id out) bindings;
  (* Sequential and interface elements map directly to cells. *)
  let inverted_clock = Hashtbl.create 8 in
  let invert_clock net =
    match Hashtbl.find_opt inverted_clock net with
    | Some n -> n
    | None ->
        let n = fresh_net m in
        add_instance m "INV" [ ("A", net); ("Y", n) ] 1.0;
        Hashtbl.replace inverted_clock net n;
        n
  in
  List.iter
    (fun el ->
      match el with
      | Gate _ -> ()
      | Reg { out; data; clock; rising; set; reset } ->
          let cell =
            Celllib.ff_cell ~has_set:(set <> None) ~has_reset:(reset <> None)
          in
          let ck = if rising then clock else invert_clock clock in
          let conns =
            [ ("D", data); ("CK", ck) ]
            @ (match set with Some s -> [ ("S", s) ] | None -> [])
            @ (match reset with Some r -> [ ("R", r) ] | None -> [])
            @ [ ("Q", out) ]
          in
          add_instance m cell.Celllib.cname conns 1.0
      | Lat { out; data; gate; transparent_high } ->
          let cell = Celllib.latch_cell ~transparent_high in
          add_instance m cell.Celllib.cname
            [ ("D", data); ("G", gate); ("Q", out) ] 1.0
      | Tri { out; data; enable } ->
          if enable = "$const1" then
            add_instance m "BUF" [ ("A", data); ("Y", out) ] 1.0
          else
            add_instance m "TBUF" [ ("A", data); ("EN", enable); ("Y", out) ] 1.0
      | Delay_el { out; input; ns } ->
          (* approximate a transport delay with a buffer chain *)
          let buf_delay = 1.0 in
          let n = max 1 (int_of_float (Float.ceil (ns /. buf_delay))) in
          let rec chain i src =
            if i = n then
              add_instance m "BUF" [ ("A", src); ("Y", out) ] 1.0
            else begin
              let mid = fresh_net m in
              add_instance m "BUF" [ ("A", src); ("Y", mid) ] 1.0;
              chain (i + 1) mid
            end
          in
          chain 1 input)
    network.elements;
  { Icdb_netlist.Netlist.name = network.name;
    inputs = network.inputs;
    outputs = network.outputs;
    instances = List.rev m.instances }
