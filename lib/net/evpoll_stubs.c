/* A minimal poll(2) binding for the icdbd event loop.
 *
 * Unix.select is backed by select(2), whose fd_set is a fixed bitmap of
 * FD_SETSIZE (typically 1024) bits: any fd whose *value* reaches 1024
 * is out of range no matter how few fds are watched.  An event loop
 * that wants thousands of mostly-idle connections needs poll(2), which
 * has no such limit.  The interface is deliberately primitive — a flat
 * int array of (fd, events) pairs in, an int array of revents out — so
 * the OCaml side owns all data-structure choices and this file stays a
 * dumb syscall wrapper.
 *
 * Event bits (see evpoll.ml): 1 = readable, 2 = writable; revents adds
 * 4 = error/invalid (POLLERR | POLLNVAL) and folds POLLHUP into
 * "readable" so the loop discovers EOF through an ordinary read().
 */

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>

CAMLprim value icdb_evpoll_poll(value v_spec, value v_nfds, value v_timeout_ms)
{
    CAMLparam3(v_spec, v_nfds, v_timeout_ms);
    CAMLlocal1(v_res);
    int nfds = Int_val(v_nfds);
    int timeout_ms = Int_val(v_timeout_ms);
    struct pollfd *pfds;
    int rc, err, i;

    if (nfds < 0 || 2 * nfds > Wosize_val(v_spec))
        caml_invalid_argument("Evpoll.poll: spec too short");

    pfds = malloc(sizeof(struct pollfd) * (nfds > 0 ? (size_t)nfds : 1));
    if (pfds == NULL) caml_raise_out_of_memory();

    for (i = 0; i < nfds; i++) {
        int ev = Int_val(Field(v_spec, 2 * i + 1));
        pfds[i].fd = Int_val(Field(v_spec, 2 * i));
        pfds[i].events = (short)(((ev & 1) ? POLLIN : 0) |
                                 ((ev & 2) ? POLLOUT : 0));
        pfds[i].revents = 0;
    }

    /* poll may park the thread for the full timeout: release the OCaml
     * runtime lock so workers keep executing requests meanwhile. */
    caml_release_runtime_system();
    rc = poll(pfds, (nfds_t)nfds, timeout_ms);
    err = errno;
    caml_acquire_runtime_system();

    if (rc < 0 && err != EINTR) {
        free(pfds);
        caml_failwith("Evpoll.poll: poll(2) failed");
    }

    /* EINTR: report nothing ready; the caller's next tick retries. */
    v_res = caml_alloc(nfds > 0 ? nfds : 1, 0);
    for (i = 0; i < nfds; i++) {
        int rev = 0;
        if (rc > 0) {
            short r = pfds[i].revents;
            if (r & (POLLIN | POLLHUP)) rev |= 1;
            if (r & POLLOUT) rev |= 2;
            if (r & (POLLERR | POLLNVAL)) rev |= 4;
        }
        Store_field(v_res, i, Val_int(rev));
    }
    free(pfds);
    CAMLreturn(v_res);
}
