(** The icdbd admin plane: a zero-dependency HTTP/1.0 listener on a
    port of its own, serving operational probes over the running
    {!Service.t}:

    - [/healthz] — liveness: 200 ["ok"] while the process serves HTTP.
    - [/readyz] — readiness: 200 when the daemon is accepting (no
      shutdown requested), the request queue is below the shed
      threshold, and the workspace accepts a probe write; 503 with one
      ["name ok|FAIL"] line per check otherwise. When started with a
      [replica], three further checks gate on the replication stream:
      connected, record lag and staleness within the replica's bounds
      ({!Replica.ready}) — so a follower answers 503 until its
      catch-up drains and flips to 200 once failover-ready.
    - [/metrics] — the full {!Icdb_obs.Metrics} registry in Prometheus
      text exposition format (see {!Icdb_obs.Expo.prometheus}).
    - [/tracez] — the most recent completed spans as JSON.
    - [/slowz] — the slow-query log as JSON.

    The listener is single-threaded and closes each connection after
    one response — sized for scrapers and probes, not user traffic.
    Bind it to loopback (the default) or a management interface. *)

type t

val start :
  ?host:string ->
  ?replica:Replica.t ->
  port:int -> service:Service.t -> sync:Sync.t -> unit -> t
(** Bind and start serving; [port = 0] picks an ephemeral port.
    [replica] adds the replication-lag readiness checks.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually-bound port. *)

val stop : t -> unit
(** Stop accepting and join the listener thread. *)
