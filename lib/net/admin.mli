(** The icdbd admin plane: a zero-dependency HTTP/1.0 listener on a
    port of its own, serving operational probes over the running
    {!Service.t}:

    - [/healthz] — liveness: 200 ["ok"] while the process serves HTTP
      and the stall watchdog is quiet; 503 with the watchdog's reason
      while it is tripped (see {!Service.watchdog}).
    - [/readyz] — readiness: 200 when the daemon is accepting (no
      shutdown requested), the request queue is below the shed
      threshold, and the workspace accepts a probe write; 503 with one
      ["name ok|FAIL"] line per check otherwise. When started with a
      [replica], three further checks gate on the replication stream:
      connected, record lag and staleness within the replica's bounds
      ({!Replica.ready}) — so a follower answers 503 until its
      catch-up drains and flips to 200 once failover-ready.
    - [/metrics] — the full {!Icdb_obs.Metrics} registry in Prometheus
      text exposition format (see {!Icdb_obs.Expo.prometheus}), with
      the process gauges refreshed per scrape.
    - [/tracez] — the most recent completed spans as JSON.
    - [/slowz] — the slow-query log as JSON.
    - [/statz] — the continuous-telemetry time-series rings as JSON
      (404 when the sampler is disabled); `icdb top`'s data source.
    - [/connz] — the per-connection diagnostic table as JSON.
    - [/blackboxz] — an on-demand flight-recorder dump as JSON (404
      when started without a [recorder]); `icdb blackbox`'s source.

    The listener is single-threaded and closes each connection after
    one response — sized for scrapers and probes, not user traffic.
    Bind it to loopback (the default) or a management interface. *)

type t

val start :
  ?host:string ->
  ?replica:Replica.t ->
  ?recorder:Icdb_obs.Recorder.t ->
  port:int -> service:Service.t -> sync:Sync.t -> unit -> t
(** Bind and start serving; [port = 0] picks an ephemeral port.
    [replica] adds the replication-lag readiness checks; [recorder]
    enables [/blackboxz].
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually-bound port. *)

val stop : t -> unit
(** Stop accepting and join the listener thread. *)
