(** icdbd: the concurrent TCP service over an ICDB component server.

    One poll(2)-based event-loop thread owns every socket: it accepts
    (refusing beyond [max_connections]), reads and reassembles frames
    (via {!Wire.Dechunk}, so requests may arrive split at any byte
    boundary) into a bounded task queue, and drains per-connection
    write queues with nonblocking writes. A fixed worker pool executes
    the queued requests against the shared {!Sync.t} and enqueues the
    replies — workers never touch a socket — so network and file I/O
    overlap while server state stays single-writer under one lock (the
    discipline {!Sync} documents). An idle connection costs a table
    entry and two ints of poll spec, not a thread, so thousands of
    mostly-idle clients are cheap.

    Pipelining: responses are written in completion order, matched to
    requests by the echoed frame id, so a client may keep many requests
    in flight per connection; a [Batch] frame executes its entries on
    one worker under one admission-control decision and answers with
    one positionally-matched [Batch_reply]. Because that one decision
    covers however much work the batch carries, batches are bounded
    both ways: more than {!max_batch_entries} entries is refused
    outright with [Error Protocol_error], and the request deadline is
    re-checked between entries — entries that would start past it are
    answered [Berror Timeout] in their slots instead of executing.

    Admission control, timeouts and backpressure:
    - connections beyond [max_connections] get an [Error Overloaded]
      frame and are closed before entering the event loop;
    - requests landing on a full queue are shed immediately with
      [Error Overloaded];
    - a request older than [request_timeout_s] when a worker picks it
      up is answered [Error Timeout] without executing — a request
      already executing is never preempted (OCaml compute cannot be
      safely interrupted), which bounds added latency by one request's
      service time per worker; a [Batch] additionally re-checks the
      deadline between entries, so one frame cannot hold a worker past
      its timeout;
    - connections idle longer than [idle_timeout_s] are reaped with a
      [Bye] frame;
    - a connection whose unsent replies exceed a high-water mark (1 MiB)
      stops being polled for reads until the peer drains — a client that
      will not read replies cannot keep submitting — and a non-follower
      that buffers past a hard cap (64 MiB) is closed outright; slow
      readers only ever stall themselves, never other connections.

    Decode-error taxonomy on a live connection: recoverable errors
    ([Bad_version], [Malformed] — the frame boundary was still sound)
    are answered with a structured error and the connection survives;
    fatal ones ([Oversized], EOF mid-frame = [Truncated] — framing is
    lost) are answered where possible and the connection is closed. A
    fatal connection whose peer will not read gets a bounded flush
    grace (a few seconds) to drain the courtesy error frame, after
    which it is closed anyway — an unread write queue cannot pin the
    fd or its [max_connections] slot.

    Graceful shutdown ({!request_shutdown}, a [Shutdown] frame, or
    SIGTERM routed to {!request_shutdown} by the CLI): stop accepting,
    drain every queued and in-flight request to its reply, send [Bye]
    on every connection, then return from {!wait}. Durability is the
    caller's: checkpoint after {!wait} returns, as [icdb serve] does.

    Everything is instrumented through {!Icdb_obs.Metrics} under
    [net.*]: accepted/refused/closed/requests/errors/shed/timeouts/
    malformed/version_mismatch/idle_reaped/slow_requests/batches/
    batch_entries counters, a [net.connections] gauge, a
    [net.queue_wait] histogram, and one latency histogram per wire
    command ([net.cql.<command>], [net.sql], [net.batch], [net.stats],
    [net.ping], [net.trace_fetch]).

    Per-request observability: a request whose {!Wire.ctx} carries a
    trace id has all of its server-side spans tagged with that id (and
    tracing force-enabled for its duration), retrievable afterwards via
    [Trace_fetch]; a request whose ctx carries a deadline is answered
    [Error Timeout] if it waited in the queue past that deadline; and
    any request slower than [slow_threshold_s] lands in a bounded
    slow-query log (newest first, rate-limited warn event) surfaced via
    [Stats] and {!slow_log}. *)

type config = {
  host : string;             (** bind address, default ["127.0.0.1"] *)
  port : int;                (** 0 picks an ephemeral port — read it back
                                 with {!port} *)
  max_connections : int;
  workers : int;
  max_queue : int;
  request_timeout_s : float;
  idle_timeout_s : float;
  slow_threshold_s : float;  (** requests at least this slow are logged;
                                 0 logs everything, negative disables *)
  read_only : bool;          (** follower mode: refuse mutating CQL/SQL
                                 with [Error Read_only] and [Subscribe]
                                 with [Repl_error]; queries are served
                                 locally *)
  repl_max_lag : int;        (** records a follower may have queued but
                                 unsent before it is shed *)
  repl_batch : int;          (** max journal records per pushed batch *)
  telemetry_period_s : float;
  (** sampling period of the continuous-telemetry rings (see
      {!Icdb_obs.Series}); zero or negative disables the sampler and
      the stall watchdog entirely *)
}

val default_config : config
(** 127.0.0.1:7601, 64 connections, 4 workers, queue of 128, 30 s
    request timeout, 300 s idle timeout, 1 s slow threshold; not
    read-only, 10_000-record shed bound, 512-record batches; 1 s
    telemetry period. *)

val max_batch_entries : int
(** Most entries a single [Batch] frame may carry; a larger batch is
    refused whole with [Error Protocol_error] (a batch spends one
    queue slot and one worker no matter its size, so the cap is what
    keeps admission control's accounting honest). *)

type t

val start : ?config:config -> Sync.t -> t
(** Bind, listen and spawn the event loop and worker pool; returns
    once the socket is accepting.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually-bound port (useful with [port = 0]). *)

val config : t -> config
(** The configuration the service was started with. *)

val stopping : t -> bool
(** True once a shutdown has been requested (liveness turns not-ready). *)

val queue_depth : t -> int
(** Requests currently waiting for a worker. *)

val slow_log : t -> Wire.slow_entry list
(** The slow-query log, newest first, at most its bounded capacity. *)

type conn_info = {
  ci_cid : int;
  ci_peer : string;
  ci_state : string;    (** ["active"], ["paused"] (read-paused over the
                            write high-water mark), ["fatal"] (flushing
                            a courtesy frame before close), or
                            ["follower"] *)
  ci_wq_bytes : int;
  ci_reqs : int;
  ci_age_s : float;
  ci_idle_s : float;
  ci_paused_s : float;  (** seconds read-paused so far; 0 when not *)
}

val conn_table : t -> conn_info list
(** One row per live connection, cid-ascending: the /connz body, the
    flight recorder's connection table, and `icdb top`'s detail view.
    Field reads are racy snapshots — fine for diagnostics. *)

val sampler : t -> Icdb_obs.Series.t option
(** The continuous-telemetry sampler: traffic-rate deltas, latency
    percentile ramps, queue/connection/fd level gauges, replication
    lag — one point per [telemetry_period_s], retained for the ring's
    capacity. [None] when the config disabled telemetry. *)

val watchdog : t -> bool * string
(** Stall-watchdog verdict [(tripped, reason)]. The watchdog runs on
    the sampler's tick and trips on a stale event-loop heartbeat, a
    burst of missed sampler deadlines, or a connection read-paused past
    a bound; /healthz turns 503 while tripped, and each trip/recovery
    emits a structured event and bumps [net.watchdog.trips]. Always
    [(false, "")] when telemetry is disabled. *)

val follower_count : t -> int
(** Currently subscribed replication followers (primaries only;
    always 0 on a read-only service).

    A primary accepts [Subscribe {cursor}] frames: a cursor inside the
    journal's sequence window starts a push stream of [Journal_batch]
    frames from there (records verbatim in journal line encoding, plus
    the workspace files they depend on); a stale or fresh cursor first
    receives a full checkpoint ([Checkpoint_offer] + [Checkpoint_chunk]
    frames: snapshot, netlists, IIF sources) taken under the server
    lock. Each follower has a bounded outbound queue drained by its own
    sender thread, so one slow follower never stalls the publisher or
    the other followers; a follower more than [repl_max_lag] records
    behind is shed with a terminal [Repl_error] and must reconnect.
    Empty batches are 1 Hz heartbeats carrying the primary's next
    sequence number so followers can measure lag. Instrumented under
    [repl.*]: followers gauge, batches_sent / records_sent /
    followers_shed / checkpoints_sent / readonly_rejected counters. *)

val request_shutdown : t -> unit
(** Ask for a graceful shutdown and return immediately. Safe to call
    from any thread and from a signal handler. Idempotent. *)

val wait : t -> unit
(** Block until the service has fully shut down (all requests drained,
    all connections closed, all threads joined). *)

val shutdown : t -> unit
(** [request_shutdown] + [wait]. Must not be called from one of the
    service's own threads. *)
